// Command analyze runs the repository's determinism & invariant analyzer
// suite (internal/analysis: detorder, walltime, walpath, guarded).
//
// Standalone, over package patterns:
//
//	go run ./cmd/analyze ./...
//
// As a vettool — the unitchecker protocol go vet speaks, one JSON config
// file per package:
//
//	go build -o /tmp/analyze ./cmd/analyze
//	go vet -vettool=/tmp/analyze ./...
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"robuststore/internal/analysis"
	"robuststore/internal/analysis/detorder"
	"robuststore/internal/analysis/guarded"
	"robuststore/internal/analysis/walltime"
	"robuststore/internal/analysis/walpath"
)

// suite is every analyzer the tool runs.
var suite = []*analysis.Analyzer{
	detorder.Analyzer,
	walltime.Analyzer,
	walpath.Analyzer,
	guarded.Analyzer,
}

func main() {
	// go vet probes the tool's identity with -V=full before trusting it.
	versionFlag := flag.String("V", "", "print version and exit (vettool protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: analyze [packages...] | analyze <unit>.cfg\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	// go vet's first probe is `analyze -flags`: the tool's supported
	// analyzer flags as JSON. The suite is not configurable, so the list
	// is empty.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	flag.Parse()
	if *versionFlag != "" {
		// go vet folds the tool's identity into its cache key; the
		// expected shape is "<name> version <semver> buildID=<hex>", with
		// the ID derived from the executable so a rebuilt tool busts the
		// cache.
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sum := sha256.Sum256(data)
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
			filepath.Base(exe), sum)
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args, *jsonFlag))
}

// standalone loads the given patterns with the go command and runs the
// whole suite over every matched package.
func standalone(patterns []string, asJSON bool) int {
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var all []analysis.Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		for _, a := range suite {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			all = append(all, diags...)
		}
	}
	if len(all) == 0 {
		return 0
	}
	emit(fset, all, asJSON)
	return 2
}

// vetConfig is the subset of the unitchecker config file (written by
// `go vet` for each package unit) the tool consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs the suite over one go vet package unit described by a
// .cfg file, resolving imports through the export data go vet prepared.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "analyze: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The tool keeps no cross-package facts, but go vet requires the
	// output file to exist for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("analyze-no-facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	imp := mappedImporter{
		imports: cfg.ImportMap,
		under:   analysis.ExportImporter(fset, exports),
	}
	pkg, err := analysis.Typecheck(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var all []analysis.Diagnostic
	for _, a := range suite {
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		all = append(all, diags...)
	}
	if len(all) == 0 {
		return 0
	}
	emit(fset, all, false)
	return 2
}

// mappedImporter applies go vet's source-path -> canonical-path map
// before hitting export data.
type mappedImporter struct {
	imports map[string]string
	under   types.Importer
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if canon, ok := m.imports[path]; ok {
		path = canon
	}
	return m.under.Import(path)
}

func emit(fset *token.FileSet, diags []analysis.Diagnostic, asJSON bool) {
	if asJSON {
		type jsonDiag struct {
			Posn     string `json:"posn"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{
				Posn:     fset.Position(d.Pos).String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "\t")
		_ = enc.Encode(out)
		os.Stdout.Write(buf.Bytes())
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
