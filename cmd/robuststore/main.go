// Command robuststore boots a live RobustStore cluster in-process — the
// TPC-W bookstore replicated over Treplica, optionally hash-partitioned
// across several independent Paxos groups (internal/shard) — drives a
// closed-loop browser population against it, optionally kills and
// recovers a replica, and reports throughput and consistency. It is the
// live-runtime counterpart of the simulator experiments: same protocol
// code, real goroutines and wall-clock time.
//
// Usage:
//
//	robuststore -shards 2 -replicas 3 -browsers 50 -duration 10s -crash
//	robuststore -shards 2 -replicas 3 -duration 12s -rebalance
//
// With -rebalance the store grows by one Paxos group mid-run: the
// epoch-versioned routing table advances one epoch, the moving hash
// slices' rows stream to the new group through the ordered log, and the
// cutover publishes atomically while the shoppers keep running.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/livenet"
	"robuststore/internal/paxos"
	"robuststore/internal/shard"
	"robuststore/internal/tpcw"
	"robuststore/internal/xrand"
)

func main() {
	var (
		shards   = flag.Int("shards", 1, "independent Paxos groups the store is partitioned into")
		replicas = flag.Int("replicas", 3, "bookstore replicas per shard group")
		browsers = flag.Int("browsers", 30, "concurrent emulated shoppers")
		duration = flag.Duration("duration", 8*time.Second, "run length")
		crash    = flag.Bool("crash", true, "kill and recover one replica per shard mid-run")
		rebal    = flag.Bool("rebalance", false, "add one group mid-run and live-migrate its hash-space share to it")
	)
	flag.Parse()
	if *shards < 1 || *replicas < 1 {
		fmt.Fprintln(os.Stderr, "robuststore: -shards and -replicas must be at least 1")
		os.Exit(2)
	}
	if err := run(*shards, *replicas, *browsers, *duration, *crash, *rebal); err != nil {
		fmt.Fprintln(os.Stderr, "robuststore:", err)
		os.Exit(1)
	}
}

func run(nShards, nReplicas, nBrowsers int, duration time.Duration, crash, rebal bool) error {
	cluster := livenet.New(livenet.Config{Latency: 150 * time.Microsecond})
	defer cluster.Close()

	store := shard.New(cluster, shard.Config{
		Shards:   nShards,
		Replicas: nReplicas,
		Machine: func(g int) core.StateMachine {
			// Each shard is an independent partition with its own
			// population (per-shard seed keeps them distinguishable).
			return tpcw.Populate(tpcw.PopConfig{
				Items: 1000, EBs: 1, Reduction: 4, Seed: uint64(g)*31 + 1,
			})
		},
		Core: core.Config{
			ActionSize:         tpcw.ActionSize,
			CheckpointInterval: 2 * time.Second,
			Paxos: paxos.Config{
				HeartbeatInterval: 20 * time.Millisecond,
				LeaderTimeout:     150 * time.Millisecond,
				SweepInterval:     10 * time.Millisecond,
				BatchDelay:        time.Millisecond,
			},
		},
	})
	cluster.StartAll()
	if err := awaitService(store); err != nil {
		return err
	}
	first := store.Group(0).Replica(0).Machine().(*tpcw.Store)
	info := first.Info()
	fmt.Printf("bookstore up: %d shards x %d replicas, %d items, %d customers per shard\n",
		nShards, nReplicas, info.Items, info.Customers)

	ctx, cancel := context.WithTimeout(context.Background(), duration+20*time.Second)
	defer cancel()
	stop := time.Now().Add(duration)

	var ops, errs, orders atomic.Int64
	var wg sync.WaitGroup
	for b := 0; b < nBrowsers; b++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(uint64(id)*7919 + 13)
			shopper(ctx, stop, rng, store, int64(id), &ops, &errs, &orders)
		}(b)
	}

	if crash {
		// Kill the last member of every group, then recover it — the
		// per-shard incarnation of the paper's one-crash faultload.
		var victims []env.NodeID
		for g := 0; g < nShards; g++ {
			members := store.Group(g).Members()
			victims = append(victims, members[len(members)-1])
		}
		time.AfterFunc(duration/3, func() {
			fmt.Printf("... killing nodes %v\n", victims)
			for _, id := range victims {
				cluster.Crash(id)
			}
		})
		time.AfterFunc(duration*2/3, func() {
			fmt.Printf("... restarting nodes %v\n", victims)
			for _, id := range victims {
				cluster.Restart(id)
			}
		})
	}

	if rebal {
		// Live resharding: one more group joins mid-run, its hash-space
		// share migrates through the ordered log, and the routing epoch
		// advances — all while the shoppers keep executing.
		time.AfterFunc(duration/3, func() {
			fmt.Printf("... rebalancing: adding group %d\n", store.Shards())
			store.Rebalance(shard.RebalanceOptions{
				OnPhase: func(phase string) { fmt.Printf("... migration phase: %s\n", phase) },
				Done: func(err error) {
					st := store.Migration()
					if err != nil {
						fmt.Printf("... rebalance failed: %v\n", err)
						return
					}
					fmt.Printf("... rebalance done: epoch %d, %d/%d slices moved, window %s\n",
						st.Epoch, st.MovedSlices, st.TotalSlices, st.Window())
				},
			})
		})
	}

	wg.Wait()
	fmt.Printf("done: %d interactions, %d orders placed, %d errors (%.3f%% accuracy)\n",
		ops.Load(), orders.Load(), errs.Load(),
		100*float64(ops.Load()-errs.Load())/float64(max(ops.Load(), 1)))

	// Let recovered replicas finish re-synchronizing, then verify
	// convergence and invariants per shard.
	time.Sleep(2 * time.Second)
	for _, gs := range store.Status() {
		grp := store.Group(gs.Shard)
		for m := 0; m < nReplicas; m++ {
			r := grp.Replica(m)
			if r == nil || !r.Ready() {
				continue
			}
			bs := r.Machine().(*tpcw.Store)
			if bad := bs.VerifyConsistency(); len(bad) > 0 {
				return fmt.Errorf("shard %d replica %d inconsistent: %v", gs.Shard, m, bad)
			}
		}
		fmt.Printf("shard %d: ready=%d/%d leader=member%d applied=%d backlog=%d\n",
			gs.Shard, gs.Ready, gs.Members, gs.Leader, gs.Applied, gs.Backlog)
	}
	fmt.Println("all live replicas consistent")
	return nil
}

// shopper is one closed-loop session: browse, fill a cart, buy. All of a
// session's writes are routed by its session key, pinning its cart and
// orders to one shard.
func shopper(ctx context.Context, stop time.Time, rng *xrand.Rand,
	store *shard.Store, session int64, ops, errs, orders *atomic.Int64) {

	key := tpcw.SessionKey(session)
	var cart tpcw.CartID
	for time.Now().Before(stop) {
		if ctx.Err() != nil {
			return
		}
		now := time.Now().UTC()
		item := tpcw.ItemID(rng.Intn(200) + 1)
		var err error
		switch rng.Intn(5) {
		case 0, 1: // browse, spread across the owning shard's replicas
			if r := store.PickRead(key, session); r != nil && r.Ready() {
				bs := r.Machine().(*tpcw.Store)
				bs.GetBook(item)
				bs.GetBestSellers(bs.Subjects()[rng.Intn(4)])
			}
		case 2, 3: // add to cart
			var res any
			res, err = store.Execute(ctx, key, tpcw.CartUpdateAction{
				Cart: cart, AddItem: item, AddQty: 1, RandomItem: item, Now: now,
			})
			if err == nil {
				cart = res.(tpcw.CartResult).Cart.ID
			}
		case 4: // buy
			if cart == 0 {
				continue
			}
			var res any
			res, err = store.Execute(ctx, key, tpcw.BuyConfirmAction{
				Cart: cart, Customer: tpcw.CustomerID(rng.Intn(300) + 1),
				ShipDate: now.AddDate(0, 0, 1+rng.Intn(7)), Now: now,
			})
			if err == nil {
				br := res.(tpcw.BuyConfirmResult)
				if br.Err == "" {
					orders.Add(1)
				}
				cart = 0
			}
		}
		ops.Add(1)
		if err != nil {
			errs.Add(1)
		}
		time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
	}
}

func awaitService(store *shard.Store) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ready := 0
		for _, gs := range store.Status() {
			if gs.Ready > 0 && gs.Leader >= 0 {
				ready++
			}
		}
		if ready == store.Shards() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("service did not come up")
}
