// Command robuststore boots a live RobustStore cluster in-process — the
// TPC-W bookstore replicated over Treplica — drives a closed-loop browser
// population against it, optionally kills and recovers a replica, and
// reports throughput and consistency. It is the live-runtime counterpart
// of the simulator experiments: same protocol code, real goroutines and
// wall-clock time.
//
// Usage:
//
//	robuststore -replicas 3 -browsers 50 -duration 10s -crash
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/livenet"
	"robuststore/internal/paxos"
	"robuststore/internal/tpcw"
	"robuststore/internal/xrand"
)

func main() {
	var (
		replicas = flag.Int("replicas", 3, "number of bookstore replicas")
		browsers = flag.Int("browsers", 30, "concurrent emulated shoppers")
		duration = flag.Duration("duration", 8*time.Second, "run length")
		crash    = flag.Bool("crash", true, "kill and recover one replica mid-run")
	)
	flag.Parse()
	if err := run(*replicas, *browsers, *duration, *crash); err != nil {
		fmt.Fprintln(os.Stderr, "robuststore:", err)
		os.Exit(1)
	}
}

func run(nReplicas, nBrowsers int, duration time.Duration, crash bool) error {
	cluster := livenet.New(livenet.Config{Latency: 150 * time.Microsecond})
	defer cluster.Close()

	stores := make([]*tpcw.Store, nReplicas)
	reps := make([]*core.Replica, nReplicas)
	for i := 0; i < nReplicas; i++ {
		idx := i
		cluster.AddNode(func() env.Node {
			r := core.NewReplica(core.Config{
				Machine: func() core.StateMachine {
					s := tpcw.Populate(tpcw.PopConfig{Items: 1000, EBs: 1, Reduction: 4, Seed: 1})
					stores[idx] = s
					return s
				},
				ActionSize:         tpcw.ActionSize,
				CheckpointInterval: 2 * time.Second,
				Paxos: paxos.Config{
					HeartbeatInterval: 20 * time.Millisecond,
					LeaderTimeout:     150 * time.Millisecond,
					SweepInterval:     10 * time.Millisecond,
					BatchDelay:        time.Millisecond,
				},
			})
			reps[idx] = r
			return r
		})
	}
	cluster.StartAll()
	if err := awaitService(reps[0]); err != nil {
		return err
	}
	info := stores[0].Info()
	fmt.Printf("bookstore up: %d replicas, %d items, %d customers\n",
		nReplicas, info.Items, info.Customers)

	ctx, cancel := context.WithTimeout(context.Background(), duration+20*time.Second)
	defer cancel()
	stop := time.Now().Add(duration)

	var ops, errs, orders atomic.Int64
	var wg sync.WaitGroup
	for b := 0; b < nBrowsers; b++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(uint64(id)*7919 + 13)
			shopper(ctx, stop, rng, reps, stores, id%nReplicas, &ops, &errs, &orders)
		}(b)
	}

	if crash {
		victim := nReplicas - 1
		time.AfterFunc(duration/3, func() {
			fmt.Printf("... killing replica %d\n", victim)
			cluster.Crash(env.NodeID(victim))
		})
		time.AfterFunc(duration*2/3, func() {
			fmt.Printf("... restarting replica %d\n", victim)
			cluster.Restart(env.NodeID(victim))
		})
	}

	wg.Wait()
	fmt.Printf("done: %d interactions, %d orders placed, %d errors (%.3f%% accuracy)\n",
		ops.Load(), orders.Load(), errs.Load(),
		100*float64(ops.Load()-errs.Load())/float64(maxInt64(ops.Load(), 1)))

	// Let the recovered replica finish re-synchronizing, then verify
	// convergence and invariants.
	time.Sleep(2 * time.Second)
	var refApplied int64 = -1
	for i := 0; i < nReplicas; i++ {
		if reps[i] == nil || !reps[i].Ready() {
			continue
		}
		if bad := stores[i].VerifyConsistency(); len(bad) > 0 {
			return fmt.Errorf("replica %d inconsistent: %v", i, bad)
		}
		la := int64(reps[i].LastApplied())
		if refApplied < la {
			refApplied = la
		}
		_, _, ordersN, _ := stores[i].Counts()
		fmt.Printf("replica %d: applied=%d orders=%d state=%.1f MB\n",
			i, la, ordersN, float64(stores[i].NominalBytes())/1e6)
	}
	fmt.Println("all live replicas consistent")
	return nil
}

// shopper is one closed-loop session: browse, fill a cart, buy.
func shopper(ctx context.Context, stop time.Time, rng *xrand.Rand,
	reps []*core.Replica, stores []*tpcw.Store, home int,
	ops, errs, orders *atomic.Int64) {

	var cart tpcw.CartID
	for time.Now().Before(stop) {
		if ctx.Err() != nil {
			return
		}
		r := reps[home]
		st := stores[home]
		if r == nil || !r.Ready() {
			// Our home replica is down: fail over to another.
			home = (home + 1) % len(reps)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		now := time.Now().UTC()
		item := tpcw.ItemID(rng.Intn(200) + 1)
		var err error
		switch rng.Intn(5) {
		case 0, 1: // browse
			st.GetBook(item)
			st.GetBestSellers(st.Subjects()[rng.Intn(4)])
		case 2, 3: // add to cart
			var res any
			res, err = r.Execute(ctx, tpcw.CartUpdateAction{
				Cart: cart, AddItem: item, AddQty: 1, RandomItem: item, Now: now,
			})
			if err == nil {
				cart = res.(tpcw.CartResult).Cart.ID
			}
		case 4: // buy
			if cart == 0 {
				continue
			}
			var res any
			res, err = r.Execute(ctx, tpcw.BuyConfirmAction{
				Cart: cart, Customer: tpcw.CustomerID(rng.Intn(300) + 1),
				ShipDate: now.AddDate(0, 0, 1+rng.Intn(7)), Now: now,
			})
			if err == nil {
				br := res.(tpcw.BuyConfirmResult)
				if br.Err == "" {
					orders.Add(1)
				}
				cart = 0
			}
		}
		ops.Add(1)
		if err != nil {
			errs.Add(1)
			home = (home + 1) % len(reps)
		}
		time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
	}
}

func awaitService(r *core.Replica) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.Ready() && r.HasLeader() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("service did not come up")
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
