// Command experiment reproduces the paper's evaluation from the command
// line: it runs any (or all) of the experiments behind Figures 3-8 and
// Tables 1-6 on the simulated cluster and prints the same rows and series
// the paper reports.
//
// Usage:
//
//	experiment -run all
//	experiment -run speedup
//	experiment -run one-crash -servers 5 -profile ordering
//	experiment -run recovery-times
//
// Every run is deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"robuststore/internal/exp"
	"robuststore/internal/rbe"
)

func main() {
	var (
		which   = flag.String("run", "all", "experiment: speedup | scaleup | one-crash | two-crashes | delayed | recovery-times | ablations | all")
		seed    = flag.Uint64("seed", 1, "root seed (runs are deterministic per seed)")
		servers = flag.Int("servers", 5, "replication degree for single-run modes")
		profile = flag.String("profile", "shopping", "workload profile for single-run modes: browsing | shopping | ordering")
	)
	flag.Parse()

	if err := run(*which, *seed, *servers, *profile); err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		os.Exit(1)
	}
}

func parseProfile(s string) (rbe.Profile, error) {
	switch s {
	case "browsing":
		return rbe.Browsing, nil
	case "shopping":
		return rbe.Shopping, nil
	case "ordering":
		return rbe.Ordering, nil
	default:
		return 0, fmt.Errorf("unknown profile %q", s)
	}
}

func run(which string, seed uint64, servers int, profileName string) error {
	out := os.Stdout
	switch which {
	case "speedup":
		exp.PrintSpeedup(out, exp.Speedup(seed))
	case "scaleup":
		exp.PrintScaleup(out, exp.Scaleup(seed))
	case "one-crash":
		profile, err := parseProfile(profileName)
		if err != nil {
			return err
		}
		r := exp.Run(exp.RunConfig{
			Profile: profile, Servers: servers, StateMB: 500,
			Fault: exp.OneCrash, Seed: seed,
		})
		exp.PrintHistogram(out, r)
		m := exp.FaultMatrix(exp.OneCrash, seed)
		exp.PrintPerformability(out, "Table 1 — One failure: performability", m)
		exp.PrintAccuracy(out, "Table 2 — One failure: accuracy (%)", m)
	case "two-crashes":
		m := exp.FaultMatrix(exp.TwoCrashes, seed)
		for _, p := range rbe.Profiles {
			exp.PrintHistogram(out, m["5/"+p.String()[:1]])
		}
		exp.PrintPerformability(out, "Table 3 — Two overlapped crashes: performability", m)
		exp.PrintAccuracy(out, "Table 4 — Two overlapped crashes: accuracy (%)", m)
	case "delayed":
		m := exp.FaultMatrix(exp.DelayedRecovery, seed)
		for _, p := range rbe.Profiles {
			exp.PrintHistogram(out, m["5/"+p.String()[:1]])
		}
		exp.PrintDelayedPerformability(out, m)
		exp.PrintAccuracy(out, "Table 6 — Delayed recovery: accuracy (%)", m)
		exp.PrintDependability(out, "Delayed recovery: availability/autonomy", m)
	case "recovery-times":
		exp.PrintRecoveryTimes(out, exp.RecoveryTimes(seed))
	case "ablations":
		exp.PrintAblation(out, exp.AblationFastPaxos(seed))
	case "all":
		for _, w := range []string{"speedup", "scaleup", "one-crash", "two-crashes", "delayed", "recovery-times", "ablations"} {
			fmt.Fprintln(out)
			if err := run(w, seed, servers, profileName); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
