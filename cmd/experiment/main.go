// Command experiment reproduces the paper's evaluation from the command
// line: it runs any (or all) of the experiments behind Figures 3-8 and
// Tables 1-6 on the simulated cluster and prints the same rows and series
// the paper reports.
//
// Usage:
//
//	experiment -run all
//	experiment -run speedup
//	experiment -run readscale -short
//	experiment -run one-crash -servers 5 -profile ordering
//	experiment -run recovery-times
//	experiment -run sharded -shards 2 -short
//	experiment -run sharded-recovery
//	experiment -run checkpoint -short
//	experiment -run partition -shards 2 -short
//	experiment -run slowdisk
//	experiment -run gray -short
//	experiment -run hunt -budget 16
//	experiment -run hunt -short -pin internal/exp/testdata/pinned
//	experiment -run batching -short
//
// The batching mode prints the WAL group-commit matrix: committed
// actions/s against SyncMode × consensus pipeline depth, with the
// pre-group-commit engine as the baseline row.
//
// The partition mode runs the correlated network faultloads (leader
// isolation, minority split, whole-group isolation, asymmetric one-way
// loss) and slowdisk the failing-disk straggler; both print partition /
// degradation windows beside the per-group dependability reports.
//
// The gray mode runs the gray-failure scenarios — a member that keeps
// acking probes while erroring or slow-walking requests, a leader doing
// the same, link latency inflation, and partition flapping — none of
// which probe-timeout detection can see.
//
// The hunt mode drives the faultload DSL generatively: it samples -budget
// random schedules from the grammar, judges each run with failure oracles
// (fence violations, availability floor, write-wedge), delta-debugs every
// failure to a minimal schedule, and — with -pin — writes each survivor
// as a reproducible JSON counterexample. The process exits 1 when the
// hunt finds anything, so a scheduled CI job fails loudly.
//
// The sharded modes run the faultload-DSL scenarios (one member of every
// group, rolling crashes, whole-group outage) against a Shards×Servers
// deployment and print per-group + aggregate dependability reports;
// -short shrinks them to a CI-sized smoke run. The checkpoint mode
// sweeps the checkpoint interval, comparing monolithic full-state
// checkpoints against the incremental delta-chain pipeline.
//
// Every run is deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"robuststore/internal/exp"
	"robuststore/internal/exp/search"
	"robuststore/internal/rbe"
)

func main() {
	var (
		which   = flag.String("run", "all", "experiment: speedup | scaleup | readscale | one-crash | two-crashes | delayed | recovery-times | batching | ablations | sharded | sharded-recovery | rebalance | checkpoint | partition | slowdisk | gray | txn | hunt | all")
		seed    = flag.Uint64("seed", 1, "root seed (runs are deterministic per seed)")
		servers = flag.Int("servers", 5, "replication degree for single-run modes")
		profile = flag.String("profile", "shopping", "workload profile for single-run modes: browsing | shopping | ordering")
		shards  = flag.Int("shards", 2, "Paxos group count for the sharded modes")
		short   = flag.Bool("short", false, "shrink the sharded suite (smoke run for CI)")
		budget  = flag.Int("budget", 16, "schedules the hunt mode tries")
		pin     = flag.String("pin", "", "directory the hunt mode pins found counterexamples under (empty: report only)")
	)
	flag.Parse()

	if err := run(*which, *seed, *servers, *profile, *shards, *short, *budget, *pin); err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		os.Exit(1)
	}
}

func parseProfile(s string) (rbe.Profile, error) {
	switch s {
	case "browsing":
		return rbe.Browsing, nil
	case "shopping":
		return rbe.Shopping, nil
	case "ordering":
		return rbe.Ordering, nil
	default:
		return 0, fmt.Errorf("unknown profile %q", s)
	}
}

func run(which string, seed uint64, servers int, profileName string, shards int, short bool, budget int, pin string) error {
	out := os.Stdout
	switch which {
	case "gray":
		// Gray failures: probe-healthy members erroring or slow-walking
		// requests, latency-inflated links, partition flapping — fault
		// windows on the paper's x-axis, per-group dependability beside.
		cfg := exp.ShardedSuiteConfig{Shards: shards, Seed: seed}
		if short {
			cfg.Browsers = 300
			cfg.Measure = 150 * time.Second
		}
		for _, r := range exp.GraySuite(cfg) {
			exp.PrintHistogram(out, r)
			exp.PrintShardedDependability(out, r)
			fmt.Fprintln(out)
		}
	case "txn":
		// Cross-shard transactions under 2PC-window faults: coordinator
		// crash between prepare and commit, participant group severed,
		// participant crash holding prepared branches — each run audited
		// for atomicity (nothing lost, duplicated or half-applied).
		cfg := exp.ShardedSuiteConfig{Shards: shards, Seed: seed}
		if short {
			cfg.Browsers = 300
			cfg.Measure = 150 * time.Second
		}
		violations := 0
		for _, r := range exp.TxnSuite(cfg) {
			exp.PrintTxnReport(out, r)
			fmt.Fprintln(out)
			violations += r.Txn.Violations()
		}
		if violations > 0 {
			return fmt.Errorf("txn: %d atomicity violation(s)", violations)
		}
	case "hunt":
		// Generative fault search: random schedules, oracle judgement,
		// shrinking, pinning. Exits 1 on any finding so CI fails loudly.
		cfg := search.Config{Seed: seed, Budget: budget, PinDir: pin, Log: out}
		if short {
			cfg.Budget = 2
			cfg.Browsers = 200
			cfg.ShrinkBudget = 12
		}
		rep := search.Hunt(cfg)
		search.PrintReport(out, rep)
		if len(rep.Findings) > 0 {
			os.Exit(1)
		}
	case "sharded":
		cfg := exp.ShardedSuiteConfig{Shards: shards, Seed: seed}
		if short {
			cfg.Browsers = 300
			cfg.Measure = 150 * time.Second
		}
		for _, r := range exp.ShardedSuite(cfg) {
			exp.PrintHistogram(out, r)
			exp.PrintShardedDependability(out, r)
			fmt.Fprintln(out)
		}
	case "partition":
		// Correlated network faults: leader isolation, minority split,
		// whole-group isolation (proxy path severed), asymmetric one-way
		// loss — partition windows on the paper's x-axis with per-group
		// dependability reports.
		cfg := exp.ShardedSuiteConfig{Shards: shards, Seed: seed}
		if short {
			cfg.Browsers = 300
			cfg.Measure = 150 * time.Second
		}
		for _, r := range exp.PartitionSuite(cfg) {
			exp.PrintHistogram(out, r)
			exp.PrintShardedDependability(out, r)
			fmt.Fprintln(out)
		}
	case "slowdisk":
		// The failing-disk straggler: one member's disk degraded live,
		// dragging group commit and checkpoints without tripping crash
		// detection.
		cfg := exp.ShardedSuiteConfig{Shards: shards, Seed: seed}
		if short {
			cfg.Browsers = 300
			cfg.Measure = 150 * time.Second
		}
		r := exp.SlowDiskScenario(cfg)
		exp.PrintHistogram(out, r)
		exp.PrintShardedDependability(out, r)
	case "rebalance":
		// Resharding under fault: add a group live at t=240 s, kill a
		// source-group member mid-copy, report the migration window and
		// per-group dependability (new group included).
		cfg := exp.ShardedSuiteConfig{Shards: shards, Seed: seed}
		if short {
			cfg.Browsers = 300
			cfg.Measure = 150 * time.Second
		}
		r := exp.RebalanceScenario(cfg)
		exp.PrintHistogram(out, r)
		exp.PrintRebalance(out, r)
	case "checkpoint":
		// Recovery time vs checkpoint interval (the Figure 6 trade-off),
		// monolithic full-state checkpoints vs the incremental
		// delta-chain pipeline at equal state size.
		cfg := exp.CheckpointCurveConfig{Seed: seed}
		if short {
			cfg.Servers = 3
			cfg.StateMB = 300
			cfg.Browsers = 300
			cfg.Measure = 150 * time.Second
			cfg.Intervals = []int{20, 60}
		}
		exp.PrintCheckpointCurve(out, exp.CheckpointCurve(cfg))
	case "sharded-recovery":
		// Sweep doubling shard counts up to -shards (e.g. -shards 8 →
		// 1, 2, 4, 8).
		var counts []int
		for n := 1; n < shards; n *= 2 {
			counts = append(counts, n)
		}
		counts = append(counts, shards)
		if short && len(counts) > 2 {
			counts = counts[:2]
		}
		exp.PrintShardedRecovery(out, exp.ShardedRecoveryCurve(seed, counts))
	case "readscale":
		// Read scale-out: learner-backed readers per group under the
		// Browsing profile — read throughput vs read-serving node count,
		// with fence-wait / stale-serve accounting.
		cfg := exp.ReadScaleConfig{Seed: seed}
		if short {
			cfg.Browsers = 300
			cfg.Measure = 60 * time.Second
			cfg.Counts = []int{0, 3}
		}
		exp.PrintReadScale(out, exp.ReadScale(cfg))
	case "speedup":
		exp.PrintSpeedup(out, exp.Speedup(seed))
	case "scaleup":
		exp.PrintScaleup(out, exp.Scaleup(seed))
	case "one-crash":
		profile, err := parseProfile(profileName)
		if err != nil {
			return err
		}
		r := exp.Run(exp.RunConfig{
			Profile: profile, Servers: servers, StateMB: 500,
			Fault: exp.OneCrash, Seed: seed,
		})
		exp.PrintHistogram(out, r)
		m := exp.FaultMatrix(exp.OneCrash, seed)
		exp.PrintPerformability(out, "Table 1 — One failure: performability", m)
		exp.PrintAccuracy(out, "Table 2 — One failure: accuracy (%)", m)
	case "two-crashes":
		m := exp.FaultMatrix(exp.TwoCrashes, seed)
		for _, p := range rbe.Profiles {
			exp.PrintHistogram(out, m["5/"+p.String()[:1]])
		}
		exp.PrintPerformability(out, "Table 3 — Two overlapped crashes: performability", m)
		exp.PrintAccuracy(out, "Table 4 — Two overlapped crashes: accuracy (%)", m)
	case "delayed":
		m := exp.FaultMatrix(exp.DelayedRecovery, seed)
		for _, p := range rbe.Profiles {
			exp.PrintHistogram(out, m["5/"+p.String()[:1]])
		}
		exp.PrintDelayedPerformability(out, m)
		exp.PrintAccuracy(out, "Table 6 — Delayed recovery: accuracy (%)", m)
		exp.PrintDependability(out, "Delayed recovery: availability/autonomy", m)
	case "recovery-times":
		exp.PrintRecoveryTimes(out, exp.RecoveryTimes(seed))
	case "batching":
		// WAL group commit: ordered actions/s vs SyncMode × pipeline
		// depth on the same simulated disk, against the pre-group-commit
		// engine baseline (ROADMAP item 2).
		cfg := exp.BatchingConfig{Seed: seed}
		if short {
			cfg.Shards = []int{1}
			cfg.Warmup = time.Second
			cfg.Measure = 2 * time.Second
		}
		exp.PrintBatching(out, exp.Batching(cfg))
	case "ablations":
		exp.PrintAblation(out, exp.AblationFastPaxos(seed))
	case "all":
		for _, w := range []string{"speedup", "scaleup", "readscale", "one-crash", "two-crashes", "delayed", "recovery-times", "batching", "sharded", "sharded-recovery", "rebalance", "checkpoint", "partition", "slowdisk", "gray", "txn", "ablations"} {
			fmt.Fprintln(out)
			if err := run(w, seed, servers, profileName, shards, short, budget, pin); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
