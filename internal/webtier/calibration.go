package webtier

import (
	"time"

	"robuststore/internal/rbe"
	"robuststore/internal/tpcw"
)

// Calibration holds the performance model of the paper's hardware (§5.1:
// single-Xeon 2.4 GHz nodes running Tomcat, one HAProxy node, 1 Gbps
// switch). Service times are charged to simulated CPU resources; they are
// calibrated so the failure-free results match Table 1 and Figures 3–4
// (see internal/exp/calibration.go for the experiment-level constants).
type Calibration struct {
	// ReadService is the CPU time to execute one read interaction
	// (parse + query + render).
	ReadService map[rbe.Interaction]time.Duration

	// WriteParse is the CPU time before a write action is submitted
	// for ordering, and WriteRender the time to render its result page.
	WriteParse  time.Duration
	WriteRender time.Duration

	// ApplyCPU is the CPU time every replica spends executing one
	// totally ordered action (the active-replication cost: all replicas
	// apply all writes).
	ApplyCPU map[string]time.Duration

	// LeaderMsgCPU is the per-peer CPU cost the consensus coordinator
	// pays per ordered value (marshalling + I/O for phase-2/learn
	// traffic), charged as k × LeaderMsgCPU on the leader.
	LeaderMsgCPU time.Duration

	// CheckpointPause is CPU time per checkpoint byte (state
	// serialization; concurrent snapshotting keeps it small).
	CheckpointPausePerMB time.Duration
	CheckpointPauseMax   time.Duration

	// PageSize is the modeled response page size in bytes.
	PageSize int64

	// ProxyService is the proxy CPU time per interaction (both
	// directions); it caps cluster-wide throughput at roughly
	// 1/ProxyService, which is the ceiling a single HAProxy node puts
	// on speedup (Figure 3).
	ProxyService time.Duration

	// Probe parameters (paper §5.1: HAProxy removes a server after 4
	// unsuccessful probes and re-adds it when probed active again).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	ProbeFailures int

	// ReqTimeout bounds one interaction end-to-end; expiry counts as an
	// error.
	ReqTimeout time.Duration

	// FenceWait bounds how long a fenced read waits for the serving
	// replica to catch up to the session's commit index before answering
	// TooStale (the staleness bound of the follower-read protocol). It
	// must stay well under ReqTimeout so the proxy's stale-retry still
	// fits in the client's patience. Default 2 s.
	FenceWait time.Duration

	// JVM garbage-collection model: state-mutating actions promote
	// objects to the old generation; every GCPromotedLimit bytes of
	// promotion triggers a stop-the-world pause whose length grows with
	// the live set (the replicated state). This is what makes the
	// write-heavy ordering profile oscillate (CV 0.2-0.33 in the
	// paper's Tables 1/3) while browsing stays at CV 0.01.
	GCPromotedLimit int64
	GCPauseBase     time.Duration
	GCPausePerMB    time.Duration

	// ActionPromoted maps an action class to its promoted bytes.
	ActionPromoted map[string]int64
}

// DefaultCalibration returns the model of the paper's testbed.
func DefaultCalibration() Calibration {
	return Calibration{
		ReadService: map[rbe.Interaction]time.Duration{
			rbe.Home:          3100 * time.Microsecond,
			rbe.NewProducts:   4200 * time.Microsecond,
			rbe.BestSellers:   5000 * time.Microsecond,
			rbe.ProductDetail: 2400 * time.Microsecond,
			rbe.SearchRequest: 1300 * time.Microsecond,
			rbe.SearchResults: 4200 * time.Microsecond,
			rbe.OrderInquiry:  1300 * time.Microsecond,
			rbe.OrderDisplay:  3100 * time.Microsecond,
			rbe.AdminRequest:  2400 * time.Microsecond,
		},
		WriteParse:  1600 * time.Microsecond,
		WriteRender: 1400 * time.Microsecond,
		// Raw state-machine apply is cheap relative to the request path
		// (no parsing or rendering): it is what every replica pays for
		// every write, and what bounds post-crash replay speed.
		ApplyCPU: map[string]time.Duration{
			"cart":     300 * time.Microsecond,
			"customer": 350 * time.Microsecond,
			"buy":      600 * time.Microsecond,
			"session":  150 * time.Microsecond,
			"admin":    500 * time.Microsecond,
		},
		LeaderMsgCPU:    70 * time.Microsecond,
		GCPromotedLimit: 8 << 20,
		GCPauseBase:     250 * time.Millisecond,
		GCPausePerMB:    1100 * time.Microsecond,
		ActionPromoted: map[string]int64{
			"cart":     380,
			"customer": 1350,
			"buy":      1900,
			"session":  16,
			"admin":    64,
		},
		CheckpointPausePerMB: 120 * time.Microsecond,
		CheckpointPauseMax:   80 * time.Millisecond,
		PageSize:             6 * 1024,
		ProxyService:         420 * time.Microsecond,
		ProbeInterval:        time.Second,
		ProbeTimeout:         500 * time.Millisecond,
		ProbeFailures:        4,
		ReqTimeout:           10 * time.Second,
		FenceWait:            2 * time.Second,
	}
}

// fenceWait returns the bounded-staleness wait, defaulting when a custom
// Calibration left it unset.
func (c Calibration) fenceWait() time.Duration {
	if c.FenceWait > 0 {
		return c.FenceWait
	}
	return 2 * time.Second
}

// readService returns the read service time for an interaction.
func (c Calibration) readService(kind rbe.Interaction) time.Duration {
	if d, ok := c.ReadService[kind]; ok {
		return d
	}
	return 2 * time.Millisecond
}

// actionClass buckets actions for the cost tables.
func actionClass(action any) string {
	switch action.(type) {
	case tpcw.CartUpdateAction, tpcw.CreateCartAction:
		return "cart"
	case tpcw.CreateCustomerAction:
		return "customer"
	case tpcw.BuyConfirmAction:
		return "buy"
	case tpcw.RefreshSessionAction:
		return "session"
	case tpcw.AdminUpdateAction:
		return "admin"
	default:
		return "other"
	}
}

// applyCPU returns the apply cost of an action.
func (c Calibration) applyCPU(action any) time.Duration {
	if d, ok := c.ApplyCPU[actionClass(action)]; ok {
		return d
	}
	return 400 * time.Microsecond
}

// actionPromoted returns the old-generation promotion of an action.
func (c Calibration) actionPromoted(action any) int64 {
	return c.ActionPromoted[actionClass(action)]
}

// gcPause returns the stop-the-world pause for a live set of the given
// nominal size.
func (c Calibration) gcPause(stateBytes int64) time.Duration {
	return c.GCPauseBase + time.Duration(stateBytes/1e6)*c.GCPausePerMB
}

// checkpointPause returns the CPU pause for serializing a checkpoint of
// the given size.
func (c Calibration) checkpointPause(size int64) time.Duration {
	d := time.Duration(float64(size) / 1e6 * float64(c.CheckpointPausePerMB))
	if d > c.CheckpointPauseMax {
		d = c.CheckpointPauseMax
	}
	return d
}
