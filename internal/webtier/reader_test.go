package webtier

import (
	"testing"
	"time"

	"robuststore/internal/paxos"
	"robuststore/internal/rbe"
)

// readerCluster boots a 3-voter group with learner-backed readers.
func readerCluster(t *testing.T, readers int) *Cluster {
	t.Helper()
	c := testCluster(t, 3, func(cfg *Config) { cfg.Readers = readers })
	c.Sim().RunFor(3 * time.Second) // extra boot: readers must be accepting
	for j := 0; j < readers; j++ {
		if i := c.ReaderIndex(0, j); !c.accepting(i) {
			t.Fatalf("reader %d (flat %d) did not boot", j, i)
		}
	}
	return c
}

// dispatchAll pushes each request through the proxy internals, records
// the server it landed on, and completes it with an OK reply carrying
// the given commit index (so write acks fold into the session fence
// exactly as a served write would).
func dispatchAll(c *Cluster, reqs []rbe.Request, commit paxos.InstanceID) []int {
	s := c.Sim()
	servers := make([]int, 0, len(reqs))
	s.At(s.Now(), func() {
		p := c.proxy
		for _, req := range reqs {
			r := &outReq{req: req, done: func(rbe.Response) {}}
			p.dispatch(r)
			servers = append(servers, r.server)
			p.onResponse(respMsg{ID: r.curID, Resp: rbe.Response{}, Commit: commit})
		}
	})
	s.RunFor(time.Second)
	return servers
}

func repeat(req rbe.Request, n int) []rbe.Request {
	out := make([]rbe.Request, n)
	for i := range out {
		out[i] = req
	}
	return out
}

// TestLaggingReaderFencedReads: a learner cut off from its voters lags
// behind the session's acked writes. The session's fenced reads that
// land on it must wait, expire into TooStale past the staleness bound,
// and be transparently re-served by a voter — never an error, never a
// read below the fence.
func TestLaggingReaderFencedReads(t *testing.T) {
	c := readerCluster(t, 1)
	s := c.Sim()
	reader := c.ReaderIndex(0, 0)
	// Sever voter→reader links: the learner stops hearing chosen values.
	// Its proxy link stays up, so it remains in the read rotation.
	for v := 0; v < 3; v++ {
		s.SetLink(c.serverIDs[v], c.serverIDs[reader], true)
	}
	resp, got := do(c, rbe.Request{Client: 7, Kind: rbe.ShoppingCart, Item: 5, Qty: 1})
	if !got || resp.Err || resp.Cart == 0 {
		t.Fatalf("cart write failed: %+v got=%v", resp, got)
	}
	resp, got = do(c, rbe.Request{Client: 7, Kind: rbe.BuyConfirm, Cart: resp.Cart, Customer: 1, Item: 5})
	if !got || resp.Err || resp.Order == 0 {
		t.Fatalf("purchase failed: %+v got=%v", resp, got)
	}
	order := resp.Order
	if c.proxy.sessFence[7].idx == 0 {
		t.Fatal("acked writes did not set the session's fence")
	}
	if _, ok := c.Store(reader).GetOrder(order); ok {
		t.Fatal("cut-off reader already has the order; the lag setup is broken")
	}
	if _, ok := c.Store(0).GetOrder(order); !ok {
		t.Fatal("voter 0 is missing the acked order")
	}
	// Eight fenced reads: the rotation lands some on the lagging reader.
	for i := 0; i < 8; i++ {
		if resp, got := do(c, rbe.Request{Client: 7, Kind: rbe.Home, Item: 1}); !got || resp.Err {
			t.Fatalf("fenced read %d failed: %+v got=%v", i, resp, got)
		}
	}
	_, fw, ss := c.ReadStats(0)
	if fw == 0 {
		t.Error("no fenced read ever waited on the lagging reader")
	}
	if ss == 0 {
		t.Error("no fence wait expired into a TooStale fallback")
	}
	if st := c.ProxyStats(); st.StaleRedispatched == 0 {
		t.Errorf("TooStale replies were not redispatched to the voters: %+v", st)
	}
	if v := c.FenceViolations(); v != 0 {
		t.Fatalf("%d fenced reads served below their fence", v)
	}
	// Heal: the learner catches up off the voters' learn stream.
	for v := 0; v < 3; v++ {
		s.SetLink(c.serverIDs[v], c.serverIDs[reader], false)
	}
	s.RunFor(15 * time.Second)
	if _, ok := c.Store(reader).GetOrder(order); !ok {
		t.Fatal("healed reader never caught up to the acked order")
	}
}

// TestReaderZeroVoterFencedReads: with no learner readers the fences
// engage on the voters themselves — one client's reads rotate across the
// group's voting replicas (a trailing non-leader voter is now a
// legitimate read server), acked commit indices fold into the session
// fence, writes keep their voter hash affinity, and no read is ever
// served below its fence.
func TestReaderZeroVoterFencedReads(t *testing.T) {
	c := testCluster(t, 3, nil)
	dispatchAll(c, repeat(rbe.Request{Client: 42, Kind: rbe.ShoppingCart, Item: 1, Qty: 1}, 1), 7)
	if f := c.proxy.sessFence[42].idx; f != 7 {
		t.Fatalf("Readers=0 did not fold the acked commit index into the fence: got %d, want 7", f)
	}
	reads := dispatchAll(c, repeat(rbe.Request{Client: 42, Kind: rbe.Home, Item: 1}, 6), 0)
	distinct := map[int]bool{}
	for _, srv := range reads {
		distinct[srv] = true
		if c.isReader(srv) {
			t.Fatalf("Readers=0 dispatched a read to a reader index %d", srv)
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("Readers=0 reads stayed pinned to one voter: %v", reads)
	}
	writes := dispatchAll(c, repeat(rbe.Request{Client: 42, Kind: rbe.ShoppingCart, Item: 2, Qty: 1}, 4), 0)
	for _, srv := range writes {
		if srv != writes[0] {
			t.Fatalf("writes lost their hash affinity: %v", writes)
		}
	}
	// End-to-end: real fenced reads against the voters never serve below
	// the session's acked writes.
	resp, got := do(c, rbe.Request{Client: 7, Kind: rbe.ShoppingCart, Item: 5, Qty: 1})
	if !got || resp.Err || resp.Cart == 0 {
		t.Fatalf("cart write failed: %+v got=%v", resp, got)
	}
	for i := 0; i < 8; i++ {
		if resp, got := do(c, rbe.Request{Client: 7, Kind: rbe.Home, Item: 1}); !got || resp.Err {
			t.Fatalf("fenced read %d failed: %+v got=%v", i, resp, got)
		}
	}
	if v := c.FenceViolations(); v != 0 {
		t.Fatalf("%d fenced reads served below their fence", v)
	}
}

// TestReaderRotationAndFenceFold: with readers present, one client's
// reads spread across several read-serving nodes (no more hot-client
// pinning), writes keep their voter hash affinity, and acked commit
// indices fold monotonically into the session fence.
func TestReaderRotationAndFenceFold(t *testing.T) {
	c := readerCluster(t, 1)
	dispatchAll(c, repeat(rbe.Request{Client: 42, Kind: rbe.ShoppingCart, Item: 1, Qty: 1}, 1), 7)
	if f := c.proxy.sessFence[42].idx; f != 7 {
		t.Fatalf("fence after first acked write = %d, want 7", f)
	}
	// A retried older ack must not lower the fence.
	dispatchAll(c, repeat(rbe.Request{Client: 42, Kind: rbe.ShoppingCart, Item: 1, Qty: 1}, 1), 3)
	if f := c.proxy.sessFence[42].idx; f != 7 {
		t.Fatalf("stale ack lowered the fence to %d", f)
	}
	reads := dispatchAll(c, repeat(rbe.Request{Client: 42, Kind: rbe.Home, Item: 1}, 6), 0)
	distinct := map[int]bool{}
	for _, srv := range reads {
		distinct[srv] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("one client's reads stayed pinned to one server with readers present: %v", reads)
	}
	writes := dispatchAll(c, repeat(rbe.Request{Client: 42, Kind: rbe.ShoppingCart, Item: 2, Qty: 1}, 4), 0)
	for _, srv := range writes {
		if srv != writes[0] {
			t.Fatalf("writes lost their hash affinity: %v", writes)
		}
		if c.isReader(srv) {
			t.Fatalf("a write was dispatched to reader %d", srv)
		}
	}
}

// TestReadRetryAvoidsFailedServerWithReaders: the transparent retry of a
// server-side read error must not re-land on the failed server when the
// rotation (rather than the deterministic client hash) picked it.
func TestReadRetryAvoidsFailedServerWithReaders(t *testing.T) {
	c := readerCluster(t, 1)
	s := c.Sim()
	var first, second int
	s.At(s.Now(), func() {
		p := c.proxy
		r := &outReq{req: rbe.Request{Client: 42, Kind: rbe.Home, Item: 1}, done: func(rbe.Response) {}}
		p.dispatch(r)
		first = r.server
		p.onResponse(respMsg{ID: r.curID, Resp: rbe.Response{Err: true}})
		second = r.server
		p.onResponse(respMsg{ID: r.curID, Resp: rbe.Response{}})
	})
	s.RunFor(time.Second)
	if second == first {
		t.Fatalf("read retry re-landed on server %d, which just failed it", first)
	}
}
