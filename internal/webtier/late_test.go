package webtier

import (
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/rbe"
)

// Regression tests for late server responses arriving at the proxy after
// the request's lifecycle already ended — expired, retried, or finished.
// The migration cutover path stresses exactly these races (a response
// from the old group can trail the epoch switch), so the proxy must be
// immune to double-finish and to resurrecting dead requests.

// lateHarness dispatches one request directly and returns the outReq and
// its outstanding ID so the test can deliver protocol messages by hand.
func lateHarness(t *testing.T, c *Cluster, kind rbe.Interaction, done func(rbe.Response)) (*outReq, int64) {
	t.Helper()
	p := c.proxy
	r := &outReq{req: rbe.Request{Client: 42, Kind: kind, Item: 1}, done: done}
	p.dispatch(r)
	for id, v := range p.outstanding {
		if v == r {
			return r, id
		}
	}
	t.Fatal("request not outstanding after dispatch")
	return nil, 0
}

// TestLateResponseAfterExpiryIsIgnored: a read whose reply never returns
// (a silent server — one-way loss) is redispatched once on its first
// timeout; the second timeout fails the client, and responses trailing in
// after either attempt must be dropped — finishing again would call done
// twice.
func TestLateResponseAfterExpiryIsIgnored(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	finishes := 0
	var last rbe.Response
	s.At(s.Now(), func() {
		r, id := lateHarness(t, c, rbe.Home, func(resp rbe.Response) { finishes++; last = resp })
		p := c.proxy
		// First expiry of a read: redispatched away from the silent
		// server, not failed — outstanding again under a fresh ID.
		p.expire(id)
		if r.finished || finishes != 0 {
			t.Fatalf("first read expiry must redispatch, not finish: finishes=%d", finishes)
		}
		var retryID int64
		for nid, v := range p.outstanding {
			if v == r {
				retryID = nid
			}
		}
		if retryID == 0 || retryID == id {
			t.Fatalf("read not redispatched under a fresh ID after expiry (got %d)", retryID)
		}
		// The expired attempt's answer trails in: superseded, ignored.
		p.onResponse(respMsg{ID: id, Resp: rbe.Response{}})
		if finishes != 0 {
			t.Fatal("stale response to the expired attempt finished the request")
		}
		// The second expiry exhausts the retry budget: the client gets
		// the error, exactly once.
		p.expire(retryID)
		if finishes != 1 || !last.Err {
			t.Fatalf("expiry must finish the request with an error: finishes=%d resp=%+v", finishes, last)
		}
		// The server's answer arrives late: must be ignored entirely.
		p.onResponse(respMsg{ID: retryID, Resp: rbe.Response{}})
		p.onResponse(respMsg{ID: retryID, Resp: rbe.Response{}}) // and again
	})
	s.RunFor(time.Second)
	if finishes != 1 {
		t.Fatalf("done ran %d times, want exactly once", finishes)
	}
	if st := c.ProxyStats(); st.ErrTimeout != 1 || st.Redispatched != 1 {
		t.Fatalf("expected one timeout and one redispatch in stats, got %+v", st)
	}
}

// TestRetryWithLostReplyStillTimesOut: a server-error retry re-registers
// the request under a fresh outstanding ID; the end-to-end timer must
// follow it there. If the retry's reply is then lost (the retry landed
// on a server silenced by one-way loss), the client must get a timeout
// error — not hang forever with a timer keyed to the dead first attempt.
func TestRetryWithLostReplyStillTimesOut(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	finishes := 0
	var last rbe.Response
	s.At(s.Now(), func() {
		// Every server goes silent: requests arrive, replies vanish.
		c.PartitionServers(env.LinkOutboundOnly, 0, 1, 2)
		p := c.proxy
		r, firstID := lateHarness(t, c, rbe.Home, func(resp rbe.Response) { finishes++; last = resp })
		// Server-side error: the read is transparently retried under a
		// fresh ID. Its reply never arrives (the retry's server is
		// silent too).
		p.onResponse(respMsg{ID: firstID, Resp: rbe.Response{Err: true}})
		if r.finished || r.curID == firstID {
			t.Fatalf("retry not re-registered: finished=%v curID=%d", r.finished, r.curID)
		}
	})
	// Run past the end-to-end request timeout: the timer must expire the
	// retried attempt and fail the client exactly once.
	s.RunFor(c.cfg.Cal.ReqTimeout + 2*time.Second)
	if finishes != 1 || !last.Err {
		t.Fatalf("retried request with lost reply never timed out: finishes=%d resp=%+v", finishes, last)
	}
	if st := c.ProxyStats(); st.ErrTimeout != 1 {
		t.Fatalf("expected one timeout in stats, got %+v", st)
	}
}

// TestStaleResponseAfterRetryIsSuperseded: when a read is redispatched,
// the first server's late answer must not finish the request — only the
// retry's answer may, exactly once, even if the original reply then
// trickles in.
func TestStaleResponseAfterRetryIsSuperseded(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	finishes := 0
	s.At(s.Now(), func() {
		p := c.proxy
		r, firstID := lateHarness(t, c, rbe.Home, func(rbe.Response) { finishes++ })
		// Server-side error triggers the transparent retry; the retry is
		// outstanding under a fresh ID.
		p.onResponse(respMsg{ID: firstID, Resp: rbe.Response{Err: true}})
		if r.finished {
			t.Fatal("request finished by the failed first attempt")
		}
		var retryID int64
		for id, v := range p.outstanding {
			if v == r {
				retryID = id
			}
		}
		if retryID == 0 || retryID == firstID {
			t.Fatalf("retry not outstanding under a fresh ID (got %d)", retryID)
		}
		// The first server's answer now trails in — superseded, ignored.
		p.onResponse(respMsg{ID: firstID, Resp: rbe.Response{}})
		if finishes != 0 {
			t.Fatal("stale first-attempt response finished the retried request")
		}
		// The retry completes; a duplicate of it is ignored too.
		p.onResponse(respMsg{ID: retryID, Resp: rbe.Response{}})
		p.onResponse(respMsg{ID: retryID, Resp: rbe.Response{}})
	})
	s.RunFor(time.Second)
	if finishes != 1 {
		t.Fatalf("done ran %d times, want exactly once", finishes)
	}
}

// TestStaleEpochResponseRedirects: a WrongEpoch answer (the request raced
// a rebalance cutover) re-routes the request instead of failing the
// client, and a late duplicate of the old answer cannot double-finish.
// This is the double-finish hazard of the cutover path in isolation.
func TestStaleEpochResponseRedirects(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	finishes := 0
	var resp rbe.Response
	s.At(s.Now(), func() {
		p := c.proxy
		r, firstID := lateHarness(t, c, rbe.ShoppingCart, func(rr rbe.Response) { finishes++; resp = rr })
		// The serving group answers "not mine any more".
		p.onResponse(respMsg{ID: firstID, Resp: rbe.Response{Err: true}, WrongEpoch: true})
		if r.finished || finishes != 0 {
			t.Fatal("epoch redirect must not finish the request")
		}
		if st := c.ProxyStats(); st.EpochRedirects != 1 || st.ErrServerSide != 0 {
			t.Fatalf("redirect accounting wrong: %+v", st)
		}
		// Late duplicate of the old answer: superseded, ignored.
		p.onResponse(respMsg{ID: firstID, Resp: rbe.Response{Err: true}, WrongEpoch: true})
		// The re-dispatched request is outstanding again and completes
		// normally (a write, untouched by the redirect accounting).
		var newID int64
		for id, v := range p.outstanding {
			if v == r {
				newID = id
			}
		}
		if newID == 0 {
			t.Fatal("request not re-dispatched after WrongEpoch")
		}
		p.onResponse(respMsg{ID: newID, Resp: rbe.Response{Cart: 7}})
	})
	s.RunFor(time.Second)
	if finishes != 1 || resp.Err || resp.Cart != 7 {
		t.Fatalf("redirected write did not complete cleanly: finishes=%d resp=%+v", finishes, resp)
	}
}

// TestEpochRedirectLoopBounded: endless WrongEpoch answers (a server
// stuck on a stale view) must not redispatch forever — after the cap the
// client gets an error, once.
func TestEpochRedirectLoopBounded(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	finishes := 0
	s.At(s.Now(), func() {
		p := c.proxy
		r, id := lateHarness(t, c, rbe.Home, func(rbe.Response) { finishes++ })
		for hops := 0; hops < 10 && !r.finished; hops++ {
			p.onResponse(respMsg{ID: id, Resp: rbe.Response{Err: true}, WrongEpoch: true})
			if r.finished {
				break
			}
			found := false
			for nid, v := range p.outstanding {
				if v == r {
					id, found = nid, true
				}
			}
			if !found {
				t.Fatal("request neither finished nor outstanding")
			}
		}
		if !r.finished {
			t.Fatal("unbounded WrongEpoch loop")
		}
	})
	s.RunFor(time.Second)
	if finishes != 1 {
		t.Fatalf("done ran %d times, want exactly once", finishes)
	}
	if st := c.ProxyStats(); st.EpochRedirects != 4 {
		t.Fatalf("expected the redirect cap (4), got %+v", st)
	}
}
