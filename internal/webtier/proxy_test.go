package webtier

import (
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/rbe"
)

// TestOneWayLossEvictsAndServiceContinues: a server under outbound-only
// loss hears everything but its answers vanish — no connection reset ever
// arrives. Its probe responses time out, the proxy evicts it after the
// threshold, service continues on the survivors, and after the heal a
// succeeding probe re-admits it.
func TestOneWayLossEvictsAndServiceContinues(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	h := c.PartitionServers(env.LinkOutboundOnly, 1)
	s.RunFor(8 * time.Second) // enough probe timeouts to cross the threshold
	if c.proxy.up[1] {
		t.Fatal("silent server still in rotation after the eviction threshold")
	}
	if resp, got := do(c, rbe.Request{Client: 7, Kind: rbe.Home, Item: 1}); !got || resp.Err {
		t.Fatalf("read against the surviving servers failed: %+v got=%v", resp, got)
	}
	h.Heal()
	s.RunFor(3 * time.Second)
	if !c.proxy.up[1] {
		t.Fatal("healed server was not re-admitted by a succeeding probe")
	}
	if c.Faults() != 1 {
		t.Fatalf("one-way loss must count as one injected fault, got %d", c.Faults())
	}
}

// TestRetryAvoidsFailingServer: a server-side error on a read triggers
// one transparent retry, and that retry must not re-land on the server
// that just failed — the client hash is deterministic, so an unchanged
// candidate set would re-pick it every time (e.g. a server that answers
// errors while warming up would fail the same request twice).
func TestRetryAvoidsFailingServer(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	var first, second int
	var resp rbe.Response
	got := false
	s.At(s.Now(), func() {
		p := c.proxy
		r := &outReq{
			req:  rbe.Request{Client: 42, Kind: rbe.Home, Item: 1},
			done: func(rr rbe.Response) { resp = rr; got = true },
		}
		p.dispatch(r)
		first = r.server
		var id int64
		for k, v := range p.outstanding {
			if v == r {
				id = k
			}
		}
		// Simulate the server failing the request server-side.
		p.onResponse(respMsg{ID: id, Resp: rbe.Response{Err: true}})
		second = r.server
	})
	s.RunFor(5 * time.Second)
	if st := c.ProxyStats(); st.Redispatched != 1 {
		t.Fatalf("expected one redispatch, stats=%+v", st)
	}
	if second == first {
		t.Fatalf("transparent retry re-landed on server %d, which just failed it", first)
	}
	if !got || resp.Err {
		t.Fatalf("retried read did not complete cleanly: got=%v resp=%+v", got, resp)
	}
	if st := c.ProxyStats(); st.ErrServerSide != 0 {
		t.Errorf("retry succeeded, yet a server-side error was counted: %+v", st)
	}
}

// TestRetryFallsBackToSameServerWhenAlone: with a single candidate the
// retry may only go back to it — excluding it would turn a retryable
// blip into a spurious no-server error.
func TestRetryFallsBackToSameServerWhenAlone(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	c.SetAutoRestart(1, false)
	c.SetAutoRestart(2, false)
	c.Crash(1)
	c.Crash(2)
	s.RunFor(10 * time.Second) // probes evict the dead servers
	var first, second int
	s.At(s.Now(), func() {
		p := c.proxy
		r := &outReq{
			req:  rbe.Request{Client: 42, Kind: rbe.Home, Item: 1},
			done: func(rbe.Response) {},
		}
		p.dispatch(r)
		first = r.server
		var id int64
		for k, v := range p.outstanding {
			if v == r {
				id = k
			}
		}
		p.onResponse(respMsg{ID: id, Resp: rbe.Response{Err: true}})
		second = r.server
	})
	s.RunFor(2 * time.Second)
	if st := c.ProxyStats(); st.ErrNoServer != 0 {
		t.Fatalf("lone-survivor retry produced a no-server error: %+v", st)
	}
	if second != first {
		t.Fatalf("retry went to %d with only %d in rotation", second, first)
	}
}

// TestProbeTimeoutEvictsAfterFourFailures exercises the probe timeout
// path of the health-check state machine: the server process is alive and
// accepting, but its probe responses are lost, which must count failures
// and evict after the configured threshold — then one successful probe
// re-admits and resets the counter.
func TestProbeTimeoutEvictsAfterFourFailures(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	srv := c.serverIDs[1]
	s.SetLink(srv, c.proxyID, true) // responses vanish: probe timeouts
	s.RunFor(2600 * time.Millisecond)
	if !c.proxy.up[1] {
		t.Fatal("evicted before reaching the failure threshold")
	}
	if c.proxy.failCount[1] == 0 {
		t.Fatal("probe timeouts did not count as failures")
	}
	s.RunFor(3 * time.Second)
	if c.proxy.up[1] {
		t.Fatal("4 timed-out probes must evict the server")
	}
	s.Heal()
	s.RunFor(2 * time.Second)
	if !c.proxy.up[1] {
		t.Fatal("successful probe must re-admit the server")
	}
	if c.proxy.failCount[1] != 0 {
		t.Errorf("failCount = %d after a successful probe, want 0", c.proxy.failCount[1])
	}
}

// TestProbeFailureCountResetsOnSuccess: failures below the threshold are
// forgiven by one successful probe — the count does not accumulate across
// healthy periods.
func TestProbeFailureCountResetsOnSuccess(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	srv := c.serverIDs[2]
	s.SetLink(srv, c.proxyID, true)
	s.RunFor(2600 * time.Millisecond) // two timed-out probes
	if c.proxy.failCount[2] < 2 || !c.proxy.up[2] {
		t.Fatalf("setup: failCount=%d up=%v", c.proxy.failCount[2], c.proxy.up[2])
	}
	s.Heal()
	s.RunFor(2 * time.Second) // a success resets the count
	if c.proxy.failCount[2] != 0 {
		t.Fatalf("failCount = %d after success, want 0", c.proxy.failCount[2])
	}
	s.SetLink(srv, c.proxyID, true)
	s.RunFor(3600 * time.Millisecond) // three more failures: still short of 4
	if !c.proxy.up[2] {
		t.Fatal("evicted after 3 post-reset failures; threshold is 4 consecutive")
	}
	s.RunFor(2 * time.Second) // the 4th consecutive failure evicts
	if c.proxy.up[2] {
		t.Fatal("4 consecutive failures after a reset must evict")
	}
}

// TestIdleGroupDowntimeStopsAfterRecovery: once a fully-down group is
// back, its outage clock must stop even if no client of its slice issues
// a request — a succeeding health probe is proof of service.
func TestIdleGroupDowntimeStopsAfterRecovery(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	for i := 0; i < 3; i++ {
		c.SetAutoRestart(i, false)
		c.Crash(i)
	}
	// One failed dispatch starts the outage clock.
	resp, got := do(c, rbe.Request{Client: 1, Kind: rbe.Home, Item: 1})
	if !got || !resp.Err {
		t.Fatalf("request against a dead group must error: got=%v resp=%+v", got, resp)
	}
	for i := 0; i < 3; i++ {
		c.ManualRecover(i)
	}
	s.RunFor(30 * time.Second) // recovery completes, probes re-admit
	d1 := c.Downtime()
	if d1 == 0 {
		t.Fatal("outage was never accounted")
	}
	s.RunFor(60 * time.Second) // idle: no requests for this group
	if d2 := c.Downtime(); d2 != d1 {
		t.Fatalf("idle group's downtime kept accruing after recovery: %v -> %v", d1, d2)
	}
}

// TestCheckpointAllSurvivesMidCheckpointCrash: a server killed while its
// checkpoint is on the disk loses the completion callback with the rest
// of its volatile state; CheckpointAll must still complete.
func TestCheckpointAllSurvivesMidCheckpointCrash(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	done := false
	s.At(s.Now(), func() {
		c.CheckpointAll(func() { done = true })
	})
	s.At(s.Now().Add(2*time.Millisecond), func() { c.Crash(1) })
	s.RunFor(30 * time.Second)
	if !done {
		t.Fatal("CheckpointAll hung after a mid-checkpoint crash")
	}
}
