package webtier

import (
	"testing"
	"time"

	"robuststore/internal/rbe"
	"robuststore/internal/tpcw"
)

// shardedCluster builds a Shards×Servers deployment for tests.
func shardedCluster(t *testing.T, shards, servers int) *Cluster {
	t.Helper()
	return testCluster(t, servers, func(cfg *Config) {
		cfg.Shards = shards
	})
}

// TestShardedSessionPinning: a client session's writes land on — and only
// on — the group the router assigns it to; other groups never see them.
func TestShardedSessionPinning(t *testing.T) {
	const shards, servers = 2, 3
	c := shardedCluster(t, shards, servers)

	// Find one client routed to each group.
	clientFor := make(map[int]int64)
	for id := int64(1); len(clientFor) < shards && id < 100; id++ {
		g := c.GroupOf(id)
		if _, ok := clientFor[g]; !ok {
			clientFor[g] = id
		}
	}
	if len(clientFor) != shards {
		t.Fatalf("first 100 client ids never hit all %d groups", shards)
	}

	for g := 0; g < shards; g++ {
		client := clientFor[g]
		resp, got := do(c, rbe.Request{Client: client, Kind: rbe.ShoppingCart, Item: 5, Qty: 1})
		if !got || resp.Err || resp.Cart == 0 {
			t.Fatalf("group %d: cart write for client %d failed: %+v", g, client, resp)
		}
		resp, got = do(c, rbe.Request{Client: client, Kind: rbe.BuyConfirm,
			Cart: resp.Cart, Customer: 1, Item: 5})
		if !got || resp.Err || resp.Order == 0 {
			t.Fatalf("group %d: purchase for client %d failed: %+v", g, client, resp)
		}
		// Visible on every member of the owning group, on none of the
		// other groups' members.
		for i := 0; i < c.TotalServers(); i++ {
			st := c.Store(i)
			if st == nil {
				t.Fatalf("server %d unexpectedly down", i)
			}
			_, ok := st.GetOrder(resp.Order)
			owner := i/servers == g
			// Per-group order counters both start at the populated
			// count, so the same OrderID can legitimately exist on
			// another group; disambiguate via the applied counters
			// below instead when groups collide on IDs.
			if owner && !ok {
				t.Errorf("order %d missing on member %d of owning group %d", resp.Order, i, g)
			}
		}
	}

	// Each group ordered exactly its own sessions' writes: every group
	// applied some actions, and the per-group applied counts sum to the
	// total (no write ordered twice across groups).
	for g := 0; g < shards; g++ {
		applied := int64(0)
		for m := 0; m < servers; m++ {
			if r := c.Replica(g*servers + m); r != nil && r.AppliedCount() > applied {
				applied = r.AppliedCount()
			}
		}
		if applied == 0 {
			t.Errorf("group %d ordered no actions", g)
		}
	}
}

// TestShardedFailoverIsPerGroup: crashing one member of group 0 must not
// disturb group 1, and group 0 keeps serving through its survivors.
func TestShardedFailoverIsPerGroup(t *testing.T) {
	const shards, servers = 2, 3
	c := shardedCluster(t, shards, servers)
	c.Crash(0) // member 0 of group 0
	ok := make([]int, shards)
	tries := make([]int, shards)
	for id := int64(1); id <= 20; id++ {
		g := c.GroupOf(id)
		tries[g]++
		resp, got := do(c, rbe.Request{Client: id, Kind: rbe.Home, Item: 1})
		if got && !resp.Err {
			ok[g]++
		}
	}
	for g := 0; g < shards; g++ {
		if tries[g] == 0 {
			t.Fatalf("no test clients routed to group %d", g)
		}
		if ok[g] != tries[g] {
			t.Errorf("group %d served %d/%d requests with one group-0 member down",
				g, ok[g], tries[g])
		}
	}
	// The crashed member recovers via the watchdog and rejoins.
	c.Sim().RunFor(30 * time.Second)
	if !c.accepting(0) {
		t.Error("crashed member of group 0 never recovered")
	}
}

// TestShardedDegenerateMatchesUnsharded: Shards=1 produces the exact same
// results as a config that never mentions shards (the pre-existing path)
// for an identical request sequence on identically seeded clusters.
func TestShardedDegenerateMatchesUnsharded(t *testing.T) {
	run := func(tweak func(*Config)) []rbe.Response {
		c := testCluster(t, 3, tweak)
		var out []rbe.Response
		for id := int64(1); id <= 6; id++ {
			resp, _ := do(c, rbe.Request{Client: id, Kind: rbe.ShoppingCart, Item: tpcw.ItemID(id), Qty: 1})
			out = append(out, resp)
		}
		return out
	}
	plain := run(nil)
	sharded := run(func(cfg *Config) { cfg.Shards = 1 })
	for i := range plain {
		if plain[i] != sharded[i] {
			t.Fatalf("request %d: unsharded %+v != 1-shard %+v", i, plain[i], sharded[i])
		}
	}
}
