package webtier

// This file is the deployment half of cross-shard transactions (ROADMAP
// item 1): the 2PC driver that coordinates core's transaction records
// (core/txn.go) across Paxos groups. The coordinator is not a separate
// node — it is the home-group application server the proxy routed the
// write to, exactly like any other write; what makes it a coordinator is
// that the action's participants span groups.
//
// Protocol, end to end:
//
//  1. The coordinator resolves all non-determinism up front (pricing,
//     timestamps, random values — paper §4) and splits the action into
//     one branch per participant group.
//  2. If every participant collapses to the coordinator's own group, the
//     merged single-group action is submitted directly — the fast path,
//     bit-identical to the pre-transaction submit path: no transaction
//     records are ordered at all.
//  3. Otherwise each branch is ordered as a core.TxnPrepare in its
//     group's log (the local branch via SubmitIndexed, remote branches
//     via txnPrepareMsg retried across the group's members). Applying a
//     prepare validates and stages the branch; the vote travels back.
//  4. All-yes within the prepare deadline decides commit, anything else
//     decides abort. The coordinator Paxos-commits a core.TxnDecision in
//     its home group BEFORE replying to the client or releasing the
//     outcome: the decision record, not the coordinator's memory, is the
//     transaction's durable outcome.
//  5. The outcome fans out as core.TxnCommit/TxnAbort records, retried
//     until each group acknowledges. Commit executes the staged branch
//     at the outcome record's log position; abort discards it.
//
// Recovery is record-driven, never memory-driven:
//
//   - A participant holding a prepared branch past the resolution grace
//     sends a status inquiry to the home group (rotating members). Any
//     home member answers from the replicated decision state; if no
//     decision exists it Paxos-commits a presumed-abort decision first —
//     first writer wins, so an inquiry racing the coordinator's real
//     commit resolves to whichever record ordered first, and everyone
//     (the coordinator included, which obeys its own submit's recorded
//     result) agrees.
//   - A restarted server rescans core.Replica.PreparedTxns — the staged
//     set is checkpoint-carried and log-replayed — and re-arms a
//     resolution loop per entry, so participant crashes cannot strand a
//     prepared branch.
//   - While a branch is prepared, its conflict keys block ordinary
//     writes at the tier boundary (withTxnGate): a conflicting write
//     waits for the outcome record (bounded), so the outcome's log
//     position, not a racing write, decides what the branch observes.

import (
	"sort"
	"strconv"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/paxos"
	"robuststore/internal/rbe"
	"robuststore/internal/tpcw"
)

// Transaction pacing. The prepare deadline bounds how long a coordinator
// waits for votes before presuming abort; the resolution grace sits above
// it so a participant only inquires about transactions whose coordinator
// has had every chance to decide. Outcome and prepare sends retry across
// group members, so a single crashed or partitioned member never wedges
// the protocol.
const (
	txnPrepareRetry   = 300 * time.Millisecond
	txnPrepareTimeout = 2 * time.Second
	txnOutcomeRetry   = 500 * time.Millisecond
	txnResolveAfter   = 5 * time.Second
	txnResolvePoll    = 2 * time.Second
	txnBlockRetry     = 10 * time.Millisecond
	txnBlockDeadline  = 2 * time.Second
)

// --- Messages ------------------------------------------------------------

// txnPrepareMsg carries one branch from the coordinator to a member of a
// participant group, which orders it as a core.TxnPrepare.
type txnPrepareMsg struct {
	ID     string
	Home   int // coordinator's group: where decisions live
	Group  int // participant group this branch belongs to
	Action any
	Keys   []string
}

func (m txnPrepareMsg) WireSize() int64 {
	return 256 + int64(len(m.Keys))*32 + tpcw.ActionSize(m.Action)
}

// txnVoteMsg carries a participant group's prepare vote back.
type txnVoteMsg struct {
	ID    string
	Group int
	OK    bool
}

func (m txnVoteMsg) WireSize() int64 { return 128 }

// txnOutcomeMsg carries the decided outcome to a participant group
// member, which orders it as a core.TxnCommit or core.TxnAbort.
type txnOutcomeMsg struct {
	ID     string
	Commit bool
}

func (m txnOutcomeMsg) WireSize() int64 { return 128 }

// txnAckMsg confirms a participant group has ordered the outcome record;
// the coordinator stops retrying that group.
type txnAckMsg struct {
	ID    string
	Group int
}

func (m txnAckMsg) WireSize() int64 { return 128 }

// txnStatusMsg is a participant's resolution inquiry to a home-group
// member: what happened to this transaction?
type txnStatusMsg struct {
	ID string
}

func (m txnStatusMsg) WireSize() int64 { return 128 }

// txnStatusRespMsg answers an inquiry with the recorded outcome. Known is
// always true when sent — an unknown status is resolved by recording a
// presumed abort before answering.
type txnStatusRespMsg struct {
	ID     string
	Known  bool
	Commit bool
}

func (m txnStatusRespMsg) WireSize() int64 { return 128 }

// --- Coordinator ---------------------------------------------------------

// txnBranch is one participant group's share of a transaction.
type txnBranch struct {
	action any
	keys   []string
}

// txnCoord is the coordinator's volatile bookkeeping for one in-flight
// transaction. Losing it (coordinator crash) is safe by design: the
// durable outcome is the decision record, and participants resolve from
// it (or from its absence, as presumed abort) via status inquiries.
type txnCoord struct {
	id        string
	groups    []int // sorted participant groups
	branches  map[int]txnBranch
	votes     map[int]bool
	acked     map[int]bool
	attempts  map[int]int // member rotation per group
	decided   bool
	commit    bool
	onDecided func(commit bool)
}

// runTxn drives one cross-group transaction from this (coordinator)
// server. onDecided fires exactly once, after the decision record is
// durably ordered (or the transaction failed before one could be).
func (s *Server) runTxn(branches map[int]txnBranch, onDecided func(commit bool)) {
	s.txnSeq++
	id := "t" + strconv.Itoa(s.idx) +
		"." + strconv.FormatInt(s.e.Now().UnixNano(), 10) +
		"." + strconv.FormatInt(s.txnSeq, 10)
	groups := make([]int, 0, len(branches))
	for g := range branches {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	co := &txnCoord{
		id:        id,
		groups:    groups,
		branches:  branches,
		votes:     make(map[int]bool, len(groups)),
		acked:     make(map[int]bool, len(groups)),
		attempts:  make(map[int]int, len(groups)),
		onDecided: onDecided,
	}
	if s.txnCoords == nil {
		s.txnCoords = make(map[string]*txnCoord)
	}
	s.txnCoords[id] = co
	for _, g := range groups {
		if g == s.group {
			br := branches[g]
			gg := g
			s.replica.SubmitIndexed(core.TxnPrepare{ID: id, Home: s.group, Action: br.action, Keys: br.keys},
				func(result any, _ paxos.InstanceID, err error) {
					vr, ok := result.(core.TxnVoteResult)
					if err == nil && ok && vr.Prepared {
						// The coordinator's own branch is prepared too:
						// arm resolution in case this server wedges
						// between prepare and decision.
						s.armTxnResolve(id, s.group)
					}
					s.txnVote(id, gg, err == nil && ok && vr.Prepared)
				})
		} else {
			s.txnSendPrepare(id, g)
		}
	}
	s.e.After(txnPrepareTimeout, func() { s.txnDecide(id, false) })
}

// txnSendPrepare (re)sends one remote branch, rotating the participant
// group's members until a vote arrives or the transaction decides.
func (s *Server) txnSendPrepare(id string, g int) {
	co := s.txnCoords[id]
	if co == nil || co.decided {
		return
	}
	if _, voted := co.votes[g]; voted {
		return
	}
	members := s.c.groupIDs[g]
	target := members[co.attempts[g]%len(members)]
	co.attempts[g]++
	br := co.branches[g]
	s.e.Send(target, txnPrepareMsg{ID: id, Home: s.group, Group: g, Action: br.action, Keys: br.keys})
	s.e.After(txnPrepareRetry, func() { s.txnSendPrepare(id, g) })
}

// txnVote folds one participant group's vote. All-yes decides commit; the
// first no decides abort immediately.
func (s *Server) txnVote(id string, g int, ok bool) {
	co := s.txnCoords[id]
	if co == nil || co.decided {
		return
	}
	if _, seen := co.votes[g]; seen {
		return
	}
	co.votes[g] = ok
	if !ok {
		s.txnDecide(id, false)
		return
	}
	if len(co.votes) == len(co.branches) {
		s.txnDecide(id, true)
	}
}

// txnDecide Paxos-commits the decision record in the coordinator's home
// group, then (and only then) replies to the client and fans the outcome
// out. The recorded outcome — not the wanted one — is obeyed: a
// presumed-abort inquiry racing this commit may have written first, and
// first writer wins.
func (s *Server) txnDecide(id string, commit bool) {
	co := s.txnCoords[id]
	if co == nil || co.decided {
		return
	}
	co.decided = true
	s.replica.SubmitIndexed(core.TxnDecision{ID: id, Commit: commit},
		func(result any, _ paxos.InstanceID, err error) {
			dr, ok := result.(core.TxnDecisionResult)
			if err != nil || !ok {
				// The decision could not be ordered (lost readiness): no
				// commit record can ever exist, so abort is the only safe
				// outcome — participants reach the same conclusion via
				// presumed abort even if these fan-outs are lost too.
				co.commit = false
			} else {
				co.commit = dr.Commit
			}
			if co.onDecided != nil {
				co.onDecided(co.commit)
				co.onDecided = nil
			}
			s.txnFanout(id)
		})
}

// txnFanout releases the decided outcome to every participant group,
// retrying until each acknowledges its ordered outcome record.
func (s *Server) txnFanout(id string) {
	co := s.txnCoords[id]
	if co == nil {
		return
	}
	for _, g := range co.groups {
		if g == s.group {
			s.txnLocalOutcome(id)
		} else {
			s.txnSendOutcome(id, g)
		}
	}
}

// txnLocalOutcome orders the outcome record in the coordinator's own
// group (its own branch, or the home-group half of a transaction whose
// every other branch is remote), retrying while the replica is unready.
func (s *Server) txnLocalOutcome(id string) {
	co := s.txnCoords[id]
	if co == nil || co.acked[s.group] {
		return
	}
	s.submitTxnOutcome(id, co.commit, func(applied bool) {
		if !applied {
			s.e.After(txnOutcomeRetry, func() { s.txnLocalOutcome(id) })
			return
		}
		s.txnAck(id, s.group)
	})
}

// txnSendOutcome (re)sends the outcome to a remote participant group,
// rotating members until acknowledged.
func (s *Server) txnSendOutcome(id string, g int) {
	co := s.txnCoords[id]
	if co == nil || co.acked[g] {
		return
	}
	members := s.c.groupIDs[g]
	target := members[co.attempts[g]%len(members)]
	co.attempts[g]++
	s.e.Send(target, txnOutcomeMsg{ID: id, Commit: co.commit})
	s.e.After(txnOutcomeRetry, func() { s.txnSendOutcome(id, g) })
}

// txnAck marks one participant group resolved; once all are, the
// coordinator forgets the transaction (its durable trace lives in the
// logs).
func (s *Server) txnAck(id string, g int) {
	co := s.txnCoords[id]
	if co == nil {
		return
	}
	co.acked[g] = true
	for _, gg := range co.groups {
		if !co.acked[gg] {
			return
		}
	}
	delete(s.txnCoords, id)
}

// --- Participant ---------------------------------------------------------

// onTxnPrepare orders a remote branch in this participant group's log and
// votes back. A duplicate (the coordinator rotated members, or retried)
// re-votes from the recorded state — core's prepare is idempotent per ID.
func (s *Server) onTxnPrepare(from env.NodeID, m txnPrepareMsg) {
	if s.learner || s.replica == nil || !s.replica.Ready() {
		return // the coordinator's rotation finds another member
	}
	s.replica.SubmitIndexed(core.TxnPrepare{ID: m.ID, Home: m.Home, Action: m.Action, Keys: m.Keys},
		func(result any, _ paxos.InstanceID, err error) {
			if err != nil {
				return
			}
			vr, ok := result.(core.TxnVoteResult)
			if !ok {
				return
			}
			if vr.Prepared {
				// Staged: if the outcome never arrives (coordinator crash,
				// partition), resolve from the home group's decision state.
				s.armTxnResolve(m.ID, m.Home)
			}
			s.e.Send(from, txnVoteMsg{ID: m.ID, Group: s.group, OK: vr.Prepared})
		})
}

// onTxnVote folds a remote vote into the coordinator state.
func (s *Server) onTxnVote(m txnVoteMsg) {
	s.txnVote(m.ID, m.Group, m.OK)
}

// onTxnOutcome orders the decided outcome in this participant group's log
// and acknowledges. Acked even when another member already resolved it
// (the record degrades to an ordered no-op) so the coordinator's retry
// loop terminates.
func (s *Server) onTxnOutcome(from env.NodeID, m txnOutcomeMsg) {
	if s.learner || s.replica == nil || !s.replica.Ready() {
		return
	}
	s.submitTxnOutcome(m.ID, m.Commit, func(applied bool) {
		if !applied {
			return // coordinator retries
		}
		s.e.Send(from, txnAckMsg{ID: m.ID, Group: s.group})
	})
}

// onTxnAck marks a participant group resolved on the coordinator.
func (s *Server) onTxnAck(m txnAckMsg) {
	s.txnAck(m.ID, m.Group)
}

// onTxnStatus answers a resolution inquiry from the replicated decision
// state of this (home) group. No recorded decision means the coordinator
// died before deciding: a presumed-abort decision is Paxos-committed
// first — first writer wins against any in-flight real decision — and
// the recorded outcome is returned either way. If this group also holds
// a still-prepared branch of the transaction (the coordinator's own
// branch, stranded by its crash), the outcome record is ordered here too
// so the branch's blocked keys release without waiting for a restart.
func (s *Server) onTxnStatus(from env.NodeID, m txnStatusMsg) {
	if s.learner || s.replica == nil || !s.replica.Ready() {
		return
	}
	answer := func(commit bool) {
		if s.txnStillPrepared(m.ID) {
			s.submitTxnOutcome(m.ID, commit, nil)
		}
		s.e.Send(from, txnStatusRespMsg{ID: m.ID, Known: true, Commit: commit})
	}
	if commit, known := s.replica.TxnDecided(m.ID); known {
		answer(commit)
		return
	}
	s.replica.SubmitIndexed(core.TxnDecision{ID: m.ID, Commit: false},
		func(result any, _ paxos.InstanceID, err error) {
			dr, ok := result.(core.TxnDecisionResult)
			if err != nil || !ok {
				return // inquirer re-asks another member
			}
			answer(dr.Commit)
		})
}

// onTxnStatusResp resolves a prepared branch from an answered inquiry.
func (s *Server) onTxnStatusResp(m txnStatusRespMsg) {
	if !m.Known || s.learner || s.replica == nil || !s.replica.Ready() {
		return
	}
	s.submitTxnOutcome(m.ID, m.Commit, nil)
}

// submitTxnOutcome orders one TxnCommit/TxnAbort record locally and
// counts the group's transaction outcome exactly once (core reports
// First only on the record that transitioned the transaction to
// terminal, so retries and duplicate resolvers never double-count).
func (s *Server) submitTxnOutcome(id string, commit bool, done func(applied bool)) {
	var action any = core.TxnAbort{ID: id}
	if commit {
		action = core.TxnCommit{ID: id}
	}
	s.replica.SubmitIndexed(action, func(result any, _ paxos.InstanceID, err error) {
		ar, ok := result.(core.TxnAppliedResult)
		if err != nil || !ok {
			if done != nil {
				done(false)
			}
			return
		}
		if ar.First && s.group < len(s.c.txnCommits) {
			if commit {
				s.c.txnCommits[s.group]++
			} else {
				s.c.txnAborts[s.group]++
			}
		}
		if done != nil {
			done(true)
		}
	})
}

// --- Resolution ----------------------------------------------------------

// armTxnResolve starts (idempotently) the resolution loop for one
// prepared branch: after a grace covering the coordinator's whole healthy
// window, inquire at the home group, rotating members, until the branch
// resolves.
func (s *Server) armTxnResolve(id string, home int) {
	if s.txnArmed == nil {
		s.txnArmed = make(map[string]bool)
		s.txnResolve = make(map[string]int)
	}
	if s.txnArmed[id] {
		return
	}
	s.txnArmed[id] = true
	s.e.After(txnResolveAfter, func() { s.txnResolveTick(id, home) })
}

func (s *Server) txnResolveTick(id string, home int) {
	if !s.txnStillPrepared(id) {
		delete(s.txnArmed, id)
		delete(s.txnResolve, id)
		return
	}
	members := s.c.groupIDs[home]
	target := members[s.txnResolve[id]%len(members)]
	s.txnResolve[id]++
	s.e.Send(target, txnStatusMsg{ID: id})
	s.e.After(txnResolvePoll, func() { s.txnResolveTick(id, home) })
}

// txnStillPrepared reports whether this server's replica still stages the
// branch (loop-confined; server and replica share the node executor).
func (s *Server) txnStillPrepared(id string) bool {
	if s.replica == nil {
		return false
	}
	for _, p := range s.replica.PreparedTxns() {
		if p.ID == id {
			return true
		}
	}
	return false
}

// armTxnRecovery rescans the replica's prepared set after (re)start and
// re-arms a resolution loop per stranded branch. The set is
// checkpoint-carried and log-replayed, so a participant crash between
// prepare and outcome always comes back knowing exactly what it holds.
func (s *Server) armTxnRecovery() {
	if s.learner || s.replica == nil {
		return
	}
	for _, p := range s.replica.PreparedTxns() {
		s.armTxnResolve(p.ID, p.Home)
	}
}

// --- Write gate ----------------------------------------------------------

// txnConflictKeys lists the row keys a write interaction may touch, in
// the same key syntax branches declare (tpcw.TxnKeys). Used only to hold
// conflicting writes while a prepared branch blocks those keys.
func txnConflictKeys(req rbe.Request) []string {
	var keys []string
	if req.Cart != 0 {
		keys = append(keys, "cart/"+strconv.FormatInt(int64(req.Cart), 10))
	}
	if req.Customer != 0 {
		keys = append(keys, "customer/"+strconv.FormatInt(int64(req.Customer), 10))
	}
	if req.Peer != 0 {
		keys = append(keys, "customer/"+strconv.FormatInt(int64(req.Peer), 10))
	}
	if req.Kind == rbe.AdminConfirm && req.Item != 0 {
		keys = append(keys, "item/"+strconv.FormatInt(int64(req.Item), 10))
	}
	for _, it := range req.Items {
		keys = append(keys, "item/"+strconv.FormatInt(int64(it), 10))
	}
	return keys
}

// withTxnGate holds a write whose keys conflict with a prepared branch
// until the branch's outcome record releases them (or the bounded wait
// expires into a client error). With no prepared transactions — always
// the case on the single-group fast path — the write proceeds through
// the exact same immediate call, adding no events and no latency.
func (s *Server) withTxnGate(m reqMsg, run, drop func()) {
	keys := txnConflictKeys(m.Req)
	blocked := func() bool {
		for _, k := range keys {
			if s.replica.TxnBlocks(k) {
				return true
			}
		}
		return false
	}
	if len(keys) == 0 || !blocked() {
		run()
		return
	}
	start := s.e.Now()
	deadline := start.Add(txnBlockDeadline)
	accrue := func() {
		if s.group < len(s.c.txnBlockedNs) {
			s.c.txnBlockedNs[s.group] += s.e.Now().Sub(start).Nanoseconds()
		}
	}
	var retry func()
	retry = func() {
		if s.replica == nil || !s.replica.Ready() {
			accrue()
			drop()
			return
		}
		if !blocked() {
			accrue()
			run()
			return
		}
		if !s.e.Now().Before(deadline) {
			accrue()
			drop()
			return
		}
		s.e.After(txnBlockRetry, retry)
	}
	s.e.After(txnBlockRetry, retry)
}

// --- Multi-shard write interactions --------------------------------------

// customerRouteKey and itemRouteKey are the routing keys of
// base-population rows, whose IDs are cluster-global (every group's
// initial store holds them identically): the routing table's hash of the
// row key defines the row's home group. Session-created rows (carts,
// registered customers) instead live where their session routes — their
// per-group ID counters make raw IDs ambiguous across groups — which is
// why the gift workload draws buyers' carts from the session's own group
// and recipients from the base population.
func customerRouteKey(id tpcw.CustomerID) string {
	return "customer/" + strconv.FormatInt(int64(id), 10)
}

func itemRouteKey(id tpcw.ItemID) string {
	return "item/" + strconv.FormatInt(int64(id), 10)
}

// CustomerGroup and ItemGroup expose the base-population rows' home
// groups under the current routing epoch, so workloads and audits can
// pick counterparties whose rows live on (or off) a session's group.
func (c *Cluster) CustomerGroup(id tpcw.CustomerID) int {
	return c.table.Group(customerRouteKey(id))
}

func (c *Cluster) ItemGroup(id tpcw.ItemID) int {
	return c.table.Group(itemRouteKey(id))
}

// performGiftPurchase serves the cross-session gift order: the buyer's
// cart (on this, the coordinator's, group) is purchased for a recipient
// whose home group may differ. Same group → the merged GiftOrderAction on
// the plain submit path; different groups → a debit branch here and a
// deliver branch there under 2PC. All pricing is resolved here, before
// anything is submitted, so both branches carry identical totals.
func (s *Server) performGiftPurchase(proxy env.NodeID, m reqMsg) {
	req := m.Req
	now := s.e.Now()
	rng := s.e.Rand()
	fail := func() { s.reply(proxy, m.ID, rbe.Response{Err: true}, 0) }
	run := func(cart tpcw.CartID) {
		lines, subTotal, tax, total, errs := s.store.GiftQuote(cart, req.Customer, req.Tag)
		if errs != "" {
			fail()
			return
		}
		ship := now.AddDate(0, 0, 1+rng.Intn(7)) // random pre-submit
		rg := s.c.table.Group(customerRouteKey(req.Peer))
		if rg == s.group {
			// Single-group fast path: the merged action, plain submit, no
			// transaction records — bit-identical to the pre-2PC path.
			action := tpcw.GiftOrderAction{
				Cart: cart, Buyer: req.Customer, Recipient: req.Peer,
				ShipType: "AIR", ShipDate: ship, Tag: req.Tag, Now: now,
			}
			s.replica.SubmitIndexed(action, func(result any, inst paxos.InstanceID, err error) {
				gr, ok := result.(tpcw.GiftOrderResult)
				if err != nil || !ok || gr.Err != "" {
					fail()
					return
				}
				s.reply(proxy, m.ID, rbe.Response{Order: gr.Order}, inst)
			})
			return
		}
		debit := tpcw.GiftDebitAction{Cart: cart, Buyer: req.Customer, Total: total, Tag: req.Tag, Now: now}
		deliver := tpcw.GiftDeliverAction{
			Recipient: req.Peer, Lines: lines,
			SubTotal: subTotal, Tax: tax, Total: total,
			ShipType: "AIR", ShipDate: ship, Tag: req.Tag, Now: now,
		}
		branches := map[int]txnBranch{
			s.group: {action: debit, keys: tpcw.TxnKeys(debit)},
			rg:      {action: deliver, keys: tpcw.TxnKeys(deliver)},
		}
		s.runTxn(branches, func(commit bool) {
			if !commit {
				fail()
				return
			}
			// No single commit index spans two groups; the fence stays
			// where the session's last single-group write left it.
			s.reply(proxy, m.ID, rbe.Response{}, 0)
		})
	}
	if req.Cart != 0 {
		run(req.Cart)
		return
	}
	// No cart yet: create one with the caller-chosen item first, like
	// BuyConfirm does.
	s.replica.Submit(tpcw.CartUpdateAction{RandomItem: req.Item, Now: now},
		func(result any, err error) {
			cr, ok := result.(tpcw.CartResult)
			if err != nil || !ok || cr.Err != "" {
				fail()
				return
			}
			run(cr.Cart.ID)
		})
}

// performStockSweep serves the admin inventory sweep: reprice an item set
// to one cost atomically, the items partitioned across their home groups
// by the routing table. All-local → one plain InventorySweepAction;
// spanning groups → one branch per group under 2PC, the unique cost
// doubling as the half-application audit marker.
func (s *Server) performStockSweep(proxy env.NodeID, m reqMsg) {
	req := m.Req
	now := s.e.Now()
	fail := func() { s.reply(proxy, m.ID, rbe.Response{Err: true}, 0) }
	if len(req.Items) == 0 {
		fail()
		return
	}
	byGroup := make(map[int][]tpcw.ItemID)
	for _, id := range req.Items {
		g := s.c.table.Group(itemRouteKey(id))
		byGroup[g] = append(byGroup[g], id)
	}
	if len(byGroup) == 1 {
		if items, local := byGroup[s.group]; local {
			// Single-group fast path, plain submit, no records.
			action := tpcw.InventorySweepAction{Items: items, Cost: req.Cost, Tag: req.Tag, Now: now}
			s.replica.SubmitIndexed(action, func(_ any, inst paxos.InstanceID, err error) {
				if err != nil {
					fail()
					return
				}
				s.reply(proxy, m.ID, rbe.Response{}, inst)
			})
			return
		}
	}
	branches := make(map[int]txnBranch, len(byGroup))
	for g, items := range byGroup {
		a := tpcw.InventorySweepAction{Items: items, Cost: req.Cost, Tag: req.Tag, Now: now}
		branches[g] = txnBranch{action: a, keys: tpcw.TxnKeys(a)}
	}
	s.runTxn(branches, func(commit bool) {
		if commit {
			s.reply(proxy, m.ID, rbe.Response{}, 0)
		} else {
			fail()
		}
	})
}
