package webtier

import (
	"sort"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/paxos"
	"robuststore/internal/rbe"
	"robuststore/internal/sim"
)

// Proxy models the HAProxy node of the paper's setup (§5.1, Figure 2):
//
//   - it actively probes every server with an HTTP-like health check and
//     removes a server from rotation after 4 unsuccessful probes, re-adding
//     it when a probe succeeds again;
//   - it balances requests across the in-rotation servers with a hash of
//     the unique client identifier;
//   - a request in flight on a server that crashes is observed by the
//     client as an error (the closed connection), while requests to a dead
//     server that were not yet sent are transparently redispatched
//     (connection refused → next server); idempotent reads interrupted
//     mid-flight are also redispatched once, writes are not;
//   - a read whose reply never returns — a server gone silent under
//     one-way loss or a partition, where no connection reset ever arrives
//     — is redispatched once on timeout, away from the silent server;
//     timed-out writes still surface as client errors (they may have
//     executed server-side).
type Proxy struct {
	c *Cluster
	e env.Env

	cpu    *sim.Resource
	nextID int64

	outstanding map[int64]*outReq

	up        []bool
	failCount []int
	probeSeq  int64
	probes    map[int64]int // probe seq -> server index

	// Request-level health: a per-server EWMA of served-traffic quality
	// (errors and excessive latency). A gray-failed server answers every
	// probe — the probe path never touches the request machinery — so
	// probe-based eviction alone cannot catch it; the EWMA evicts on what
	// clients actually experience and quarantines the server so the very
	// probes that are blind to the fault cannot immediately re-admit it.
	errEwma         []float64
	qualSamples     []int
	quarantineUntil []time.Time

	// noServiceSince/downtime track complete outages per shard group
	// for the availability measure: with one group this is the paper's
	// full-outage time; with several, each group's client slice is
	// accounted separately so a healthy group cannot mask another's
	// outage.
	noServiceSince []time.Time
	downtime       []time.Duration

	// sessFence tracks each session's highest acked commit index (an
	// index into its group's ordered log), attached as a fence on the
	// session's subsequent reads so it always reads its own writes —
	// across server switches, crashes, and rotation onto lagging
	// learners. Maintained at every Readers setting: even with no
	// learner readers, reads rotate across the group's voters, and a
	// non-leader voter may trail the session's last acked write. The
	// fence is meaningful only within the group whose log indexed it, so
	// it carries its group and resets when the session migrates (the
	// cutover itself guarantees the new group holds the session's data).
	sessFence map[int64]fenceEntry

	// rrSeq rotates read dispatch across the read-serving candidates
	// (voters + readers) per request, instead of pinning a client's
	// reads to one server by hash: a single hot client then scales with
	// the read-serving node count. Writes keep hash affinity.
	rrSeq uint64

	// inflight counts outstanding requests per server. When readers
	// exist, read dispatch picks the least-loaded candidate (rotation
	// breaks ties): queues equalize across unevenly-loaded nodes, so
	// reads drain toward the learners, which carry no write-serving or
	// proposal work — uniform rotation would instead bottleneck on the
	// busiest voter and strand that headroom.
	inflight []int

	// Diagnostics: why client errors happened.
	Stats ProxyStats
}

// ProxyStats counts client-visible error causes, for tests and
// diagnostics.
type ProxyStats struct {
	ErrTimeout    int
	ErrReset      int
	ErrNoServer   int
	ErrServerSide int
	Redispatched  int

	// EpochRedirects counts requests that raced a routing-epoch cutover
	// (served group changed between dispatch and arrival) and were
	// transparently re-routed instead of failed.
	EpochRedirects int

	// Requeued counts write dispatches held back because their session
	// slice was mid-handoff (delayed until cutover, never failed).
	Requeued int

	// StaleRedispatched counts fenced reads a reader answered TooStale
	// (it could not catch up to the fence within the staleness bound)
	// that were transparently re-routed to the voters, which by
	// definition hold every acked write.
	StaleRedispatched int

	// Admission-gate activity at dispatch, driven by the picked
	// server's published (≤100 ms stale) write-admission grade: writes
	// paced one step under Slowdown, holds under Stop, and holds that
	// exhausted the deadline and were shed as fast client errors.
	AdmPaced int
	AdmHeld  int
	AdmShed  int

	// QualityEvictions counts servers pulled from rotation by the
	// request-level health signal (error/latency EWMA) rather than probe
	// failures — the gray-failure escape hatch.
	QualityEvictions int
}

// fenceEntry is one session's read-your-writes fence: the highest acked
// commit index, valid only against the group whose ordered log it
// indexes.
type fenceEntry struct {
	group int
	idx   paxos.InstanceID
}

type outReq struct {
	req       rbe.Request
	done      func(rbe.Response)
	server    int   // index into cluster servers
	curID     int64 // outstanding key of the current attempt
	attempts  int
	redirects int  // WrongEpoch re-routes (not balance retries)
	requeued  bool // was held by a migration freeze (counted once)
	timer     env.Timer
	finished  bool

	votersOnly    bool      // fenced read went TooStale: exclude readers
	staleRetries  int       // TooStale re-routes taken
	admitDeadline time.Time // set when first held under AdmissionStop
	admitPaced    bool      // already paced once under Slowdown
	sentAt        time.Time // when the current attempt left the proxy
}

var _ env.Node = (*Proxy)(nil)

// Start implements env.Node.
func (p *Proxy) Start(e env.Env) {
	p.e = e
	p.cpu = sim.NewResource(p.c.sim, 2)
	n := p.c.TotalServers()
	p.outstanding = make(map[int64]*outReq)
	p.up = make([]bool, n)
	for i := range p.up {
		p.up[i] = true
	}
	p.failCount = make([]int, n)
	p.inflight = make([]int, n)
	p.errEwma = make([]float64, n)
	p.qualSamples = make([]int, n)
	p.quarantineUntil = make([]time.Time, n)
	p.probes = make(map[int64]int)
	p.sessFence = make(map[int64]fenceEntry)
	p.noServiceSince = make([]time.Time, p.c.Shards())
	p.downtime = make([]time.Duration, p.c.Shards())
	p.e.After(p.c.cfg.Cal.ProbeInterval, p.probeLoop)
}

// Receive implements env.Node.
func (p *Proxy) Receive(from env.NodeID, msg env.Message) {
	switch m := msg.(type) {
	case respMsg:
		p.onResponse(m)
	case probeRespMsg:
		p.onProbeResp(m)
	}
}

// Do accepts one client interaction. It must be called from simulator
// context (the RBE population runs inside the event loop).
func (p *Proxy) Do(req rbe.Request, done func(rbe.Response)) {
	p.cpu.Acquire(p.c.cfg.Cal.ProxyService, func() {
		p.dispatch(&outReq{req: req, done: done})
	})
}

// dispatch routes a request to a live, in-rotation server of the group
// owning the client's session (with one shard, every server). The table
// is re-read on every dispatch, so a redispatch after a routing-epoch
// cutover lands on the session's new group.
func (p *Proxy) dispatch(r *outReq) {
	if r.req.Kind.IsWrite() && !r.finished && p.c.sessionFrozen(r.req.Client) {
		// The session's slice is mid-handoff: hold the write until the
		// new epoch publishes. The client observes added latency bounded
		// by the migration window, never an error. Counted once per
		// request, not per 10 ms retry tick.
		if !r.requeued {
			r.requeued = true
			p.Stats.Requeued++
		}
		p.e.After(10*time.Millisecond, func() { p.dispatch(r) })
		return
	}
	group := p.c.GroupOf(r.req.Client)
	read := !r.req.Kind.IsWrite()
	var candidates []int
	if read && !r.votersOnly {
		candidates = p.readCandidates(group)
	} else {
		candidates = p.candidates(group)
	}
	if r.attempts > 0 && len(candidates) > 1 {
		// A transparent retry must not re-land on the server that just
		// failed it: the client hash is deterministic, so over an
		// unchanged candidate set it would re-pick r.server every time.
		kept := candidates[:0]
		for _, c := range candidates {
			if c != r.server {
				kept = append(kept, c)
			}
		}
		candidates = kept
	}
	if len(candidates) == 0 {
		// The owning group is fully down: for this client slice the
		// service is out, which the availability measure counts.
		p.markNoService(group)
		p.Stats.ErrNoServer++
		p.finish(r, rbe.Response{Err: true})
		return
	}
	p.clearNoService(group)
	if read {
		// Least-outstanding over the read-serving set, the per-request
		// rotation breaking ties; see rrSeq and inflight. With Readers=0
		// the set is the group's voters: fenced reads then spread across
		// voting non-leader replicas instead of pinning to the client
		// hash, and the fence keeps read-your-writes intact on whichever
		// trailing voter they land.
		p.rrSeq++
		off := int(p.rrSeq % uint64(len(candidates)))
		pick := candidates[off]
		for k := 1; k < len(candidates); k++ {
			if c := candidates[(off+k)%len(candidates)]; p.inflight[c] < p.inflight[pick] {
				pick = c
			}
		}
		r.server = pick
	} else {
		r.server = candidates[int(hash64(uint64(r.req.Client))%uint64(len(candidates)))]
	}
	if !read && !p.admitAtDispatch(r) {
		return
	}
	r.attempts++
	p.nextID++
	id := p.nextID
	p.outstanding[id] = r
	p.inflight[r.server]++
	r.curID = id
	if r.timer == nil {
		// The timer follows the request across response-driven
		// redispatches: it expires whichever attempt is current (curID),
		// so a retry registered under a fresh ID after a server-side
		// error or epoch redirect keeps its timeout — without this, a
		// retry whose reply is lost (one-way loss) would hang forever.
		// Only the expire-path redispatch arms a fresh timer (it nils
		// r.timer first), so the worst-case client wait is 2×ReqTimeout:
		// one full timeout on the silent attempt plus one on its retry.
		r.timer = p.e.After(p.c.cfg.Cal.ReqTimeout, func() {
			p.expire(r.curID)
		})
	}
	r.sentAt = p.e.Now()
	m := reqMsg{ID: id, Req: r.req}
	if read {
		// Read-your-writes: fence the read at the session's last acked
		// commit index, whichever server it lands on. A fence minted in
		// another group's log (the session just migrated) is meaningless
		// here and is dropped — the cutover moved the data first.
		if f, ok := p.sessFence[r.req.Client]; ok && f.group == group {
			m.Fence = f.idx
		}
	}
	p.e.Send(p.c.serverIDs[r.server], m)
}

// readCandidates returns the group's read-serving rotation: the voter
// candidates plus the group's up-and-accepting learner readers.
func (p *Proxy) readCandidates(group int) []int {
	out := p.candidates(group)
	for j := 0; j < p.c.cfg.Readers; j++ {
		i := p.c.ReaderIndex(group, j)
		if p.up[i] && p.c.accepting(i) {
			out = append(out, i)
		}
	}
	return out
}

// admitAtDispatch gates one write on the picked server's published
// write-admission grade (AdmissionHint, ≤100 ms stale): Slowdown paces
// the dispatch one admitPace step (once per request), Stop holds it at
// the proxy — re-dispatching every step — and sheds it as a fast client
// error once admitHoldDeadline passes. This keeps overload queueing at
// the tier boundary without even spending the network hop; the server's
// own loop-confined admitWrite remains the precise gate behind it. It
// returns false when the dispatch was consumed (held, paced, or shed).
func (p *Proxy) admitAtDispatch(r *outReq) bool {
	rep := p.c.Replica(r.server)
	if rep == nil {
		return true // raced a crash; the dispatch itself will fail over
	}
	if rep.AdmissionHintAge(p.e.Now()) > 2*core.PublishInterval {
		// The published grade has gone stale (frozen publisher, long GC
		// stall): its Healthy/Stop opinion describes a past the proposer
		// may have long left. Fail open — never pace, hold or shed on
		// stale data; the server's own loop-confined gate still backstops.
		return true
	}
	switch rep.AdmissionHint() {
	case paxos.AdmissionStop:
		if r.admitDeadline.IsZero() {
			r.admitDeadline = p.e.Now().Add(admitHoldDeadline)
		} else if !p.e.Now().Before(r.admitDeadline) {
			p.Stats.AdmShed++
			p.finish(r, rbe.Response{Err: true})
			return false
		}
		p.Stats.AdmHeld++
		p.e.After(admitPace, func() { p.dispatch(r) })
		return false
	case paxos.AdmissionSlowdown:
		if !r.admitPaced {
			r.admitPaced = true
			p.Stats.AdmPaced++
			p.e.After(admitPace, func() { p.dispatch(r) })
			return false
		}
	}
	return true
}

// candidates returns the group's in-rotation servers that also accept
// connections right now (a dead or still-booting process refuses
// instantly, which HAProxy treats as an immediate dispatch failure, not a
// client error).
func (p *Proxy) candidates(group int) []int {
	first := group * p.c.cfg.Servers
	out := make([]int, 0, p.c.cfg.Servers)
	for i := first; i < first+p.c.cfg.Servers; i++ {
		if p.up[i] && p.c.accepting(i) {
			out = append(out, i)
		}
	}
	return out
}

func (p *Proxy) onResponse(m respMsg) {
	r, ok := p.outstanding[m.ID]
	if !ok {
		return // superseded (redispatch) or expired
	}
	delete(p.outstanding, m.ID)
	p.inflight[r.server]--
	if !m.WrongEpoch && !m.TooStale {
		// Epoch redirects and staleness fallbacks are routing outcomes,
		// not server sickness; everything else scores the server's
		// served-traffic quality.
		bad := m.Resp.Err ||
			(!r.sentAt.IsZero() && p.e.Now().Sub(r.sentAt) > qualityLatencyBad)
		p.recordQuality(r.server, bad)
	}
	if m.WrongEpoch && r.redirects < 4 {
		// The serving group changed between dispatch and arrival (a
		// routing cutover): the action was not executed, so any request
		// — writes included — re-routes under the current table. Not an
		// error and not a balance retry.
		r.redirects++
		if r.attempts > 0 {
			r.attempts--
		}
		p.Stats.EpochRedirects++
		p.dispatch(r)
		return
	}
	if m.TooStale && !r.req.Kind.IsWrite() && r.staleRetries < 2 {
		// The serving reader could not reach the session's fence within
		// the staleness bound. Fall back to the voters: every acked
		// write is applied (or about to be) on a quorum of them, so the
		// fence is satisfiable there.
		r.staleRetries++
		r.votersOnly = true
		p.Stats.StaleRedispatched++
		p.dispatch(r)
		return
	}
	if m.Resp.Err && !r.req.Kind.IsWrite() && r.attempts < 2 {
		// A read that failed server-side (e.g. still warming up) gets
		// one transparent retry.
		p.Stats.Redispatched++
		p.dispatch(r)
		return
	}
	if m.Resp.Err {
		p.Stats.ErrServerSide++
	}
	if r.req.Kind.IsWrite() && !m.Resp.Err && m.Commit > 0 {
		// The write's acked commit index becomes the session's new
		// read-your-writes fence (monotone within its group: a retried
		// older ack must not lower it; an ack from a different group —
		// the session migrated — replaces the now-meaningless old fence).
		g := p.c.groupOfServer(r.server)
		f, ok := p.sessFence[r.req.Client]
		if !ok || f.group != g || m.Commit > f.idx {
			p.sessFence[r.req.Client] = fenceEntry{group: g, idx: m.Commit}
		}
	}
	p.finish(r, m.Resp)
}

func (p *Proxy) finish(r *outReq, resp rbe.Response) {
	if r.finished {
		return
	}
	r.finished = true
	if r.timer != nil {
		r.timer.Stop()
	}
	r.done(resp)
}

func (p *Proxy) expire(id int64) {
	r, ok := p.outstanding[id]
	if !ok {
		return
	}
	delete(p.outstanding, id)
	p.inflight[r.server]--
	p.recordQuality(r.server, true)
	if !r.req.Kind.IsWrite() && r.attempts < 2 {
		// The reply never came — a silent server (one-way loss: it heard
		// the request but its answer is lost) or a wedged one. Idempotent
		// reads get one redispatch with a fresh timer, away from the
		// server that went silent; writes may have executed there, so
		// they must surface as errors, which accuracy counts.
		r.timer = nil
		p.Stats.Redispatched++
		p.dispatch(r)
		return
	}
	p.Stats.ErrTimeout++
	p.finish(r, rbe.Response{Err: true})
}

// onServerReset handles the TCP-level connection resets observed when a
// server process is killed: requests in flight there fail — reads are
// redispatched once (idempotent GETs), writes surface as client errors,
// which is what the paper's accuracy measure counts.
func (p *Proxy) onServerReset(server int) {
	// Iterate in request order so redispatches are deterministic.
	ids := make([]int64, 0, len(p.outstanding))
	for id, r := range p.outstanding {
		if r.server == server {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := p.outstanding[id]
		delete(p.outstanding, id)
		p.inflight[r.server]--
		if !r.req.Kind.IsWrite() && r.attempts < 2 {
			p.Stats.Redispatched++
			p.dispatch(r)
			continue
		}
		p.Stats.ErrReset++
		p.finish(r, rbe.Response{Err: true})
	}
}

// Request-level health knobs. The latency threshold sits well above the
// worst legitimate stall a healthy server produces (a full-heap GC pause
// is under ~1 s) and well below the request timeout, so only genuinely
// sick service scores bad. The EWMA needs a minimum sample count before
// it may evict — a single unlucky request must not pull a server — and a
// quarantined server stays out of rotation for a fixed window even
// though its probes (blind to the fault by design) keep succeeding.
const (
	qualityAlpha      = 0.125
	qualityLatencyBad = 2 * time.Second
	qualityEvictScore = 0.5
	qualityMinSamples = 8
	qualityQuarantine = 15 * time.Second
)

// recordQuality folds one served-request outcome into the server's
// quality EWMA and evicts it from rotation when the served-traffic error
// level crosses the threshold — the request-level health signal that
// catches gray failures the probe path cannot see.
func (p *Proxy) recordQuality(srv int, bad bool) {
	sample := 0.0
	if bad {
		sample = 1
	}
	p.errEwma[srv] = (1-qualityAlpha)*p.errEwma[srv] + qualityAlpha*sample
	p.qualSamples[srv]++
	if !p.up[srv] || p.qualSamples[srv] < qualityMinSamples || p.errEwma[srv] < qualityEvictScore {
		return
	}
	// Never evict a group's last serving candidate: degraded service
	// beats no service, and the availability measure agrees.
	others := 0
	for _, c := range p.candidates(p.c.groupOfServer(srv)) {
		if c != srv {
			others++
		}
	}
	if others == 0 {
		return
	}
	p.up[srv] = false
	p.quarantineUntil[srv] = p.e.Now().Add(qualityQuarantine)
	p.errEwma[srv] = 0
	p.qualSamples[srv] = 0
	p.Stats.QualityEvictions++
}

// grow extends the proxy's per-server and per-group state for servers
// added by a live rebalance. New servers enter rotation optimistically;
// until operational they refuse connections, which the dispatch and probe
// paths already treat as instant failures.
func (p *Proxy) grow(totalServers, shards int) {
	for len(p.up) < totalServers {
		p.up = append(p.up, true)
		p.failCount = append(p.failCount, 0)
		p.inflight = append(p.inflight, 0)
		p.errEwma = append(p.errEwma, 0)
		p.qualSamples = append(p.qualSamples, 0)
		p.quarantineUntil = append(p.quarantineUntil, time.Time{})
	}
	for len(p.noServiceSince) < shards {
		p.noServiceSince = append(p.noServiceSince, time.Time{})
		p.downtime = append(p.downtime, 0)
	}
}

// probeLoop sends one health probe per server per interval.
func (p *Proxy) probeLoop() {
	cal := p.c.cfg.Cal
	for i := range p.up {
		if !p.c.accepting(i) {
			// Connection refused: an instant probe failure.
			p.probeFailed(i)
			continue
		}
		p.probeSeq++
		seq := p.probeSeq
		p.probes[seq] = i
		p.e.Send(p.c.serverIDs[i], probeMsg{Seq: seq})
		p.e.After(cal.ProbeTimeout, func() {
			if srv, pending := p.probes[seq]; pending {
				delete(p.probes, seq)
				p.probeFailed(srv)
			}
		})
	}
	p.e.After(cal.ProbeInterval, p.probeLoop)
}

func (p *Proxy) onProbeResp(m probeRespMsg) {
	srv, pending := p.probes[m.Seq]
	if !pending {
		return
	}
	delete(p.probes, m.Seq)
	if m.OK {
		p.failCount[srv] = 0
		if p.e.Now().Before(p.quarantineUntil[srv]) {
			// Quality-evicted: a succeeding probe proves nothing about the
			// request path (gray failures ack probes by design), so it
			// must not re-admit the server until the quarantine lapses.
			return
		}
		p.up[srv] = true
		// A succeeding probe proves the group can serve again: stop its
		// outage clock even if no client of that slice has dispatched
		// since, so an idle group's downtime does not keep accruing
		// after it recovered.
		p.clearNoService(p.c.groupOfServer(srv))
		return
	}
	p.probeFailed(srv)
}

func (p *Proxy) probeFailed(srv int) {
	p.failCount[srv]++
	if p.failCount[srv] >= p.c.cfg.Cal.ProbeFailures {
		p.up[srv] = false
	}
}

func (p *Proxy) markNoService(group int) {
	if p.noServiceSince[group].IsZero() {
		p.noServiceSince[group] = p.e.Now()
	}
}

func (p *Proxy) clearNoService(group int) {
	if !p.noServiceSince[group].IsZero() {
		p.downtime[group] += p.e.Now().Sub(p.noServiceSince[group])
		p.noServiceSince[group] = time.Time{}
	}
}

// GroupDowntimes returns each group's cumulative outage time, any open
// outage included.
func (p *Proxy) GroupDowntimes() []time.Duration {
	out := make([]time.Duration, len(p.downtime))
	for g := range p.downtime {
		d := p.downtime[g]
		if !p.noServiceSince[g].IsZero() {
			d += p.e.Now().Sub(p.noServiceSince[g])
		}
		out[g] = d
	}
	return out
}

// Downtime returns the worst per-group cumulative outage time — with one
// shard, exactly the paper's full-outage time during which no server was
// available to take requests.
func (p *Proxy) Downtime() time.Duration {
	var worst time.Duration
	for _, d := range p.GroupDowntimes() {
		if d > worst {
			worst = d
		}
	}
	return worst
}

// hash64 is a splitmix64 finalizer used for client-to-server hashing.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
