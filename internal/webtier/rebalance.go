package webtier

import (
	"fmt"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/shard"
	"robuststore/internal/tpcw"
)

// This file drives live resharding of the web tier: Rebalance boots one
// more Paxos group of application servers mid-run, computes the
// next-epoch routing table (shard.RoutingTable.Grow over session slices),
// streams the moving rows from every source group to the new one through
// the ordered log (keyed snapshot export → core.PartitionImport), and
// cuts over by publishing the new epoch. It is the web-tier twin of
// shard.Store.Rebalance, phrased over session routing:
//
//   - clients are the partition unit, so the freeze holds *writes of
//     moving sessions* at the proxy (requeued, not failed — the client
//     sees latency, never an error) while reads keep flowing to the
//     source group (dual-epoch routing during the handoff);
//   - because rows are created under per-group ID counters and actions
//     do not carry their session, the keyed transfer moves the rows whose
//     own partition key ("cart/N", "customer/N", "item/N") lands in a
//     moving slice. A moved session whose cart's row key did not move
//     sees one failed cart interaction after cutover and starts a fresh
//     cart (the RBE models exactly that shopper behaviour); a
//     row-addressed tier (shard.Store) migrates with zero loss.
//
// A server that receives a request for a session its group no longer
// owns answers WrongEpoch, and the proxy transparently redispatches under
// the current table (proxy.go) — the cutover race costs a hop, never a
// client error.

// MigrationPhase values, in order (shared vocabulary with shard.Store).
const (
	PhaseBoot    = shard.PhaseBoot
	PhaseDrain   = shard.PhaseDrain
	PhaseCopy    = shard.PhaseCopy
	PhaseCleanup = shard.PhaseCleanup
	PhaseDone    = shard.PhaseDone
)

// RebalanceOptions parameterizes one web-tier rebalance.
type RebalanceOptions struct {
	// OnPhase, if non-nil, observes phase transitions (simulator
	// context). Fault injection hooks into this to crash members
	// mid-migration.
	OnPhase func(phase string)

	// Done, if non-nil, runs when the migration has fully completed.
	Done func()
}

// MigrationStat is a snapshot of the web tier's migration state.
type MigrationStat struct {
	Epoch       int64 // routing epoch currently published
	Active      bool
	Phase       string
	NewGroup    int
	MovedSlices int
	TotalSlices int

	// StartedAt..CutoverAt is the client-visible migration window (the
	// interval during which moving sessions' writes were requeued).
	StartedAt time.Time
	CutoverAt time.Time
}

// Window returns the migration window, or 0 while open or never started.
func (st MigrationStat) Window() time.Duration {
	if st.StartedAt.IsZero() || st.CutoverAt.IsZero() {
		return 0
	}
	return st.CutoverAt.Sub(st.StartedAt)
}

// Migration returns the current (or last) migration status. Simulator
// context.
func (c *Cluster) Migration() MigrationStat {
	st := MigrationStat{Epoch: c.table.Epoch}
	m := c.mig
	if m == nil {
		return st
	}
	st.Active = m.phase != PhaseDone
	st.Phase = m.phase
	st.NewGroup = m.newGroup
	st.MovedSlices = len(m.moved)
	st.TotalSlices = c.table.Slices()
	st.StartedAt = m.startedAt
	st.CutoverAt = m.cutoverAt
	return st
}

// clusterMigration is the web tier's migration driver state. All fields
// are simulator-loop confined.
type clusterMigration struct {
	c        *Cluster
	opts     RebalanceOptions
	newGroup int
	prev     shard.RoutingTable
	next     shard.RoutingTable
	moved    []int
	bySource map[int][]int
	frozen   map[int]bool

	phase     string
	startedAt time.Time
	cutoverAt time.Time
	drainFrom time.Time
	pendingOp map[string]bool
	copied    int
}

// drainCap bounds how long the proxy-level drain waits for in-flight
// writes of moving sessions before fencing the source logs anyway (a
// request stuck until its 10 s timeout would otherwise hold the window
// open; the barrier still orders everything that reached a replica).
const drainCap = 3 * time.Second

// Rebalance adds one Paxos group of Servers application servers and
// live-migrates its share of the session slices to it. Must be called
// from simulator context; progress is event-driven. Calling it again
// while a migration is active panics (one epoch change at a time).
func (c *Cluster) Rebalance(opts RebalanceOptions) {
	if c.cfg.Readers > 0 {
		// Reader flat indices are fixed past the voter range; a grown
		// group's servers would collide with them. Session fences are also
		// per-group log indices, which a cutover would invalidate.
		panic("webtier: Rebalance is not supported with Readers > 0")
	}
	if c.mig != nil && c.mig.phase != PhaseDone {
		panic("webtier: Rebalance while a migration is active")
	}
	prev := c.table
	newGroup := c.shards
	next, moved := prev.Grow(newGroup)
	m := &clusterMigration{
		c:         c,
		opts:      opts,
		newGroup:  newGroup,
		prev:      prev,
		next:      next,
		moved:     moved,
		bySource:  make(map[int][]int),
		frozen:    make(map[int]bool),
		phase:     PhaseBoot,
		pendingOp: make(map[string]bool),
	}
	for _, sl := range moved {
		m.bySource[prev.Assign[sl]] = append(m.bySource[prev.Assign[sl]], sl)
	}

	// Register and boot the new group's servers. Membership (groupIDs)
	// must be complete before any of them starts; AddNode+Restart are
	// synchronous here, the Start events run afterwards.
	first := len(c.serverIDs)
	c.groupIDs = append(c.groupIDs, nil)
	for mI := 0; mI < c.cfg.Servers; mI++ {
		idx := first + mI
		c.servers = append(c.servers, nil)
		c.auto = append(c.auto, true)
		c.crashedAt = append(c.crashedAt, time.Time{})
		c.grayErr = append(c.grayErr, 0)
		c.graySlow = append(c.graySlow, 0)
		id := c.sim.AddNode(func() env.Node {
			s := &Server{c: c, idx: idx, group: newGroup}
			c.servers[idx] = s
			return s
		})
		c.serverIDs = append(c.serverIDs, id)
		c.groupIDs[newGroup] = append(c.groupIDs[newGroup], id)
	}
	c.shards++
	c.readsServed = append(c.readsServed, 0)
	c.fenceWaits = append(c.fenceWaits, 0)
	c.staleServes = append(c.staleServes, 0)
	c.txnCommits = append(c.txnCommits, 0)
	c.txnAborts = append(c.txnAborts, 0)
	c.txnBlockedNs = append(c.txnBlockedNs, 0)
	if c.proxy != nil {
		c.proxy.grow(len(c.serverIDs), c.shards)
	}
	for _, id := range c.groupIDs[newGroup] {
		c.sim.Restart(id)
	}
	c.mig = m
	m.enterPhase(PhaseBoot)
	m.awaitBoot()
}

func (m *clusterMigration) enterPhase(phase string) {
	m.phase = phase
	if m.opts.OnPhase != nil {
		m.opts.OnPhase(phase)
	}
}

// pickReplica selects a submission target in group g, preferring the
// consensus leader.
func (c *Cluster) pickReplica(g int) *core.Replica {
	var fallback *core.Replica
	for i := g * c.cfg.Servers; i < (g+1)*c.cfg.Servers; i++ {
		if !c.sim.Alive(c.serverIDs[i]) {
			continue
		}
		s := c.servers[i]
		if s == nil || s.replica == nil || !s.replica.Ready() {
			continue
		}
		if s.replica.LeaderHint() {
			return s.replica
		}
		if fallback == nil {
			fallback = s.replica
		}
	}
	return fallback
}

// orderedOp submits one ordered (idempotent) action to group g until a
// completion is observed, then calls then(replica) once on the completing
// replica's executor; a sweep re-submits after crashes.
func (m *clusterMigration) orderedOp(name string, g int, action func() any, then func(r *core.Replica)) {
	m.pendingOp[name] = true
	complete := func(r *core.Replica) {
		if !m.pendingOp[name] {
			return
		}
		delete(m.pendingOp, name)
		then(r)
	}
	var attempt func()
	attempt = func() {
		if !m.pendingOp[name] {
			return
		}
		if r := m.c.pickReplica(g); r != nil {
			r.SubmitFrom(action(), func(_ any, err error) {
				if err == nil {
					complete(r)
				}
			})
		}
		m.c.sim.After(500*time.Millisecond, attempt)
	}
	attempt()
}

// awaitBoot waits for the whole new group to come up (members
// operational, leader elected), then opens the migration window.
func (m *clusterMigration) awaitBoot() {
	ready := 0
	var leader bool
	for i := m.newGroup * m.c.cfg.Servers; i < (m.newGroup+1)*m.c.cfg.Servers; i++ {
		if m.c.accepting(i) {
			ready++
			if m.c.servers[i].replica.LeaderHint() {
				leader = true
			}
		}
	}
	if ready == m.c.cfg.Servers && leader {
		m.freeze()
		return
	}
	m.c.sim.After(50*time.Millisecond, m.awaitBoot)
}

// freeze opens the window: moving sessions' writes requeue at the proxy
// from here until cutover.
func (m *clusterMigration) freeze() {
	for _, sl := range m.moved {
		m.frozen[sl] = true
	}
	m.startedAt = m.c.sim.Now()
	m.drainFrom = m.startedAt
	m.enterPhase(PhaseDrain)
	m.awaitDrain()
}

// awaitDrain waits until no write of a moving session is in flight at the
// proxy (capped by drainCap), then fences each source group's log with an
// ordered barrier and exports behind it.
func (m *clusterMigration) awaitDrain() {
	inflight := 0
	if p := m.c.proxy; p != nil {
		for _, r := range p.outstanding {
			if r.req.Kind.IsWrite() && m.frozen[m.prev.SliceOf(tpcw.SessionKey(r.req.Client))] {
				inflight++
			}
		}
	}
	if inflight > 0 && m.c.sim.Now().Sub(m.drainFrom) < drainCap {
		m.c.sim.After(10*time.Millisecond, m.awaitDrain)
		return
	}
	m.enterPhase(PhaseCopy)
	if len(m.bySource) == 0 {
		// Degenerate: nothing moves (a table grown past its slice count
		// sheds no load); cut over immediately.
		m.cutover()
		return
	}
	for g := range m.bySource {
		g := g
		m.orderedOp(fmt.Sprintf("barrier/%d", g), g, func() any { return core.Noop{} },
			func(r *core.Replica) { m.export(g, r) })
	}
}

// export runs on the executor of the source replica that applied the
// barrier; the keyed snapshot read here contains every drained write.
func (m *clusterMigration) export(g int, r *core.Replica) {
	var data any
	var size int64
	if pm, ok := r.Machine().(core.PartitionedMachine); ok {
		data, size = pm.ExportOwned(m.prev.Owned(m.bySource[g]))
	}
	m.c.sim.After(0, func() { m.importInto(g, data, size) })
}

func (m *clusterMigration) importInto(g int, data any, size int64) {
	if data == nil {
		m.sourceDone()
		return
	}
	m.orderedOp(fmt.Sprintf("import/%d", g), m.newGroup,
		func() any {
			return core.PartitionImport{Epoch: m.next.Epoch, Source: g, Data: data, Size: size}
		},
		func(*core.Replica) { m.c.sim.After(0, m.sourceDone) })
}

func (m *clusterMigration) sourceDone() {
	m.copied++
	if m.copied == len(m.bySource) {
		m.cutover()
	}
}

// cutover publishes the next epoch: session routing re-reads the table on
// every dispatch, so moving sessions flow to the new group from the next
// event on; their requeued writes drain there too.
//
// Unlike shard.Store's migration, the web tier issues no PartitionDrop:
// sessions, not rows, are its partition unit, and rows are shared across
// session slices — every group's store starts from the full population
// clone, and any of a group's sessions may read any population row. A
// drop keyed by moved row slices would delete rows the source group's
// remaining sessions still serve. The source copies of moved rows simply
// stop being written (their writers now commit on the new group), the
// same bounded divergence the soft-replicated catalog already has.
func (m *clusterMigration) cutover() {
	m.c.table = m.next
	m.cutoverAt = m.c.sim.Now()
	m.frozen = make(map[int]bool)
	m.enterPhase(PhaseCleanup)
	m.c.sim.After(0, func() {
		m.enterPhase(PhaseDone)
		if m.opts.Done != nil {
			m.opts.Done()
		}
	})
}
