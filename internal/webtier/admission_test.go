package webtier

import (
	"testing"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/paxos"
	"robuststore/internal/rbe"
	"robuststore/internal/tpcw"
)

// TestStaleAdmissionHintFailsOpen: a frozen publisher's last grade must
// not keep gating traffic. The replica's hint is forced to Stop and its
// publishLoop frozen; once the hint's age passes 2×PublishInterval the
// proxy treats it as unknown and admits the write outright — no hold, no
// pace, no shed on an opinion describing a past the proposer may have
// long left.
func TestStaleAdmissionHintFailsOpen(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()

	for i := 0; i < 3; i++ {
		rep := c.Replica(i)
		rep.FreezePublish(true)
		rep.ForceAdmissionHint(paxos.AdmissionStop)
	}

	// Fresh hint (age still under the threshold): Stop holds the write.
	var heldEarly bool
	s.At(s.Now(), func() {
		p := c.proxy
		r := &outReq{req: rbe.Request{Client: 5, Kind: rbe.BuyConfirm, Item: 1}, done: func(rbe.Response) {}}
		r.server = 0
		heldEarly = !p.admitAtDispatch(r)
	})
	s.RunFor(50 * time.Millisecond)
	if !heldEarly {
		t.Fatal("a fresh Stop hint did not hold the write at the proxy")
	}

	// Let the hint go stale: the frozen publishLoop never refreshes
	// pubAdmissionAt, so its age grows past the 2×PublishInterval cutoff.
	s.RunFor(time.Second)
	now := s.Now()
	if age := c.Replica(0).AdmissionHintAge(now); age <= 2*core.PublishInterval {
		t.Fatalf("frozen hint age = %v, want > %v", age, 2*core.PublishInterval)
	}

	held := c.proxy.Stats.AdmHeld
	shed := c.proxy.Stats.AdmShed
	paced := c.proxy.Stats.AdmPaced
	var admitted bool
	s.At(s.Now(), func() {
		p := c.proxy
		r := &outReq{req: rbe.Request{Client: 6, Kind: rbe.BuyConfirm, Item: 2}, done: func(rbe.Response) {}}
		r.server = 0
		admitted = p.admitAtDispatch(r)
	})
	s.RunFor(50 * time.Millisecond)
	if !admitted {
		t.Fatal("stale Stop hint still gated the write; want fail-open")
	}
	if c.proxy.Stats.AdmHeld != held || c.proxy.Stats.AdmShed != shed || c.proxy.Stats.AdmPaced != paced {
		t.Fatalf("stale hint moved admission counters: held %d→%d shed %d→%d paced %d→%d",
			held, c.proxy.Stats.AdmHeld, shed, c.proxy.Stats.AdmShed, paced, c.proxy.Stats.AdmPaced)
	}

	// Thawing the publisher refreshes the hint; the next tick clears the
	// forced Stop and the age snaps back under the cutoff.
	for i := 0; i < 3; i++ {
		c.Replica(i).FreezePublish(false)
	}
	s.RunFor(500 * time.Millisecond)
	if age := c.Replica(0).AdmissionHintAge(s.Now()); age > 2*core.PublishInterval {
		t.Fatalf("thawed hint still stale: age %v", age)
	}
}

// TestQualityEvictionOnGrayServer: a gray-failed server keeps answering
// probes, so probe-timeout detection never fires — only the
// served-traffic quality EWMA can justify pulling it. The proxy must
// evict it after enough bad samples, quarantine it against probe
// re-admission, and re-admit it after the quarantine ends once it
// serves cleanly again.
func TestQualityEvictionOnGrayServer(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()

	victim := -1
	s.At(s.Now(), func() { victim = (c.LeaderOf(0) + 1) % 3 })
	s.RunFor(time.Millisecond)
	c.GrayFail(victim, 0.9) // errors 90% of requests; probes still ack

	// Drive traffic at the victim until the quality gate trips. Client
	// hash picks the server, so sweep client IDs that land on it.
	for i := 0; i < 60 && c.proxy.up[victim]; i++ {
		do(c, rbe.Request{Client: int64(i), Kind: rbe.Home, Item: tpcw.ItemID(1 + i%100)})
	}
	if c.proxy.up[victim] {
		t.Fatal("gray server never evicted on served-traffic quality")
	}
	if c.ProxyStats().QualityEvictions < 1 {
		t.Fatalf("eviction not counted: %+v", c.ProxyStats())
	}

	// Probes keep succeeding against the gray server, but the quarantine
	// holds it out of rotation.
	s.RunFor(5 * time.Second)
	if c.proxy.up[victim] {
		t.Fatal("succeeding probes re-admitted the quarantined gray server")
	}

	// Healed and out of quarantine: probes re-admit it.
	c.GrayRestore(victim)
	s.RunFor(15 * time.Second)
	if !c.proxy.up[victim] {
		t.Fatal("healed server not re-admitted after quarantine")
	}
}
