// Package webtier models RobustStore's deployment tier (paper Figure 2):
// Tomcat-like replica servers that serve the fourteen TPC-W interactions
// over a Treplica-replicated bookstore, an HAProxy-like reverse proxy with
// probe-based failover and client-hash balancing, a watchdog that restarts
// crashed servers automatically, and the faultload controller that injects
// the paper's three crash scenarios.
package webtier

import (
	"strconv"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/paxos"
	"robuststore/internal/rbe"
	"robuststore/internal/sim"
	"robuststore/internal/tpcw"
)

// Messages between proxy and servers.

type reqMsg struct {
	ID  int64
	Req rbe.Request

	// Fence is the read-your-writes fence on read requests: the session's
	// commit-index high-water mark. The serving replica must have applied
	// at least this log index before answering (core.Replica.ReadAt);
	// zero means unfenced. Maintained at every Readers setting — voting
	// non-leader replicas serve fenced reads even with no learner readers.
	Fence paxos.InstanceID
}

func (m reqMsg) WireSize() int64 { return 512 }

type respMsg struct {
	ID   int64
	Resp rbe.Response
	Page int64

	// WrongEpoch reports that the serving group no longer owns the
	// request's session under the current routing table (the request
	// raced a rebalance cutover); the proxy re-routes instead of
	// failing the client.
	WrongEpoch bool

	// Commit, on successful write responses, is the log instance the
	// write was applied at; the proxy folds it into the session's fence.
	Commit paxos.InstanceID

	// TooStale reports a fenced read whose bounded wait expired before
	// this replica caught up to the fence; the proxy redispatches to a
	// fresher server instead of failing the client.
	TooStale bool
}

func (m respMsg) WireSize() int64 { return 96 + m.Page }

type probeMsg struct {
	Seq int64
}

func (m probeMsg) WireSize() int64 { return 128 }

type probeRespMsg struct {
	Seq int64
	OK  bool
}

func (m probeRespMsg) WireSize() int64 { return 128 }

// Server is one application-server replica: an env.Node wrapping a
// Treplica replica over the bookstore store plus a CPU model. A fresh
// Server is built per incarnation; the simulated disk underneath survives.
type Server struct {
	c       *Cluster
	idx     int  // flat server index (group-major; readers past the voter range)
	group   int  // Paxos group (shard) this server belongs to
	learner bool // read-only server backed by a non-voting learner replica

	e       env.Env
	cpu     *sim.Resource
	replica *core.Replica
	store   *tpcw.Store

	// promoted tracks old-generation promotion since the last modeled
	// GC pause.
	promoted int64

	// caughtUp becomes true once post-recovery log replay has drained
	// from the CPU; only then does the server pass health probes and
	// count as operational (the paper measures recovery up to the
	// moment the replica "is ready to proceed as if it had not
	// crashed", §2).
	caughtUp bool

	// Cross-shard transaction state (txn.go). txnCoords is this server's
	// volatile coordinator bookkeeping — losing it is safe, the decision
	// record is the durable outcome. txnArmed/txnResolve track the
	// participant-side resolution loops for prepared branches.
	txnSeq     int64
	txnCoords  map[string]*txnCoord
	txnArmed   map[string]bool
	txnResolve map[string]int
}

var _ env.Node = (*Server)(nil)

// Start implements env.Node.
func (s *Server) Start(e env.Env) {
	s.e = e
	s.cpu = sim.NewResource(s.c.sim, 1)
	cal := s.c.cfg.Cal
	pcfg := s.c.cfg.Paxos
	// The consensus group is this shard's voting servers only — neither
	// the proxy node, other groups' servers, nor this group's readers are
	// Treplica members. Voters announce decided values and heartbeats to
	// the group's learners; a learner engine only listens.
	pcfg.Members = s.c.groupIDs[s.group]
	if s.learner {
		pcfg.Learner = true
	} else if s.group < len(s.c.readerIDs) {
		// Groups added by a live rebalance (Readers=0 only) have no
		// reader slot.
		pcfg.Learners = s.c.readerIDs[s.group]
	}
	cfg := core.Config{
		FastPaxos:          s.c.cfg.FastPaxos,
		CheckpointInterval: s.c.cfg.CheckpointInterval,
		RetainInstances:    s.c.cfg.RetainInstances,
		FullCheckpoints:    s.c.cfg.FullCheckpoints,
		ActionSize:         tpcw.ActionSize,
		Paxos:              pcfg,
		SequentialRecovery: s.c.cfg.SequentialRecovery,
		Machine: func() core.StateMachine {
			s.store = s.c.cfg.Store()
			return &serverMachine{s: s}
		},
		OnCheckpoint: func(size int64) {
			// Serialization pause: the CPU is busy, queueing requests.
			// With incremental checkpoints size is the delta, so both
			// the pause and the disk write shrink to O(recent writes).
			s.c.ckptWrites++
			s.c.ckptBytes += size
			s.cpu.Acquire(cal.checkpointPause(size), nil)
		},
		OnReady: func() {
			// A fresh (never-crashed) server is operational as soon as
			// its state is in place; a recovering one waits for
			// OnRecovered plus replay drain.
			if s.replica.Recovered() {
				s.caughtUp = true
			}
			// Re-arm resolution for any prepared branch this incarnation
			// restored from checkpoint + log (txn.go): a participant
			// crash between prepare and outcome must not strand the
			// branch or its blocked keys.
			s.armTxnRecovery()
		},
		OnRecovered: func() {
			// The consensus layer is re-synchronized, but the replayed
			// backlog still occupies the CPU; the replica is
			// operational once that drains.
			s.awaitReplayDrain()
		},
		OnTxnStaged: func(id string, home int) {
			// Every staged branch gets a resolution loop the moment its
			// prepare record applies — including records replayed after
			// the readiness rescans ran, which is the one window those
			// rescans cannot see (coordinator crash after deciding, its
			// own branch replaying into the fresh incarnation).
			if !s.learner {
				s.armTxnResolve(id, home)
			}
		},
	}
	s.replica = core.NewReplica(cfg)
	s.replica.Start(e)
}

// awaitReplayDrain polls the CPU queue and declares the server recovered
// when the replay work is done.
func (s *Server) awaitReplayDrain() {
	if s.cpu.QueueLen() == 0 {
		s.caughtUp = true
		// The replayed log suffix may have staged branches beyond what
		// the checkpoint (scanned at OnReady) carried: rescan now that
		// replay has drained.
		s.armTxnRecovery()
		if s.c.cfg.OnRecovered != nil {
			s.c.cfg.OnRecovered(s.idx, s.e.Now())
		}
		return
	}
	s.e.After(250*time.Millisecond, s.awaitReplayDrain)
}

// operational reports whether this server should pass health probes.
func (s *Server) operational() bool {
	if s.replica == nil || !s.replica.Ready() {
		return false
	}
	if !s.replica.Recovered() {
		return false
	}
	return s.caughtUp
}

// Receive implements env.Node: it multiplexes proxy traffic and consensus
// traffic.
func (s *Server) Receive(from env.NodeID, msg env.Message) {
	switch m := msg.(type) {
	case reqMsg:
		s.handleRequest(from, m)
	case txnPrepareMsg:
		s.onTxnPrepare(from, m)
	case txnVoteMsg:
		s.onTxnVote(m)
	case txnOutcomeMsg:
		s.onTxnOutcome(from, m)
	case txnAckMsg:
		s.onTxnAck(m)
	case txnStatusMsg:
		s.onTxnStatus(from, m)
	case txnStatusRespMsg:
		s.onTxnStatusResp(m)
	case probeMsg:
		// The probe is an HTTP request: it queues on the same CPU as
		// real requests, so a server drowning in replay work misses
		// the probe deadline exactly like a real Tomcat would.
		s.cpu.Acquire(200*time.Microsecond, func() {
			s.e.Send(from, probeRespMsg{Seq: m.Seq, OK: s.operational()})
		})
	default:
		s.replica.Receive(from, msg)
	}
}

// serverMachine wraps the bookstore store to charge the active-replication
// CPU cost: every replica executes every write, and the consensus leader
// additionally pays per-peer messaging cost per ordered action.
type serverMachine struct {
	s *Server
}

func (m *serverMachine) Execute(action any) any {
	result := m.s.store.Apply(action)
	cal := m.s.c.cfg.Cal
	cost := cal.applyCPU(action)
	if m.s.replica != nil && m.s.replica.IsLeader() {
		cost += time.Duration(m.s.c.cfg.Servers) * cal.LeaderMsgCPU
	}
	// JVM old-generation promotion: enough of it triggers a
	// stop-the-world collection proportional to the live set.
	m.s.promoted += cal.actionPromoted(action)
	if cal.GCPromotedLimit > 0 && m.s.promoted >= cal.GCPromotedLimit {
		m.s.promoted = 0
		cost += cal.gcPause(m.s.store.NominalBytes())
	}
	m.s.cpu.Acquire(cost, nil)
	return result
}

func (m *serverMachine) Snapshot() (any, int64) { return m.s.store.Snapshot() }
func (m *serverMachine) Restore(data any)       { m.s.store.Restore(data) }

// The transaction-staging capability (core.TxnStager) delegates the
// prepare-time vote to the bookstore's read-only branch validation.
func (m *serverMachine) StageTxn(action any) string { return m.s.store.StageTxn(action) }

// The incremental-checkpoint capability (core.DeltaSnapshotter)
// delegates to the bookstore's dirty-row tracking; like Restore, replay
// cost during recovery is modeled by the disk reads, not the CPU.
func (m *serverMachine) SnapshotDelta() (any, int64, bool) { return m.s.store.SnapshotDelta() }
func (m *serverMachine) ApplyDelta(data any)               { m.s.store.ApplyDelta(data) }

// The partition-migration capability (core.PartitionedMachine) delegates
// to the bookstore; merging an import pauses the server CPU like the
// deserialization of a checkpoint of the moved bytes would.
func (m *serverMachine) ExportOwned(owned func(string) bool) (any, int64) {
	return m.s.store.ExportOwned(owned)
}

func (m *serverMachine) ImportOwned(data any) {
	m.s.store.ImportOwned(data)
	if ps, ok := data.(tpcw.PartitionSnap); ok {
		m.s.cpu.Acquire(m.s.c.cfg.Cal.checkpointPause(ps.NominalBytes), nil)
	}
}

func (m *serverMachine) DropOwned(owned func(string) bool) {
	m.s.store.DropOwned(owned)
}

// CPUQueue returns the server CPU queue length (diagnostics).
func (s *Server) CPUQueue() int { return s.cpu.QueueLen() }

// handleRequest serves one web interaction.
func (s *Server) handleRequest(proxy env.NodeID, m reqMsg) {
	if s.replica == nil || !s.replica.Ready() {
		s.e.Send(proxy, respMsg{ID: m.ID, Resp: rbe.Response{Err: true}})
		return
	}
	if s.c.GroupOf(m.Req.Client) != s.group {
		// The session moved to another group while this request was in
		// flight (routing-epoch cutover): redirect, don't serve stale.
		s.e.Send(proxy, respMsg{ID: m.ID, Resp: rbe.Response{Err: true}, WrongEpoch: true})
		return
	}
	// Gray failure, error flavor: the request machinery fails a fraction
	// of real requests fast while the probe path above keeps answering OK
	// — the prober cannot see this fault.
	if r := s.c.grayErr[s.idx]; r > 0 && s.e.Rand().Float64() < r {
		s.e.Send(proxy, respMsg{ID: m.ID, Resp: rbe.Response{Err: true}})
		return
	}
	cal := s.c.cfg.Cal
	if !m.Req.Kind.IsWrite() {
		serve := func() {
			s.cpu.Acquire(s.graySvc(cal.readService(m.Req.Kind)), func() {
				if m.Fence > 0 && s.replica.LastApplied() < m.Fence {
					// Serving below the fence would break read-your-writes;
					// ReadAt makes this unreachable, the counter proves it.
					s.c.fenceViolations++
				}
				resp := s.performRead(m.Req)
				s.c.readsServed[s.group]++
				s.e.Send(proxy, respMsg{ID: m.ID, Resp: resp, Page: cal.PageSize})
			})
		}
		if m.Fence > 0 && s.replica.LastApplied() < m.Fence {
			// Fenced read behind the session's commit index: wait for the
			// replica to catch up, bounded; past the bound, answer
			// TooStale so the proxy retries on a fresher server.
			s.c.fenceWaits[s.group]++
			s.replica.ReadAt(m.Fence, cal.fenceWait(),
				func(core.StateMachine, paxos.InstanceID) { serve() },
				func() {
					s.c.staleServes[s.group]++
					s.e.Send(proxy, respMsg{ID: m.ID, Resp: rbe.Response{Err: true}, TooStale: true})
				})
			return
		}
		serve()
		return
	}
	if s.learner {
		// Read-only server: the proxy never routes writes here, but a
		// raced dispatch must not wedge — fail it back for a retry.
		s.e.Send(proxy, respMsg{ID: m.ID, Resp: rbe.Response{Err: true}})
		return
	}
	// Writes whose keys conflict with a prepared transaction branch hold
	// at the tier boundary until the outcome record releases them
	// (txn.go); with no prepared branches — always true on the
	// single-group fast path — the gate is a plain passthrough.
	s.withTxnGate(m, func() {
		s.admitWrite(s.e.Now().Add(admitHoldDeadline), func() {
			s.cpu.Acquire(s.graySvc(cal.WriteParse), func() {
				s.performWrite(proxy, m)
			})
		}, func() {
			s.e.Send(proxy, respMsg{ID: m.ID, Resp: rbe.Response{Err: true}})
		})
	}, func() {
		s.e.Send(proxy, respMsg{ID: m.ID, Resp: rbe.Response{Err: true}})
	})
}

// graySvc inflates one request service charge under the slow-walk flavor
// of gray failure (Cluster.GrayFail with factor ≥ 1). Healthy servers pay
// d unchanged.
func (s *Server) graySvc(d time.Duration) time.Duration {
	if f := s.c.graySlow[s.idx]; f > 1 {
		return time.Duration(float64(d) * f)
	}
	return d
}

// Admission pacing: the step a slowed or held write waits before
// (re)entering, and how long a write may be held under AdmissionStop
// before it is shed. The deadline is far below the proxy's request
// timeout, so a shed write fails fast instead of timing out.
const (
	admitPace         = 2 * time.Millisecond
	admitHoldDeadline = 500 * time.Millisecond
)

// admitWrite gates one write behind the replica's admission controller.
// AdmissionSlowdown delays the write one pacing step; AdmissionStop holds
// it at the tier boundary — re-checking every step until the proposer
// backlog drains — and sheds it via drop once the deadline passes.
// Overload thus degrades to queueing latency at the tier boundary instead
// of consensus retry-timeout storms.
func (s *Server) admitWrite(deadline time.Time, run, drop func()) {
	switch s.replica.AdmissionState() {
	case paxos.AdmissionStop:
		if !s.e.Now().Before(deadline) {
			s.c.admDropped++
			drop()
			return
		}
		s.c.admHeld++
		s.e.After(admitPace, func() { s.admitWrite(deadline, run, drop) })
	case paxos.AdmissionSlowdown:
		s.c.admSlowed++
		s.e.After(admitPace, run)
	default:
		run()
	}
}

// reply sends a write result back through a render slot. commit is the
// log instance the write applied at (zero on errors): the proxy folds it
// into the session's read-your-writes fence.
func (s *Server) reply(proxy env.NodeID, id int64, resp rbe.Response, commit paxos.InstanceID) {
	s.cpu.Acquire(s.graySvc(s.c.cfg.Cal.WriteRender), func() {
		s.e.Send(proxy, respMsg{ID: id, Resp: resp, Page: s.c.cfg.Cal.PageSize, Commit: commit})
	})
}

// performWrite builds the deterministic action for a write interaction —
// resolving timestamps and random values here, in the facade, before the
// action is submitted (paper §4, task II) — and replies when the action
// has been ordered and applied locally.
func (s *Server) performWrite(proxy env.NodeID, m reqMsg) {
	req := m.Req
	now := s.e.Now()
	rng := s.e.Rand()
	fail := func() { s.reply(proxy, m.ID, rbe.Response{Err: true}, 0) }
	failR := func(result any, err error) {
		if s.c.FailDebug != nil {
			reason := req.Kind.String()
			if err != nil {
				reason += ":" + err.Error()
			} else {
				switch r := result.(type) {
				case tpcw.CartResult:
					reason += ":" + r.Err
				case tpcw.BuyConfirmResult:
					reason += ":" + r.Err
				default:
					reason += ":badtype"
				}
			}
			s.c.FailDebug[reason]++
		}
		fail()
	}
	_ = failR

	switch req.Kind {
	case rbe.ShoppingCart:
		action := tpcw.CartUpdateAction{
			Cart:       req.Cart,
			AddItem:    req.Item,
			AddQty:     req.Qty,
			RandomItem: req.Item,
			Now:        now,
		}
		s.replica.SubmitIndexed(action, func(result any, inst paxos.InstanceID, err error) {
			cr, ok := result.(tpcw.CartResult)
			if err != nil || !ok || cr.Err != "" {
				failR(result, err)
				return
			}
			s.reply(proxy, m.ID, rbe.Response{Cart: cr.Cart.ID}, inst)
		})

	case rbe.CustomerRegistration:
		action := tpcw.CreateCustomerAction{
			FName:     "F" + strconv.Itoa(rng.Intn(10000)),
			LName:     "L" + strconv.Itoa(rng.Intn(10000)),
			Street1:   strconv.Itoa(rng.Intn(999)) + " Web St",
			City:      "City" + strconv.Itoa(rng.Intn(500)),
			State:     "ST",
			Zip:       strconv.Itoa(10000 + rng.Intn(89999)),
			Country:   tpcw.CountryID(rng.Intn(92) + 1),
			Phone:     strconv.Itoa(1000000000 + int(rng.Int63n(899999999))),
			Email:     "x@example.com",
			BirthDate: now.AddDate(-18-rng.Intn(60), 0, 0),
			Data:      "data",
			Discount:  float64(rng.Intn(51)), // random discount, drawn pre-submit
			Now:       now,
		}
		s.replica.SubmitIndexed(action, func(result any, inst paxos.InstanceID, err error) {
			cr, ok := result.(tpcw.CreateCustomerResult)
			if err != nil || !ok {
				fail()
				return
			}
			s.reply(proxy, m.ID, rbe.Response{
				Customer: cr.Customer.ID,
				UName:    cr.Customer.UName,
			}, inst)
		})

	case rbe.BuyRequest:
		refresh := func(cart tpcw.CartID) {
			s.replica.SubmitIndexed(tpcw.RefreshSessionAction{Customer: req.Customer, Now: now},
				func(_ any, inst paxos.InstanceID, err error) {
					if err != nil {
						fail()
						return
					}
					s.reply(proxy, m.ID, rbe.Response{Cart: cart}, inst)
				})
		}
		if req.Cart == 0 {
			// TPC-W: add a (caller-chosen) random item if the session
			// has no cart yet.
			s.replica.Submit(tpcw.CartUpdateAction{RandomItem: req.Item, Now: now},
				func(result any, err error) {
					cr, ok := result.(tpcw.CartResult)
					if err != nil || !ok || cr.Err != "" {
						fail()
						return
					}
					refresh(cr.Cart.ID)
				})
			return
		}
		refresh(req.Cart)

	case rbe.BuyConfirm:
		confirm := func(cart tpcw.CartID) {
			action := tpcw.BuyConfirmAction{
				Cart:     cart,
				Customer: req.Customer,
				CCType:   "VISA",
				CCNum:    "4111111111111111",
				CCName:   "Card Holder",
				CCExpire: now.AddDate(2, 0, 0),
				ShipType: "AIR",
				ShipDate: now.AddDate(0, 0, 1+rng.Intn(7)), // random pre-submit
				Now:      now,
			}
			s.replica.SubmitIndexed(action, func(result any, inst paxos.InstanceID, err error) {
				br, ok := result.(tpcw.BuyConfirmResult)
				if err != nil || !ok || br.Err != "" {
					failR(result, err)
					return
				}
				s.reply(proxy, m.ID, rbe.Response{Order: br.Order}, inst)
			})
		}
		if req.Cart == 0 {
			s.replica.Submit(tpcw.CartUpdateAction{RandomItem: req.Item, Now: now},
				func(result any, err error) {
					cr, ok := result.(tpcw.CartResult)
					if err != nil || !ok || cr.Err != "" {
						fail()
						return
					}
					confirm(cr.Cart.ID)
				})
			return
		}
		confirm(req.Cart)

	case rbe.AdminConfirm:
		item, ok := s.store.GetBook(req.Item)
		if !ok {
			fail()
			return
		}
		action := tpcw.AdminUpdateAction{
			Item:      req.Item,
			Cost:      item.SRP * (0.5 + rng.Float64()*0.5), // random pre-submit
			Image:     "img/full/new" + strconv.Itoa(rng.Intn(1000)),
			Thumbnail: "img/thumb/new" + strconv.Itoa(rng.Intn(1000)),
			Now:       now,
		}
		s.replica.SubmitIndexed(action, func(_ any, inst paxos.InstanceID, err error) {
			if err != nil {
				fail()
				return
			}
			s.reply(proxy, m.ID, rbe.Response{}, inst)
		})

	case rbe.GiftPurchase:
		s.performGiftPurchase(proxy, m)

	case rbe.StockSweep:
		s.performStockSweep(proxy, m)

	default:
		fail()
	}
}

// performRead serves the read-only interactions directly from the local
// replica (no total ordering; paper §5.2).
func (s *Server) performRead(req rbe.Request) rbe.Response {
	st := s.store
	switch req.Kind {
	case rbe.Home:
		st.GetBook(req.Item)
		if rel, ok := st.GetRelated(req.Item); ok {
			for _, r := range rel {
				st.GetBook(r)
			}
		}
	case rbe.NewProducts:
		for _, id := range st.GetNewProducts(req.Subject) {
			st.GetBook(id)
		}
	case rbe.BestSellers:
		for _, bs := range st.GetBestSellers(req.Subject) {
			st.GetBook(bs.Item)
		}
	case rbe.ProductDetail:
		if item, ok := st.GetBook(req.Item); ok {
			st.GetAuthor(item.Author)
		}
	case rbe.SearchRequest:
		// Static form page.
	case rbe.SearchResults:
		for _, id := range st.DoSearch(req.SearchKind, req.SearchTerm) {
			st.GetBook(id)
		}
	case rbe.OrderInquiry:
		// Static form page.
	case rbe.OrderDisplay:
		uname := req.UName
		if uname == "" {
			uname, _ = st.GetUserName(req.Customer)
		}
		st.GetMostRecentOrder(uname)
	case rbe.AdminRequest:
		st.GetBook(req.Item)
	}
	return rbe.Response{}
}
