package webtier

// Cross-shard transaction tests: the single-group fast path stays
// record-free, the happy cross-group path commits exactly once on every
// participant, and crashes planted inside the two windows the protocol
// is built around — between prepare and decision, and between the
// decision record and its fanout — always resolve every stranded branch
// to one atomic outcome. The tests step the simulator in small
// increments and read replica state directly between steps (the sim is
// stopped, so the loop-confined accessors are safe), which lets them
// observe a transaction mid-flight and crash the exact server playing
// coordinator at that instant.

import (
	"fmt"
	"testing"
	"time"

	"robuststore/internal/rbe"
	"robuststore/internal/tpcw"
)

// clientInGroup finds a session id the router pins to group g.
func clientInGroup(t *testing.T, c *Cluster, g int) int64 {
	t.Helper()
	for id := int64(1); id < 200; id++ {
		if c.GroupOf(id) == g {
			return id
		}
	}
	t.Fatalf("no client id under 200 routes to group %d", g)
	return 0
}

// customerInGroup finds a base-population customer whose row lives on
// group g.
func customerInGroup(t *testing.T, c *Cluster, g int) tpcw.CustomerID {
	t.Helper()
	n := c.Store(0).Info().Customers
	for id := 1; id <= n; id++ {
		if c.CustomerGroup(tpcw.CustomerID(id)) == g {
			return tpcw.CustomerID(id)
		}
	}
	t.Fatalf("no base customer routes to group %d", g)
	return 0
}

// itemsInGroup finds n base-population items whose rows live on group g.
func itemsInGroup(t *testing.T, c *Cluster, g, n int) []tpcw.ItemID {
	t.Helper()
	total := c.Store(0).Info().Items
	var out []tpcw.ItemID
	for id := 1; id <= total && len(out) < n; id++ {
		if c.ItemGroup(tpcw.ItemID(id)) == g {
			out = append(out, tpcw.ItemID(id))
		}
	}
	if len(out) < n {
		t.Fatalf("only %d of %d wanted items route to group %d", len(out), n, g)
	}
	return out
}

// stepUntil advances the simulation in 1 ms increments until cond holds
// or the budget runs out.
func stepUntil(c *Cluster, budget time.Duration, cond func() bool) bool {
	deadline := c.Sim().Now().Add(budget)
	for !cond() {
		if !c.Sim().Now().Before(deadline) {
			return false
		}
		c.Sim().RunFor(time.Millisecond)
	}
	return true
}

// preparedIn returns one prepared branch held by any live replica of
// group g.
func preparedIn(c *Cluster, servers, g int) (id string, home int, ok bool) {
	for i := g * servers; i < (g+1)*servers; i++ {
		if r := c.Replica(i); r != nil {
			if ps := r.PreparedTxns(); len(ps) > 0 {
				return ps[0].ID, ps[0].Home, true
			}
		}
	}
	return "", 0, false
}

// preparedAnywhere reports any live replica still staging a branch.
func preparedAnywhere(c *Cluster) bool {
	for i := 0; i < c.TotalServers(); i++ {
		if r := c.Replica(i); r != nil && len(r.PreparedTxns()) > 0 {
			return true
		}
	}
	return false
}

// coordinatorOf finds the group-g server holding live coordinator
// bookkeeping for an in-flight transaction, or -1.
func coordinatorOf(c *Cluster, servers, g int) int {
	for i := g * servers; i < (g+1)*servers; i++ {
		if s := c.Server(i); s != nil && len(s.txnCoords) > 0 {
			return i
		}
	}
	return -1
}

// sweptOn reports whether group g applied its sweep branch: some live
// replica shows every listed item stamped with the sweep's tag. One
// branch is one atomic action, so all-or-nothing holds per replica.
func sweptOn(c *Cluster, servers, g int, items []tpcw.ItemID, tag string) bool {
	for i := g * servers; i < (g+1)*servers; i++ {
		st := c.Store(i)
		if st == nil {
			continue
		}
		all := true
		for _, id := range items {
			if it, ok := st.GetBook(id); !ok || it.SweptTag != tag {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// giftsTaggedOn returns the most-advanced live replica's count of orders
// carrying the tag on group g.
func giftsTaggedOn(c *Cluster, servers, g int, tag string) int {
	max := 0
	for i := g * servers; i < (g+1)*servers; i++ {
		if st := c.Store(i); st != nil {
			if n := st.OrdersTagged(tag); n > max {
				max = n
			}
		}
	}
	return max
}

// itemKeysUnblocked asserts no live replica still blocks the items'
// conflict keys (the prepared branch released them with its outcome).
func itemKeysUnblocked(t *testing.T, c *Cluster, items []tpcw.ItemID) {
	t.Helper()
	for i := 0; i < c.TotalServers(); i++ {
		r := c.Replica(i)
		if r == nil {
			continue
		}
		for _, id := range items {
			key := fmt.Sprintf("item/%d", id)
			if r.TxnBlocks(key) {
				t.Errorf("server %d still blocks %s after resolution", i, key)
			}
		}
	}
}

// TestTxnFastPathOrdersNoRecords: a gift whose recipient shares the
// buyer's group and a sweep whose items are all group-local take the
// plain submit path — correct results, and zero transaction records or
// outcome counters anywhere in the cluster.
func TestTxnFastPathOrdersNoRecords(t *testing.T) {
	const shards, servers = 2, 3
	c := shardedCluster(t, shards, servers)
	client := clientInGroup(t, c, 0)
	peer := customerInGroup(t, c, 0)

	resp, got := do(c, rbe.Request{Client: client, Kind: rbe.GiftPurchase,
		Customer: 1, Peer: peer, Item: 3, Tag: "fast-gift"})
	if !got || resp.Err || resp.Order == 0 {
		t.Fatalf("same-group gift failed: %+v got=%v", resp, got)
	}
	if n := giftsTaggedOn(c, servers, 0, "fast-gift"); n != 1 {
		t.Errorf("fast-path gift applied %d times on group 0, want 1", n)
	}
	if n := giftsTaggedOn(c, servers, 1, "fast-gift"); n != 0 {
		t.Errorf("fast-path gift leaked onto group 1 (%d orders)", n)
	}

	items := itemsInGroup(t, c, 0, 2)
	resp, got = do(c, rbe.Request{Client: client, Kind: rbe.StockSweep,
		Items: items, Cost: 123.25, Tag: "fast-sweep"})
	if !got || resp.Err {
		t.Fatalf("all-local sweep failed: %+v got=%v", resp, got)
	}
	if !sweptOn(c, servers, 0, items, "fast-sweep") {
		t.Error("all-local sweep left items unswept on the owning group")
	}

	// The fast path must be record-free: no outcome counters moved, no
	// branch was ever staged.
	for g := 0; g < shards; g++ {
		commits, aborts, blocked := c.TxnStats(g)
		if commits != 0 || aborts != 0 || blocked != 0 {
			t.Errorf("group %d counted txn activity on the fast path: commits=%d aborts=%d blocked=%v",
				g, commits, aborts, blocked)
		}
	}
	if preparedAnywhere(c) {
		t.Error("fast-path interactions staged a prepared branch")
	}
}

// TestTxnCrossShardCommit: the happy 2PC path. A cross-group gift lands
// exactly once on the recipient's group, a both-group sweep stamps every
// item on both groups, and afterwards each group has ordered exactly one
// commit outcome per transaction with nothing left prepared or blocked.
func TestTxnCrossShardCommit(t *testing.T) {
	const shards, servers = 2, 3
	c := shardedCluster(t, shards, servers)
	client := clientInGroup(t, c, 0)
	peer := customerInGroup(t, c, 1)

	resp, got := do(c, rbe.Request{Client: client, Kind: rbe.GiftPurchase,
		Customer: 1, Peer: peer, Item: 3, Tag: "x-gift"})
	if !got || resp.Err {
		t.Fatalf("cross-group gift failed: %+v got=%v", resp, got)
	}
	if n := giftsTaggedOn(c, servers, 1, "x-gift"); n != 1 {
		t.Errorf("gift delivered %d times on recipient group, want 1", n)
	}
	if n := giftsTaggedOn(c, servers, 0, "x-gift"); n != 0 {
		t.Errorf("gift order leaked onto the buyer's group (%d orders)", n)
	}

	g0 := itemsInGroup(t, c, 0, 2)
	g1 := itemsInGroup(t, c, 1, 2)
	items := append(append([]tpcw.ItemID{}, g0...), g1...)
	resp, got = do(c, rbe.Request{Client: client, Kind: rbe.StockSweep,
		Items: items, Cost: 321.75, Tag: "x-sweep"})
	if !got || resp.Err {
		t.Fatalf("cross-group sweep failed: %+v got=%v", resp, got)
	}
	if !sweptOn(c, servers, 0, g0, "x-sweep") || !sweptOn(c, servers, 1, g1, "x-sweep") {
		t.Errorf("sweep half-applied: group0=%v group1=%v",
			sweptOn(c, servers, 0, g0, "x-sweep"), sweptOn(c, servers, 1, g1, "x-sweep"))
	}

	// Two transactions, each with a branch on both groups: one commit
	// outcome per group per transaction, no aborts.
	for g := 0; g < shards; g++ {
		commits, aborts, _ := c.TxnStats(g)
		if commits != 2 || aborts != 0 {
			t.Errorf("group %d: commits=%d aborts=%d, want 2/0", g, commits, aborts)
		}
	}
	if preparedAnywhere(c) {
		t.Error("branches left prepared after committed transactions")
	}
	itemKeysUnblocked(t, c, items)
}

// issueSweep submits a cross-group sweep without waiting for the reply,
// returning the per-group item sets and reply observers.
func issueSweep(t *testing.T, c *Cluster, client int64, tag string) (g0, g1 []tpcw.ItemID, replied *bool, ok *bool) {
	t.Helper()
	g0 = itemsInGroup(t, c, 0, 2)
	g1 = itemsInGroup(t, c, 1, 2)
	items := append(append([]tpcw.ItemID{}, g0...), g1...)
	replied, ok = new(bool), new(bool)
	s := c.Sim()
	s.At(s.Now(), func() {
		c.Frontend().Do(rbe.Request{Client: client, Kind: rbe.StockSweep,
			Items: items, Cost: 777.5, Tag: tag}, func(r rbe.Response) {
			*replied, *ok = true, !r.Err
		})
	})
	return g0, g1, replied, ok
}

// assertTxnAtomic is the shared post-crash judgement: nothing stays
// prepared, both groups reach the same outcome, an OK reply implies the
// effects exist, and the groups' outcome records never disagree.
func assertTxnAtomic(t *testing.T, c *Cluster, servers int, g0, g1 []tpcw.ItemID, tag string, replied, ok bool) {
	t.Helper()
	if preparedAnywhere(c) {
		t.Error("a prepared branch was never resolved")
	}
	s0 := sweptOn(c, servers, 0, g0, tag)
	s1 := sweptOn(c, servers, 1, g1, tag)
	if s0 != s1 {
		t.Errorf("half-applied transaction: group0 swept=%v, group1 swept=%v", s0, s1)
	}
	if replied && ok && !s0 {
		t.Error("client was told commit but the effects are missing")
	}
	c0, a0, _ := c.TxnStats(0)
	c1, a1, _ := c.TxnStats(1)
	if (c0 > 0 && a1 > 0) || (a0 > 0 && c1 > 0) {
		t.Errorf("groups recorded opposite outcomes: g0 commits=%d aborts=%d, g1 commits=%d aborts=%d",
			c0, a0, c1, a1)
	}
	itemKeysUnblocked(t, c, append(append([]tpcw.ItemID{}, g0...), g1...))
}

// TestTxnCoordinatorCrashInPrepareWindow plants a coordinator crash in
// the window between the participant staging its prepare and the
// decision record: the stranded branch must resolve through the home
// group's (presumed-abort or real) decision state, atomically on both
// groups, with its conflict keys released.
func TestTxnCoordinatorCrashInPrepareWindow(t *testing.T) {
	const shards, servers = 2, 3
	c := shardedCluster(t, shards, servers)
	client := clientInGroup(t, c, 0)
	g0, g1, replied, ok := issueSweep(t, c, client, "coord-crash")

	if !stepUntil(c, 3*time.Second, func() bool {
		_, _, found := preparedIn(c, servers, 1)
		return found
	}) {
		t.Fatal("participant group never staged the prepared branch")
	}
	coord := coordinatorOf(c, servers, 0)
	if coord < 0 {
		t.Fatal("no server on the home group holds coordinator state")
	}
	c.Crash(coord) // the watchdog restarts it; recovery rescans PreparedTxns

	c.Sim().RunFor(45 * time.Second)
	assertTxnAtomic(t, c, servers, g0, g1, "coord-crash", *replied, *ok)
}

// TestTxnCoordinatorCrashAfterDecision crashes the coordinator once the
// decision record is durably ordered in its home group: whatever the
// record says is what every participant must end up applying, coordinator
// memory be damned.
func TestTxnCoordinatorCrashAfterDecision(t *testing.T) {
	const shards, servers = 2, 3
	c := shardedCluster(t, shards, servers)
	client := clientInGroup(t, c, 0)
	g0, g1, replied, ok := issueSweep(t, c, client, "post-decision")

	var id string
	var home int
	if !stepUntil(c, 3*time.Second, func() bool {
		var found bool
		id, home, found = preparedIn(c, servers, 1)
		return found
	}) {
		t.Fatal("participant group never staged the prepared branch")
	}
	decided := func() (commit, known bool) {
		for i := home * servers; i < (home+1)*servers; i++ {
			if r := c.Replica(i); r != nil {
				if cm, k := r.TxnDecided(id); k {
					return cm, true
				}
			}
		}
		return false, false
	}
	if !stepUntil(c, 5*time.Second, func() bool { _, known := decided(); return known }) {
		t.Fatal("no decision record was ever ordered in the home group")
	}
	commit, _ := decided()
	if coord := coordinatorOf(c, servers, home); coord >= 0 {
		c.Crash(coord)
	} // else the fanout already completed and the coordinator forgot the txn

	c.Sim().RunFor(45 * time.Second)
	s1 := sweptOn(c, servers, 1, g1, "post-decision")
	if s1 != commit {
		t.Errorf("participant state (swept=%v) contradicts the recorded decision (commit=%v)", s1, commit)
	}
	assertTxnAtomic(t, c, servers, g0, g1, "post-decision", *replied, *ok)
}

// TestTxnParticipantCrashHoldingPrepared crashes the participant group's
// leader while it holds a prepared branch: the coordinator's member
// rotation keeps the protocol moving through the survivors, and the
// restarted member converges on the same outcome from its replayed log.
func TestTxnParticipantCrashHoldingPrepared(t *testing.T) {
	const shards, servers = 2, 3
	c := shardedCluster(t, shards, servers)
	client := clientInGroup(t, c, 0)
	g0, g1, replied, ok := issueSweep(t, c, client, "part-crash")

	if !stepUntil(c, 3*time.Second, func() bool {
		_, _, found := preparedIn(c, servers, 1)
		return found
	}) {
		t.Fatal("participant group never staged the prepared branch")
	}
	victim := c.LeaderOf(1)
	if victim < 0 {
		t.Fatal("participant group has no leader to crash")
	}
	c.Crash(victim)

	c.Sim().RunFor(45 * time.Second)
	assertTxnAtomic(t, c, servers, g0, g1, "part-crash", *replied, *ok)
	// The surviving quorum should have carried the transaction through.
	if !*replied {
		t.Error("client never heard back despite a quorum surviving on every group")
	}
	// Every live member of the participant group converged on the outcome.
	want := sweptOn(c, servers, 1, g1, "part-crash")
	for i := servers; i < 2*servers; i++ {
		st := c.Store(i)
		if st == nil {
			continue
		}
		got := true
		for _, it := range g1 {
			if b, okB := st.GetBook(it); !okB || b.SweptTag != "part-crash" {
				got = false
			}
		}
		if got != want {
			t.Errorf("group-1 member %d diverges from the group outcome (swept=%v, want %v)", i, got, want)
		}
	}
}
