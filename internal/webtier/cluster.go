package webtier

import (
	"io"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/paxos"
	"robuststore/internal/rbe"
	"robuststore/internal/shard"
	"robuststore/internal/sim"
	"robuststore/internal/tpcw"
)

// Config parameterizes a simulated RobustStore deployment: k server
// replicas plus one proxy node on one switch (paper Figure 2), optionally
// scaled out across several independent Paxos groups (shards).
type Config struct {
	// Servers is the replication degree of each group (paper: 4–12).
	Servers int

	// Shards partitions the deployment across this many independent
	// Paxos groups of Servers replicas each. The proxy routes each
	// client session to its owning group (internal/shard key hash), so
	// every group serves a disjoint slice of the client population over
	// its own store partition. Default 1 — the paper's single-group
	// deployment, bit-for-bit unchanged.
	Shards int

	// Readers boots this many learner-backed read-only servers per group:
	// full application servers whose replica is a non-voting Paxos
	// learner — it applies the ordered log and checkpoints but never
	// votes, proposes or counts toward quorum, so added readers cost no
	// WAL-quorum latency. The proxy balances reads per-request across
	// voters + readers and attaches each session's commit-index fence
	// (read-your-writes); writes still go to voters only. Default 0 —
	// reads then rotate across the group's voters alone, still fenced,
	// so non-leader voters serve read-your-writes-safe reads too.
	Readers int

	// FastPaxos enables Treplica's fast mode.
	FastPaxos bool

	// Store builds the populated bookstore for a (re)starting server.
	Store func() *tpcw.Store

	// Cal is the hardware performance model.
	Cal Calibration

	// CheckpointInterval and RetainInstances configure Treplica
	// checkpointing (see core.Config).
	CheckpointInterval time.Duration
	RetainInstances    int64

	// FullCheckpoints forces monolithic full-state checkpoints instead
	// of the incremental delta-chain pipeline the bookstore machine
	// supports (the comparison baseline of exp.CheckpointCurve; see
	// core.Config.FullCheckpoints).
	FullCheckpoints bool

	// Paxos carries engine tuning overrides.
	Paxos paxos.Config

	// SequentialRecovery disables Treplica's parallel recovery
	// (ablation; see core.Config).
	SequentialRecovery bool

	// Sim parameters.
	Seed uint64
	Net  sim.NetConfig
	Disk sim.DiskConfig

	// DebugLog, when non-nil, receives node Logf output (protocol-level
	// election/recovery tracing; see sim.Config.DebugLog).
	DebugLog io.Writer

	// WatchdogInterval is how often each node's watchdog checks its
	// application server (paper §5.1: restart "as soon as it detects
	// the crash"). Default 1 s.
	WatchdogInterval time.Duration

	// OnRecovered reports a server that finished post-crash
	// re-synchronization.
	OnRecovered func(server int, at time.Time)
}

// Cluster wires servers, proxy, watchdog and faultload over a simulator.
// Server indices are flat and group-major: server i belongs to group
// i/Servers as its member i%Servers.
//
// Session routing is epoch-versioned state (shard.RoutingTable), not
// arithmetic: the epoch-0 table reproduces the historical hash%N mapping
// bit for bit, and Rebalance (rebalance.go) adds a group mid-run by
// live-migrating session slices to it and publishing the next epoch.
type Cluster struct {
	cfg    Config
	sim    *sim.Sim
	table  shard.RoutingTable // current routing epoch (sim-loop confined)
	shards int                // current group count (grows on Rebalance)

	serverIDs []env.NodeID   // flat, group-major; readers appended after all voters
	groupIDs  [][]env.NodeID // per-group voting member IDs (Paxos membership)
	readerIDs [][]env.NodeID // per-group learner node IDs (empty without Readers)
	voters    int            // flat index floor of the reader range (Shards×Servers at build)
	proxyID   env.NodeID
	servers   []*Server
	proxy     *Proxy

	// FailDebug, when non-nil, accumulates write-failure reasons.
	FailDebug map[string]int

	auto          []bool // watchdog auto-restart enabled per server
	faults        int
	interventions int
	crashedAt     []time.Time

	// Checkpoint I/O accounting across all servers (sim-loop confined;
	// read after the run): writes counts checkpoints taken, bytes their
	// written sizes — full images or delta layers.
	ckptWrites int64
	ckptBytes  int64

	// Write-admission accounting across all servers (sim-loop confined):
	// writes paced by an AdmissionSlowdown grade, hold steps spent at
	// the tier boundary under AdmissionStop, and holds that exhausted
	// their deadline and were shed.
	admSlowed  int64
	admHeld    int64
	admDropped int64

	// Staleness accounting per group (sim-loop confined): reads served to
	// completion, fenced reads that had to wait for the serving replica
	// to catch up to the session's commit index, and fence waits that
	// expired into a TooStale fallback.
	readsServed []int64
	fenceWaits  []int64
	staleServes []int64

	// Cross-shard transaction accounting per group (sim-loop confined):
	// branch outcomes ordered in the group's log (counted exactly once
	// per group per transaction, on the record that made it terminal) and
	// time ordinary writes spent held behind a prepared branch's blocked
	// keys.
	txnCommits   []int64
	txnAborts    []int64
	txnBlockedNs []int64

	// Gray-failure state per server (sim-loop confined): a grayed server
	// keeps answering probes — its probe path is untouched — while
	// erroring a fraction of real requests (grayErr) or slow-walking
	// their service times by a multiplier (graySlow). Like a disk
	// degradation, gray failure belongs to the process environment (a
	// wedged NIC queue, a sick dependency) and survives crash/restart
	// until restored.
	grayErr  []float64
	graySlow []float64

	// fenceViolations counts fenced reads served by a replica whose
	// applied index was still below the fence — impossible by
	// construction when ReadAt and the fence plumbing are correct, so
	// any non-zero value is a read-your-writes regression. Checked at
	// serve time on every fenced read; tests assert it stays zero
	// across the seeded fault suite.
	fenceViolations int64

	mig *clusterMigration // non-nil once Rebalance has been called
}

// NewCluster builds the deployment. Call Start before driving load.
func NewCluster(cfg Config) *Cluster {
	if cfg.Servers <= 0 {
		panic("webtier: Config.Servers must be positive")
	}
	if cfg.Store == nil {
		panic("webtier: Config.Store is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.WatchdogInterval == 0 {
		cfg.WatchdogInterval = time.Second
	}
	if cfg.Cal.PageSize == 0 {
		cfg.Cal = DefaultCalibration()
	}
	if cfg.Readers < 0 {
		cfg.Readers = 0
	}
	voters := cfg.Shards * cfg.Servers
	total := voters + cfg.Shards*cfg.Readers
	c := &Cluster{
		cfg:          cfg,
		table:        shard.NewRoutingTable(cfg.Shards),
		shards:       cfg.Shards,
		voters:       voters,
		servers:      make([]*Server, total),
		groupIDs:     make([][]env.NodeID, cfg.Shards),
		readerIDs:    make([][]env.NodeID, cfg.Shards),
		auto:         make([]bool, total),
		crashedAt:    make([]time.Time, total),
		readsServed:  make([]int64, cfg.Shards),
		fenceWaits:   make([]int64, cfg.Shards),
		staleServes:  make([]int64, cfg.Shards),
		txnCommits:   make([]int64, cfg.Shards),
		txnAborts:    make([]int64, cfg.Shards),
		txnBlockedNs: make([]int64, cfg.Shards),
		grayErr:      make([]float64, total),
		graySlow:     make([]float64, total),
	}
	c.sim = sim.New(sim.Config{Seed: cfg.Seed, Net: cfg.Net, Disk: cfg.Disk, DebugLog: cfg.DebugLog})
	for i := 0; i < voters; i++ {
		idx, group := i, i/cfg.Servers
		c.auto[i] = true
		id := c.sim.AddNode(func() env.Node {
			s := &Server{c: c, idx: idx, group: group}
			c.servers[idx] = s
			return s
		})
		c.serverIDs = append(c.serverIDs, id)
		c.groupIDs[group] = append(c.groupIDs[group], id)
	}
	// Learner-backed readers live past the voter range: reader j of group
	// g sits at flat index voters + g*Readers + j. They are full
	// application servers (probes, watchdog restarts, checkpoints) whose
	// consensus engine only listens.
	for i := voters; i < total; i++ {
		idx := i
		group := (i - voters) / cfg.Readers
		c.auto[i] = true
		id := c.sim.AddNode(func() env.Node {
			s := &Server{c: c, idx: idx, group: group, learner: true}
			c.servers[idx] = s
			return s
		})
		c.serverIDs = append(c.serverIDs, id)
		c.readerIDs[group] = append(c.readerIDs[group], id)
	}
	c.proxyID = c.sim.AddNode(func() env.Node {
		p := &Proxy{c: c}
		c.proxy = p
		return p
	})
	return c
}

// Sim exposes the simulator for scheduling workload and faultloads.
func (c *Cluster) Sim() *sim.Sim { return c.sim }

// Shards returns the current Paxos group count (grows on Rebalance).
func (c *Cluster) Shards() int { return c.shards }

// Table returns the currently published routing table.
func (c *Cluster) Table() shard.RoutingTable { return c.table }

// TotalServers returns the flat server count (Shards × Servers).
func (c *Cluster) TotalServers() int { return len(c.serverIDs) }

// GroupOf returns the group serving a client's session under the current
// routing epoch. The mapping is tpcw.SessionKey's, so the web tier, the
// live command and any shard.Store keyed by session agree on placement.
func (c *Cluster) GroupOf(client int64) int {
	return c.table.Group(tpcw.SessionKey(client))
}

// sessionFrozen reports whether a client's session slice is mid-handoff:
// its writes must wait for the next routing epoch (the proxy requeues
// them; reads keep flowing to the source group).
func (c *Cluster) sessionFrozen(client int64) bool {
	return c.mig != nil && c.mig.frozen[c.table.SliceOf(tpcw.SessionKey(client))]
}

// Start boots all nodes and the watchdogs.
func (c *Cluster) Start() {
	c.sim.StartAll()
	c.sim.After(c.cfg.WatchdogInterval, c.watchdog)
}

// watchdog re-instantiates crashed application servers automatically
// (paper §5.1), unless auto-restart was disabled for the delayed-recovery
// faultload.
func (c *Cluster) watchdog() {
	for i, id := range c.serverIDs {
		if !c.sim.Alive(id) && c.auto[i] {
			c.sim.Restart(id)
		}
	}
	c.sim.After(c.cfg.WatchdogInterval, c.watchdog)
}

// Crash kills server i abruptly (OS-level kill, §5.1). In-flight requests
// there surface as client errors after the connection-reset delay.
func (c *Cluster) Crash(i int) {
	if !c.sim.Alive(c.serverIDs[i]) {
		return
	}
	c.faults++
	c.crashedAt[i] = c.sim.Now()
	c.sim.Crash(c.serverIDs[i])
	c.sim.After(time.Millisecond, func() {
		if c.proxy != nil {
			c.proxy.onServerReset(i)
		}
	})
}

// SetAutoRestart enables or disables the watchdog for server i.
func (c *Cluster) SetAutoRestart(i int, auto bool) { c.auto[i] = auto }

// PartitionServers isolates the given servers (flat indices) from the
// rest of the cluster — the proxy included, so isolating a whole group
// severs its client slice's path entirely. dir selects symmetric
// isolation or one-way loss relative to the victims. The returned handle
// heals exactly this partition; overlapping partitions compose. Counts
// one injected fault.
func (c *Cluster) PartitionServers(dir env.LinkDir, servers ...int) *sim.BlockHandle {
	ids := make([]env.NodeID, len(servers))
	for k, i := range servers {
		ids[k] = c.serverIDs[i]
	}
	c.faults++
	return c.sim.PartitionDir(dir, ids...)
}

// IsolateFromGroup severs both directions between each given server
// (flat index) and the other members — voters and readers — of its own
// group, leaving the proxy path and every other link intact. A learner
// reader cut off this way keeps serving reads while its applied log
// falls arbitrarily far behind: the staleness worst case the read
// fences must bound. Counts one injected fault.
func (c *Cluster) IsolateFromGroup(servers ...int) {
	c.faults++
	c.setGroupLinks(true, servers)
}

// ReconnectToGroup restores the links severed by IsolateFromGroup.
func (c *Cluster) ReconnectToGroup(servers ...int) {
	c.setGroupLinks(false, servers)
}

func (c *Cluster) setGroupLinks(blocked bool, servers []int) {
	for _, i := range servers {
		g := c.groupOfServer(i)
		vid := c.serverIDs[i]
		for _, peers := range [][]env.NodeID{c.groupIDs[g], c.readerIDs[g]} {
			for _, pid := range peers {
				if pid == vid {
					continue
				}
				c.sim.SetLink(vid, pid, blocked)
				c.sim.SetLink(pid, vid, blocked)
			}
		}
	}
}

// DegradeDisk slows server i's disk live by factor (seek × factor,
// bandwidth ÷ factor) — the failing-disk straggler. The degradation
// survives crash/restart of the server until RestoreDisk. Counts one
// injected fault.
func (c *Cluster) DegradeDisk(i int, factor float64) {
	c.faults++
	c.sim.SetDiskSlowdown(c.serverIDs[i], factor)
}

// SetDiskFactor retunes server i's disk factor without counting a fault —
// the bookkeeping half of composing overlapping degradations (the fault
// was counted when its event fired).
func (c *Cluster) SetDiskFactor(i int, factor float64) {
	c.sim.SetDiskSlowdown(c.serverIDs[i], factor)
}

// RestoreDisk returns server i's disk to its configured performance.
func (c *Cluster) RestoreDisk(i int) {
	c.sim.SetDiskSlowdown(c.serverIDs[i], 1)
}

// DegradeLinks makes every link between the given victim servers (flat
// indices) and the rest of the cluster — the proxy included, mirroring
// PartitionServers — flaky: each crossing message drops with probability
// rate, in the directions dir selects relative to the victims. Counts one
// injected fault.
func (c *Cluster) DegradeLinks(dir env.LinkDir, rate float64, servers ...int) {
	c.faults++
	c.SetLinkRate(dir, rate, servers...)
}

// SetLinkRate applies (or, at rate 0, clears) the per-link loss without
// counting a fault — the bookkeeping half of superseding an open loss
// window (the fault was counted when its event fired).
func (c *Cluster) SetLinkRate(dir env.LinkDir, rate float64, servers ...int) {
	victims := make(map[env.NodeID]bool, len(servers))
	for _, i := range servers {
		victims[c.serverIDs[i]] = true
	}
	for _, i := range servers {
		a := c.serverIDs[i]
		for _, b := range c.sim.Peers() {
			if victims[b] {
				continue
			}
			if dir == env.LinkBothWays || dir == env.LinkOutboundOnly {
				c.sim.SetLinkLoss(a, b, rate)
			}
			if dir == env.LinkBothWays || dir == env.LinkInboundOnly {
				c.sim.SetLinkLoss(b, a, rate)
			}
		}
	}
}

// RestoreLinks clears the loss on every link between the victim servers
// and the rest of the cluster, in both directions.
func (c *Cluster) RestoreLinks(servers ...int) {
	c.SetLinkRate(env.LinkBothWays, 0, servers...)
}

// DegradeLinkDelay inflates the latency of every link between the given
// victim servers and the rest of the cluster — the proxy included — by
// factor, in the directions dir selects relative to the victims. Unlike
// loss, every message still arrives; it just crawls. Counts one injected
// fault.
func (c *Cluster) DegradeLinkDelay(dir env.LinkDir, factor float64, servers ...int) {
	c.faults++
	c.SetLinkDelayFactor(dir, factor, servers...)
}

// SetLinkDelayFactor applies (or, at factor ≤ 1, clears) the per-link
// latency inflation without counting a fault — the bookkeeping half of
// superseding an open delay window.
func (c *Cluster) SetLinkDelayFactor(dir env.LinkDir, factor float64, servers ...int) {
	victims := make(map[env.NodeID]bool, len(servers))
	for _, i := range servers {
		victims[c.serverIDs[i]] = true
	}
	for _, i := range servers {
		a := c.serverIDs[i]
		for _, b := range c.sim.Peers() {
			if victims[b] {
				continue
			}
			if dir == env.LinkBothWays || dir == env.LinkOutboundOnly {
				c.sim.SetLinkDelay(a, b, factor)
			}
			if dir == env.LinkBothWays || dir == env.LinkInboundOnly {
				c.sim.SetLinkDelay(b, a, factor)
			}
		}
	}
}

// RestoreLinkDelay clears the latency inflation on every link between the
// victim servers and the rest of the cluster, in both directions.
func (c *Cluster) RestoreLinkDelay(servers ...int) {
	c.SetLinkDelayFactor(env.LinkBothWays, 1, servers...)
}

// GrayFail puts server i into gray-failure mode: it keeps answering
// probes (its probe path never touches the request machinery) while real
// requests suffer. factor < 1 is an error rate — that fraction of
// requests fail fast with a server-side error; factor ≥ 1 is a slow-walk
// multiplier on request service times. The prober alone cannot see this
// fault, which is the point. Counts one injected fault.
func (c *Cluster) GrayFail(i int, factor float64) {
	c.faults++
	c.SetGray(i, factor)
}

// SetGray applies (or, at factor 0, clears) server i's gray-failure mode
// without counting a fault — the bookkeeping half of superseding an open
// gray window.
func (c *Cluster) SetGray(i int, factor float64) {
	switch {
	case factor <= 0:
		c.grayErr[i], c.graySlow[i] = 0, 0
	case factor < 1:
		c.grayErr[i], c.graySlow[i] = factor, 0
	default:
		c.grayErr[i], c.graySlow[i] = 0, factor
	}
}

// GrayRestore returns server i to healthy request service.
func (c *Cluster) GrayRestore(i int) { c.SetGray(i, 0) }

// LeaderOf returns the flat index of the server currently leading group
// g's consensus, or -1 while the group has no live leader. Call from
// simulator context (the leader is executor-confined state).
func (c *Cluster) LeaderOf(g int) int {
	for m := 0; m < c.cfg.Servers; m++ {
		i := g*c.cfg.Servers + m
		if !c.sim.Alive(c.serverIDs[i]) {
			continue
		}
		s := c.servers[i]
		if s != nil && s.replica != nil && s.replica.IsLeader() {
			return i
		}
	}
	return -1
}

// ManualRecover restarts server i by operator intervention (the delayed
// recovery of §5.6) and counts it against autonomy.
func (c *Cluster) ManualRecover(i int) {
	c.interventions++
	c.auto[i] = true
	c.sim.Restart(c.serverIDs[i])
}

// CrashedAt returns when server i last crashed.
func (c *Cluster) CrashedAt(i int) time.Time { return c.crashedAt[i] }

// Faults returns injected fault count; Interventions the number of human
// interventions (autonomy measure).
func (c *Cluster) Faults() int        { return c.faults }
func (c *Cluster) Interventions() int { return c.interventions }

// CheckpointIO returns the cumulative checkpoint count and bytes written
// across all servers (the steady-state disk cost the incremental
// pipeline shrinks). Read it outside the simulation loop's execution.
func (c *Cluster) CheckpointIO() (writes, bytes int64) {
	return c.ckptWrites, c.ckptBytes
}

// AdmissionStats returns cumulative write-admission activity: writes
// paced under slowdown, writes held under stop, and holds shed at the
// deadline. Read it outside the simulation loop's execution.
func (c *Cluster) AdmissionStats() (slowed, held, dropped int64) {
	return c.admSlowed, c.admHeld, c.admDropped
}

// ReadStats returns group g's cumulative read-path staleness accounting:
// reads served to completion by the group's voters + readers, fenced
// reads that had to wait for the serving replica, and fence waits that
// expired into a TooStale fallback. Read it outside the simulation
// loop's execution.
func (c *Cluster) ReadStats(g int) (served, fenceWaits, staleServes int64) {
	if g < 0 || g >= len(c.readsServed) {
		return 0, 0, 0
	}
	return c.readsServed[g], c.fenceWaits[g], c.staleServes[g]
}

// TxnStats returns group g's cumulative cross-shard transaction
// accounting: branch commits and aborts ordered in the group's log, and
// the total time ordinary writes spent held behind prepared branches'
// blocked keys. Read it outside the simulation loop's execution.
func (c *Cluster) TxnStats(g int) (commits, aborts int64, blocked time.Duration) {
	if g < 0 || g >= len(c.txnCommits) {
		return 0, 0, 0
	}
	return c.txnCommits[g], c.txnAborts[g], time.Duration(c.txnBlockedNs[g])
}

// FenceViolations returns the number of fenced reads served below their
// fence — always zero unless the read-your-writes machinery regressed.
func (c *Cluster) FenceViolations() int64 { return c.fenceViolations }

// Readers returns the configured learner-backed readers per group.
func (c *Cluster) Readers() int { return c.cfg.Readers }

// ReaderIndex returns the flat server index of reader j of group g.
func (c *Cluster) ReaderIndex(g, j int) int {
	return c.voters + g*c.cfg.Readers + j
}

// isReader reports whether flat index i is a learner-backed reader, and
// readerGroup maps it back to its group.
func (c *Cluster) isReader(i int) bool { return c.cfg.Readers > 0 && i >= c.voters }

func (c *Cluster) readerGroup(i int) int { return (i - c.voters) / c.cfg.Readers }

// groupOfServer maps any flat server index — voter or reader — to its
// Paxos group.
func (c *Cluster) groupOfServer(i int) int {
	if c.isReader(i) {
		return c.readerGroup(i)
	}
	return i / c.cfg.Servers
}

// ProxyStats returns error-cause diagnostics.
func (c *Cluster) ProxyStats() ProxyStats {
	if c.proxy == nil {
		return ProxyStats{}
	}
	return c.proxy.Stats
}

// Downtime returns total full-outage time observed at the proxy.
func (c *Cluster) Downtime() time.Duration {
	if c.proxy == nil {
		return 0
	}
	return c.proxy.Downtime()
}

// GroupDowntimes returns each group's cumulative outage time observed at
// the proxy (the per-slice availability inputs).
func (c *Cluster) GroupDowntimes() []time.Duration {
	if c.proxy == nil {
		return make([]time.Duration, c.shards)
	}
	return c.proxy.GroupDowntimes()
}

// Frontend returns the client-facing interface (the proxy).
func (c *Cluster) Frontend() rbe.Frontend { return frontend{c: c} }

type frontend struct{ c *Cluster }

func (f frontend) Do(req rbe.Request, done func(rbe.Response)) {
	f.c.proxy.Do(req, done)
}

// CheckpointAll forces a durable checkpoint on every live server and calls
// done when all have completed — used to install the initial population
// checkpoint before the measurement interval. Targets are collected before
// any checkpoint starts because a replica with nothing to checkpoint
// completes synchronously, which would otherwise fire done early.
//
// Completion is crash-aware: a server that dies mid-checkpoint loses its
// storage completion with the rest of its volatile state, so a sweep
// counts dead or replaced incarnations as finished rather than letting
// done hang forever.
func (c *Cluster) CheckpointAll(done func()) {
	type target struct {
		idx int
		r   *core.Replica
	}
	var targets []target
	for i, id := range c.serverIDs {
		if c.sim.Alive(id) {
			targets = append(targets, target{idx: i, r: c.servers[i].replica})
		}
	}
	reps := make([]*core.Replica, len(targets))
	for k, t := range targets {
		reps[k] = t.r
	}
	core.CheckpointFanout(reps,
		func(k int) bool {
			t := targets[k]
			return !c.sim.Alive(c.serverIDs[t.idx]) || c.servers[t.idx].replica != t.r
		},
		c.sim.After, done)
}

// accepting reports whether server i accepts TCP connections: the process
// is running and its HTTP listener is up (application state loaded). A
// restarting server refuses connections until then, which the proxy
// treats as an instant dispatch failure, not a client error.
func (c *Cluster) accepting(i int) bool {
	if !c.sim.Alive(c.serverIDs[i]) {
		return false
	}
	s := c.servers[i]
	return s != nil && s.replica != nil && s.replica.Ready()
}

// Server returns the current incarnation of server i (nil while crashed).
func (c *Cluster) Server(i int) *Server {
	if !c.sim.Alive(c.serverIDs[i]) {
		return nil
	}
	return c.servers[i]
}

// Store returns server i's bookstore state (for consistency checks).
func (c *Cluster) Store(i int) *tpcw.Store {
	s := c.Server(i)
	if s == nil {
		return nil
	}
	return s.store
}

// Replica returns server i's Treplica replica (nil while crashed).
func (c *Cluster) Replica(i int) *core.Replica {
	s := c.Server(i)
	if s == nil {
		return nil
	}
	return s.replica
}
