package webtier

import (
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/metrics"
	"robuststore/internal/rbe"
	"robuststore/internal/tpcw"
)

func testCluster(t *testing.T, servers int, tweak func(*Config)) *Cluster {
	t.Helper()
	proto := tpcw.Populate(tpcw.PopConfig{Items: 400, EBs: 1, Reduction: 8, Seed: 3})
	cfg := Config{
		Servers:            servers,
		FastPaxos:          true,
		Store:              proto.Clone,
		Cal:                DefaultCalibration(),
		CheckpointInterval: 30 * time.Second,
		RetainInstances:    1 << 20,
		Seed:               11,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c := NewCluster(cfg)
	c.Start()
	// Boot: leader election + initial readiness.
	c.Sim().RunFor(3 * time.Second)
	return c
}

// do issues one interaction and returns the response.
func do(c *Cluster, req rbe.Request) (rbe.Response, bool) {
	var resp rbe.Response
	got := false
	c.Sim().At(c.Sim().Now(), func() {
		c.Frontend().Do(req, func(r rbe.Response) {
			resp = r
			got = true
		})
	})
	c.Sim().RunFor(5 * time.Second)
	return resp, got
}

func TestReadAndWriteInteractions(t *testing.T) {
	c := testCluster(t, 3, nil)
	resp, got := do(c, rbe.Request{Client: 1, Kind: rbe.ProductDetail, Item: 5})
	if !got || resp.Err {
		t.Fatalf("read failed: %+v got=%v", resp, got)
	}
	resp, got = do(c, rbe.Request{Client: 1, Kind: rbe.ShoppingCart, Item: 5, Qty: 2})
	if !got || resp.Err || resp.Cart == 0 {
		t.Fatalf("cart write failed: %+v", resp)
	}
	cart := resp.Cart
	resp, got = do(c, rbe.Request{Client: 1, Kind: rbe.BuyConfirm, Cart: cart, Customer: 1, Item: 5})
	if !got || resp.Err || resp.Order == 0 {
		t.Fatalf("purchase failed: %+v", resp)
	}
	// The order is visible on every replica.
	for i := 0; i < 3; i++ {
		if _, ok := c.Store(i).GetOrder(resp.Order); !ok {
			t.Errorf("order missing on replica %d", i)
		}
	}
}

func TestCustomerRegistrationAndSession(t *testing.T) {
	c := testCluster(t, 3, nil)
	resp, _ := do(c, rbe.Request{Client: 2, Kind: rbe.CustomerRegistration})
	if resp.Err || resp.Customer == 0 || resp.UName == "" {
		t.Fatalf("registration failed: %+v", resp)
	}
	resp2, _ := do(c, rbe.Request{Client: 2, Kind: rbe.BuyRequest, Customer: resp.Customer, Item: 3})
	if resp2.Err || resp2.Cart == 0 {
		t.Fatalf("buy request failed: %+v", resp2)
	}
}

func TestFailoverRoutesAroundCrash(t *testing.T) {
	c := testCluster(t, 3, nil)
	c.Crash(1)
	ok := 0
	for i := 0; i < 12; i++ {
		resp, got := do(c, rbe.Request{Client: int64(i), Kind: rbe.Home, Item: 1})
		if got && !resp.Err {
			ok++
		}
	}
	if ok != 12 {
		t.Fatalf("only %d/12 requests succeeded with one server down", ok)
	}
	if c.Faults() != 1 {
		t.Errorf("faults = %d", c.Faults())
	}
}

func TestWatchdogAutoRestart(t *testing.T) {
	c := testCluster(t, 3, nil)
	c.Crash(2)
	if c.Server(2) != nil {
		t.Fatal("server 2 should be down")
	}
	// The watchdog restarts it within its poll interval; recovery then
	// completes.
	c.Sim().RunFor(30 * time.Second)
	if c.Server(2) == nil {
		t.Fatal("watchdog did not restart server 2")
	}
	r := c.Replica(2)
	if r == nil || !r.Ready() || !r.Recovered() {
		t.Fatal("server 2 did not recover")
	}
	if c.Interventions() != 0 {
		t.Errorf("interventions = %d, want 0 (autonomous)", c.Interventions())
	}
}

func TestManualRecoveryCountsIntervention(t *testing.T) {
	c := testCluster(t, 3, nil)
	c.SetAutoRestart(2, false)
	c.Crash(2)
	c.Sim().RunFor(10 * time.Second)
	if c.Server(2) != nil {
		t.Fatal("watchdog restarted despite being disabled")
	}
	c.ManualRecover(2)
	c.Sim().RunFor(20 * time.Second)
	if c.Server(2) == nil {
		t.Fatal("manual recovery failed")
	}
	if c.Interventions() != 1 || c.Faults() != 1 {
		t.Errorf("interventions=%d faults=%d", c.Interventions(), c.Faults())
	}
}

func TestInFlightWritesErrorOnCrash(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	// Find which server client 99's writes go to, then crash it with
	// the request in flight.
	var target = -1
	s.At(s.Now(), func() {
		c.proxy.Do(rbe.Request{Client: 99, Kind: rbe.ShoppingCart, Item: 1}, func(rbe.Response) {})
	})
	s.RunFor(50 * time.Millisecond)
	for _, r := range c.proxy.outstanding {
		target = r.server
	}
	s.RunFor(5 * time.Second)
	if target < 0 {
		t.Skip("request completed before observation")
	}
	var resp rbe.Response
	got := false
	s.At(s.Now(), func() {
		c.proxy.Do(rbe.Request{Client: 99, Kind: rbe.ShoppingCart, Item: 2}, func(r rbe.Response) {
			resp = r
			got = true
		})
		s.After(2*time.Millisecond, func() { c.Crash(target) })
	})
	s.RunFor(5 * time.Second)
	if !got {
		t.Fatal("no response at all")
	}
	if !resp.Err {
		t.Fatal("in-flight write on crashed server must surface as a client error")
	}
	if st := c.ProxyStats(); st.ErrReset == 0 {
		t.Errorf("expected a reset error, stats=%+v", st)
	}
}

func TestInFlightReadsRedispatchOnCrash(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	var target = -1
	var resp rbe.Response
	got := false
	s.At(s.Now(), func() {
		c.proxy.Do(rbe.Request{Client: 7, Kind: rbe.BestSellers, Subject: "ARTS"}, func(r rbe.Response) {
			resp = r
			got = true
		})
	})
	s.RunFor(time.Millisecond)
	for _, r := range c.proxy.outstanding {
		target = r.server
	}
	if target < 0 {
		t.Skip("read completed instantly")
	}
	s.At(s.Now(), func() { c.Crash(target) })
	s.RunFor(5 * time.Second)
	if !got || resp.Err {
		t.Fatalf("read was not redispatched transparently: got=%v resp=%+v", got, resp)
	}
	if st := c.ProxyStats(); st.Redispatched == 0 {
		t.Errorf("expected a redispatch, stats=%+v", st)
	}
}

func TestProbeEvictsAndReadmits(t *testing.T) {
	c := testCluster(t, 3, nil)
	s := c.Sim()
	c.SetAutoRestart(1, false)
	c.Crash(1)
	// After ProbeFailures intervals the proxy marks it down.
	s.RunFor(6 * time.Second)
	if c.proxy.up[1] {
		t.Fatal("proxy did not evict the dead server")
	}
	c.ManualRecover(1)
	s.RunFor(30 * time.Second)
	if !c.proxy.up[1] {
		t.Fatal("proxy did not re-admit the recovered server")
	}
}

func TestNoServiceBelowMajority(t *testing.T) {
	c := testCluster(t, 3, nil)
	c.SetAutoRestart(0, false)
	c.SetAutoRestart(1, false)
	c.Crash(0)
	c.Crash(1)
	c.Sim().RunFor(10 * time.Second)
	// One of three replicas alive: reads still work locally, but the
	// replicated writes block (below majority).
	resp, got := do(c, rbe.Request{Client: 1, Kind: rbe.Home, Item: 1})
	if !got || resp.Err {
		t.Fatalf("local read should still work: %+v", resp)
	}
	start := c.Sim().Now()
	var wr rbe.Response
	wrGot := false
	c.Sim().At(start, func() {
		c.Frontend().Do(rbe.Request{Client: 1, Kind: rbe.ShoppingCart, Item: 1},
			func(r rbe.Response) { wr = r; wrGot = true })
	})
	c.Sim().RunFor(15 * time.Second)
	if !wrGot || !wr.Err {
		t.Fatalf("write should time out below majority: got=%v resp=%+v", wrGot, wr)
	}
}

func TestEndToEndWorkloadAccuracy(t *testing.T) {
	c := testCluster(t, 5, nil)
	s := c.Sim()
	t0 := s.Now()
	rec := metrics.NewRecorder(t0, time.Second)
	proto := tpcw.Populate(tpcw.PopConfig{Items: 400, EBs: 1, Reduction: 8, Seed: 3})
	pop := rbe.New(rbe.Config{
		Browsers: 100, Profile: rbe.Shopping, ThinkTime: time.Second,
		Population: proto.Info(), Seed: 5, Recorder: rec,
		Stop: t0.Add(60 * time.Second),
	}, schedAdapter{s: s}, c.Frontend())
	pop.Start()
	s.RunFor(70 * time.Second)
	if rec.Total() < 3000 {
		t.Fatalf("only %d interactions completed", rec.Total())
	}
	if acc := rec.Accuracy(); acc < 99.99 {
		t.Fatalf("failure-free accuracy = %v", acc)
	}
	// Replicated state converged across servers.
	var ref int
	for i := 0; i < 5; i++ {
		_, _, orders, _ := c.Store(i).Counts()
		if i == 0 {
			ref = orders
			continue
		}
		if diff := orders - ref; diff < -2 || diff > 2 {
			t.Errorf("replica %d orders=%d vs %d", i, orders, ref)
		}
	}
}

type schedAdapter struct {
	s interface {
		Now() time.Time
		After(time.Duration, func())
	}
}

func (a schedAdapter) Now() time.Time                   { return a.s.Now() }
func (a schedAdapter) After(d time.Duration, fn func()) { a.s.After(d, fn) }

func TestCalibrationHelpers(t *testing.T) {
	cal := DefaultCalibration()
	if cal.readService(rbe.Home) <= 0 || cal.readService(rbe.Interaction(99)) <= 0 {
		t.Error("read service must be positive")
	}
	if cal.applyCPU(tpcw.BuyConfirmAction{}) <= cal.applyCPU(tpcw.RefreshSessionAction{}) {
		t.Error("buy must cost more than session refresh")
	}
	if cal.applyCPU("unknown") <= 0 {
		t.Error("unknown action cost must be positive")
	}
	if cal.gcPause(700e6) <= cal.gcPause(300e6) {
		t.Error("GC pause must grow with live set")
	}
	if cal.actionPromoted(tpcw.BuyConfirmAction{}) <= cal.actionPromoted(tpcw.RefreshSessionAction{}) {
		t.Error("buy must promote more than session refresh")
	}
	if cal.checkpointPause(1<<40) != cal.CheckpointPauseMax {
		t.Error("checkpoint pause must cap")
	}
}

func TestHashBalancesClients(t *testing.T) {
	counts := make(map[uint64]int)
	for c := uint64(0); c < 3000; c++ {
		counts[hash64(c)%5]++
	}
	for b, n := range counts {
		if n < 400 || n > 800 {
			t.Errorf("bucket %d has %d of 3000", b, n)
		}
	}
}

var _ env.Node = (*Server)(nil)
var _ env.Node = (*Proxy)(nil)
