package webtier

import (
	"testing"
	"time"

	"robuststore/internal/rbe"
	"robuststore/internal/tpcw"
)

// shardedTestCluster builds a Shards×Servers deployment (the sharded
// sibling of testCluster).
func shardedTestCluster(t *testing.T, shards, servers int) *Cluster {
	t.Helper()
	proto := tpcw.Populate(tpcw.PopConfig{Items: 400, EBs: 1, Reduction: 8, Seed: 3})
	c := NewCluster(Config{
		Servers:            servers,
		Shards:             shards,
		FastPaxos:          true,
		Store:              proto.Clone,
		Cal:                DefaultCalibration(),
		CheckpointInterval: 30 * time.Second,
		RetainInstances:    1 << 20,
		Seed:               11,
	})
	c.Start()
	c.Sim().RunFor(3 * time.Second)
	return c
}

// TestClusterRebalanceUnderLoad grows a 2-group web tier to 3 groups
// while closed-loop clients keep issuing interactions: the migration must
// complete with a finite window, cause no outage on any group (resharding
// without downtime), and leave the moved sessions being served by the new
// group.
func TestClusterRebalanceUnderLoad(t *testing.T) {
	c := shardedTestCluster(t, 2, 3)
	s := c.Sim()

	// Closed-loop load: 24 clients cycling read→cart→buy over the real
	// catalog (the reduced population has fewer items than PopConfig
	// asked for).
	items := c.Store(0).Info().Items
	customers := c.Store(0).Info().Customers
	stop := s.Now().Add(40 * time.Second)
	total, errs := 0, 0
	carts := make(map[int64]tpcw.CartID)
	var loop func(client int64, step int)
	loop = func(client int64, step int) {
		if !s.Now().Before(stop) {
			return
		}
		var req rbe.Request
		switch step % 3 {
		case 0:
			req = rbe.Request{Client: client, Kind: rbe.Home, Item: tpcw.ItemID(step%items + 1)}
		case 1:
			req = rbe.Request{Client: client, Kind: rbe.ShoppingCart,
				Cart: carts[client], Item: tpcw.ItemID(step%items + 1), Qty: 1}
		case 2:
			req = rbe.Request{Client: client, Kind: rbe.BuyConfirm,
				Cart: carts[client], Customer: tpcw.CustomerID(int(client)%customers + 1), Item: 1}
		}
		c.Frontend().Do(req, func(resp rbe.Response) {
			total++
			if resp.Err {
				errs++
				carts[client] = 0
			} else if resp.Cart != 0 {
				carts[client] = resp.Cart
			} else if req.Kind == rbe.BuyConfirm {
				carts[client] = 0
			}
			s.After(150*time.Millisecond, func() { loop(client, step+1) })
		})
	}
	for cl := int64(0); cl < 24; cl++ {
		cl := cl
		s.At(s.Now().Add(time.Duration(cl)*10*time.Millisecond), func() { loop(cl, int(cl)) })
	}

	done := false
	var phases []string
	s.At(s.Now().Add(5*time.Second), func() {
		c.Rebalance(RebalanceOptions{
			OnPhase: func(p string) { phases = append(phases, p) },
			Done:    func() { done = true },
		})
	})
	s.RunUntil(stop.Add(10 * time.Second))

	if !done {
		t.Fatalf("rebalance did not complete; phases=%v stat=%+v", phases, c.Migration())
	}
	if c.Shards() != 3 || c.TotalServers() != 9 {
		t.Fatalf("deployment did not grow: %d groups, %d servers", c.Shards(), c.TotalServers())
	}
	st := c.Migration()
	if st.Epoch != 1 || st.Window() <= 0 {
		t.Fatalf("migration window not measured: %+v", st)
	}
	if st.Window() > 20*time.Second {
		t.Fatalf("migration window %v too long for a healthy handoff", st.Window())
	}
	// No group saw an outage: resharding is not downtime.
	for g, d := range c.GroupDowntimes() {
		if d != 0 {
			t.Errorf("group %d accrued %v downtime during rebalance", g, d)
		}
	}
	// The new group serves moved sessions: at least one client routes
	// there and its requests succeed.
	movedClient := int64(-1)
	for cl := int64(0); cl < 24; cl++ {
		if c.GroupOf(cl) == 2 {
			movedClient = cl
			break
		}
	}
	if movedClient < 0 {
		t.Fatal("no client session moved to the new group")
	}
	resp, got := do(c, rbe.Request{Client: movedClient, Kind: rbe.Home, Item: 1})
	if !got || resp.Err {
		t.Fatalf("moved session not served by the new group: %+v", resp)
	}
	resp, got = do(c, rbe.Request{Client: movedClient, Kind: rbe.ShoppingCart, Item: 2, Qty: 1})
	if !got || resp.Err || resp.Cart == 0 {
		t.Fatalf("moved session cannot write on the new group: %+v", resp)
	}
	// The workload survived the cutover with low friction: errors are a
	// small fraction (moved sessions may lose at most one cart
	// interaction when their cart's row key stayed behind).
	if total == 0 {
		t.Fatal("load loop issued nothing")
	}
	if float64(errs) > 0.10*float64(total) {
		t.Fatalf("%d/%d interactions failed across the rebalance", errs, total)
	}
	// Phase order sanity.
	want := []string{PhaseBoot, PhaseDrain, PhaseCopy, PhaseCleanup, PhaseDone}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v", phases)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase %d = %s, want %s", i, phases[i], want[i])
		}
	}
	// Every replica of every group still passes the consistency audit.
	for i := 0; i < c.TotalServers(); i++ {
		if st := c.Store(i); st != nil {
			if bad := st.VerifyConsistency(); len(bad) > 0 {
				t.Fatalf("server %d fails the consistency audit after rebalance: %v", i, bad)
			}
		}
	}
}

// TestClusterRebalanceMovesRows: state that diverged from the initial
// population on a source group — an order placed before the rebalance —
// travels to the new group when its rows' partition keys land in a moved
// slice (the keyed snapshot import). The source keeps its copy: in the
// session-routed tier rows are shared across session slices, so the
// migration copies and re-points writers but never deletes.
func TestClusterRebalanceMovesRows(t *testing.T) {
	c := shardedTestCluster(t, 2, 3)
	table0 := c.Table()
	next, _ := table0.Grow(2)

	// A customer whose row key moves from group 0 to the new group, and a
	// client session served by group 0, to shop on their behalf.
	var moved tpcw.CustomerID
	for id := tpcw.CustomerID(1); id <= 200; id++ {
		key := "customer/" + itoa(int64(id))
		if table0.Group(key) == 0 && next.Group(key) == 2 {
			moved = id
			break
		}
	}
	if moved == 0 {
		t.Fatal("no customer row key moves from group 0 to the new group")
	}
	var client int64
	for cl := int64(0); cl < 100; cl++ {
		if c.GroupOf(cl) == 0 {
			client = cl
			break
		}
	}
	resp, _ := do(c, rbe.Request{Client: client, Kind: rbe.ShoppingCart, Item: 2, Qty: 1})
	if resp.Err || resp.Cart == 0 {
		t.Fatalf("cart setup failed: %+v", resp)
	}
	resp, _ = do(c, rbe.Request{Client: client, Kind: rbe.BuyConfirm, Cart: resp.Cart, Customer: moved, Item: 2})
	if resp.Err || resp.Order == 0 {
		t.Fatalf("order setup failed: %+v", resp)
	}
	order := resp.Order

	s := c.Sim()
	done := false
	s.At(s.Now(), func() {
		c.Rebalance(RebalanceOptions{Done: func() { done = true }})
	})
	s.RunFor(30 * time.Second)
	if !done {
		t.Fatalf("rebalance did not complete: %+v", c.Migration())
	}
	newStore := c.Store(2 * 3) // first server of group 2
	if newStore == nil {
		t.Fatal("new group has no live store")
	}
	// The diverged rows followed their keys: the pre-rebalance order and
	// its customer are served by the new group.
	if _, ok := newStore.GetOrder(order); !ok {
		t.Fatalf("order %d did not migrate with customer %d to the new group", order, moved)
	}
	if _, ok := newStore.GetCustomerByID(moved); !ok {
		t.Fatalf("customer %d's row did not migrate to the new group", moved)
	}
	if bad := newStore.VerifyConsistency(); len(bad) > 0 {
		t.Fatalf("new group fails the consistency audit after import: %v", bad)
	}
	// The source keeps serving its copy (shared rows are copied, not
	// deleted).
	if _, ok := c.Store(0).GetCustomerByID(moved); !ok {
		t.Error("source group lost its shared copy of the customer row")
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
