package sim

import "time"

// Resource models a serially shared resource such as a replica's CPU: a
// FIFO queue of jobs, each holding the resource for its service time. The
// web tier uses one Resource per replica to model Tomcat's request
// processing on the single-Xeon nodes of §5.1; queueing delay under load is
// what produces the paper's WIRT curves.
type Resource struct {
	sim     *Sim
	workers int
	busy    []time.Time // per-worker horizon
	queued  int
	gen     int64 // bumped by Reset to orphan pending jobs
}

// NewResource creates a resource with the given parallelism (e.g. CPU
// cores or a worker pool size). workers must be >= 1.
func NewResource(s *Sim, workers int) *Resource {
	if workers < 1 {
		workers = 1
	}
	return &Resource{sim: s, workers: workers, busy: make([]time.Time, workers)}
}

// Acquire enqueues a job that needs the resource for d and calls done when
// it completes. Jobs are served FIFO by the first free worker.
func (r *Resource) Acquire(d time.Duration, done func()) {
	// Pick the worker that frees up first.
	best := 0
	for i := 1; i < r.workers; i++ {
		if r.busy[i].Before(r.busy[best]) {
			best = i
		}
	}
	start := r.sim.now
	if r.busy[best].After(start) {
		start = r.busy[best]
	}
	end := start.Add(d)
	r.busy[best] = end
	r.queued++
	gen := r.gen
	r.sim.schedule(end, func() {
		if r.gen != gen {
			return // orphaned by Reset
		}
		r.queued--
		if done != nil {
			done()
		}
	})
}

// QueueLen returns the number of jobs admitted but not yet completed.
func (r *Resource) QueueLen() int { return r.queued }

// Busy returns the time the resource will next be fully idle.
func (r *Resource) Busy() time.Time {
	latest := r.busy[0]
	for _, b := range r.busy[1:] {
		if b.After(latest) {
			latest = b
		}
	}
	return latest
}

// Reset drops all queued work (completion callbacks never fire) and frees
// the resource immediately. Used when the owning server crashes.
func (r *Resource) Reset() {
	r.gen++
	r.queued = 0
	for i := range r.busy {
		r.busy[i] = time.Time{}
	}
}
