package sim

import (
	"testing"
	"time"

	"robuststore/internal/env"
)

// echoNode replies to every message and records what it saw.
type echoNode struct {
	e        env.Env
	started  int
	received []string
}

func (n *echoNode) Start(e env.Env) {
	n.e = e
	n.started++
}

func (n *echoNode) Receive(from env.NodeID, msg env.Message) {
	s, ok := msg.(string)
	if !ok {
		return
	}
	n.received = append(n.received, s)
	if s == "ping" {
		n.e.Send(from, "pong")
	}
}

// holder tracks the current incarnation of a test node across restarts.
type holder struct{ n *echoNode }

func twoNodes(t *testing.T, cfg Config) (*Sim, *holder, *holder) {
	t.Helper()
	s := New(cfg)
	a, b := &holder{}, &holder{}
	s.AddNode(func() env.Node { a.n = &echoNode{}; return a.n })
	s.AddNode(func() env.Node { b.n = &echoNode{}; return b.n })
	s.StartAll()
	s.RunFor(time.Millisecond)
	return s, a, b
}

func TestSendReceiveRoundTrip(t *testing.T) {
	s, a, b := twoNodes(t, Config{Seed: 1})
	s.At(s.Now(), func() { a.n.e.Send(1, "ping") })
	s.RunFor(10 * time.Millisecond)
	if len(b.n.received) != 1 || b.n.received[0] != "ping" {
		t.Fatalf("b received %v", b.n.received)
	}
	if len(a.n.received) != 1 || a.n.received[0] != "pong" {
		t.Fatalf("a received %v", a.n.received)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	s := New(Config{Seed: 1})
	start := s.Now()
	fired := time.Time{}
	s.After(42*time.Second, func() { fired = s.Now() })
	s.RunFor(time.Minute)
	if got := fired.Sub(start); got != 42*time.Second {
		t.Fatalf("timer fired at +%v, want +42s", got)
	}
	if got := s.Now().Sub(start); got != time.Minute {
		t.Fatalf("clock at +%v, want +1m", got)
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []int {
		s := New(Config{Seed: 7})
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			s.After(time.Duration(i%3)*time.Millisecond, func() {
				order = append(order, i)
			})
		}
		s.RunFor(10 * time.Millisecond)
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order: %v vs %v", a, b)
		}
	}
	// Same-time events run in scheduling order.
	if a[0] != 0 || a[1] != 3 {
		t.Fatalf("tie-break violated: %v", a)
	}
}

func TestCrashDropsTimersAndMessages(t *testing.T) {
	s, a, b := twoNodes(t, Config{Seed: 2})
	fired := false
	s.At(s.Now(), func() {
		b.n.e.After(5*time.Millisecond, func() { fired = true })
	})
	s.Crash(1)
	s.At(s.Now(), func() { a.n.e.Send(1, "lost") })
	s.RunFor(20 * time.Millisecond)
	if fired {
		t.Fatal("timer of crashed node fired")
	}
	if len(b.n.received) != 0 {
		t.Fatalf("crashed node received %v", b.n.received)
	}
	if s.Alive(1) {
		t.Fatal("node 1 should be dead")
	}
}

func TestRestartCreatesFreshIncarnation(t *testing.T) {
	s, _, b := twoNodes(t, Config{Seed: 3})
	first := b.n
	s.Crash(1)
	s.Restart(1)
	s.RunFor(time.Millisecond)
	if !s.Alive(1) {
		t.Fatal("node 1 should be alive after restart")
	}
	// The factory builds a fresh object per incarnation: volatile state
	// does not survive a crash.
	if b.n == first {
		t.Fatal("restart reused the crashed node object")
	}
	if b.n.started != 1 {
		t.Fatalf("fresh incarnation started %d times", b.n.started)
	}
}

func TestPartitionBlocksTraffic(t *testing.T) {
	s, a, b := twoNodes(t, Config{Seed: 4})
	s.Partition(1)
	s.At(s.Now(), func() { a.n.e.Send(1, "ping") })
	s.RunFor(10 * time.Millisecond)
	if len(b.n.received) != 0 {
		t.Fatalf("partitioned node received %v", b.n.received)
	}
	s.Heal()
	s.At(s.Now(), func() { a.n.e.Send(1, "ping") })
	s.RunFor(10 * time.Millisecond)
	if len(b.n.received) != 1 {
		t.Fatalf("healed node received %v", b.n.received)
	}
}

func TestMessageLossRate(t *testing.T) {
	s, a, b := twoNodes(t, Config{Seed: 5, Net: NetConfig{DropRate: 0.5}})
	const sent = 2000
	s.At(s.Now(), func() {
		for i := 0; i < sent; i++ {
			a.n.e.Send(1, "m")
		}
	})
	s.RunFor(time.Second)
	got := len(b.n.received)
	if got < sent*35/100 || got > sent*65/100 {
		t.Fatalf("with 50%% loss, %d/%d delivered", got, sent)
	}
}

func TestTimerStop(t *testing.T) {
	s, _, b := twoNodes(t, Config{Seed: 6})
	fired := false
	var tm env.Timer
	s.At(s.Now(), func() {
		tm = b.n.e.After(5*time.Millisecond, func() { fired = true })
	})
	s.RunFor(time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop reported failure on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported success")
	}
	s.RunFor(20 * time.Millisecond)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStorageDurableAcrossCrash(t *testing.T) {
	s, _, b := twoNodes(t, Config{Seed: 7})
	appended := false
	s.At(s.Now(), func() {
		b.n.e.Storage().Append(env.Record{Kind: "x", Data: 42, Size: 100},
			func(error) { appended = true })
	})
	s.RunFor(100 * time.Millisecond)
	if !appended {
		t.Fatal("append never completed")
	}
	s.Crash(1)
	s.Restart(1)
	s.RunFor(time.Millisecond)
	var got []env.Record
	s.At(s.Now(), func() {
		b.n.e.Storage().ReadRecords(func(recs []env.Record, err error) { got = recs })
	})
	s.RunFor(time.Second)
	if len(got) != 1 || got[0].Data != 42 {
		t.Fatalf("records after restart: %v", got)
	}
}

func TestStorageWriteLostOnCrashBeforeDurability(t *testing.T) {
	s, _, b := twoNodes(t, Config{Seed: 8, Disk: DiskConfig{SyncLatency: 50 * time.Millisecond}})
	s.At(s.Now(), func() {
		b.n.e.Storage().Append(env.Record{Kind: "x", Data: 1, Size: 10}, nil)
	})
	// Crash before the 50 ms flush completes: the write must be lost.
	s.RunFor(10 * time.Millisecond)
	s.Crash(1)
	s.Restart(1)
	var got []env.Record
	s.RunFor(time.Millisecond)
	s.At(s.Now(), func() {
		b.n.e.Storage().ReadRecords(func(recs []env.Record, err error) { got = recs })
	})
	s.RunFor(time.Second)
	if len(got) != 0 {
		t.Fatalf("non-durable write survived crash: %v", got)
	}
}

func TestSnapshotRoundTripAndTruncate(t *testing.T) {
	s, _, b := twoNodes(t, Config{Seed: 9})
	done := 0
	s.At(s.Now(), func() {
		st := b.n.e.Storage()
		st.Append(env.Record{Kind: "a", Data: 1, Size: 10}, func(error) { done++ })
		st.Append(env.Record{Kind: "b", Data: 2, Size: 10}, func(error) { done++ })
		st.SaveSnapshot("app", env.Snapshot{Data: "state", Size: 1000}, func(error) { done++ })
	})
	s.RunFor(time.Second)
	if done != 3 {
		t.Fatalf("completions = %d", done)
	}
	var snap env.Snapshot
	var ok bool
	s.At(s.Now(), func() {
		b.n.e.Storage().LoadSnapshot("app", func(sn env.Snapshot, o bool) { snap, ok = sn, o })
		b.n.e.Storage().Truncate(1, nil)
	})
	s.RunFor(time.Second)
	if !ok || snap.Data != "state" {
		t.Fatalf("snapshot = %+v ok=%v", snap, ok)
	}
	var recs []env.Record
	s.At(s.Now(), func() {
		if fi := b.n.e.Storage().FirstIndex(); fi != 1 {
			t.Errorf("FirstIndex = %d, want 1", fi)
		}
		b.n.e.Storage().ReadRecords(func(r []env.Record, err error) { recs = r })
	})
	s.RunFor(time.Second)
	if len(recs) != 1 || recs[0].Kind != "b" {
		t.Fatalf("after truncate: %v", recs)
	}
}

func TestDiskSerializesOperations(t *testing.T) {
	s, _, b := twoNodes(t, Config{Seed: 10, Disk: DiskConfig{
		SyncLatency: 10 * time.Millisecond, WriteBandwidth: 1e6, ReadBandwidth: 1e6,
	}})
	var first, second time.Time
	s.At(s.Now(), func() {
		st := b.n.e.Storage()
		st.Append(env.Record{Size: 10000}, func(error) { first = s.Now() })
		st.Append(env.Record{Size: 10000}, func(error) { second = s.Now() })
	})
	s.RunFor(time.Second)
	if first.IsZero() || second.IsZero() {
		t.Fatal("appends incomplete")
	}
	// Both were group-committed by one flush.
	if !first.Equal(second) {
		t.Fatalf("group commit expected: %v vs %v", first, second)
	}
}

func TestResource(t *testing.T) {
	s := New(Config{Seed: 11})
	r := NewResource(s, 1)
	var order []int
	r.Acquire(10*time.Millisecond, func() { order = append(order, 1) })
	r.Acquire(10*time.Millisecond, func() { order = append(order, 2) })
	if r.QueueLen() != 2 {
		t.Fatalf("queue len = %d", r.QueueLen())
	}
	s.RunFor(15 * time.Millisecond)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("after 15ms: %v", order)
	}
	s.RunFor(10 * time.Millisecond)
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("after 25ms: %v", order)
	}
}

func TestResourceParallelWorkers(t *testing.T) {
	s := New(Config{Seed: 12})
	r := NewResource(s, 2)
	doneAt := make([]time.Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		r.Acquire(10*time.Millisecond, func() { doneAt[i] = s.Now() })
	}
	s.RunFor(50 * time.Millisecond)
	// Two run in parallel, the third queues behind one of them.
	if doneAt[0] != doneAt[1] {
		t.Fatalf("parallel jobs finished apart: %v %v", doneAt[0], doneAt[1])
	}
	if !doneAt[2].After(doneAt[0]) {
		t.Fatalf("third job did not queue: %v", doneAt[2])
	}
}

func TestResourceReset(t *testing.T) {
	s := New(Config{Seed: 13})
	r := NewResource(s, 1)
	fired := false
	r.Acquire(10*time.Millisecond, func() { fired = true })
	r.Reset()
	s.RunFor(time.Second)
	if fired {
		t.Fatal("callback fired after Reset")
	}
	if r.QueueLen() != 0 {
		t.Fatal("queue not cleared")
	}
}

func TestRunUntilIdle(t *testing.T) {
	s := New(Config{Seed: 14})
	count := 0
	s.After(time.Millisecond, func() { count++ })
	s.After(2*time.Millisecond, func() { count++ })
	if !s.RunUntilIdle(100) {
		t.Fatal("queue did not drain")
	}
	if count != 2 {
		t.Fatalf("ran %d events", count)
	}
}

// TestTimerStopAfterFireReportsFalse: the env.Timer contract — Stop
// reports whether the callback was prevented. The event loop used to pop
// events without clearing fn, so Stop on an already-fired timer claimed
// it prevented a callback that had already run.
func TestTimerStopAfterFireReportsFalse(t *testing.T) {
	s, a, _ := twoNodes(t, Config{Seed: 20})
	var tm env.Timer
	fired := false
	s.At(s.Now(), func() {
		tm = a.n.e.After(5*time.Millisecond, func() { fired = true })
	})
	s.RunFor(20 * time.Millisecond)
	if !fired {
		t.Fatal("timer never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop claimed it prevented a callback that already ran")
	}

	// The counterpart: stopping before the fire prevents it and reports
	// true; a second Stop is a no-op reporting false.
	fired = false
	s.At(s.Now(), func() {
		tm = a.n.e.After(5*time.Millisecond, func() { fired = true })
	})
	s.RunFor(time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop before the fire must report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop must report false")
	}
	s.RunFor(20 * time.Millisecond)
	if fired {
		t.Fatal("stopped timer fired anyway")
	}
}

func threeNodes(t *testing.T, cfg Config) (*Sim, []*holder) {
	t.Helper()
	s := New(cfg)
	hs := make([]*holder, 3)
	for i := range hs {
		h := &holder{}
		hs[i] = h
		s.AddNode(func() env.Node { h.n = &echoNode{}; return h.n })
	}
	s.StartAll()
	s.RunFor(time.Millisecond)
	return s, hs
}

// TestOverlappingPartitionsCompose: Heal used to clear the whole blocked
// map, so healing one partition destroyed every other link block. Handles
// must heal only their own blocks.
func TestOverlappingPartitionsCompose(t *testing.T) {
	s, hs := threeNodes(t, Config{Seed: 21})
	h1 := s.Partition(1)
	h2 := s.Partition(2)
	h1.Heal()
	s.At(s.Now(), func() {
		hs[0].n.e.Send(1, "to-healed")
		hs[0].n.e.Send(2, "to-partitioned")
	})
	s.RunFor(10 * time.Millisecond)
	if len(hs[1].n.received) != 1 {
		t.Fatalf("healed node received %v, want the message", hs[1].n.received)
	}
	if len(hs[2].n.received) != 0 {
		t.Fatalf("healing partition 1 leaked traffic through partition 2: %v", hs[2].n.received)
	}
	// SetLink toggles survive a handle heal too.
	s.SetLink(0, 1, true)
	h3 := s.Partition(1)
	h3.Heal()
	s.At(s.Now(), func() { hs[0].n.e.Send(1, "still-blocked") })
	s.RunFor(10 * time.Millisecond)
	if len(hs[1].n.received) != 1 {
		t.Fatalf("handle heal cleared a SetLink block: %v", hs[1].n.received)
	}
	h2.Heal()
	s.SetLink(0, 1, false)
	s.At(s.Now(), func() { hs[0].n.e.Send(2, "open-again") })
	s.RunFor(10 * time.Millisecond)
	if len(hs[2].n.received) != 1 {
		t.Fatalf("after healing its own handle node 2 received %v", hs[2].n.received)
	}
}

// TestPartitionAppliesToLateAddedNodes: Partition used to snapshot peers
// at call time, so a node added afterwards (live rebalance booting a new
// group) straddled the partition with open links to both sides.
func TestPartitionAppliesToLateAddedNodes(t *testing.T) {
	s, hs := threeNodes(t, Config{Seed: 22})
	h := s.Partition(1)
	late := &holder{}
	id := s.AddNode(func() env.Node { late.n = &echoNode{}; return late.n })
	s.Restart(id)
	s.RunFor(time.Millisecond)
	s.At(s.Now(), func() {
		late.n.e.Send(1, "must-not-cross")
		hs[1].n.e.Send(id, "must-not-cross-either")
		late.n.e.Send(0, "majority-flows")
	})
	s.RunFor(10 * time.Millisecond)
	if len(hs[1].n.received) != 0 || len(late.n.received) != 0 {
		t.Fatalf("late node straddles the partition: victim %v, late %v",
			hs[1].n.received, late.n.received)
	}
	if len(hs[0].n.received) != 1 {
		t.Fatalf("majority-side delivery failed: %v", hs[0].n.received)
	}
	h.Heal()
	s.At(s.Now(), func() { late.n.e.Send(1, "healed") })
	s.RunFor(10 * time.Millisecond)
	if len(hs[1].n.received) != 1 {
		t.Fatalf("after heal the victim received %v", hs[1].n.received)
	}
}

// TestPartitionOneWaySim: asymmetric loss — the victim hears the cluster
// but its answers vanish (outbound), or the reverse (inbound).
func TestPartitionOneWaySim(t *testing.T) {
	s, a, b := twoNodes(t, Config{Seed: 23})
	h := s.PartitionDir(env.LinkOutboundOnly, 1)
	s.At(s.Now(), func() { a.n.e.Send(1, "ping") })
	s.RunFor(10 * time.Millisecond)
	if len(b.n.received) != 1 {
		t.Fatalf("victim should hear inbound traffic: %v", b.n.received)
	}
	if len(a.n.received) != 0 {
		t.Fatalf("victim's pong crossed an outbound-only partition: %v", a.n.received)
	}
	h.Heal()
	s.PartitionDir(env.LinkInboundOnly, 1)
	s.At(s.Now(), func() {
		a.n.e.Send(1, "dropped")
		b.n.e.Send(0, "heard")
	})
	s.RunFor(10 * time.Millisecond)
	if len(b.n.received) != 1 {
		t.Fatalf("inbound-only partition leaked traffic in: %v", b.n.received)
	}
	if len(a.n.received) != 1 {
		t.Fatalf("victim's outbound traffic should flow: %v", a.n.received)
	}
}

// TestDiskSlowdownStretchesWrites: SetDiskSlowdown retunes a node's disk
// live — appends take factor× longer — and restoring factor 1 returns to
// the configured timing. The degradation survives a crash/restart (it
// belongs to the hardware, not the incarnation).
func TestDiskSlowdownStretchesWrites(t *testing.T) {
	appendTime := func(s *Sim, st env.Storage) time.Duration {
		start := s.Now()
		var done time.Time
		st.Append(env.Record{Kind: "w", Size: 1 << 20}, func(error) { done = s.Now() })
		s.RunFor(time.Second)
		if done.IsZero() {
			t.Fatal("append never completed")
		}
		return done.Sub(start)
	}
	s, _, _ := twoNodes(t, Config{Seed: 24})
	base := appendTime(s, s.Storage(0))
	s.SetDiskSlowdown(0, 8)
	if got := s.DiskSlowdown(0); got != 8 {
		t.Fatalf("DiskSlowdown = %v, want 8", got)
	}
	slow := appendTime(s, s.Storage(0))
	if slow < 7*base {
		t.Fatalf("8x-degraded append took %v, healthy %v — not stretched", slow, base)
	}
	// Survives crash/restart.
	s.Crash(0)
	s.RunFor(time.Second)
	s.Restart(0)
	s.RunFor(time.Second)
	if got := s.DiskSlowdown(0); got != 8 {
		t.Fatalf("slowdown did not survive restart: %v", got)
	}
	stillSlow := appendTime(s, s.Storage(0))
	if stillSlow < 7*base {
		t.Fatalf("post-restart degraded append took %v, healthy %v", stillSlow, base)
	}
	s.SetDiskSlowdown(0, 1)
	restored := appendTime(s, s.Storage(0))
	if restored > 2*base {
		t.Fatalf("restored append took %v, healthy %v — not restored", restored, base)
	}
}

// TestAppendBatchOneFlush: a batch of records must be made durable by a
// single group commit — one sync latency plus the summed transfer time —
// not one flush per record, and the done callback must fire once, after
// the whole batch.
func TestAppendBatchOneFlush(t *testing.T) {
	const sync = 10 * time.Millisecond
	s, _, b := twoNodes(t, Config{Seed: 21, Disk: DiskConfig{SyncLatency: sync}})
	start := s.Now()
	var doneAt time.Time
	var calls int
	s.At(s.Now(), func() {
		recs := make([]env.Record, 16)
		for i := range recs {
			recs[i] = env.Record{Kind: "r", Data: i, Size: 64}
		}
		b.n.e.Storage().AppendBatch(recs, func(error) {
			calls++
			doneAt = s.Now()
		})
	})
	s.RunFor(time.Second)
	if calls != 1 {
		t.Fatalf("done ran %d times, want once", calls)
	}
	// One flush: well under two sync latencies. Sixteen separate flushes
	// would cost ≥ 16 × sync.
	if el := doneAt.Sub(start); el >= 2*sync {
		t.Fatalf("batch took %v, want < %v (one group commit)", el, 2*sync)
	}
	var got []env.Record
	s.At(s.Now(), func() {
		b.n.e.Storage().ReadRecords(func(recs []env.Record, err error) { got = recs })
	})
	s.RunFor(time.Second)
	if len(got) != 16 {
		t.Fatalf("read back %d records, want 16", len(got))
	}
	for i, r := range got {
		if r.Data != i {
			t.Fatalf("record %d holds %v: batch order not preserved", i, r.Data)
		}
	}
}

// TestAppendBatchInterleavesInOrder: records from Append and AppendBatch
// calls must land on disk in issue order even when they share flushes.
func TestAppendBatchInterleavesInOrder(t *testing.T) {
	s, _, b := twoNodes(t, Config{Seed: 22})
	s.At(s.Now(), func() {
		st := b.n.e.Storage()
		st.Append(env.Record{Kind: "r", Data: 0, Size: 8}, nil)
		st.AppendBatch([]env.Record{
			{Kind: "r", Data: 1, Size: 8},
			{Kind: "r", Data: 2, Size: 8},
		}, nil)
		st.Append(env.Record{Kind: "r", Data: 3, Size: 8}, nil)
	})
	s.RunFor(time.Second)
	var got []env.Record
	s.At(s.Now(), func() {
		b.n.e.Storage().ReadRecords(func(recs []env.Record, err error) { got = recs })
	})
	s.RunFor(time.Second)
	if len(got) != 4 {
		t.Fatalf("read back %d records, want 4", len(got))
	}
	for i, r := range got {
		if r.Data != i {
			t.Fatalf("record %d holds %v: order not preserved", i, r.Data)
		}
	}
}

// TestPerLinkLoss: SetLinkLoss drops traffic on exactly the configured
// directed link, leaving the reverse direction and other links untouched.
func TestPerLinkLoss(t *testing.T) {
	s, a, b := twoNodes(t, Config{Seed: 23})
	s.SetLinkLoss(0, 1, 1.0)
	s.At(s.Now(), func() { a.n.e.Send(1, "ping") })
	s.RunFor(10 * time.Millisecond)
	if len(b.n.received) != 0 {
		t.Fatalf("lossy link delivered %v", b.n.received)
	}
	// Reverse direction unaffected.
	s.At(s.Now(), func() { b.n.e.Send(0, "hello") })
	s.RunFor(10 * time.Millisecond)
	if len(a.n.received) != 1 || a.n.received[0] != "hello" {
		t.Fatalf("reverse direction received %v", a.n.received)
	}
	// Clearing the rate restores delivery.
	s.SetLinkLoss(0, 1, 0)
	s.At(s.Now(), func() { a.n.e.Send(1, "ping") })
	s.RunFor(10 * time.Millisecond)
	if len(b.n.received) != 1 {
		t.Fatalf("healed link received %v", b.n.received)
	}
}

// TestPerLinkLossPartial: a fractional per-link rate loses roughly that
// share of traffic on the configured link only.
func TestPerLinkLossPartial(t *testing.T) {
	s, a, b := twoNodes(t, Config{Seed: 24})
	s.SetLinkLoss(0, 1, 0.5)
	const sent = 2000
	s.At(s.Now(), func() {
		for i := 0; i < sent; i++ {
			a.n.e.Send(1, "m")
		}
	})
	s.RunFor(time.Second)
	got := len(b.n.received)
	if got < sent*35/100 || got > sent*65/100 {
		t.Fatalf("with 50%% per-link loss, %d/%d delivered", got, sent)
	}
}

// TestPerLinkLossComposesWithPartition: a loss window and a partition on
// the same pair compose — healing the partition must not clear the loss
// rate, and clearing the rate must not heal the partition.
func TestPerLinkLossComposesWithPartition(t *testing.T) {
	s, a, b := twoNodes(t, Config{Seed: 25})
	s.SetLinkLoss(0, 1, 1.0)
	h := s.Partition(1)
	s.At(s.Now(), func() { a.n.e.Send(1, "x") })
	s.RunFor(10 * time.Millisecond)
	if len(b.n.received) != 0 {
		t.Fatalf("blocked+lossy link delivered %v", b.n.received)
	}
	h.Heal()
	s.At(s.Now(), func() { a.n.e.Send(1, "x") })
	s.RunFor(10 * time.Millisecond)
	if len(b.n.received) != 0 {
		t.Fatalf("loss survived partition heal, but delivered %v", b.n.received)
	}
	s.SetLinkLoss(0, 1, 0)
	s.At(s.Now(), func() { a.n.e.Send(1, "x") })
	s.RunFor(10 * time.Millisecond)
	if len(b.n.received) != 1 {
		t.Fatalf("fully healed link received %v", b.n.received)
	}
}

// TestPerLinkDelay: SetLinkDelay inflates propagation latency on exactly
// the configured directed link — messages still arrive (nothing drops),
// just late; the reverse direction keeps its native latency; clearing
// the factor restores it.
func TestPerLinkDelay(t *testing.T) {
	s, a, b := twoNodes(t, Config{Seed: 29})
	s.SetLinkDelay(0, 1, 100) // base 120 µs ⇒ 12-18 ms with jitter
	s.At(s.Now(), func() { a.n.e.Send(1, "slow") })
	s.RunFor(5 * time.Millisecond)
	if len(b.n.received) != 0 {
		t.Fatalf("delayed link delivered early: %v", b.n.received)
	}
	s.RunFor(25 * time.Millisecond)
	if len(b.n.received) != 1 || b.n.received[0] != "slow" {
		t.Fatalf("delayed link lost the message: %v", b.n.received)
	}
	// Reverse direction keeps native latency.
	s.At(s.Now(), func() { b.n.e.Send(0, "fast") })
	s.RunFor(time.Millisecond)
	if len(a.n.received) != 1 || a.n.received[0] != "fast" {
		t.Fatalf("reverse direction received %v", a.n.received)
	}
	// Clearing the factor restores the link; a factor ≤ 1 is a restore.
	s.SetLinkDelay(0, 1, 1)
	if f := s.LinkDelay(0, 1); f != 1 {
		t.Fatalf("cleared link reports factor %v", f)
	}
	s.At(s.Now(), func() { a.n.e.Send(1, "quick") })
	s.RunFor(time.Millisecond)
	if len(b.n.received) != 2 {
		t.Fatalf("restored link received %v", b.n.received)
	}
}
