package sim

import (
	"time"

	"robuststore/internal/env"
)

// NetConfig models the cluster interconnect of §5.1: all nodes on one
// 1 Gbps Ethernet switch.
type NetConfig struct {
	// BaseLatency is the one-way propagation + switching delay.
	// Default 120 µs (typical LAN RTT ≈ 0.25 ms).
	BaseLatency time.Duration

	// Bandwidth is the per-node NIC bandwidth in bytes/second, charged
	// as serialization delay on the sender. Default 1 Gbps.
	Bandwidth float64

	// SendOverhead is a fixed per-message cost on the sender NIC
	// (marshalling + syscall); a broadcast to k peers serializes k of
	// these. Default 0.
	SendOverhead time.Duration

	// Jitter adds a uniform random delay in [0, Jitter*BaseLatency).
	// Default 0.5.
	Jitter float64

	// DropRate silently drops this fraction of messages. Default 0;
	// the paper's faultload has no message loss, but the Paxos tests
	// exercise it.
	DropRate float64

	// SizeOf returns the modeled wire size of a message in bytes. When
	// nil, messages are costed by the conservative default of
	// defaultMessageSize bytes.
	SizeOf func(msg env.Message) int64
}

const defaultMessageSize = 512

func (nc NetConfig) withDefaults() NetConfig {
	if nc.BaseLatency == 0 {
		nc.BaseLatency = 120 * time.Microsecond
	}
	if nc.Bandwidth == 0 {
		nc.Bandwidth = 125e6 // 1 Gbps in bytes/second
	}
	if nc.Jitter == 0 {
		nc.Jitter = 0.5
	}
	return nc
}

func (nc NetConfig) sizeOf(msg env.Message) int64 {
	if nc.SizeOf != nil {
		if s := nc.SizeOf(msg); s > 0 {
			return s
		}
	}
	if s, ok := msg.(interface{ WireSize() int64 }); ok {
		return s.WireSize()
	}
	return defaultMessageSize
}

func (nc NetConfig) perByte() float64 {
	return float64(time.Second) / nc.Bandwidth
}
