package sim

import (
	"time"

	"robuststore/internal/env"
)

// DiskConfig models each node's local disk (§5.1: one 40 GB 7200 rpm
// disk). Log appends are group-committed: all appends queued while a flush
// is in progress are made durable by the next single flush, which is how
// Treplica amortizes stable-storage latency under write-heavy workloads.
type DiskConfig struct {
	// SyncLatency is the base cost of one synchronous flush
	// (seek + rotational delay). Default 4 ms.
	SyncLatency time.Duration

	// SyncJitter makes flush latency heavy-tailed:
	// duration = SyncLatency × ((1-j/2) + j·Exp(1)) for j = SyncJitter,
	// preserving the mean at SyncLatency × (1+j/2). Larger phase-2
	// quorums then wait on higher order statistics of the flush time,
	// which is what makes write latency grow with the replication
	// degree (paper Figure 4, ordering). Default 0.
	SyncJitter float64

	// WriteBandwidth is the sequential write bandwidth in bytes/second.
	// Default 45 MB/s.
	WriteBandwidth float64

	// ReadBandwidth is the effective sequential read bandwidth for
	// recovery (checkpoint load + log scan), in bytes/second. The paper's
	// recovery times (Figure 6: ≈ 63 s for a 500 MB state) imply an
	// effective rate far below raw disk speed — the cost includes
	// deserialization of the Java heap image — so the default is
	// deliberately low: 8 MB/s.
	ReadBandwidth float64
}

func (dc DiskConfig) withDefaults() DiskConfig {
	if dc.SyncLatency == 0 {
		dc.SyncLatency = 4 * time.Millisecond
	}
	if dc.WriteBandwidth == 0 {
		dc.WriteBandwidth = 45e6
	}
	if dc.ReadBandwidth == 0 {
		dc.ReadBandwidth = 8e6
	}
	return dc
}

// diskStorage implements env.Storage with modeled latency. The durable
// content (records, snapshots) survives Crash/Restart; writes in flight at
// crash time are lost, matching a real volatile write cache being
// discarded on an OS-level kill.
type diskStorage struct {
	sim  *Sim
	node *simNode
	cfg  DiskConfig

	records    []env.Record
	firstIndex int64
	snapshots  map[string]env.Snapshot

	// Disk head scheduling: one operation at a time, group commit for
	// appends.
	busyUntil time.Time
	pending   []pendingAppend
	flushing  bool

	// slow is the live degradation factor of a failing drive (see
	// Sim.SetDiskSlowdown): seek latency multiplies by it, bandwidth
	// divides by it. Zero means unset, i.e. healthy (factor 1). It is a
	// property of the hardware, not of an incarnation, so it survives
	// crashes and restarts.
	slow float64
}

type pendingAppend struct {
	rec  env.Record
	done func(error)
	inc  int64
}

var _ env.Storage = (*diskStorage)(nil)

func newDiskStorage(s *Sim, n *simNode, cfg DiskConfig) *diskStorage {
	return &diskStorage{sim: s, node: n, cfg: cfg, snapshots: make(map[string]env.Snapshot)}
}

// onCrash discards volatile write-cache state. Durable records stay.
func (d *diskStorage) onCrash() {
	d.pending = nil
	d.flushing = false
	// The disk itself keeps spinning; busyUntil is retained so a very
	// fast restart still queues behind the in-progress physical write.
}

// setSlowdown retunes the drive's degradation factor live (clamped ≥ 1).
func (d *diskStorage) setSlowdown(f float64) {
	if f < 1 {
		f = 1
	}
	d.slow = f
}

// slowdown returns the current degradation factor (1 when healthy).
func (d *diskStorage) slowdown() float64 {
	if d.slow == 0 {
		return 1
	}
	return d.slow
}

// seekLatency is one seek + rotational delay under the current slowdown.
func (d *diskStorage) seekLatency() time.Duration {
	return time.Duration(float64(d.cfg.SyncLatency) * d.slowdown())
}

// xferTime is the transfer time of bytes at the given healthy bandwidth,
// stretched by the current slowdown.
func (d *diskStorage) xferTime(bytes int64, bandwidth float64) time.Duration {
	return time.Duration(float64(bytes) / bandwidth * d.slowdown() * float64(time.Second))
}

// reserve allocates disk time of length dur starting no earlier than now
// and returns the completion time.
func (d *diskStorage) reserve(dur time.Duration) time.Time {
	start := d.sim.now
	if d.busyUntil.After(start) {
		start = d.busyUntil
	}
	d.busyUntil = start.Add(dur)
	return d.busyUntil
}

func (d *diskStorage) Append(rec env.Record, done func(error)) {
	d.pending = append(d.pending, pendingAppend{rec: rec, done: done, inc: d.node.incarnation})
	if !d.flushing {
		d.flushing = true
		// Defer the flush by one event so appends issued in the same
		// instant share one group commit.
		d.sim.schedule(d.sim.now, d.flush)
	}
}

// AppendBatch appends a pre-coalesced batch: every record joins the same
// pending group, so the whole batch (plus anything else pending) is made
// durable by one flush — one sync latency plus the summed transfer time —
// and done fires once, after the last record of the batch.
func (d *diskStorage) AppendBatch(recs []env.Record, done func(error)) {
	if len(recs) == 0 {
		if done != nil {
			inc := d.node.incarnation
			d.sim.schedule(d.sim.now, func() {
				if d.node.alive && d.node.incarnation == inc {
					done(nil)
				}
			})
		}
		return
	}
	for i, rec := range recs {
		var cb func(error)
		if i == len(recs)-1 {
			cb = done
		}
		d.pending = append(d.pending, pendingAppend{rec: rec, done: cb, inc: d.node.incarnation})
	}
	if !d.flushing {
		d.flushing = true
		d.sim.schedule(d.sim.now, d.flush)
	}
}

func (d *diskStorage) flush() {
	if len(d.pending) == 0 {
		d.flushing = false
		return
	}
	d.flushing = true
	batch := d.pending
	d.pending = nil
	var bytes int64
	for _, p := range batch {
		bytes += p.rec.Size
	}
	dur := d.syncDuration() + d.xferTime(bytes, d.cfg.WriteBandwidth)
	doneAt := d.reserve(dur)
	d.sim.schedule(doneAt, func() {
		// Durability point: the batch is on disk now.
		for _, p := range batch {
			d.records = append(d.records, p.rec)
			if p.done != nil && d.node.alive && d.node.incarnation == p.inc {
				p.done(nil)
			}
		}
		d.flush()
	})
}

// syncDuration draws one flush latency from the (possibly heavy-tailed)
// sync distribution.
func (d *diskStorage) syncDuration() time.Duration {
	base := d.seekLatency()
	j := d.cfg.SyncJitter
	if j <= 0 {
		return base
	}
	f := (1 - j/2) + j*d.sim.rng.ExpFloat64()
	return time.Duration(float64(base) * f)
}

// chunked performs a large transfer in 1 MiB slices so that concurrent
// small operations (WAL group commits) interleave with it instead of
// stalling behind one monolithic reservation — the behaviour of a real
// disk shared between a checkpoint stream and the log. done runs at
// completion unless the node crashed meanwhile.
func (d *diskStorage) chunked(bytes int64, bandwidth float64, done func()) {
	const chunk = 1 << 20
	inc := d.node.incarnation
	var step func(remaining int64)
	step = func(remaining int64) {
		n := int64(chunk)
		if remaining < n {
			n = remaining
		}
		// Bandwidth is re-derated per chunk, so a slowdown applied (or
		// lifted) mid-transfer shapes the remainder of the stream.
		doneAt := d.reserve(d.xferTime(n, bandwidth))
		d.sim.schedule(doneAt, func() {
			if remaining-n > 0 {
				step(remaining - n)
				return
			}
			if d.node.incarnation == inc {
				done()
			}
		})
	}
	doneAt := d.reserve(d.seekLatency())
	d.sim.schedule(doneAt, func() { step(bytes) })
}

func (d *diskStorage) ReadRecords(done func([]env.Record, error)) {
	var bytes int64
	for _, r := range d.records {
		bytes += r.Size
	}
	recs := make([]env.Record, len(d.records))
	copy(recs, d.records)
	inc := d.node.incarnation
	d.chunked(bytes, d.cfg.ReadBandwidth, func() {
		if d.node.alive && d.node.incarnation == inc {
			done(recs, nil)
		}
	})
}

func (d *diskStorage) Truncate(firstKept int64, done func(error)) {
	if firstKept > d.firstIndex {
		drop := firstKept - d.firstIndex
		if drop > int64(len(d.records)) {
			drop = int64(len(d.records))
		}
		d.records = append([]env.Record(nil), d.records[drop:]...)
		d.firstIndex += drop
	}
	// Truncation is metadata only: charge one sync.
	doneAt := d.reserve(d.seekLatency())
	inc := d.node.incarnation
	d.sim.schedule(doneAt, func() {
		if done != nil && d.node.alive && d.node.incarnation == inc {
			done(nil)
		}
	})
}

func (d *diskStorage) FirstIndex() int64 { return d.firstIndex }

func (d *diskStorage) SaveSnapshot(name string, snap env.Snapshot, done func(error)) {
	inc := d.node.incarnation
	d.chunked(snap.Size, d.cfg.WriteBandwidth, func() {
		// Durability point: replace the snapshot atomically. A crash
		// mid-write leaves the previous snapshot intact.
		d.snapshots[name] = snap
		if done != nil && d.node.alive && d.node.incarnation == inc {
			done(nil)
		}
	})
}

func (d *diskStorage) DeleteSnapshot(name string, done func(error)) {
	// Deletion is metadata only: charge one sync, like Truncate.
	doneAt := d.reserve(d.seekLatency())
	inc := d.node.incarnation
	d.sim.schedule(doneAt, func() {
		delete(d.snapshots, name)
		if done != nil && d.node.alive && d.node.incarnation == inc {
			done(nil)
		}
	})
}

func (d *diskStorage) LoadSnapshot(name string, done func(env.Snapshot, bool)) {
	snap, ok := d.snapshots[name]
	var bytes int64
	if ok {
		bytes = snap.Size
	}
	inc := d.node.incarnation
	d.chunked(bytes, d.cfg.ReadBandwidth, func() {
		if d.node.alive && d.node.incarnation == inc {
			done(snap, ok)
		}
	})
}
