// Package sim is a deterministic discrete-event simulator that substitutes
// for the paper's 18-node cluster (§5.1). It runs the real protocol code
// (internal/paxos, internal/core, internal/webtier) on virtual time with
// calibrated network, disk and CPU resource models, so experiments covering
// 600 s of cluster time execute in seconds and are exactly reproducible
// from a root seed.
//
// Crash semantics follow the paper's faultload: killing a node destroys all
// volatile state (the node object, its timers, its in-flight work) while
// its simulated stable storage survives; restarting constructs a fresh node
// through its factory and runs the real recovery path.
package sim

import (
	"container/heap"
	"fmt"
	"io"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/xrand"
)

// Config parameterizes a simulation.
type Config struct {
	// Seed is the root seed; every random stream derives from it.
	Seed uint64

	// Net models the cluster interconnect (defaults: 1 Gbps switched
	// Ethernet).
	Net NetConfig

	// Disk models each node's local disk (defaults: a 7200 rpm SATA
	// disk, per §5.1).
	Disk DiskConfig

	// DebugLog, when non-nil, receives node Logf output.
	DebugLog io.Writer
}

// Sim is the event loop and cluster container. It is single-threaded: all
// node callbacks run inside Run*, one at a time, in deterministic order.
type Sim struct {
	cfg     Config
	now     time.Time
	queue   eventQueue
	seq     int64
	rng     *xrand.Rand
	nodes   []*simNode
	peers   []env.NodeID
	started bool
	blocked map[linkKey]int     // refcount of active blocks per directed link
	manual  map[linkKey]bool    // SetLink's direct toggles, outside any handle
	loss    map[linkKey]float64 // per-link message loss rates (SetLinkLoss)
	delay   map[linkKey]float64 // per-link latency multipliers (SetLinkDelay)
	parts   []*BlockHandle      // active partitions (extended by AddNode)
}

type linkKey struct{ from, to env.NodeID }

type event struct {
	at  int64 // unix nanos; int64 keeps heap comparisons cheap
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// New returns an empty simulation starting at the Unix epoch of virtual
// time.
func New(cfg Config) *Sim {
	cfg.Net = cfg.Net.withDefaults()
	cfg.Disk = cfg.Disk.withDefaults()
	return &Sim{
		cfg:     cfg,
		now:     time.Unix(0, 0).UTC(),
		rng:     xrand.New(cfg.Seed*0x9e3779b97f4a7c15 + 1),
		blocked: make(map[linkKey]int),
		manual:  make(map[linkKey]bool),
		loss:    make(map[linkKey]float64),
		delay:   make(map[linkKey]float64),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Rand returns the simulation's root random stream (for workload
// generators and fault schedules; nodes get their own split streams).
func (s *Sim) Rand() *xrand.Rand { return s.rng }

// schedule enqueues fn at time at (clamped to now).
func (s *Sim) schedule(at time.Time, fn func()) *event {
	ns := at.UnixNano()
	if nowNS := s.now.UnixNano(); ns < nowNS {
		ns = nowNS
	}
	s.seq++
	e := &event{at: ns, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	return e
}

// At schedules a global callback at virtual time at.
func (s *Sim) At(at time.Time, fn func()) { s.schedule(at, fn) }

// After schedules a global callback after d.
func (s *Sim) After(d time.Duration, fn func()) { s.schedule(s.now.Add(d), fn) }

// RunUntil executes events until virtual time reaches t. Events scheduled
// exactly at t are executed.
func (s *Sim) RunUntil(t time.Time) {
	limit := t.UnixNano()
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.at > limit {
			break
		}
		heap.Pop(&s.queue)
		if e.fn == nil {
			continue
		}
		s.now = time.Unix(0, e.at).UTC()
		// Clear fn before invoking: a fired event must look spent, so a
		// later Timer.Stop cannot claim it prevented this callback.
		fn := e.fn
		e.fn = nil
		fn()
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// RunFor advances virtual time by d.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// RunUntilIdle executes events until the queue drains or maxEvents have
// run, and reports whether the queue drained. It is meant for protocol
// unit tests; periodic timers (heartbeats) never drain, so tests bound the
// event count.
func (s *Sim) RunUntilIdle(maxEvents int) bool {
	for i := 0; i < maxEvents; i++ {
		if len(s.queue) == 0 {
			return true
		}
		e := heap.Pop(&s.queue).(*event)
		if e.fn == nil {
			continue
		}
		s.now = time.Unix(0, e.at).UTC()
		fn := e.fn
		e.fn = nil // see RunUntil: a fired event must look spent to Stop
		fn()
	}
	return len(s.queue) == 0
}

// simNode holds the runtime state of one cluster member across
// incarnations.
type simNode struct {
	sim         *Sim
	id          env.NodeID
	factory     func() env.Node
	node        env.Node // nil while crashed
	alive       bool
	incarnation int64
	rng         *xrand.Rand
	storage     *diskStorage
	nicBusy     time.Time // outbound NIC serialization horizon
}

// AddNode registers a cluster member built by factory. The returned ID
// is dense, starting at 0. Nodes added before StartAll are booted by it;
// a node added later (live scale-out, e.g. shard.Store.Rebalance) starts
// down and is booted by Restart, exactly as on the live runtime.
func (s *Sim) AddNode(factory func() env.Node) env.NodeID {
	id := env.NodeID(len(s.nodes))
	n := &simNode{
		sim:     s,
		id:      id,
		factory: factory,
		rng:     s.rng.Split(),
	}
	n.storage = newDiskStorage(s, n, s.cfg.Disk)
	s.nodes = append(s.nodes, n)
	s.peers = append(s.peers, id)
	// Active partitions extend to the newcomer: it joins on the majority
	// side, so it must not straddle an isolated set (a node booted by a
	// live rebalance during a partition would otherwise leak traffic
	// across it).
	for _, h := range s.parts {
		if h.side[id] {
			continue
		}
		for a := range h.side {
			h.blockPair(a, id)
		}
	}
	return id
}

// StartAll boots every node.
func (s *Sim) StartAll() {
	s.started = true
	for _, n := range s.nodes {
		if !n.alive {
			s.startNode(n)
		}
	}
}

func (s *Sim) startNode(n *simNode) {
	n.incarnation++
	n.alive = true
	n.node = n.factory()
	inc := n.incarnation
	// Start runs as an event so that ordering with other events is
	// deterministic.
	s.schedule(s.now, func() {
		if n.incarnation == inc && n.alive {
			n.node.Start(&nodeEnv{n: n, inc: inc})
		}
	})
}

// Crash kills node id: its volatile state is destroyed, pending timers and
// in-flight callbacks die, stable storage survives. Crashing a dead node
// is a no-op.
func (s *Sim) Crash(id env.NodeID) {
	n := s.nodes[id]
	if !n.alive {
		return
	}
	n.alive = false
	n.node = nil
	n.incarnation++ // orphan all pending callbacks
	n.storage.onCrash()
}

// Restart boots a fresh incarnation of node id from its factory. The new
// node recovers from the surviving stable storage. Restarting a live node
// is a no-op.
func (s *Sim) Restart(id env.NodeID) {
	n := s.nodes[id]
	if n.alive {
		return
	}
	s.startNode(n)
}

// Alive reports whether node id is currently running.
func (s *Sim) Alive(id env.NodeID) bool { return s.nodes[id].alive }

// Storage returns node id's stable storage (survives crashes). Intended
// for tests and experiment setup (pre-populating state).
func (s *Sim) Storage(id env.NodeID) env.Storage { return s.nodes[id].storage }

// SetDiskSlowdown degrades (or restores) node id's disk live: seek time is
// multiplied by factor and both bandwidths divided by it, modeling a
// failing drive in constant retry — the straggler that drags the WAL
// group-commit quorum and checkpoint writes. factor 1 restores the
// configured disk; factors < 1 are clamped to 1. The degradation belongs
// to the hardware, so it survives Crash/Restart of the node, and transfers
// already queued feel it from their next chunk.
func (s *Sim) SetDiskSlowdown(id env.NodeID, factor float64) {
	s.nodes[id].storage.setSlowdown(factor)
}

// DiskSlowdown returns node id's current disk degradation factor (1 when
// healthy).
func (s *Sim) DiskSlowdown(id env.NodeID) float64 {
	return s.nodes[id].storage.slowdown()
}

// SetLink blocks or unblocks the directed network link from → to. It is a
// direct toggle independent of the handle-based partitions: unblocking a
// link here does not disturb a partition that also covers it.
func (s *Sim) SetLink(from, to env.NodeID, blocked bool) {
	if blocked {
		s.manual[linkKey{from, to}] = true
	} else {
		delete(s.manual, linkKey{from, to})
	}
}

// SetLinkLoss sets a per-link message loss rate on the directed link
// from → to (0 clears it), modeling a flaky path rather than a severed
// one — NetConfig.DropRate stays the cluster-wide floor. The rate sits
// alongside the link-block layer: a loss window composes with partitions
// and SetLink toggles covering the same pair, and healing a partition
// never clears a loss rate. Rates above 1 saturate to certain loss.
func (s *Sim) SetLinkLoss(from, to env.NodeID, rate float64) {
	if rate <= 0 {
		delete(s.loss, linkKey{from, to})
	} else {
		s.loss[linkKey{from, to}] = rate
	}
}

// LinkLoss returns the loss rate of the directed link from → to (0 when
// healthy).
func (s *Sim) LinkLoss(from, to env.NodeID) float64 {
	return s.loss[linkKey{from, to}]
}

// SetLinkDelay inflates the propagation latency of the directed link
// from → to by factor (≤ 1 or 0 restores it), modeling a congested or
// rerouted path that still delivers every message — the latency cousin of
// SetLinkLoss. Only the switch latency (and its jitter) is scaled; NIC
// serialization is the sender's hardware and stays untouched. Like loss
// rates, delay factors sit outside the link-block layer and compose with
// partitions covering the same pair.
func (s *Sim) SetLinkDelay(from, to env.NodeID, factor float64) {
	if factor <= 1 {
		delete(s.delay, linkKey{from, to})
	} else {
		s.delay[linkKey{from, to}] = factor
	}
}

// LinkDelay returns the latency-inflation factor of the directed link
// from → to (1 when healthy).
func (s *Sim) LinkDelay(from, to env.NodeID) float64 {
	if f, ok := s.delay[linkKey{from, to}]; ok {
		return f
	}
	return 1
}

// Peers returns the registered node IDs in registration order (a copy),
// for harnesses that fan a per-link operation — SetLinkLoss, SetLink —
// across a victim's links the way PartitionDir does internally.
func (s *Sim) Peers() []env.NodeID {
	out := make([]env.NodeID, len(s.peers))
	copy(out, s.peers)
	return out
}

// linkBlocked reports whether the directed link from → to drops traffic.
func (s *Sim) linkBlocked(from, to env.NodeID) bool {
	k := linkKey{from, to}
	return s.blocked[k] > 0 || s.manual[k]
}

// block/unblock maintain the refcounted directed-block map handles use.
func (s *Sim) block(k linkKey) { s.blocked[k]++ }
func (s *Sim) unblock(k linkKey) {
	if s.blocked[k] <= 1 {
		delete(s.blocked, k)
	} else {
		s.blocked[k]--
	}
}

// BlockHandle is one composable set of directed link blocks (one
// partition). Healing it removes exactly the blocks it installed — two
// overlapping partitions compose, and healing one leaves the other intact.
type BlockHandle struct {
	s      *Sim
	links  []linkKey
	side   map[env.NodeID]bool // isolated set; nil once healed
	dir    env.LinkDir
	healed bool
}

var _ env.PartitionHandle = (*BlockHandle)(nil)

// Heal removes this handle's blocks. Idempotent.
func (h *BlockHandle) Heal() {
	if h.healed {
		return
	}
	h.healed = true
	for _, k := range h.links {
		h.s.unblock(k)
	}
	h.links = nil
	for i, p := range h.s.parts {
		if p == h {
			h.s.parts = append(h.s.parts[:i], h.s.parts[i+1:]...)
			break
		}
	}
}

// blockPair installs the handle's directed blocks between isolated node a
// and outside node b, honoring the handle's direction.
func (h *BlockHandle) blockPair(a, b env.NodeID) {
	if h.dir == env.LinkBothWays || h.dir == env.LinkOutboundOnly {
		k := linkKey{a, b}
		h.s.block(k)
		h.links = append(h.links, k)
	}
	if h.dir == env.LinkBothWays || h.dir == env.LinkInboundOnly {
		k := linkKey{b, a}
		h.s.block(k)
		h.links = append(h.links, k)
	}
}

// Partition isolates the given nodes from the rest of the cluster in both
// directions and returns the handle that heals exactly this partition.
// The partition set is persistent: a node added later (live scale-out)
// joins on the majority side with its links to the isolated set blocked,
// rather than straddling the partition.
func (s *Sim) Partition(isolated ...env.NodeID) *BlockHandle {
	return s.PartitionDir(env.LinkBothWays, isolated...)
}

// PartitionDir is Partition with an explicit direction: LinkOutboundOnly
// and LinkInboundOnly model asymmetric one-way loss relative to the
// isolated set.
func (s *Sim) PartitionDir(dir env.LinkDir, isolated ...env.NodeID) *BlockHandle {
	h := &BlockHandle{s: s, dir: dir, side: make(map[env.NodeID]bool, len(isolated))}
	for _, id := range isolated {
		h.side[id] = true
	}
	for _, b := range s.peers {
		if h.side[b] {
			continue
		}
		for a := range h.side {
			h.blockPair(a, b)
		}
	}
	s.parts = append(s.parts, h)
	return h
}

// Heal removes all link blocks: every active partition handle is healed
// and every SetLink toggle cleared.
func (s *Sim) Heal() {
	for len(s.parts) > 0 {
		s.parts[len(s.parts)-1].Heal()
	}
	s.blocked = make(map[linkKey]int)
	s.manual = make(map[linkKey]bool)
}

// nodeEnv is the env.Env for a single incarnation of a node. Callbacks are
// delivered only while the incarnation is current.
type nodeEnv struct {
	n   *simNode
	inc int64
}

var _ env.Env = (*nodeEnv)(nil)

func (e *nodeEnv) live() bool { return e.n.alive && e.n.incarnation == e.inc }

func (e *nodeEnv) ID() env.NodeID      { return e.n.id }
func (e *nodeEnv) Peers() []env.NodeID { return e.n.sim.peers }
func (e *nodeEnv) Now() time.Time      { return e.n.sim.now }

func (e *nodeEnv) Post(fn func()) {
	e.n.sim.schedule(e.n.sim.now, func() {
		if e.live() {
			fn()
		}
	})
}

type simTimer struct {
	ev      *event
	stopped bool
}

func (t *simTimer) Stop() bool {
	if t.stopped || t.ev.fn == nil {
		return false
	}
	t.stopped = true
	t.ev.fn = nil // the queue skips nil fns
	return true
}

func (e *nodeEnv) After(d time.Duration, fn func()) env.Timer {
	ev := e.n.sim.schedule(e.n.sim.now.Add(d), nil)
	ev.fn = func() {
		if e.live() {
			fn()
		}
	}
	return &simTimer{ev: ev}
}

func (e *nodeEnv) Send(to env.NodeID, msg env.Message) {
	e.n.sim.send(e.n, to, msg)
}

func (e *nodeEnv) Storage() env.Storage { return e.n.storage }

func (e *nodeEnv) Rand() env.Rand { return e.n.rng }

func (e *nodeEnv) Logf(format string, args ...any) {
	w := e.n.sim.cfg.DebugLog
	if w == nil {
		return
	}
	fmt.Fprintf(w, "%8.3fs n%d: %s\n",
		e.n.sim.now.Sub(time.Unix(0, 0).UTC()).Seconds(),
		e.n.id, fmt.Sprintf(format, args...))
}

// send models the network: sender NIC serialization, switch latency with
// jitter, drops and partitions; see NetConfig.
func (s *Sim) send(from *simNode, to env.NodeID, msg env.Message) {
	if int(to) < 0 || int(to) >= len(s.nodes) {
		return
	}
	if s.linkBlocked(from.id, to) {
		return
	}
	nc := s.cfg.Net
	if nc.DropRate > 0 && s.rng.Float64() < nc.DropRate {
		return
	}
	// Per-link loss draws only when a rate is set, so runs without loss
	// windows consume the same random stream as before.
	if r := s.loss[linkKey{from.id, to}]; r > 0 && s.rng.Float64() < r {
		return
	}
	size := nc.sizeOf(msg)
	var depart time.Time
	if from.id == to {
		// Loopback skips the NIC.
		depart = s.now
	} else {
		depart = s.now
		if from.nicBusy.After(depart) {
			depart = from.nicBusy
		}
		depart = depart.Add(nc.SendOverhead + time.Duration(float64(size)*nc.perByte()))
		from.nicBusy = depart
	}
	lat := nc.BaseLatency
	if nc.Jitter > 0 {
		lat += time.Duration(s.rng.Float64() * nc.Jitter * float64(nc.BaseLatency))
	}
	// Per-link delay scales only when a factor is set, so runs without
	// delay windows consume the same random stream as before.
	if f, ok := s.delay[linkKey{from.id, to}]; ok {
		lat = time.Duration(float64(lat) * f)
	}
	arrive := depart.Add(lat)
	tgt := s.nodes[to]
	s.schedule(arrive, func() {
		if tgt.alive && tgt.node != nil {
			tgt.node.Receive(from.id, msg)
		}
	})
}
