// Paxos/Treplica safety property test: across seeded random crash/recover
// schedules, the full stack (internal/paxos consensus + internal/core
// checkpointing and recovery) must preserve agreement — no two replicas
// ever apply different actions at the same position of the replicated log
// — and WAL/checkpoint replay must be idempotent: recovering a replica,
// once or repeatedly, never duplicates or reorders applied actions.
//
// The test lives with the simulator because it is a whole-stack property:
// the crash semantics under test (volatile state destroyed, stable
// storage surviving, recovery replaying the WAL against a restored
// checkpoint) are exactly what sim.Crash/Restart model.
package sim_test

import (
	"fmt"
	"testing"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/sim"
	"robuststore/internal/xrand"
)

// recMachine records the totally ordered action IDs it executes; its
// snapshot is the whole log, so checkpoint+replay mistakes (double
// replay, lost suffix) surface as log anomalies.
type recMachine struct {
	log []int64
}

func (m *recMachine) Execute(action any) any {
	m.log = append(m.log, action.(int64))
	return int64(len(m.log))
}

func (m *recMachine) Snapshot() (any, int64) {
	cp := append([]int64(nil), m.log...)
	return cp, int64(8*len(cp)) + 8
}

func (m *recMachine) Restore(data any) {
	m.log = append([]int64(nil), data.([]int64)...)
}

// safetyCluster is n core.Replica nodes over one simulator.
type safetyCluster struct {
	s        *sim.Sim
	n        int
	ids      []env.NodeID
	replicas []*core.Replica // current incarnation per node
	machines []*recMachine   // current incarnation's state machine
}

// newSafetyCluster builds n core.Replica nodes; tune, if non-nil,
// adjusts each node's core.Config (the pipelined variant deepens the
// proposer window).
func newSafetyCluster(t *testing.T, n int, seed uint64, tune func(*core.Config)) *safetyCluster {
	t.Helper()
	c := &safetyCluster{
		s:        sim.New(sim.Config{Seed: seed}),
		n:        n,
		replicas: make([]*core.Replica, n),
		machines: make([]*recMachine, n),
	}
	for i := 0; i < n; i++ {
		idx := i
		id := c.s.AddNode(func() env.Node {
			cfg := core.Config{
				Machine: func() core.StateMachine {
					m := &recMachine{}
					c.machines[idx] = m
					return m
				},
				// Frequent checkpoints and a small retention window
				// force recoveries through the checkpoint-restore +
				// suffix-replay path rather than pure log replay.
				CheckpointInterval: 2 * time.Second,
				RetainInstances:    64,
			}
			if tune != nil {
				tune(&cfg)
			}
			r := core.NewReplica(cfg)
			c.replicas[idx] = r
			return r
		})
		c.ids = append(c.ids, id)
	}
	return c
}

// submit proposes action id at virtual time at on the lowest-indexed
// replica alive then; lost submissions (target crashed or not ready) are
// acceptable — the property under test is agreement, not liveness.
func (c *safetyCluster) submit(at time.Duration, id int64) {
	c.s.At(c.s.Now().Add(at), func() {
		for i := 0; i < c.n; i++ {
			if c.s.Alive(c.ids[i]) && c.replicas[i] != nil && c.replicas[i].Ready() {
				c.replicas[i].Submit(id, nil)
				return
			}
		}
	})
}

// checkAgreement asserts the pairwise prefix property and per-log
// uniqueness over every node's applied log.
func (c *safetyCluster) checkAgreement(t *testing.T, context string) {
	t.Helper()
	logs := make([][]int64, c.n)
	for i, m := range c.machines {
		if m != nil {
			logs[i] = m.log
		}
		seen := make(map[int64]bool, len(logs[i]))
		for _, id := range logs[i] {
			if seen[id] {
				t.Fatalf("%s: node %d applied action %d twice (replay not idempotent)", context, i, id)
			}
			seen[id] = true
		}
	}
	for a := 0; a < c.n; a++ {
		for b := a + 1; b < c.n; b++ {
			short, long := logs[a], logs[b]
			if len(short) > len(long) {
				short, long = long, short
			}
			for k := range short {
				if short[k] != long[k] {
					t.Fatalf("%s: nodes %d/%d disagree at log position %d: %d vs %d",
						context, a, b, k, logs[a][k], logs[b][k])
				}
			}
		}
	}
}

// TestPaxosSafetyUnderCrashSchedules runs seeded random crash/recover
// schedules and asserts agreement throughout and convergence at the end.
func TestPaxosSafetyUnderCrashSchedules(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashSchedule(t, uint64(seed), nil)
		})
	}
}

// TestPaxosSafetyPipelined re-runs the crash schedules with the deep
// consensus pipeline of the group-commit configuration — MaxInFlight 32 ×
// MaxBatchCmds 64 streaming into consecutive instances — plus per-link
// loss windows on top of the crashes and partitions. Agreement and
// convergence must be insensitive to pipeline depth and flaky links.
func TestPaxosSafetyPipelined(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	tune := func(cfg *core.Config) {
		cfg.Paxos.MaxBatchCmds = 64
		cfg.Paxos.MaxInFlight = 32
		cfg.Paxos.BatchDelay = time.Millisecond
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashSchedule(t, uint64(seed)+100, tune)
		})
	}
}

func runCrashSchedule(t *testing.T, seed uint64, tune func(*core.Config)) {
	t.Helper()
	rng := xrand.New(seed*0x9e3779b97f4a7c15 + 7)
	n := 3 + rng.Intn(2)*2 // 3 or 5 replicas
	c := newSafetyCluster(t, n, seed+1000, tune)
	c.s.StartAll()

	// Workload: one action every 25 ms over the 40 s active phase.
	var next int64
	for at := time.Second; at < 40*time.Second; at += 25 * time.Millisecond {
		next++
		c.submit(at, next)
	}

	// Fault schedule: random crashes (possibly overlapping, possibly
	// losing quorum) with restarts a few seconds later.
	faults := 1 + rng.Intn(4)
	for f := 0; f < faults; f++ {
		victim := c.ids[rng.Intn(n)]
		crashAt := 2*time.Second + time.Duration(rng.Intn(30000))*time.Millisecond
		upAt := crashAt + time.Second + time.Duration(rng.Intn(6000))*time.Millisecond
		c.s.At(c.s.Now().Add(crashAt), func() { c.s.Crash(victim) })
		c.s.At(c.s.Now().Add(upAt), func() { c.s.Restart(victim) })
	}

	// Partition schedule, interleaved with the crashes: random
	// quorum-preserving minorities isolated for a few seconds, possibly
	// overlapping each other (handles compose) and the crash windows.
	// Agreement must hold across every split; liveness must resume after
	// the heals.
	parts := 1 + rng.Intn(3)
	for p := 0; p < parts; p++ {
		m := 1 + rng.Intn((n+1)/2) // 1..(n-1)/2 victims, quorum survives
		if max := (n - 1) / 2; m > max {
			m = max
		}
		perm := rng.Perm(n)
		victims := make([]env.NodeID, m)
		for i := 0; i < m; i++ {
			victims[i] = c.ids[perm[i]]
		}
		at := 2*time.Second + time.Duration(rng.Intn(30000))*time.Millisecond
		healAt := at + time.Second + time.Duration(rng.Intn(8000))*time.Millisecond
		var h *sim.BlockHandle
		c.s.At(c.s.Now().Add(at), func() { h = c.s.Partition(victims...) })
		c.s.At(c.s.Now().Add(healAt), func() {
			if h != nil {
				h.Heal()
			}
		})
	}

	// The pipelined variant adds per-link loss windows: flaky directed
	// links (not severed ones) composing with the crash and partition
	// schedules above.
	if tune != nil {
		for l := 0; l < 2+rng.Intn(3); l++ {
			from := c.ids[rng.Intn(n)]
			to := c.ids[rng.Intn(n)]
			rate := 0.2 + 0.6*rng.Float64()
			at := 2*time.Second + time.Duration(rng.Intn(30000))*time.Millisecond
			clearAt := at + time.Second + time.Duration(rng.Intn(8000))*time.Millisecond
			c.s.At(c.s.Now().Add(at), func() { c.s.SetLinkLoss(from, to, rate) })
			c.s.At(c.s.Now().Add(clearAt), func() { c.s.SetLinkLoss(from, to, 0) })
		}
	}

	c.s.RunFor(40 * time.Second)
	c.checkAgreement(t, "active phase")

	// Heal: remove any leftover link blocks, restart everything, let
	// catch-up finish, then require full convergence, not just prefix
	// agreement.
	c.s.Heal()
	for _, id := range c.ids {
		c.s.Restart(id)
	}
	c.s.RunFor(20 * time.Second)
	c.checkAgreement(t, "healed")
	ref := c.machines[0].log
	if len(ref) == 0 {
		t.Fatalf("no progress at all (n=%d faults=%d)", n, faults)
	}
	for i := 1; i < n; i++ {
		if len(c.machines[i].log) != len(ref) {
			t.Fatalf("node %d converged to %d actions, node 0 to %d",
				i, len(c.machines[i].log), len(ref))
		}
	}
}

// TestWALReplayIdempotence recovers one replica repeatedly with no new
// traffic in between: every recovery must reproduce exactly the log the
// replica had before crashing — replay through checkpoint + WAL suffix
// is idempotent.
func TestWALReplayIdempotence(t *testing.T) {
	c := newSafetyCluster(t, 3, 42, nil)
	c.s.StartAll()
	var next int64
	for at := time.Second; at < 10*time.Second; at += 20 * time.Millisecond {
		next++
		c.submit(at, next)
	}
	c.s.RunFor(12 * time.Second)
	c.checkAgreement(t, "pre-crash")
	want := append([]int64(nil), c.machines[0].log...)
	if len(want) == 0 {
		t.Fatal("no actions applied before the crash")
	}

	for round := 1; round <= 3; round++ {
		c.s.Crash(c.ids[0])
		c.s.RunFor(time.Second)
		c.s.Restart(c.ids[0])
		c.s.RunFor(5 * time.Second)
		got := c.machines[0].log
		if len(got) != len(want) {
			t.Fatalf("recovery %d: log has %d actions, want %d", round, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("recovery %d: log diverged at %d: %d vs %d", round, k, got[k], want[k])
			}
		}
		c.checkAgreement(t, fmt.Sprintf("recovery %d", round))
	}
}
