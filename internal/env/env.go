// Package env defines the execution environment abstraction shared by every
// protocol component in this repository.
//
// Protocol code (Paxos, Treplica, the web tier) is written in an
// event-driven style against the Env interface and is therefore runtime
// agnostic: the same code runs on the deterministic virtual-time simulator
// (internal/sim) used by the paper-reproduction experiments and on the real
// goroutine runtime (internal/livenet) used by the examples and commands.
//
// Concurrency contract: every callback into a node — Start, Receive, timer
// callbacks, storage completions — is executed serially on that node's
// executor. Node implementations therefore never need locks for their own
// state.
package env

import "time"

// NodeID identifies a process in the cluster. IDs are small dense integers
// assigned by the runtime.
type NodeID int32

// Message is anything sent between nodes. Messages must be treated as
// immutable once sent; the live runtime may additionally encode them.
type Message any

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the timer. Stopping an already-fired or stopped timer
	// is a no-op. Stop reports whether the callback was prevented from
	// running.
	Stop() bool
}

// Env is the interface between a node and its runtime.
type Env interface {
	// ID returns this node's identity.
	ID() NodeID

	// Peers returns the IDs of all cluster members, including this node,
	// in ascending order. The slice must not be mutated.
	Peers() []NodeID

	// Now returns the current time (virtual in the simulator).
	Now() time.Time

	// After schedules fn to run on this node's executor after d. The
	// timer dies silently if the node crashes.
	After(d time.Duration, fn func()) Timer

	// Post schedules fn to run on this node's executor as soon as
	// possible, after currently queued work.
	Post(fn func())

	// Send transmits msg to the peer. Delivery is asynchronous and may
	// fail silently (crashed peer, partition); protocols must tolerate
	// loss. Sending to the local node is allowed and is delivered
	// through the normal path.
	Send(to NodeID, msg Message)

	// Storage returns this node's stable storage, which survives
	// crashes.
	Storage() Storage

	// Rand returns this node's deterministic random stream.
	Rand() Rand

	// Logf records a debug message attributed to this node.
	Logf(format string, args ...any)
}

// LinkDir selects which directions of traffic a partition blocks, relative
// to the isolated node set. Asymmetric partitions model one-way loss (a
// half-open switch port, an asymmetric routing failure): the victims can
// still hear the cluster but not answer it, or the reverse.
type LinkDir int

const (
	// LinkBothWays blocks traffic in both directions — the classic
	// symmetric network partition.
	LinkBothWays LinkDir = iota

	// LinkOutboundOnly blocks only messages FROM the isolated set to the
	// rest: victims receive requests but their replies are lost.
	LinkOutboundOnly

	// LinkInboundOnly blocks only messages TO the isolated set from the
	// rest: victims can speak but hear nothing.
	LinkInboundOnly
)

// String implements fmt.Stringer.
func (d LinkDir) String() string {
	switch d {
	case LinkBothWays:
		return "both"
	case LinkOutboundOnly:
		return "outbound"
	case LinkInboundOnly:
		return "inbound"
	default:
		return "unknown"
	}
}

// PartitionHandle names one composable set of link blocks installed by a
// runtime's Partition call. Healing a handle removes exactly the blocks it
// installed: overlapping partitions compose, and healing one never
// disturbs another. Heal is idempotent.
type PartitionHandle interface {
	Heal()
}

// Rand is the subset of xrand.Rand the protocols need. It is an interface
// so runtimes can inject instrumented streams.
type Rand interface {
	Intn(n int) int
	Int63n(n int64) int64
	Float64() float64
	ExpFloat64() float64
}

// Node is the unit of deployment. The runtime constructs a fresh Node
// value on every (re)start — a crash destroys all volatile state — while
// the Storage handed to Start persists across restarts.
type Node interface {
	// Start is invoked once per incarnation, before any Receive. The
	// node performs recovery from env.Storage() here.
	Start(e Env)

	// Receive delivers a message sent by peer from.
	Receive(from NodeID, msg Message)
}

// Storage is crash-durable storage: an append-only record log plus a
// snapshot store. Writes are asynchronous — done callbacks run on the
// node's executor after the data is durable — because stable-storage
// latency is a first-order cost in the paper's analysis (§5.2) and the
// simulator models it explicitly.
type Storage interface {
	// Append durably appends a record to the log and then calls done on
	// the node's executor. Appends complete in order. A nil done is
	// allowed.
	Append(rec Record, done func(error))

	// AppendBatch durably appends several records as one group commit:
	// the whole batch shares a single flush (the simulator charges one
	// sync latency plus the summed transfer time; the live runtime
	// performs one write), and done runs once, after every record in the
	// batch is durable. Record order within the batch is preserved, and
	// batches complete in order relative to other Append/AppendBatch
	// calls. The WAL sync coalescing of internal/paxos (SyncBatch mode)
	// is built on this call. A nil done is allowed.
	AppendBatch(recs []Record, done func(error))

	// ReadRecords asynchronously reads the whole retained log, oldest
	// first, and calls done on the node's executor. It is used during
	// Start (recovery); the simulator charges modeled disk-read time
	// before completion.
	ReadRecords(done func([]Record, error))

	// Truncate durably discards log records with index < firstKept
	// (indices are assigned from 0 in append order across the life of
	// the storage, surviving restarts).
	Truncate(firstKept int64, done func(error))

	// FirstIndex returns the index of the oldest retained record, i.e.
	// the count of records ever truncated.
	FirstIndex() int64

	// SaveSnapshot durably replaces the named snapshot.
	SaveSnapshot(name string, snap Snapshot, done func(error))

	// DeleteSnapshot durably removes the named snapshot; deleting an
	// absent name is a no-op. Incremental checkpointing stores its
	// layers as individually named snapshots (a base plus a chain of
	// deltas, see internal/core) and garbage-collects superseded layers
	// after a compaction commits.
	DeleteSnapshot(name string, done func(error))

	// LoadSnapshot asynchronously reads the named snapshot and calls
	// done on the node's executor with ok=false if none was saved.
	// Loading the checkpoint from disk is the dominant recovery cost in
	// the paper (§5.4, Figure 6); the simulator charges disk-read time
	// proportional to the snapshot size before completion.
	LoadSnapshot(name string, done func(snap Snapshot, ok bool))
}

// Record is a single durable log entry. Size is the modeled on-disk size
// in bytes; the simulator charges disk time proportional to it while the
// live file storage uses the encoded size instead.
type Record struct {
	Kind string
	Data any
	Size int64
}

// Snapshot is a durable point-in-time state image. Data is opaque to the
// storage layer. Size is the modeled on-disk size (paper state sizes:
// 300/500/700 MB) used for disk-latency accounting.
type Snapshot struct {
	Data any
	Size int64
}
