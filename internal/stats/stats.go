// Package stats implements the descriptive statistics and regression
// analysis the paper uses in its evaluation: mean, standard deviation,
// coefficient of variation (CV), least-squares linear regression and the r²
// correlation coefficient (paper §5.3).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 for fewer
// than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CV returns the coefficient of variation: the ratio of the standard
// deviation to the mean (paper §5.4). It returns 0 when the mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank interpolation. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Regression is the result of a least-squares linear fit y = Slope*x +
// Intercept, with R2 the square of Pearson's correlation coefficient. The
// paper fits scaleup curves with straight lines and reports r² for the
// WIPS/WIRT correlation (§5.3).
type Regression struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes the least-squares regression of ys on xs. The two
// slices must have equal length; fewer than two points yield a zero fit.
func LinearFit(xs, ys []float64) Regression {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return Regression{}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return Regression{Intercept: my}
	}
	slope := sxy / sxx
	reg := Regression{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		r := sxy / math.Sqrt(sxx*syy)
		reg.R2 = r * r
	} else {
		reg.R2 = 1 // all ys equal: the fit is exact
	}
	return reg
}

// Correlation returns Pearson's correlation coefficient between xs and ys,
// or 0 when undefined.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
