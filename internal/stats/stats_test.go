package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, tc := range cases {
		if got := Mean(tc.xs); !almost(got, tc.want) {
			t.Errorf("Mean(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
}

func TestStdDevAndCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almost(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := CV(xs); !almost(got, 2.0/5.0) {
		t.Errorf("CV = %v, want 0.4", got)
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("StdDev single = %v, want 0", got)
	}
	if got := CV([]float64{0, 0}); got != 0 {
		t.Errorf("CV of zeros = %v, want 0", got)
	}
}

func TestMinMaxPercentile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 3x - 2, exactly.
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	fit := LinearFit(xs, ys)
	if !almost(fit.Slope, 3) || !almost(fit.Intercept, -2) || !almost(fit.R2, 1) {
		t.Errorf("fit = %+v, want slope 3 intercept -2 r² 1", fit)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if fit := LinearFit([]float64{1}, []float64{2}); fit.Slope != 0 {
		t.Errorf("single point fit = %+v", fit)
	}
	// Vertical data (all same x) must not blow up.
	fit := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if fit.Slope != 0 || !almost(fit.Intercept, 2) {
		t.Errorf("vertical fit = %+v", fit)
	}
	// Flat ys: perfect fit with slope 0.
	fit = LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if !almost(fit.Slope, 0) || !almost(fit.R2, 1) {
		t.Errorf("flat fit = %+v", fit)
	}
}

func TestCorrelationSigns(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	up := []float64{2, 4, 6, 8}
	down := []float64{8, 6, 4, 2}
	if got := Correlation(xs, up); !almost(got, 1) {
		t.Errorf("perfect positive correlation = %v", got)
	}
	if got := Correlation(xs, down); !almost(got, -1) {
		t.Errorf("perfect negative correlation = %v", got)
	}
	if got := Correlation(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("flat correlation = %v", got)
	}
}

// TestFitResidualProperty: the least-squares fit must have zero mean
// residual for any finite data.
func TestFitResidualProperty(t *testing.T) {
	err := quick.Check(func(seedXs, seedYs []int8) bool {
		n := len(seedXs)
		if len(seedYs) < n {
			n = len(seedYs)
		}
		if n < 2 {
			return true
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		allSameX := true
		for i := 0; i < n; i++ {
			xs[i] = float64(seedXs[i])
			ys[i] = float64(seedYs[i])
			if xs[i] != xs[0] {
				allSameX = false
			}
		}
		if allSameX {
			return true
		}
		fit := LinearFit(xs, ys)
		var residual float64
		for i := range xs {
			residual += ys[i] - (fit.Slope*xs[i] + fit.Intercept)
		}
		return math.Abs(residual/float64(n)) < 1e-6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestCVScaleInvariant: CV is invariant under positive scaling.
func TestCVScaleInvariant(t *testing.T) {
	err := quick.Check(func(raw []uint8, scale uint8) bool {
		if len(raw) < 2 || scale == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		sum := 0
		for i, v := range raw {
			xs[i] = float64(v) + 1 // keep mean positive
			scaled[i] = xs[i] * float64(scale)
			sum += int(v)
		}
		return math.Abs(CV(xs)-CV(scaled)) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
