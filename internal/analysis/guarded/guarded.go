// Package guarded checks mutex-protection annotations on struct fields.
// A field whose declaration carries a
//
//	// guarded by <mu>
//
// comment (on the field's line or in its doc comment) must only be read
// or written in functions that lock that mutex first. The check is
// syntactic and best-effort — it asks whether the enclosing function
// contains a <x>.<mu>.Lock() or <mu>.Lock() (or RLock) call textually
// before the access — but that bar already catches the common regression:
// a new helper reaching into a hot struct (the engine/Replica state, the
// migration driver) without taking the lock the rest of the file holds.
//
// Exemptions, mirroring the codebase's conventions:
//
//   - functions whose name ends in "Locked" are called with the lock
//     already held by contract;
//   - composite literals (construction before the value is shared);
//   - accesses annotated //guarded:held on (or immediately above) their
//     line, for call sites that inherit the lock non-syntactically.
package guarded

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"robuststore/internal/analysis"
)

// Analyzer is the guarded pass.
var Analyzer = &analysis.Analyzer{
	Name: "guarded",
	Doc:  "check that fields annotated `// guarded by <mu>` are accessed under their mutex",
	Run:  run,
}

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// fieldKey identifies one annotated field by its struct type and name.
type fieldKey struct {
	typ  *types.TypeName
	name string
}

func run(pass *analysis.Pass) error {
	guards := collectAnnotations(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				return false
			}
			checkFunc(pass, file, fd, guards)
			return false
		})
	}
	return nil
}

// collectAnnotations scans struct declarations for `guarded by <mu>`
// field comments.
func collectAnnotations(pass *analysis.Pass) map[fieldKey]string {
	guards := map[fieldKey]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.ObjectOf(ts.Name).(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardComment(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					guards[fieldKey{typ: tn, name: name.Name}] = mu
				}
			}
			return true
		})
	}
	return guards
}

func guardComment(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkFunc flags annotated-field accesses in fd that are not preceded by
// a Lock of the annotated mutex within the same function.
func checkFunc(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl, guards map[fieldKey]string) {
	// lockPositions: mutex name -> positions of <...>.<mu>.Lock()/RLock()
	// calls in this function.
	locks := map[string][]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch recv := sel.X.(type) {
		case *ast.SelectorExpr:
			locks[recv.Sel.Name] = append(locks[recv.Sel.Name], call.Pos())
		case *ast.Ident:
			locks[recv.Name] = append(locks[recv.Name], call.Pos())
		}
		return true
	})

	// One report per field per line: `x.f = append(x.f, v)` is one
	// violation, not two.
	type lineKey struct {
		key  fieldKey
		line int
	}
	seen := map[lineKey]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key, ok := annotatedField(pass, sel, guards)
		if !ok {
			return true
		}
		mu := guards[key]
		if lockedBefore(locks[mu], sel.Pos()) {
			return true
		}
		if analysis.Suppressed(pass.Fset, file, sel.Pos(), "guarded") {
			return true
		}
		lk := lineKey{key: key, line: pass.Fset.Position(sel.Pos()).Line}
		if seen[lk] {
			return true
		}
		seen[lk] = true
		pass.Report(sel.Pos(),
			"access to %s.%s (guarded by %s) without locking %s in %s; lock it, rename the helper *Locked, or annotate //guarded:held",
			key.typ.Name(), key.name, mu, mu, fd.Name.Name)
		return true
	})
}

// annotatedField resolves sel to an annotated (struct, field) pair.
func annotatedField(pass *analysis.Pass, sel *ast.SelectorExpr, guards map[fieldKey]string) (fieldKey, bool) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return fieldKey{}, false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return fieldKey{}, false
	}
	key := fieldKey{typ: named.Obj(), name: sel.Sel.Name}
	_, annotated := guards[key]
	return key, annotated
}

// lockedBefore reports whether any Lock call position precedes pos.
func lockedBefore(locks []token.Pos, pos token.Pos) bool {
	for _, l := range locks {
		if l < pos {
			return true
		}
	}
	return false
}
