// Package core is a guarded fixture: fields annotated `guarded by <mu>`
// must be accessed under that mutex.
package core

import "sync"

type replica struct {
	mu      sync.Mutex
	applied int64  // guarded by mu
	backlog []int  // guarded by mu; decided-but-undelivered
	name    string // immutable after construction
}

// good locks before touching guarded state.
func (r *replica) good() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.backlog = r.backlog[:0]
	return r.applied
}

// bad reads guarded state without the lock: flagged.
func (r *replica) bad() int64 {
	return r.applied // want `access to replica\.applied \(guarded by mu\) without locking mu`
}

// badWrite mutates guarded state without the lock: flagged.
func (r *replica) badWrite(n int) {
	r.backlog = append(r.backlog, n) // want `access to replica\.backlog \(guarded by mu\) without locking mu`
}

// appliedLocked holds the lock by naming contract.
func (r *replica) appliedLocked() int64 {
	return r.applied
}

// held inherits the lock non-syntactically and says so.
func (r *replica) held() int64 {
	return r.applied //guarded:held — only called from good()
}

// unguarded fields are free.
func (r *replica) title() string {
	return r.name
}

// outsideAccess locks through another path's mutex name: an RLock of the
// right mutex also counts.
type table struct {
	rw    sync.RWMutex
	slots []int // guarded by rw
}

func (t *table) read(i int) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.slots[i]
}
