package guarded_test

import (
	"testing"

	"robuststore/internal/analysis/analysistest"
	"robuststore/internal/analysis/guarded"
)

func TestGuarded(t *testing.T) {
	analysistest.Run(t, "testdata", guarded.Analyzer, "core")
}
