// Package analysistest runs an analyzer over GOPATH-style fixture
// packages under a testdata directory and checks its diagnostics against
// "// want" comments, mirroring golang.org/x/tools/go/analysis/analysistest
// on the standard library only.
//
// Layout: testdata/src/<pkg>/*.go, where <pkg> is the fixture's import
// path. Fixture packages may import each other (by that path) and the
// standard library. A line expecting diagnostics carries one or more
// quoted regular expressions:
//
//	for k := range m { send(k) } // want `range over map`
//
// Every diagnostic must be matched by a want on its line and every want
// must match a diagnostic; anything else fails the test.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"robuststore/internal/analysis"
)

// Run loads each fixture package from testdata/src and applies the
// analyzer, reporting mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: map[string]*analysis.Package{},
	}
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, l.fset, pkg, diags)
	}
}

type loader struct {
	src  string
	fset *token.FileSet
	pkgs map[string]*analysis.Package
	std  map[string]string // std import path -> export data file
}

// load parses and type-checks one fixture package, loading fixture
// dependencies recursively and standard-library dependencies from export
// data.
func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	// Resolve imports: sibling fixture directories are fixture packages,
	// everything else is standard library.
	var stdImports []string
	fixtures := map[string]*types.Package{}
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range af.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(ip))); err == nil {
				dep, err := l.load(ip)
				if err != nil {
					return nil, err
				}
				fixtures[ip] = dep.Types
			} else {
				stdImports = append(stdImports, ip)
			}
		}
	}
	if l.std == nil {
		l.std = map[string]string{}
	}
	var missing []string
	for _, ip := range stdImports {
		if _, ok := l.std[ip]; !ok {
			missing = append(missing, ip)
		}
	}
	if len(missing) > 0 {
		exp, err := analysis.StdExports(missing...)
		if err != nil {
			return nil, err
		}
		for k, v := range exp {
			l.std[k] = v
		}
	}
	imp := &combinedImporter{
		fixtures: fixtures,
		std:      analysis.ExportImporter(l.fset, l.std),
	}
	pkg, err := analysis.Typecheck(l.fset, imp, path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

type combinedImporter struct {
	fixtures map[string]*types.Package
	std      types.Importer
}

func (c *combinedImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.fixtures[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// wantRE extracts the quoted regular expressions of a want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					src := m[1]
					if src == "" {
						src = m[2]
					}
					re, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, src, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
