// Package detorder flags iteration over Go maps that can leak the
// runtime's randomized map order into replica-visible behaviour. The
// deterministic packages (internal/paxos, core, sim, shard, tpcw) are
// replicated state machines: two replicas folding the same inputs must
// produce byte-identical outputs, and a `range` over a map that sends
// messages, appends WAL records, proposes values or accumulates an
// ordered slice breaks that silently. PR 6 shipped exactly this bug —
// establish() re-proposed outstanding values in map order on leader
// change, breaking cross-leader FIFO — and the type system cannot see it.
//
// A loop is flagged when its body reaches an order-sensitive sink:
//
//   - a call whose name is known to emit in order (Send, Broadcast,
//     propose, Submit, Append, appendRecord, Write, Encode, Hash, ...);
//   - a built-in append onto a slice declared outside the loop, unless
//     the slice is sorted afterwards in the same function (the sanctioned
//     collect-then-sort idiom, e.g. via detsort.Keys);
//   - a return whose value depends on the loop variables (first match in
//     map order wins).
//
// Pure folds — counters, min/max, building another map — are not flagged.
// Suppress a provably order-insensitive loop with a //detorder:sorted
// comment on (or immediately above) the range statement.
package detorder

import (
	"go/ast"
	"go/types"

	"robuststore/internal/analysis"
)

// Analyzer is the detorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "flag order-sensitive iteration over maps in deterministic replica code",
	Run:  run,
}

// sinkNames are callee names that emit their arguments in call order:
// message sends, proposals, WAL writes, ordered encodes and hashes.
var sinkNames = map[string]bool{
	"Send": true, "send": true, "Broadcast": true, "broadcast": true,
	"Propose": true, "propose": true, "Submit": true, "SubmitFrom": true,
	"Append": true, "AppendBatch": true, "appendRecord": true,
	"Write": true, "WriteString": true, "WriteByte": true,
	"Encode": true, "Marshal": true, "MarshalBinary": true,
	"Sum": true, "Sum32": true, "Sum64": true, "Hash": true,
	"Fprintf": true,
}

// sortNames are the sort entry points that sanction the collect-then-sort
// idiom when applied to a slice the loop appended to.
var sortNames = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true, "Ints": true, "Strings": true,
	"Float64s": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.DeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if rng, ok := n.(*ast.RangeStmt); ok {
				checkRange(pass, file, rng, enclosingBody(file, rng))
			}
			return true
		})
	}
	return nil
}

// enclosingBody returns the statement list of the innermost block that
// directly contains stmt, used to look for a sanctioning sort call after
// the loop.
func enclosingBody(file *ast.File, stmt ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || out != nil {
			return false
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			for _, s := range b.List {
				if s == stmt {
					out = b.List
					return false
				}
			}
		}
		return true
	})
	return out
}

func checkRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, siblings []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if analysis.Suppressed(pass.Fset, file, rng.For, "detorder") {
		return
	}
	loopVars := rangeVars(pass, rng)

	var sink string
	var inspect func(n ast.Node, inFuncLit bool)
	inspect = func(n ast.Node, inFuncLit bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if sink != "" || n == nil {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				// A closure's returns are not the loop's returns (sort
				// comparators return out of their own frame), but calls
				// it makes are still executed per iteration often enough
				// (executor Post, deferred sends) to stay sinks.
				inspect(n.Body, true)
				return false
			case *ast.CallExpr:
				if name, ok := calleeName(n); ok && sinkNames[name] {
					sink = "call to " + name
					return false
				}
				if isBuiltinAppend(pass, n) && len(n.Args) > 0 {
					root := rootIdent(n.Args[0])
					if root != nil && declaredOutside(pass, root, rng) &&
						!sortedAfter(pass, siblings, rng, root.Name) {
						sink = "append to outer slice " + root.Name
						return false
					}
				}
			case *ast.ReturnStmt:
				if inFuncLit {
					return true
				}
				for _, res := range n.Results {
					if usesAny(pass, res, loopVars) {
						sink = "return of a map-order-dependent value"
						return false
					}
				}
			}
			return true
		})
	}
	inspect(rng.Body, false)
	if sink != "" {
		pass.Report(rng.For,
			"range over map %s reaches order-sensitive %s; iterate sorted keys (detsort.Keys) or annotate //detorder:sorted",
			types.ExprString(rng.X), sink)
	}
}

// rangeVars collects the objects bound by the range clause (key/value).
func rangeVars(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

func usesAny(pass *analysis.Pass, e ast.Expr, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && vars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name, true
	case *ast.Ident:
		return fn.Name, true
	}
	return "", false
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// rootIdent unwraps selectors and index expressions to the base
// identifier: reply.Accepted -> reply, m[k].xs -> m.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id's object is declared outside the
// range statement (an accumulator that outlives the loop).
func declaredOutside(pass *analysis.Pass, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether a sort.* / slices.Sort* call mentioning
// name appears after the range statement among its sibling statements —
// the collect-then-sort idiom that makes the append order irrelevant.
func sortedAfter(pass *analysis.Pass, siblings []ast.Stmt, rng *ast.RangeStmt, name string) bool {
	after := false
	for _, s := range siblings {
		if s == ast.Stmt(rng) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !sortNames[sel.Sel.Name] {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName); !ok ||
				(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if mentions(arg, name) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func mentions(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
