package detorder_test

import (
	"testing"

	"robuststore/internal/analysis/analysistest"
	"robuststore/internal/analysis/detorder"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, "testdata", detorder.Analyzer, "paxos", "other")
}
