// Package other is outside the deterministic replica packages: the same
// shapes that detorder flags in paxos are legal here.
package other

type emitter struct{ out []string }

func (e *emitter) Send(v string) { e.out = append(e.out, v) }

func (e *emitter) flushAll(m map[int]string) {
	for _, v := range m { // not deterministic code: no diagnostic
		e.Send(v)
	}
}
