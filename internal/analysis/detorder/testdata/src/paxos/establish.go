// Package paxos is a detorder fixture reproducing the exact shape of the
// PR-6 establish() bug: on leader change, the new leader re-proposed the
// outstanding values it had buffered — iterating its map in runtime
// order, so the FIFO the clients observed depended on which replica won
// the election and on the run's map seed.
package paxos

import "sort"

type seq int64

type engine struct {
	outstanding map[seq]string
	proposals   []string
}

func (e *engine) propose(v string) { e.proposals = append(e.proposals, v) }

// establish is the PR-6 regression: re-propose in map order.
func (e *engine) establish() {
	for _, v := range e.outstanding { // want `range over map e\.outstanding reaches order-sensitive call to propose`
		e.propose(v)
	}
}

// establishSorted is the fix: collect, sort, then propose in seq order.
// Neither loop is flagged — the first is the sanctioned collect-then-sort
// idiom, the second ranges a slice.
func (e *engine) establishSorted() {
	var seqs []seq
	for s := range e.outstanding {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		e.propose(e.outstanding[s])
	}
}

// firstMatch leaks map order through its return value.
func firstMatch(m map[string]int) string {
	for k, v := range m { // want `range over map m reaches order-sensitive return of a map-order-dependent value`
		if v > 0 {
			return k
		}
	}
	return ""
}

// countVotes is a pure fold: not flagged.
func countVotes(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert builds another map: order-insensitive, not flagged.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// comparatorReturns: returns inside a nested closure are the closure's,
// not the loop's — not flagged.
func comparatorReturns(m map[string][]int) {
	for _, vs := range m {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
}

// suppressed is annotated as provably order-insensitive.
func (e *engine) suppressed() {
	//detorder:sorted — every value is the same no-op marker
	for _, v := range e.outstanding {
		e.propose(v)
	}
}
