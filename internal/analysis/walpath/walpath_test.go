package walpath_test

import (
	"testing"

	"robuststore/internal/analysis/analysistest"
	"robuststore/internal/analysis/walpath"
)

func TestWalpath(t *testing.T) {
	analysistest.Run(t, "testdata", walpath.Analyzer, "paxos", "storageimpl")
}
