// Package walpath enforces the two halves of the WAL write invariant
// that PR 6's group commit introduced:
//
//  1. env.Storage.Append / AppendBatch are called only from paxos/wal.go.
//     The walWriter there is the single flush authority — it implements
//     the SyncMode policy (batch coalescing, byte/latency thresholds,
//     ordered completion), and a direct Storage append anywhere else
//     silently bypasses group commit, reordering durability against the
//     records the writer is still holding. Suppress an intentional
//     direct call (e.g. a measurement harness) with //walpath:direct.
//
//  2. Every implementation of Append/AppendBatch (any function of that
//     name taking a func(error) completion parameter) must complete its
//     callback on all control-flow paths. The engine acks proposals only
//     after durability, so an implementation path that drops the done
//     callback wedges the WAL-before-ack pipeline forever — the crash-
//     during-checkpoint hang of PR 2 was exactly a lost completion. The
//     check is syntactic and best-effort: a path is satisfied once it
//     reaches a statement that mentions the callback (invoking it,
//     forwarding it into another call or closure, or nil-guarding it);
//     flagged are returns — and fall-off ends — reachable without ever
//     touching it. Suppress a deliberate drop (completions that die with
//     a crashed incarnation) with a //walpath:drops comment on the
//     function declaration.
package walpath

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"robuststore/internal/analysis"
)

// Analyzer is the walpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "walpath",
	Doc:  "confine env.Storage appends to paxos/wal.go and require done callbacks on every path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		fname := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		inWAL := strings.HasSuffix(pass.Pkg.Path(), "paxos") && fname == "wal.go"
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !inWAL {
					checkDirectAppend(pass, file, n)
				}
			case *ast.FuncDecl:
				checkDoneOnAllPaths(pass, file, n)
			}
			return true
		})
	}
	return nil
}

// checkDirectAppend flags x.Append / x.AppendBatch where x's static type
// is the env.Storage interface, outside paxos/wal.go.
func checkDirectAppend(pass *analysis.Pass, file *ast.File, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Append" && sel.Sel.Name != "AppendBatch") {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isEnvStorage(tv.Type) {
		return
	}
	if analysis.Suppressed(pass.Fset, file, call.Pos(), "walpath") {
		return
	}
	pass.Report(call.Pos(),
		"direct env.Storage.%s outside paxos/wal.go bypasses the group-commit walWriter; route the record through it or annotate //walpath:direct",
		sel.Sel.Name)
}

// isEnvStorage reports whether t (or its pointee) is the named interface
// type Storage of a package named env — the real internal/env or a
// fixture stand-in.
func isEnvStorage(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Storage" && obj.Pkg() != nil && obj.Pkg().Name() == "env"
}

// checkDoneOnAllPaths applies rule 2 to one function declaration.
func checkDoneOnAllPaths(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl) {
	if fd.Body == nil || (fd.Name.Name != "Append" && fd.Name.Name != "AppendBatch") {
		return
	}
	done := completionParam(pass, fd)
	if done == nil {
		return
	}
	if analysis.Suppressed(pass.Fset, file, fd.Pos(), "walpath") {
		return
	}
	w := &pathWalker{pass: pass, done: done}
	st := w.block(fd.Body.List, pathState{})
	if !st.safe && !st.terminated {
		pass.Report(fd.Body.Rbrace,
			"%s can fall off the end without completing its %s callback; every path must invoke or forward it (or annotate //walpath:drops)",
			fd.Name.Name, done.Name())
	}
}

// completionParam returns the func(error) parameter of fd, if any.
func completionParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.ObjectOf(name)
			if obj == nil {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Results().Len() != 0 || sig.Params().Len() != 1 {
				continue
			}
			if named, ok := sig.Params().At(0).Type().(*types.Named); ok &&
				named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return obj
			}
		}
	}
	return nil
}

// pathState tracks one straight-line execution prefix: safe once a
// statement touching the callback has executed, terminated once control
// cannot fall through (return/panic already handled).
type pathState struct {
	safe       bool
	terminated bool
}

type pathWalker struct {
	pass *analysis.Pass
	done types.Object
}

// mentions reports whether the subtree references the done parameter.
func (w *pathWalker) mentions(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && w.pass.TypesInfo.ObjectOf(id) == w.done {
			found = true
		}
		return !found
	})
	return found
}

// block folds the statements of one block over the incoming state.
func (w *pathWalker) block(stmts []ast.Stmt, st pathState) pathState {
	for _, s := range stmts {
		st = w.stmt(s, st)
	}
	return st
}

func (w *pathWalker) stmt(s ast.Stmt, st pathState) pathState {
	if st.terminated {
		return st
	}
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if !st.safe && !w.mentions(s) {
			w.pass.Report(s.Pos(),
				"return without completing the %s callback; every path must invoke or forward it (or annotate //walpath:drops)",
				w.done.Name())
		}
		st.terminated = true
	case *ast.ExprStmt:
		if w.mentions(s) {
			st.safe = true
		}
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				st.terminated = true
			}
		}
	case *ast.DeferStmt, *ast.GoStmt:
		if w.mentions(s) {
			st.safe = true // a deferred/spawned completion covers all later paths
		}
	case *ast.AssignStmt, *ast.DeclStmt, *ast.SendStmt:
		if w.mentions(s) {
			st.safe = true // forwarded into a field, variable or channel
		}
	case *ast.BlockStmt:
		st = w.block(s.List, st)
	case *ast.LabeledStmt:
		st = w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if w.mentions(s.Cond) {
			st.safe = true // a nil-guard: the caller opted out of completion
		}
		thenSt := w.block(s.Body.List, st)
		elseSt := st
		if s.Else != nil {
			elseSt = w.stmt(s.Else, st)
		}
		st.safe = thenSt.safe && elseSt.safe
		st.terminated = thenSt.terminated && elseSt.terminated
		// A branch that terminated is not the fall-through path; if only
		// one side continues, its state is what flows on.
		if thenSt.terminated && !elseSt.terminated {
			st.safe = elseSt.safe
		}
		if elseSt.terminated && !thenSt.terminated {
			st.safe = thenSt.safe
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		st = w.branches(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		bodySt := w.block(s.Body.List, st)
		if s.Cond == nil && bodySt.terminated {
			// for{} whose every exit is a return/panic: nothing falls
			// through, and returns inside were already checked.
			st.terminated = true
		}
		if w.mentions(s.Body) {
			// A loop that touches the callback is the fan-out idiom
			// (attach done to the last record of a batch) — inherently
			// conditional per iteration, so a mention anywhere in the
			// body counts; trust that the zero-iteration case was peeled
			// off by an earlier guard.
			st.safe = true
		}
	case *ast.RangeStmt:
		w.block(s.Body.List, st) // check returns inside
		if w.mentions(s.Body) {
			st.safe = true // forwarding loop, as above
		}
	}
	return st
}

// branches folds a switch/type-switch/select: the construct guarantees
// the callback only if every clause does and (for switches) a default
// clause exists.
func (w *pathWalker) branches(s ast.Stmt, st pathState) pathState {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Tag != nil && w.mentions(s.Tag) {
			st.safe = true
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	allSafe, allTerm := true, true
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				if w.mentions(e) {
					st.safe = true
				}
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				st = w.stmt(c.Comm, st)
			}
			stmts = c.Body
		}
		cs := w.block(stmts, st)
		allSafe = allSafe && cs.safe
		allTerm = allTerm && cs.terminated
	}
	if _, isSelect := s.(*ast.SelectStmt); isSelect {
		hasDefault = true // a select blocks until some clause runs
	}
	if hasDefault && len(body.List) > 0 {
		st.safe = st.safe || allSafe
		st.terminated = st.terminated || allTerm
	}
	return st
}
