// Package storageimpl is a walpath fixture for the callback-completeness
// rule: every implementation of Append/AppendBatch must invoke or forward
// its done callback on all control-flow paths.
package storageimpl

import "env"

type disk struct {
	pending []env.Record
	dones   []func(error)
	full    bool
}

// Append drops done on the early error path: flagged there.
func (d *disk) Append(rec env.Record, done func(error)) {
	if d.full {
		return // want `return without completing the done callback`
	}
	d.pending = append(d.pending, rec)
	done(nil)
}

// AppendBatch forwards done correctly on every path: the nil-guarded
// empty case, and the attach-to-last-record loop.
func (d *disk) AppendBatch(recs []env.Record, done func(error)) {
	if len(recs) == 0 {
		if done != nil {
			done(nil)
		}
		return
	}
	for i, rec := range recs {
		var cb func(error)
		if i == len(recs)-1 {
			cb = done
		}
		d.pending = append(d.pending, rec)
		d.dones = append(d.dones, cb)
	}
}

type null struct{}

// Append never touches done at all: flagged at the fall-off end.
func (null) Append(rec env.Record, done func(error)) {
	_ = rec
} // want `Append can fall off the end without completing its done callback`

// AppendBatch buffers the callback (forwarding into a field counts).
func (d *disk) buffer(recs []env.Record, done func(error)) func(error) {
	return done
}

type crashy struct{ alive bool }

// Append deliberately drops completions of a dead incarnation.
//
//walpath:drops — completions die with the crashed incarnation
func (c *crashy) Append(rec env.Record, done func(error)) {
	if !c.alive {
		return
	}
	done(nil)
}
