// Package env is a fixture stand-in for internal/env: the Storage
// interface whose Append/AppendBatch the walpath analyzer confines to
// paxos/wal.go.
package env

type Record struct {
	Kind string
	Size int64
}

type Storage interface {
	Append(rec Record, done func(error))
	AppendBatch(recs []Record, done func(error))
}
