package paxos

import "env"

type engine struct {
	s env.Storage
	w *walWriter
}

// persist bypasses the walWriter: flagged.
func (e *engine) persist(rec env.Record) {
	e.s.Append(rec, nil) // want `direct env\.Storage\.Append outside paxos/wal\.go`
}

// persistBatch bypasses it too: flagged.
func (e *engine) persistBatch(recs []env.Record) {
	e.s.AppendBatch(recs, nil) // want `direct env\.Storage\.AppendBatch outside paxos/wal\.go`
}

// measured is a deliberate bypass (durability off the books), suppressed.
func (e *engine) measured(rec env.Record) {
	e.s.Append(rec, nil) //walpath:direct — measurement-only write
}

// throughWriter is the sanctioned path.
func (e *engine) throughWriter(rec env.Record, done func(error)) {
	e.w.flushOne(rec, done)
}
