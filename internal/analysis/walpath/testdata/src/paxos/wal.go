// wal.go is the one file allowed to call env.Storage.Append directly:
// the walWriter here is the single flush authority.
package paxos

import "env"

type walWriter struct {
	s   env.Storage
	buf []env.Record
}

func (w *walWriter) flushOne(rec env.Record, done func(error)) {
	w.s.Append(rec, done) // allowed: this is paxos/wal.go
}

func (w *walWriter) flushGroup(done func(error)) {
	recs := w.buf
	w.buf = nil
	w.s.AppendBatch(recs, done) // allowed: this is paxos/wal.go
}
