// Package walltime forbids wall-clock and global-randomness reads in the
// deterministic replica packages. A replica state machine that calls
// time.Now produces different behaviour on every run of the same seed:
// the simulator runs on virtual time (sim.Sim.Now, env.Env.Now/After),
// and any code shared between the simulator and the live runtime must
// draw its time from those clocks and its randomness from internal/xrand
// streams (which are seeded and replayable). PR 3 shipped a migration
// driver that stamped phase transitions with time.Now — harmless on
// livenet, a nondeterminism leak in every sim run.
//
// Flagged in deterministic packages (internal/paxos, core, sim, shard,
// tpcw):
//
//   - time.Now, time.Since, time.Until — wall-clock reads;
//   - time.Sleep, time.After, time.Tick, time.NewTimer, time.AfterFunc,
//     time.NewTicker — wall-clock waits that bypass the virtual scheduler;
//   - the global math/rand and math/rand/v2 functions (rand.Int,
//     rand.Float64, ...) — process-global randomness outside the seeded
//     xrand streams.
//
// Constructing durations and times (time.Duration arithmetic, time.Unix,
// t.Add, t.Sub) is fine — only reading the ambient clock or scheduler is
// not. A deliberate live-runtime-only wait (e.g. a cross-goroutine poll
// loop that never runs on the simulated executor) is suppressed with a
// //walltime:live comment on (or immediately above) the call's line.
package walltime

import (
	"go/ast"
	"go/types"

	"robuststore/internal/analysis"
)

// Analyzer is the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock time and global randomness in deterministic replica code",
	Run:  run,
}

// banned maps package path -> function names whose call reads the
// ambient wall clock, scheduler or global randomness.
var banned = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true,
		"Sleep": true, "After": true, "Tick": true,
		"NewTimer": true, "AfterFunc": true, "NewTicker": true,
	},
	// The global top-level functions of both math/rand generations. Any
	// method call on an explicit *rand.Rand is someone's seeded stream
	// and stays legal (xrand wraps one).
	"math/rand": {
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "ExpFloat64": true,
		"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	},
	"math/rand/v2": {
		"Int": true, "IntN": true, "Int32": true, "Int32N": true,
		"Int64": true, "Int64N": true, "Uint32": true, "Uint32N": true,
		"Uint64": true, "Uint64N": true, "Float32": true, "Float64": true,
		"ExpFloat64": true, "NormFloat64": true, "Perm": true,
		"Shuffle": true, "N": true,
	},
}

func run(pass *analysis.Pass) error {
	if !analysis.DeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.ObjectOf(pkgIdent).(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			names, ok := banned[path]
			if !ok || !names[sel.Sel.Name] {
				return true
			}
			if analysis.Suppressed(pass.Fset, file, call.Pos(), "walltime") {
				return true
			}
			what := "wall-clock"
			want := "the env/sim clock (env.Env.Now/After)"
			if path != "time" {
				what = "global-randomness"
				want = "a seeded internal/xrand stream"
			}
			pass.Report(call.Pos(),
				"%s call %s.%s in deterministic package %s; use %s or annotate //walltime:live",
				what, pkgIdent.Name, sel.Sel.Name, pass.Pkg.Path(), want)
			return true
		})
	}
	return nil
}
