package walltime_test

import (
	"testing"

	"robuststore/internal/analysis/analysistest"
	"robuststore/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", walltime.Analyzer, "core", "other")
}
