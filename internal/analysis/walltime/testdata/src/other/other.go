// Package other is outside the deterministic set: the wall clock is its
// business (livenet, experiment drivers).
package other

import "time"

func uptime(start time.Time) time.Duration {
	return time.Since(start) // not deterministic code: no diagnostic
}
