// Package core is a walltime fixture: wall-clock reads and global
// randomness inside a deterministic package.
package core

import (
	"math/rand"
	"time"
)

func bad() time.Time {
	time.Sleep(time.Millisecond)    // want `wall-clock call time\.Sleep in deterministic package`
	<-time.After(time.Millisecond)  // want `wall-clock call time\.After in deterministic package`
	tm := time.NewTimer(time.Hour)  // want `wall-clock call time\.NewTimer in deterministic package`
	tm.Stop()                       // methods on a Timer value are fine
	_ = rand.Intn(4)                // want `global-randomness call rand\.Intn in deterministic package`
	_ = rand.Float64()              // want `global-randomness call rand\.Float64 in deterministic package`
	_ = time.Since(time.Unix(0, 0)) // want `wall-clock call time\.Since in deterministic package`
	return time.Now()               // want `wall-clock call time\.Now in deterministic package`
}

// live is a deliberate live-runtime-only wait, suppressed.
func live() {
	time.Sleep(time.Millisecond) //walltime:live — cross-goroutine poll loop
}

// construction of times and durations never reads the ambient clock.
func pureTimeMath(d time.Duration, t time.Time) time.Time {
	return t.Add(d * 2).Truncate(time.Second)
}

// seededStream: methods on an explicit *rand.Rand are someone's seeded
// stream (xrand wraps one) and stay legal.
func seededStream(r *rand.Rand) int {
	return r.Intn(10)
}
