// Package analysis is a self-contained static-analysis framework modeled
// on golang.org/x/tools/go/analysis, built only on the standard library
// (the build environment is offline, so x/tools cannot be fetched). It
// exists to enforce — in CI, forever — the determinism and durability
// invariants this codebase has already paid for in bugs:
//
//   - detorder: no order-sensitive iteration over Go maps in the
//     deterministic replica packages. PR 6's establish() re-proposed
//     outstanding values in map order, breaking FIFO across a leader
//     change; the type system cannot see that class of bug, this pass
//     can. Suppress a provably order-insensitive loop with a
//     //detorder:sorted comment on (or immediately above) the range
//     statement, or iterate detsort.Keys(m) instead.
//
//   - walltime: no wall-clock or global-randomness reads in sim-shared
//     deterministic code. All time must come from the env/sim clocks
//     (env.Env.Now, sim.Sim.Now) and all randomness from internal/xrand;
//     time.Now in a replica makes two runs of the same seed diverge.
//     Suppress a deliberate live-runtime-only wait with //walltime:live.
//
//   - walpath: env.Storage.Append/AppendBatch are called only from
//     paxos/wal.go — every other WAL write must go through walWriter so
//     the group-commit SyncMode policy (PR 6) is the single flush
//     authority. Additionally, every Append/AppendBatch implementation
//     must invoke its done callback on all control-flow paths: a dropped
//     completion wedges the WAL-before-ack pipeline forever. Suppress an
//     intentional direct call with //walpath:direct.
//
//   - guarded: struct fields annotated `// guarded by <mu>` are only
//     accessed in functions that lock that mutex first (best-effort,
//     syntactic). Helpers called with the lock already held are exempt
//     when their name ends in "Locked" or the access carries a
//     //guarded:held comment.
//
// The suite runs standalone and as a vettool:
//
//	go run ./cmd/analyze ./...
//	go vet -vettool=$(which analyze) ./...
//
// and each analyzer ships analysistest-style testdata fixtures under
// internal/analysis/<name>/testdata/src.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass. The shape deliberately
// mirrors golang.org/x/tools/go/analysis.Analyzer so the passes can be
// rebased onto the real framework if the dependency ever becomes
// available.
type Analyzer struct {
	// Name identifies the pass in diagnostics and suppression comments.
	Name string

	// Doc is the one-paragraph help text.
	Doc string

	// Run executes the pass over one package and reports diagnostics
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes one analyzer over a loaded package and returns its
// diagnostics in position order (they are reported in traversal order,
// which is already positional for our passes). Test files are excluded:
// the invariants govern replica code, and tests legitimately drive
// storage directly, sleep on the live runtime, and poke guarded state
// (go vet hands the tool test files; the standalone loader never does).
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(pkg.Syntax))
	for _, f := range pkg.Syntax {
		if name := pkg.Fset.Position(f.Pos()).Filename; !strings.HasSuffix(name, "_test.go") {
			files = append(files, f)
		}
	}
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	return pass.diagnostics, nil
}

// Suppressed reports whether a diagnostic of analyzer name at pos is
// silenced by a "//<name>:<reason>" comment on the same source line or
// the line immediately above. reason is free-form ("sorted", "live",
// "direct", "held"); the analyzer name must match.
func Suppressed(fset *token.FileSet, file *ast.File, pos token.Pos, name string) bool {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if strings.HasPrefix(text, name+":") {
				return true
			}
		}
	}
	return false
}

// DeterministicPkg reports whether pkgPath is one of the packages whose
// code runs inside the deterministic replica state machines (shared
// between the simulator and the live runtime). The match is by path
// segment so analysistest fixtures can opt in by directory name.
func DeterministicPkg(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		switch seg {
		case "paxos", "core", "sim", "shard", "tpcw":
			return true
		}
	}
	return false
}
