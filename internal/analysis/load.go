package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package — the subset of
// golang.org/x/tools/go/packages.Package the analyzers need.
type Package struct {
	PkgPath   string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Match      []string
}

// Load resolves the given package patterns (e.g. "./...") with the go
// command and returns the matched packages parsed and type-checked.
// Dependencies are imported from compiler export data (`go list -export`),
// so loading works offline and needs no third-party driver.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Match"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.Match) > 0 && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, absFiles(t.Dir, t.GoFiles))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through compiler export data files (as produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// StdExports runs `go list -export -deps` over the given (standard
// library) import paths and returns path → export-data file for them and
// all their dependencies. The analysistest harness uses it to type-check
// fixture packages that import the standard library.
func StdExports(paths ...string) (map[string]string, error) {
	exports := map[string]string{}
	if len(paths) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(paths, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Typecheck parses and type-checks one package from explicit file paths,
// resolving imports through imp. It backs both the pattern loader and the
// vettool (unitchecker) entry point of cmd/analyze.
func Typecheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	return typecheck(fset, imp, pkgPath, dir, files)
}

func typecheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		GoFiles:   files,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}
