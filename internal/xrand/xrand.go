// Package xrand provides a small, fast, deterministic random number
// generator used across the simulator and the workload generators.
//
// The generator is a splitmix64 stream. Unlike math/rand's global source it
// is explicitly seeded and splittable: independent components (each node,
// each emulated browser) derive their own stream from a parent, so a whole
// experiment is reproducible from a single root seed regardless of event
// interleaving.
package xrand

import "math"

// Rand is a deterministic splitmix64 random number generator. The zero
// value is a valid generator seeded with zero; prefer New.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent child generator. The child's sequence does
// not overlap with the parent's for any practical stream length.
func (r *Rand) Split() *Rand {
	// Mix the parent's next output with a large odd constant so that
	// children of successive Split calls are decorrelated.
	return &Rand{state: r.Uint64()*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *Rand) ExpFloat64() float64 {
	// Inverse transform sampling; clamp the uniform away from 0 so the
	// result is finite.
	u := r.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return -math.Log(u)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1 (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Shuffle permutes xs in place.
func Shuffle[T any](r *Rand, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
