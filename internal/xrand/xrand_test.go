package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[c1.Uint64()] = true
	}
	for i := 0; i < 1000; i++ {
		if seen[c2.Uint64()] {
			t.Fatal("sibling streams overlap")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ≈1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal moments: mean=%v var=%v", mean, variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	cp := append([]int(nil), xs...)
	Shuffle(r, cp)
	counts := make(map[int]int)
	for _, v := range cp {
		counts[v]++
	}
	for _, v := range xs {
		if counts[v] != 1 {
			t.Fatalf("shuffle changed contents: %v", cp)
		}
	}
}

func TestPick(t *testing.T) {
	r := New(17)
	xs := []string{"a", "b", "c"}
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose some elements: %v", seen)
	}
}

func TestInt63nBounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1000000007)
		if v < 0 || v >= 1000000007 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
	if v := New(1).Int63(); v < 0 {
		t.Fatalf("Int63 negative: %d", v)
	}
}
