// Package rbe implements TPC-W remote browser emulators (paper §3): a
// closed-loop population of emulated browsers that issue the fourteen
// TPC-W web interactions against a frontend, with think times and the
// interaction mixes of the three workload profiles (browsing, shopping,
// ordering).
//
// Following the paper's methodology, the think time is 1 s (their modified
// value; §5.1) and each emulated browser draws interactions from the
// profile's steady-state distribution, which preserves the read/write
// ratios that drive every result (95/5, 80/20 and 50/50).
package rbe

import (
	"reflect"
	"time"

	"robuststore/internal/tpcw"
	"robuststore/internal/xrand"
)

// Interaction enumerates the fourteen TPC-W web interactions.
type Interaction int

// The TPC-W web interactions.
const (
	Home Interaction = iota + 1
	NewProducts
	BestSellers
	ProductDetail
	SearchRequest
	SearchResults
	ShoppingCart
	CustomerRegistration
	BuyRequest
	BuyConfirm
	OrderInquiry
	OrderDisplay
	AdminRequest
	AdminConfirm

	// Cross-shard interactions (appended past the TPC-W fourteen so the
	// profile mixes stay untouched): a gift purchase delivered to a
	// customer on another session's shard, and an admin inventory sweep
	// repricing items across groups. Issued by the experiment harness's
	// transaction driver, never drawn from a profile mix.
	GiftPurchase
	StockSweep
)

// interactionNames for reporting.
var interactionNames = map[Interaction]string{
	Home: "home", NewProducts: "new_products", BestSellers: "best_sellers",
	ProductDetail: "product_detail", SearchRequest: "search_request",
	SearchResults: "search_results", ShoppingCart: "shopping_cart",
	CustomerRegistration: "customer_registration", BuyRequest: "buy_request",
	BuyConfirm: "buy_confirm", OrderInquiry: "order_inquiry",
	OrderDisplay: "order_display", AdminRequest: "admin_request",
	AdminConfirm: "admin_confirm", GiftPurchase: "gift_purchase",
	StockSweep: "stock_sweep",
}

// String implements fmt.Stringer.
func (i Interaction) String() string { return interactionNames[i] }

// IsWrite reports whether the interaction updates the bookstore state —
// TPC-W's classification, which yields ≈4.35 % writes for browsing,
// ≈18.5 % for shopping and ≈49.4 % for ordering.
func (i Interaction) IsWrite() bool {
	switch i {
	case ShoppingCart, CustomerRegistration, BuyRequest, BuyConfirm, AdminConfirm,
		GiftPurchase, StockSweep:
		return true
	default:
		return false
	}
}

// Profile selects a TPC-W workload mix.
type Profile int

// The three TPC-W workload profiles (paper §3).
const (
	Browsing Profile = iota + 1 // WIPSb: 95 % reads
	Shopping                    // WIPS: 80 % reads (the reference profile)
	Ordering                    // WIPSo: 50 % reads
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case Browsing:
		return "browsing"
	case Shopping:
		return "shopping"
	case Ordering:
		return "ordering"
	default:
		return "unknown"
	}
}

// Profiles lists all three, in the paper's order.
var Profiles = []Profile{Browsing, Shopping, Ordering}

// mixRow is an interaction's weight in a profile (percent ×100 to stay
// integral).
type mixRow struct {
	kind   Interaction
	weight int
}

// The steady-state interaction distributions of the TPC-W CBMG for each
// profile (percent × 100).
var mixes = map[Profile][]mixRow{
	Browsing: {
		{Home, 2900}, {NewProducts, 1100}, {BestSellers, 1100},
		{ProductDetail, 2100}, {SearchRequest, 1200}, {SearchResults, 1100},
		{ShoppingCart, 200}, {CustomerRegistration, 82}, {BuyRequest, 75},
		{BuyConfirm, 69}, {OrderInquiry, 30}, {OrderDisplay, 25},
		{AdminRequest, 10}, {AdminConfirm, 9},
	},
	Shopping: {
		{Home, 1600}, {NewProducts, 500}, {BestSellers, 500},
		{ProductDetail, 1700}, {SearchRequest, 2000}, {SearchResults, 1700},
		{ShoppingCart, 1160}, {CustomerRegistration, 300}, {BuyRequest, 260},
		{BuyConfirm, 120}, {OrderInquiry, 75}, {OrderDisplay, 66},
		{AdminRequest, 10}, {AdminConfirm, 9},
	},
	Ordering: {
		{Home, 912}, {NewProducts, 46}, {BestSellers, 46},
		{ProductDetail, 1235}, {SearchRequest, 1453}, {SearchResults, 1308},
		{ShoppingCart, 1353}, {CustomerRegistration, 1286}, {BuyRequest, 1273},
		{BuyConfirm, 1018}, {OrderInquiry, 25}, {OrderDisplay, 22},
		{AdminRequest, 12}, {AdminConfirm, 11},
	},
}

// WriteFraction returns the profile's write ratio according to its mix.
func (p Profile) WriteFraction() float64 {
	var writes, total int
	for _, row := range mixes[p] {
		total += row.weight
		if row.kind.IsWrite() {
			writes += row.weight
		}
	}
	return float64(writes) / float64(total)
}

// pick draws an interaction from the profile mix.
func (p Profile) pick(rng *xrand.Rand) Interaction {
	rows := mixes[p]
	total := 0
	for _, r := range rows {
		total += r.weight
	}
	n := rng.Intn(total)
	for _, r := range rows {
		n -= r.weight
		if n < 0 {
			return r.kind
		}
	}
	return Home
}

// Request is one web interaction with all parameters resolved by the
// emulated browser.
type Request struct {
	Client     int64 // unique client id; the proxy hashes on it
	Kind       Interaction
	Item       tpcw.ItemID
	Subject    string
	SearchKind tpcw.SearchKind
	SearchTerm string
	Customer   tpcw.CustomerID
	UName      string
	Cart       tpcw.CartID
	Qty        int32

	// Peer is the counterparty of a cross-shard interaction: the gift
	// recipient of a GiftPurchase. The proxy routes the request by Client
	// as usual (the buyer's group coordinates) and the recipient's group
	// joins as a 2PC participant.
	Peer tpcw.CustomerID

	// Items is the item set of a StockSweep; Cost is its new unique cost
	// (the sweep's atomicity audit marker). Tag labels the transaction
	// for the consistency audit.
	Items []tpcw.ItemID
	Cost  float64
	Tag   string
}

// Response is the frontend's answer.
type Response struct {
	Err      bool
	Cart     tpcw.CartID
	Customer tpcw.CustomerID
	UName    string
	Order    tpcw.OrderID
}

// Frontend accepts interactions; done is invoked exactly once.
type Frontend interface {
	Do(req Request, done func(Response))
}

// Scheduler is the timing dependency (the simulator or a live timer
// source).
type Scheduler interface {
	Now() time.Time
	After(d time.Duration, fn func())
}

// Recorder receives one sample per completed interaction, tagged with the
// issuing client so a sharded harness can bucket samples per Paxos group.
// Both *metrics.Recorder and *metrics.ShardedRecorder satisfy it.
type Recorder interface {
	RecordClient(client int64, at time.Time, latency time.Duration, isErr bool)
}

// Config parameterizes an RBE population.
type Config struct {
	// Browsers is the number of emulated browsers (closed-loop
	// population).
	Browsers int

	// Profile selects the workload mix.
	Profile Profile

	// ThinkTime is the mean of the exponential think time. The paper
	// uses 1 s (§5.1).
	ThinkTime time.Duration

	// Population is the RBEs' static knowledge of the store.
	Population tpcw.PopulationInfo

	// Seed drives the deterministic behaviour of all browsers.
	Seed uint64

	// Recorder receives one sample per completed interaction; may be
	// nil.
	Recorder Recorder

	// Stop: interactions completing after this instant are not issued
	// anymore (ramp-down ends the run).
	Stop time.Time
}

// Population drives Config.Browsers emulated browsers.
type Population struct {
	cfg   Config
	sched Scheduler
	front Frontend
	rng   *xrand.Rand

	issued    int64
	completed int64
	errors    int64
}

// New builds an RBE population. Call Start to begin issuing load.
func New(cfg Config, sched Scheduler, front Frontend) *Population {
	if cfg.ThinkTime == 0 {
		cfg.ThinkTime = time.Second
	}
	// A typed-nil pointer stored in the Recorder interface would pass the
	// nil check at record time and panic on first use; normalize it here.
	if cfg.Recorder != nil {
		if v := reflect.ValueOf(cfg.Recorder); v.Kind() == reflect.Pointer && v.IsNil() {
			cfg.Recorder = nil
		}
	}
	return &Population{
		cfg:   cfg,
		sched: sched,
		front: front,
		rng:   xrand.New(cfg.Seed*0x9e3779b97f4a7c15 + 99),
	}
}

// Start launches every browser with an initial stagger of up to one think
// time, so the population does not tick in lockstep.
func (p *Population) Start() {
	for i := 0; i < p.cfg.Browsers; i++ {
		b := &browser{
			pop:    p,
			client: int64(i + 1),
			rng:    p.rng.Split(),
		}
		delay := time.Duration(b.rng.Float64() * float64(p.cfg.ThinkTime))
		p.sched.After(delay, b.step)
	}
}

// Issued returns the number of interactions sent so far.
func (p *Population) Issued() int64 { return p.issued }

// Completed returns the number of completed interactions.
func (p *Population) Completed() int64 { return p.completed }

// Errors returns the number of errored interactions.
func (p *Population) Errors() int64 { return p.errors }

// browser is one emulated browser: a session with a customer identity and
// an optional shopping cart, issuing interactions in a think-time loop.
type browser struct {
	pop    *Population
	client int64
	rng    *xrand.Rand

	customer tpcw.CustomerID
	uname    string
	cart     tpcw.CartID
	hasItems bool
}

func (b *browser) step() {
	p := b.pop
	if !p.cfg.Stop.IsZero() && !p.sched.Now().Before(p.cfg.Stop) {
		return
	}
	req := b.buildRequest()
	start := p.sched.Now()
	p.issued++
	p.front.Do(req, func(resp Response) {
		p.completed++
		latency := p.sched.Now().Sub(start)
		if resp.Err {
			p.errors++
		}
		if p.cfg.Recorder != nil {
			p.cfg.Recorder.RecordClient(req.Client, p.sched.Now(), latency, resp.Err)
		}
		b.observe(req, resp)
		think := time.Duration(b.rng.ExpFloat64() * float64(p.cfg.ThinkTime))
		if think > 7*p.cfg.ThinkTime {
			think = 7 * p.cfg.ThinkTime // TPC-W truncates the tail
		}
		p.sched.After(think, b.step)
	})
}

// buildRequest resolves an interaction's parameters from the session and
// population knowledge.
func (b *browser) buildRequest() Request {
	p := b.pop
	info := p.cfg.Population
	kind := p.cfg.Profile.pick(b.rng)
	req := Request{Client: b.client, Kind: kind}
	switch kind {
	case Home, ProductDetail, AdminRequest, AdminConfirm:
		req.Item = tpcw.ItemID(b.rng.Intn(info.Items) + 1)
	case NewProducts, BestSellers:
		req.Subject = info.Subjects[b.rng.Intn(len(info.Subjects))]
	case SearchRequest, SearchResults:
		switch b.rng.Intn(3) {
		case 0:
			req.SearchKind = tpcw.SearchByAuthor
			req.SearchTerm = info.AuthorTokens[b.rng.Intn(len(info.AuthorTokens))]
		case 1:
			req.SearchKind = tpcw.SearchByTitle
			req.SearchTerm = info.TitleTokens[b.rng.Intn(len(info.TitleTokens))]
		default:
			req.SearchKind = tpcw.SearchBySubject
			req.SearchTerm = info.Subjects[b.rng.Intn(len(info.Subjects))]
		}
	case ShoppingCart:
		req.Cart = b.cart
		req.Item = tpcw.ItemID(b.rng.Intn(info.Items) + 1)
		req.Qty = int32(b.rng.Intn(3) + 1)
	case CustomerRegistration:
		// Parameters are drawn here; the server only adds them.
	case BuyRequest:
		req.Cart = b.cart
		req.Customer = b.sessionCustomer()
		req.Item = tpcw.ItemID(b.rng.Intn(info.Items) + 1)
	case BuyConfirm:
		req.Cart = b.cart
		req.Customer = b.sessionCustomer()
		req.Item = tpcw.ItemID(b.rng.Intn(info.Items) + 1)
	case OrderInquiry, OrderDisplay:
		req.Customer = b.sessionCustomer()
		req.UName = b.uname
	}
	return req
}

// sessionCustomer returns this browser's customer, defaulting to a random
// member of the initial population.
func (b *browser) sessionCustomer() tpcw.CustomerID {
	if b.customer != 0 {
		return b.customer
	}
	id := tpcw.CustomerID(b.rng.Intn(b.pop.cfg.Population.Customers) + 1)
	b.customer = id
	b.uname = ""
	return id
}

// observe updates session state from a response.
func (b *browser) observe(req Request, resp Response) {
	if resp.Err {
		// A failed cart interaction may mean the cart no longer exists
		// (e.g. a purchase whose reply was lost in a crash actually
		// committed); drop the session cart so the next interaction
		// starts fresh, as a human shopper would.
		if req.Cart != 0 {
			b.cart = 0
			b.hasItems = false
		}
		return
	}
	if resp.Cart != 0 {
		b.cart = resp.Cart
		b.hasItems = true
	}
	if resp.Customer != 0 {
		b.customer = resp.Customer
		b.uname = resp.UName
	}
	if req.Kind == BuyConfirm && resp.Order != 0 {
		// Cart consumed by the purchase.
		b.cart = 0
		b.hasItems = false
	}
}
