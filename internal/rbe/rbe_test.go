package rbe

import (
	"math"
	"testing"
	"time"

	"robuststore/internal/metrics"
	"robuststore/internal/tpcw"
	"robuststore/internal/xrand"
)

func TestWriteFractionsMatchTPCW(t *testing.T) {
	// Paper §3: browsing 5 %, shopping 20 %, ordering 50 % writes
	// (TPC-W's actual mix classification yields 4.35/18.5/49.4).
	cases := []struct {
		profile Profile
		want    float64
		tol     float64
	}{
		{Browsing, 0.0435, 0.001},
		{Shopping, 0.1849, 0.001},
		{Ordering, 0.4941, 0.001},
	}
	for _, tc := range cases {
		if got := tc.profile.WriteFraction(); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%v write fraction = %v, want %v", tc.profile, got, tc.want)
		}
	}
}

func TestMixSumsTo100Percent(t *testing.T) {
	for _, p := range Profiles {
		total := 0
		for _, row := range mixes[p] {
			total += row.weight
		}
		if total != 10000 {
			t.Errorf("%v mix sums to %d, want 10000", p, total)
		}
	}
}

func TestPickFollowsMix(t *testing.T) {
	rng := xrand.New(4)
	const n = 200000
	counts := make(map[Interaction]int)
	for i := 0; i < n; i++ {
		counts[Shopping.pick(rng)]++
	}
	// Home is 16 % of the shopping mix.
	got := float64(counts[Home]) / n
	if math.Abs(got-0.16) > 0.01 {
		t.Errorf("home frequency = %v, want ≈0.16", got)
	}
	// Every interaction appears.
	for _, row := range mixes[Shopping] {
		if counts[row.kind] == 0 {
			t.Errorf("%v never drawn", row.kind)
		}
	}
}

func TestInteractionNames(t *testing.T) {
	for i := Home; i <= AdminConfirm; i++ {
		if i.String() == "" {
			t.Errorf("interaction %d has no name", i)
		}
	}
	if Browsing.String() != "browsing" || Profile(99).String() != "unknown" {
		t.Error("profile names")
	}
}

// fakeSched is a manual virtual clock for driving browsers.
type fakeSched struct {
	now    time.Time
	queue  []fakeEvent
	serial int
}

type fakeEvent struct {
	at time.Time
	fn func()
}

func (f *fakeSched) Now() time.Time { return f.now }

func (f *fakeSched) After(d time.Duration, fn func()) {
	f.queue = append(f.queue, fakeEvent{at: f.now.Add(d), fn: fn})
}

func (f *fakeSched) runUntil(t time.Time) {
	for {
		best := -1
		for i, e := range f.queue {
			if !e.at.After(t) && (best < 0 || e.at.Before(f.queue[best].at)) {
				best = i
			}
		}
		if best < 0 {
			f.now = t
			return
		}
		e := f.queue[best]
		f.queue = append(f.queue[:best], f.queue[best+1:]...)
		f.now = e.at
		e.fn()
	}
}

// scriptedFrontend answers everything instantly and records requests. It
// also tracks the cart it assigned per client to validate session
// behaviour.
type scriptedFrontend struct {
	reqs       []Request
	nextCart   tpcw.CartID
	assigned   map[int64]tpcw.CartID
	violations int
	failAll    bool
}

func (s *scriptedFrontend) Do(req Request, done func(Response)) {
	s.reqs = append(s.reqs, req)
	if s.assigned == nil {
		s.assigned = make(map[int64]tpcw.CartID)
	}
	if s.failAll {
		done(Response{Err: true})
		return
	}
	var resp Response
	switch req.Kind {
	case ShoppingCart, BuyRequest:
		if req.Cart != 0 && req.Cart != s.assigned[req.Client] {
			s.violations++
		}
		if req.Cart == 0 {
			s.nextCart++
			s.assigned[req.Client] = s.nextCart
			resp.Cart = s.nextCart
		} else {
			resp.Cart = req.Cart
		}
	case CustomerRegistration:
		resp.Customer = 42
		resp.UName = "C42"
	case BuyConfirm:
		if req.Cart != 0 && req.Cart != s.assigned[req.Client] {
			s.violations++
		}
		delete(s.assigned, req.Client)
		resp.Order = 7
	}
	done(resp)
}

func runPopulation(t *testing.T, profile Profile, browsers int, dur time.Duration,
	front Frontend) (*Population, *fakeSched, *metrics.Recorder) {
	t.Helper()
	sched := &fakeSched{now: time.Unix(0, 0).UTC()}
	rec := metrics.NewRecorder(sched.now, time.Second)
	pop := New(Config{
		Browsers:   browsers,
		Profile:    profile,
		ThinkTime:  time.Second,
		Population: tpcw.PopulationInfo{Items: 100, Customers: 50, Subjects: []string{"ARTS"}, TitleTokens: []string{"w"}, AuthorTokens: []string{"a"}},
		Seed:       5,
		Recorder:   rec,
		Stop:       sched.now.Add(dur),
	}, sched, front)
	pop.Start()
	sched.runUntil(sched.now.Add(dur + 10*time.Second))
	return pop, sched, rec
}

func TestClosedLoopThroughput(t *testing.T) {
	front := &scriptedFrontend{}
	pop, _, rec := runPopulation(t, Shopping, 50, 60*time.Second, front)
	// Instant responses, mean think 1 s -> ≈50 interactions/s.
	awips := rec.AWIPS(5, 55)
	if awips < 40 || awips > 60 {
		t.Errorf("AWIPS = %v, want ≈50", awips)
	}
	if pop.Errors() != 0 {
		t.Errorf("errors = %d", pop.Errors())
	}
	if pop.Completed() == 0 || pop.Issued() < pop.Completed() {
		t.Errorf("issued=%d completed=%d", pop.Issued(), pop.Completed())
	}
}

func TestBrowserSessionsUseCarts(t *testing.T) {
	front := &scriptedFrontend{}
	runPopulation(t, Ordering, 10, 120*time.Second, front)
	// After a cart is created, later cart interactions from the same
	// browser must reference it (until a purchase consumes it); the
	// frontend counted any mismatch.
	if front.violations > 0 {
		t.Errorf("%d cart-session violations", front.violations)
	}
	// The ordering profile must actually produce purchases.
	buys := 0
	for _, req := range front.reqs {
		if req.Kind == BuyConfirm {
			buys++
		}
	}
	if buys == 0 {
		t.Error("no buy-confirm interactions generated")
	}
}

func TestBrowserDropsCartOnError(t *testing.T) {
	front := &scriptedFrontend{failAll: true}
	runPopulation(t, Ordering, 5, 60*time.Second, front)
	// With every response failing, browsers must never get wedged on a
	// cart id (they reset to 0), so all cart requests carry cart 0.
	for _, req := range front.reqs {
		if req.Kind == ShoppingCart && req.Cart != 0 {
			t.Fatalf("browser reused cart %d after errors", req.Cart)
		}
	}
}

func TestStopEndsLoad(t *testing.T) {
	front := &scriptedFrontend{}
	pop, sched, _ := runPopulation(t, Browsing, 20, 30*time.Second, front)
	at := pop.Issued()
	sched.runUntil(sched.now.Add(30 * time.Second))
	if pop.Issued() != at {
		t.Errorf("browsers kept issuing after Stop: %d -> %d", at, pop.Issued())
	}
}

func TestRequestParametersInRange(t *testing.T) {
	front := &scriptedFrontend{}
	runPopulation(t, Shopping, 20, 60*time.Second, front)
	for _, req := range front.reqs {
		switch req.Kind {
		case Home, ProductDetail, AdminRequest, AdminConfirm:
			if req.Item < 1 || int(req.Item) > 100 {
				t.Fatalf("item %d out of range for %v", req.Item, req.Kind)
			}
		case NewProducts, BestSellers:
			if req.Subject == "" {
				t.Fatalf("no subject for %v", req.Kind)
			}
		case SearchResults:
			if req.SearchTerm == "" || req.SearchKind == 0 {
				t.Fatalf("unresolved search request")
			}
		case OrderInquiry, OrderDisplay:
			if req.Customer < 1 {
				t.Fatalf("no customer for %v", req.Kind)
			}
		}
	}
}

func TestNewNormalizesTypedNilRecorder(t *testing.T) {
	var rec *metrics.Recorder // typed nil stored in the interface field
	p := New(Config{Browsers: 1, Recorder: rec}, &fakeSched{}, &scriptedFrontend{})
	if p.cfg.Recorder != nil {
		t.Fatal("typed-nil recorder must be normalized to nil")
	}
}
