package shard

// Cross-shard transactions over the goroutine-facing store API: the
// blocking sibling of the event-driven 2PC driver in internal/webtier,
// built on the same core transaction records (core/txn.go) and therefore
// on the same recovery rules — the durable outcome is the TxnDecision
// record in the home group's log, prepares are idempotent per ID, and a
// transaction stranded by a crash resolves from the recorded (or
// presumed-abort) decision, never from any coordinator's memory.
//
// ExecuteTxn is what the livenet consistency audit drives under -race:
// many goroutines coordinating transactions concurrently against real
// replica goroutines, with crashes and restarts in between, after which
// ResolveStranded plus the audit's own counting prove no transaction was
// lost, duplicated, or half-applied.

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"robuststore/internal/core"
)

// TxnBranch is one group's share of a cross-shard transaction: the
// branch action ordered under the prepare record, and the conflict keys
// it blocks while prepared.
type TxnBranch struct {
	Action any
	Keys   []string
}

// txnPrepareTimeout bounds how long ExecuteTxn waits for a participant's
// prepare before presuming abort — the same window the webtier driver
// uses.
const txnPrepareTimeout = 2 * time.Second

// executeOnGroup proposes an action on group g and blocks until applied,
// retrying while the group has no ready member (live runtime only).
func (s *Store) executeOnGroup(ctx context.Context, g int, action any) (any, error) {
	for {
		grp := s.groupList()[g]
		if r := grp.pick(); r != nil {
			result, err := r.Execute(ctx, action)
			if err == nil || !errors.Is(err, core.ErrNotReady) {
				return result, err
			}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Millisecond): //walltime:live — client-goroutine retry backoff (ExecuteTxn), never on the sim executor
		}
	}
}

// ExecuteTxn coordinates one cross-shard transaction: prepare every
// branch in its group's log, Paxos-commit the decision (all-yes →
// commit) in the home group, then release the outcome to every branch
// group. It returns the recorded outcome — which may be an abort even
// after all-yes votes, if a presumed-abort inquiry won the decision race
// — once every branch group has ordered its outcome record.
//
// id must be cluster-unique (the caller mints it); home names the group
// whose log holds the decision and should own one of the branches.
// Safe from any goroutine; blocks until resolved or ctx expires. A
// coordinator abandoned mid-flight (crash, ctx cancel) strands only
// prepared branches, which ResolveStranded — or any later inquiry —
// resolves deterministically from the decision state.
func (s *Store) ExecuteTxn(ctx context.Context, id string, home int, branches map[int]TxnBranch) (bool, error) {
	groups := make([]int, 0, len(branches))
	for g := range branches {
		groups = append(groups, g)
	}
	sort.Ints(groups)

	// Phase 1: prepare all branches concurrently, bounded by the prepare
	// window. A branch that cannot be ordered in time counts as a no.
	pctx, cancel := context.WithTimeout(ctx, txnPrepareTimeout)
	votes := make([]bool, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		i, g := i, g
		br := branches[g]
		wg.Add(1)
		go func() {
			defer wg.Done()
			result, err := s.executeOnGroup(pctx, g,
				core.TxnPrepare{ID: id, Home: home, Action: br.Action, Keys: br.Keys})
			if err != nil {
				return
			}
			if vr, ok := result.(core.TxnVoteResult); ok && vr.Prepared {
				votes[i] = true
			}
		}()
	}
	wg.Wait()
	cancel()
	want := true
	for _, v := range votes {
		want = want && v
	}

	// Phase 2: the decision record is the transaction's durable outcome.
	// First writer wins — obey what was recorded, not what was wanted.
	commit := false
	dres, err := s.executeOnGroup(ctx, home, core.TxnDecision{ID: id, Commit: want})
	if err != nil {
		// No decision could be ordered: prepared branches stay blocked
		// until ResolveStranded (or any inquiry) records the presumed
		// abort. Nothing committed.
		return false, err
	}
	if dr, ok := dres.(core.TxnDecisionResult); ok {
		commit = dr.Commit
	}

	// Phase 3: release the outcome everywhere. Outcome records are
	// idempotent, so retries and concurrent resolvers are harmless.
	var outcomeErr error
	var mu sync.Mutex
	var wg2 sync.WaitGroup
	for _, g := range groups {
		g := g
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			var action any = core.TxnAbort{ID: id}
			if commit {
				action = core.TxnCommit{ID: id}
			}
			if _, err := s.executeOnGroup(ctx, g, action); err != nil {
				mu.Lock()
				outcomeErr = err
				mu.Unlock()
			}
		}()
	}
	wg2.Wait()
	return commit, outcomeErr
}

// ResolveStranded scans every group for prepared branches left behind by
// abandoned coordinators and resolves each from its home group's
// decision state, recording a presumed abort where no decision exists.
// It returns how many branches it resolved. Safe from any goroutine;
// idempotent — concurrent resolvers converge on the recorded outcomes.
func (s *Store) ResolveStranded(ctx context.Context) (int, error) {
	resolved := 0
	for gi, grp := range s.groupList() {
		// Collect the group's prepared set from one ready member's
		// executor (the prepared map is loop-confined replica state).
		var prepared []core.PreparedTxnInfo
		for m := range grp.ids {
			r := grp.reps[m].Load()
			if r == nil || !r.Ready() || !s.rt.Alive(grp.ids[m]) {
				continue
			}
			ch := make(chan []core.PreparedTxnInfo, 1)
			if !r.Inspect(func(core.StateMachine) { ch <- r.PreparedTxns() }) {
				continue
			}
			select {
			case prepared = <-ch:
			case <-ctx.Done():
				return resolved, ctx.Err()
			}
			break
		}
		for _, p := range prepared {
			// Record (or read back) the decision in the home group:
			// presumed abort for transactions whose coordinator never
			// decided, the recorded outcome otherwise.
			dres, err := s.executeOnGroup(ctx, p.Home, core.TxnDecision{ID: p.ID, Commit: false})
			if err != nil {
				return resolved, err
			}
			commit := false
			if dr, ok := dres.(core.TxnDecisionResult); ok {
				commit = dr.Commit
			}
			var action any = core.TxnAbort{ID: p.ID}
			if commit {
				action = core.TxnCommit{ID: p.ID}
			}
			if _, err := s.executeOnGroup(ctx, gi, action); err != nil {
				return resolved, err
			}
			resolved++
		}
	}
	return resolved, nil
}
