package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
)

// This file makes routing explicit, versioned state instead of an
// arithmetic convention: a RoutingTable partitions the hash space into a
// fixed number of slices and assigns each slice to a Paxos group. Tables
// are versioned by a monotonically increasing epoch; epoch 0 is defined
// to reproduce the historical mod-N mapping bit for bit (golden-tested),
// so deploying the table costs no key movement. Later epochs are produced
// by Grow, which reassigns whole slices to a new group — the unit of the
// live-migration protocol in migrate.go. The design follows the
// manifest-versioning idiom (KevoDB): the current table is a small,
// durable, checksummed artifact that every tier reads, not a formula
// frozen into the code.

// slicesPerGroup is the hash-space granularity of a fresh table: an
// epoch-0 table over n groups has n×slicesPerGroup slices. The multiple
// keeps slice count divisible by n (the mod-N identity below) while
// giving Grow enough slices to rebalance in ~1.5 % steps.
const slicesPerGroup = 64

// RoutingTable maps hash-space slices to Paxos groups. A key's slice is
// Hash(key) mod Slices(); its group is Assign[slice]. The zero value is
// not a valid table; construct with NewRoutingTable or DecodeTable.
type RoutingTable struct {
	// Epoch versions the table: routing state published under a higher
	// epoch supersedes every lower one. Epoch 0 is the deployment-time
	// table, identical to the historical hash%N router.
	Epoch int64 `json:"epoch"`

	// Assign maps slice index → owning group. len(Assign) is the slice
	// count, fixed for the lifetime of a table lineage (changing it
	// would move slice boundaries and strand every key).
	Assign []int `json:"assign"`
}

// NewRoutingTable returns the epoch-0 table over n groups. Its mapping is
// bit-for-bit the historical mod-N router: the slice count is a multiple
// of n, so Hash(key) mod Slices mod n == Hash(key) mod n.
func NewRoutingTable(n int) RoutingTable {
	if n <= 0 {
		panic("shard: NewRoutingTable needs a positive group count")
	}
	t := RoutingTable{Assign: make([]int, n*slicesPerGroup)}
	for i := range t.Assign {
		t.Assign[i] = i % n
	}
	return t
}

// Slices returns the hash-space slice count.
func (t RoutingTable) Slices() int { return len(t.Assign) }

// Groups returns the group count (1 + the highest assigned group).
func (t RoutingTable) Groups() int {
	max := 0
	for _, g := range t.Assign {
		if g > max {
			max = g
		}
	}
	return max + 1
}

// SliceOf returns the hash-space slice owning key.
func (t RoutingTable) SliceOf(key string) int {
	return int(Hash(key) % uint64(len(t.Assign)))
}

// Group returns the group owning key under this table.
func (t RoutingTable) Group(key string) int {
	return t.Assign[t.SliceOf(key)]
}

// GroupInt routes an integer key by its decimal representation, agreeing
// with Group on equal keys (see Router.ShardInt).
func (t RoutingTable) GroupInt(key int64) int {
	return t.Group(strconv.FormatInt(key, 10))
}

// Owned returns the key predicate selecting exactly the given slices —
// the filter a source group's keyed snapshot export runs under.
func (t RoutingTable) Owned(slices []int) func(key string) bool {
	in := make(map[int]bool, len(slices))
	for _, s := range slices {
		in[s] = true
	}
	n := uint64(len(t.Assign))
	return func(key string) bool { return in[int(Hash(key)%n)] }
}

// Grow returns the next-epoch table with group newGroup added, plus the
// slices that move to it. Reassignment is deterministic: slices are taken
// one at a time from whichever group currently owns the most (ties to the
// lowest group index, highest slice index first) until the new group owns
// its fair share, floor(Slices/(groups+1)). Slices that do not move keep
// their owner, so only the moved slices' keys change groups.
func (t RoutingTable) Grow(newGroup int) (next RoutingTable, moved []int) {
	n := t.Groups()
	if newGroup != n {
		panic(fmt.Sprintf("shard: Grow(%d) on a %d-group table (new group must be the next index)", newGroup, n))
	}
	next = RoutingTable{Epoch: t.Epoch + 1, Assign: append([]int(nil), t.Assign...)}
	// Per-group slice lists, slice indices ascending.
	own := make([][]int, n)
	for s, g := range t.Assign {
		own[g] = append(own[g], s)
	}
	want := len(t.Assign) / (n + 1)
	for len(moved) < want {
		// Donor: the group owning the most slices right now.
		donor := 0
		for g := 1; g < n; g++ {
			if len(own[g]) > len(own[donor]) {
				donor = g
			}
		}
		s := own[donor][len(own[donor])-1]
		own[donor] = own[donor][:len(own[donor])-1]
		next.Assign[s] = newGroup
		moved = append(moved, s)
	}
	return next, moved
}

// --- Encoding -----------------------------------------------------------
//
// The wire format is a versioned manifest record: magic, format version,
// epoch, slice count, the assignment as uvarints, and a CRC32 footer over
// everything before it. JSON encoding rides on the exported fields.

var tableMagic = [4]byte{'r', 't', 'b', '1'}

// ErrBadTable is returned by DecodeTable for malformed or corrupt input.
var ErrBadTable = errors.New("shard: malformed routing table encoding")

// EncodeTable renders the table into its durable wire form.
func EncodeTable(t RoutingTable) []byte {
	buf := make([]byte, 0, 16+len(t.Assign))
	buf = append(buf, tableMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(t.Epoch))
	buf = binary.AppendUvarint(buf, uint64(len(t.Assign)))
	for _, g := range t.Assign {
		buf = binary.AppendUvarint(buf, uint64(g))
	}
	sum := crc32.ChecksumIEEE(buf)
	return binary.BigEndian.AppendUint32(buf, sum)
}

// DecodeTable parses a table encoded by EncodeTable, verifying the
// checksum and that the assignment is a well-formed surjection onto a
// dense group range.
func DecodeTable(data []byte) (RoutingTable, error) {
	if len(data) < len(tableMagic)+4+2 {
		return RoutingTable{}, ErrBadTable
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(foot) {
		return RoutingTable{}, fmt.Errorf("%w: checksum mismatch", ErrBadTable)
	}
	if string(body[:4]) != string(tableMagic[:]) {
		return RoutingTable{}, fmt.Errorf("%w: bad magic", ErrBadTable)
	}
	rest := body[4:]
	epoch, n := binary.Uvarint(rest)
	if n <= 0 {
		return RoutingTable{}, ErrBadTable
	}
	rest = rest[n:]
	slices, n := binary.Uvarint(rest)
	if n <= 0 || slices == 0 || slices > 1<<20 {
		return RoutingTable{}, ErrBadTable
	}
	rest = rest[n:]
	t := RoutingTable{Epoch: int64(epoch), Assign: make([]int, slices)}
	for i := range t.Assign {
		g, n := binary.Uvarint(rest)
		if n <= 0 {
			return RoutingTable{}, ErrBadTable
		}
		rest = rest[n:]
		t.Assign[i] = int(g)
	}
	if len(rest) != 0 {
		return RoutingTable{}, fmt.Errorf("%w: trailing bytes", ErrBadTable)
	}
	if err := t.validate(); err != nil {
		return RoutingTable{}, err
	}
	return t, nil
}

// MarshalJSON/UnmarshalJSON give the table a validated JSON form (the
// operator-facing twin of the binary manifest).
func (t RoutingTable) MarshalJSON() ([]byte, error) {
	type wire RoutingTable // shed methods to avoid recursion
	return json.Marshal(wire(t))
}

func (t *RoutingTable) UnmarshalJSON(data []byte) error {
	type wire RoutingTable
	var w wire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	got := RoutingTable(w)
	if err := got.validate(); err != nil {
		return err
	}
	*t = got
	return nil
}

// validate checks the structural invariants every decoded table must
// satisfy: at least one slice, non-negative dense group assignment (every
// group in [0, Groups) owns at least one slice).
func (t RoutingTable) validate() error {
	if len(t.Assign) == 0 {
		return fmt.Errorf("%w: no slices", ErrBadTable)
	}
	if t.Epoch < 0 {
		return fmt.Errorf("%w: negative epoch", ErrBadTable)
	}
	max := 0
	for _, g := range t.Assign {
		if g < 0 || g >= len(t.Assign) {
			return fmt.Errorf("%w: assignment out of range", ErrBadTable)
		}
		if g > max {
			max = g
		}
	}
	seen := make([]bool, max+1)
	for _, g := range t.Assign {
		seen[g] = true
	}
	for g, ok := range seen {
		if !ok {
			return fmt.Errorf("%w: group %d owns no slices", ErrBadTable, g)
		}
	}
	return nil
}

// Equal reports whether two tables are identical (epoch and assignment).
func (t RoutingTable) Equal(o RoutingTable) bool {
	if t.Epoch != o.Epoch || len(t.Assign) != len(o.Assign) {
		return false
	}
	for i := range t.Assign {
		if t.Assign[i] != o.Assign[i] {
			return false
		}
	}
	return true
}
