package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
)

// Runtime is the slice of a node runtime the store needs: registering
// member nodes, booting late-added ones (live scale-out) and observing
// liveness. Both *sim.Sim (deterministic experiments) and
// *livenet.Cluster (real goroutines) satisfy it.
type Runtime interface {
	AddNode(factory func() env.Node) env.NodeID
	Restart(id env.NodeID)
	Alive(id env.NodeID) bool
}

// delayer is the optional scheduling capability of a Runtime, used by the
// checkpoint sweep and the migration driver. Both *sim.Sim and
// *livenet.Cluster provide it.
type delayer interface {
	After(d time.Duration, fn func())
}

// nower is the clock capability of a Runtime: virtual time on the
// simulator, the wall clock on livenet. Rebalance requires it — the
// migration driver stamps its phases exclusively from the runtime clock
// so sim runs stay deterministic (both runtimes provide it).
type nower interface {
	Now() time.Time
}

// Config parameterizes a sharded store.
type Config struct {
	// Shards is the number of independent Paxos groups. Default 1 — the
	// degenerate configuration, which behaves exactly like an unsharded
	// core.Replica cluster.
	Shards int

	// Replicas is the replication degree of each group. Default 3.
	Replicas int

	// Machine builds a fresh state machine for one incarnation of one
	// member of the given shard. Each shard is an independent partition:
	// machines of different shards never see each other's actions. The
	// factory must also accept shard indices ≥ Shards — Rebalance adds
	// groups live. Required.
	Machine func(shard int) core.StateMachine

	// Core is the per-replica configuration template. Its Machine field
	// is ignored (the store installs its own per-shard factory) and
	// Paxos.Members is owned by the store (each group gets its disjoint
	// member set).
	Core core.Config
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	return c
}

// ErrNoReplica is returned when the owning group has no live, ready
// member to take a submission.
var ErrNoReplica = errors.New("shard: no ready replica in owning group")

// Store hosts Shards × Replicas core.Replica instances behind a single
// key-routed facade. Node IDs are allocated group-major: group g owns the
// g-th contiguous run of Replicas IDs, so a 1-shard store produces the
// same node layout as hand-built unsharded deployments.
//
// Routing is explicit, epoch-versioned state: the store publishes a
// RoutingTable (epoch 0 reproduces the historical hash%N mapping bit for
// bit) and Rebalance produces the next epoch by adding a group and live-
// migrating the moving hash slices to it (see migrate.go).
type Store struct {
	cfg Config
	rt  Runtime

	table  atomic.Pointer[RoutingTable]
	groups atomic.Pointer[[]*Group]
	mig    atomic.Pointer[migration]

	// rebalMu serializes Rebalance calls: the active-migration check,
	// new-group registration and group-list publication must be one
	// atomic step (Rebalance is callable from any goroutine).
	rebalMu sync.Mutex

	// drainPhase selects which in-flight counter Execute charges (0/1).
	// A migration freeze flips it, then waits only for the pre-freeze
	// counter to drain — new traffic lands on the other counter, so the
	// wait is bounded even under sustained load on non-moving keys.
	drainPhase atomic.Int32
}

// Group is one Paxos group (one shard): a fixed member set whose current
// replica incarnations are tracked as the runtime restarts them.
type Group struct {
	store *Store
	shard int
	ids   []env.NodeID
	reps  []atomic.Pointer[core.Replica]

	// inflight counts Execute calls currently submitted against this
	// group, split by the store's drain phase; the migration drain waits
	// for the pre-freeze phase's counter to reach zero after the routing
	// freeze, so no pre-freeze submission can slip past the barrier.
	inflight [2]atomic.Int64
}

// New registers all member nodes of a sharded store with the runtime.
// Call the runtime's StartAll afterwards, as with hand-built nodes.
func New(rt Runtime, cfg Config) *Store {
	cfg = cfg.withDefaults()
	if cfg.Machine == nil {
		panic("shard: Config.Machine is required")
	}
	s := &Store{cfg: cfg, rt: rt}
	t := NewRoutingTable(cfg.Shards)
	s.table.Store(&t)
	groups := make([]*Group, 0, cfg.Shards)
	for g := 0; g < cfg.Shards; g++ {
		groups = append(groups, s.buildGroup(g))
	}
	s.groups.Store(&groups)
	return s
}

// buildGroup registers one group's member nodes with the runtime.
func (s *Store) buildGroup(g int) *Group {
	grp := &Group{store: s, shard: g}
	grp.reps = make([]atomic.Pointer[core.Replica], s.cfg.Replicas)
	for m := 0; m < s.cfg.Replicas; m++ {
		shard, member := g, m
		id := s.rt.AddNode(func() env.Node {
			return grp.newReplica(shard, member)
		})
		grp.ids = append(grp.ids, id)
	}
	return grp
}

// newReplica builds one incarnation of member m of group g.
func (g *Group) newReplica(shard, member int) *core.Replica {
	cfg := g.store.cfg.Core
	cfg.Machine = func() core.StateMachine { return g.store.cfg.Machine(shard) }
	cfg.Paxos.Members = g.ids
	r := core.NewReplica(cfg)
	g.reps[member].Store(r)
	return r
}

// Table returns the currently published routing table. Safe from any
// goroutine; the pointer swaps atomically at migration cutover.
func (s *Store) Table() RoutingTable { return *s.table.Load() }

// Epoch returns the published routing epoch.
func (s *Store) Epoch() int64 { return s.table.Load().Epoch }

// Router returns a fixed view over the current routing table.
func (s *Store) Router() Router { return Router{t: s.Table()} }

// groupList returns the current group slice (append-only; safe to
// iterate from any goroutine).
func (s *Store) groupList() []*Group { return *s.groups.Load() }

// Shards returns the current group count.
func (s *Store) Shards() int { return len(s.groupList()) }

// ShardOf returns the group owning key under the published table.
func (s *Store) ShardOf(key string) int { return s.table.Load().Group(key) }

// Group returns shard g.
func (s *Store) Group(g int) *Group { return s.groupList()[g] }

// Members returns group g's node IDs (for fault injection in tests).
func (g *Group) Members() []env.NodeID { return g.ids }

// Replica returns the current incarnation of member m (which may be
// stale while the runtime has the node crashed).
func (g *Group) Replica(m int) *core.Replica { return g.reps[m].Load() }

// pick selects a submission target: a live, state-ready member,
// preferring the consensus leader to save the forwarding hop.
func (g *Group) pick() *core.Replica {
	var fallback *core.Replica
	for m, id := range g.ids {
		if !g.store.rt.Alive(id) {
			continue
		}
		r := g.reps[m].Load()
		if r == nil || !r.Ready() {
			continue
		}
		if r.LeaderHint() {
			return r
		}
		if fallback == nil {
			fallback = r
		}
	}
	return fallback
}

// route resolves key to its owning group, reporting frozen=true while a
// migration holds the key's slice in handoff (writes must wait for the
// new epoch; reads keep hitting the source group via the published
// table).
func (s *Store) route(key string) (group int, frozen bool) {
	t := s.table.Load()
	slice := t.SliceOf(key)
	if m := s.mig.Load(); m != nil && m.sliceFrozen(slice) {
		return t.Assign[slice], true
	}
	return t.Assign[slice], false
}

// PickReplica returns the current submission target of the group owning
// key, or nil while no member is ready.
func (s *Store) PickReplica(key string) *core.Replica {
	g, _ := s.route(key)
	return s.groupList()[g].pick()
}

// PickRead returns a ready member of the group owning key for local
// reads, spread across the group's members by the caller-supplied hint
// (e.g. the session ID) so read traffic does not funnel to the leader —
// the 95%-local-reads property of §5.2 per shard. Reads are never frozen
// by a migration: until cutover they are served by the source group.
func (s *Store) PickRead(key string, hint int64) *core.Replica {
	g := s.groupList()[s.table.Load().Group(key)]
	n := len(g.ids)
	start := int(uint64(hint) % uint64(n))
	for off := 0; off < n; off++ {
		m := (start + off) % n
		if !s.rt.Alive(g.ids[m]) {
			continue
		}
		if r := g.reps[m].Load(); r != nil && r.Ready() {
			return r
		}
	}
	return nil
}

// Submit proposes an action for totally ordered execution on the group
// owning key; done (optional) receives the local execution result. Like
// core.Replica.Submit it must run on the target node's executor — in
// practice, inside the single-threaded simulator. Goroutine-based callers
// use Execute.
//
// While a migration holds the key's slice in handoff, the submission is
// buffered and flows to the new owning group at cutover — delayed by the
// migration window, never lost.
func (s *Store) Submit(key string, action any, done func(result any, err error)) {
	g, frozen := s.route(key)
	if frozen {
		if m := s.mig.Load(); m != nil && m.defer_(key, action, done) {
			return
		}
		// Migration completed between route and defer: fall through with
		// the post-cutover routing.
		g, _ = s.route(key)
	}
	r := s.groupList()[g].pick()
	if r == nil {
		if done != nil {
			done(nil, ErrNoReplica)
		}
		return
	}
	r.Submit(action, done)
}

// Execute proposes an action on the group owning key and blocks until it
// has been applied there, retrying while the group has no ready member
// or the key's slice is mid-handoff (live runtime only; safe from any
// goroutine).
func (s *Store) Execute(ctx context.Context, key string, action any) (any, error) {
	for {
		gi, frozen := s.route(key)
		if !frozen {
			g := s.groupList()[gi]
			// The in-flight count brackets the submission so the
			// migration drain (freeze, then wait for the pre-freeze
			// phase's counter) cannot miss it. The re-check under the
			// held count decides: if it still names the same unfrozen
			// group, any later freeze must wait for our decrement before
			// the source log is fenced; if it sees the freeze, or a
			// whole migration completed between the two checks and the
			// key now routes elsewhere, we back off and re-route rather
			// than write to the stale owner.
			ph := s.drainPhase.Load()
			g.inflight[ph].Add(1)
			if gi2, nowFrozen := s.route(key); !nowFrozen && gi2 == gi {
				if r := g.pick(); r != nil {
					result, err := r.Execute(ctx, action)
					g.inflight[ph].Add(-1)
					if err == nil || !errors.Is(err, core.ErrNotReady) {
						return result, err
					}
				} else {
					g.inflight[ph].Add(-1)
				}
			} else {
				g.inflight[ph].Add(-1)
			}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Millisecond): //walltime:live — client-goroutine retry backoff (Execute), never on the sim executor
		}
	}
}

// Checkpoint forces a durable checkpoint on every live member of every
// group and calls done when all have completed. Executor context only
// (see Submit).
//
// Completion is crash-aware: a member that crashes mid-checkpoint loses
// its storage completion with the rest of its volatile state, so a
// periodic sweep counts dead or replaced incarnations as finished rather
// than letting done hang forever.
func (s *Store) Checkpoint(done func()) {
	// Collect targets before starting: core.Replica.Checkpoint may
	// complete synchronously (nothing to checkpoint), so counting and
	// starting in one pass could fire done before all members started.
	type target struct {
		grp *Group
		m   int
		id  env.NodeID
		r   *core.Replica
	}
	var targets []target
	for _, g := range s.groupList() {
		for m, id := range g.ids {
			if !s.rt.Alive(id) {
				continue
			}
			if r := g.reps[m].Load(); r != nil {
				targets = append(targets, target{grp: g, m: m, id: id, r: r})
			}
		}
	}
	var after func(time.Duration, func())
	if d, ok := s.rt.(delayer); ok {
		after = d.After
	}
	reps := make([]*core.Replica, len(targets))
	for k, t := range targets {
		reps[k] = t.r
	}
	core.CheckpointFanout(reps,
		func(k int) bool {
			t := targets[k]
			return !s.rt.Alive(t.id) || t.grp.reps[t.m].Load() != t.r
		},
		after, done)
}

// GroupStatus aggregates one shard's health and progress, built from
// published (goroutine-safe) replica metrics.
type GroupStatus struct {
	Shard       int
	Members     int
	Ready       int   // live members serving reads
	Leader      int   // member index leading the group, -1 if none seen
	Applied     int64 // actions applied (max over members, this incarnation)
	LastApplied int64 // highest applied consensus instance
	Backlog     int64 // worst decided-but-unapplied backlog across members
}

// Status returns one entry per shard. Safe from any goroutine; leader and
// backlog are published snapshots (≤100 ms stale).
func (s *Store) Status() []GroupStatus {
	groups := s.groupList()
	out := make([]GroupStatus, len(groups))
	for i, g := range groups {
		st := GroupStatus{Shard: i, Members: len(g.ids), Leader: -1}
		for m, id := range g.ids {
			r := g.reps[m].Load()
			if r == nil {
				continue
			}
			alive := s.rt.Alive(id)
			if alive && r.Ready() {
				st.Ready++
			}
			if alive && r.LeaderHint() {
				st.Leader = m
			}
			if a := r.AppliedCount(); a > st.Applied {
				st.Applied = a
			}
			if la := int64(r.LastApplied()); la > st.LastApplied {
				st.LastApplied = la
			}
			if alive {
				if b := r.BacklogHint(); b > st.Backlog {
					st.Backlog = b
				}
			}
		}
		out[i] = st
	}
	return out
}

// TotalApplied sums the per-group applied counts — the aggregate ordered
// throughput counter the scaling experiments measure.
func (s *Store) TotalApplied() int64 {
	var total int64
	for _, st := range s.Status() {
		total += st.Applied
	}
	return total
}
