package shard

// Live-runtime cross-shard transaction audit, meant to run under -race:
// many client goroutines coordinate 2PC transactions through
// Store.ExecuteTxn against real replica goroutines while members crash
// and restart, and afterwards ResolveStranded plus a counting audit
// prove no transaction was lost, duplicated, or half-applied. The
// deterministic window cases (a branch stranded with no decision, a
// decision recorded but never fanned out) run as their own test below.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/livenet"
	"robuststore/internal/paxos"
)

// txnKVMachine is kvMachine plus the staging capability: branches on
// "veto/…" keys vote no, so the suite exercises real abort decisions,
// not just crash-induced ones.
type txnKVMachine struct {
	kvMachine
}

func (m *txnKVMachine) StageTxn(action any) string {
	if a, ok := action.(kvAction); ok && strings.HasPrefix(a.Key, "veto/") {
		return "veto key refuses to stage"
	}
	return ""
}

var _ core.TxnStager = (*txnKVMachine)(nil)

// txnLiveStore builds a 2-group live-runtime store with fast consensus
// timeouts and boots both groups.
func txnLiveStore(t *testing.T) (*livenet.Cluster, *Store) {
	t.Helper()
	cluster := livenet.New(livenet.Config{Latency: 100 * time.Microsecond})
	store := New(cluster, Config{
		Shards:  2,
		Machine: func(int) core.StateMachine { return &txnKVMachine{kvMachine{counts: map[string]int64{}}} },
		Core: core.Config{
			CheckpointInterval: time.Second,
			Paxos: paxos.Config{
				HeartbeatInterval: 20 * time.Millisecond,
				LeaderTimeout:     150 * time.Millisecond,
				SweepInterval:     10 * time.Millisecond,
				BatchDelay:        time.Millisecond,
			},
		},
	})
	cluster.StartAll()
	for g := 0; g < 2; g++ {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		if _, err := s_exec(store, ctx, g, kvAction{Key: fmt.Sprintf("boot/%d", g)}); err != nil {
			cancel()
			t.Fatalf("group %d never became ready: %v", g, err)
		}
		cancel()
	}
	return cluster, store
}

// s_exec orders one action on group g (test shorthand over the internal
// retry loop ExecuteTxn itself uses).
func s_exec(s *Store, ctx context.Context, g int, action any) (any, error) {
	return s.executeOnGroup(ctx, g, action)
}

// groupCounts snapshots one ready replica's machine state on group g via
// the executor (the machine is goroutine-confined; Inspect is the only
// race-safe read).
func groupCounts(t *testing.T, s *Store, g int) map[string]int64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		grp := s.Group(g)
		for m := 0; m < len(grp.Members()); m++ {
			r := grp.Replica(m)
			if r == nil || !r.Ready() {
				continue
			}
			ch := make(chan map[string]int64, 1)
			if !r.Inspect(func(sm core.StateMachine) {
				src := sm.(*txnKVMachine).counts
				cp := make(map[string]int64, len(src))
				for k, v := range src {
					cp[k] = v
				}
				ch <- cp
			}) {
				continue
			}
			select {
			case cp := <-ch:
				return cp
			case <-time.After(2 * time.Second):
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("group %d: no ready replica to audit", g)
	return nil
}

// preparedOnGroup reports the prepared-branch count on one ready replica
// of group g.
func preparedOnGroup(t *testing.T, s *Store, g int) int {
	t.Helper()
	grp := s.Group(g)
	for m := 0; m < len(grp.Members()); m++ {
		r := grp.Replica(m)
		if r == nil || !r.Ready() {
			continue
		}
		ch := make(chan int, 1)
		if !r.Inspect(func(core.StateMachine) { ch <- len(r.PreparedTxns()) }) {
			continue
		}
		select {
		case n := <-ch:
			return n
		case <-time.After(2 * time.Second):
		}
	}
	return 0
}

// eventually polls cond until it holds or the timeout lapses.
func eventually(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(25 * time.Millisecond)
	}
	return cond()
}

// TestExecuteTxnLivenetAtomicityUnderCrashes is the -race audit: 40
// concurrent cross-shard transactions (every fifth carrying a branch
// that votes no) while one member of each group crashes and restarts
// repeatedly. After ResolveStranded drains the wreckage, every
// transaction must be atomic: a reported commit applied exactly once on
// both groups, a reported abort applied nowhere, an unknown outcome
// (coordinator error) applied on both groups or on neither.
func TestExecuteTxnLivenetAtomicityUnderCrashes(t *testing.T) {
	cluster, store := txnLiveStore(t)
	defer cluster.Close()

	const txns = 40
	key := func(i, g int) string { return fmt.Sprintf("txn/%d/g%d", i, g) }
	type result struct {
		commit bool
		err    error
		keys   map[int]string // group → counted key
		vetoed bool
	}
	results := make([]result, txns)

	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for round := 0; round < 3; round++ {
			for g := 0; g < 2; g++ {
				v := store.Group(g).Members()[2]
				cluster.Crash(v)
				time.Sleep(250 * time.Millisecond)
				cluster.Restart(v)
				time.Sleep(250 * time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := 0; i < txns; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r := result{keys: map[int]string{0: key(i, 0), 1: key(i, 1)}, vetoed: i%5 == 4}
			if r.vetoed {
				r.keys[1] = fmt.Sprintf("veto/%d", i)
			}
			branches := map[int]TxnBranch{}
			for g, k := range r.keys {
				branches[g] = TxnBranch{Action: kvAction{Key: k}, Keys: []string{k}}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			r.commit, r.err = store.ExecuteTxn(ctx, fmt.Sprintf("txn-%d", i), i%2, branches)
			results[i] = r
		}()
	}
	wg.Wait()
	<-chaosDone

	// Drain every stranded branch; converge to two consecutive clean scans.
	rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer rcancel()
	for clean := 0; clean < 2; {
		n, err := store.ResolveStranded(rctx)
		if err != nil {
			t.Fatalf("ResolveStranded: %v", err)
		}
		if n == 0 {
			clean++
		} else {
			clean = 0
		}
		time.Sleep(100 * time.Millisecond)
	}

	committed := 0
	for i, r := range results {
		c0 := func() map[string]int64 { return groupCounts(t, store, 0) }
		c1 := func() map[string]int64 { return groupCounts(t, store, 1) }
		k0, k1 := r.keys[0], r.keys[1]
		switch {
		case r.err == nil && r.commit:
			committed++
			if r.vetoed {
				t.Errorf("txn %d committed despite a vetoing branch", i)
			}
			if !eventually(5*time.Second, func() bool { return c0()[k0] == 1 && c1()[k1] == 1 }) {
				t.Errorf("txn %d: committed but applied g0=%d g1=%d (want 1/1)", i, c0()[k0], c1()[k1])
			}
		case r.err == nil && !r.commit:
			if n0, n1 := c0()[k0], c1()[k1]; n0 != 0 || n1 != 0 {
				t.Errorf("txn %d: aborted but applied g0=%d g1=%d (want 0/0)", i, n0, n1)
			}
		default:
			// Coordinator-side error: the outcome is whatever the decision
			// state says — the audit only demands agreement.
			if !eventually(5*time.Second, func() bool { return c0()[k0] == c1()[k1] }) {
				t.Errorf("txn %d: unknown outcome diverged: g0=%d g1=%d", i, c0()[k0], c1()[k1])
			}
		}
		if n0, n1 := groupCounts(t, store, 0)[k0], groupCounts(t, store, 1)[k1]; n0 > 1 || n1 > 1 {
			t.Errorf("txn %d duplicated: g0=%d g1=%d", i, n0, n1)
		}
	}
	if committed == 0 {
		t.Error("no transaction committed — the audit exercised nothing")
	}
	for g := 0; g < 2; g++ {
		if n := preparedOnGroup(t, store, g); n != 0 {
			t.Errorf("group %d still stages %d prepared branch(es) after ResolveStranded", g, n)
		}
	}
}

// TestResolveStrandedLivenet pins the two deterministic recovery
// windows: a branch prepared with no decision resolves as presumed
// abort (and the late real decision loses the first-writer race), and a
// recorded commit whose fanout never ran is applied by the resolver.
func TestResolveStrandedLivenet(t *testing.T) {
	cluster, store := txnLiveStore(t)
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	prepare := func(id string, key string) {
		t.Helper()
		res, err := s_exec(store, ctx, 1, core.TxnPrepare{
			ID: id, Home: 0, Action: kvAction{Key: key}, Keys: []string{key}})
		if err != nil {
			t.Fatalf("prepare %s: %v", id, err)
		}
		if vr, ok := res.(core.TxnVoteResult); !ok || !vr.Prepared {
			t.Fatalf("prepare %s voted no: %+v", id, res)
		}
	}

	// Window 1: prepared, coordinator gone before any decision.
	prepare("stranded-abort", "s/abort")
	// Window 2: decision recorded commit, fanout never ran.
	prepare("stranded-commit", "s/commit")
	if res, err := s_exec(store, ctx, 0, core.TxnDecision{ID: "stranded-commit", Commit: true}); err != nil {
		t.Fatalf("decision: %v", err)
	} else if dr := res.(core.TxnDecisionResult); !dr.Commit || !dr.First {
		t.Fatalf("decision not recorded as first-writer commit: %+v", dr)
	}
	if n := preparedOnGroup(t, store, 1); n != 2 {
		t.Fatalf("group 1 stages %d branches, want 2", n)
	}

	n, err := store.ResolveStranded(ctx)
	if err != nil {
		t.Fatalf("ResolveStranded: %v", err)
	}
	if n != 2 {
		t.Errorf("resolved %d branches, want 2", n)
	}

	if !eventually(5*time.Second, func() bool {
		c := groupCounts(t, store, 1)
		return c["s/abort"] == 0 && c["s/commit"] == 1
	}) {
		c := groupCounts(t, store, 1)
		t.Errorf("resolution applied wrong outcomes: abort-key=%d (want 0), commit-key=%d (want 1)",
			c["s/abort"], c["s/commit"])
	}
	if n := preparedOnGroup(t, store, 1); n != 0 {
		t.Errorf("group 1 still stages %d branches after resolution", n)
	}

	// The abandoned coordinator's real commit arrives late: first writer
	// (the resolver's presumed abort) already won.
	res, err := s_exec(store, ctx, 0, core.TxnDecision{ID: "stranded-abort", Commit: true})
	if err != nil {
		t.Fatalf("late decision: %v", err)
	}
	if dr := res.(core.TxnDecisionResult); dr.Commit || dr.First {
		t.Errorf("late commit decision should lose the first-writer race, got %+v", dr)
	}
	if c := groupCounts(t, store, 1)["s/abort"]; c != 0 {
		t.Errorf("presumed-aborted branch applied %d times after the late commit attempt", c)
	}
}
