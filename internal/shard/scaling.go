package shard

import (
	"fmt"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/paxos"
	"robuststore/internal/sim"
)

// This file is the shard-count scaling experiment: a fixed offered load
// of small ordered actions is hashed across the store's groups on the
// deterministic simulator, and aggregate committed-actions/sec is
// measured. One Paxos group's ordered throughput is capped by its WAL
// group-commit pipeline (disk flush latency × in-flight values × batch
// size); sharding multiplies the number of independent pipelines, which
// is the throughput-vs-shard-count curve bench_test.go reports.

// ThroughputConfig parameterizes one scaling measurement.
type ThroughputConfig struct {
	// Shards is the group count under test.
	Shards int

	// Replicas per group. Default 3.
	Replicas int

	// Offered is the total offered load in actions/second, spread
	// uniformly over Keys partition keys. Default 8000.
	Offered int

	// Keys is the number of distinct partition keys. Default 512.
	Keys int

	// Warmup precedes the measurement (leader election, first flushes).
	// Default 2 s.
	Warmup time.Duration

	// Measure is the measurement interval. Default 10 s.
	Measure time.Duration

	// Seed fixes the simulation.
	Seed uint64

	// Paxos, when non-zero (detected by MaxBatchCmds ≠ 0), overrides the
	// per-group ordering pipeline — batch window, pipeline depth, WAL
	// SyncMode — so experiments can sweep proposer configurations
	// (internal/exp's batching curve). Zero keeps the reference pipeline
	// used by the shard-scaling benchmark.
	Paxos paxos.Config

	// Disk, when non-zero, overrides the simulated disk of every node.
	Disk sim.DiskConfig
}

func (c ThroughputConfig) withDefaults() ThroughputConfig {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Offered == 0 {
		c.Offered = 8000
	}
	if c.Keys == 0 {
		c.Keys = 512
	}
	if c.Warmup == 0 {
		c.Warmup = 2 * time.Second
	}
	if c.Measure == 0 {
		c.Measure = 10 * time.Second
	}
	return c
}

// ThroughputResult reports one measurement.
type ThroughputResult struct {
	Shards    int
	Offered   int     // actions/second offered
	Committed int64   // actions ordered and applied during Measure
	PerSec    float64 // Committed / Measure
	PerShard  []int64 // per-group committed counts (balance check)
}

// counterMachine is the minimal deterministic state machine: it counts
// applied actions, isolating the measurement to the ordering pipeline.
type counterMachine struct {
	n int64
}

func (m *counterMachine) Execute(any) any { m.n++; return m.n }

func (m *counterMachine) Snapshot() (any, int64) { return m.n, 8 }

func (m *counterMachine) Restore(data any) { m.n, _ = data.(int64) }

// throughputAction is the unit of offered load.
type throughputAction struct {
	Key int32
}

// MeasureThroughput runs one offered-load experiment on a fresh simulated
// cluster and returns the committed-actions/sec it sustained.
func MeasureThroughput(cfg ThroughputConfig) ThroughputResult {
	cfg = cfg.withDefaults()
	pcfg := cfg.Paxos
	if pcfg.MaxBatchCmds == 0 {
		// The reference per-group ordering pipeline: a short batch window
		// with bounded batch size and in-flight values, so one group's
		// throughput is governed by its WAL flush rate rather than
		// unbounded batching. The batching experiment overrides this via
		// ThroughputConfig.Paxos to sweep SyncMode × pipeline depth.
		pcfg = paxos.Config{
			BatchDelay:   time.Millisecond,
			MaxBatchCmds: 8,
			MaxInFlight:  4,
		}
	}
	s := sim.New(sim.Config{Seed: cfg.Seed, Disk: cfg.Disk})
	store := New(s, Config{
		Shards:   cfg.Shards,
		Replicas: cfg.Replicas,
		Machine:  func(int) core.StateMachine { return &counterMachine{} },
		Core: core.Config{
			// Checkpoints off the measurement path.
			CheckpointInterval: time.Hour,
			ActionSize:         func(any) int64 { return 160 },
			Paxos:              pcfg,
		},
	})
	s.StartAll()

	// Offered load: every tick submits a deterministic round-robin slice
	// of the key space. 2 ms ticks keep per-event work small while
	// holding the configured aggregate rate.
	const tick = 2 * time.Millisecond
	perTick := cfg.Offered * int(tick) / int(time.Second)
	if perTick < 1 {
		perTick = 1
	}
	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key/%d", i)
	}
	next := 0
	var pump func()
	pump = func() {
		for i := 0; i < perTick; i++ {
			k := next % len(keys)
			next++
			store.Submit(keys[k], throughputAction{Key: int32(k)}, nil)
		}
		s.After(tick, pump)
	}
	s.After(0, pump)

	s.RunFor(cfg.Warmup)
	startPer := make([]int64, cfg.Shards)
	for i, st := range store.Status() {
		startPer[i] = st.Applied
	}
	s.RunFor(cfg.Measure)

	res := ThroughputResult{
		Shards:   cfg.Shards,
		Offered:  cfg.Offered,
		PerShard: make([]int64, cfg.Shards),
	}
	for i, st := range store.Status() {
		res.PerShard[i] = st.Applied - startPer[i]
		res.Committed += res.PerShard[i]
	}
	res.PerSec = float64(res.Committed) / cfg.Measure.Seconds()
	return res
}
