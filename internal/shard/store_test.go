package shard

import (
	"fmt"
	"testing"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/sim"
)

// seqMachine records applied actions in order (test fixture).
type seqMachine struct {
	log []string
}

func (m *seqMachine) Execute(action any) any {
	m.log = append(m.log, action.(string))
	return len(m.log)
}

func (m *seqMachine) Snapshot() (any, int64) {
	cp := append([]string(nil), m.log...)
	return cp, int64(16 * len(cp))
}

func (m *seqMachine) Restore(data any) {
	m.log = append([]string(nil), data.([]string)...)
}

// driveWorkload submits n actions at 10 ms intervals through submit and
// returns the observed results in submission order (0 where the action's
// completion was never reported).
func driveWorkload(s *sim.Sim, n int, submit func(key string, action any, done func(any, error))) []int {
	results := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		at := time.Second + time.Duration(i*10)*time.Millisecond
		s.At(s.Now().Add(at), func() {
			key := fmt.Sprintf("key/%d", i%17)
			submit(key, fmt.Sprintf("action-%d", i), func(result any, err error) {
				if err == nil {
					results[i] = result.(int)
				}
			})
		})
	}
	return results
}

// TestSingleShardMatchesUnshardedPath: a 1-shard Store must produce
// results identical to the pre-existing unsharded deployment — the same
// hand-built core.Replica cluster the seed code used — under the same
// seed and workload: same per-action results, same applied logs.
func TestSingleShardMatchesUnshardedPath(t *testing.T) {
	const replicas, actions = 3, 120

	// Unsharded baseline: replicas added by hand, Members defaulted.
	base := sim.New(sim.Config{Seed: 7})
	baseReps := make([]*core.Replica, replicas)
	baseMachines := make([]*seqMachine, replicas)
	for i := 0; i < replicas; i++ {
		idx := i
		base.AddNode(func() env.Node {
			r := core.NewReplica(core.Config{
				Machine: func() core.StateMachine {
					m := &seqMachine{}
					baseMachines[idx] = m
					return m
				},
			})
			baseReps[idx] = r
			return r
		})
	}
	base.StartAll()
	baseResults := driveWorkload(base, actions, func(_ string, action any, done func(any, error)) {
		baseReps[0].Submit(action, done)
	})
	base.RunFor(10 * time.Second)

	// 1-shard Store on an identically seeded simulator.
	ssim := sim.New(sim.Config{Seed: 7})
	store := New(ssim, Config{
		Shards:   1,
		Replicas: replicas,
		Machine:  func(int) core.StateMachine { return &seqMachine{} },
	})
	ssim.StartAll()
	storeResults := driveWorkload(ssim, actions, store.Submit)
	ssim.RunFor(10 * time.Second)

	for i := range baseResults {
		if baseResults[i] != storeResults[i] {
			t.Fatalf("action %d: unsharded result %d, 1-shard store result %d",
				i, baseResults[i], storeResults[i])
		}
	}
	for i := 0; i < replicas; i++ {
		baseLog := baseMachines[i].log
		storeLog := store.Group(0).Replica(i).Machine().(*seqMachine).log
		if len(baseLog) != len(storeLog) {
			t.Fatalf("replica %d: unsharded applied %d actions, 1-shard store %d",
				i, len(baseLog), len(storeLog))
		}
		for k := range baseLog {
			if baseLog[k] != storeLog[k] {
				t.Fatalf("replica %d: logs diverge at %d: %q vs %q",
					i, k, baseLog[k], storeLog[k])
			}
		}
	}
	if len(baseMachines[0].log) == 0 {
		t.Fatal("workload made no progress")
	}
}

// TestStorePartitionsByKey: with several shards, each group applies
// exactly the actions whose keys route to it — every key lands on
// exactly one group, and together the groups apply everything once.
func TestStorePartitionsByKey(t *testing.T) {
	const shards, actions = 4, 200
	s := sim.New(sim.Config{Seed: 11})
	store := New(s, Config{
		Shards:  shards,
		Machine: func(int) core.StateMachine { return &seqMachine{} },
	})
	s.StartAll()

	want := make([]map[string]bool, shards)
	for g := range want {
		want[g] = make(map[string]bool)
	}
	for i := 0; i < actions; i++ {
		i := i
		key := fmt.Sprintf("key/%d", i)
		action := fmt.Sprintf("action-%d", i)
		want[store.ShardOf(key)][action] = true
		s.At(s.Now().Add(time.Second+time.Duration(i*5)*time.Millisecond), func() {
			store.Submit(key, action, nil)
		})
	}
	s.RunFor(15 * time.Second)

	for g := 0; g < shards; g++ {
		log := store.Group(g).Replica(0).Machine().(*seqMachine).log
		if len(log) != len(want[g]) {
			t.Fatalf("shard %d applied %d actions, want %d", g, len(log), len(want[g]))
		}
		for _, a := range log {
			if !want[g][a] {
				t.Fatalf("shard %d applied %q, which routes elsewhere", g, a)
			}
		}
		// All members of the group agree.
		for m := 1; m < store.cfg.Replicas; m++ {
			other := store.Group(g).Replica(m).Machine().(*seqMachine).log
			if len(other) != len(log) {
				t.Fatalf("shard %d member %d applied %d actions, member 0 %d",
					g, m, len(other), len(log))
			}
		}
	}
}

// TestStoreSurvivesMemberCrash: one member of one group crashes and
// recovers mid-run; the store keeps serving the whole key space and the
// recovered member converges.
func TestStoreSurvivesMemberCrash(t *testing.T) {
	const shards, actions = 2, 300
	s := sim.New(sim.Config{Seed: 3})
	store := New(s, Config{
		Shards:  shards,
		Machine: func(int) core.StateMachine { return &seqMachine{} },
		Core:    core.Config{CheckpointInterval: 2 * time.Second},
	})
	s.StartAll()

	results := driveWorkload(s, actions, store.Submit)
	victim := store.Group(0).Members()[0]
	s.At(s.Now().Add(1500*time.Millisecond), func() { s.Crash(victim) })
	s.At(s.Now().Add(3500*time.Millisecond), func() { s.Restart(victim) })
	s.RunFor(20 * time.Second)

	applied := 0
	for _, r := range results {
		if r > 0 {
			applied++
		}
	}
	// Submissions routed to the crashed member before the proxy layer
	// notices may be lost; the bulk must still commit.
	if applied < actions*3/4 {
		t.Fatalf("only %d/%d actions committed across the crash", applied, actions)
	}
	for g := 0; g < shards; g++ {
		ref := store.Group(g).Replica(0).Machine().(*seqMachine).log
		for m := 1; m < store.cfg.Replicas; m++ {
			other := store.Group(g).Replica(m).Machine().(*seqMachine).log
			if len(other) != len(ref) {
				t.Fatalf("shard %d member %d has %d actions, member 0 has %d (no convergence)",
					g, m, len(other), len(ref))
			}
		}
	}
	st := store.Status()
	if st[0].Ready != store.cfg.Replicas || st[1].Ready != store.cfg.Replicas {
		t.Fatalf("expected all members ready after recovery, got %+v", st)
	}
}

// TestStoreStatusAndCheckpoint exercises the aggregate facade: per-shard
// status, TotalApplied, and the fan-out checkpoint.
func TestStoreStatusAndCheckpoint(t *testing.T) {
	s := sim.New(sim.Config{Seed: 5})
	store := New(s, Config{
		Shards:  3,
		Machine: func(int) core.StateMachine { return &seqMachine{} },
	})
	s.StartAll()
	results := driveWorkload(s, 90, store.Submit)
	s.RunFor(10 * time.Second)

	var committed int64
	for _, r := range results {
		if r > 0 {
			committed++
		}
	}
	if got := store.TotalApplied(); got != committed {
		t.Fatalf("TotalApplied = %d, committed results = %d", got, committed)
	}
	leaders := 0
	for _, gs := range store.Status() {
		if gs.Ready != store.cfg.Replicas {
			t.Errorf("shard %d: ready = %d, want %d", gs.Shard, gs.Ready, store.cfg.Replicas)
		}
		if gs.Leader >= 0 {
			leaders++
		}
		if gs.Backlog != 0 {
			t.Errorf("shard %d: backlog = %d after quiesce", gs.Shard, gs.Backlog)
		}
	}
	if leaders != 3 {
		t.Errorf("leader map has %d leaders, want one per shard (3)", leaders)
	}

	done := false
	s.At(s.Now(), func() { store.Checkpoint(func() { done = true }) })
	s.RunFor(5 * time.Second)
	if !done {
		t.Fatal("Checkpoint completion callback never ran")
	}
}

// slowSnapMachine reports a huge snapshot size so the simulated disk
// write takes several seconds — long enough to crash a member while its
// checkpoint is still in flight.
type slowSnapMachine struct{ seqMachine }

func (m *slowSnapMachine) Snapshot() (any, int64) {
	data, _ := m.seqMachine.Snapshot()
	return data, 450e6 // ≈10 s at the default 45 MB/s write bandwidth
}

// TestCheckpointSurvivesMidCheckpointCrash: a member killed while its
// snapshot is on the disk loses the storage completion with the rest of
// its volatile state; Store.Checkpoint must notice and still complete
// instead of hanging forever.
func TestCheckpointSurvivesMidCheckpointCrash(t *testing.T) {
	s := sim.New(sim.Config{Seed: 9})
	store := New(s, Config{
		Shards:  2,
		Machine: func(int) core.StateMachine { return &slowSnapMachine{} },
	})
	s.StartAll()
	driveWorkload(s, 40, store.Submit)
	s.RunFor(5 * time.Second)

	victim := store.Group(0).Members()[1]
	done := false
	s.At(s.Now(), func() { store.Checkpoint(func() { done = true }) })
	s.At(s.Now().Add(time.Second), func() { s.Crash(victim) })
	s.RunFor(30 * time.Second)
	if !done {
		t.Fatal("Checkpoint hung after a member crashed mid-checkpoint")
	}

	// A second checkpoint with the victim still down completes too (dead
	// members are simply not targets).
	done = false
	s.At(s.Now(), func() { store.Checkpoint(func() { done = true }) })
	s.RunFor(60 * time.Second)
	if !done {
		t.Fatal("Checkpoint with a dead member never completed")
	}
}
