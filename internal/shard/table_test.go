package shard

import (
	"encoding/json"
	"fmt"
	"testing"
)

// goldenKeys are the pinned keys of the historical router golden test,
// plus the routing vocabularies of every tier (sessions, carts,
// customers, items).
var goldenKeys = func() []string {
	keys := []string{
		"", "a", "session/1", "session/42", "cart/7", "customer/99", "item/123",
	}
	for i := 0; i < 500; i++ {
		keys = append(keys,
			fmt.Sprintf("session/%d", i),
			fmt.Sprintf("cart/%d", i),
			fmt.Sprintf("customer/%d", i),
			fmt.Sprintf("item/%d", i),
			fmt.Sprintf("key/%d", i),
		)
	}
	return keys
}()

// TestTableEpoch0MatchesModN is the refactor's no-stranded-keys proof: a
// table-driven sweep asserting the epoch-0 RoutingTable reproduces the
// historical hash%N mapping bit for bit, for every shard count the
// deployments use, over the golden key set.
func TestTableEpoch0MatchesModN(t *testing.T) {
	for n := 1; n <= 8; n++ {
		tab := NewRoutingTable(n)
		if tab.Epoch != 0 {
			t.Fatalf("NewRoutingTable(%d).Epoch = %d, want 0", n, tab.Epoch)
		}
		if tab.Groups() != n {
			t.Fatalf("NewRoutingTable(%d).Groups() = %d", n, tab.Groups())
		}
		for _, key := range goldenKeys {
			want := int(Hash(key) % uint64(n))
			if got := tab.Group(key); got != want {
				t.Fatalf("n=%d: epoch-0 table routes %q to %d, hash%%N says %d (key stranded)",
					n, key, got, want)
			}
		}
	}
}

// TestTableEpoch0MatchesRouterGolden re-pins the concrete assignments of
// the historical router golden test against the table, so both layers
// share one source of truth.
func TestTableEpoch0MatchesRouterGolden(t *testing.T) {
	cases := []struct {
		key    string
		shards int
		want   int
	}{
		{"", 2, 1}, {"", 4, 1}, {"", 8, 5},
		{"a", 2, 0}, {"a", 4, 0}, {"a", 8, 4},
		{"session/1", 2, 1}, {"session/1", 4, 3}, {"session/1", 8, 3},
		{"session/42", 2, 0}, {"session/42", 4, 2}, {"session/42", 8, 2},
		{"cart/7", 2, 1}, {"cart/7", 4, 1}, {"cart/7", 8, 5},
		{"customer/99", 2, 0}, {"customer/99", 4, 0}, {"customer/99", 8, 0},
		{"item/123", 2, 1}, {"item/123", 4, 1}, {"item/123", 8, 5},
	}
	for _, c := range cases {
		if got := NewRoutingTable(c.shards).Group(c.key); got != c.want {
			t.Errorf("NewRoutingTable(%d).Group(%q) = %d, want %d", c.shards, c.key, got, c.want)
		}
	}
	// Integer and string routing of the same key agree.
	tab := NewRoutingTable(8)
	for _, id := range []int64{0, 1, 42, 99, 123456789} {
		if tab.GroupInt(id) != tab.Group(fmt.Sprintf("%d", id)) {
			t.Errorf("GroupInt(%d) disagrees with Group of its decimal form", id)
		}
	}
}

// TestTableGrow: growing N→N+1 moves exactly the new group's fair share,
// every moved slice lands on the new group, every unmoved slice keeps its
// owner, and the result is balanced.
func TestTableGrow(t *testing.T) {
	for n := 1; n <= 6; n++ {
		tab := NewRoutingTable(n)
		next, moved := tab.Grow(n)
		if next.Epoch != tab.Epoch+1 {
			t.Fatalf("n=%d: Grow epoch %d, want %d", n, next.Epoch, tab.Epoch+1)
		}
		if want := tab.Slices() / (n + 1); len(moved) != want {
			t.Fatalf("n=%d: moved %d slices, want %d", n, len(moved), want)
		}
		movedSet := map[int]bool{}
		for _, s := range moved {
			movedSet[s] = true
			if next.Assign[s] != n {
				t.Fatalf("n=%d: moved slice %d assigned to %d, not the new group", n, s, next.Assign[s])
			}
		}
		counts := make([]int, n+1)
		for s, g := range next.Assign {
			counts[g]++
			if !movedSet[s] && g != tab.Assign[s] {
				t.Fatalf("n=%d: unmoved slice %d changed owner %d→%d", n, s, tab.Assign[s], g)
			}
		}
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1+n {
			t.Errorf("n=%d: post-grow slice counts unbalanced: %v", n, counts)
		}
		// Determinism: growing again from the same table gives the same
		// result.
		next2, moved2 := tab.Grow(n)
		if !next.Equal(next2) || len(moved) != len(moved2) {
			t.Fatalf("n=%d: Grow is not deterministic", n)
		}
	}
}

// TestTableGrowChain: repeated growth 1→6 keeps the mapping total and the
// per-group shares within one slice-per-group of fair.
func TestTableGrowChain(t *testing.T) {
	tab := NewRoutingTable(1)
	for n := 1; n <= 5; n++ {
		tab, _ = tab.Grow(n)
		if tab.Groups() != n+1 {
			t.Fatalf("after grow #%d: %d groups", n, tab.Groups())
		}
		if err := tab.validate(); err != nil {
			t.Fatalf("after grow #%d: %v", n, err)
		}
	}
	if tab.Epoch != 5 {
		t.Fatalf("epoch after 5 grows = %d", tab.Epoch)
	}
}

// TestTableEncodingRoundTrip pins the binary and JSON encodings on
// concrete tables (the fuzz test widens this).
func TestTableEncodingRoundTrip(t *testing.T) {
	tabs := []RoutingTable{NewRoutingTable(1), NewRoutingTable(4)}
	grown, _ := NewRoutingTable(3).Grow(3)
	tabs = append(tabs, grown)
	for _, tab := range tabs {
		dec, err := DecodeTable(EncodeTable(tab))
		if err != nil {
			t.Fatalf("binary round trip of %d-group table: %v", tab.Groups(), err)
		}
		if !dec.Equal(tab) {
			t.Fatalf("binary round trip changed the table")
		}
		js, err := json.Marshal(tab)
		if err != nil {
			t.Fatal(err)
		}
		var jdec RoutingTable
		if err := json.Unmarshal(js, &jdec); err != nil {
			t.Fatal(err)
		}
		if !jdec.Equal(tab) {
			t.Fatalf("JSON round trip changed the table")
		}
	}
	// Corruption is detected.
	enc := EncodeTable(NewRoutingTable(4))
	enc[7] ^= 0x40
	if _, err := DecodeTable(enc); err == nil {
		t.Fatal("corrupt table decoded without error")
	}
	if _, err := DecodeTable(nil); err == nil {
		t.Fatal("empty input decoded without error")
	}
}
