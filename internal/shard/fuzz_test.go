package shard

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzTableRoundTrip drives randomized routing tables through both wire
// encodings — the binary manifest form and JSON — and asserts a lossless
// round trip, plus that the decoder never panics or accepts corrupt input
// silently (the table is durable routing state; a silently-misdecoded
// assignment would strand keys). The sibling of tpcw's FuzzRoundTrip for
// the routing layer.
func FuzzTableRoundTrip(f *testing.F) {
	f.Add(uint(1), int64(0), uint(0), []byte(nil))
	f.Add(uint(4), int64(0), uint(0), []byte(nil))
	f.Add(uint(3), int64(7), uint(5), []byte{0xff, 0x00})
	f.Add(uint(8), int64(1), uint(200), []byte("rtb1junk"))

	f.Fuzz(func(t *testing.T, groups uint, epoch int64, grows uint, raw []byte) {
		// A structurally valid table: fresh, epoch-shifted, then grown a
		// few times so non-trivial assignments are covered.
		n := int(groups%8) + 1
		tab := NewRoutingTable(n)
		if epoch < 0 {
			epoch = -epoch
		}
		tab.Epoch = epoch % (1 << 40)
		for i := uint(0); i < grows%4; i++ {
			tab, _ = tab.Grow(tab.Groups())
		}

		enc := EncodeTable(tab)
		dec, err := DecodeTable(enc)
		if err != nil {
			t.Fatalf("decode of a freshly encoded table failed: %v", err)
		}
		if !dec.Equal(tab) {
			t.Fatalf("binary round trip changed the table: %+v vs %+v", tab, dec)
		}
		// Re-encoding the decoded table is byte-identical (canonical
		// form — manifests are compared and checksummed by bytes).
		if !bytes.Equal(enc, EncodeTable(dec)) {
			t.Fatal("re-encoding is not canonical")
		}

		js, err := json.Marshal(tab)
		if err != nil {
			t.Fatalf("json encode: %v", err)
		}
		var jdec RoutingTable
		if err := json.Unmarshal(js, &jdec); err != nil {
			t.Fatalf("json decode of freshly encoded table: %v", err)
		}
		if !jdec.Equal(tab) {
			t.Fatal("JSON round trip changed the table")
		}

		// Arbitrary bytes must never panic, and any accepted decode must
		// be structurally valid.
		if got, err := DecodeTable(raw); err == nil {
			if err := got.validate(); err != nil {
				t.Fatalf("decoder accepted an invalid table: %v", err)
			}
		}
		var jraw RoutingTable
		if err := json.Unmarshal(raw, &jraw); err == nil {
			if err := jraw.validate(); err != nil {
				t.Fatalf("JSON decoder accepted an invalid table: %v", err)
			}
		}

		// Bit-flip corruption of the binary form is detected (CRC).
		if len(enc) > 0 {
			bad := append([]byte(nil), enc...)
			bad[int(groups)%len(bad)] ^= 0x20
			if got, err := DecodeTable(bad); err == nil && got.Equal(tab) && !bytes.Equal(bad, enc) {
				t.Fatal("corrupted encoding decoded to the original table")
			}
		}
	})
}
