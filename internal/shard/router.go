// Package shard partitions a replicated store across N independent Paxos
// groups — the first scaling lever past the paper's single-group design
// (ROADMAP). Each shard is a complete Treplica replicated state machine
// (internal/core over internal/paxos) with its own members, WAL and
// checkpoints; a deterministic key→shard router in front fans requests
// out to the owning group. Groups share nothing, so aggregate ordered
// throughput scales with the shard count until the network saturates.
//
// The partition key is chosen by the caller (internal/tpcw.PartitionKey
// extracts one from bookstore actions; the web tier routes by client
// session). Keys on different shards observe no common order — exactly
// the per-group total order that hash-partitioned stores trade global
// ordering for.
package shard

import "strconv"

// FNV-1a constants (64 bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash returns the 64-bit FNV-1a hash of the partition key.
func Hash(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// Router deterministically maps partition keys to shards. Since the
// epoch-versioned refactor it is a fixed view over an epoch-0
// RoutingTable (see table.go) — the mapping is identical to the
// historical hash%N arithmetic, but routing decisions now flow through
// explicit table state, which is what live migration versions. The zero
// value routes everything to shard 0; construct real routers with
// NewRouter.
type Router struct {
	t RoutingTable
}

// NewRouter returns a router over the epoch-0 table for n shards.
func NewRouter(n int) Router {
	return Router{t: NewRoutingTable(n)}
}

// Table returns the routing table behind this router.
func (r Router) Table() RoutingTable {
	if len(r.t.Assign) == 0 {
		return NewRoutingTable(1)
	}
	return r.t
}

// Shards returns the shard count.
func (r Router) Shards() int {
	if len(r.t.Assign) == 0 {
		return 1
	}
	return r.t.Groups()
}

// Shard returns the shard owning key. Every key maps to exactly one
// shard, and the mapping is stable across processes and runs.
func (r Router) Shard(key string) int {
	if len(r.t.Assign) == 0 {
		return 0
	}
	return r.t.Group(key)
}

// ShardInt routes an integer key (client ID, session ID) by hashing its
// decimal representation, so integer and string callers agree on the
// placement of equal keys.
func (r Router) ShardInt(key int64) int {
	return r.Shard(strconv.FormatInt(key, 10))
}
