package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"robuststore/internal/core"
)

// This file is the live-migration protocol over the epoch-versioned
// routing table: Rebalance adds one Paxos group, computes the next-epoch
// table (Grow), streams the moving hash slices from each source group to
// the new one through the ordered log (keyed snapshot export → ordered
// PartitionImport), and cuts over by atomically publishing the new epoch.
//
// Correctness argument, phase by phase:
//
//   - boot: the new group's members are registered and started; nothing
//     routes to them yet, so the running workload is untouched.
//   - drain: the moving slices are frozen — Submit buffers, Execute backs
//     off — and the per-group in-flight counters drain, so every write
//     that could land on a moving key has been applied on its source.
//     An ordered Noop barrier per source group then fences the log:
//     state read after the barrier contains every pre-freeze write.
//   - copy: each source group exports the rows owned by the slices it is
//     losing (a keyed snapshot, read post-barrier on the member that
//     applied the barrier) and the payload is submitted to the new group
//     as an ordered PartitionImport — every new-group replica applies it
//     at the same log position. Imports are idempotent keyed upserts, so
//     the driver can re-submit when a crash hides a completion.
//   - cutover: the next-epoch table is published with one atomic pointer
//     swap and the buffered submissions flow to their new owners. The
//     client-visible migration window is freeze→cutover and only delays
//     writes to moving keys; reads and all other keys never stall.
//   - cleanup: the source groups drop the moved rows through ordered
//     PartitionDrops (idempotent, retried the same way).
//
// A member crash mid-migration is absorbed by the same mechanisms that
// serve normal traffic: pick() re-targets submissions, the retry sweeps
// re-submit barriers/imports/drops whose completions died with the
// victim, and idempotency makes the re-submission safe.

// Migration phases, in order.
const (
	PhaseBoot    = "boot"    // new group starting, leader electing
	PhaseDrain   = "drain"   // moving slices frozen, sources draining
	PhaseCopy    = "copy"    // keyed snapshots streaming to the new group
	PhaseCleanup = "cleanup" // new epoch live; sources dropping moved rows
	PhaseDone    = "done"
)

// RebalanceOptions parameterizes one Rebalance call.
type RebalanceOptions struct {
	// OnPhase, if non-nil, observes each phase transition (fault
	// injection hooks into this to crash members mid-migration).
	OnPhase func(phase string)

	// Done, if non-nil, runs when the migration has fully completed
	// (cleanup included) or failed to start.
	Done func(err error)
}

// MigrationStatus is a snapshot of the migration state machine.
type MigrationStatus struct {
	Epoch       int64  // routing epoch currently published
	Active      bool   // a migration is in flight (cleanup included)
	Phase       string // current phase ("" when never migrated)
	NewGroup    int    // group index being added
	MovedSlices int    // hash slices changing owner
	TotalSlices int    // hash slices overall

	// StartedAt..CutoverAt is the client-visible migration window: the
	// interval during which writes to moving keys were delayed.
	// CutoverAt is zero while the window is open.
	StartedAt time.Time
	CutoverAt time.Time
}

// Window returns the client-visible migration window, or 0 while open or
// never started.
func (st MigrationStatus) Window() time.Duration {
	if st.StartedAt.IsZero() || st.CutoverAt.IsZero() {
		return 0
	}
	return st.CutoverAt.Sub(st.StartedAt)
}

// Migration returns the current (or last) migration's status. Safe from
// any goroutine.
func (s *Store) Migration() MigrationStatus {
	st := MigrationStatus{Epoch: s.Epoch()}
	m := s.mig.Load()
	if m == nil {
		return st
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st.Active = m.phase != PhaseDone
	st.Phase = m.phase
	st.NewGroup = m.newShard
	st.MovedSlices = len(m.moved)
	st.TotalSlices = len(m.next.Assign)
	st.StartedAt = m.startedAt
	st.CutoverAt = m.cutoverAt
	return st
}

// ErrMigrationActive is returned by Rebalance while a previous migration
// is still in flight.
var ErrMigrationActive = errors.New("shard: a migration is already in flight")

// pendingSubmit is one Submit buffered during the handoff freeze.
type pendingSubmit struct {
	key    string
	action any
	done   func(result any, err error)
}

// migration is the driver state machine. Fields are guarded by mu; the
// driver itself advances through runtime-scheduled callbacks (After) and
// replica-executor completions, so it never blocks an executor.
type migration struct {
	store    *Store
	opts     RebalanceOptions
	newShard int
	newGroup *Group
	prev     RoutingTable
	next     RoutingTable
	moved    []int         // slices moving to the new group
	bySource map[int][]int // source group → its moving slices
	oldPhase int32         // drain phase in force before the freeze

	mu        sync.Mutex
	phase     string          // guarded by mu
	frozen    map[int]bool    // guarded by mu; slice → frozen (handoff in progress)
	queue     []pendingSubmit // guarded by mu
	startedAt time.Time       // guarded by mu
	cutoverAt time.Time       // guarded by mu
	pendingOp map[string]bool // guarded by mu; in-flight ordered ops, by name
	copied    int             // guarded by mu; source groups whose snapshot has imported
	dropped   int             // guarded by mu; source groups whose cleanup has applied
}

// Rebalance adds one Paxos group to the store and live-migrates its share
// of the hash space to it, publishing the next routing epoch at cutover.
// It returns immediately; progress is event-driven (observe it via
// RebalanceOptions or Migration). Requires a Runtime with After (both
// runtimes have it). Safe to call from simulator events or from any
// goroutine on the live runtime.
func (s *Store) Rebalance(opts RebalanceOptions) {
	fail := func(err error) {
		if opts.Done != nil {
			opts.Done(err)
		}
	}
	if _, ok := s.rt.(delayer); !ok {
		fail(errors.New("shard: Rebalance needs a Runtime with After"))
		return
	}
	if _, ok := s.rt.(nower); !ok {
		fail(errors.New("shard: Rebalance needs a Runtime with Now"))
		return
	}
	// One migration at a time: the active check, group registration and
	// publication below are a single serialized step, so two concurrent
	// Rebalance calls cannot both pass the check or lose an append.
	s.rebalMu.Lock()
	defer s.rebalMu.Unlock()
	if m := s.mig.Load(); m != nil {
		m.mu.Lock()
		active := m.phase != PhaseDone
		m.mu.Unlock()
		if active {
			fail(ErrMigrationActive)
			return
		}
	}

	prev := s.Table()
	newShard := s.Shards()
	next, moved := prev.Grow(newShard)
	m := &migration{
		store:     s,
		opts:      opts,
		newShard:  newShard,
		prev:      prev,
		next:      next,
		moved:     moved,
		bySource:  make(map[int][]int),
		phase:     PhaseBoot,
		frozen:    make(map[int]bool),
		pendingOp: make(map[string]bool),
	}
	for _, sl := range moved {
		m.bySource[prev.Assign[sl]] = append(m.bySource[prev.Assign[sl]], sl)
	}

	// Register and boot the new group, then extend the group list. The
	// table still maps nothing to it, so it serves no traffic yet.
	grp := s.buildGroup(newShard)
	for _, id := range grp.ids {
		s.rt.Restart(id)
	}
	m.newGroup = grp
	groups := append(append([]*Group(nil), s.groupList()...), grp)
	s.groups.Store(&groups)
	s.mig.Store(m)
	m.enterPhase(PhaseBoot)
	m.awaitBoot()
}

// --- Driver plumbing ----------------------------------------------------

func (m *migration) after(d time.Duration, fn func()) {
	m.store.rt.(delayer).After(d, fn)
}

func (m *migration) now() time.Time {
	// Rebalance gates on the nower capability, so the assertion cannot
	// fail. Falling back to time.Now here would stamp migration phases
	// with the wall clock inside sim runs — a nondeterminism leak the
	// walltime analyzer rejects.
	return m.store.rt.(nower).Now()
}

func (m *migration) enterPhase(phase string) {
	m.mu.Lock()
	m.phase = phase
	m.mu.Unlock()
	if m.opts.OnPhase != nil {
		m.opts.OnPhase(phase)
	}
}

// sliceFrozen reports whether a hash slice is held mid-handoff.
func (m *migration) sliceFrozen(slice int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frozen[slice]
}

// defer_ buffers one frozen-slice submission until cutover. It reports
// false if the freeze lifted concurrently (the caller then routes through
// the published table).
func (m *migration) defer_(key string, action any, done func(any, error)) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.frozen[m.next.SliceOf(key)] {
		return false
	}
	m.queue = append(m.queue, pendingSubmit{key: key, action: action, done: done})
	return true
}

// orderedOp submits one ordered action to grp until a completion is
// observed, then calls then(replica) on the completing replica's
// executor, exactly once. Submissions that die with a crashed member are
// re-issued by a sweep; the actions involved (Noop, PartitionImport,
// PartitionDrop) are idempotent, so a resubmission racing a hidden
// completion is safe.
func (m *migration) orderedOp(name string, grp *Group, action func() any, then func(r *core.Replica)) {
	m.mu.Lock()
	m.pendingOp[name] = true
	m.mu.Unlock()
	complete := func(r *core.Replica) {
		m.mu.Lock()
		first := m.pendingOp[name]
		delete(m.pendingOp, name)
		m.mu.Unlock()
		if first {
			then(r)
		}
	}
	var attempt func()
	attempt = func() {
		m.mu.Lock()
		pending := m.pendingOp[name]
		m.mu.Unlock()
		if !pending {
			return
		}
		if r := grp.pick(); r != nil {
			r.SubmitFrom(action(), func(_ any, err error) {
				if err == nil {
					complete(r)
				}
			})
		}
		m.after(500*time.Millisecond, attempt)
	}
	attempt()
}

// --- Phases -------------------------------------------------------------

// awaitBoot polls until the new group has a ready member that observed an
// elected leader, then freezes the moving slices.
func (m *migration) awaitBoot() {
	if r := m.newGroup.pick(); r != nil && r.HasLeader() {
		m.freeze()
		return
	}
	m.after(20*time.Millisecond, m.awaitBoot)
}

// freeze opens the migration window: writes to moving slices buffer from
// here until cutover. Flipping the drain phase after setting the freeze
// makes the old phase's in-flight counters strictly draining: new
// Executes charge the other phase (and moving-key ones back off at their
// re-check), so the drain wait is bounded even under sustained load.
func (m *migration) freeze() {
	m.mu.Lock()
	for _, sl := range m.moved {
		m.frozen[sl] = true
	}
	m.startedAt = m.now()
	m.mu.Unlock()
	m.oldPhase = m.store.drainPhase.Load()
	m.store.drainPhase.Store(1 - m.oldPhase)
	m.enterPhase(PhaseDrain)
	m.awaitDrain()
}

// awaitDrain waits for every source group's pre-freeze in-flight Execute
// count to reach zero, then fences each source log with an ordered
// barrier.
func (m *migration) awaitDrain() {
	groups := m.store.groupList()
	for g := range m.bySource {
		if groups[g].inflight[m.oldPhase].Load() != 0 {
			m.after(time.Millisecond, m.awaitDrain)
			return
		}
	}
	m.enterPhase(PhaseCopy)
	m.mu.Lock()
	remaining := len(m.bySource)
	m.mu.Unlock()
	if remaining == 0 {
		// Degenerate: nothing moves (a 1-slice table cannot shed load).
		m.cutover()
		return
	}
	for g := range m.bySource {
		g := g
		m.orderedOp(fmt.Sprintf("barrier/%d", g), groups[g], func() any { return core.Noop{} },
			func(r *core.Replica) { m.export(g, r) })
	}
}

// export runs on the executor of the source replica that applied the
// barrier: its machine now contains every pre-freeze write to the moving
// slices, which cannot change again until cutover. The keyed snapshot is
// then shipped to the new group as an ordered import.
func (m *migration) export(g int, r *core.Replica) {
	var data any
	var size int64
	if pm, ok := r.Machine().(core.PartitionedMachine); ok {
		data, size = pm.ExportOwned(m.prev.Owned(m.bySource[g]))
	}
	// Hop off the source executor before submitting elsewhere.
	m.after(0, func() { m.importInto(g, data, size) })
}

// importInto streams one source's keyed snapshot into the new group (or
// completes immediately for machines without the partition capability —
// a routing-only migration).
func (m *migration) importInto(g int, data any, size int64) {
	if data == nil {
		m.sourceDone()
		return
	}
	m.orderedOp(fmt.Sprintf("import/%d", g), m.newGroup,
		func() any {
			return core.PartitionImport{Epoch: m.next.Epoch, Source: g, Data: data, Size: size}
		},
		func(*core.Replica) { m.after(0, m.sourceDone) })
}

// sourceDone counts completed source handoffs; the last one cuts over.
func (m *migration) sourceDone() {
	m.mu.Lock()
	done := false
	m.copied++
	if m.copied == len(m.bySource) {
		done = true
	}
	m.mu.Unlock()
	if done {
		m.cutover()
	}
}

// cutover atomically publishes the next-epoch table, closes the migration
// window, and releases the buffered submissions to their new owners.
func (m *migration) cutover() {
	next := m.next
	m.mu.Lock()
	m.store.table.Store(&next)
	m.cutoverAt = m.now()
	m.frozen = make(map[int]bool)
	q := m.queue
	m.queue = nil
	m.mu.Unlock()
	m.enterPhase(PhaseCleanup)
	groups := m.store.groupList()
	for _, p := range q {
		r := groups[next.Group(p.key)].pick()
		if r == nil || !r.SubmitFrom(p.action, p.done) {
			if p.done != nil {
				p.done(nil, ErrNoReplica)
			}
		}
	}
	// Post-cutover cleanup: sources shed the rows they no longer own.
	m.mu.Lock()
	sources := len(m.bySource)
	m.mu.Unlock()
	if sources == 0 {
		m.finish()
		return
	}
	for g := range m.bySource {
		g := g
		m.orderedOp(fmt.Sprintf("drop/%d", g), groups[g],
			func() any { return core.PartitionDrop{Epoch: next.Epoch, Owned: m.prev.Owned(m.bySource[g])} },
			func(*core.Replica) { m.after(0, m.dropDone) })
	}
}

// dropDone counts completed source cleanups; the last one finishes the
// migration.
func (m *migration) dropDone() {
	m.mu.Lock()
	m.dropped++
	done := m.dropped == len(m.bySource)
	m.mu.Unlock()
	if done {
		m.finish()
	}
}

func (m *migration) finish() {
	m.enterPhase(PhaseDone)
	if m.opts.Done != nil {
		m.opts.Done(nil)
	}
}
