package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/livenet"
	"robuststore/internal/paxos"
	"robuststore/internal/sim"
	"robuststore/internal/tpcw"
)

// kvMachine is a keyed counter machine with the partition-migration
// capability: state is key → applied-action count, exports/imports/drops
// are keyed map operations (idempotent upserts, as the contract
// requires). It makes lost or duplicated actions directly observable.
type kvMachine struct {
	counts map[string]int64
}

func newKVMachine() *kvMachine { return &kvMachine{counts: map[string]int64{}} }

// kvAction increments one key's counter.
type kvAction struct{ Key string }

func (m *kvMachine) Execute(action any) any {
	a := action.(kvAction)
	m.counts[a.Key]++
	return m.counts[a.Key]
}

func (m *kvMachine) Snapshot() (any, int64) {
	cp := make(map[string]int64, len(m.counts))
	for k, v := range m.counts {
		cp[k] = v
	}
	return cp, int64(24 * len(cp))
}

func (m *kvMachine) Restore(data any) {
	m.counts = map[string]int64{}
	for k, v := range data.(map[string]int64) {
		m.counts[k] = v
	}
}

func (m *kvMachine) ExportOwned(owned func(string) bool) (any, int64) {
	out := map[string]int64{}
	for k, v := range m.counts {
		if owned(k) {
			out[k] = v
		}
	}
	return out, int64(24 * len(out))
}

func (m *kvMachine) ImportOwned(data any) {
	for k, v := range data.(map[string]int64) {
		m.counts[k] = v // idempotent keyed upsert
	}
}

func (m *kvMachine) DropOwned(owned func(string) bool) {
	for k := range m.counts {
		if owned(k) {
			delete(m.counts, k)
		}
	}
}

var _ core.PartitionedMachine = (*kvMachine)(nil)

func (m *kvMachine) countsMap() map[string]int64 { return m.counts }

// counted lets the audit read any keyed-counter machine's state.
type counted interface{ countsMap() map[string]int64 }

// kvDeltaMachine is kvMachine plus the incremental-checkpoint capability
// (core.DeltaSnapshotter), so the migration suite can run with delta
// chains active: dirty-key tracking, delta capture/merge, and chain
// poisoning on DropOwned.
type kvDeltaMachine struct {
	kvMachine
	dirty    map[string]struct{}
	anchored bool
	dropped  bool
}

func newKVDeltaMachine() *kvDeltaMachine {
	return &kvDeltaMachine{
		kvMachine: kvMachine{counts: map[string]int64{}},
		dirty:     map[string]struct{}{},
	}
}

func (m *kvDeltaMachine) Execute(action any) any {
	if a, ok := action.(kvAction); ok {
		m.dirty[a.Key] = struct{}{}
	}
	return m.kvMachine.Execute(action)
}

func (m *kvDeltaMachine) Snapshot() (any, int64) {
	m.dirty, m.anchored, m.dropped = map[string]struct{}{}, true, false
	return m.kvMachine.Snapshot()
}

func (m *kvDeltaMachine) Restore(data any) {
	m.kvMachine.Restore(data)
	m.dirty, m.anchored, m.dropped = map[string]struct{}{}, true, false
}

func (m *kvDeltaMachine) SnapshotDelta() (any, int64, bool) {
	if !m.anchored || m.dropped {
		return nil, 0, false
	}
	cp := make(map[string]int64, len(m.dirty))
	for k := range m.dirty {
		if v, ok := m.counts[k]; ok {
			cp[k] = v
		}
	}
	m.dirty = map[string]struct{}{}
	return cp, int64(24 * len(cp)), true
}

func (m *kvDeltaMachine) ApplyDelta(data any) {
	for k, v := range data.(map[string]int64) {
		m.counts[k] = v
	}
	m.dirty, m.anchored, m.dropped = map[string]struct{}{}, true, false
}

func (m *kvDeltaMachine) ImportOwned(data any) {
	m.kvMachine.ImportOwned(data)
	for k := range data.(map[string]int64) {
		m.dirty[k] = struct{}{}
	}
}

func (m *kvDeltaMachine) DropOwned(owned func(string) bool) {
	m.kvMachine.DropOwned(owned)
	m.dropped = true
}

var _ core.PartitionedMachine = (*kvDeltaMachine)(nil)
var _ core.DeltaSnapshotter = (*kvDeltaMachine)(nil)

// rebalanceUnderLoad runs the 2→3 migration scenario: a 2-group store
// takes steady keyed load, Rebalance adds group 2 mid-run, and the load
// continues across the cutover. It returns the store, the per-key acked
// counts, and the observed migration status.
func rebalanceUnderLoad(t *testing.T, seed uint64, crashPhase string) (*Store, *sim.Sim, map[string]int64) {
	t.Helper()
	const keys, actions = 40, 600
	s := sim.New(sim.Config{Seed: seed})
	store := New(s, Config{
		Shards:  2,
		Machine: func(int) core.StateMachine { return newKVMachine() },
		Core:    core.Config{CheckpointInterval: 2 * time.Second},
	})
	s.StartAll()

	acked := map[string]int64{}
	for i := 0; i < actions; i++ {
		key := fmt.Sprintf("key/%d", i%keys)
		at := time.Second + time.Duration(i*10)*time.Millisecond
		s.At(s.Now().Add(at), func() {
			store.Submit(key, kvAction{Key: key}, func(result any, err error) {
				if err == nil {
					acked[key]++
				}
			})
		})
	}

	rebalanced := false
	var rebalanceErr error
	s.At(s.Now().Add(2500*time.Millisecond), func() {
		store.Rebalance(RebalanceOptions{
			OnPhase: func(phase string) {
				if crashPhase != "" && phase == crashPhase {
					// Kill one member of source group 0 mid-migration.
					s.Crash(store.Group(0).Members()[0])
				}
			},
			Done: func(err error) { rebalanced, rebalanceErr = true, err },
		})
	})
	s.RunFor(30 * time.Second)
	if !rebalanced || rebalanceErr != nil {
		t.Fatalf("rebalance did not complete: done=%v err=%v (phase %s)",
			rebalanced, rebalanceErr, store.Migration().Phase)
	}
	return store, s, acked
}

// auditKV checks the zero-loss/zero-duplication invariant: for every key,
// the owning group's count equals the acked submissions, and no other
// group still holds the key (post-drop).
func auditKV(t *testing.T, store *Store, acked map[string]int64) {
	t.Helper()
	table := store.Table()
	for key, want := range acked {
		owner := table.Group(key)
		for g := 0; g < store.Shards(); g++ {
			m := store.Group(g).Replica(0).Machine().(counted).countsMap()
			got, present := m[key]
			switch {
			case g == owner && got != want:
				t.Errorf("%s: owner group %d has count %d, %d acked (lost or duplicated)",
					key, g, got, want)
			case g != owner && present:
				t.Errorf("%s: stale copy (count %d) left on group %d, owner is %d",
					key, got, g, owner)
			}
		}
	}
	// All members of every group agree (replicated state converged).
	for g := 0; g < store.Shards(); g++ {
		ref := store.Group(g).Replica(0).Machine().(counted).countsMap()
		for m := 1; m < 3; m++ {
			other := store.Group(g).Replica(m).Machine().(counted).countsMap()
			if len(other) != len(ref) {
				t.Fatalf("group %d member %d holds %d keys, member 0 holds %d",
					g, m, len(other), len(ref))
			}
			for k, v := range ref {
				if other[k] != v {
					t.Fatalf("group %d member %d diverges on %s: %d vs %d", g, m, k, other[k], v)
				}
			}
		}
	}
}

// TestRebalanceZeroLossUnderLoad is the core migration guarantee: a
// 2-group store under steady keyed load grows to 3 groups live, and every
// acked action is counted exactly once on the key's (new) owning group —
// nothing lost in the handoff, nothing applied twice, no stale copies
// after cleanup.
func TestRebalanceZeroLossUnderLoad(t *testing.T) {
	store, _, acked := rebalanceUnderLoad(t, 21, "")
	if store.Shards() != 3 {
		t.Fatalf("store has %d groups after rebalance, want 3", store.Shards())
	}
	if store.Epoch() != 1 {
		t.Fatalf("published epoch = %d, want 1", store.Epoch())
	}
	st := store.Migration()
	if st.Window() <= 0 {
		t.Errorf("migration window not measured: %+v", st)
	}
	if st.MovedSlices == 0 || st.MovedSlices != st.TotalSlices/3 {
		t.Errorf("moved %d of %d slices, want a third", st.MovedSlices, st.TotalSlices)
	}
	// The new group must actually own keys and have applied actions.
	moved := 0
	for key := range acked {
		if store.Table().Group(key) == 2 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no test key moved to the new group")
	}
	auditKV(t, store, acked)
}

// TestRebalanceSurvivesCrashMidMigration crashes one member of a source
// group in the middle of the copy phase: the retry sweeps and idempotent
// imports must carry the migration to completion with the same zero-loss
// guarantee (the group keeps its quorum).
func TestRebalanceSurvivesCrashMidMigration(t *testing.T) {
	store, s, acked := rebalanceUnderLoad(t, 33, PhaseCopy)
	// Restart the victim and let it converge before auditing all members.
	s.At(s.Now(), func() { s.Restart(store.Group(0).Members()[0]) })
	s.RunFor(15 * time.Second)
	if store.Shards() != 3 {
		t.Fatalf("store has %d groups after rebalance, want 3", store.Shards())
	}
	auditKV(t, store, acked)
}

// TestRebalanceRoutingOnlyForPlainMachines: a machine without the
// partition capability still migrates routing (new keys land on the new
// group); the old rows stay where they were.
func TestRebalanceRoutingOnlyForPlainMachines(t *testing.T) {
	s := sim.New(sim.Config{Seed: 5})
	store := New(s, Config{
		Shards:  2,
		Machine: func(int) core.StateMachine { return &seqMachine{} },
	})
	s.StartAll()
	done := false
	s.At(s.Now().Add(time.Second), func() {
		store.Rebalance(RebalanceOptions{Done: func(err error) { done = err == nil }})
	})
	s.RunFor(20 * time.Second)
	if !done {
		t.Fatalf("routing-only rebalance did not complete: %+v", store.Migration())
	}
	if store.Shards() != 3 || store.Table().Groups() != 3 {
		t.Fatalf("expected 3 routed groups, got %d/%d", store.Shards(), store.Table().Groups())
	}
	// New submissions to keys owned by group 2 apply there.
	var hit bool
	for i := 0; i < 200 && !hit; i++ {
		key := fmt.Sprintf("fresh/%d", i)
		if store.Table().Group(key) == 2 {
			hit = true
			applied := false
			s.At(s.Now(), func() {
				store.Submit(key, "x", func(result any, err error) { applied = err == nil })
			})
			s.RunFor(5 * time.Second)
			if !applied {
				t.Fatalf("submission to new group's key %s did not apply", key)
			}
			if n := len(store.Group(2).Replica(0).Machine().(*seqMachine).log); n == 0 {
				t.Fatal("new group applied nothing")
			}
		}
	}
	if !hit {
		t.Fatal("no key routed to the new group")
	}
}

// TestDuplicateImportDoesNotRevertNewerWrites pins the at-most-once
// import guard: the migration driver's retry sweep can get a stale copy
// of a PartitionImport ordered after cutover, behind writes that already
// advanced the moved rows — the duplicate must be skipped, not blindly
// re-upsert the snapshot over them.
func TestDuplicateImportDoesNotRevertNewerWrites(t *testing.T) {
	s := sim.New(sim.Config{Seed: 17})
	store := New(s, Config{
		Shards:  1,
		Machine: func(int) core.StateMachine { return newKVMachine() },
	})
	s.StartAll()
	s.RunFor(2 * time.Second)

	imp := core.PartitionImport{
		Epoch: 1, Source: 0,
		Data: map[string]int64{"moved/key": 5}, Size: 24,
	}
	r := store.Group(0).Replica(0)
	s.At(s.Now(), func() {
		r.Submit(imp, nil)                                         // the transfer lands
		store.Submit("moved/key", kvAction{Key: "moved/key"}, nil) // post-cutover write → 6
		r.Submit(imp, nil)                                         // stale duplicate, ordered last
	})
	s.RunFor(5 * time.Second)

	for m := 0; m < 3; m++ {
		got := store.Group(0).Replica(m).Machine().(*kvMachine).counts["moved/key"]
		if got != 6 {
			t.Fatalf("member %d: count = %d, want 6 (stale duplicate import reverted a newer write)", m, got)
		}
	}

	// A checkpointed-and-restarted member must remember the guard too.
	victim := store.Group(0).Members()[2]
	done := false
	s.At(s.Now(), func() { store.Checkpoint(func() { done = true }) })
	s.RunFor(5 * time.Second)
	if !done {
		t.Fatal("checkpoint did not complete")
	}
	s.Crash(victim)
	s.RunFor(time.Second)
	s.Restart(victim)
	s.RunFor(5 * time.Second)
	s.At(s.Now(), func() {
		store.Group(0).Replica(2).Submit(imp, nil) // duplicate after recovery
	})
	s.RunFor(5 * time.Second)
	for m := 0; m < 3; m++ {
		got := store.Group(0).Replica(m).Machine().(*kvMachine).counts["moved/key"]
		if got != 6 {
			t.Fatalf("member %d after recovery: count = %d, want 6 (dedup set lost across checkpoint)", m, got)
		}
	}
}

// TestRebalanceLivenet drives the same migration on the live runtime
// (real goroutines, wall clock): Execute-based load keeps flowing while
// the store grows 2→3 groups, and the zero-loss audit holds. This pins
// the cross-goroutine half of the protocol (freeze/in-flight drain,
// SubmitFrom hops, atomic table publication).
func TestRebalanceLivenet(t *testing.T) {
	cluster := livenet.New(livenet.Config{Latency: 100 * time.Microsecond})
	defer cluster.Close()
	store := New(cluster, Config{
		Shards: 2,
		// The delta-capable machine puts incremental checkpoints (chain
		// writes, compaction, manifest recovery) on the live runtime's
		// race-tested path, migration and crash/restart included.
		Machine: func(int) core.StateMachine { return newKVDeltaMachine() },
		Core: core.Config{
			CheckpointInterval: time.Second,
			Paxos: paxos.Config{
				HeartbeatInterval: 20 * time.Millisecond,
				LeaderTimeout:     150 * time.Millisecond,
				SweepInterval:     10 * time.Millisecond,
				BatchDelay:        time.Millisecond,
			},
		},
	})
	cluster.StartAll()

	// 8 s covers the whole traffic phase; it also bounds how long a
	// worker whose in-flight ack died with the crashed member stays
	// blocked before the audit.
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	const workers, keysPerWorker = 8, 4
	acked := make([]map[string]int64, workers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		acked[w] = map[string]int64{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("key/%d", w*keysPerWorker+i%keysPerWorker)
				if _, err := store.Execute(ctx, key, kvAction{Key: key}); err == nil {
					acked[w][key]++
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	done := make(chan error, 1)
	store.Rebalance(RebalanceOptions{Done: func(err error) { done <- err }})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rebalance failed: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("rebalance did not complete: %+v", store.Migration())
	}
	time.Sleep(300 * time.Millisecond) // post-cutover traffic on the new group

	// Crash and restart one source member: its recovery replays the
	// delta chain written across the migration (the drop included).
	victim := store.Group(0).Members()[0]
	cluster.Crash(victim)
	time.Sleep(200 * time.Millisecond)
	cluster.Restart(victim)
	time.Sleep(500 * time.Millisecond)

	close(stop)
	wg.Wait()
	time.Sleep(500 * time.Millisecond) // let replicas converge

	if store.Shards() != 3 || store.Epoch() != 1 {
		t.Fatalf("store did not grow: shards=%d epoch=%d", store.Shards(), store.Epoch())
	}
	total := map[string]int64{}
	for _, m := range acked {
		for k, v := range m {
			total[k] += v
		}
	}
	table := store.Table()
	for key, want := range total {
		owner := table.Group(key)
		r := store.Group(owner).pick()
		if r == nil {
			t.Fatalf("group %d has no ready member", owner)
		}
		// Read through the owning group's executor for a loop-safe view.
		got := make(chan int64, 1)
		if !r.Inspect(func(sm core.StateMachine) { got <- sm.(counted).countsMap()[key] }) {
			t.Fatalf("cannot inspect group %d", owner)
		}
		// Every acked action must be applied exactly once. The crash may
		// eat one in-flight ack per key (applied, never acknowledged) —
		// at-most-once submission semantics allow that; anything beyond
		// is duplication.
		if g := <-got; g < want || g > want+1 {
			t.Errorf("%s: owner group %d counts %d, %d acked (lost or duplicated)", key, owner, g, want)
		}
	}
}

// TestRebalancePopulatedBookstore is the acceptance scenario on real
// state: a 2-group store populated with the TPC-W bookstore takes item
// updates routed by row key while growing to 3 groups; afterwards every
// item's latest acked cost is served by its new owning group and every
// replica's store passes the consistency audit.
func TestRebalancePopulatedBookstore(t *testing.T) {
	const items = 60
	s := sim.New(sim.Config{Seed: 13})
	store := New(s, Config{
		Shards: 2,
		Machine: func(int) core.StateMachine {
			// Same catalog on every group: the items are soft-replicated,
			// rows diverge by each group's own ordered writes.
			return tpcw.Populate(tpcw.PopConfig{Items: 200, EBs: 1, Reduction: 4, Seed: 7})
		},
		Core: core.Config{CheckpointInterval: 2 * time.Second, ActionSize: tpcw.ActionSize},
	})
	s.StartAll()

	lastCost := map[tpcw.ItemID]float64{}
	now := s.Now()
	for i := 0; i < 400; i++ {
		item := tpcw.ItemID(i%items + 1)
		key := fmt.Sprintf("item/%d", item)
		cost := 10 + float64(i)
		at := time.Second + time.Duration(i*12)*time.Millisecond
		s.At(now.Add(at), func() {
			store.Submit(key, tpcw.AdminUpdateAction{
				Item: item, Cost: cost, Image: "i", Thumbnail: "t", Now: s.Now(),
			}, func(result any, err error) {
				if err == nil {
					lastCost[item] = cost
				}
			})
		})
	}
	done := false
	s.At(now.Add(2500*time.Millisecond), func() {
		store.Rebalance(RebalanceOptions{Done: func(err error) { done = err == nil }})
	})
	s.RunFor(30 * time.Second)
	if !done {
		t.Fatalf("rebalance did not complete: %+v", store.Migration())
	}

	table := store.Table()
	movedToNew := 0
	for item, want := range lastCost {
		key := fmt.Sprintf("item/%d", item)
		owner := table.Group(key)
		if owner == 2 {
			movedToNew++
		}
		bs := store.Group(owner).Replica(0).Machine().(*tpcw.Store)
		got, ok := bs.GetBook(item)
		if !ok {
			t.Fatalf("item %d missing on its owning group %d", item, owner)
		}
		if got.Cost != want {
			t.Errorf("item %d on group %d: cost %.0f, want %.0f (update lost in handoff)",
				item, owner, got.Cost, want)
		}
	}
	if movedToNew == 0 {
		t.Fatal("no updated item moved to the new group")
	}
	for g := 0; g < store.Shards(); g++ {
		for m := 0; m < 3; m++ {
			bs := store.Group(g).Replica(m).Machine().(*tpcw.Store)
			if bad := bs.VerifyConsistency(); len(bad) > 0 {
				t.Fatalf("group %d member %d fails the consistency audit: %v", g, m, bad)
			}
		}
	}
}

// TestRebalanceThenCrashDoesNotResurrectDroppedRows is the incremental-
// checkpoint regression for live migration: with delta chains active
// (short checkpoint interval, so pre-migration layers still hold the
// moved rows), a source member that crashes after the cutover must
// recover without resurrecting the rows PartitionDrop removed — the drop
// either forced a fresh base or replays from the retained WAL suffix.
func TestRebalanceThenCrashDoesNotResurrectDroppedRows(t *testing.T) {
	const keys, actions = 40, 600
	s := sim.New(sim.Config{Seed: 47})
	store := New(s, Config{
		Shards:  2,
		Machine: func(int) core.StateMachine { return newKVDeltaMachine() },
		// The toy machine's deltas rival its base in size, which would
		// fold the chain at every checkpoint; keep chains long so the
		// pre-drop layers (the resurrection vector under test) are still
		// referenced when the crash hits.
		Core: core.Config{
			CheckpointInterval: 2 * time.Second,
			MaxDeltaChain:      64,
			MaxChainFraction:   1000,
		},
	})
	s.StartAll()

	acked := map[string]int64{}
	for i := 0; i < actions; i++ {
		key := fmt.Sprintf("key/%d", i%keys)
		at := time.Second + time.Duration(i*10)*time.Millisecond
		s.At(s.Now().Add(at), func() {
			store.Submit(key, kvAction{Key: key}, func(result any, err error) {
				if err == nil {
					acked[key]++
				}
			})
		})
	}
	// A second traffic wave keeps every group applying well past the
	// cutover, so post-drop delta checkpoints definitely commit before
	// the crash — the exact layers a stale chain would resurrect from.
	for i := 0; i < actions; i++ {
		key := fmt.Sprintf("key/%d", i%keys)
		at := 8*time.Second + time.Duration(i*10)*time.Millisecond
		s.At(s.Now().Add(at), func() {
			store.Submit(key, kvAction{Key: key}, func(result any, err error) {
				if err == nil {
					acked[key]++
				}
			})
		})
	}
	rebalanced := false
	s.At(s.Now().Add(2500*time.Millisecond), func() {
		store.Rebalance(RebalanceOptions{Done: func(err error) { rebalanced = err == nil }})
	})
	// Well after the cutover (and at least one post-drop checkpoint
	// round), crash two members of each source group and bring them back:
	// their recovery runs through base + delta layers written before the
	// drop, which must not re-introduce the moved rows.
	s.At(s.Now().Add(16*time.Second), func() {
		for g := 0; g < 2; g++ {
			for m := 0; m < 2; m++ {
				s.Crash(store.Group(g).Members()[m])
			}
		}
	})
	s.At(s.Now().Add(19*time.Second), func() {
		for g := 0; g < 2; g++ {
			for m := 0; m < 2; m++ {
				s.Restart(store.Group(g).Members()[m])
			}
		}
	})
	s.RunFor(40 * time.Second)
	if !rebalanced || store.Shards() != 3 {
		t.Fatalf("rebalance incomplete: done=%v shards=%d", rebalanced, store.Shards())
	}
	auditKV(t, store, acked)
}
