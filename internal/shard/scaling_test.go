package shard

import "testing"

// TestThroughputScalesWithShards is the scaling acceptance property: under
// the same offered load, a 4-shard store must commit at least 1.5× the
// actions/sec of a 1-shard store (in practice it approaches 2-3×: one
// group saturates its WAL pipeline well below the offered rate).
func TestThroughputScalesWithShards(t *testing.T) {
	cfg := func(shards int) ThroughputConfig {
		return ThroughputConfig{
			Shards:  shards,
			Offered: 8000,
			Warmup:  1e9, // 1 s
			Measure: 4e9, // 4 s
			Seed:    1,
		}
	}
	one := MeasureThroughput(cfg(1))
	four := MeasureThroughput(cfg(4))
	t.Logf("1 shard: %.0f committed actions/sec (offered %d)", one.PerSec, one.Offered)
	t.Logf("4 shards: %.0f committed actions/sec (offered %d), per shard %v",
		four.PerSec, four.Offered, four.PerShard)

	if one.Committed == 0 || four.Committed == 0 {
		t.Fatalf("no progress: 1-shard %d, 4-shard %d", one.Committed, four.Committed)
	}
	ratio := four.PerSec / one.PerSec
	if ratio < 1.5 {
		t.Fatalf("4-shard throughput only %.2fx the 1-shard baseline (want >= 1.5x)", ratio)
	}
	// The hash spreads the offered load evenly enough that no shard
	// carries more than twice the mean.
	mean := float64(four.Committed) / float64(len(four.PerShard))
	for g, n := range four.PerShard {
		if float64(n) > 2*mean {
			t.Errorf("shard %d committed %d actions, over 2x the mean %.0f", g, n, mean)
		}
	}
}
