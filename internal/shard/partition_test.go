package shard

import (
	"context"
	"fmt"
	"testing"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/livenet"
	"robuststore/internal/paxos"
	"robuststore/internal/sim"
)

// TestPartitionDuringRebalance: a live rebalance boots a new group while
// one member of a source group sits behind a network partition. The nodes
// AddNode registers mid-partition must join the majority side (not
// straddle it — the bug the sim fixed), the migration must complete over
// the surviving quorum, and after the heal every member converges to the
// zero-loss audit.
func TestPartitionDuringRebalance(t *testing.T) {
	const keys, actions = 40, 600
	s := sim.New(sim.Config{Seed: 29})
	store := New(s, Config{
		Shards:  2,
		Machine: func(int) core.StateMachine { return newKVMachine() },
		Core:    core.Config{CheckpointInterval: 2 * time.Second},
	})
	s.StartAll()

	acked := map[string]int64{}
	for i := 0; i < actions; i++ {
		key := fmt.Sprintf("key/%d", i%keys)
		at := time.Second + time.Duration(i*10)*time.Millisecond
		s.At(s.Now().Add(at), func() {
			store.Submit(key, kvAction{Key: key}, func(result any, err error) {
				if err == nil {
					acked[key]++
				}
			})
		})
	}

	// Partition one member of source group 0 (quorum survives), then
	// rebalance while the split is open; heal well after the cutover.
	var h *sim.BlockHandle
	rebalanced := false
	s.At(s.Now().Add(2*time.Second), func() {
		h = s.Partition(store.Group(0).Members()[2])
	})
	s.At(s.Now().Add(2500*time.Millisecond), func() {
		store.Rebalance(RebalanceOptions{Done: func(err error) { rebalanced = err == nil }})
	})
	s.At(s.Now().Add(15*time.Second), func() { h.Heal() })
	s.RunFor(40 * time.Second)

	if !rebalanced || store.Shards() != 3 {
		t.Fatalf("rebalance under partition incomplete: done=%v shards=%d phase=%s",
			rebalanced, store.Shards(), store.Migration().Phase)
	}
	auditKV(t, store, acked)
}

// TestCorrelatedFaultScenariosLivenet runs the four correlated fault
// scenarios — leader isolation, minority split, whole-group isolation and
// asymmetric one-way loss — against a 2-group store on the live runtime,
// through livenet's message-filter layer, and reports per-group
// availability for each window. The invariants: the untouched group
// serves through every window (availability 1), a quorum-preserving
// split leaves the victim group serving, a whole-group isolation is a
// full outage for its slice only, and liveness always resumes after the
// heal.
func TestCorrelatedFaultScenariosLivenet(t *testing.T) {
	cluster := livenet.New(livenet.Config{Latency: 100 * time.Microsecond})
	defer cluster.Close()
	store := New(cluster, Config{
		Shards:  2,
		Machine: func(int) core.StateMachine { return newKVMachine() },
		Core: core.Config{
			CheckpointInterval: time.Second,
			Paxos: paxos.Config{
				HeartbeatInterval: 20 * time.Millisecond,
				LeaderTimeout:     150 * time.Millisecond,
				SweepInterval:     10 * time.Millisecond,
				BatchDelay:        time.Millisecond,
			},
		},
	})
	cluster.StartAll()

	// One key per group, so each exec probes exactly one group's slice.
	keyOf := make([]string, 2)
	for g := range keyOf {
		for i := 0; keyOf[g] == ""; i++ {
			if key := fmt.Sprintf("probe/%d", i); store.Table().Group(key) == g {
				keyOf[g] = key
			}
		}
	}
	exec := func(g int, timeout time.Duration) error {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		_, err := store.Execute(ctx, keyOf[g], kvAction{Key: keyOf[g]})
		return err
	}
	// Boot: both groups must serve before any fault is injected.
	for g := 0; g < 2; g++ {
		if err := exec(g, 20*time.Second); err != nil {
			t.Fatalf("group %d never became ready: %v", g, err)
		}
	}
	leaderOf := func(g int) int {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if l := store.Status()[g].Leader; l >= 0 {
				return l
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("group %d never elected a leader", g)
		return -1
	}

	// nonLeader returns a group-0 member that does not currently lead —
	// the largest quorum-preserving minority of a 3-group is 1 member,
	// and picking a non-leader keeps the submission path on the healthy
	// majority.
	nonLeader := func() env.NodeID {
		l := leaderOf(0)
		for m, id := range store.Group(0).Members() {
			if m != l {
				return id
			}
		}
		return -1
	}
	scenarios := []struct {
		name string
		// open installs the scenario's partitions (possibly several
		// composing handles) and returns them for the heal.
		open func() []env.PartitionHandle
		// fullOutage: the victim group's slice must FAIL during the
		// window; otherwise it must keep serving (quorum preserved).
		fullOutage bool
	}{
		{
			name: "leader-isolation",
			open: func() []env.PartitionHandle {
				return []env.PartitionHandle{
					cluster.Partition(store.Group(0).Members()[leaderOf(0)]),
				}
			},
			// The group re-elects and keeps quorum, but the stale
			// ex-leader can absorb submissions until it demotes; only the
			// post-heal invariant is asserted.
			fullOutage: false,
		},
		{
			name: "minority-split",
			open: func() []env.PartitionHandle {
				return []env.PartitionHandle{cluster.Partition(nonLeader())}
			},
			fullOutage: false,
		},
		{
			// On the store path there is no proxy hop to sever — clients
			// submit straight into the group — so the observable
			// whole-group outage shatters the group's internal links
			// instead: two members isolated under separate (composing)
			// handles leaves no pair that can form a quorum. The
			// proxy-path whole-group isolation runs in exp's
			// GroupIsolation scenario on the simulator.
			name: "group-isolation",
			open: func() []env.PartitionHandle {
				members := store.Group(0).Members()
				return []env.PartitionHandle{
					cluster.Partition(members[0]),
					cluster.Partition(members[1]),
				}
			},
			fullOutage: true,
		},
		{
			name: "asymmetric-loss",
			open: func() []env.PartitionHandle {
				return []env.PartitionHandle{
					cluster.PartitionDir(env.LinkOutboundOnly, nonLeader()),
				}
			},
			fullOutage: false,
		},
	}

	for _, sc := range scenarios {
		handles := sc.open()

		// The untouched group's availability through the window: every
		// probe must succeed.
		att1, ok1 := 0, 0
		for i := 0; i < 5; i++ {
			att1++
			if err := exec(1, 5*time.Second); err == nil {
				ok1++
			}
		}
		att0, ok0 := 0, 0
		if sc.fullOutage {
			// The whole group is unreachable: a bounded probe must fail.
			att0++
			if err := exec(0, 700*time.Millisecond); err == nil {
				ok0++
				t.Errorf("%s: isolated group served during the window", sc.name)
			}
		} else if sc.name != "leader-isolation" {
			// Quorum preserved around a healthy leader: the slice keeps
			// serving inside the window. Individual attempts may still
			// black-hole — Execute can route a submission through the
			// silent victim, whose forward to the leader is lost (the
			// gray failure one-way loss models) — so the requirement is
			// that service is reachable, not that every entry point is.
			for i := 0; i < 3; i++ {
				att0++
				if err := exec(0, 5*time.Second); err == nil {
					ok0++
				}
			}
			if ok0 == 0 {
				t.Errorf("%s: quorum-preserving split never served its slice in-window", sc.name)
			}
		}
		if ok1 != att1 {
			t.Errorf("%s: untouched group availability %d/%d, want full", sc.name, ok1, att1)
		}
		t.Logf("%s window: group0 %d/%d, group1 %d/%d", sc.name, ok0, att0, ok1, att1)

		for _, h := range handles {
			h.Heal()
		}
		// Liveness resumes after the heal, for both slices.
		if err := exec(0, 20*time.Second); err != nil {
			t.Fatalf("%s: group 0 did not recover after heal: %v", sc.name, err)
		}
		if err := exec(1, 10*time.Second); err != nil {
			t.Fatalf("%s: group 1 broken after heal: %v", sc.name, err)
		}
	}

	// Agreement: every member of each group converges on the probe keys.
	time.Sleep(500 * time.Millisecond)
	for g := 0; g < 2; g++ {
		want := int64(-1)
		for m := 0; m < 3; m++ {
			got := make(chan int64, 1)
			if !store.Group(g).Replica(m).Inspect(func(sm core.StateMachine) {
				got <- sm.(counted).countsMap()[keyOf[g]]
			}) {
				t.Fatalf("group %d member %d not inspectable", g, m)
			}
			v := <-got
			if want < 0 {
				want = v
			} else if v != want {
				t.Fatalf("group %d member %d diverged: %d vs %d", g, m, v, want)
			}
		}
	}
}

// TestGrayFaultScenariosLivenet runs the gray-failure ops on the live
// runtime: one member of a group gray-failed at the transport (bulk
// inbound dropped, control traffic passing — it keeps acking pings while
// its real work starves) and one member behind latency-inflated links.
// Neither severs quorum: the group must keep serving through the window
// and converge after the restore.
func TestGrayFaultScenariosLivenet(t *testing.T) {
	cluster := livenet.New(livenet.Config{Latency: 100 * time.Microsecond})
	defer cluster.Close()
	store := New(cluster, Config{
		Shards:  1,
		Machine: func(int) core.StateMachine { return newKVMachine() },
		Core: core.Config{
			CheckpointInterval: time.Second,
			Paxos: paxos.Config{
				HeartbeatInterval: 20 * time.Millisecond,
				LeaderTimeout:     150 * time.Millisecond,
				SweepInterval:     10 * time.Millisecond,
				BatchDelay:        time.Millisecond,
			},
		},
	})
	cluster.StartAll()

	key := "probe/0"
	exec := func(timeout time.Duration) error {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		_, err := store.Execute(ctx, key, kvAction{Key: key})
		return err
	}
	if err := exec(20 * time.Second); err != nil {
		t.Fatalf("group never became ready: %v", err)
	}
	leaderOf := func() int {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if l := store.Status()[0].Leader; l >= 0 {
				return l
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatal("group never elected a leader")
		return -1
	}
	nonLeader := func() env.NodeID {
		l := leaderOf()
		for m, id := range store.Group(0).Members() {
			if m != l {
				return id
			}
		}
		return -1
	}

	scenarios := []struct {
		name    string
		open    func() env.NodeID
		restore func(env.NodeID)
	}{
		{
			name: "gray-member",
			open: func() env.NodeID {
				v := nonLeader()
				cluster.SetGray(v, 1.0)
				return v
			},
			restore: func(v env.NodeID) { cluster.SetGray(v, 0) },
		},
		{
			name: "delayed-member",
			open: func() env.NodeID {
				v := nonLeader()
				for _, id := range store.Group(0).Members() {
					if id == v {
						continue
					}
					cluster.SetLinkDelay(v, id, 50)
					cluster.SetLinkDelay(id, v, 50)
				}
				return v
			},
			restore: func(v env.NodeID) {
				for _, id := range store.Group(0).Members() {
					if id == v {
						continue
					}
					cluster.SetLinkDelay(v, id, 1)
					cluster.SetLinkDelay(id, v, 1)
				}
			},
		},
	}
	for _, sc := range scenarios {
		v := sc.open()
		ok, att := 0, 0
		for i := 0; i < 5; i++ {
			att++
			if err := exec(5 * time.Second); err == nil {
				ok++
			}
		}
		if ok == 0 {
			t.Errorf("%s: group never served during the gray window", sc.name)
		}
		t.Logf("%s window: %d/%d served", sc.name, ok, att)
		sc.restore(v)
		if err := exec(20 * time.Second); err != nil {
			t.Fatalf("%s: group did not recover after restore: %v", sc.name, err)
		}
	}

	// Agreement: every member converges on the probe key after restores.
	time.Sleep(500 * time.Millisecond)
	want := int64(-1)
	for m := 0; m < 3; m++ {
		got := make(chan int64, 1)
		if !store.Group(0).Replica(m).Inspect(func(sm core.StateMachine) {
			got <- sm.(counted).countsMap()[key]
		}) {
			t.Fatalf("member %d not inspectable", m)
		}
		g := <-got
		if want < 0 {
			want = g
		} else if g != want {
			t.Fatalf("member %d diverged: %d vs %d", m, g, want)
		}
	}
}
