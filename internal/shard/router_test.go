package shard

import (
	"fmt"
	"testing"
)

// TestHashGolden pins the FNV-1a hash so the key→shard mapping can never
// silently change across releases (a remap would strand every key's data
// on its old shard).
func TestHashGolden(t *testing.T) {
	cases := []struct {
		key  string
		want uint64
	}{
		{"", 14695981039346656037},
		{"a", 12638187200555641996},
		{"session/1", 1621662406134654267},
		{"session/42", 9270085231526038354},
		{"cart/7", 7706832490902604373},
		{"customer/99", 3460828782299624264},
		{"item/123", 5405167777712446309},
	}
	for _, c := range cases {
		if got := Hash(c.key); got != c.want {
			t.Errorf("Hash(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

// TestRouterStableMapping pins concrete key→shard assignments for every
// supported routing entry point.
func TestRouterStableMapping(t *testing.T) {
	cases := []struct {
		key    string
		shards int
		want   int
	}{
		{"", 2, 1}, {"", 4, 1}, {"", 8, 5},
		{"a", 2, 0}, {"a", 4, 0}, {"a", 8, 4},
		{"session/1", 2, 1}, {"session/1", 4, 3}, {"session/1", 8, 3},
		{"session/42", 2, 0}, {"session/42", 4, 2}, {"session/42", 8, 2},
		{"cart/7", 2, 1}, {"cart/7", 4, 1}, {"cart/7", 8, 5},
		{"customer/99", 2, 0}, {"customer/99", 4, 0}, {"customer/99", 8, 0},
		{"item/123", 2, 1}, {"item/123", 4, 1}, {"item/123", 8, 5},
	}
	for _, c := range cases {
		r := NewRouter(c.shards)
		if got := r.Shard(c.key); got != c.want {
			t.Errorf("NewRouter(%d).Shard(%q) = %d, want %d", c.shards, c.key, got, c.want)
		}
	}
	// Integer and string routing of the same key agree.
	r := NewRouter(8)
	for _, id := range []int64{0, 1, 42, 99, 123456789} {
		if r.ShardInt(id) != r.Shard(fmt.Sprintf("%d", id)) {
			t.Errorf("ShardInt(%d) disagrees with Shard of its decimal form", id)
		}
	}
}

// TestRouterSingleShardDegenerate: with one shard every key maps to
// shard 0 — the configuration that must behave like the unsharded store.
func TestRouterSingleShardDegenerate(t *testing.T) {
	r := NewRouter(1)
	for i := 0; i < 1000; i++ {
		if got := r.Shard(fmt.Sprintf("key/%d", i)); got != 0 {
			t.Fatalf("1-shard router sent key/%d to shard %d", i, got)
		}
	}
	var zero Router // zero value must also route everything to 0
	if zero.Shard("anything") != 0 || zero.Shards() != 1 {
		t.Fatal("zero-value Router must route everything to shard 0")
	}
}

// TestRouterEveryKeyMapsToExactlyOneShard: the mapping is a total
// function into [0, shards) and is deterministic call over call.
func TestRouterEveryKeyMapsToExactlyOneShard(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7, 16} {
		r := NewRouter(shards)
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("key/%d", i)
			s1, s2 := r.Shard(key), r.Shard(key)
			if s1 != s2 {
				t.Fatalf("shards=%d: Shard(%q) unstable: %d then %d", shards, key, s1, s2)
			}
			if s1 < 0 || s1 >= shards {
				t.Fatalf("shards=%d: Shard(%q) = %d out of range", shards, key, s1)
			}
		}
	}
}

// TestRouterDistribution: hashing 10k session keys across each shard
// count leaves no shard above 2× the mean (the balance bound the
// scaling experiments rely on).
func TestRouterDistribution(t *testing.T) {
	const keys = 10000
	for _, shards := range []int{2, 4, 8, 16} {
		r := NewRouter(shards)
		counts := make([]int, shards)
		for i := 0; i < keys; i++ {
			counts[r.Shard(fmt.Sprintf("session/%d", i))]++
		}
		mean := float64(keys) / float64(shards)
		for s, n := range counts {
			if float64(n) > 2*mean {
				t.Errorf("shards=%d: shard %d got %d keys, over 2x mean %.0f", shards, s, n, mean)
			}
			if n == 0 {
				t.Errorf("shards=%d: shard %d got no keys", shards, s)
			}
		}
	}
}
