package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"robuststore/internal/rbe"
)

// groupOutageRun is the whole-group-down scenario on a 2×3 deployment,
// shared (memoized) by the tests in this file. Scaled times: crash at
// t=100 s, manual recovery at t=150 s, run ends at t=240 s (+90 s drain).
func groupOutageRun() RunResult {
	fl := GroupOutage(0, 240, 390)
	return Run(RunConfig{
		Profile: rbe.Shopping, Servers: 3, Shards: 2, StateMB: 300,
		Faultload: &fl, Browsers: 300, Measure: 180 * time.Second, Seed: 2,
	})
}

// TestGroupOutageScenario: a whole group goes down (quorum loss for its
// client slice) until manual recovery. Every crashed member must come
// back, and the group's downtime clock must stop once it has — not run to
// the end of the experiment.
func TestGroupOutageScenario(t *testing.T) {
	r := groupOutageRun()
	if r.Faults != 3 {
		t.Fatalf("faults = %d, want 3 (every member of group 0)", r.Faults)
	}
	if len(r.RecoverySec) != 3 {
		t.Fatalf("recoveries = %v, want all 3 crashed members back", r.RecoverySec)
	}
	for _, srv := range r.CrashedServers {
		if srv/3 != 0 {
			t.Errorf("crashed server %d is outside group 0", srv)
		}
	}
	if len(r.PerGroup) != 2 {
		t.Fatalf("PerGroup has %d entries, want 2", len(r.PerGroup))
	}
	g0, g1 := r.PerGroup[0], r.PerGroup[1]
	if g0.Crashes != 3 || g0.Recoveries != 3 {
		t.Errorf("group 0: crashes=%d recoveries=%d, want 3/3", g0.Crashes, g0.Recoveries)
	}
	if g1.Crashes != 0 || g1.Downtime != 0 || g1.Availability != 1 {
		t.Errorf("group 1 must be untouched: %+v", g1)
	}
	// The outage spans manual recovery (t=100..150) plus state reload;
	// if the downtime clock failed to stop it would accrue to the run's
	// end (~230 s after the crash).
	down := g0.Downtime.Seconds()
	if down < 40 {
		t.Errorf("group 0 downtime = %.1f s, outage not registered", down)
	}
	if down > 150 {
		t.Errorf("group 0 downtime = %.1f s, kept accruing after recovery", down)
	}
	if g0.Availability >= 1 || r.Availability >= 1 {
		t.Errorf("availability must reflect the outage: group %v run %v",
			g0.Availability, r.Availability)
	}
	// Manual recovery of all three members: autonomy 3/3.
	if r.Autonomy != 1 {
		t.Errorf("autonomy = %v, want 1 (all recoveries manual)", r.Autonomy)
	}
	// The surviving group kept serving: its slice's accuracy stays high
	// while the crashed group's slice ate the outage errors.
	if g1.Accuracy < 99.9 {
		t.Errorf("group 1 accuracy = %v, must be unaffected", g1.Accuracy)
	}
	if g0.Accuracy >= g1.Accuracy {
		t.Errorf("group 0 accuracy %v should be below group 1's %v", g0.Accuracy, g1.Accuracy)
	}
}

// TestMemberEveryGroupScenario: one member of every group crashes at
// once; every group keeps its quorum, so there is no outage, and every
// crashed member recovers autonomously.
func TestMemberEveryGroupScenario(t *testing.T) {
	fl := MemberEveryGroup(270)
	r := Run(RunConfig{
		Profile: rbe.Shopping, Servers: 3, Shards: 2, StateMB: 300,
		Faultload: &fl, Browsers: 300, Measure: 180 * time.Second,
		CrashAt: 90, Seed: 2,
	})
	if r.Faults != 2 {
		t.Fatalf("faults = %d, want one per group", r.Faults)
	}
	if len(r.RecoverySec) != 2 {
		t.Fatalf("recoveries = %v, want both crashed members back", r.RecoverySec)
	}
	if r.CrashedServers[0]/3 == r.CrashedServers[1]/3 {
		t.Errorf("victims %v landed in the same group", r.CrashedServers)
	}
	for _, g := range r.PerGroup {
		if g.Downtime != 0 || g.Availability != 1 {
			t.Errorf("group %d saw an outage despite keeping quorum: %+v", g.Group, g)
		}
		if g.Crashes != 1 || g.Recoveries != 1 {
			t.Errorf("group %d crashes/recoveries = %d/%d, want 1/1",
				g.Group, g.Crashes, g.Recoveries)
		}
		if g.MeanRecoverySec <= 0 {
			t.Errorf("group %d recovery time not measured", g.Group)
		}
	}
	if r.Autonomy != 0 {
		t.Errorf("autonomy = %v, want 0 (watchdog recoveries)", r.Autonomy)
	}
}

func TestShardedFormatters(t *testing.T) {
	r := groupOutageRun()
	var buf bytes.Buffer
	PrintShardedDependability(&buf, r)
	PrintShardedRecovery(&buf, []ShardedRecoveryPoint{
		{Shards: 2, MeanRecoverySec: 33, WorstGroupAvail: 0.95, AWIPS: 400},
	})
	out := buf.String()
	for _, want := range []string{"group-outage", "aggregate", "Sharded recovery", "avail"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatter output missing %q:\n%s", want, out)
		}
	}
}
