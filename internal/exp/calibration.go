// Package exp reproduces the paper's evaluation (§5): speedup (Figure 3),
// scaleup (Figure 4), and the three faultload experiments — one crash
// (Figure 5/6, Tables 1/2), two overlapped crashes (Figure 7, Tables 3/4)
// and delayed recovery (Figure 8, Tables 5/6) — on the simulated cluster.
package exp

import (
	"time"

	"robuststore/internal/sim"
)

// Experiment-level calibration. Every constant models a property of the
// paper's testbed (§5.1) and is tied to an observable the paper reports.
const (
	// The paper's timeline: 30 s ramp-up, 9 min measurement interval,
	// 30 s ramp-down.
	rampUp   = 30 * time.Second
	measure  = 540 * time.Second
	rampDown = 30 * time.Second

	// think time: the paper reduces TPC-W's 7 s to 1 s (§5.1).
	thinkTime = time.Second

	// faultBrowsers drives the fault experiments at the paper's fixed
	// 1000 WIPS offered load (1000 RBEs at 1 s think time).
	faultBrowsers = 1000

	// saturationBrowsers drives the speedup experiments to saturation;
	// the paper's five client nodes saturated a 12-replica deployment
	// at ≈2100 WIPSb.
	saturationBrowsers = 2600

	// checkpointInterval is Treplica's checkpoint period. Checkpoint
	// disk writes are the main source of the ordering profile's WIPS
	// oscillation (CV 0.2–0.33 in Tables 1/3).
	checkpointInterval = 60 * time.Second

	// retainInstances keeps enough decided log entries to serve the
	// delayed-recovery backlog (≈150 s of downtime at ≈250 values/s)
	// from the log, per Treplica's local-checkpoint + suffix recovery.
	retainInstances = 400000

	// populationSeed fixes the TPC-W population; the paper repopulates
	// identically for every run.
	populationSeed = 7

	// populationReduction shrinks real in-memory entity counts while
	// nominal state-size accounting stays at full TPC-W scale (see
	// DESIGN.md substitutions).
	populationReduction = 4

	// items is NUM_ITEMS (§5.1).
	items = 10000
)

// expDisk models the 40 GB 7200 rpm disks of §5.1 for the experiments:
//   - SyncLatency 35 ms: a 2008-era Java FileChannel.force on ext3 with
//     write barriers (the dominant term in the paper's write-interaction
//     latency; the closed-loop WIPS/WIRT arithmetic of Tables 1 and
//     Figure 4 implies ≈300 ms per write at 5 replicas, i.e. a few
//     group-commit cycles across the phase-2 quorum).
//   - WriteBandwidth 45 MB/s sequential.
//   - ReadBandwidth 12 MB/s effective for recovery: checkpoint load
//     including deserialization; Figure 6 implies ≈ 500 MB / 63 s with
//     the recovering replica's own log writes stealing part of the disk.
var expDisk = sim.DiskConfig{
	SyncLatency:    25 * time.Millisecond,
	SyncJitter:     1.0, // heavy-tailed fsync: mean 37 ms, exp tail
	WriteBandwidth: 45e6,
	ReadBandwidth:  12e6,
}

// expNet models the 1 Gbps switched Ethernet of §5.1.
var expNet = sim.NetConfig{
	BaseLatency:  120 * time.Microsecond,
	Bandwidth:    125e6,
	SendOverhead: 150 * time.Microsecond, // Java serialization per message
	Jitter:       0.5,
}

// ebsForStateMB maps the paper's initial state sizes to the TPC-W
// population parameter (§5.1: 30/50/70 EBs → 300/500/700 MB).
func ebsForStateMB(mb int) int {
	switch mb {
	case 300:
		return 30
	case 500:
		return 50
	case 700:
		return 70
	default:
		return mb / 10
	}
}
