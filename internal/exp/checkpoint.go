package exp

import (
	"time"

	"robuststore/internal/rbe"
)

// This file is the checkpoint experiment: the Figure 6 trade-off
// (recovery time vs checkpoint interval) re-measured with the
// incremental delta-chain pipeline against the paper's monolithic
// full-state checkpoints. Full checkpoints couple the two costs — a
// short interval means less log to replay at recovery but O(state) disk
// writes every interval, which steal bandwidth and CPU from the
// serving path; the incremental pipeline decouples them, making short
// intervals (and therefore fast recovery) affordable.

// CheckpointPoint is one cell of the curve: one checkpoint interval in
// one mode.
type CheckpointPoint struct {
	IntervalSec int
	Incremental bool

	RecoverySec float64 // one-crash recovery duration (-1: none observed)
	AWIPS       float64 // sustained throughput over the measurement

	CkptWrites   int64   // steady-state checkpoints taken, cluster-wide
	CkptMB       float64 // steady-state checkpoint bytes written (MB)
	PerCkptMB    float64 // mean MB per checkpoint write
	CkptMBPerSec float64 // write rate over the accounting window (MB/s)
}

// CheckpointCurveConfig parameterizes the sweep.
type CheckpointCurveConfig struct {
	Servers   int           // replication degree; default 5
	StateMB   int           // initial state size; default 500
	Browsers  int           // offered load; default 400
	Measure   time.Duration // default 300 s
	Intervals []int         // checkpoint intervals in seconds; default {15, 30, 60, 120}
	Seed      uint64
}

func (c CheckpointCurveConfig) withDefaults() CheckpointCurveConfig {
	if c.Servers == 0 {
		c.Servers = 5
	}
	if c.StateMB == 0 {
		c.StateMB = 500
	}
	if c.Browsers == 0 {
		c.Browsers = 400
	}
	if c.Measure == 0 {
		c.Measure = 300 * time.Second
	}
	if len(c.Intervals) == 0 {
		c.Intervals = []int{15, 30, 60, 120}
	}
	return c
}

// CheckpointCurve sweeps the checkpoint interval under the one-crash
// faultload, once with monolithic full-state checkpoints and once with
// the incremental pipeline, at equal state size and offered load. Each
// point reports the recovery duration, the sustained throughput and the
// steady-state checkpoint disk traffic.
func CheckpointCurve(cfg CheckpointCurveConfig) []CheckpointPoint {
	cfg = cfg.withDefaults()
	out := make([]CheckpointPoint, 0, 2*len(cfg.Intervals))
	for _, iv := range cfg.Intervals {
		for _, incremental := range []bool{false, true} {
			r := Run(RunConfig{
				Profile:               rbe.Shopping,
				Servers:               cfg.Servers,
				StateMB:               cfg.StateMB,
				Fault:                 OneCrash,
				Browsers:              cfg.Browsers,
				Measure:               cfg.Measure,
				CrashAt:               90,
				Seed:                  cfg.Seed,
				CheckpointIntervalSec: iv,
				FullCheckpoints:       !incremental,
			})
			pt := CheckpointPoint{
				IntervalSec: iv,
				Incremental: incremental,
				RecoverySec: -1,
				AWIPS:       r.AWIPS,
				CkptWrites:  r.CheckpointWrites,
				CkptMB:      float64(r.CheckpointBytes) / 1e6,
			}
			if len(r.RecoveryDur) > 0 {
				pt.RecoverySec = r.RecoveryDur[0]
			}
			if r.CheckpointWrites > 0 {
				pt.PerCkptMB = pt.CkptMB / float64(r.CheckpointWrites)
			}
			if r.CheckpointWindowSec > 0 {
				pt.CkptMBPerSec = pt.CkptMB / r.CheckpointWindowSec
			}
			out = append(out, pt)
		}
	}
	return out
}
