package exp

import (
	"fmt"
	"sync"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/metrics"
	"robuststore/internal/paxos"
	"robuststore/internal/rbe"
	"robuststore/internal/sim"
	"robuststore/internal/tpcw"
	"robuststore/internal/webtier"
)

// FaultKind selects one of the paper's faultloads.
type FaultKind int

// The faultloads of §5.
const (
	NoFault         FaultKind = iota // speedup/scaleup baselines
	OneCrash                         // §5.4: one crash at t=270 s, autonomous recovery
	TwoCrashes                       // §5.5: crashes at t=240 s and t=270 s, autonomous recoveries
	DelayedRecovery                  // §5.6: both crash at t=240 s; one autonomous, one manual at t=390 s
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case NoFault:
		return "none"
	case OneCrash:
		return "one-crash"
	case TwoCrashes:
		return "two-crashes"
	case DelayedRecovery:
		return "delayed-recovery"
	default:
		return "unknown"
	}
}

// RunConfig describes one experiment run.
type RunConfig struct {
	Profile rbe.Profile
	Servers int // replication degree of each group
	Shards  int // independent Paxos groups; default 1 (the paper's deployment)
	StateMB int // initial state size: 300, 500 or 700
	Fault   FaultKind

	// Readers adds this many learner-backed read-only servers per group
	// (webtier.Config.Readers): they apply the log but never vote, and
	// the proxy rotates reads across voters + readers with per-session
	// read-your-writes fences. 0 keeps the pre-reader read path.
	Readers int

	// Faultload, when non-nil, overrides Fault with an explicit composable
	// schedule (see faultload.go). The enum faultloads are shorthand: Fault
	// is resolved through PaperFaultload, so both paths run the same engine.
	Faultload *Faultload

	Browsers int           // RBE population; default faultBrowsers
	Measure  time.Duration // measurement interval; default 540 s
	Seed     uint64
	NoFast   bool // disable Fast Paxos (ablation)
	NoBatch  bool // disable command batching (ablation)
	SeqRec   bool // disable parallel recovery (ablation)

	// CheckpointIntervalSec overrides Treplica's checkpoint period
	// (default: the paper's 60 s). The checkpoint experiments sweep it.
	CheckpointIntervalSec int

	// FullCheckpoints forces monolithic full-state checkpoints instead
	// of the incremental delta-chain pipeline (the baseline side of
	// exp.CheckpointCurve).
	FullCheckpoints bool

	// CrashAt overrides the faultload's first crash time (seconds from
	// run start) for shortened recovery-time runs; 0 keeps the paper's
	// times.
	CrashAt float64

	// RebalanceAtSec, when > 0, live-reshards the deployment at this
	// time on the paper's x-axis: one Paxos group of Servers replicas is
	// added and its share of the session slices migrates to it (the
	// epoch-versioned routing cutover). The run then reports Shards+1
	// per-group rows plus the migration window (RunResult.Migration).
	RebalanceAtSec float64

	// CrashMidMigration, with RebalanceAtSec set, kills group 0's first
	// rotation victim exactly when the migration enters its copy phase —
	// the handoff-under-fault scenario.
	CrashMidMigration bool

	// TxnRate, when > 0, drives cross-shard transactions (gift purchases
	// and inventory sweeps under 2PC) at this many per second of
	// measured time, alongside the RBE load, and audits their atomicity
	// at run end (RunResult.Txn). Zero keeps the historical runs
	// byte-identical: no driver is scheduled at all.
	TxnRate float64
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Profile == 0 {
		c.Profile = rbe.Shopping
	}
	if c.Servers == 0 {
		c.Servers = 5
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.StateMB == 0 {
		c.StateMB = 500
	}
	if c.Browsers == 0 {
		c.Browsers = faultBrowsers
	}
	if c.Measure == 0 {
		c.Measure = measure
	}
	return c
}

// faultload resolves the run's effective fault schedule.
func (c RunConfig) faultload() Faultload {
	fl := PaperFaultload(c.Fault)
	if c.Faultload != nil {
		fl = *c.Faultload
	}
	if c.CrashAt > 0 {
		fl = fl.shifted(c.CrashAt)
	}
	return fl
}

// key returns the memoization key. Options that default to off append
// only when set, so historical keys stay byte-identical.
func (c RunConfig) key() string {
	k := fmt.Sprintf("%v/%d/%d/%d/%d/%v/%d/%v/%d/%v/%v/%v/%.0f/%.0f/%v/%d/%v/%s",
		c.Profile, c.Servers, c.Shards, c.Readers, c.StateMB, c.Fault, c.Browsers, c.Measure,
		c.Seed, c.NoFast, c.NoBatch, c.SeqRec, c.CrashAt,
		c.RebalanceAtSec, c.CrashMidMigration,
		c.CheckpointIntervalSec, c.FullCheckpoints, c.faultload().key())
	if c.TxnRate > 0 {
		k += fmt.Sprintf("/txn%g", c.TxnRate)
	}
	return k
}

// RunResult aggregates everything the paper reports about one run.
type RunResult struct {
	Cfg RunConfig

	// Whole-measurement performance.
	AWIPS  float64
	CV     float64
	WIRTms float64

	// Series is the per-second WIPS histogram over the full run
	// (0..duration), as plotted in Figures 5, 7 and 8.
	Series []float64

	// Fault windows and dependability.
	CrashSec    []float64 // crash times, seconds from run start
	RecoverySec []float64 // recovery-complete times, seconds from run start
	RecoveryDur []float64 // per crashed replica, seconds (Figure 6)

	// Migration reports the live rebalance, when the run scheduled one
	// (RebalanceAtSec): the client-visible window and the moved share of
	// the hash space, alongside the dependability measures.
	Migration metrics.MigrationReport

	// FinalShards is the group count at run end (Shards+1 after a
	// rebalance); PerGroup has this many entries.
	FinalShards int

	Perf   metrics.Performability // first recovery window vs failure-free
	PerfR2 metrics.Performability // second window (delayed recovery only)

	Accuracy     float64
	Availability float64
	Autonomy     float64
	Faults       int
	Errors       int
	Total        int

	// FenceViolations counts fenced reads served below their fence —
	// zero unless the read-your-writes machinery regressed (see
	// webtier.Cluster.FenceViolations). The seeded fault suite asserts
	// it stays zero.
	FenceViolations int64

	// Txn is the cross-shard transaction atomicity audit, filled when
	// the run drove transactions (TxnRate > 0): issue/outcome counts and
	// the three violation classes — lost, duplicated, half-applied —
	// which must all stay zero under every faultload.
	Txn TxnAudit

	// Steady-state checkpoint I/O across all servers, measured from T0
	// (the initial population install is excluded) until the run's drain
	// tail ends — CheckpointWindowSec is that accounting window's length,
	// the denominator for write-rate derivations. The incremental
	// pipeline shrinks bytes-per-write from O(state) to O(writes since
	// the last checkpoint).
	CheckpointWrites    int64
	CheckpointBytes     int64
	CheckpointWindowSec float64

	// CrashedServers lists the flat server index behind each entry of
	// CrashSec, so sharded scenarios can attribute windows to groups.
	CrashedServers []int

	// FaultWindows lists the correlated (non-crash) fault windows the
	// faultload injected — network partitions and disk degradations — one
	// entry per affected group, on the run's x-axis. Nil for crash-only
	// faultloads.
	FaultWindows []metrics.FaultWindow

	// PerGroup carries each Paxos group's slice of the dependability
	// report: its client slice's throughput, accuracy, outage time and
	// recovery windows. One entry per shard (one for the paper's
	// single-group deployment, where it mirrors the aggregate fields).
	PerGroup []metrics.GroupReport

	InitialStateMB float64
	FinalStateMB   float64
	FastActive     bool
	Proxy          webtier.ProxyStats
}

// --- Population cache ---------------------------------------------------

var popCache sync.Map // int (EBs) -> *tpcw.Store prototype

func populationFor(stateMB int) *tpcw.Store {
	ebs := ebsForStateMB(stateMB)
	if v, ok := popCache.Load(ebs); ok {
		return v.(*tpcw.Store)
	}
	proto := tpcw.Populate(tpcw.PopConfig{
		Items:     items,
		EBs:       ebs,
		Reduction: populationReduction,
		Seed:      populationSeed,
	})
	actual, _ := popCache.LoadOrStore(ebs, proto)
	return actual.(*tpcw.Store)
}

// --- Run memoization ----------------------------------------------------

var (
	runMu    sync.Mutex
	runCache = map[string]RunResult{}
)

// Run executes one experiment (memoized per process: several tables share
// runs, exactly as in the paper where Figure 5 plots the Table 1 runs).
func Run(cfg RunConfig) RunResult {
	cfg = cfg.withDefaults()
	runMu.Lock()
	if r, ok := runCache[cfg.key()]; ok {
		runMu.Unlock()
		return r
	}
	runMu.Unlock()
	r := runOnce(cfg)
	runMu.Lock()
	runCache[cfg.key()] = r
	runMu.Unlock()
	return r
}

// RunUncached executes one experiment bypassing the memo cache. The
// generative fault search (internal/exp/search) mutates its schedule
// every trial, so caching those runs would only grow the map without ever
// hitting — and a search probing a deliberately-broken build must never
// poison the cache the table formatters share.
func RunUncached(cfg RunConfig) RunResult {
	return runOnce(cfg.withDefaults())
}

// simSched adapts the simulator to the RBE Scheduler interface.
type simSched struct{ s *sim.Sim }

func (a simSched) Now() time.Time                   { return a.s.Now() }
func (a simSched) After(d time.Duration, fn func()) { a.s.After(d, fn) }

func runOnce(cfg RunConfig) RunResult {
	proto := populationFor(cfg.StateMB)

	type recovery struct {
		server int
		at     time.Time
	}
	var recoveries []recovery

	var pcfg paxos.Config
	if cfg.NoBatch {
		pcfg.BatchDelay = time.Microsecond
		pcfg.MaxBatchCmds = 1
	}
	ckptIv := checkpointInterval
	if cfg.CheckpointIntervalSec > 0 {
		ckptIv = time.Duration(cfg.CheckpointIntervalSec) * time.Second
	}
	cluster := webtier.NewCluster(webtier.Config{
		Servers:            cfg.Servers,
		Shards:             cfg.Shards,
		Readers:            cfg.Readers,
		FastPaxos:          !cfg.NoFast,
		Store:              proto.Clone,
		Cal:                webtier.DefaultCalibration(),
		CheckpointInterval: ckptIv,
		RetainInstances:    retainInstances,
		FullCheckpoints:    cfg.FullCheckpoints,
		Paxos:              pcfg,
		SequentialRecovery: cfg.SeqRec,
		Seed:               cfg.Seed*1e6 + uint64(cfg.Servers)*1000 + uint64(cfg.Profile),
		Net:                expNet,
		Disk:               expDisk,
		OnRecovered: func(server int, at time.Time) {
			recoveries = append(recoveries, recovery{server: server, at: at})
		},
	})
	s := cluster.Sim()
	cluster.Start()

	// Setup phase: elect a leader, install the initial population
	// checkpoint on every disk (the paper populates before measuring).
	s.RunFor(2 * time.Second)
	ckptDone := false
	cluster.CheckpointAll(func() { ckptDone = true })
	deadline := s.Now().Add(60 * time.Second)
	for !ckptDone && s.Now().Before(deadline) {
		s.RunFor(time.Second)
	}

	// T0: the run's time origin (start of ramp-up; the paper's x axis).
	// Checkpoint I/O before this point (the population install) is
	// excluded from the steady-state accounting.
	t0 := s.Now()
	ckptW0, ckptB0 := cluster.CheckpointIO()
	total := rampUp + cfg.Measure + rampDown
	recGroups := cfg.Shards
	if cfg.RebalanceAtSec > 0 {
		recGroups++ // the group the rebalance adds gets its own bucket
	}
	recorder := metrics.NewShardedRecorder(t0, time.Second, recGroups, cluster.GroupOf)
	pop := rbe.New(rbe.Config{
		Browsers:   cfg.Browsers,
		Profile:    cfg.Profile,
		ThinkTime:  thinkTime,
		Population: proto.Info(),
		Seed:       cfg.Seed*31 + uint64(cfg.Profile),
		Recorder:   recorder,
		Stop:       t0.Add(total),
	}, simSched{s: s}, cluster.Frontend())
	pop.Start()

	// Faultload: the run's schedule (enum faultloads resolve through the
	// DSL, see faultload.go), scaled into the measurement interval if it
	// was shortened.
	scale := float64(cfg.Measure) / float64(measure)
	at := func(sec float64) time.Time {
		return t0.Add(rampUp + time.Duration(scale*(sec-30)*float64(time.Second)))
	}
	var crashes []crashEvent
	// Correlated fault state: open partitions by selector key (so OpHeal
	// heals exactly its partner's blocks and overlapping partitions
	// compose), open windows by (kind, selector key) so heals close the
	// windows their partner opened. Degraded disks are tracked per victim
	// for the restore.
	openParts := map[string]*sim.BlockHandle{}
	openWins := map[string][]int{} // kind+selKey -> indices into faultWins
	slowVictims := map[string][]int{}
	// Flaky links are tracked per selector like degraded disks; a restore
	// clears its own victims' links. Unlike disk factors, loss rates from
	// different selectors touching the same victim do not compose — the
	// later write wins per link (schedule disjoint victims to overlap).
	lossVictims := map[string][]int{}
	// Group-isolated servers (OpGroupIsolate), tracked per selector the
	// same way for the reconnect.
	isoVictims := map[string][]int{}
	// Gray-failed servers and delay-inflated links, tracked per selector
	// like flaky links: re-firing a selector supersedes its open event,
	// and the restore clears exactly its own victims.
	grayVictims := map[string][]int{}
	delayVictims := map[string][]int{}
	// diskActive composes overlapping degradations: per victim, the
	// factors of every open OpDiskSlow touching it. The hardware runs at
	// the worst active factor; restoring one event re-applies the max of
	// whatever remains (or heals the drive when none does).
	diskActive := map[int]map[string]float64{}
	applyDiskFactor := func(v int) {
		f := 1.0
		for _, x := range diskActive[v] {
			if x > f {
				f = x
			}
		}
		cluster.SetDiskFactor(v, f)
	}
	var faultWins []metrics.FaultWindow
	secOf := func(t time.Time) float64 { return t.Sub(t0).Seconds() }
	openWindows := func(kind string, ev resolvedEvent, groups []int) {
		key := kind + "/" + ev.selKey
		for _, g := range groups {
			openWins[key] = append(openWins[key], len(faultWins))
			faultWins = append(faultWins, metrics.FaultWindow{
				Kind:    kind,
				Group:   g,
				Dir:     ev.dir.String(),
				Factor:  ev.factor,
				FromSec: secOf(s.Now()),
				ToSec:   -1,
			})
		}
	}
	closeWindows := func(kind string, ev resolvedEvent) {
		key := kind + "/" + ev.selKey
		for _, i := range openWins[key] {
			faultWins[i].ToSec = secOf(s.Now())
		}
		delete(openWins, key)
	}
	for _, ev := range cfg.faultload().resolve(cfg) {
		ev := ev
		t := at(ev.atSec)
		switch ev.op {
		case OpCrash, OpCrashNoRestart:
			for _, v := range ev.victims {
				crashes = append(crashes, crashEvent{server: v, at: t})
			}
			s.At(t, func() {
				for _, v := range ev.victims {
					if ev.op == OpCrashNoRestart {
						cluster.SetAutoRestart(v, false)
					}
					cluster.Crash(v)
				}
			})
		case OpRecover:
			s.At(t, func() {
				for _, v := range ev.victims {
					cluster.ManualRecover(v)
				}
			})
		case OpPartition:
			s.At(t, func() {
				victims := ev.victims
				if ev.leaderOf >= 0 {
					// Late binding: partition whoever leads the group now;
					// the rotation victim is the no-leader fallback.
					if l := cluster.LeaderOf(ev.leaderOf); l >= 0 {
						victims = []int{l}
					}
				}
				if len(victims) == 0 {
					return // e.g. the empty minority of a 1-server group
				}
				if old := openParts[ev.selKey]; old != nil {
					old.Heal() // re-partitioning a selector supersedes its old split
					closeWindows("partition", ev)
				}
				openParts[ev.selKey] = cluster.PartitionServers(ev.dir, victims...)
				openWindows("partition", ev, ev.groups(cfg.Servers))
			})
		case OpHeal:
			s.At(t, func() {
				if h := openParts[ev.selKey]; h != nil {
					h.Heal()
					delete(openParts, ev.selKey)
					closeWindows("partition", ev)
				}
			})
		case OpDiskSlow:
			s.At(t, func() {
				if len(ev.victims) == 0 {
					return
				}
				if old := slowVictims[ev.selKey]; old != nil {
					// Re-degrading a selector supersedes its open event,
					// like re-partitioning one does.
					for _, v := range old {
						delete(diskActive[v], ev.selKey)
					}
					closeWindows("slowdisk", ev)
				}
				for _, v := range ev.victims {
					if diskActive[v] == nil {
						diskActive[v] = map[string]float64{}
					}
					diskActive[v][ev.selKey] = ev.factor
					cluster.DegradeDisk(v, ev.factor) // counts the fault
					applyDiskFactor(v)                // worst active factor wins
				}
				slowVictims[ev.selKey] = ev.victims
				openWindows("slowdisk", ev, ev.groups(cfg.Servers))
			})
		case OpDiskRestore:
			s.At(t, func() {
				for _, v := range slowVictims[ev.selKey] {
					delete(diskActive[v], ev.selKey)
					applyDiskFactor(v) // back to the next-worst, or healthy
				}
				delete(slowVictims, ev.selKey)
				closeWindows("slowdisk", ev)
			})
		case OpLinkLoss:
			s.At(t, func() {
				victims := ev.victims
				if ev.leaderOf >= 0 {
					// Late binding, like OpPartition: degrade whoever leads
					// the group now.
					if l := cluster.LeaderOf(ev.leaderOf); l >= 0 {
						victims = []int{l}
					}
				}
				if len(victims) == 0 {
					return
				}
				if old := lossVictims[ev.selKey]; old != nil {
					// Re-degrading a selector supersedes its open event.
					cluster.SetLinkRate(env.LinkBothWays, 0, old...)
					closeWindows("linkloss", ev)
				}
				cluster.DegradeLinks(ev.dir, ev.factor, victims...)
				lossVictims[ev.selKey] = victims
				openWindows("linkloss", ev, ev.groups(cfg.Servers))
			})
		case OpLinkRestore:
			s.At(t, func() {
				if old := lossVictims[ev.selKey]; old != nil {
					cluster.RestoreLinks(old...)
					delete(lossVictims, ev.selKey)
					closeWindows("linkloss", ev)
				}
			})
		case OpGroupIsolate:
			s.At(t, func() {
				if len(ev.victims) == 0 {
					return
				}
				if old := isoVictims[ev.selKey]; old != nil {
					// Re-isolating a selector supersedes its open event.
					cluster.ReconnectToGroup(old...)
					closeWindows("partition", ev)
				}
				cluster.IsolateFromGroup(ev.victims...)
				isoVictims[ev.selKey] = ev.victims
				openWindows("partition", ev, ev.groups(cfg.Servers))
			})
		case OpGroupReconnect:
			s.At(t, func() {
				if old := isoVictims[ev.selKey]; old != nil {
					cluster.ReconnectToGroup(old...)
					delete(isoVictims, ev.selKey)
					closeWindows("partition", ev)
				}
			})
		case OpGrayFail:
			s.At(t, func() {
				victims := ev.victims
				if ev.leaderOf >= 0 {
					// Late binding, like OpPartition: gray-fail whoever
					// leads the group now.
					if l := cluster.LeaderOf(ev.leaderOf); l >= 0 {
						victims = []int{l}
					}
				}
				if len(victims) == 0 {
					return
				}
				if old := grayVictims[ev.selKey]; old != nil {
					// Re-graying a selector supersedes its open event.
					for _, v := range old {
						cluster.SetGray(v, 0)
					}
					closeWindows("grayfail", ev)
				}
				for _, v := range victims {
					cluster.GrayFail(v, ev.factor) // counts the fault
				}
				grayVictims[ev.selKey] = victims
				openWindows("grayfail", ev, ev.groups(cfg.Servers))
			})
		case OpGrayRestore:
			s.At(t, func() {
				if old := grayVictims[ev.selKey]; old != nil {
					for _, v := range old {
						cluster.GrayRestore(v)
					}
					delete(grayVictims, ev.selKey)
					closeWindows("grayfail", ev)
				}
			})
		case OpLinkDelay:
			s.At(t, func() {
				victims := ev.victims
				if ev.leaderOf >= 0 {
					if l := cluster.LeaderOf(ev.leaderOf); l >= 0 {
						victims = []int{l}
					}
				}
				if len(victims) == 0 {
					return
				}
				if old := delayVictims[ev.selKey]; old != nil {
					// Re-delaying a selector supersedes its open event.
					cluster.RestoreLinkDelay(old...)
					closeWindows("linkdelay", ev)
				}
				cluster.DegradeLinkDelay(ev.dir, ev.factor, victims...)
				delayVictims[ev.selKey] = victims
				openWindows("linkdelay", ev, ev.groups(cfg.Servers))
			})
		case OpLinkDelayRestore:
			s.At(t, func() {
				if old := delayVictims[ev.selKey]; old != nil {
					cluster.RestoreLinkDelay(old...)
					delete(delayVictims, ev.selKey)
					closeWindows("linkdelay", ev)
				}
			})
		}
	}

	// Live rebalance: one group joins at the scheduled time and its
	// session slices migrate to it. A mid-migration crash (the
	// handoff-under-fault scenario) fires exactly at the copy-phase
	// transition, deterministically inside the window.
	if cfg.RebalanceAtSec > 0 {
		s.At(at(cfg.RebalanceAtSec), func() {
			cluster.Rebalance(webtier.RebalanceOptions{
				OnPhase: func(phase string) {
					if phase == webtier.PhaseCopy && cfg.CrashMidMigration {
						victim := pickVictimsInGroup(cfg, 0)[0]
						crashes = append(crashes, crashEvent{server: victim, at: s.Now()})
						cluster.Crash(victim)
					}
				},
			})
		})
	}

	// Cross-shard transaction driver: gift purchases and inventory
	// sweeps at TxnRate per second of measured time, audited for
	// atomicity after the drain tail. Scheduled only when enabled, so
	// TxnRate=0 runs replay the exact historical event sequence.
	var txnDrv *txnDriver
	if cfg.TxnRate > 0 {
		txnDrv = startTxnDriver(cfg, cluster, s, t0, proto.Info())
	}

	// Run to completion plus a drain tail for late recoveries.
	s.RunUntil(t0.Add(total + 90*time.Second))

	res := collect(cfg, cluster, recorder, t0, total, crashes,
		func() []recoveryEvent {
			out := make([]recoveryEvent, 0, len(recoveries))
			for _, r := range recoveries {
				out = append(out, recoveryEvent{server: r.server, at: r.at})
			}
			return out
		}(), faultWins)
	w, b := cluster.CheckpointIO()
	res.CheckpointWrites = w - ckptW0
	res.CheckpointBytes = b - ckptB0
	res.CheckpointWindowSec = s.Now().Sub(t0).Seconds()
	if txnDrv != nil {
		res.Txn = txnDrv.audit()
	}
	return res
}

type recoveryEvent struct {
	server int
	at     time.Time
}

// crashEvent is one scheduled crash of one server.
type crashEvent struct {
	server int
	at     time.Time
}

// groupOfFlat maps a flat server index — voter or learner reader — to its
// Paxos group (readers occupy the range past the voters; a rebalance-grown
// deployment never has readers, so the group-major rule covers it).
func groupOfFlat(cfg RunConfig, server int) int {
	voters := cfg.Shards * cfg.Servers
	if cfg.Readers > 0 && server >= voters {
		return (server - voters) / cfg.Readers
	}
	return server / cfg.Servers
}

// pickVictims chooses crash targets deterministically ("chosen at random",
// §5.5) — distinct servers, avoiding none in particular.
func pickVictims(cfg RunConfig) []int {
	return pickVictimsInGroup(cfg, 0)
}

// pickVictimsInGroup is the per-group victim rotation: member indices
// within group g, distinct where the group size allows it. Group 0's
// rotation is exactly the historical pickVictims, so single-group runs
// crash the same servers they always did.
func pickVictimsInGroup(cfg RunConfig, g int) []int {
	if cfg.Servers == 1 {
		// Degenerate group: its only member is every victim (the sharded
		// faultloads sweep group size down to 1).
		return []int{0, 0}
	}
	a := int(cfg.Seed+uint64(cfg.Profile)*3+uint64(g)*7) % cfg.Servers
	b := (a + 1 + int(cfg.Seed)%(cfg.Servers-1)) % cfg.Servers
	return []int{a, b}
}

// collect derives the paper's measures from a finished run.
func collect(cfg RunConfig, cluster *webtier.Cluster, srec *metrics.ShardedRecorder,
	t0 time.Time, total time.Duration, crashes []crashEvent,
	recoveries []recoveryEvent, faultWins []metrics.FaultWindow) RunResult {

	rec := srec.Aggregate()
	sec := func(t time.Time) float64 { return t.Sub(t0).Seconds() }
	mStart := int(rampUp.Seconds())
	mEnd := int((rampUp + cfg.Measure).Seconds())

	res := RunResult{
		Cfg:    cfg,
		AWIPS:  rec.AWIPS(mStart, mEnd),
		CV:     rec.CV(mStart, mEnd),
		WIRTms: rec.MeanLatency(mStart, mEnd) * 1000,
		Series: rec.Series(0, int(total.Seconds())),
		Total:  rec.Total(),
		Errors: rec.TotalErrors(),
	}
	res.Accuracy = rec.Accuracy()
	res.Proxy = cluster.ProxyStats()
	res.FaultWindows = faultWins
	res.Availability = metrics.Availability(cluster.Downtime(), total)
	res.Autonomy = metrics.ComputeAutonomy(cluster.Interventions(), cluster.Faults())
	res.Faults = cluster.Faults()
	res.FenceViolations = cluster.FenceViolations()

	// Match recoveries to crashes per victim (first recovery after the
	// crash). matchedRec aligns with crashes; -1 marks a victim that never
	// came back.
	matchedRec := make([]float64, len(crashes))
	for i, ce := range crashes {
		res.CrashSec = append(res.CrashSec, sec(ce.at))
		res.CrashedServers = append(res.CrashedServers, ce.server)
		matchedRec[i] = -1
		for _, rv := range recoveries {
			if rv.server == ce.server && rv.at.After(ce.at) {
				matchedRec[i] = sec(rv.at)
				res.RecoverySec = append(res.RecoverySec, sec(rv.at))
				res.RecoveryDur = append(res.RecoveryDur, rv.at.Sub(ce.at).Seconds())
				break
			}
		}
	}

	// Performability windows (§5.1): failure-free vs recovery periods
	// within the measurement interval.
	fl := cfg.faultload()
	if len(res.CrashSec) > 0 {
		crash0 := int(res.CrashSec[0])
		recEnd := mEnd
		if len(res.RecoverySec) > 0 {
			recEnd = int(maxFloat(res.RecoverySec))
			if recEnd > mEnd {
				recEnd = mEnd
			}
		}
		ff := []metrics.Window{{From: mStart, To: crash0}}
		if recEnd+1 < mEnd {
			ff = append(ff, metrics.Window{From: recEnd + 1, To: mEnd})
		}
		manualAt := firstRecoverSec(fl)
		if manualAt >= 0 && delayedRecoveryShape(fl) && len(res.RecoverySec) >= 2 {
			// Two windows: autonomous recovery R1 and the operator's
			// delayed recovery R2 (Table 5).
			r1End := int(res.RecoverySec[0])
			r2Start := int(manualAt * float64(cfg.Measure) / float64(measure))
			if cfg.Measure == measure {
				r2Start = int(manualAt)
			}
			r2End := int(res.RecoverySec[1])
			if r2End > mEnd {
				r2End = mEnd
			}
			ffd := []metrics.Window{{From: mStart, To: crash0}}
			res.Perf = rec.ComputePerformability(ffd, metrics.Window{From: crash0, To: r1End})
			res.PerfR2 = rec.ComputePerformability(ffd, metrics.Window{From: r2Start, To: r2End})
		} else {
			res.Perf = rec.ComputePerformability(ff, metrics.Window{From: crash0, To: recEnd})
		}
	} else if w := windowSpan(faultWins, -1, total.Seconds()); w != nil {
		// No crashes, but correlated fault windows (partition / slow
		// disk): performability compares the faulty interval against the
		// failure-free remainder, exactly like a recovery window.
		if f0, f1, ok := clipWindow(w[0], w[1], mStart, mEnd); ok {
			ff := []metrics.Window{{From: mStart, To: f0}}
			if f1+1 < mEnd {
				ff = append(ff, metrics.Window{From: f1 + 1, To: mEnd})
			}
			res.Perf = rec.ComputePerformability(ff, metrics.Window{From: f0, To: f1})
		}
	}

	// The live rebalance's report: migration window on the x-axis plus
	// the moved hash-space share.
	res.FinalShards = cluster.Shards()
	if mst := cluster.Migration(); !mst.StartedAt.IsZero() {
		res.Migration = metrics.MigrationReport{
			Happened:    true,
			NewGroup:    mst.NewGroup,
			MovedSlices: mst.MovedSlices,
			TotalSlices: mst.TotalSlices,
			StartSec:    sec(mst.StartedAt),
		}
		if !mst.CutoverAt.IsZero() {
			res.Migration.CutoverSec = sec(mst.CutoverAt)
			res.Migration.WindowSec = mst.Window().Seconds()
		}
	}

	// Per-group dependability: each Paxos group's client slice, outage
	// time and recovery windows (the sharded generalization of the
	// availability/performability report; one mirror entry at Shards=1,
	// one extra entry for a group a rebalance added).
	gdt := cluster.GroupDowntimes()
	res.PerGroup = make([]metrics.GroupReport, res.FinalShards)
	for g := 0; g < res.FinalShards; g++ {
		grec := srec.Group(g)
		gr := metrics.GroupReport{
			Group:        g,
			AWIPS:        grec.AWIPS(mStart, mEnd),
			Downtime:     gdt[g],
			Availability: metrics.Availability(gdt[g], total),
		}
		if g < cfg.Shards {
			// Read-path staleness accounting (zero on rebalance-added
			// groups: a rebalance excludes readers). The rate is over the
			// full run window — readers serve through ramp-up and drain too.
			served, fw, ss := cluster.ReadStats(g)
			gr.ReadsServed = served
			gr.ReadsPerSec = float64(served) / total.Seconds()
			gr.FenceWaits = fw
			gr.StaleServes = ss
			// Cross-shard transaction accounting (zero when the run
			// drove none): decision outcomes this group's log ordered
			// and the time its prepared branches blocked conflict keys.
			tc, ta, tb := cluster.TxnStats(g)
			gr.TxnCommits = tc
			gr.TxnAborts = ta
			gr.TxnBlockedSec = tb.Seconds()
		}
		// Group accuracy folds read-path quality in: fence waits and stale
		// serves discount it alongside hard errors (bit-identical to plain
		// Accuracy() when both staleness counters are zero).
		gr.Accuracy = metrics.WeightedGroupAccuracy(grec.Total(), grec.TotalErrors(),
			gr.FenceWaits, gr.StaleServes)
		gCrash0, gRecEnd := -1, -1
		var durSum float64
		for i, ce := range crashes {
			if groupOfFlat(cfg, ce.server) != g {
				continue
			}
			gr.Crashes++
			cs := int(sec(ce.at))
			if gCrash0 < 0 || cs < gCrash0 {
				gCrash0 = cs
			}
			if matchedRec[i] >= 0 {
				gr.Recoveries++
				durSum += matchedRec[i] - sec(ce.at)
				if re := int(matchedRec[i]); re > gRecEnd {
					gRecEnd = re
				}
			}
		}
		if gr.Recoveries > 0 {
			gr.MeanRecoverySec = durSum / float64(gr.Recoveries)
		}
		// Correlated fault windows: this group's partitioned and
		// disk-degraded time (open windows extend to the accounting end).
		endSec := total.Seconds()
		for _, fw := range faultWins {
			if fw.Group != g {
				continue
			}
			to := fw.ToSec
			if to < 0 {
				to = endSec
			}
			switch fw.Kind {
			case "partition":
				gr.Partitions++
				gr.PartitionSec += to - fw.FromSec
			case "slowdisk":
				gr.Degradations++
				gr.DegradedSec += to - fw.FromSec
			case "linkloss":
				gr.LossWindows++
				gr.LossSec += to - fw.FromSec
			case "grayfail":
				gr.GrayWindows++
				gr.GraySec += to - fw.FromSec
			case "linkdelay":
				gr.DelayWindows++
				gr.DelaySec += to - fw.FromSec
			}
		}
		if gr.Crashes > 0 {
			if gRecEnd < 0 || gRecEnd > mEnd {
				gRecEnd = mEnd
			}
			gff := []metrics.Window{{From: mStart, To: gCrash0}}
			if gRecEnd+1 < mEnd {
				gff = append(gff, metrics.Window{From: gRecEnd + 1, To: mEnd})
			}
			gr.Perf = grec.ComputePerformability(gff, metrics.Window{From: gCrash0, To: gRecEnd})
		} else if w := windowSpan(faultWins, g, endSec); w != nil {
			// Crash-free group under a partition or disk-degradation
			// window: its performability compares the window against the
			// failure-free rest.
			if f0, f1, ok := clipWindow(w[0], w[1], mStart, mEnd); ok {
				gff := []metrics.Window{{From: mStart, To: f0}}
				if f1+1 < mEnd {
					gff = append(gff, metrics.Window{From: f1 + 1, To: mEnd})
				}
				gr.Perf = grec.ComputePerformability(gff, metrics.Window{From: f0, To: f1})
			}
		}
		res.PerGroup[g] = gr
	}

	// State sizes. Every server starts from the full population and grows
	// by its own group's writes, so the final size is the largest live
	// replica state across groups (with one group, exactly the paper's
	// single-store measure).
	res.InitialStateMB = float64(populationFor(cfg.StateMB).NominalBytes()) / 1e6
	for g := 0; g < res.FinalShards; g++ {
		for i := g * cfg.Servers; i < (g+1)*cfg.Servers; i++ {
			if st := cluster.Store(i); st != nil {
				if mb := float64(st.NominalBytes()) / 1e6; mb > res.FinalStateMB {
					res.FinalStateMB = mb
				}
				break
			}
		}
	}
	for i := 0; i < cluster.TotalServers(); i++ {
		if r := cluster.Replica(i); r != nil && r.Engine() != nil {
			res.FastActive = res.FastActive || r.Engine().FastActive()
		}
	}
	return res
}

// firstRecoverSec returns the earliest manual-recovery time of the
// faultload on the paper's x-axis, or -1 when it schedules none.
func firstRecoverSec(f Faultload) float64 {
	out := -1.0
	for _, ev := range f.Events {
		if ev.Op == OpRecover && (out < 0 || ev.AtSec < out) {
			out = ev.AtSec
		}
	}
	return out
}

// delayedRecoveryShape reports whether the faultload has the §5.6 shape —
// an autonomous recovery (OpCrash) alongside a delayed manual one — for
// which Table 5's two-window performability (R1 autonomous, R2 manual)
// applies. All-manual schedules like a whole-group outage get the single
// crash-to-last-recovery window instead.
func delayedRecoveryShape(f Faultload) bool {
	auto := false
	for _, ev := range f.Events {
		if ev.Op == OpCrash {
			auto = true
		}
	}
	return auto
}

// windowSpan returns the [first-open, last-close] span of the fault
// windows touching group g (any group when g < 0), or nil when none.
// Windows still open extend to endSec.
func windowSpan(wins []metrics.FaultWindow, g int, endSec float64) *[2]float64 {
	from, to := -1.0, -1.0
	for _, fw := range wins {
		if g >= 0 && fw.Group != g {
			continue
		}
		end := fw.ToSec
		if end < 0 {
			end = endSec
		}
		if from < 0 || fw.FromSec < from {
			from = fw.FromSec
		}
		if end > to {
			to = end
		}
	}
	if from < 0 {
		return nil
	}
	return &[2]float64{from, to}
}

// clipWindow converts a [fromSec, toSec] span to whole-second bucket
// bounds clipped to the measurement interval, reporting ok=false when the
// span misses it entirely.
func clipWindow(fromSec, toSec float64, mStart, mEnd int) (f0, f1 int, ok bool) {
	f0, f1 = int(fromSec), int(toSec)
	if f0 >= mEnd || f1 <= mStart || f1 <= f0 {
		return 0, 0, false
	}
	if f0 < mStart {
		f0 = mStart
	}
	if f1 > mEnd {
		f1 = mEnd
	}
	return f0, f1, true
}

func maxFloat(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
