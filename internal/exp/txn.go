package exp

// Cross-shard transaction faultload experiments (ROADMAP item 1's
// measurement side): a deterministic driver issues gift purchases and
// inventory sweeps — the two multi-shard write interactions — alongside
// the RBE load while the faultload attacks the 2PC window, and an
// end-of-run audit proves atomicity from the surviving state: every
// transaction either happened everywhere or nowhere, exactly once.
//
// The audit's reading of replies is deliberately asymmetric. An OK reply
// is a commit promise — the decision record was Paxos-committed before
// the reply — so the effects must exist, exactly once. An error reply or
// a missing reply is NOT an abort promise: the proxy may have lost the
// response of a transaction that committed, or given up while the
// outcome was still resolving. Those transactions may legitimately land
// either way; what they may never do is half-land or double-land.

import (
	"fmt"
	"math/rand"
	"time"

	"robuststore/internal/rbe"
	"robuststore/internal/sim"
	"robuststore/internal/tpcw"
	"robuststore/internal/webtier"
)

// TxnAudit is the cross-shard transaction atomicity report of one run.
// The violation classes — Lost, Duplicated, HalfApplied — must stay zero
// under every faultload; the outcome counters describe, not judge.
type TxnAudit struct {
	Issued     int // transactions the driver submitted
	CrossShard int // of those, how many spanned ≥ 2 groups

	Committed  int // effects present (and, when replied OK, promised)
	Aborted    int // no effects present, no commit promise broken
	Unresolved int // no reply and state unobservable — counted, not judged

	Lost        int // replied OK but no effect survives anywhere
	Duplicated  int // effect applied more than once
	HalfApplied int // effect on some participant groups but not others
}

// Violations returns the total atomicity violations.
func (a TxnAudit) Violations() int { return a.Lost + a.Duplicated + a.HalfApplied }

// txnRecord tracks one driven transaction from issue to audit.
type txnRecord struct {
	gift  bool
	tag   string
	cross bool

	// Gift: the recipient row's home group, where the tagged order must
	// appear. Sweep: the swept items partitioned by home group, and the
	// unique cost that marks application.
	group int
	items map[int][]tpcw.ItemID
	cost  float64

	// reused marks a sweep whose item block wrapped the item space (only
	// at transaction rates far past the suite's): a later sweep may
	// legitimately overwrite its tags, so it is not violation-judged.
	reused bool

	replied bool
	ok      bool
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// txnDriver issues the transaction workload on the simulation loop and
// audits it after the run. All mutable state is touched only from sim
// callbacks (issue) or after the simulation stopped (audit).
type txnDriver struct {
	cfg     RunConfig
	cluster *webtier.Cluster
	recs    []*txnRecord
}

// startTxnDriver schedules cfg.TxnRate transactions per second of
// measured time, spread uniformly over the measurement interval,
// alternating gift purchases and inventory sweeps. Determinism: one
// seeded source drawn in schedule order on the simulation loop.
func startTxnDriver(cfg RunConfig, cluster *webtier.Cluster, s *sim.Sim,
	t0 time.Time, info tpcw.PopulationInfo) *txnDriver {
	d := &txnDriver{cfg: cfg, cluster: cluster}
	rng := rand.New(rand.NewSource(int64(cfg.Seed)*7919 + 271))
	n := int(cfg.TxnRate * cfg.Measure.Seconds())
	if n < 1 {
		n = 1
	}
	interval := cfg.Measure / time.Duration(n)
	for k := 0; k < n; k++ {
		k := k
		s.At(t0.Add(rampUp+time.Duration(k)*interval), func() {
			d.issue(k, rng, info)
		})
	}
	return d
}

// issue submits transaction k. Sessions live off the RBE client-id space
// (1e6+) so the transaction load never collides with a browser session.
func (d *txnDriver) issue(k int, rng *rand.Rand, info tpcw.PopulationInfo) {
	client := int64(1_000_000 + k)
	if k%2 == 0 {
		// Gift purchase: buyer's session coordinates, recipient's home
		// group participates. Prefer a recipient routed off the session's
		// group so most gifts exercise 2PC; the rare same-group draw
		// exercises the fast path instead.
		home := d.cluster.GroupOf(client)
		peer := tpcw.CustomerID(1 + rng.Intn(info.Customers))
		for try := 0; try < 64 && d.cluster.CustomerGroup(peer) == home && d.cfg.Shards > 1; try++ {
			peer = tpcw.CustomerID(1 + rng.Intn(info.Customers))
		}
		rec := &txnRecord{
			gift:  true,
			tag:   fmt.Sprintf("txn-gift-%d", k),
			group: d.cluster.CustomerGroup(peer),
			cross: d.cluster.CustomerGroup(peer) != home,
		}
		d.recs = append(d.recs, rec)
		d.cluster.Frontend().Do(rbe.Request{
			Client:   client,
			Kind:     rbe.GiftPurchase,
			Customer: tpcw.CustomerID(1 + rng.Intn(info.Customers)),
			Peer:     peer,
			Item:     tpcw.ItemID(1 + rng.Intn(info.Items)),
			Tag:      rec.tag,
		}, func(resp rbe.Response) { rec.replied, rec.ok = true, !resp.Err })
		return
	}
	// Inventory sweep: reprice a small item set to one unique cost, the
	// sweep's audit tag stamped on every repriced item. Each sweep takes
	// its own disjoint block of the item space, so no later sweep can
	// overwrite an earlier sweep's tag and confuse the audit. The hash
	// router scatters consecutive IDs, so nearly every block spans both
	// groups; the rare single-group block exercises the fast path.
	j := k / 2 // sweep ordinal
	reused := (j+1)*4 > info.Items
	base := 1 + (j*4)%maxInt(info.Items-3, 1)
	items := make([]tpcw.ItemID, 0, 4)
	byGroup := map[int][]tpcw.ItemID{}
	for i := 0; i < 4; i++ {
		id := tpcw.ItemID(base + i)
		items = append(items, id)
		g := d.cluster.ItemGroup(id)
		byGroup[g] = append(byGroup[g], id)
	}
	rec := &txnRecord{
		tag:    fmt.Sprintf("txn-sweep-%d", k),
		items:  byGroup,
		cost:   1e5 + float64(k),
		cross:  len(byGroup) > 1,
		reused: reused,
	}
	d.recs = append(d.recs, rec)
	d.cluster.Frontend().Do(rbe.Request{
		Client: client,
		Kind:   rbe.StockSweep,
		Items:  items,
		Cost:   rec.cost,
		Tag:    rec.tag,
	}, func(resp rbe.Response) { rec.replied, rec.ok = true, !resp.Err })
}

// groupStores returns group g's live replica stores (crashed members
// still down at audit time are skipped).
func (d *txnDriver) groupStores(g int) []*tpcw.Store {
	var out []*tpcw.Store
	for i := g * d.cfg.Servers; i < (g+1)*d.cfg.Servers; i++ {
		if st := d.cluster.Store(i); st != nil {
			out = append(out, st)
		}
	}
	return out
}

// taggedOn returns the most-advanced replica's count of orders carrying
// the tag on group g — "any replica applied it" is the group's decided
// state, since application only ever follows the durable outcome record.
func (d *txnDriver) taggedOn(g int, tag string) int {
	max := 0
	for _, st := range d.groupStores(g) {
		if n := st.OrdersTagged(tag); n > max {
			max = n
		}
	}
	return max
}

// sweptOn reports whether group g applied the sweep branch: some replica
// shows every swept item it owns stamped with the sweep's tag (the tag
// survives later ordinary repricing; item blocks are disjoint across
// sweeps). Per replica the branch is one atomic action, so all-or-nothing
// holds within a replica.
func (d *txnDriver) sweptOn(g int, items []tpcw.ItemID, tag string) bool {
	for _, st := range d.groupStores(g) {
		all := true
		for _, id := range items {
			it, ok := st.GetBook(id)
			if !ok || it.SweptTag != tag {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// audit classifies every driven transaction from the surviving state.
// Call only after the simulation stopped (the drain tail gives stranded
// transactions their resolution window first).
func (d *txnDriver) audit() TxnAudit {
	a := TxnAudit{}
	for _, rec := range d.recs {
		a.Issued++
		if rec.cross {
			a.CrossShard++
		}
		if rec.gift {
			d.auditGift(rec, &a)
		} else {
			d.auditSweep(rec, &a)
		}
	}
	return a
}

func (d *txnDriver) auditGift(rec *txnRecord, a *TxnAudit) {
	if len(d.groupStores(rec.group)) == 0 {
		a.Unresolved++ // recipient group unobservable; nothing to judge
		return
	}
	on := d.taggedOn(rec.group, rec.tag)
	off := 0
	for g := 0; g < d.cfg.Shards; g++ {
		if g != rec.group {
			off += d.taggedOn(g, rec.tag)
		}
	}
	total := on + off
	if total > 1 {
		a.Duplicated++
	} else if off > 0 {
		a.HalfApplied++ // the one order landed on the wrong group
	}
	switch {
	case rec.replied && rec.ok:
		a.Committed++
		if total == 0 {
			a.Lost++ // OK reply is a commit promise
		}
	case rec.replied:
		// Error reply: outcome unknown, either way is legitimate.
		if total > 0 {
			a.Committed++
		} else {
			a.Aborted++
		}
	default:
		a.Unresolved++
	}
}

func (d *txnDriver) auditSweep(rec *txnRecord, a *TxnAudit) {
	if rec.reused {
		a.Unresolved++ // wrapped item block: tags not uniquely attributable
		return
	}
	applied, missing, blind := 0, 0, 0
	for g, items := range rec.items {
		if len(d.groupStores(g)) == 0 {
			blind++
			continue
		}
		if d.sweptOn(g, items, rec.tag) {
			applied++
		} else {
			missing++
		}
	}
	if blind > 0 {
		a.Unresolved++ // some participant group unobservable
		return
	}
	if applied > 0 && missing > 0 {
		a.HalfApplied++ // the violation no reply can excuse
	}
	switch {
	case rec.replied && rec.ok:
		a.Committed++
		if applied == 0 {
			a.Lost++
		}
	case rec.replied:
		if applied > 0 {
			a.Committed++
		} else {
			a.Aborted++
		}
	default:
		a.Unresolved++
	}
}

// --- Transaction faultload scenarios -------------------------------------

// TxnCoordinatorCrash kills group 0's consensus leader — the member
// coordinating most of group 0's cross-shard transactions — at t=270 s,
// mid-measurement: transactions in flight between prepare and commit lose
// their coordinator and must resolve from the replicated decision state
// (recorded outcome, or presumed abort) after the auto-restart.
func TxnCoordinatorCrash() Faultload {
	return Faultload{Name: "txn-coordinator-crash", Events: []FaultEvent{
		{AtSec: 270, Op: OpCrash, Select: Leader(0)},
	}}
}

// TxnCoordinatorPartition severs participant group 1 from the cluster
// from t=240 s to t=330 s: prepares (and outcome fan-outs) into group 1
// time out, coordinators presume abort, and prepared branches stranded
// inside group 1 resolve by inquiry after the heal — all while group 1's
// members keep running with no state lost.
func TxnCoordinatorPartition() Faultload {
	return Faultload{Name: "txn-coordinator-partition", Events: []FaultEvent{
		{AtSec: 240, Op: OpPartition, Select: WholeGroup(1)},
		{AtSec: 330, Op: OpHeal, Select: WholeGroup(1)},
	}}
}

// TxnParticipantCrash kills group 1's consensus leader at t=270 s: the
// participant most likely to hold prepared branches dies holding them,
// replays its log on restart (prepares included, their keys re-blocked)
// and resolves them from the home groups' decision records.
func TxnParticipantCrash() Faultload {
	return Faultload{Name: "txn-participant-crash", Events: []FaultEvent{
		{AtSec: 270, Op: OpCrash, Select: Leader(1)},
	}}
}

// TxnFaultloads returns the named transaction-window scenario set: each
// fault is aimed at a different edge of the 2PC window (coordinator
// death after prepare, participant unreachable, participant death while
// prepared). All run with the transaction driver on.
func TxnFaultloads() []Faultload {
	return []Faultload{
		TxnCoordinatorCrash(),
		TxnCoordinatorPartition(),
		TxnParticipantCrash(),
	}
}

// TxnSuite runs every transaction-window scenario against one sharded
// deployment with the cross-shard transaction driver on (TxnRate 2/s)
// and returns the per-scenario results, each carrying the atomicity
// audit (RunResult.Txn) and the per-group transaction counters.
func TxnSuite(cfg ShardedSuiteConfig) []RunResult {
	cfg = cfg.withDefaults()
	scenarios := TxnFaultloads()
	out := make([]RunResult, 0, len(scenarios))
	for i := range scenarios {
		fl := scenarios[i]
		out = append(out, Run(RunConfig{
			Profile:   rbe.Shopping,
			Servers:   cfg.Servers,
			Shards:    cfg.Shards,
			StateMB:   cfg.StateMB,
			Faultload: &fl,
			Browsers:  cfg.Browsers,
			Measure:   cfg.Measure,
			Seed:      cfg.Seed,
			TxnRate:   2,
		}))
	}
	return out
}
