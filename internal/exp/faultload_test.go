package exp

import (
	"reflect"
	"testing"
	"time"

	"robuststore/internal/rbe"
)

// equivCfg is a shortened run shared by the equivalence tests.
func equivCfg(kind FaultKind) RunConfig {
	return RunConfig{
		Profile: rbe.Shopping, Servers: 3, StateMB: 300,
		Fault: kind, Browsers: 200, Measure: 90 * time.Second,
		CrashAt: 60, Seed: 5,
	}
}

// TestPaperFaultloadEquivalence: each paper faultload, re-expressed as an
// explicit DSL Faultload, must produce a RunResult identical to the enum
// shorthand at Shards=1 — the engine is one code path, and the DSL form
// resolves to exactly the schedule the closed dispatch used to build.
func TestPaperFaultloadEquivalence(t *testing.T) {
	for _, kind := range []FaultKind{OneCrash, TwoCrashes, DelayedRecovery} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			enum := runOnce(equivCfg(kind).withDefaults())

			fl := PaperFaultload(kind)
			dslCfg := equivCfg(NoFault)
			dslCfg.Faultload = &fl
			dsl := runOnce(dslCfg.withDefaults())

			if len(enum.CrashSec) == 0 || len(enum.RecoverySec) == 0 {
				t.Fatalf("enum run has no fault activity: crashes %v recoveries %v",
					enum.CrashSec, enum.RecoverySec)
			}
			enum.Cfg, dsl.Cfg = RunConfig{}, RunConfig{}
			if !reflect.DeepEqual(enum, dsl) {
				t.Fatalf("DSL run diverged from enum run:\nenum: %+v\ndsl:  %+v", enum, dsl)
			}
		})
	}
}

func TestPickVictimsDegenerateGroup(t *testing.T) {
	// Servers=1 used to divide by zero; the lone member is every victim.
	for seed := uint64(0); seed < 5; seed++ {
		v := pickVictims(RunConfig{Seed: seed, Servers: 1, Profile: rbe.Shopping})
		if v[0] != 0 || v[1] != 0 {
			t.Fatalf("Servers=1 victims = %v, want [0 0]", v)
		}
	}
	// Servers=2 still yields distinct victims.
	for seed := uint64(0); seed < 10; seed++ {
		v := pickVictims(RunConfig{Seed: seed, Servers: 2, Profile: rbe.Ordering})
		if v[0] == v[1] || v[0] >= 2 || v[1] >= 2 {
			t.Fatalf("Servers=2 victims = %v", v)
		}
	}
}

func TestPickVictimsPerGroupMatchesLegacyAtGroupZero(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		cfg := RunConfig{Seed: seed, Servers: 5, Profile: rbe.Shopping}
		legacy := []int{
			int(cfg.Seed+uint64(cfg.Profile)*3) % cfg.Servers,
		}
		legacy = append(legacy, (legacy[0]+1+int(cfg.Seed)%(cfg.Servers-1))%cfg.Servers)
		if got := pickVictimsInGroup(cfg, 0); !reflect.DeepEqual(got, legacy) {
			t.Fatalf("seed %d: group-0 rotation %v != legacy %v", seed, got, legacy)
		}
	}
}

// TestSingleServerFaultRun: the degenerate one-server group survives a
// fault run end to end — the crash registers as a full outage and the
// watchdog restores service.
func TestSingleServerFaultRun(t *testing.T) {
	r := Run(RunConfig{
		Profile: rbe.Shopping, Servers: 1, StateMB: 300,
		Fault: OneCrash, Browsers: 100, Measure: 120 * time.Second,
		CrashAt: 60, Seed: 2,
	})
	if len(r.CrashSec) != 1 {
		t.Fatalf("crashes: %v", r.CrashSec)
	}
	if len(r.RecoverySec) != 1 {
		t.Fatalf("the lone server never recovered: %v", r.RecoverySec)
	}
	if r.Availability >= 1 {
		t.Errorf("availability = %v, a single-server crash must register as an outage", r.Availability)
	}
	if r.Autonomy != 0 {
		t.Errorf("autonomy = %v, want 0 (watchdog recovery)", r.Autonomy)
	}
}

func TestFaultloadShifted(t *testing.T) {
	fl := PaperFaultload(DelayedRecovery).shifted(90)
	var crashAt []float64
	var recoverAt []float64
	for _, ev := range fl.Events {
		if ev.Op == OpRecover {
			recoverAt = append(recoverAt, ev.AtSec)
		} else {
			crashAt = append(crashAt, ev.AtSec)
		}
	}
	if len(crashAt) != 2 || crashAt[0] != 90 || crashAt[1] != 90 {
		t.Errorf("shifted crashes = %v, want both at 90", crashAt)
	}
	if len(recoverAt) != 1 || recoverAt[0] != 390 {
		t.Errorf("recovery moved to %v; the §5.6 intervention stays at 390", recoverAt)
	}

	two := PaperFaultload(TwoCrashes).shifted(90)
	if two.Events[0].AtSec != 90 || two.Events[1].AtSec != 120 {
		t.Errorf("TwoCrashes shifted = %v/%v, want 90/120 (spacing preserved)",
			two.Events[0].AtSec, two.Events[1].AtSec)
	}
}

func TestFaultloadResolve(t *testing.T) {
	cfg := RunConfig{Servers: 3, Shards: 2, Seed: 1, Profile: rbe.Shopping}

	ev := MemberEveryGroup(270).resolve(cfg)
	if len(ev) != 1 || len(ev[0].victims) != 2 {
		t.Fatalf("member-every-group resolved to %+v", ev)
	}
	seen := map[int]bool{}
	for _, v := range ev[0].victims {
		g := v / cfg.Servers
		if seen[g] {
			t.Fatalf("two victims in group %d: %v", g, ev[0].victims)
		}
		seen[g] = true
	}

	whole := GroupOutage(1, 240, 390).resolve(cfg)
	if len(whole) != 2 {
		t.Fatalf("group-outage resolved to %d events", len(whole))
	}
	if got := whole[0].victims; !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Errorf("whole-group victims = %v, want group 1's members [3 4 5]", got)
	}
	if whole[1].op != OpRecover || !reflect.DeepEqual(whole[1].victims, []int{3, 4, 5}) {
		t.Errorf("recovery event = %+v", whole[1])
	}

	roll := RollingMemberEveryGroup(2, 240, 30).resolve(cfg)
	if len(roll) != 2 || roll[0].atSec != 240 || roll[1].atSec != 270 {
		t.Fatalf("rolling events = %+v", roll)
	}
	if roll[0].victims[0]/cfg.Servers != 0 || roll[1].victims[0]/cfg.Servers != 1 {
		t.Errorf("rolling wave must advance group by group: %+v", roll)
	}
}

func TestResolveRejectsOutOfRangeGroup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("resolving a group the deployment lacks must panic, not wrap")
		}
	}()
	fl := GroupOutage(3, 240, 390)
	fl.resolve(RunConfig{Servers: 3, Shards: 2, Profile: rbe.Shopping})
}
