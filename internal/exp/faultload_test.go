package exp

import (
	"reflect"
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/rbe"
)

// equivCfg is a shortened run shared by the equivalence tests.
func equivCfg(kind FaultKind) RunConfig {
	return RunConfig{
		Profile: rbe.Shopping, Servers: 3, StateMB: 300,
		Fault: kind, Browsers: 200, Measure: 90 * time.Second,
		CrashAt: 60, Seed: 5,
	}
}

// TestPaperFaultloadEquivalence: each paper faultload, re-expressed as an
// explicit DSL Faultload, must produce a RunResult identical to the enum
// shorthand at Shards=1 — the engine is one code path, and the DSL form
// resolves to exactly the schedule the closed dispatch used to build.
func TestPaperFaultloadEquivalence(t *testing.T) {
	for _, kind := range []FaultKind{OneCrash, TwoCrashes, DelayedRecovery} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			enum := runOnce(equivCfg(kind).withDefaults())

			fl := PaperFaultload(kind)
			dslCfg := equivCfg(NoFault)
			dslCfg.Faultload = &fl
			dsl := runOnce(dslCfg.withDefaults())

			if len(enum.CrashSec) == 0 || len(enum.RecoverySec) == 0 {
				t.Fatalf("enum run has no fault activity: crashes %v recoveries %v",
					enum.CrashSec, enum.RecoverySec)
			}
			enum.Cfg, dsl.Cfg = RunConfig{}, RunConfig{}
			if !reflect.DeepEqual(enum, dsl) {
				t.Fatalf("DSL run diverged from enum run:\nenum: %+v\ndsl:  %+v", enum, dsl)
			}
		})
	}
}

func TestPickVictimsDegenerateGroup(t *testing.T) {
	// Servers=1 used to divide by zero; the lone member is every victim.
	for seed := uint64(0); seed < 5; seed++ {
		v := pickVictims(RunConfig{Seed: seed, Servers: 1, Profile: rbe.Shopping})
		if v[0] != 0 || v[1] != 0 {
			t.Fatalf("Servers=1 victims = %v, want [0 0]", v)
		}
	}
	// Servers=2 still yields distinct victims.
	for seed := uint64(0); seed < 10; seed++ {
		v := pickVictims(RunConfig{Seed: seed, Servers: 2, Profile: rbe.Ordering})
		if v[0] == v[1] || v[0] >= 2 || v[1] >= 2 {
			t.Fatalf("Servers=2 victims = %v", v)
		}
	}
}

func TestPickVictimsPerGroupMatchesLegacyAtGroupZero(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		cfg := RunConfig{Seed: seed, Servers: 5, Profile: rbe.Shopping}
		legacy := []int{
			int(cfg.Seed+uint64(cfg.Profile)*3) % cfg.Servers,
		}
		legacy = append(legacy, (legacy[0]+1+int(cfg.Seed)%(cfg.Servers-1))%cfg.Servers)
		if got := pickVictimsInGroup(cfg, 0); !reflect.DeepEqual(got, legacy) {
			t.Fatalf("seed %d: group-0 rotation %v != legacy %v", seed, got, legacy)
		}
	}
}

// TestSingleServerFaultRun: the degenerate one-server group survives a
// fault run end to end — the crash registers as a full outage and the
// watchdog restores service.
func TestSingleServerFaultRun(t *testing.T) {
	r := Run(RunConfig{
		Profile: rbe.Shopping, Servers: 1, StateMB: 300,
		Fault: OneCrash, Browsers: 100, Measure: 120 * time.Second,
		CrashAt: 60, Seed: 2,
	})
	if len(r.CrashSec) != 1 {
		t.Fatalf("crashes: %v", r.CrashSec)
	}
	if len(r.RecoverySec) != 1 {
		t.Fatalf("the lone server never recovered: %v", r.RecoverySec)
	}
	if r.Availability >= 1 {
		t.Errorf("availability = %v, a single-server crash must register as an outage", r.Availability)
	}
	if r.Autonomy != 0 {
		t.Errorf("autonomy = %v, want 0 (watchdog recovery)", r.Autonomy)
	}
}

func TestFaultloadShifted(t *testing.T) {
	fl := PaperFaultload(DelayedRecovery).shifted(90)
	var crashAt []float64
	var recoverAt []float64
	for _, ev := range fl.Events {
		if ev.Op == OpRecover {
			recoverAt = append(recoverAt, ev.AtSec)
		} else {
			crashAt = append(crashAt, ev.AtSec)
		}
	}
	if len(crashAt) != 2 || crashAt[0] != 90 || crashAt[1] != 90 {
		t.Errorf("shifted crashes = %v, want both at 90", crashAt)
	}
	if len(recoverAt) != 1 || recoverAt[0] != 390 {
		t.Errorf("recovery moved to %v; the §5.6 intervention stays at 390", recoverAt)
	}

	two := PaperFaultload(TwoCrashes).shifted(90)
	if two.Events[0].AtSec != 90 || two.Events[1].AtSec != 120 {
		t.Errorf("TwoCrashes shifted = %v/%v, want 90/120 (spacing preserved)",
			two.Events[0].AtSec, two.Events[1].AtSec)
	}
}

func TestFaultloadResolve(t *testing.T) {
	cfg := RunConfig{Servers: 3, Shards: 2, Seed: 1, Profile: rbe.Shopping}

	ev := MemberEveryGroup(270).resolve(cfg)
	if len(ev) != 1 || len(ev[0].victims) != 2 {
		t.Fatalf("member-every-group resolved to %+v", ev)
	}
	seen := map[int]bool{}
	for _, v := range ev[0].victims {
		g := v / cfg.Servers
		if seen[g] {
			t.Fatalf("two victims in group %d: %v", g, ev[0].victims)
		}
		seen[g] = true
	}

	whole := GroupOutage(1, 240, 390).resolve(cfg)
	if len(whole) != 2 {
		t.Fatalf("group-outage resolved to %d events", len(whole))
	}
	if got := whole[0].victims; !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Errorf("whole-group victims = %v, want group 1's members [3 4 5]", got)
	}
	if whole[1].op != OpRecover || !reflect.DeepEqual(whole[1].victims, []int{3, 4, 5}) {
		t.Errorf("recovery event = %+v", whole[1])
	}

	roll := RollingMemberEveryGroup(2, 240, 30).resolve(cfg)
	if len(roll) != 2 || roll[0].atSec != 240 || roll[1].atSec != 270 {
		t.Fatalf("rolling events = %+v", roll)
	}
	if roll[0].victims[0]/cfg.Servers != 0 || roll[1].victims[0]/cfg.Servers != 1 {
		t.Errorf("rolling wave must advance group by group: %+v", roll)
	}
}

func TestResolveRejectsOutOfRangeGroup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("resolving a group the deployment lacks must panic, not wrap")
		}
	}()
	fl := GroupOutage(3, 240, 390)
	fl.resolve(RunConfig{Servers: 3, Shards: 2, Profile: rbe.Shopping})
}

// TestCrashOnlyKeysUnchanged pins the run-memoization keys of the crash
// faultloads to their pre-correlated-ops form, byte for byte: adding the
// partition/disk vocabulary must not disturb how crash-only schedules
// resolve or memoize.
func TestCrashOnlyKeysUnchanged(t *testing.T) {
	want := map[FaultKind]string{
		OneCrash:        "one-crash,270:0:m0.0",
		TwoCrashes:      "two-crashes,240:0:m0.0,270:0:m0.1",
		DelayedRecovery: "delayed-recovery,240:0:m0.0,240:1:m0.1,390:2:m0.1",
	}
	for kind, w := range want {
		if got := PaperFaultload(kind).key(); got != w {
			t.Errorf("%v key = %q, want %q", kind, got, w)
		}
	}
}

// TestCorrelatedFaultloadResolve: the new ops resolve with paired
// selector keys (heal ↔ partition, restore ↔ slow), directions, factors,
// late-bound leaders and quorum-preserving minorities.
func TestCorrelatedFaultloadResolve(t *testing.T) {
	cfg := RunConfig{Servers: 5, Shards: 2, Seed: 1, Profile: rbe.Shopping}

	li := LeaderIsolation(0, 240, 330).resolve(cfg)
	if len(li) != 2 || li[0].op != OpPartition || li[1].op != OpHeal {
		t.Fatalf("leader isolation resolved to %+v", li)
	}
	if li[0].selKey != li[1].selKey {
		t.Fatalf("heal not paired with its partition: %q vs %q", li[0].selKey, li[1].selKey)
	}
	if li[0].leaderOf != 0 {
		t.Fatalf("leader selector not late-bound: %+v", li[0])
	}
	if len(li[0].victims) != 1 {
		t.Fatalf("leader fallback victim missing: %+v", li[0])
	}

	ms := MinoritySplit(1, 240, 330).resolve(cfg)
	if len(ms[0].victims) != 2 { // (5-1)/2
		t.Fatalf("minority of a 5-group = %v, want 2 members", ms[0].victims)
	}
	for _, v := range ms[0].victims {
		if v/cfg.Servers != 1 {
			t.Fatalf("minority victim %d outside group 1", v)
		}
	}
	if one := MinoritySplit(0, 1, 2).resolve(RunConfig{Servers: 1, Shards: 1, Profile: rbe.Shopping}); len(one[0].victims) != 0 {
		t.Fatalf("minority of a 1-group must be empty, got %v", one[0].victims)
	}

	al := AsymmetricLoss(0, 240, 330).resolve(cfg)
	if al[0].dir != env.LinkOutboundOnly {
		t.Fatalf("asymmetric loss direction = %v", al[0].dir)
	}
	if al[1].op != OpHeal || al[1].selKey != al[0].selKey {
		t.Fatalf("asymmetric heal not paired: %+v", al)
	}

	sd := SlowDiskStraggler(0, 0, 240, 420).resolve(cfg)
	if sd[0].op != OpDiskSlow || sd[0].factor != DefaultSlowFactor {
		t.Fatalf("slow disk default factor not applied: %+v", sd[0])
	}
	if sd[1].op != OpDiskRestore || sd[1].selKey != sd[0].selKey {
		t.Fatalf("disk restore not paired: %+v", sd)
	}
	if got := SlowDiskStraggler(0, 16, 240, 420).resolve(cfg)[0].factor; got != 16 {
		t.Fatalf("explicit factor = %v, want 16", got)
	}

	gi := GroupIsolation(1, 240, 330).resolve(cfg)
	if len(gi[0].victims) != cfg.Servers {
		t.Fatalf("group isolation victims = %v", gi[0].victims)
	}

	// CrashAt shifting moves the partition and its heal together,
	// preserving the window width.
	sh := LeaderIsolation(0, 240, 330).shifted(90)
	if sh.Events[0].AtSec != 90 || sh.Events[1].AtSec != 180 {
		t.Fatalf("shifted window = %v..%v, want 90..180", sh.Events[0].AtSec, sh.Events[1].AtSec)
	}
}

// TestPartitionScenarioRun: a leader-isolation run end to end on the
// simulator — one closed partition window on the x-axis, the group's
// partitioned time accounted in its report, no crashes, availability
// intact (the quorum keeps serving), and one injected fault counted.
func TestPartitionScenarioRun(t *testing.T) {
	fl := LeaderIsolation(0, 60, 90)
	r := Run(RunConfig{
		Profile: rbe.Shopping, Servers: 3, StateMB: 300,
		Faultload: &fl, Browsers: 200, Measure: 120 * time.Second, Seed: 6,
	})
	if len(r.CrashSec) != 0 {
		t.Fatalf("partition run recorded crashes: %v", r.CrashSec)
	}
	if len(r.FaultWindows) != 1 {
		t.Fatalf("fault windows = %+v, want one", r.FaultWindows)
	}
	w := r.FaultWindows[0]
	if w.Kind != "partition" || w.Group != 0 {
		t.Fatalf("window = %+v", w)
	}
	if w.ToSec <= w.FromSec {
		t.Fatalf("window never closed: %+v", w)
	}
	if want := 30.0 * 120 / 540; w.ToSec-w.FromSec < want-1 || w.ToSec-w.FromSec > want+1 {
		t.Fatalf("window width %.1f s, want ≈%.1f (scaled 30 s)", w.ToSec-w.FromSec, want)
	}
	if r.Faults != 1 {
		t.Fatalf("faults = %d, want 1", r.Faults)
	}
	g := r.PerGroup[0]
	if g.Partitions != 1 || g.PartitionSec <= 0 {
		t.Fatalf("group report missed the partition window: %+v", g)
	}
	if g.Availability < 0.99 {
		t.Fatalf("leader isolation broke availability: %v (quorum should keep serving)", g.Availability)
	}
	if r.Availability < 0.99 {
		t.Fatalf("run availability = %v", r.Availability)
	}
}

// TestSlowDiskScenarioRun: the straggler-disk run — a closed slowdisk
// window, degradation time accounted per group, no crashes, full
// availability (the fault never trips crash detection).
func TestSlowDiskScenarioRun(t *testing.T) {
	fl := SlowDiskStraggler(0, 8, 60, 100)
	r := Run(RunConfig{
		Profile: rbe.Shopping, Servers: 3, StateMB: 300,
		Faultload: &fl, Browsers: 200, Measure: 120 * time.Second, Seed: 6,
	})
	if len(r.FaultWindows) != 1 || r.FaultWindows[0].Kind != "slowdisk" {
		t.Fatalf("fault windows = %+v", r.FaultWindows)
	}
	if f := r.FaultWindows[0].Factor; f != 8 {
		t.Fatalf("window factor = %v, want 8", f)
	}
	g := r.PerGroup[0]
	if g.Degradations != 1 || g.DegradedSec <= 0 {
		t.Fatalf("group report missed the degradation window: %+v", g)
	}
	if g.Crashes != 0 || r.Availability < 0.999 {
		t.Fatalf("slow disk must not crash or break availability: %+v avail=%v", g, r.Availability)
	}
}

// TestCrashOnlyRunCarriesNoFaultWindows: the crash faultloads stay free
// of the correlated-fault machinery — nil windows, zero partition /
// degradation time in every group report.
func TestCrashOnlyRunCarriesNoFaultWindows(t *testing.T) {
	r := Run(equivCfg(OneCrash))
	if r.FaultWindows != nil {
		t.Fatalf("crash-only run has fault windows: %+v", r.FaultWindows)
	}
	for _, g := range r.PerGroup {
		if g.Partitions != 0 || g.PartitionSec != 0 || g.Degradations != 0 || g.DegradedSec != 0 {
			t.Fatalf("crash-only group report carries fault windows: %+v", g)
		}
	}
}

// TestSlowDiskDefaultFactorKeyNormalized: Factor 0 (the default) and an
// explicit DefaultSlowFactor are the same run — they must memoize under
// the same key.
func TestSlowDiskDefaultFactorKeyNormalized(t *testing.T) {
	a := SlowDiskStraggler(0, 0, 240, 420).key()
	b := SlowDiskStraggler(0, DefaultSlowFactor, 240, 420).key()
	if a != b {
		t.Fatalf("default-factor keys differ: %q vs %q", a, b)
	}
	if c := SlowDiskStraggler(0, 16, 240, 420).key(); c == a {
		t.Fatalf("a 16x run must not share the 8x key %q", a)
	}
}

// TestOverlappingDiskSlowWindowsCompose: two OpDiskSlow events whose
// windows overlap on the same group — and a repeat on the same selector
// — must keep their windows paired with their own restores; restoring
// one must not leave another's window open or orphaned.
func TestOverlappingDiskSlowWindowsCompose(t *testing.T) {
	fl := Faultload{Name: "overlap-slow", Events: []FaultEvent{
		{AtSec: 40, Op: OpDiskSlow, Select: Member(0, 0), Factor: 8},
		{AtSec: 50, Op: OpDiskSlow, Select: WholeGroup(0), Factor: 4},
		{AtSec: 60, Op: OpDiskSlow, Select: Member(0, 0), Factor: 12}, // supersedes the 8x event
		{AtSec: 70, Op: OpDiskRestore, Select: WholeGroup(0)},
		{AtSec: 90, Op: OpDiskRestore, Select: Member(0, 0)},
	}}
	r := Run(RunConfig{
		Profile: rbe.Shopping, Servers: 3, StateMB: 300,
		Faultload: &fl, Browsers: 100, Measure: 120 * time.Second, Seed: 9,
	})
	if len(r.FaultWindows) != 3 {
		t.Fatalf("windows = %+v, want 3 (8x superseded, 4x, 12x)", r.FaultWindows)
	}
	for i, w := range r.FaultWindows {
		if w.ToSec < 0 {
			t.Fatalf("window %d never closed: %+v", i, w)
		}
		if w.Group != 0 || w.Kind != "slowdisk" {
			t.Fatalf("window %d = %+v", i, w)
		}
	}
	// The superseded 8x window closes when the 12x event replaces it;
	// the 4x whole-group window closes at its own restore, the 12x at
	// the final restore — strictly increasing close times.
	if !(r.FaultWindows[0].ToSec < r.FaultWindows[1].ToSec &&
		r.FaultWindows[1].ToSec < r.FaultWindows[2].ToSec) {
		t.Fatalf("window closes out of order: %+v", r.FaultWindows)
	}
	if g := r.PerGroup[0]; g.Degradations != 3 || g.DegradedSec <= 0 {
		t.Fatalf("group report = %+v, want 3 degradation windows", g)
	}
}

// TestFlakyLinkResolveAndKey: OpLinkLoss resolves with the default rate
// normalized (Factor 0 and an explicit DefaultLossRate memoize as the
// same run), restores pair with their loss events by selector key, and a
// different rate gets a different key.
func TestFlakyLinkResolveAndKey(t *testing.T) {
	cfg := RunConfig{Servers: 3, Shards: 1, Seed: 1, Profile: rbe.Shopping}

	fl := FlakyLink(0, 0, 60, 90).resolve(cfg)
	if len(fl) != 2 || fl[0].op != OpLinkLoss || fl[1].op != OpLinkRestore {
		t.Fatalf("flaky link resolved to %+v", fl)
	}
	if fl[0].factor != DefaultLossRate {
		t.Fatalf("default loss rate not applied: %+v", fl[0])
	}
	if fl[1].selKey != fl[0].selKey {
		t.Fatalf("restore not paired with its loss: %q vs %q", fl[1].selKey, fl[0].selKey)
	}

	a := FlakyLink(0, 0, 60, 90).key()
	b := FlakyLink(0, DefaultLossRate, 60, 90).key()
	if a != b {
		t.Fatalf("default-rate keys differ: %q vs %q", a, b)
	}
	if c := FlakyLink(0, 0.5, 60, 90).key(); c == a {
		t.Fatalf("a 50%%-loss run must not share the default-rate key %q", a)
	}
}

// TestFlakyLinkScenarioRun: the flaky-link run end to end on the
// simulator — one closed linkloss window carrying its rate, the loss
// time accounted in the group report, no crashes (the gray failure never
// trips crash detection), one injected fault, and the loss actually
// cleared after the restore.
func TestFlakyLinkScenarioRun(t *testing.T) {
	fl := FlakyLink(0, 0.2, 60, 90)
	r := Run(RunConfig{
		Profile: rbe.Shopping, Servers: 3, StateMB: 300,
		Faultload: &fl, Browsers: 200, Measure: 120 * time.Second, Seed: 6,
	})
	if len(r.CrashSec) != 0 {
		t.Fatalf("flaky-link run recorded crashes: %v", r.CrashSec)
	}
	if len(r.FaultWindows) != 1 {
		t.Fatalf("fault windows = %+v, want one", r.FaultWindows)
	}
	w := r.FaultWindows[0]
	if w.Kind != "linkloss" || w.Group != 0 {
		t.Fatalf("window = %+v", w)
	}
	if w.Factor != 0.2 {
		t.Fatalf("window rate = %v, want 0.2", w.Factor)
	}
	if w.ToSec <= w.FromSec {
		t.Fatalf("window never closed: %+v", w)
	}
	if want := 30.0 * 120 / 540; w.ToSec-w.FromSec < want-1 || w.ToSec-w.FromSec > want+1 {
		t.Fatalf("window width %.1f s, want ≈%.1f (scaled 30 s)", w.ToSec-w.FromSec, want)
	}
	if r.Faults != 1 {
		t.Fatalf("faults = %d, want 1", r.Faults)
	}
	g := r.PerGroup[0]
	if g.LossWindows != 1 || g.LossSec <= 0 {
		t.Fatalf("group report missed the loss window: %+v", g)
	}
	if g.Crashes != 0 {
		t.Fatalf("loss must not crash anyone: %+v", g)
	}
}

// TestGrayResolveAndKey: OpGrayFail and OpLinkDelay resolve with their
// defaults normalized (Factor 0 and the explicit default memoize as the
// same run), restores pair with their openers by selector key, and a
// different factor gets a different key.
func TestGrayResolveAndKey(t *testing.T) {
	cfg := RunConfig{Servers: 3, Shards: 1, Seed: 1, Profile: rbe.Shopping}

	gf := GrayFailServer(0, 0, 60, 90).resolve(cfg)
	if len(gf) != 2 || gf[0].op != OpGrayFail || gf[1].op != OpGrayRestore {
		t.Fatalf("gray-fail resolved to %+v", gf)
	}
	if gf[0].factor != DefaultGrayRate {
		t.Fatalf("default gray rate not applied: %+v", gf[0])
	}
	if gf[1].selKey != gf[0].selKey {
		t.Fatalf("restore not paired with its gray-fail: %q vs %q", gf[1].selKey, gf[0].selKey)
	}
	if a, b := GrayFailServer(0, 0, 60, 90).key(), GrayFailServer(0, DefaultGrayRate, 60, 90).key(); a != b {
		t.Fatalf("default-rate keys differ: %q vs %q", a, b)
	}
	if a, c := GrayFailServer(0, 0, 60, 90).key(), GrayFailServer(0, 20, 60, 90).key(); c == a {
		t.Fatalf("a 20x slow-walk run must not share the default-rate key %q", a)
	}

	ld := LinkDelayStraggler(0, 0, 60, 90).resolve(cfg)
	if len(ld) != 2 || ld[0].op != OpLinkDelay || ld[1].op != OpLinkDelayRestore {
		t.Fatalf("link-delay resolved to %+v", ld)
	}
	if ld[0].factor != DefaultDelayFactor {
		t.Fatalf("default delay factor not applied: %+v", ld[0])
	}
	if a, b := LinkDelayStraggler(0, 0, 60, 90).key(), LinkDelayStraggler(0, DefaultDelayFactor, 60, 90).key(); a != b {
		t.Fatalf("default-factor keys differ: %q vs %q", a, b)
	}

	// GrayLeader late-binds: leaderOf names the group whose consensus
	// leader is looked up at fire time (the static victim is only the
	// fallback for a leaderless group).
	gl := GrayLeader(0, 0.5, 60, 90).resolve(cfg)
	if gl[0].leaderOf != 0 {
		t.Fatalf("gray-leader resolved to %+v, want late-bound leader", gl[0])
	}
}

// TestFlapExpansion: the Flap generator expands into alternating
// inject/restore trains — paired events on one selector, duty applied
// per period, the final restore clamped to the window end — and rejects
// senseless parameters.
func TestFlapExpansion(t *testing.T) {
	f := Flap(OpPartition, Member(0, 0), 100, 250, 60, 0.5, 0)
	// Periods at 100, 160, 220: three inject/restore pairs.
	if len(f.Events) != 6 {
		t.Fatalf("flap expanded to %d events, want 6: %+v", len(f.Events), f.Events)
	}
	for i := 0; i < len(f.Events); i += 2 {
		on, off := f.Events[i], f.Events[i+1]
		if on.Op != OpPartition || off.Op != OpHeal {
			t.Fatalf("pair %d = %v/%v, want partition/heal", i/2, on.Op, off.Op)
		}
		if on.Select != off.Select {
			t.Fatalf("pair %d spans selectors: %+v vs %+v", i/2, on.Select, off.Select)
		}
		if want := on.AtSec + 30; off.AtSec != want && off.AtSec != 250 {
			t.Fatalf("pair %d restore at %.0f, want %.0f (50%% duty)", i/2, off.AtSec, want)
		}
	}
	// The last cycle starts at 220; its 50% duty point (250) hits the
	// window end exactly — the restore must not spill past it.
	if last := f.Events[len(f.Events)-1]; last.AtSec > 250 {
		t.Fatalf("final restore at %.0f spilled past the window end", last.AtSec)
	}

	for _, bad := range []func(){
		func() { Flap(OpCrash, Member(0, 0), 0, 100, 50, 0.5, 0) },     // no restore op
		func() { Flap(OpPartition, Member(0, 0), 0, 100, 0, 0.5, 0) },  // zero period
		func() { Flap(OpPartition, Member(0, 0), 0, 100, 50, 1.5, 0) }, // duty ≥ 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Flap parameters did not panic")
				}
			}()
			bad()
		}()
	}
}
