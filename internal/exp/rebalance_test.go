package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// rebalanceRun is the resharding-under-fault scenario at CI size, shared
// (memoized) by the tests in this file.
func rebalanceRun() RunResult {
	return RebalanceScenario(ShardedSuiteConfig{
		Shards: 2, Browsers: 300, Measure: 150 * time.Second, Seed: 2,
	})
}

// TestRebalanceScenario: a 2-group deployment grows to 3 live, with a
// source-group member killed mid-copy. The migration window must be
// finite, the crash must land inside it, no group may see an outage
// (resharding without downtime), and the joined group must carry real
// traffic with its own dependability row.
func TestRebalanceScenario(t *testing.T) {
	r := rebalanceRun()
	if r.FinalShards != 3 || len(r.PerGroup) != 3 {
		t.Fatalf("deployment did not grow: FinalShards=%d PerGroup=%d",
			r.FinalShards, len(r.PerGroup))
	}
	m := r.Migration
	if !m.Happened || m.NewGroup != 2 {
		t.Fatalf("migration not reported: %+v", m)
	}
	if m.WindowSec <= 0 || m.WindowSec > 60 {
		t.Fatalf("migration window %.2f s not finite/sane", m.WindowSec)
	}
	if m.MovedSlices == 0 || m.MovedSlices != m.TotalSlices/3 {
		t.Errorf("moved %d/%d slices, want a third", m.MovedSlices, m.TotalSlices)
	}
	// The victim died inside the migration window, and recovered.
	if r.Faults != 1 || len(r.CrashSec) != 1 {
		t.Fatalf("faults=%d crashes=%v, want the one mid-migration kill", r.Faults, r.CrashSec)
	}
	if r.CrashSec[0] < m.StartSec || r.CrashSec[0] > m.CutoverSec {
		t.Errorf("crash at t=%.1f s landed outside the migration window %.1f..%.1f",
			r.CrashSec[0], m.StartSec, m.CutoverSec)
	}
	if len(r.RecoverySec) != 1 {
		t.Fatalf("crashed member did not recover: %v", r.RecoverySec)
	}
	if r.Autonomy != 0 {
		t.Errorf("autonomy = %v, want 0 (watchdog recovery)", r.Autonomy)
	}
	// Resharding without downtime: every group — the one that lost a
	// member mid-handoff included — stayed available throughout.
	for _, g := range r.PerGroup {
		if g.Downtime != 0 || g.Availability != 1 {
			t.Errorf("group %d saw an outage during the rebalance: %+v", g.Group, g)
		}
	}
	// The joined group serves its migrated client slice.
	g2 := r.PerGroup[2]
	if g2.AWIPS <= 0 {
		t.Errorf("joined group carries no traffic: %+v", g2)
	}
	if g2.Accuracy < 99 {
		t.Errorf("joined group accuracy %.2f%%, want ≥99 (migration must not shed actions)", g2.Accuracy)
	}
	if r.Accuracy < 99.5 {
		t.Errorf("aggregate accuracy %.2f%% across the rebalance", r.Accuracy)
	}
	// The hold-don't-fail write path was exercised.
	if r.Proxy.Requeued == 0 {
		t.Error("no write was requeued during the freeze — the window had no traffic?")
	}
}

// TestRebalanceFormatter: the report renders the window and the
// per-group rows.
func TestRebalanceFormatter(t *testing.T) {
	var buf bytes.Buffer
	PrintRebalance(&buf, rebalanceRun())
	out := buf.String()
	for _, want := range []string{
		"Live rebalance — 2→3 groups",
		"migration window",
		"slices moved",
		"mid-migration crash",
		"aggregate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rebalance report missing %q:\n%s", want, out)
		}
	}
}
