package exp

import (
	"testing"
	"time"

	"robuststore/internal/rbe"
)

// readerCfg is the shared reader-deployment run for the fault-family
// tests: one group of 3 voters + 2 learner readers at CI size.
func readerCfg(seed uint64, fl *Faultload) RunConfig {
	return RunConfig{
		Profile: rbe.Browsing, Servers: 3, Readers: 2, StateMB: 300,
		Faultload: fl, Browsers: 300, Measure: 150 * time.Second, Seed: seed,
	}
}

func readStatTotals(r RunResult) (served, fw, ss int64) {
	for _, g := range r.PerGroup {
		served += g.ReadsServed
		fw += g.FenceWaits
		ss += g.StaleServes
	}
	return
}

// TestReadScaleScenario: the scenario's plumbing end to end at CI size —
// points line up with the requested reader counts, readers serve reads,
// and the first point is the scale baseline.
func TestReadScaleScenario(t *testing.T) {
	pts := ReadScale(ReadScaleConfig{
		Seed: 1, Browsers: 300, Measure: 60 * time.Second, Counts: []int{0, 2},
	})
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Readers != 0 || pts[0].ReadNodes != 3 || pts[1].Readers != 2 || pts[1].ReadNodes != 5 {
		t.Fatalf("node accounting off: %+v", pts)
	}
	if pts[0].ReadsPerSec <= 0 || pts[1].ReadsPerSec <= 0 {
		t.Fatalf("no reads served: %+v", pts)
	}
	if pts[0].Scale != 1 {
		t.Fatalf("baseline scale = %v, want 1", pts[0].Scale)
	}
}

// TestReadYourWritesUnderFaultSuite: across the learner fault family —
// lagging learner, learner partitioned from the cluster, a leader crash
// racing in-flight fences — and seeds, no fenced read is ever served
// below its fence, and reads keep flowing.
func TestReadYourWritesUnderFaultSuite(t *testing.T) {
	scenarios := []struct {
		name string
		mk   func() Faultload
	}{
		{"lagging-learner", func() Faultload { return LaggingLearner(0, 0.95, 45, 150) }},
		{"learner-partition", func() Faultload { return LearnerPartition(0, 45, 150) }},
		{"fence-leader-crash", func() Faultload { return FenceLeaderCrash(0, 60) }},
		{"flaky-link", func() Faultload { return FlakyLink(0, 0.4, 45, 150) }},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 2; seed++ {
				fl := sc.mk()
				r := Run(readerCfg(seed, &fl))
				if r.FenceViolations != 0 {
					t.Errorf("seed %d: %d fenced reads served below their fence", seed, r.FenceViolations)
				}
				if served, _, _ := readStatTotals(r); served == 0 {
					t.Errorf("seed %d: no reads served under the fault", seed)
				}
			}
		})
	}
}

// TestLearnerPartitionStalenessBound: a reader severed from its group
// (proxy path intact) keeps serving while its applied log freezes.
// Fenced reads landing on it must wait, expire into TooStale past the
// bound, and be re-served by the voters — the staleness accounting
// proves the bound was exercised, not bypassed.
func TestLearnerPartitionStalenessBound(t *testing.T) {
	fl := LearnerPartition(0, 45, 150)
	r := Run(readerCfg(3, &fl))
	_, fw, ss := readStatTotals(r)
	if fw == 0 {
		t.Error("no fenced read ever waited on the severed reader")
	}
	if ss == 0 {
		t.Error("no fence wait expired into a TooStale fallback")
	}
	if r.Proxy.StaleRedispatched == 0 {
		t.Errorf("TooStale replies were not redispatched: %+v", r.Proxy)
	}
	if r.FenceViolations != 0 {
		t.Errorf("%d fenced reads served below their fence", r.FenceViolations)
	}
}

// TestLearnerFaultloadResolve: the reader selector resolves to the flat
// reader range with group-correct window attribution.
func TestLearnerFaultloadResolve(t *testing.T) {
	cfg := RunConfig{Servers: 3, Shards: 2, Readers: 2, Seed: 1, Profile: rbe.Browsing}
	ev := LearnerPartition(1, 45, 150).resolve(cfg)
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	// Reader 0 of group 1 sits past the 6 voters, after group 0's 2
	// readers: flat index 8.
	if len(ev[0].victims) != 1 || ev[0].victims[0] != 8 {
		t.Fatalf("victims = %v, want [8]", ev[0].victims)
	}
	if g := ev[0].groups(cfg.Servers); len(g) != 1 || g[0] != 1 {
		t.Fatalf("window groups = %v, want [1]", g)
	}
}

// TestFenceLeaderCrashRecovers: the leader crash registers, the watchdog
// brings the member back, and the fence machinery stays clean across the
// election and failover.
func TestFenceLeaderCrashRecovers(t *testing.T) {
	fl := FenceLeaderCrash(0, 60)
	r := Run(readerCfg(4, &fl))
	if len(r.CrashSec) != 1 {
		t.Fatalf("crashes = %v, want exactly the leader's", r.CrashSec)
	}
	if len(r.RecoverySec) != 1 {
		t.Fatalf("the crashed leader never recovered: %v", r.RecoverySec)
	}
	if r.FenceViolations != 0 {
		t.Errorf("%d fenced reads served below their fence", r.FenceViolations)
	}
	if r.Autonomy != 0 {
		t.Errorf("autonomy = %v, want 0 (watchdog restart)", r.Autonomy)
	}
}
