package exp

import (
	"fmt"
	"io"
	"time"

	"robuststore/internal/paxos"
	"robuststore/internal/shard"
)

// This file is the WAL group-commit experiment behind ROADMAP item 2: on
// the same simulated disk, how far do sync coalescing (SyncMode) and a
// deeper consensus pipeline (MaxInFlight) move one group's ordered
// throughput, and does the gain survive sharding? The baseline row
// reproduces the pre-group-commit engine — the shard-scaling reference
// pipeline (batch 8, 4 in flight) with one Storage.Append per WAL record
// — so the speedup column reads directly as "× over the old engine".

// BatchingConfig parameterizes the batching matrix.
type BatchingConfig struct {
	// Shards lists the deployments swept. Default {1, 4}.
	Shards []int

	// OfferedPerShard is the offered load per group in actions/second,
	// high enough to saturate one pipeline. Default 50000.
	OfferedPerShard int

	// Warmup and Measure are per-cell simulation intervals. Defaults
	// 2 s and 5 s.
	Warmup  time.Duration
	Measure time.Duration

	// Seed fixes every cell's simulation.
	Seed uint64
}

func (c BatchingConfig) withDefaults() BatchingConfig {
	if c.Shards == nil {
		c.Shards = []int{1, 4}
	}
	if c.OfferedPerShard == 0 {
		c.OfferedPerShard = 50000
	}
	if c.Warmup == 0 {
		c.Warmup = 2 * time.Second
	}
	if c.Measure == 0 {
		c.Measure = 5 * time.Second
	}
	return c
}

// BatchingPoint is one cell of the SyncMode × MaxInFlight matrix.
type BatchingPoint struct {
	Shards      int
	Sync        string // WAL sync policy (paxos.SyncMode)
	MaxInFlight int    // consensus pipeline depth
	MaxBatch    int    // commands per proposed value
	Offered     int    // aggregate offered actions/second
	PerSec      float64
	Baseline    bool    // the pre-group-commit reference engine
	Speedup     float64 // PerSec over the same-shard baseline
}

// BatchingResult is the data behind BENCH_batching.json.
type BatchingResult struct {
	Points []BatchingPoint
}

// Batching runs the matrix: for each shard count, the pre-group-commit
// baseline, then SyncMode {immediate, batch, none} × MaxInFlight {4, 32}
// with the wider group-commit batch.
func Batching(cfg BatchingConfig) BatchingResult {
	cfg = cfg.withDefaults()
	var out BatchingResult
	measure := func(shards int, p paxos.Config, baseline bool, basePerSec float64) BatchingPoint {
		r := shard.MeasureThroughput(shard.ThroughputConfig{
			Shards:  shards,
			Offered: cfg.OfferedPerShard * shards,
			Warmup:  cfg.Warmup,
			Measure: cfg.Measure,
			Seed:    cfg.Seed,
			Paxos:   p,
		})
		pt := BatchingPoint{
			Shards:      shards,
			Sync:        p.Sync.String(),
			MaxInFlight: p.MaxInFlight,
			MaxBatch:    p.MaxBatchCmds,
			Offered:     r.Offered,
			PerSec:      r.PerSec,
			Baseline:    baseline,
		}
		if basePerSec > 0 {
			pt.Speedup = pt.PerSec / basePerSec
		}
		return pt
	}
	for _, shards := range cfg.Shards {
		base := measure(shards, referencePipeline(), true, 0)
		base.Speedup = 1
		out.Points = append(out.Points, base)
		for _, mode := range []paxos.SyncMode{paxos.SyncImmediate, paxos.SyncBatch, paxos.SyncNone} {
			for _, inflight := range []int{4, 32} {
				p := paxos.Config{
					BatchDelay:   time.Millisecond,
					MaxBatchCmds: 64,
					MaxInFlight:  inflight,
					Sync:         mode,
				}
				out.Points = append(out.Points, measure(shards, p, false, base.PerSec))
			}
		}
	}
	return out
}

// referencePipeline is the pre-group-commit engine shape: the
// shard-scaling reference proposer window with one synchronous
// Storage.Append per WAL record.
func referencePipeline() paxos.Config {
	return paxos.Config{
		BatchDelay:   time.Millisecond,
		MaxBatchCmds: 8,
		MaxInFlight:  4,
		Sync:         paxos.SyncImmediate,
	}
}

// SingleGroupSpeedup returns the best non-baseline single-group speedup in
// the result — the acceptance number for the group-commit work.
func (r BatchingResult) SingleGroupSpeedup() float64 {
	best := 0.0
	for _, pt := range r.Points {
		if pt.Shards == 1 && !pt.Baseline && pt.Speedup > best {
			best = pt.Speedup
		}
	}
	return best
}

// PrintBatching renders the matrix grouped by shard count.
func PrintBatching(w io.Writer, r BatchingResult) {
	fmt.Fprintln(w, "Batching — committed actions/s vs SyncMode × MaxInFlight")
	fmt.Fprintf(w, "%-8s%-18s%10s%8s%12s%12s%10s\n",
		"shards", "sync", "inflight", "batch", "offered/s", "actions/s", "speedup")
	for _, pt := range r.Points {
		name := pt.Sync
		if pt.Baseline {
			name += " (base)"
		}
		fmt.Fprintf(w, "%-8d%-18s%10d%8d%12d%12.0f%10.2f\n",
			pt.Shards, name, pt.MaxInFlight, pt.MaxBatch, pt.Offered, pt.PerSec, pt.Speedup)
	}
	fmt.Fprintf(w, "best single-group speedup vs pre-group-commit engine: %.2f×\n",
		r.SingleGroupSpeedup())
}
