package exp

import (
	"time"

	"robuststore/internal/rbe"
	"robuststore/internal/stats"
)

// This file defines the experiment suites of §5, each returning the data
// behind one figure or table of the paper.

// scalePoints are the replication degrees swept by the speedup and
// scaleup experiments (paper: 4–12 servers; 18 nodes minus 5 clients and
// 1 proxy).
var scalePoints = []int{4, 5, 6, 8, 10, 12}

// shortMeasure shrinks failure-free sweeps: AWIPS is stable (browsing CV
// ≈ 0.01), so a 150 s interval gives the same means as the paper's 540 s
// at a fraction of the simulation cost.
const shortMeasure = 150 * time.Second

// ScalePoint is one (replicas, profile) measurement.
type ScalePoint struct {
	Servers int
	Profile rbe.Profile
	WIPS    float64
	WIRTms  float64
	Speedup float64 // relative to the 4-replica baseline (Figure 3)
}

// SpeedupResult is the data behind Figure 3: saturation WIPS and WIRT for
// 4–12 replicas under the three profiles, with S_k = pi_k / pi_4.
type SpeedupResult struct {
	Points map[rbe.Profile][]ScalePoint
}

// Speedup runs the Figure 3 sweep. The RBE population is large enough to
// saturate the biggest deployment (the paper's five client nodes).
func Speedup(seed uint64) SpeedupResult {
	out := SpeedupResult{Points: make(map[rbe.Profile][]ScalePoint)}
	for _, profile := range rbe.Profiles {
		var base float64
		for _, k := range scalePoints {
			r := Run(RunConfig{
				Profile:  profile,
				Servers:  k,
				StateMB:  500, // paper §5.2: initial state 500 MB
				Fault:    NoFault,
				Browsers: saturationBrowsers,
				Measure:  shortMeasure,
				Seed:     seed,
			})
			if base == 0 {
				base = r.AWIPS
			}
			out.Points[profile] = append(out.Points[profile], ScalePoint{
				Servers: k,
				Profile: profile,
				WIPS:    r.AWIPS,
				WIRTms:  r.WIRTms,
				Speedup: r.AWIPS / base,
			})
		}
	}
	return out
}

// ScaleupResult is the data behind Figure 4: WIPS and WIRT at a fixed
// offered load of 1000 WIPS for 4–12 replicas, with the least-squares
// regression and WIPS/WIRT correlation the paper reports (§5.3).
type ScaleupResult struct {
	Points      map[rbe.Profile][]ScalePoint
	Fit         map[rbe.Profile]stats.Regression // WIPS vs replicas
	Correlation map[rbe.Profile]float64          // r² of WIPS vs WIRT
}

// Scaleup runs the Figure 4 sweep (1000 RBEs, 300 MB state).
func Scaleup(seed uint64) ScaleupResult {
	out := ScaleupResult{
		Points:      make(map[rbe.Profile][]ScalePoint),
		Fit:         make(map[rbe.Profile]stats.Regression),
		Correlation: make(map[rbe.Profile]float64),
	}
	for _, profile := range rbe.Profiles {
		var ks, wips, wirt []float64
		for _, k := range scalePoints {
			r := Run(RunConfig{
				Profile:  profile,
				Servers:  k,
				StateMB:  300, // paper §5.3: 300 MB to avoid swapping
				Fault:    NoFault,
				Browsers: faultBrowsers,
				Measure:  shortMeasure,
				Seed:     seed,
			})
			out.Points[profile] = append(out.Points[profile], ScalePoint{
				Servers: k,
				Profile: profile,
				WIPS:    r.AWIPS,
				WIRTms:  r.WIRTms,
			})
			ks = append(ks, float64(k))
			wips = append(wips, r.AWIPS)
			wirt = append(wirt, r.WIRTms)
		}
		out.Fit[profile] = stats.LinearFit(ks, wips)
		corr := stats.Correlation(wips, wirt)
		out.Correlation[profile] = corr * corr
	}
	return out
}

// readScaleBrowsers drives the read scale-out sweep past the biggest
// deployment's read capacity, so the measured rate is capacity, not
// offered load.
const readScaleBrowsers = 3000

// ReadScalePoint is one point of the read scale-out sweep: read
// throughput against read-serving node count at a fixed voter degree.
type ReadScalePoint struct {
	Readers     int     // learner readers per group
	ReadNodes   int     // read-serving nodes per group (voters + readers)
	ReadsPerSec float64 // read interactions served per second, all groups
	WIPS        float64
	WIRTms      float64
	FenceWaits  int64   // fenced reads that waited for the serving replica
	StaleServes int64   // fence waits that fell back TooStale to the voters
	Scale       float64 // ReadsPerSec relative to the Readers=0 baseline
}

// ReadScaleConfig parameterizes the read scale-out sweep.
type ReadScaleConfig struct {
	Seed     uint64
	Servers  int   // voters per group; default 3
	Counts   []int // reader counts swept; default {0, 1, 3}
	Browsers int
	Measure  time.Duration
	Fault    *Faultload // optional read-tier faultload
}

func (c ReadScaleConfig) withDefaults() ReadScaleConfig {
	if c.Servers == 0 {
		c.Servers = 3
	}
	if c.Counts == nil {
		c.Counts = []int{0, 1, 3}
	}
	if c.Browsers == 0 {
		c.Browsers = readScaleBrowsers
	}
	if c.Measure == 0 {
		c.Measure = shortMeasure
	}
	return c
}

// ReadScale sweeps learner-backed readers per group under the Browsing
// profile (95 % reads): learners receive the learn stream and serve
// fenced follower reads without joining the write quorum, so read
// capacity grows with every read-serving node while the voter set — and
// write latency — stays fixed.
func ReadScale(cfg ReadScaleConfig) []ReadScalePoint {
	cfg = cfg.withDefaults()
	var out []ReadScalePoint
	var base float64
	for _, readers := range cfg.Counts {
		r := Run(RunConfig{
			Profile:   rbe.Browsing,
			Servers:   cfg.Servers,
			Readers:   readers,
			StateMB:   300,
			Fault:     NoFault,
			Faultload: cfg.Fault,
			Browsers:  cfg.Browsers,
			Measure:   cfg.Measure,
			Seed:      cfg.Seed,
		})
		var rps float64
		var fw, ss int64
		for _, g := range r.PerGroup {
			rps += g.ReadsPerSec
			fw += g.FenceWaits
			ss += g.StaleServes
		}
		p := ReadScalePoint{
			Readers:     readers,
			ReadNodes:   cfg.Servers + readers,
			ReadsPerSec: rps,
			WIPS:        r.AWIPS,
			WIRTms:      r.WIRTms,
			FenceWaits:  fw,
			StaleServes: ss,
		}
		if base == 0 {
			base = rps
		}
		if base > 0 {
			p.Scale = rps / base
		}
		out = append(out, p)
	}
	return out
}

// FaultMatrix runs one faultload across the paper's dependability grid:
// replication degrees 5 and 8, all three profiles, 500 MB state (Tables
// 1–6, Figures 5, 7, 8).
func FaultMatrix(kind FaultKind, seed uint64) map[string]RunResult {
	out := make(map[string]RunResult)
	for _, servers := range []int{5, 8} {
		for _, profile := range rbe.Profiles {
			r := Run(RunConfig{
				Profile: profile,
				Servers: servers,
				StateMB: 500,
				Fault:   kind,
				Seed:    seed,
			})
			out[matrixKey(servers, profile)] = r
		}
	}
	return out
}

func matrixKey(servers int, profile rbe.Profile) string {
	return string(rune('0'+servers)) + "/" + profile.String()[:1]
}

// RecoveryTimePoint is one bar of Figure 6.
type RecoveryTimePoint struct {
	Servers     int
	Profile     rbe.Profile
	StateMB     int
	RecoverySec float64
}

// RecoveryTimes reproduces Figure 6: one-crash recovery duration for
// every combination of replication degree {5, 8}, profile and initial
// state size {300, 500, 700} MB. Runs are shortened (crash earlier,
// shorter tail) since only the recovery duration is measured.
func RecoveryTimes(seed uint64) []RecoveryTimePoint {
	var out []RecoveryTimePoint
	for _, servers := range []int{5, 8} {
		for _, profile := range rbe.Profiles {
			for _, stateMB := range []int{300, 500, 700} {
				r := Run(RunConfig{
					Profile: profile,
					Servers: servers,
					StateMB: stateMB,
					Fault:   OneCrash,
					Measure: 300 * time.Second,
					CrashAt: 90,
					Seed:    seed,
				})
				sec := -1.0
				if len(r.RecoveryDur) > 0 {
					sec = r.RecoveryDur[0]
				}
				out = append(out, RecoveryTimePoint{
					Servers:     servers,
					Profile:     profile,
					StateMB:     stateMB,
					RecoverySec: sec,
				})
			}
		}
	}
	return out
}

// --- Sharded recovery scenarios ----------------------------------------

// ShardedFaultloads returns the standard scenario set for a deployment of
// the given shard count, all expressed in the faultload DSL: one member
// of every group crashing simultaneously, the same as a rolling wave, and
// a whole group lost until manual recovery (quorum loss for its client
// slice). Times follow the paper's x-axis and scale with a shortened
// measurement interval like the §5.4–5.6 faultloads.
func ShardedFaultloads(shards int) []Faultload {
	return []Faultload{
		MemberEveryGroup(270),
		RollingMemberEveryGroup(shards, 240, 30),
		GroupOutage(0, 240, 390),
	}
}

// PartitionFaultloads returns the standard correlated-fault scenario set,
// all on the paper's x-axis with a 90 s partition window opening at
// t=240 s: the group-0 leader isolated (failover without a crash), a
// quorum-preserving minority split, a whole group isolated from the proxy
// (client-slice outage with every member alive), and asymmetric one-way
// loss on a single member. With several shards the untouched groups keep
// serving — the per-group report shows the blast radius.
func PartitionFaultloads() []Faultload {
	return []Faultload{
		LeaderIsolation(0, 240, 330),
		MinoritySplit(0, 240, 330),
		GroupIsolation(0, 240, 330),
		AsymmetricLoss(0, 240, 330),
	}
}

// SlowDiskFaultload is the straggler scenario: one member of group 0 runs
// on a disk degraded by DefaultSlowFactor from t=240 s until a swap at
// t=420 s.
func SlowDiskFaultload() Faultload {
	return SlowDiskStraggler(0, 0, 240, 420)
}

// GrayFaultloads returns the named gray-failure scenario set: faults that
// keep every probe and consensus ping healthy while service quality dies —
// the blind spot of timeout-based detection, and exactly what ROADMAP
// item 4's fault-model gap called for. All windows open at t=240 s and
// restore at t=390 s on the paper's x-axis:
//
//   - gray-fail: one member of group 0 fast-errors half its requests
//     (DefaultGrayRate) while acking every probe; only served-traffic
//     quality (the proxy's error EWMA) can justify evicting it.
//   - gray-leader: the member leading group 0's consensus at fire time
//     slow-walks every request 20× — the worst-placed victim, since it
//     also carries proposal traffic.
//   - link-delay: every link of one member inflates DefaultDelayFactor× —
//     nothing drops, quorum round-trips through it just crawl.
//   - partition-flap: one member partitions and heals on a 50 s cadence
//     (40% duty), forcing re-detection and reabsorption every cycle.
func GrayFaultloads() []Faultload {
	return []Faultload{
		GrayFailServer(0, 0, 240, 390),
		GrayLeader(0, 20, 240, 390),
		LinkDelayStraggler(0, 0, 240, 390),
		PartitionFlap(0, 240, 390, 50, 0.4),
	}
}

// GraySuite runs every gray-failure scenario against one deployment and
// returns the per-scenario results, each carrying the fault windows and
// the per-group availability/accuracy/recovery rows.
func GraySuite(cfg ShardedSuiteConfig) []RunResult {
	cfg = cfg.withDefaults()
	scenarios := GrayFaultloads()
	out := make([]RunResult, 0, len(scenarios))
	for i := range scenarios {
		fl := scenarios[i]
		out = append(out, Run(RunConfig{
			Profile:   rbe.Shopping,
			Servers:   cfg.Servers,
			Shards:    cfg.Shards,
			StateMB:   cfg.StateMB,
			Faultload: &fl,
			Browsers:  cfg.Browsers,
			Measure:   cfg.Measure,
			Seed:      cfg.Seed,
		}))
	}
	return out
}

// ShardedSuiteConfig parameterizes the sharded dependability suite.
type ShardedSuiteConfig struct {
	Shards   int           // default 2
	Servers  int           // replication degree per group; default 3
	StateMB  int           // default 300
	Browsers int           // default faultBrowsers
	Measure  time.Duration // default the paper's 540 s
	Seed     uint64
}

func (c ShardedSuiteConfig) withDefaults() ShardedSuiteConfig {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Servers == 0 {
		c.Servers = 3
	}
	if c.StateMB == 0 {
		c.StateMB = 300
	}
	return c
}

// ShardedSuite runs every sharded scenario against one deployment and
// returns the per-scenario results, each carrying the per-group +
// aggregate dependability report in RunResult.PerGroup.
func ShardedSuite(cfg ShardedSuiteConfig) []RunResult {
	cfg = cfg.withDefaults()
	scenarios := ShardedFaultloads(cfg.Shards)
	out := make([]RunResult, 0, len(scenarios))
	for i := range scenarios {
		fl := scenarios[i]
		out = append(out, Run(RunConfig{
			Profile:   rbe.Shopping,
			Servers:   cfg.Servers,
			Shards:    cfg.Shards,
			StateMB:   cfg.StateMB,
			Faultload: &fl,
			Browsers:  cfg.Browsers,
			Measure:   cfg.Measure,
			Seed:      cfg.Seed,
		}))
	}
	return out
}

// PartitionSuite runs every correlated partition scenario against one
// deployment and returns the per-scenario results, each carrying the
// fault windows (RunResult.FaultWindows) and per-group dependability
// rows.
func PartitionSuite(cfg ShardedSuiteConfig) []RunResult {
	cfg = cfg.withDefaults()
	scenarios := PartitionFaultloads()
	out := make([]RunResult, 0, len(scenarios))
	for i := range scenarios {
		fl := scenarios[i]
		out = append(out, Run(RunConfig{
			Profile:   rbe.Shopping,
			Servers:   cfg.Servers,
			Shards:    cfg.Shards,
			StateMB:   cfg.StateMB,
			Faultload: &fl,
			Browsers:  cfg.Browsers,
			Measure:   cfg.Measure,
			Seed:      cfg.Seed,
		}))
	}
	return out
}

// SlowDiskScenario runs the straggler-disk faultload against one
// deployment: the degraded member drags its group's commit pipeline
// whenever it sits in the phase-2 quorum without ever tripping crash
// detection.
func SlowDiskScenario(cfg ShardedSuiteConfig) RunResult {
	cfg = cfg.withDefaults()
	fl := SlowDiskFaultload()
	return Run(RunConfig{
		Profile:   rbe.Shopping,
		Servers:   cfg.Servers,
		Shards:    cfg.Shards,
		StateMB:   cfg.StateMB,
		Faultload: &fl,
		Browsers:  cfg.Browsers,
		Measure:   cfg.Measure,
		Seed:      cfg.Seed,
	})
}

// PartitionBenchPoint is the leader-isolation benchmark's summary: how
// fast the group detects the silent leader and re-elects (throughput back
// during the window), how fast it reabsorbs the stale ex-leader after the
// heal, and the AWIPS levels before, during and after the window.
type PartitionBenchPoint struct {
	DetectSec   float64 // window open → throughput ≥ threshold; -1: never within the run
	ReabsorbSec float64 // heal → throughput ≥ threshold; -1: never within the run
	FFAWIPS     float64 // failure-free level
	WindowAWIPS float64 // mean during the partition window
	PostAWIPS   float64 // mean after the heal
}

// PartitionRecoveryBench measures leader-isolation failover on the
// reference single-group deployment (5 replicas, shortened measurement).
func PartitionRecoveryBench(seed uint64) PartitionBenchPoint {
	fl := LeaderIsolation(0, 240, 330)
	r := Run(RunConfig{
		Profile:   rbe.Shopping,
		Servers:   5,
		StateMB:   300,
		Faultload: &fl,
		Browsers:  600,
		Measure:   300 * time.Second,
		Seed:      seed,
	})
	// Recovery times default to the "never recovered within the run"
	// sentinel, so a liveness regression (e.g. the stale-leader-rejoin
	// livelock this benchmark was built to track) publishes -1, not a
	// perfect 0-second score.
	pt := PartitionBenchPoint{
		DetectSec:   -1,
		ReabsorbSec: -1,
		FFAWIPS:     r.Perf.FailureFreeAWIPS,
		WindowAWIPS: r.Perf.RecoveryAWIPS,
	}
	if len(r.FaultWindows) == 0 {
		return pt
	}
	w := r.FaultWindows[0]
	threshold := 0.7 * pt.FFAWIPS
	if at := seriesRecoversAt(r.Series, int(w.FromSec)+1, threshold); at >= 0 {
		if pt.DetectSec = float64(at) - w.FromSec; pt.DetectSec < 0 {
			pt.DetectSec = 0
		}
	}
	if w.ToSec > 0 {
		if at := seriesRecoversAt(r.Series, int(w.ToSec)+1, threshold); at >= 0 {
			if pt.ReabsorbSec = float64(at) - w.ToSec; pt.ReabsorbSec < 0 {
				pt.ReabsorbSec = 0
			}
		}
		end := len(r.Series)
		if e := int(w.ToSec) + 1; e < end {
			pt.PostAWIPS = stats.Mean(r.Series[e:end])
		}
	}
	return pt
}

// seriesRecoversAt returns the first second at/after floor where
// throughput is back AND stays back: the bucket itself and the mean of
// the three buckets starting there reach target. Looking forward (never
// before floor) keeps full one-second resolution without letting healthy
// pre-phase seconds mask a dip or one jittery bucket declare recovery.
// Returns -1 when throughput never sustains target within the run.
func seriesRecoversAt(series []float64, floor int, target float64) int {
	return SeriesRecoversAt(series, floor, target)
}

// SeriesRecoversAt is the exported recovery detector: the fault-search
// oracles (internal/exp/search) use it as the write-wedge check — a run
// whose throughput never sustains the target after its last fault is
// restored has wedged.
func SeriesRecoversAt(series []float64, floor int, target float64) int {
	if floor < 0 {
		floor = 0
	}
	for i := floor; i+2 < len(series); i++ {
		if series[i] >= target && stats.Mean(series[i:i+3]) >= target {
			return i
		}
	}
	return -1
}

// ShardedRecoveryPoint is one point of the recovery-vs-shard-count curve:
// the member-every-group faultload at one shard count.
type ShardedRecoveryPoint struct {
	Shards          int
	MeanRecoverySec float64 // mean over all crashed members
	WorstGroupAvail float64 // min per-group availability
	AWIPS           float64 // aggregate throughput over the measurement
}

// ShardedRecoveryCurve measures how recovery behaves as the deployment
// fans out: for each shard count it crashes one member of every group
// (shortened run) and reports mean recovery time, worst-group
// availability and aggregate throughput.
func ShardedRecoveryCurve(seed uint64, shardCounts []int) []ShardedRecoveryPoint {
	out := make([]ShardedRecoveryPoint, 0, len(shardCounts))
	for _, n := range shardCounts {
		fl := MemberEveryGroup(270)
		r := Run(RunConfig{
			Profile:   rbe.Shopping,
			Servers:   3,
			Shards:    n,
			StateMB:   300,
			Faultload: &fl,
			Browsers:  600,
			Measure:   180 * time.Second,
			CrashAt:   90,
			Seed:      seed,
		})
		pt := ShardedRecoveryPoint{Shards: n, AWIPS: r.AWIPS, WorstGroupAvail: 1}
		var durSum float64
		var recs int
		for _, g := range r.PerGroup {
			if g.Availability < pt.WorstGroupAvail {
				pt.WorstGroupAvail = g.Availability
			}
			durSum += g.MeanRecoverySec * float64(g.Recoveries)
			recs += g.Recoveries
		}
		if recs > 0 {
			pt.MeanRecoverySec = durSum / float64(recs)
		}
		out = append(out, pt)
	}
	return out
}

// RebalanceScenario is the resharding-under-fault experiment: a
// Shards-group deployment takes the standard workload, one group is added
// live at t=240 s on the paper's x-axis (epoch-versioned routing cutover
// with keyed state transfer), and a member of a source group is killed
// exactly when the migration enters its copy phase. The result reports
// the migration window and the per-group dependability rows — the new
// group included — alongside the paper's measures, answering: does
// resharding stay downtime-free even when a replica dies mid-handoff?
func RebalanceScenario(cfg ShardedSuiteConfig) RunResult {
	cfg = cfg.withDefaults()
	return Run(RunConfig{
		Profile:           rbe.Shopping,
		Servers:           cfg.Servers,
		Shards:            cfg.Shards,
		StateMB:           cfg.StateMB,
		Browsers:          cfg.Browsers,
		Measure:           cfg.Measure,
		Seed:              cfg.Seed,
		RebalanceAtSec:    240,
		CrashMidMigration: true,
	})
}

// AblationResult compares a design choice on/off under one workload.
type AblationResult struct {
	Name         string
	BaselineWIPS float64
	VariantWIPS  float64
	BaselineWIRT float64
	VariantWIRT  float64
	BaselineNote string
	VariantNote  string
}

// AblationFastPaxos compares Fast Paxos against classic-only Paxos at the
// reference workload — the design choice §2 motivates.
func AblationFastPaxos(seed uint64) AblationResult {
	fast := Run(RunConfig{Profile: rbe.Ordering, Servers: 5, StateMB: 300,
		Browsers: faultBrowsers, Measure: shortMeasure, Seed: seed})
	classic := Run(RunConfig{Profile: rbe.Ordering, Servers: 5, StateMB: 300,
		Browsers: faultBrowsers, Measure: shortMeasure, Seed: seed, NoFast: true})
	return AblationResult{
		Name:         "fast-paxos-vs-classic",
		BaselineWIPS: fast.AWIPS, BaselineWIRT: fast.WIRTms, BaselineNote: "fast paxos",
		VariantWIPS: classic.AWIPS, VariantWIRT: classic.WIRTms, VariantNote: "classic paxos",
	}
}
