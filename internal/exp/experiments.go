package exp

import (
	"time"

	"robuststore/internal/rbe"
	"robuststore/internal/stats"
)

// This file defines the experiment suites of §5, each returning the data
// behind one figure or table of the paper.

// scalePoints are the replication degrees swept by the speedup and
// scaleup experiments (paper: 4–12 servers; 18 nodes minus 5 clients and
// 1 proxy).
var scalePoints = []int{4, 5, 6, 8, 10, 12}

// shortMeasure shrinks failure-free sweeps: AWIPS is stable (browsing CV
// ≈ 0.01), so a 150 s interval gives the same means as the paper's 540 s
// at a fraction of the simulation cost.
const shortMeasure = 150 * time.Second

// ScalePoint is one (replicas, profile) measurement.
type ScalePoint struct {
	Servers int
	Profile rbe.Profile
	WIPS    float64
	WIRTms  float64
	Speedup float64 // relative to the 4-replica baseline (Figure 3)
}

// SpeedupResult is the data behind Figure 3: saturation WIPS and WIRT for
// 4–12 replicas under the three profiles, with S_k = pi_k / pi_4.
type SpeedupResult struct {
	Points map[rbe.Profile][]ScalePoint
}

// Speedup runs the Figure 3 sweep. The RBE population is large enough to
// saturate the biggest deployment (the paper's five client nodes).
func Speedup(seed uint64) SpeedupResult {
	out := SpeedupResult{Points: make(map[rbe.Profile][]ScalePoint)}
	for _, profile := range rbe.Profiles {
		var base float64
		for _, k := range scalePoints {
			r := Run(RunConfig{
				Profile:  profile,
				Servers:  k,
				StateMB:  500, // paper §5.2: initial state 500 MB
				Fault:    NoFault,
				Browsers: saturationBrowsers,
				Measure:  shortMeasure,
				Seed:     seed,
			})
			if base == 0 {
				base = r.AWIPS
			}
			out.Points[profile] = append(out.Points[profile], ScalePoint{
				Servers: k,
				Profile: profile,
				WIPS:    r.AWIPS,
				WIRTms:  r.WIRTms,
				Speedup: r.AWIPS / base,
			})
		}
	}
	return out
}

// ScaleupResult is the data behind Figure 4: WIPS and WIRT at a fixed
// offered load of 1000 WIPS for 4–12 replicas, with the least-squares
// regression and WIPS/WIRT correlation the paper reports (§5.3).
type ScaleupResult struct {
	Points      map[rbe.Profile][]ScalePoint
	Fit         map[rbe.Profile]stats.Regression // WIPS vs replicas
	Correlation map[rbe.Profile]float64          // r² of WIPS vs WIRT
}

// Scaleup runs the Figure 4 sweep (1000 RBEs, 300 MB state).
func Scaleup(seed uint64) ScaleupResult {
	out := ScaleupResult{
		Points:      make(map[rbe.Profile][]ScalePoint),
		Fit:         make(map[rbe.Profile]stats.Regression),
		Correlation: make(map[rbe.Profile]float64),
	}
	for _, profile := range rbe.Profiles {
		var ks, wips, wirt []float64
		for _, k := range scalePoints {
			r := Run(RunConfig{
				Profile:  profile,
				Servers:  k,
				StateMB:  300, // paper §5.3: 300 MB to avoid swapping
				Fault:    NoFault,
				Browsers: faultBrowsers,
				Measure:  shortMeasure,
				Seed:     seed,
			})
			out.Points[profile] = append(out.Points[profile], ScalePoint{
				Servers: k,
				Profile: profile,
				WIPS:    r.AWIPS,
				WIRTms:  r.WIRTms,
			})
			ks = append(ks, float64(k))
			wips = append(wips, r.AWIPS)
			wirt = append(wirt, r.WIRTms)
		}
		out.Fit[profile] = stats.LinearFit(ks, wips)
		corr := stats.Correlation(wips, wirt)
		out.Correlation[profile] = corr * corr
	}
	return out
}

// FaultMatrix runs one faultload across the paper's dependability grid:
// replication degrees 5 and 8, all three profiles, 500 MB state (Tables
// 1–6, Figures 5, 7, 8).
func FaultMatrix(kind FaultKind, seed uint64) map[string]RunResult {
	out := make(map[string]RunResult)
	for _, servers := range []int{5, 8} {
		for _, profile := range rbe.Profiles {
			r := Run(RunConfig{
				Profile: profile,
				Servers: servers,
				StateMB: 500,
				Fault:   kind,
				Seed:    seed,
			})
			out[matrixKey(servers, profile)] = r
		}
	}
	return out
}

func matrixKey(servers int, profile rbe.Profile) string {
	return string(rune('0'+servers)) + "/" + profile.String()[:1]
}

// RecoveryTimePoint is one bar of Figure 6.
type RecoveryTimePoint struct {
	Servers     int
	Profile     rbe.Profile
	StateMB     int
	RecoverySec float64
}

// RecoveryTimes reproduces Figure 6: one-crash recovery duration for
// every combination of replication degree {5, 8}, profile and initial
// state size {300, 500, 700} MB. Runs are shortened (crash earlier,
// shorter tail) since only the recovery duration is measured.
func RecoveryTimes(seed uint64) []RecoveryTimePoint {
	var out []RecoveryTimePoint
	for _, servers := range []int{5, 8} {
		for _, profile := range rbe.Profiles {
			for _, stateMB := range []int{300, 500, 700} {
				r := Run(RunConfig{
					Profile: profile,
					Servers: servers,
					StateMB: stateMB,
					Fault:   OneCrash,
					Measure: 300 * time.Second,
					CrashAt: 90,
					Seed:    seed,
				})
				sec := -1.0
				if len(r.RecoveryDur) > 0 {
					sec = r.RecoveryDur[0]
				}
				out = append(out, RecoveryTimePoint{
					Servers:     servers,
					Profile:     profile,
					StateMB:     stateMB,
					RecoverySec: sec,
				})
			}
		}
	}
	return out
}

// AblationResult compares a design choice on/off under one workload.
type AblationResult struct {
	Name         string
	BaselineWIPS float64
	VariantWIPS  float64
	BaselineWIRT float64
	VariantWIRT  float64
	BaselineNote string
	VariantNote  string
}

// AblationFastPaxos compares Fast Paxos against classic-only Paxos at the
// reference workload — the design choice §2 motivates.
func AblationFastPaxos(seed uint64) AblationResult {
	fast := Run(RunConfig{Profile: rbe.Ordering, Servers: 5, StateMB: 300,
		Browsers: faultBrowsers, Measure: shortMeasure, Seed: seed})
	classic := Run(RunConfig{Profile: rbe.Ordering, Servers: 5, StateMB: 300,
		Browsers: faultBrowsers, Measure: shortMeasure, Seed: seed, NoFast: true})
	return AblationResult{
		Name:         "fast-paxos-vs-classic",
		BaselineWIPS: fast.AWIPS, BaselineWIRT: fast.WIRTms, BaselineNote: "fast paxos",
		VariantWIPS: classic.AWIPS, VariantWIRT: classic.WIRTms, VariantNote: "classic paxos",
	}
}
