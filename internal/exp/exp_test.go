package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"robuststore/internal/rbe"
)

// shortRun is a scaled-down one-crash experiment shared by the tests in
// this file (memoized).
func shortRun(fault FaultKind) RunResult {
	return Run(RunConfig{
		Profile: rbe.Shopping, Servers: 5, StateMB: 300,
		Fault: fault, Browsers: 400, Measure: 180 * time.Second,
		CrashAt: 90, Seed: 2,
	})
}

func TestFailureFreeRunIsClean(t *testing.T) {
	r := Run(RunConfig{
		Profile: rbe.Shopping, Servers: 5, StateMB: 300,
		Fault: NoFault, Browsers: 400, Measure: 120 * time.Second, Seed: 2,
	})
	if r.AWIPS < 350 || r.AWIPS > 400 {
		t.Errorf("AWIPS = %v, want ≈390 (closed loop, 400 browsers)", r.AWIPS)
	}
	if r.Errors != 0 {
		t.Errorf("failure-free run had %d errors", r.Errors)
	}
	if r.Availability != 1 {
		t.Errorf("availability = %v", r.Availability)
	}
	if !r.FastActive {
		t.Error("fast paxos should be active with all replicas up")
	}
	if r.InitialStateMB < 250 || r.InitialStateMB > 350 {
		t.Errorf("initial state = %v MB, want ≈300", r.InitialStateMB)
	}
	if r.FinalStateMB <= r.InitialStateMB {
		t.Error("state did not grow under a write workload")
	}
}

func TestOneCrashRunRecovers(t *testing.T) {
	r := shortRun(OneCrash)
	if len(r.CrashSec) != 1 || len(r.RecoverySec) != 1 {
		t.Fatalf("crash/recovery events: %v %v", r.CrashSec, r.RecoverySec)
	}
	if r.RecoverySec[0] <= r.CrashSec[0] {
		t.Fatal("recovery before crash")
	}
	if r.RecoveryDur[0] < 10 || r.RecoveryDur[0] > 200 {
		t.Errorf("recovery took %v s", r.RecoveryDur[0])
	}
	if r.Autonomy != 0 {
		t.Errorf("autonomy = %v, want 0 (watchdog recovery)", r.Autonomy)
	}
	if r.Accuracy < 99.9 {
		t.Errorf("accuracy = %v", r.Accuracy)
	}
	if r.Perf.FailureFreeAWIPS == 0 || r.Perf.RecoveryAWIPS == 0 {
		t.Error("performability windows empty")
	}
	// The dip must be bounded (paper: < 13 % in the worst case across
	// all faultloads).
	if r.Perf.PV < -25 {
		t.Errorf("PV = %v%%, implausibly deep", r.Perf.PV)
	}
}

func TestDelayedRecoveryAutonomy(t *testing.T) {
	r := shortRun(DelayedRecovery)
	if r.Faults != 2 {
		t.Fatalf("faults = %d", r.Faults)
	}
	// One of two recoveries was manual: autonomy 0.5 (the paper counts
	// interventions per fault).
	if r.Autonomy != 0.5 {
		t.Errorf("autonomy = %v, want 0.5", r.Autonomy)
	}
	if len(r.RecoverySec) < 2 {
		t.Fatalf("recoveries: %v", r.RecoverySec)
	}
	if r.PerfR2.RecoveryAWIPS == 0 {
		t.Error("second recovery window missing")
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	cfg := RunConfig{
		Profile: rbe.Browsing, Servers: 4, StateMB: 300,
		Fault: NoFault, Browsers: 200, Measure: 60 * time.Second, Seed: 3,
	}
	a := runOnce(cfg.withDefaults())
	b := runOnce(cfg.withDefaults())
	if a.AWIPS != b.AWIPS || a.Total != b.Total || a.WIRTms != b.WIRTms {
		t.Fatalf("same seed diverged: %+v vs %+v", a.AWIPS, b.AWIPS)
	}
}

func TestMemoization(t *testing.T) {
	cfg := RunConfig{
		Profile: rbe.Browsing, Servers: 4, StateMB: 300,
		Fault: NoFault, Browsers: 100, Measure: 30 * time.Second, Seed: 4,
	}
	first := Run(cfg)
	start := time.Now()
	second := Run(cfg)
	if time.Since(start) > time.Second {
		t.Error("memoized run recomputed")
	}
	if first.AWIPS != second.AWIPS {
		t.Error("memoized result differs")
	}
}

func TestFormatters(t *testing.T) {
	r := shortRun(OneCrash)
	m := map[string]RunResult{"5/s": r}
	var buf bytes.Buffer
	PrintPerformability(&buf, "Table X", m)
	PrintAccuracy(&buf, "Table Y", m)
	PrintDependability(&buf, "Dep", m)
	PrintHistogram(&buf, r)
	PrintRecoveryTimes(&buf, []RecoveryTimePoint{
		{Servers: 5, Profile: rbe.Shopping, StateMB: 300, RecoverySec: 44},
	})
	out := buf.String()
	for _, want := range []string{"Table X", "5/s", "WIPS histogram", "recovery times"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatter output missing %q", want)
		}
	}
	if !strings.Contains(out, "c") {
		t.Error("histogram missing crash marker")
	}
}

func TestEBsForStateMB(t *testing.T) {
	for mb, want := range map[int]int{300: 30, 500: 50, 700: 70, 400: 40} {
		if got := ebsForStateMB(mb); got != want {
			t.Errorf("ebsForStateMB(%d) = %d, want %d", mb, got, want)
		}
	}
}

func TestPickVictimsDistinct(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		for _, servers := range []int{3, 5, 8} {
			v := pickVictims(RunConfig{Seed: seed, Servers: servers, Profile: rbe.Ordering})
			if v[0] == v[1] {
				t.Fatalf("victims collide: %v (seed %d, servers %d)", v, seed, servers)
			}
			for _, x := range v {
				if x < 0 || x >= servers {
					t.Fatalf("victim out of range: %v", v)
				}
			}
		}
	}
}
