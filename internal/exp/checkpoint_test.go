package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"robuststore/internal/rbe"
)

// TestCheckpointBytesDropWithDeltas is the headline acceptance check for
// the incremental pipeline: under the standard TPC-W load at the default
// 60 s interval, steady-state per-checkpoint disk bytes must drop at
// least 5× against monolithic full-state checkpoints (they drop ~100×:
// O(recent writes) vs O(state)), with no accuracy or throughput cost.
func TestCheckpointBytesDropWithDeltas(t *testing.T) {
	base := RunConfig{
		Profile: rbe.Shopping, Servers: 3, StateMB: 300,
		Fault: NoFault, Browsers: 300, Measure: 120 * time.Second,
		CheckpointIntervalSec: 60, Seed: 2,
	}
	fullCfg := base
	fullCfg.FullCheckpoints = true
	full := Run(fullCfg)
	incr := Run(base)

	if full.CheckpointWrites == 0 || incr.CheckpointWrites == 0 {
		t.Fatalf("no steady-state checkpoints observed: full %d, incremental %d",
			full.CheckpointWrites, incr.CheckpointWrites)
	}
	perFull := full.CheckpointBytes / full.CheckpointWrites
	perIncr := incr.CheckpointBytes / incr.CheckpointWrites
	if perIncr*5 > perFull {
		t.Errorf("per-checkpoint bytes: full %d, incremental %d — want ≥5× reduction",
			perFull, perIncr)
	}
	// The pipeline must be a pure win: same service quality, no errors.
	if incr.Errors != 0 {
		t.Errorf("incremental run had %d errors", incr.Errors)
	}
	if incr.Accuracy < 99.9 {
		t.Errorf("incremental accuracy = %v", incr.Accuracy)
	}
	if incr.AWIPS < full.AWIPS-1 {
		t.Errorf("incremental AWIPS %.1f fell below full-checkpoint AWIPS %.1f",
			incr.AWIPS, full.AWIPS)
	}
}

// TestCheckpointCurveRecovery reproduces the Figure 6 trade-off point at
// the paper's default interval: at equal state size, recovery after a
// crash must be measurably faster with incremental checkpoints — full
// checkpoints keep the disk busy writing O(state) images around the
// recovery window. The sim is deterministic per seed, so the margin is
// reproducible.
func TestCheckpointCurveRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("two 500 MB fault runs")
	}
	pts := CheckpointCurve(CheckpointCurveConfig{
		Servers: 3, StateMB: 500, Browsers: 300,
		Measure: 150 * time.Second, Intervals: []int{60}, Seed: 3,
	})
	if len(pts) != 2 {
		t.Fatalf("curve has %d points, want 2", len(pts))
	}
	full, incr := pts[0], pts[1]
	if full.Incremental || !incr.Incremental {
		t.Fatalf("unexpected point order: %+v", pts)
	}
	if full.RecoverySec <= 0 || incr.RecoverySec <= 0 {
		t.Fatalf("recovery not observed: full %.1f, incremental %.1f",
			full.RecoverySec, incr.RecoverySec)
	}
	if incr.RecoverySec >= full.RecoverySec-3 {
		t.Errorf("recovery %.1f s incremental vs %.1f s full — want a measurable improvement",
			incr.RecoverySec, full.RecoverySec)
	}
	if incr.PerCkptMB*5 > full.PerCkptMB {
		t.Errorf("per-checkpoint MB: full %.1f, incremental %.1f — want ≥5× reduction",
			full.PerCkptMB, incr.PerCkptMB)
	}

	var buf bytes.Buffer
	PrintCheckpointCurve(&buf, pts)
	out := buf.String()
	for _, want := range []string{"Checkpoint curve", "full", "incremental", "MB/ckpt"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatter output missing %q:\n%s", want, out)
		}
	}
}
