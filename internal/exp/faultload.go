package exp

import (
	"fmt"
	"strings"
)

// This file defines the composable faultload DSL: a Faultload is a
// schedule of fault events, each pairing a victim selector with an
// operation and a time on the paper's x-axis. The paper's closed §5.4–5.6
// faultloads (FaultKind) are expressed as Faultloads over the degenerate
// single-group deployment, and the same vocabulary scales them out to the
// sharded web tier: one member of one group, one member of every group
// (simultaneous or rolling), or a whole group down until manual recovery.

// FaultOp is what a fault event does to its victims.
type FaultOp int

// The fault operations.
const (
	// OpCrash kills the victims abruptly (OS-level kill, §5.1); the
	// watchdog restarts them autonomously.
	OpCrash FaultOp = iota

	// OpCrashNoRestart kills the victims with their watchdog disabled:
	// they stay down until an OpRecover event (the manual recovery of
	// §5.6).
	OpCrashNoRestart

	// OpRecover restarts the victims by operator intervention, counting
	// against the autonomy measure.
	OpRecover
)

// String implements fmt.Stringer.
func (o FaultOp) String() string {
	switch o {
	case OpCrash:
		return "crash"
	case OpCrashNoRestart:
		return "crash-no-restart"
	case OpRecover:
		return "recover"
	default:
		return "unknown"
	}
}

// Scope selects which servers of the deployment a fault event hits.
type Scope int

// The victim scopes.
const (
	// ScopeGroupMember hits one member of one group: the victim rotation
	// slot Slot of group Group.
	ScopeGroupMember Scope = iota

	// ScopeEveryGroupMember hits one member of every group at once (the
	// rotation slot Slot of each).
	ScopeEveryGroupMember

	// ScopeWholeGroup hits every member of group Group — quorum loss for
	// that client slice until the members come back.
	ScopeWholeGroup
)

// Selector picks victim servers from the deployment layout. Victims
// within a group follow the run's deterministic rotation ("chosen at
// random", §5.5): slot 0 is the group's first victim, slot 1 its second,
// and so on.
type Selector struct {
	Scope Scope
	Group int // group index, for ScopeGroupMember and ScopeWholeGroup
	Slot  int // victim rotation slot, for the member scopes
}

// Member selects the rotation slot's victim within one group.
func Member(group, slot int) Selector {
	return Selector{Scope: ScopeGroupMember, Group: group, Slot: slot}
}

// EveryGroup selects the rotation slot's victim in every group.
func EveryGroup(slot int) Selector {
	return Selector{Scope: ScopeEveryGroupMember, Slot: slot}
}

// WholeGroup selects every member of one group.
func WholeGroup(group int) Selector {
	return Selector{Scope: ScopeWholeGroup, Group: group}
}

// key renders the selector into the run memoization key.
func (sel Selector) key() string {
	switch sel.Scope {
	case ScopeGroupMember:
		return fmt.Sprintf("m%d.%d", sel.Group, sel.Slot)
	case ScopeEveryGroupMember:
		return fmt.Sprintf("e%d", sel.Slot)
	case ScopeWholeGroup:
		return fmt.Sprintf("g%d", sel.Group)
	default:
		return "?"
	}
}

// FaultEvent schedules one fault operation.
type FaultEvent struct {
	// AtSec is the event time in seconds on the paper's x-axis (measured
	// from run start, ramp-up included); it scales with a shortened
	// measurement interval exactly like the enum faultloads did.
	AtSec float64

	Op     FaultOp
	Select Selector
}

// Faultload is a composable crash/recovery schedule: the generalization
// of the paper's FaultKind enum to victim selectors × event times.
type Faultload struct {
	Name   string
	Events []FaultEvent
}

// key renders the faultload into the run memoization key.
func (f Faultload) key() string {
	if len(f.Events) == 0 {
		return "none"
	}
	parts := make([]string, 0, len(f.Events)+1)
	parts = append(parts, f.Name)
	for _, ev := range f.Events {
		parts = append(parts, fmt.Sprintf("%.0f:%d:%s", ev.AtSec, ev.Op, ev.Select.key()))
	}
	return strings.Join(parts, ",")
}

// shifted returns the faultload with every crash event moved so the first
// crash lands at firstCrashSec, preserving relative spacing — the CrashAt
// override of shortened recovery-time runs. Recovery events keep their
// absolute times, matching the enum faultloads (the §5.6 intervention
// stays at t=390 s).
func (f Faultload) shifted(firstCrashSec float64) Faultload {
	first := -1.0
	for _, ev := range f.Events {
		if ev.Op != OpRecover && (first < 0 || ev.AtSec < first) {
			first = ev.AtSec
		}
	}
	if first < 0 || first == firstCrashSec {
		return f
	}
	delta := firstCrashSec - first
	out := Faultload{Name: f.Name, Events: make([]FaultEvent, len(f.Events))}
	copy(out.Events, f.Events)
	for i := range out.Events {
		if out.Events[i].Op != OpRecover {
			out.Events[i].AtSec += delta
		}
	}
	return out
}

// --- The paper's faultloads, re-expressed ------------------------------

// PaperFaultload returns kind expressed in the DSL. At Shards=1 the
// resulting schedule is identical to what the closed enum dispatch used
// to produce (the equivalence is tested).
func PaperFaultload(kind FaultKind) Faultload {
	switch kind {
	case OneCrash:
		return Faultload{Name: "one-crash", Events: []FaultEvent{
			{AtSec: 270, Op: OpCrash, Select: Member(0, 0)},
		}}
	case TwoCrashes:
		return Faultload{Name: "two-crashes", Events: []FaultEvent{
			{AtSec: 240, Op: OpCrash, Select: Member(0, 0)},
			{AtSec: 270, Op: OpCrash, Select: Member(0, 1)},
		}}
	case DelayedRecovery:
		return Faultload{Name: "delayed-recovery", Events: []FaultEvent{
			{AtSec: 240, Op: OpCrash, Select: Member(0, 0)},
			{AtSec: 240, Op: OpCrashNoRestart, Select: Member(0, 1)},
			{AtSec: 390, Op: OpRecover, Select: Member(0, 1)},
		}}
	default:
		return Faultload{Name: "none"}
	}
}

// --- Sharded scenarios -------------------------------------------------

// MemberEveryGroup crashes one member of every group simultaneously at
// atSec: the sharded analogue of OneCrash, where each group loses one
// replica but keeps its quorum.
func MemberEveryGroup(atSec float64) Faultload {
	return Faultload{Name: "member-every-group", Events: []FaultEvent{
		{AtSec: atSec, Op: OpCrash, Select: EveryGroup(0)},
	}}
}

// RollingMemberEveryGroup crashes one member of each group, stepSec
// apart, group by group: a rolling failure wave across the deployment.
func RollingMemberEveryGroup(shards int, startSec, stepSec float64) Faultload {
	f := Faultload{Name: "rolling-member-every-group"}
	for g := 0; g < shards; g++ {
		f.Events = append(f.Events, FaultEvent{
			AtSec:  startSec + float64(g)*stepSec,
			Op:     OpCrash,
			Select: Member(g, 0),
		})
	}
	return f
}

// GroupOutage takes a whole group down at atSec — quorum loss, so its
// client slice sees a complete outage — with manual recovery of every
// member at recoverSec.
func GroupOutage(group int, atSec, recoverSec float64) Faultload {
	return Faultload{Name: "group-outage", Events: []FaultEvent{
		{AtSec: atSec, Op: OpCrashNoRestart, Select: WholeGroup(group)},
		{AtSec: recoverSec, Op: OpRecover, Select: WholeGroup(group)},
	}}
}

// --- Resolution --------------------------------------------------------

// resolvedEvent is a fault event with its victims bound to flat server
// indices of a concrete deployment.
type resolvedEvent struct {
	atSec   float64
	op      FaultOp
	victims []int
}

// resolve binds the faultload's selectors to flat (group-major) server
// indices for a Shards×Servers deployment. A selector naming a group the
// deployment does not have is a construction error — wrapping it around
// would silently crash a second member of some other group and misreport
// the scenario — so it panics.
func (f Faultload) resolve(cfg RunConfig) []resolvedEvent {
	groupOf := func(sel Selector) int {
		if sel.Group < 0 || sel.Group >= cfg.Shards {
			panic(fmt.Sprintf("exp: faultload %q selects group %d of a %d-shard deployment",
				f.Name, sel.Group, cfg.Shards))
		}
		return sel.Group
	}
	out := make([]resolvedEvent, 0, len(f.Events))
	for _, ev := range f.Events {
		re := resolvedEvent{atSec: ev.AtSec, op: ev.Op}
		sel := ev.Select
		switch sel.Scope {
		case ScopeGroupMember:
			g := groupOf(sel)
			v := pickVictimsInGroup(cfg, g)
			re.victims = []int{g*cfg.Servers + v[sel.Slot%len(v)]}
		case ScopeEveryGroupMember:
			for g := 0; g < cfg.Shards; g++ {
				v := pickVictimsInGroup(cfg, g)
				re.victims = append(re.victims, g*cfg.Servers+v[sel.Slot%len(v)])
			}
		case ScopeWholeGroup:
			g := groupOf(sel)
			for m := 0; m < cfg.Servers; m++ {
				re.victims = append(re.victims, g*cfg.Servers+m)
			}
		}
		out = append(out, re)
	}
	return out
}
