package exp

import (
	"fmt"
	"strings"

	"robuststore/internal/env"
)

// This file defines the composable faultload DSL: a Faultload is a
// schedule of fault events, each pairing a victim selector with an
// operation and a time on the paper's x-axis. The paper's closed §5.4–5.6
// faultloads (FaultKind) are expressed as Faultloads over the degenerate
// single-group deployment, and the same vocabulary scales them out to the
// sharded web tier: one member of one group, one member of every group
// (simultaneous or rolling), or a whole group down until manual recovery.
//
// Beyond crashes — the paper's "other fault types" future work — the DSL
// schedules correlated fault operations: network partitions
// (OpPartition/OpHeal, symmetric or one-way, composable via handles),
// disk degradations (OpDiskSlow/OpDiskRestore, the failing-disk straggler
// that drags the group-commit pipeline and checkpoint writes), flaky
// links (OpLinkLoss/OpLinkRestore, probabilistic per-link message loss —
// the gray network failure that never trips partition detection),
// gray-failed processes (OpGrayFail/OpGrayRestore, a member that acks
// every probe while erroring or slow-walking real requests), and link
// latency inflation (OpLinkDelay/OpLinkDelayRestore, a congested path
// where everything arrives late). Flap expands any window-opening op into
// an alternating inject/restore train (route flapping and its cousins).

// FaultOp is what a fault event does to its victims.
type FaultOp int

// The fault operations.
const (
	// OpCrash kills the victims abruptly (OS-level kill, §5.1); the
	// watchdog restarts them autonomously.
	OpCrash FaultOp = iota

	// OpCrashNoRestart kills the victims with their watchdog disabled:
	// they stay down until an OpRecover event (the manual recovery of
	// §5.6).
	OpCrashNoRestart

	// OpRecover restarts the victims by operator intervention, counting
	// against the autonomy measure.
	OpRecover

	// OpPartition isolates the victims from the rest of the cluster —
	// the proxy included, so isolating a whole group severs the
	// proxy↔group path. The event's Dir selects symmetric isolation or
	// asymmetric one-way loss. Partitions opened under different
	// selectors compose; OpHeal with the same selector heals exactly this
	// one.
	OpPartition

	// OpHeal removes the partition opened by the OpPartition event with
	// the same selector (the network repairs itself; no operator action,
	// so it does not count against autonomy).
	OpHeal

	// OpDiskSlow degrades the victims' disks live by the event's Factor:
	// seek time multiplies by it, bandwidth divides by it — a failing
	// drive in constant retry. The degradation survives crash/restart of
	// the victim (it belongs to the hardware) until OpDiskRestore.
	OpDiskSlow

	// OpDiskRestore returns the victims' disks to their configured
	// performance (the drive was swapped).
	OpDiskRestore

	// OpLinkLoss makes every link between the victims and the rest of the
	// cluster flaky: each message crossing it is dropped with probability
	// Factor (0 → DefaultLossRate), in the directions Dir selects. Unlike
	// OpPartition nothing is severed — traffic limps through retries and
	// timeouts, the gray failure partition detection cannot see. A second
	// OpLinkLoss on the same selector supersedes the first.
	OpLinkLoss

	// OpLinkRestore clears the loss opened by the OpLinkLoss event with
	// the same selector (the flaky path stabilizes on its own; no operator
	// action, so it does not count against autonomy).
	OpLinkRestore

	// OpGroupIsolate severs the victims from the other members of their
	// own Paxos group — voters and readers — while their proxy path and
	// every other link stay up. Unlike OpPartition the victims keep
	// serving clients: a learner reader cut off this way lags
	// arbitrarily far behind the acked writes, the staleness worst case
	// the read fences must bound. A second OpGroupIsolate on the same
	// selector supersedes the first.
	OpGroupIsolate

	// OpGroupReconnect restores the group links severed by the
	// OpGroupIsolate event with the same selector.
	OpGroupReconnect

	// OpGrayFail puts the victims into gray-failure mode: they keep
	// acking health probes and consensus pings while their real request
	// service suffers — Factor < 1 errors that fraction of requests fast
	// (0 → DefaultGrayRate), Factor ≥ 1 slow-walks service times by that
	// multiplier. The probe path is untouched by design, so probe-based
	// eviction alone never catches it. A second OpGrayFail on the same
	// selector supersedes the first.
	OpGrayFail

	// OpGrayRestore returns the victims of the OpGrayFail event with the
	// same selector to healthy request service.
	OpGrayRestore

	// OpLinkDelay inflates the latency of every link between the victims
	// and the rest of the cluster by Factor (0 → DefaultDelayFactor), in
	// the directions Dir selects. Every message still arrives — nothing
	// for loss detection or partition detection to see — it just crawls,
	// stretching quorum round-trips and probe replies alike. A second
	// OpLinkDelay on the same selector supersedes the first.
	OpLinkDelay

	// OpLinkDelayRestore clears the latency inflation opened by the
	// OpLinkDelay event with the same selector.
	OpLinkDelayRestore
)

// String implements fmt.Stringer.
func (o FaultOp) String() string {
	switch o {
	case OpCrash:
		return "crash"
	case OpCrashNoRestart:
		return "crash-no-restart"
	case OpRecover:
		return "recover"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpDiskSlow:
		return "disk-slow"
	case OpDiskRestore:
		return "disk-restore"
	case OpLinkLoss:
		return "link-loss"
	case OpLinkRestore:
		return "link-restore"
	case OpGroupIsolate:
		return "group-isolate"
	case OpGroupReconnect:
		return "group-reconnect"
	case OpGrayFail:
		return "gray-fail"
	case OpGrayRestore:
		return "gray-restore"
	case OpLinkDelay:
		return "link-delay"
	case OpLinkDelayRestore:
		return "link-delay-restore"
	default:
		return "unknown"
	}
}

// Scope selects which servers of the deployment a fault event hits.
type Scope int

// The victim scopes.
const (
	// ScopeGroupMember hits one member of one group: the victim rotation
	// slot Slot of group Group.
	ScopeGroupMember Scope = iota

	// ScopeEveryGroupMember hits one member of every group at once (the
	// rotation slot Slot of each).
	ScopeEveryGroupMember

	// ScopeWholeGroup hits every member of group Group — quorum loss for
	// that client slice until the members come back.
	ScopeWholeGroup

	// ScopeGroupLeader hits the member currently leading group Group's
	// consensus. It is late-bound: the victim is resolved when the event
	// fires (the leader is run state, not layout), falling back to the
	// rotation's slot-0 victim when no leader is established.
	ScopeGroupLeader

	// ScopeGroupMinority hits the largest minority of group Group —
	// ⌊(Servers−1)/2⌋ members starting at the rotation's slot-0 victim —
	// so the remaining majority keeps quorum. At Servers=1 the minority
	// is empty and the event is a no-op.
	ScopeGroupMinority

	// ScopeGroupReader hits learner-backed reader Slot of group Group
	// (the read-scale-out tier). Requires a deployment with Readers > 0;
	// never touches quorum — readers do not vote.
	ScopeGroupReader
)

// Selector picks victim servers from the deployment layout. Victims
// within a group follow the run's deterministic rotation ("chosen at
// random", §5.5): slot 0 is the group's first victim, slot 1 its second,
// and so on.
type Selector struct {
	Scope Scope
	Group int // group index, for ScopeGroupMember and ScopeWholeGroup
	Slot  int // victim rotation slot, for the member scopes
}

// Member selects the rotation slot's victim within one group.
func Member(group, slot int) Selector {
	return Selector{Scope: ScopeGroupMember, Group: group, Slot: slot}
}

// EveryGroup selects the rotation slot's victim in every group.
func EveryGroup(slot int) Selector {
	return Selector{Scope: ScopeEveryGroupMember, Slot: slot}
}

// WholeGroup selects every member of one group.
func WholeGroup(group int) Selector {
	return Selector{Scope: ScopeWholeGroup, Group: group}
}

// Leader selects the member leading one group's consensus at the moment
// the event fires.
func Leader(group int) Selector {
	return Selector{Scope: ScopeGroupLeader, Group: group}
}

// Minority selects the largest quorum-preserving minority of one group.
func Minority(group int) Selector {
	return Selector{Scope: ScopeGroupMinority, Group: group}
}

// Reader selects learner-backed reader slot of one group.
func Reader(group, slot int) Selector {
	return Selector{Scope: ScopeGroupReader, Group: group, Slot: slot}
}

// key renders the selector into the run memoization key.
func (sel Selector) key() string {
	switch sel.Scope {
	case ScopeGroupMember:
		return fmt.Sprintf("m%d.%d", sel.Group, sel.Slot)
	case ScopeEveryGroupMember:
		return fmt.Sprintf("e%d", sel.Slot)
	case ScopeWholeGroup:
		return fmt.Sprintf("g%d", sel.Group)
	case ScopeGroupLeader:
		return fmt.Sprintf("l%d", sel.Group)
	case ScopeGroupMinority:
		return fmt.Sprintf("n%d", sel.Group)
	case ScopeGroupReader:
		return fmt.Sprintf("r%d.%d", sel.Group, sel.Slot)
	default:
		return "?"
	}
}

// FaultEvent schedules one fault operation.
type FaultEvent struct {
	// AtSec is the event time in seconds on the paper's x-axis (measured
	// from run start, ramp-up included); it scales with a shortened
	// measurement interval exactly like the enum faultloads did.
	AtSec float64

	Op     FaultOp
	Select Selector

	// Dir selects the affected direction of an OpPartition or OpLinkLoss
	// relative to the victims (default LinkBothWays — symmetric). Ignored
	// by every other op.
	Dir env.LinkDir

	// Factor is OpDiskSlow's degradation multiple (seek × Factor,
	// bandwidth ÷ Factor; 0 means DefaultSlowFactor) and OpLinkLoss's
	// per-message drop probability (0 means DefaultLossRate). Ignored by
	// every other op.
	Factor float64
}

// DefaultSlowFactor is OpDiskSlow's degradation when the event leaves
// Factor zero: an 8× slower disk, the failing-but-not-dead drive whose
// group-commit flushes drag the whole phase-2 quorum.
const DefaultSlowFactor = 8

// DefaultLossRate is OpLinkLoss's drop probability when the event leaves
// Factor zero: 30% loss, well past what retries hide but short of the
// certain loss a partition would be.
const DefaultLossRate = 0.3

// DefaultGrayRate is OpGrayFail's request-error probability when the
// event leaves Factor zero: half the victim's requests fail fast while
// every probe still answers OK.
const DefaultGrayRate = 0.5

// DefaultDelayFactor is OpLinkDelay's latency multiplier when the event
// leaves Factor zero: 50× the calibrated switch latency (~120 µs → ~6 ms
// per hop), deep into quorum-round-trip pain without tripping a single
// timeout-based detector outright.
const DefaultDelayFactor = 50

// Faultload is a composable crash/recovery schedule: the generalization
// of the paper's FaultKind enum to victim selectors × event times.
type Faultload struct {
	Name   string
	Events []FaultEvent
}

// key renders the faultload into the run memoization key.
func (f Faultload) key() string {
	if len(f.Events) == 0 {
		return "none"
	}
	parts := make([]string, 0, len(f.Events)+1)
	parts = append(parts, f.Name)
	for _, ev := range f.Events {
		k := fmt.Sprintf("%.0f:%d:%s", ev.AtSec, ev.Op, ev.Select.key())
		// Non-default direction/factor extend the key; crash-only
		// faultloads keep their historical keys byte for byte. The
		// factor is normalized the way resolve applies it, so Factor 0
		// and an explicit DefaultSlowFactor memoize as the same run.
		if ev.Dir != env.LinkBothWays {
			k += fmt.Sprintf(":d%d", ev.Dir)
		}
		f := ev.Factor
		if ev.Op == OpDiskSlow && f == 0 {
			f = DefaultSlowFactor
		}
		if ev.Op == OpLinkLoss && f == 0 {
			f = DefaultLossRate
		}
		if ev.Op == OpGrayFail && f == 0 {
			f = DefaultGrayRate
		}
		if ev.Op == OpLinkDelay && f == 0 {
			f = DefaultDelayFactor
		}
		if f != 0 {
			k += fmt.Sprintf(":x%g", f)
		}
		parts = append(parts, k)
	}
	return strings.Join(parts, ",")
}

// shifted returns the faultload with every fault event (crashes,
// partitions, heals, disk degradations) moved so the first lands at
// firstCrashSec, preserving relative spacing — the CrashAt override of
// shortened recovery-time runs. Heals shift with their partitions, so
// window widths survive the shift. Recovery events keep their absolute
// times, matching the enum faultloads (the §5.6 intervention stays at
// t=390 s).
func (f Faultload) shifted(firstCrashSec float64) Faultload {
	first := -1.0
	for _, ev := range f.Events {
		if ev.Op != OpRecover && (first < 0 || ev.AtSec < first) {
			first = ev.AtSec
		}
	}
	if first < 0 || first == firstCrashSec {
		return f
	}
	delta := firstCrashSec - first
	out := Faultload{Name: f.Name, Events: make([]FaultEvent, len(f.Events))}
	copy(out.Events, f.Events)
	for i := range out.Events {
		if out.Events[i].Op != OpRecover {
			out.Events[i].AtSec += delta
		}
	}
	return out
}

// --- The paper's faultloads, re-expressed ------------------------------

// PaperFaultload returns kind expressed in the DSL. At Shards=1 the
// resulting schedule is identical to what the closed enum dispatch used
// to produce (the equivalence is tested).
func PaperFaultload(kind FaultKind) Faultload {
	switch kind {
	case OneCrash:
		return Faultload{Name: "one-crash", Events: []FaultEvent{
			{AtSec: 270, Op: OpCrash, Select: Member(0, 0)},
		}}
	case TwoCrashes:
		return Faultload{Name: "two-crashes", Events: []FaultEvent{
			{AtSec: 240, Op: OpCrash, Select: Member(0, 0)},
			{AtSec: 270, Op: OpCrash, Select: Member(0, 1)},
		}}
	case DelayedRecovery:
		return Faultload{Name: "delayed-recovery", Events: []FaultEvent{
			{AtSec: 240, Op: OpCrash, Select: Member(0, 0)},
			{AtSec: 240, Op: OpCrashNoRestart, Select: Member(0, 1)},
			{AtSec: 390, Op: OpRecover, Select: Member(0, 1)},
		}}
	default:
		return Faultload{Name: "none"}
	}
}

// --- Sharded scenarios -------------------------------------------------

// MemberEveryGroup crashes one member of every group simultaneously at
// atSec: the sharded analogue of OneCrash, where each group loses one
// replica but keeps its quorum.
func MemberEveryGroup(atSec float64) Faultload {
	return Faultload{Name: "member-every-group", Events: []FaultEvent{
		{AtSec: atSec, Op: OpCrash, Select: EveryGroup(0)},
	}}
}

// RollingMemberEveryGroup crashes one member of each group, stepSec
// apart, group by group: a rolling failure wave across the deployment.
func RollingMemberEveryGroup(shards int, startSec, stepSec float64) Faultload {
	f := Faultload{Name: "rolling-member-every-group"}
	for g := 0; g < shards; g++ {
		f.Events = append(f.Events, FaultEvent{
			AtSec:  startSec + float64(g)*stepSec,
			Op:     OpCrash,
			Select: Member(g, 0),
		})
	}
	return f
}

// GroupOutage takes a whole group down at atSec — quorum loss, so its
// client slice sees a complete outage — with manual recovery of every
// member at recoverSec.
func GroupOutage(group int, atSec, recoverSec float64) Faultload {
	return Faultload{Name: "group-outage", Events: []FaultEvent{
		{AtSec: atSec, Op: OpCrashNoRestart, Select: WholeGroup(group)},
		{AtSec: recoverSec, Op: OpRecover, Select: WholeGroup(group)},
	}}
}

// --- Correlated fault scenarios ----------------------------------------

// LeaderIsolation partitions group's current consensus leader away from
// the cluster (proxy included) at atSec and heals the network at healSec:
// the group must detect the silent leader, elect a successor and keep its
// quorum serving, then reabsorb the stale ex-leader after the heal.
func LeaderIsolation(group int, atSec, healSec float64) Faultload {
	return Faultload{Name: "leader-isolation", Events: []FaultEvent{
		{AtSec: atSec, Op: OpPartition, Select: Leader(group)},
		{AtSec: healSec, Op: OpHeal, Select: Leader(group)},
	}}
}

// MinoritySplit partitions the largest quorum-preserving minority of one
// group away at atSec, healing at healSec: the majority side keeps
// committing (agreement must hold across the split), and the isolated
// members catch back up after the heal.
func MinoritySplit(group int, atSec, healSec float64) Faultload {
	return Faultload{Name: "minority-split", Events: []FaultEvent{
		{AtSec: atSec, Op: OpPartition, Select: Minority(group)},
		{AtSec: healSec, Op: OpHeal, Select: Minority(group)},
	}}
}

// GroupIsolation partitions an entire group away from the cluster —
// severing the proxy↔group path, so its client slice sees a full outage
// with every member still running — and heals at healSec. Unlike
// GroupOutage no state is lost and no recovery replay is needed: service
// must resume at network speed.
func GroupIsolation(group int, atSec, healSec float64) Faultload {
	return Faultload{Name: "group-isolation", Events: []FaultEvent{
		{AtSec: atSec, Op: OpPartition, Select: WholeGroup(group)},
		{AtSec: healSec, Op: OpHeal, Select: WholeGroup(group)},
	}}
}

// AsymmetricLoss applies one-way loss to one member of one group (the
// rotation's slot-0 victim): from atSec to healSec its outbound messages
// vanish while inbound still arrive — the half-open link where the proxy
// keeps dispatching into a server whose replies never return.
func AsymmetricLoss(group int, atSec, healSec float64) Faultload {
	return Faultload{Name: "asymmetric-loss", Events: []FaultEvent{
		{AtSec: atSec, Op: OpPartition, Select: Member(group, 0), Dir: env.LinkOutboundOnly},
		{AtSec: healSec, Op: OpHeal, Select: Member(group, 0)},
	}}
}

// SlowDiskStraggler degrades the disk of one member of one group by
// factor (0 → DefaultSlowFactor) from atSec to restoreSec: the straggler
// drags the group-commit pipeline whenever it sits in the phase-2 quorum
// and its checkpoint writes crawl, without ever failing outright — the
// fault crash detection cannot see.
func SlowDiskStraggler(group int, factor float64, atSec, restoreSec float64) Faultload {
	return Faultload{Name: "slow-disk", Events: []FaultEvent{
		{AtSec: atSec, Op: OpDiskSlow, Select: Member(group, 0), Factor: factor},
		{AtSec: restoreSec, Op: OpDiskRestore, Select: Member(group, 0)},
	}}
}

// --- Read-tier fault scenarios ------------------------------------------

// LaggingLearner makes every link of one group's first learner-backed
// reader flaky (rate 0 → DefaultLossRate) from atSec to healSec: the
// reader keeps serving but falls behind the log as its learn traffic
// drops, so fenced reads landing on it must wait, and waits that exhaust
// the staleness bound fall back to the voters (TooStale). Quorum and
// write throughput are untouched — learners do not vote.
func LaggingLearner(group int, rate float64, atSec, healSec float64) Faultload {
	return Faultload{Name: "lagging-learner", Events: []FaultEvent{
		{AtSec: atSec, Op: OpLinkLoss, Select: Reader(group, 0), Factor: rate},
		{AtSec: healSec, Op: OpLinkRestore, Select: Reader(group, 0)},
	}}
}

// LearnerPartition severs one group's first reader from its own group —
// proxy path intact — from atSec to healSec: the reader keeps serving
// reads while its applied log freezes, so every fenced read landing on
// it must wait out the staleness bound and fall back TooStale to the
// voters, and non-fenced reads surface the bounded-staleness contract.
// After the heal it catches up off the voters' learn stream.
func LearnerPartition(group int, atSec, healSec float64) Faultload {
	return Faultload{Name: "learner-partition", Events: []FaultEvent{
		{AtSec: atSec, Op: OpGroupIsolate, Select: Reader(group, 0)},
		{AtSec: healSec, Op: OpGroupReconnect, Select: Reader(group, 0)},
	}}
}

// FenceLeaderCrash kills the group's consensus leader at atSec in the
// middle of the client load: sessions holding read-your-writes fences
// from writes the dead leader acked must still see those writes — on
// whichever server their next read lands — across the election and the
// proxy's failover. The watchdog restarts the leader autonomously.
func FenceLeaderCrash(group int, atSec float64) Faultload {
	return Faultload{Name: "fence-leader-crash", Events: []FaultEvent{
		{AtSec: atSec, Op: OpCrash, Select: Leader(group)},
	}}
}

// FlakyLink degrades every link between one member of one group (the
// rotation's slot-0 victim) and the rest of the cluster from atSec to
// healSec: each crossing message drops with probability rate (0 →
// DefaultLossRate). Consensus keeps limping through per-message retries —
// prepare/accept rounds stall and resume, the proxy's dispatches time out
// intermittently — without the clean failover a severed link would
// trigger.
func FlakyLink(group int, rate float64, atSec, healSec float64) Faultload {
	return Faultload{Name: "flaky-link", Events: []FaultEvent{
		{AtSec: atSec, Op: OpLinkLoss, Select: Member(group, 0), Factor: rate},
		{AtSec: healSec, Op: OpLinkRestore, Select: Member(group, 0)},
	}}
}

// --- Gray-failure scenarios ---------------------------------------------

// GrayFailServer puts one member of one group (the rotation's slot-0
// victim) into gray-failure mode from atSec to restoreSec: it keeps
// acking every probe while erroring or slow-walking real requests
// (factor < 1: error rate; factor ≥ 1: service-time multiplier; 0 →
// DefaultGrayRate). Quorum is untouched — the damage is entirely to the
// traffic the prober never samples.
func GrayFailServer(group int, factor float64, atSec, restoreSec float64) Faultload {
	return Faultload{Name: "gray-fail", Events: []FaultEvent{
		{AtSec: atSec, Op: OpGrayFail, Select: Member(group, 0), Factor: factor},
		{AtSec: restoreSec, Op: OpGrayRestore, Select: Member(group, 0)},
	}}
}

// GrayLeader gray-fails the member leading one group's consensus at fire
// time: the worst-placed victim, since writes hash across voters and the
// leader additionally carries proposal traffic. The prober sees a healthy
// leader throughout; only served-traffic quality can justify eviction.
func GrayLeader(group int, factor float64, atSec, restoreSec float64) Faultload {
	return Faultload{Name: "gray-leader", Events: []FaultEvent{
		{AtSec: atSec, Op: OpGrayFail, Select: Leader(group), Factor: factor},
		{AtSec: restoreSec, Op: OpGrayRestore, Select: Leader(group)},
	}}
}

// LinkDelayStraggler inflates the latency of every link between one
// member of one group (slot-0 victim) and the rest of the cluster by
// factor (0 → DefaultDelayFactor) from atSec to restoreSec: nothing
// drops, nothing severs — quorum round-trips through the victim just
// crawl, the congested-path gray failure neither loss detection nor
// partition detection can see.
func LinkDelayStraggler(group int, factor float64, atSec, restoreSec float64) Faultload {
	return Faultload{Name: "link-delay", Events: []FaultEvent{
		{AtSec: atSec, Op: OpLinkDelay, Select: Member(group, 0), Factor: factor},
		{AtSec: restoreSec, Op: OpLinkDelayRestore, Select: Member(group, 0)},
	}}
}

// PartitionFlap expands Flap into the classic route-flap scenario: the
// slot-0 member of one group partitions and heals on a periodSec cadence
// between startSec and endSec, spending duty of each period isolated.
// Every flap forces re-detection and reabsorption — a far harder fault
// than one long partition of the same total width.
func PartitionFlap(group int, startSec, endSec, periodSec, duty float64) Faultload {
	f := Flap(OpPartition, Member(group, 0), startSec, endSec, periodSec, duty, 0)
	f.Name = "partition-flap"
	return f
}

// restoreOf maps a window-opening fault op to the op that closes its
// window (the pairing Flap alternates between).
func restoreOf(op FaultOp) (FaultOp, bool) {
	switch op {
	case OpPartition:
		return OpHeal, true
	case OpDiskSlow:
		return OpDiskRestore, true
	case OpLinkLoss:
		return OpLinkRestore, true
	case OpGroupIsolate:
		return OpGroupReconnect, true
	case OpGrayFail:
		return OpGrayRestore, true
	case OpLinkDelay:
		return OpLinkDelayRestore, true
	default:
		return 0, false
	}
}

// Flap expands a fault op into an alternating inject/restore event train
// on one selector: starting at startSec, each periodSec-long period
// spends duty (0 < duty < 1) of its width under the fault and the rest
// healed, until endSec (a window still open there is closed at endSec).
// op must have a restore counterpart (OpPartition, OpDiskSlow,
// OpLinkLoss, OpGroupIsolate, OpGrayFail, OpLinkDelay); factor rides on
// every injection event. Flapping is strictly harder than one long
// window of the same cumulative width: every cycle forces re-detection,
// re-election or re-absorption from scratch.
func Flap(op FaultOp, sel Selector, startSec, endSec, periodSec, duty, factor float64) Faultload {
	restore, ok := restoreOf(op)
	if !ok {
		panic(fmt.Sprintf("exp: Flap of %v, which has no restore op", op))
	}
	if periodSec <= 0 || duty <= 0 || duty >= 1 {
		panic(fmt.Sprintf("exp: Flap(period=%g, duty=%g) outside (0,1) duty or non-positive period",
			periodSec, duty))
	}
	f := Faultload{Name: fmt.Sprintf("flap-%v", op)}
	for at := startSec; at < endSec; at += periodSec {
		f.Events = append(f.Events, FaultEvent{AtSec: at, Op: op, Select: sel, Factor: factor})
		off := at + periodSec*duty
		if off > endSec {
			off = endSec
		}
		f.Events = append(f.Events, FaultEvent{AtSec: off, Op: restore, Select: sel})
	}
	return f
}

// --- Resolution --------------------------------------------------------

// resolvedEvent is a fault event with its victims bound to flat server
// indices of a concrete deployment. Leader selectors stay late-bound:
// leaderOf names the group whose current leader is looked up when the
// event fires (victims then holds the fallback).
type resolvedEvent struct {
	atSec   float64
	op      FaultOp
	victims []int
	// selKey pairs OpHeal/OpDiskRestore with the OpPartition/OpDiskSlow
	// that opened the window (the original selector's key).
	selKey string
	// leaderOf is the group whose live leader supersedes victims at fire
	// time; -1 for statically resolved selectors.
	leaderOf int
	dir      env.LinkDir
	factor   float64
	// groupList, when non-nil, overrides victim→group attribution for
	// victims whose flat index is not group-major (learner readers live
	// past the voter range).
	groupList []int
}

// resolve binds the faultload's selectors to flat (group-major) server
// indices for a Shards×Servers deployment. A selector naming a group the
// deployment does not have is a construction error — wrapping it around
// would silently crash a second member of some other group and misreport
// the scenario — so it panics.
func (f Faultload) resolve(cfg RunConfig) []resolvedEvent {
	groupOf := func(sel Selector) int {
		if sel.Group < 0 || sel.Group >= cfg.Shards {
			panic(fmt.Sprintf("exp: faultload %q selects group %d of a %d-shard deployment",
				f.Name, sel.Group, cfg.Shards))
		}
		return sel.Group
	}
	out := make([]resolvedEvent, 0, len(f.Events))
	for _, ev := range f.Events {
		re := resolvedEvent{
			atSec:    ev.AtSec,
			op:       ev.Op,
			selKey:   ev.Select.key(),
			leaderOf: -1,
			dir:      ev.Dir,
			factor:   ev.Factor,
		}
		if re.op == OpDiskSlow && re.factor == 0 {
			re.factor = DefaultSlowFactor
		}
		if re.op == OpLinkLoss && re.factor == 0 {
			re.factor = DefaultLossRate
		}
		if re.op == OpGrayFail && re.factor == 0 {
			re.factor = DefaultGrayRate
		}
		if re.op == OpLinkDelay && re.factor == 0 {
			re.factor = DefaultDelayFactor
		}
		sel := ev.Select
		switch sel.Scope {
		case ScopeGroupMember:
			g := groupOf(sel)
			v := pickVictimsInGroup(cfg, g)
			re.victims = []int{g*cfg.Servers + v[sel.Slot%len(v)]}
		case ScopeEveryGroupMember:
			for g := 0; g < cfg.Shards; g++ {
				v := pickVictimsInGroup(cfg, g)
				re.victims = append(re.victims, g*cfg.Servers+v[sel.Slot%len(v)])
			}
		case ScopeWholeGroup:
			g := groupOf(sel)
			for m := 0; m < cfg.Servers; m++ {
				re.victims = append(re.victims, g*cfg.Servers+m)
			}
		case ScopeGroupLeader:
			// Late-bound: the leader is run state. The rotation's slot-0
			// victim is the fallback when no leader is established at
			// fire time.
			g := groupOf(sel)
			re.leaderOf = g
			v := pickVictimsInGroup(cfg, g)
			re.victims = []int{g*cfg.Servers + v[0]}
		case ScopeGroupMinority:
			g := groupOf(sel)
			m := (cfg.Servers - 1) / 2 // largest quorum-preserving minority
			first := pickVictimsInGroup(cfg, g)[0]
			for i := 0; i < m; i++ {
				re.victims = append(re.victims, g*cfg.Servers+(first+i)%cfg.Servers)
			}
		case ScopeGroupReader:
			g := groupOf(sel)
			if cfg.Readers <= 0 {
				panic(fmt.Sprintf("exp: faultload %q selects a reader of a deployment with Readers=0",
					f.Name))
			}
			re.victims = []int{cfg.Shards*cfg.Servers + g*cfg.Readers + sel.Slot%cfg.Readers}
			re.groupList = []int{g}
		}
		out = append(out, re)
	}
	return out
}

// groups returns the sorted distinct group indices of the event's victims
// (for the leader scope, the late-bound group).
func (re resolvedEvent) groups(servers int) []int {
	if re.leaderOf >= 0 {
		return []int{re.leaderOf}
	}
	if re.groupList != nil {
		return re.groupList
	}
	seen := map[int]bool{}
	var out []int
	for _, v := range re.victims {
		if g := v / servers; !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}
