package exp

import (
	"testing"
	"time"

	"robuststore/internal/rbe"
)

// TestGrayFailScenarioRun: a probe-healthy member erroring on real
// requests — one closed grayfail window on the x-axis, gray time
// accounted in the group report, no crashes (the fault never trips crash
// detection), and the quality gate pulling the victim out of rotation on
// served-traffic evidence alone. With the victim evicted, availability
// holds: the regression this pins is the pre-gate behavior where a gray
// non-leader kept absorbing its hash share of traffic and dragged
// client-visible errors for the whole window.
func TestGrayFailScenarioRun(t *testing.T) {
	fl := GrayFailServer(0, 0.9, 60, 100)
	r := Run(RunConfig{
		Profile: rbe.Shopping, Servers: 3, StateMB: 300,
		Faultload: &fl, Browsers: 200, Measure: 120 * time.Second, Seed: 6,
	})
	if len(r.CrashSec) != 0 {
		t.Fatalf("gray-fail run recorded crashes: %v", r.CrashSec)
	}
	if len(r.FaultWindows) != 1 {
		t.Fatalf("fault windows = %+v, want one", r.FaultWindows)
	}
	w := r.FaultWindows[0]
	if w.Kind != "grayfail" || w.Group != 0 {
		t.Fatalf("window = %+v", w)
	}
	if w.Factor != 0.9 {
		t.Fatalf("window factor = %v, want 0.9", w.Factor)
	}
	if want := 40.0 * 120 / 540; w.ToSec-w.FromSec < want-1 || w.ToSec-w.FromSec > want+1 {
		t.Fatalf("window width %.1f s, want ≈%.1f (scaled 40 s)", w.ToSec-w.FromSec, want)
	}
	g := r.PerGroup[0]
	if g.GrayWindows != 1 || g.GraySec <= 0 {
		t.Fatalf("group report missed the gray window: %+v", g)
	}
	if g.Crashes != 0 {
		t.Fatalf("gray failure must not crash anyone: %+v", g)
	}
	if r.Proxy.QualityEvictions < 1 {
		t.Fatalf("quality gate never evicted the gray server: %+v", r.Proxy)
	}
	if r.Availability < 0.99 {
		t.Fatalf("gray non-leader dragged availability to %v despite the quality gate", r.Availability)
	}
	if r.Accuracy < 97 {
		t.Fatalf("gray non-leader dragged accuracy to %v despite the quality gate", r.Accuracy)
	}
}

// TestLinkDelayScenarioRun: latency inflation on one member's links —
// a closed linkdelay window, delay time accounted per group, nothing
// dropped, nothing crashed.
func TestLinkDelayScenarioRun(t *testing.T) {
	fl := LinkDelayStraggler(0, 50, 60, 100)
	r := Run(RunConfig{
		Profile: rbe.Shopping, Servers: 3, StateMB: 300,
		Faultload: &fl, Browsers: 200, Measure: 120 * time.Second, Seed: 6,
	})
	if len(r.FaultWindows) != 1 || r.FaultWindows[0].Kind != "linkdelay" {
		t.Fatalf("fault windows = %+v", r.FaultWindows)
	}
	if f := r.FaultWindows[0].Factor; f != 50 {
		t.Fatalf("window factor = %v, want 50", f)
	}
	g := r.PerGroup[0]
	if g.DelayWindows != 1 || g.DelaySec <= 0 {
		t.Fatalf("group report missed the delay window: %+v", g)
	}
	if g.Crashes != 0 {
		t.Fatalf("link delay must not crash anyone: %+v", g)
	}
}

// TestGraySuiteScenarios: the named gray scenarios (gray member, gray
// leader, link-delay straggler, partition flap) all run to completion on
// the short deployment with sane dependability numbers.
func TestGraySuiteScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("full gray suite in -short mode")
	}
	rs := GraySuite(ShardedSuiteConfig{Shards: 1, Seed: 1, Browsers: 200, Measure: 120 * time.Second})
	if len(rs) != 4 {
		t.Fatalf("gray suite ran %d scenarios, want 4", len(rs))
	}
	names := map[string]bool{}
	for _, r := range rs {
		names[r.Cfg.Faultload.Name] = true
		if r.Availability < 0.9 {
			t.Errorf("%s: availability %v", r.Cfg.Faultload.Name, r.Availability)
		}
		if r.AWIPS <= 0 {
			t.Errorf("%s: AWIPS %v", r.Cfg.Faultload.Name, r.AWIPS)
		}
	}
	for _, want := range []string{"gray-fail", "gray-leader", "link-delay", "partition-flap"} {
		if !names[want] {
			t.Errorf("gray suite missing scenario %s (got %v)", want, names)
		}
	}
}
