package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"robuststore/internal/metrics"
	"robuststore/internal/rbe"
	"robuststore/internal/stats"
)

// This file renders experiment results as the rows the paper prints —
// one formatter per table and figure.

// PrintSpeedup renders Figure 3 as two aligned series (WIPS and WIRT per
// replication degree) plus the S_k values the text quotes.
func PrintSpeedup(w io.Writer, r SpeedupResult) {
	fmt.Fprintln(w, "Figure 3 — Speedup (saturation, 500 MB state)")
	fmt.Fprintf(w, "%-10s", "replicas")
	for _, k := range scalePoints {
		fmt.Fprintf(w, "%8d", k)
	}
	fmt.Fprintln(w)
	for _, profile := range rbe.Profiles {
		pts := r.Points[profile]
		fmt.Fprintf(w, "%-10s", profile.String()+" WIPS")
		for _, pt := range pts {
			fmt.Fprintf(w, "%8.0f", pt.WIPS)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s", "  WIRT ms")
		for _, pt := range pts {
			fmt.Fprintf(w, "%8.0f", pt.WIRTms)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s", "  S_k")
		for _, pt := range pts {
			fmt.Fprintf(w, "%8.2f", pt.Speedup)
		}
		fmt.Fprintln(w)
	}
}

// PrintScaleup renders Figure 4: WIPS/WIRT at 1000 offered WIPS plus the
// regression slope and the WIPS-WIRT r² of §5.3.
func PrintScaleup(w io.Writer, r ScaleupResult) {
	fmt.Fprintln(w, "Figure 4 — Scaleup at 1000 WIPS (300 MB state)")
	fmt.Fprintf(w, "%-10s", "replicas")
	for _, k := range scalePoints {
		fmt.Fprintf(w, "%8d", k)
	}
	fmt.Fprintln(w)
	for _, profile := range rbe.Profiles {
		pts := r.Points[profile]
		fmt.Fprintf(w, "%-10s", profile.String()+" WIPS")
		for _, pt := range pts {
			fmt.Fprintf(w, "%8.0f", pt.WIPS)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s", "  WIRT ms")
		for _, pt := range pts {
			fmt.Fprintf(w, "%8.0f", pt.WIRTms)
		}
		fmt.Fprintln(w)
		fit := r.Fit[profile]
		fmt.Fprintf(w, "  fit: WIPS = %.2f·k %+.1f   r²(WIPS,WIRT) = %.4f\n",
			fit.Slope, fit.Intercept, r.Correlation[profile])
	}
}

// PrintPerformability renders Tables 1 and 3: failure-free vs recovery
// AWIPS, CVs and PV per R/P row.
func PrintPerformability(w io.Writer, title string, m map[string]RunResult) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-6s %14s %6s %14s %6s %8s\n",
		"R/P", "ff AWIPS", "CV", "rec AWIPS", "CV", "PV(%)")
	for _, key := range matrixOrder() {
		r, ok := m[key]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-6s %14.1f %6.2f %14.2f %6.2f %8.1f\n",
			key, r.Perf.FailureFreeAWIPS, r.Perf.FailureFreeCV,
			r.Perf.RecoveryAWIPS, r.Perf.RecoveryCV, r.Perf.PV)
	}
}

// PrintDelayedPerformability renders Table 5 with its two recovery
// windows.
func PrintDelayedPerformability(w io.Writer, m map[string]RunResult) {
	fmt.Fprintln(w, "Table 5 — Delayed recovery: performability")
	fmt.Fprintf(w, "%-6s %12s %12s %8s %12s %8s\n",
		"R/P", "ff AWIPS", "R1 AWIPS", "PV(%)", "R2 AWIPS", "PV(%)")
	for _, key := range matrixOrder() {
		r, ok := m[key]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-6s %12.1f %12.2f %8.1f %12.2f %8.1f\n",
			key, r.Perf.FailureFreeAWIPS,
			r.Perf.RecoveryAWIPS, r.Perf.PV,
			r.PerfR2.RecoveryAWIPS, r.PerfR2.PV)
	}
}

// PrintAccuracy renders Tables 2, 4 and 6.
func PrintAccuracy(w io.Writer, title string, m map[string]RunResult) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-9s %10s %10s %10s\n", "replicas", "browsing", "shopping", "ordering")
	for _, servers := range []int{5, 8} {
		fmt.Fprintf(w, "%-9d", servers)
		for _, profile := range rbe.Profiles {
			r := m[matrixKey(servers, profile)]
			fmt.Fprintf(w, " %10.3f", r.Accuracy)
		}
		fmt.Fprintln(w)
	}
}

// PrintDependability renders the availability/autonomy summary of §5.7.
func PrintDependability(w io.Writer, title string, m map[string]RunResult) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-6s %13s %9s %7s %7s\n", "R/P", "availability", "autonomy", "faults", "errors")
	for _, key := range matrixOrder() {
		r, ok := m[key]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-6s %13.5f %9.2f %7d %7d\n",
			key, r.Availability, r.Autonomy, r.Faults, r.Errors)
	}
}

// PrintHistogram renders a Figures 5/7/8 panel: the per-second WIPS
// series of one run as a text sparkline with crash/recovery markers,
// binned to fit a terminal.
func PrintHistogram(w io.Writer, r RunResult) {
	fault := r.Cfg.Fault.String()
	if r.Cfg.Faultload != nil {
		fault = r.Cfg.Faultload.Name
	}
	fmt.Fprintf(w, "WIPS histogram — %s, %d replicas, %s (c=crash, r=recovered)\n",
		r.Cfg.Profile, r.Cfg.Servers, fault)
	const cols = 120
	n := len(r.Series)
	if n == 0 {
		return
	}
	bin := (n + cols - 1) / cols
	// Scale to the 99th percentile so one outlier bucket does not
	// flatten the plot.
	peak := stats.Percentile(r.Series, 99)
	if peak < 1 {
		peak = 1
	}
	const rows = 12
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", (n+bin-1)/bin))
	}
	for c := 0; c*bin < n; c++ {
		var sum float64
		var cnt int
		for i := c * bin; i < n && i < (c+1)*bin; i++ {
			sum += r.Series[i]
			cnt++
		}
		h := int(sum / float64(cnt) / peak * float64(rows))
		if h >= rows {
			h = rows - 1
		}
		for y := 0; y <= h; y++ {
			grid[rows-1-y][c] = '#'
		}
	}
	for _, row := range grid {
		fmt.Fprintf(w, "|%s\n", string(row))
	}
	marks := []byte(strings.Repeat("-", (n+bin-1)/bin))
	for _, cs := range r.CrashSec {
		if i := int(cs) / bin; i >= 0 && i < len(marks) {
			marks[i] = 'c'
		}
	}
	for _, rs := range r.RecoverySec {
		if i := int(rs) / bin; i >= 0 && i < len(marks) {
			marks[i] = 'r'
		}
	}
	fmt.Fprintf(w, "+%s  (0..%ds, peak %.0f WIPS)\n", string(marks), n, peak)
}

// PrintRecoveryTimes renders Figure 6 as a table: recovery seconds per
// (replicas, profile, state size).
func PrintRecoveryTimes(w io.Writer, pts []RecoveryTimePoint) {
	fmt.Fprintln(w, "Figure 6 — One failure: recovery times (s)")
	fmt.Fprintf(w, "%-9s %-10s %8s %8s %8s\n", "replicas", "profile", "300MB", "500MB", "700MB")
	type key struct {
		servers int
		profile rbe.Profile
	}
	rows := map[key]map[int]float64{}
	for _, p := range pts {
		k := key{p.Servers, p.Profile}
		if rows[k] == nil {
			rows[k] = map[int]float64{}
		}
		rows[k][p.StateMB] = p.RecoverySec
	}
	keys := make([]key, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].servers != keys[j].servers {
			return keys[i].servers < keys[j].servers
		}
		return keys[i].profile < keys[j].profile
	})
	for _, k := range keys {
		fmt.Fprintf(w, "%-9d %-10s %8.0f %8.0f %8.0f\n",
			k.servers, k.profile, rows[k][300], rows[k][500], rows[k][700])
	}
}

// PrintShardedDependability renders the per-group + aggregate
// dependability report of one sharded run: each group's client-slice
// throughput, accuracy, availability and recovery windows, with the
// deployment-wide row folded from them.
func PrintShardedDependability(w io.Writer, r RunResult) {
	name := r.Cfg.Fault.String()
	if r.Cfg.Faultload != nil {
		name = r.Cfg.Faultload.Name
	}
	total := rampUp + r.Cfg.Measure + rampDown
	fmt.Fprintf(w, "Sharded dependability — %s (%d group(s) × %d servers, %s)\n",
		name, len(r.PerGroup), r.Cfg.Servers, r.Cfg.Profile)
	fmt.Fprintf(w, "%-10s %9s %8s %9s %8s %7s %5s %9s %8s %8s %7s\n",
		"group", "AWIPS", "acc(%)", "avail", "down(s)", "crashes", "rec", "mrec(s)",
		"part(s)", "slow(s)", "PV(%)")
	for _, g := range r.PerGroup {
		fmt.Fprintf(w, "%-10d %9.1f %8.3f %9.5f %8.1f %7d %5d %9.1f %8.1f %8.1f %7.1f\n",
			g.Group, g.AWIPS, g.Accuracy, g.Availability, g.Downtime.Seconds(),
			g.Crashes, g.Recoveries, g.MeanRecoverySec, g.PartitionSec, g.DegradedSec,
			g.Perf.PV)
	}
	agg := metrics.AggregateGroups(r.PerGroup, total)
	fmt.Fprintf(w, "%-10s %9.1f %8.3f %9.5f %8.1f %7d %5d %9.1f %8.1f %8.1f %7.1f\n",
		"aggregate", agg.AWIPS, r.Accuracy, r.Availability, agg.Downtime.Seconds(),
		agg.Crashes, agg.Recoveries, agg.MeanRecoverySec, agg.PartitionSec,
		agg.DegradedSec, r.Perf.PV)
	printFaultWindows(w, r.FaultWindows)
}

// printFaultWindows lists each correlated fault window on the x-axis.
func printFaultWindows(w io.Writer, wins []metrics.FaultWindow) {
	for _, fw := range wins {
		extra := ""
		if fw.Kind == "partition" && fw.Dir != "" && fw.Dir != "both" {
			extra = ", one-way " + fw.Dir
		}
		if fw.Kind == "slowdisk" && fw.Factor > 0 {
			extra = fmt.Sprintf(", %gx slower", fw.Factor)
		}
		if fw.Kind == "linkloss" && fw.Factor > 0 {
			extra = fmt.Sprintf(", %.0f%% loss", fw.Factor*100)
			if fw.Dir != "" && fw.Dir != "both" {
				extra += ", one-way " + fw.Dir
			}
		}
		if fw.Kind == "grayfail" && fw.Factor > 0 {
			if fw.Factor < 1 {
				extra = fmt.Sprintf(", %.0f%% errors", fw.Factor*100)
			} else {
				extra = fmt.Sprintf(", %gx slow-walk", fw.Factor)
			}
		}
		if fw.Kind == "linkdelay" && fw.Factor > 0 {
			extra = fmt.Sprintf(", %gx latency", fw.Factor)
			if fw.Dir != "" && fw.Dir != "both" {
				extra += ", one-way " + fw.Dir
			}
		}
		if fw.ToSec < 0 {
			fmt.Fprintf(w, "  %s window: group %d, t=%.1f s → (never healed)%s\n",
				fw.Kind, fw.Group, fw.FromSec, extra)
			continue
		}
		fmt.Fprintf(w, "  %s window: group %d, t=%.1f s → t=%.1f s (%.1f s)%s\n",
			fw.Kind, fw.Group, fw.FromSec, fw.ToSec, fw.ToSec-fw.FromSec, extra)
	}
}

// PrintTxnReport renders one transaction-faultload run: the atomicity
// audit first (the point of the experiment), then each group's decision
// outcomes and key-blocked time beside its dependability row.
func PrintTxnReport(w io.Writer, r RunResult) {
	name := r.Cfg.Fault.String()
	if r.Cfg.Faultload != nil {
		name = r.Cfg.Faultload.Name
	}
	a := r.Txn
	fmt.Fprintf(w, "Cross-shard transactions — %s (%d group(s) × %d servers, %g txn/s)\n",
		name, len(r.PerGroup), r.Cfg.Servers, r.Cfg.TxnRate)
	fmt.Fprintf(w, "  issued %d (%d cross-shard): %d committed, %d aborted, %d unresolved\n",
		a.Issued, a.CrossShard, a.Committed, a.Aborted, a.Unresolved)
	if v := a.Violations(); v == 0 {
		fmt.Fprintf(w, "  atomicity: OK — nothing lost, duplicated or half-applied\n")
	} else {
		fmt.Fprintf(w, "  atomicity: %d VIOLATION(S) — %d lost, %d duplicated, %d half-applied\n",
			v, a.Lost, a.Duplicated, a.HalfApplied)
	}
	fmt.Fprintf(w, "%-10s %9s %8s %9s %8s %8s %9s\n",
		"group", "AWIPS", "acc(%)", "avail", "commits", "aborts", "blk(s)")
	for _, g := range r.PerGroup {
		fmt.Fprintf(w, "%-10d %9.1f %8.3f %9.5f %8d %8d %9.2f\n",
			g.Group, g.AWIPS, g.Accuracy, g.Availability,
			g.TxnCommits, g.TxnAborts, g.TxnBlockedSec)
	}
	total := rampUp + r.Cfg.Measure + rampDown
	agg := metrics.AggregateGroups(r.PerGroup, total)
	fmt.Fprintf(w, "%-10s %9.1f %8.3f %9.5f %8d %8d %9.2f\n",
		"aggregate", agg.AWIPS, r.Accuracy, r.Availability,
		agg.TxnCommits, agg.TxnAborts, agg.TxnBlockedSec)
	printFaultWindows(w, r.FaultWindows)
}

// PrintPartitionBench renders the leader-isolation failover summary.
func PrintPartitionBench(w io.Writer, p PartitionBenchPoint) {
	sec := func(v float64) string {
		if v < 0 {
			return "never (within the run)"
		}
		return fmt.Sprintf("%.1f s", v)
	}
	fmt.Fprintln(w, "Partition recovery — leader isolated, no crash")
	fmt.Fprintf(w, "  detection+failover: %s (throughput back ≥70%% of failure-free)\n", sec(p.DetectSec))
	fmt.Fprintf(w, "  post-heal reabsorb: %s\n", sec(p.ReabsorbSec))
	fmt.Fprintf(w, "  AWIPS failure-free %.1f, during window %.1f, after heal %.1f\n",
		p.FFAWIPS, p.WindowAWIPS, p.PostAWIPS)
}

// PrintRebalance renders the resharding-under-fault report: the
// migration window and moved hash-space share, then the per-group
// dependability rows (the joined group included).
func PrintRebalance(w io.Writer, r RunResult) {
	fmt.Fprintf(w, "Live rebalance — %d→%d groups × %d servers, %s\n",
		r.Cfg.Shards, r.FinalShards, r.Cfg.Servers, r.Cfg.Profile)
	m := r.Migration
	if !m.Happened {
		fmt.Fprintln(w, "  no migration ran")
		return
	}
	fmt.Fprintf(w, "  routing epoch cutover: group %d joined, %d/%d slices moved (%.1f%%)\n",
		m.NewGroup, m.MovedSlices, m.TotalSlices,
		100*float64(m.MovedSlices)/float64(m.TotalSlices))
	fmt.Fprintf(w, "  migration window: %.2f s (t=%.1f s → t=%.1f s); moving-key writes delayed, none failed\n",
		m.WindowSec, m.StartSec, m.CutoverSec)
	if len(r.CrashSec) > 0 {
		fmt.Fprintf(w, "  mid-migration crash: server %d at t=%.1f s (recoveries: %d)\n",
			r.CrashedServers[0], r.CrashSec[0], len(r.RecoverySec))
	}
	fmt.Fprintf(w, "  epoch redirects: %d, requeued writes: %d\n",
		r.Proxy.EpochRedirects, r.Proxy.Requeued)
	PrintShardedDependability(w, r)
}

// PrintShardedRecovery renders the recovery-vs-shard-count curve.
func PrintShardedRecovery(w io.Writer, pts []ShardedRecoveryPoint) {
	fmt.Fprintln(w, "Sharded recovery — one member of every group crashed")
	fmt.Fprintf(w, "%-8s %12s %16s %10s\n", "shards", "mean rec(s)", "worst grp avail", "AWIPS")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %12.1f %16.5f %10.1f\n",
			p.Shards, p.MeanRecoverySec, p.WorstGroupAvail, p.AWIPS)
	}
}

// PrintReadScale renders the read scale-out sweep: read throughput vs
// read-serving node count, with the staleness accounting beside it.
func PrintReadScale(w io.Writer, pts []ReadScalePoint) {
	fmt.Fprintln(w, "Read scale-out — learner readers per group, Browsing profile")
	fmt.Fprintf(w, "%-8s %10s %12s %8s %10s %12s %12s %8s\n",
		"readers", "read nodes", "reads/s", "WIPS", "WIRT(ms)", "fence waits", "stale serves", "scale")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %10d %12.1f %8.1f %10.1f %12d %12d %8.2f\n",
			p.Readers, p.ReadNodes, p.ReadsPerSec, p.WIPS, p.WIRTms,
			p.FenceWaits, p.StaleServes, p.Scale)
	}
}

// PrintCheckpointCurve renders the recovery-time-vs-checkpoint-interval
// trade-off, full vs incremental checkpoints side by side.
func PrintCheckpointCurve(w io.Writer, pts []CheckpointPoint) {
	fmt.Fprintln(w, "Checkpoint curve — recovery time vs interval, full vs incremental")
	fmt.Fprintf(w, "%-10s %-12s %10s %8s %8s %12s %12s\n",
		"interval", "mode", "rec(s)", "AWIPS", "ckpts", "MB/ckpt", "ckpt MB/s")
	for _, p := range pts {
		mode := "full"
		if p.Incremental {
			mode = "incremental"
		}
		fmt.Fprintf(w, "%-10d %-12s %10.1f %8.1f %8d %12.1f %12.2f\n",
			p.IntervalSec, mode, p.RecoverySec, p.AWIPS, p.CkptWrites,
			p.PerCkptMB, p.CkptMBPerSec)
	}
}

// PrintAblation renders one ablation comparison.
func PrintAblation(w io.Writer, a AblationResult) {
	fmt.Fprintf(w, "Ablation %s:\n  %-16s %8.1f WIPS %8.1f ms\n  %-16s %8.1f WIPS %8.1f ms\n",
		a.Name, a.BaselineNote, a.BaselineWIPS, a.BaselineWIRT,
		a.VariantNote, a.VariantWIPS, a.VariantWIRT)
}

// matrixOrder returns the paper's row order for the dependability tables.
func matrixOrder() []string {
	var keys []string
	for _, servers := range []int{5, 8} {
		for _, profile := range rbe.Profiles {
			keys = append(keys, matrixKey(servers, profile))
		}
	}
	return keys
}
