package search

import (
	"os"
	"strings"
	"testing"

	"robuststore/internal/exp"
	"robuststore/internal/paxos"
)

// pinnedCorpus is the committed counterexample corpus, relative to this
// package's directory.
const pinnedCorpus = "../testdata/pinned"

// replay runs one pinned case and judges it with the oracles it was
// found under.
func replay(t *testing.T, pc PinnedCase) Verdict {
	t.Helper()
	rc, err := pc.RunConfig()
	if err != nil {
		t.Fatalf("reconstructing %s: %v", pc.Name, err)
	}
	baseCfg := rc
	baseCfg.Faultload = &exp.Faultload{Name: "none"}
	base := exp.Run(baseCfg)
	r := exp.RunUncached(rc)
	evs := rc.Faultload.Events
	return Evaluate(r, base.AWIPS, lastFaultRunSec(evs, rc.Measure))
}

// TestPinnedCorpusReplaysClean auto-replays every counterexample under
// testdata/pinned against the current build: each was a real failure
// when found, each must stay fixed. A regression that re-breaks one
// fails here with the original violation for context.
func TestPinnedCorpusReplaysClean(t *testing.T) {
	if testing.Short() {
		t.Skip("pinned corpus replay in -short mode")
	}
	cases, paths, err := LoadPins(pinnedCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatalf("no pinned cases under %s — the corpus should hold at least the stale-leader wedge", pinnedCorpus)
	}
	for i, pc := range cases {
		pc := pc
		path := paths[i]
		t.Run(pc.Name, func(t *testing.T) {
			if v := replay(t, pc); v.Failed() {
				t.Errorf("pinned case %s (%s) fails again: %v\noriginally: %v",
					pc.Name, path, v.Violations, pc.Violations)
			}
		})
	}
}

// TestHuntFindsShrinksAndPinsKnownBug is the harness's own acceptance
// test: with the stale-leader-rejoin fix reverted behind its test
// toggle, the generative search must find the write-wedge, delta-debug
// the schedule down, and pin a counterexample that reproduces the wedge
// pre-fix and passes post-fix. The hunt seed is chosen (like the paxos
// regression seeds) so a leader partition/heal schedule falls inside a
// small budget; the wedge itself is the real heal-time race, not a
// scripted failure.
func TestHuntFindsShrinksAndPinsKnownBug(t *testing.T) {
	if testing.Short() {
		t.Skip("hunt acceptance run in -short mode")
	}
	paxos.BugStaleLeaderRejoin = true
	defer func() { paxos.BugStaleLeaderRejoin = false }()

	dir := t.TempDir()
	rep := Hunt(Config{Servers: 5, Seed: 26, Budget: 4, PinDir: dir, Log: os.Stderr})
	if len(rep.Findings) == 0 {
		t.Fatal("hunt against the known-bad engine found nothing")
	}
	f := rep.Findings[0]
	wedged := false
	for _, viol := range f.Case.Violations {
		if strings.HasPrefix(viol, "write-wedge") {
			wedged = true
		}
	}
	if !wedged {
		t.Fatalf("finding is not the write-wedge: %v", f.Case.Violations)
	}
	if f.EventsMin >= f.EventsFound {
		t.Errorf("shrinker made no progress: %d → %d events", f.EventsFound, f.EventsMin)
	}
	if f.Path == "" {
		t.Fatal("finding was not pinned")
	}
	if _, err := os.Stat(f.Path); err != nil {
		t.Fatalf("pinned file missing: %v", err)
	}

	// The pinned schedule reproduces the wedge on the broken engine...
	if v := replay(t, f.Case); !v.Failed() {
		t.Error("pinned schedule does not reproduce the wedge pre-fix")
	}
	// ...and passes once the fix is back in.
	paxos.BugStaleLeaderRejoin = false
	if v := replay(t, f.Case); v.Failed() {
		t.Errorf("pinned schedule still fails post-fix: %v", v.Violations)
	}
}
