package search

import (
	"math/rand"
	"reflect"
	"testing"

	"robuststore/internal/exp"
)

// TestSampleSchedulesQuorumSafe: across many draws, severing windows
// never overlap within a group, every event lands inside the sample
// window, and schedules are non-empty and deterministic per seed.
func TestSampleSchedulesQuorumSafe(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		sc := sampleSchedule(rand.New(rand.NewSource(seed)), 2, 3)
		if len(sc.fl.Events) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		for _, ev := range sc.fl.Events {
			if ev.AtSec < sampleStartSec || ev.AtSec > sampleEndSec {
				t.Fatalf("seed %d: event at t=%.0f outside [%.0f, %.0f]: %+v",
					seed, ev.AtSec, sampleStartSec, sampleEndSec, ev)
			}
		}
		// Severing windows per group must not strictly overlap (crash
		// reservations span the fixed recovery allowance; flap cycles on
		// one selector are sequential within their reservation and share
		// a selector, so compare across selectors only).
		type span struct {
			from, to float64
			sel      exp.Selector
		}
		perGroup := map[int][]span{}
		for i, ev := range sc.fl.Events {
			if !severing(ev.Op) {
				continue
			}
			from := ev.AtSec
			to := from + 180 // crash allowance
			if restore, ok := restoreOp(ev.Op); ok {
				for _, ev2 := range sc.fl.Events[i+1:] {
					if ev2.Op == restore && ev2.Select == ev.Select && ev2.AtSec >= ev.AtSec {
						to = ev2.AtSec
						break
					}
				}
			}
			perGroup[ev.Select.Group] = append(perGroup[ev.Select.Group], span{from, to, ev.Select})
		}
		for g, spans := range perGroup {
			for i := 0; i < len(spans); i++ {
				for j := i + 1; j < len(spans); j++ {
					a, b := spans[i], spans[j]
					if a.sel == b.sel {
						continue
					}
					if a.from < b.to && b.from < a.to {
						t.Errorf("seed %d group %d: severing spans [%.0f,%.0f] and [%.0f,%.0f] overlap",
							seed, g, a.from, a.to, b.from, b.to)
					}
				}
			}
		}
		// Determinism: the same seed draws the same schedule.
		sc2 := sampleSchedule(rand.New(rand.NewSource(seed)), 2, 3)
		if !reflect.DeepEqual(sc.fl, sc2.fl) {
			t.Fatalf("seed %d: sampler not deterministic", seed)
		}
	}
}

// TestSampleOpMixCoversGrayOps: the grammar actually emits the new gray
// ops with reasonable frequency.
func TestSampleOpMixCoversGrayOps(t *testing.T) {
	counts := map[exp.FaultOp]int{}
	for seed := int64(0); seed < 400; seed++ {
		sc := sampleSchedule(rand.New(rand.NewSource(seed)), 1, 3)
		for _, ev := range sc.fl.Events {
			counts[ev.Op]++
		}
	}
	for _, op := range []exp.FaultOp{exp.OpGrayFail, exp.OpLinkDelay, exp.OpPartition, exp.OpCrash} {
		if counts[op] == 0 {
			t.Errorf("op %v never sampled in 400 schedules", op)
		}
	}
}

// TestLastFaultRunSec: restored schedules report the clear time; an
// orphaned opener disables the wedge oracle.
func TestLastFaultRunSec(t *testing.T) {
	measure := 120 * 1e9 // 120 s in time.Duration units
	_ = measure
	restored := []exp.FaultEvent{
		{AtSec: 240, Op: exp.OpGrayFail, Select: exp.Member(0, 0)},
		{AtSec: 330, Op: exp.OpGrayRestore, Select: exp.Member(0, 0)},
	}
	if got := lastFaultRunSec(restored, 120e9); got < 0 {
		t.Fatalf("restored schedule reported as never-clearing")
	} else {
		want := runSecOf(330, 120e9)
		if got != want {
			t.Fatalf("lastFaultRunSec = %.1f, want %.1f", got, want)
		}
	}
	orphan := restored[:1]
	if got := lastFaultRunSec(orphan, 120e9); got >= 0 {
		t.Fatalf("orphaned opener should disable the wedge oracle, got %.1f", got)
	}
	crash := []exp.FaultEvent{{AtSec: 100, Op: exp.OpCrash, Select: exp.Member(0, 0)}}
	if got, want := lastFaultRunSec(crash, 120e9), runSecOf(100, 120e9)+crashRecoverSec; got != want {
		t.Fatalf("crash clear time = %.1f, want %.1f", got, want)
	}
}
