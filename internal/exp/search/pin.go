package search

// Pinned counterexamples: a failing schedule the hunt found, serialized
// with every knob needed to reproduce the run — deployment shape, RBE
// load, seed, and the shrunk event list — as JSON under
// internal/exp/testdata/pinned/. TestPinnedCases replays every file
// there: a pinned case is a bug that was found, fixed, and must stay
// fixed.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/exp"
	"robuststore/internal/rbe"
)

// PinnedEvent is one fault event in serialized form. Op, Scope and Dir
// use the human-readable names (FaultOp.String and friends) so a pinned
// file reads as documentation of the counterexample.
type PinnedEvent struct {
	AtSec  float64 `json:"at_sec"`
	Op     string  `json:"op"`
	Scope  string  `json:"scope"`
	Group  int     `json:"group"`
	Slot   int     `json:"slot,omitempty"`
	Dir    string  `json:"dir,omitempty"`
	Factor float64 `json:"factor,omitempty"`
}

// PinnedCase is one reproducible counterexample: the shrunk schedule plus
// the full run configuration and the oracle violations observed when it
// was found.
type PinnedCase struct {
	Name       string        `json:"name"`
	Violations []string      `json:"violations"`
	Seed       uint64        `json:"seed"`
	Profile    string        `json:"profile"`
	Servers    int           `json:"servers"`
	Shards     int           `json:"shards"`
	Readers    int           `json:"readers,omitempty"`
	StateMB    int           `json:"state_mb"`
	Browsers   int           `json:"browsers"`
	MeasureSec int           `json:"measure_sec"`
	TxnRate    float64       `json:"txn_rate,omitempty"`
	Events     []PinnedEvent `json:"events"`
}

// opByName inverts FaultOp.String over the full op range.
var opByName = func() map[string]exp.FaultOp {
	m := map[string]exp.FaultOp{}
	for op := exp.OpCrash; op <= exp.OpLinkDelayRestore; op++ {
		m[op.String()] = op
	}
	return m
}()

var scopeNames = map[exp.Scope]string{
	exp.ScopeGroupMember:      "member",
	exp.ScopeEveryGroupMember: "every-member",
	exp.ScopeWholeGroup:       "whole-group",
	exp.ScopeGroupLeader:      "leader",
	exp.ScopeGroupMinority:    "minority",
	exp.ScopeGroupReader:      "reader",
}

var scopeByName = func() map[string]exp.Scope {
	m := map[string]exp.Scope{}
	for s, n := range scopeNames {
		m[n] = s
	}
	return m
}()

var dirByName = map[string]env.LinkDir{
	"":         env.LinkBothWays,
	"both":     env.LinkBothWays,
	"outbound": env.LinkOutboundOnly,
	"inbound":  env.LinkInboundOnly,
}

// pinEvents converts a schedule to serialized form.
func pinEvents(events []exp.FaultEvent) []PinnedEvent {
	out := make([]PinnedEvent, 0, len(events))
	for _, ev := range events {
		pe := PinnedEvent{
			AtSec:  ev.AtSec,
			Op:     ev.Op.String(),
			Scope:  scopeNames[ev.Select.Scope],
			Group:  ev.Select.Group,
			Slot:   ev.Select.Slot,
			Factor: ev.Factor,
		}
		if ev.Dir != env.LinkBothWays {
			pe.Dir = ev.Dir.String()
		}
		out = append(out, pe)
	}
	return out
}

// Faultload reconstructs the executable schedule.
func (p PinnedCase) Faultload() (exp.Faultload, error) {
	fl := exp.Faultload{Name: p.Name}
	for i, pe := range p.Events {
		op, ok := opByName[pe.Op]
		if !ok {
			return fl, fmt.Errorf("pinned case %q event %d: unknown op %q", p.Name, i, pe.Op)
		}
		scope, ok := scopeByName[pe.Scope]
		if !ok {
			return fl, fmt.Errorf("pinned case %q event %d: unknown scope %q", p.Name, i, pe.Scope)
		}
		dir, ok := dirByName[pe.Dir]
		if !ok {
			return fl, fmt.Errorf("pinned case %q event %d: unknown dir %q", p.Name, i, pe.Dir)
		}
		fl.Events = append(fl.Events, exp.FaultEvent{
			AtSec:  pe.AtSec,
			Op:     op,
			Select: exp.Selector{Scope: scope, Group: pe.Group, Slot: pe.Slot},
			Dir:    dir,
			Factor: pe.Factor,
		})
	}
	return fl, nil
}

// RunConfig reconstructs the full run configuration the case was found
// under (the faultload is allocated fresh per call).
func (p PinnedCase) RunConfig() (exp.RunConfig, error) {
	fl, err := p.Faultload()
	if err != nil {
		return exp.RunConfig{}, err
	}
	var profile rbe.Profile
	for _, pr := range rbe.Profiles {
		if pr.String() == p.Profile {
			profile = pr
		}
	}
	if profile == 0 {
		return exp.RunConfig{}, fmt.Errorf("pinned case %q: unknown profile %q", p.Name, p.Profile)
	}
	return exp.RunConfig{
		Profile:   profile,
		Servers:   p.Servers,
		Shards:    p.Shards,
		Readers:   p.Readers,
		StateMB:   p.StateMB,
		Faultload: &fl,
		Browsers:  p.Browsers,
		Measure:   time.Duration(p.MeasureSec) * time.Second,
		Seed:      p.Seed,
		TxnRate:   p.TxnRate,
	}, nil
}

// SavePin writes the case under dir with a content-addressed filename
// (name plus a digest prefix), so re-pinning the same counterexample is
// idempotent and distinct cases never collide. Returns the file path.
func SavePin(dir string, p PinnedCase) (string, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	sum := sha256.Sum256(b)
	name := strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' {
			return r
		}
		return '-'
	}, strings.ToLower(p.Name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%x.json", name, sum[:4]))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadPins reads every pinned case under dir, sorted by filename. A
// missing directory is an empty corpus, not an error.
func LoadPins(dir string) ([]PinnedCase, []string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []PinnedCase
	var paths []string
	for _, n := range names {
		path := filepath.Join(dir, n)
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var p PinnedCase
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, p)
		paths = append(paths, path)
	}
	return out, paths, nil
}
