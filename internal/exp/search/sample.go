package search

// The schedule sampler: random fault schedules drawn from the faultload
// DSL grammar — weighted op mix, random selectors, times and factors —
// quorum-safe by construction so the oracles stay sound (see oracle.go).

import (
	"fmt"
	"math/rand"
	"sort"

	"robuststore/internal/env"
	"robuststore/internal/exp"
)

// Sampler event times live on the paper's x-axis. Injections land in
// [sampleStartSec, sampleInjectEndSec]; every window restores by
// sampleEndSec, leaving a post-fault tail for the wedge oracle even under
// the shortened hunt measurement interval.
const (
	sampleStartSec     = 60.0
	sampleInjectEndSec = 260.0
	sampleEndSec       = 420.0

	// crashInjectEndSec caps crash times harder than window faults:
	// recovery replay takes real (unscaled) time, and the wedge oracle
	// needs the replica back with series left to judge.
	crashInjectEndSec = 140.0
)

// opWeights is the grammar's op mix. Gray faults weigh as much as the
// classic severing faults: they are the reason the hunt exists.
var opWeights = []struct {
	op exp.FaultOp
	w  int
}{
	{exp.OpCrash, 2},
	{exp.OpPartition, 3},
	{exp.OpDiskSlow, 2},
	{exp.OpLinkLoss, 2},
	{exp.OpGroupIsolate, 1},
	{exp.OpGrayFail, 3},
	{exp.OpLinkDelay, 2},
}

// severing reports whether the op denies its victims' service outright
// (crash, partition, group isolation) — the class the sampler must keep
// to a minority per group with non-overlapping windows.
func severing(op exp.FaultOp) bool {
	switch op {
	case exp.OpCrash, exp.OpCrashNoRestart, exp.OpPartition, exp.OpGroupIsolate:
		return true
	}
	return false
}

// sampledSchedule is one draw from the grammar.
type sampledSchedule struct {
	fl exp.Faultload
}

// pickOp draws from the weighted op mix.
func pickOp(rng *rand.Rand) exp.FaultOp {
	total := 0
	for _, e := range opWeights {
		total += e.w
	}
	n := rng.Intn(total)
	for _, e := range opWeights {
		if n < e.w {
			return e.op
		}
		n -= e.w
	}
	return opWeights[0].op
}

// pickSelector draws a quorum-preserving victim selector within group g:
// a single rotation member, the late-bound leader, or the largest safe
// minority.
func pickSelector(rng *rand.Rand, g int) exp.Selector {
	switch rng.Intn(5) {
	case 0, 1:
		return exp.Member(g, rng.Intn(2))
	case 2, 3:
		return exp.Leader(g)
	default:
		return exp.Minority(g)
	}
}

// pickFactor draws an op-appropriate degradation factor.
func pickFactor(rng *rand.Rand, op exp.FaultOp) float64 {
	choice := func(xs ...float64) float64 { return xs[rng.Intn(len(xs))] }
	switch op {
	case exp.OpDiskSlow:
		return choice(4, 8, 16)
	case exp.OpLinkLoss:
		return choice(0.2, 0.3, 0.5)
	case exp.OpGrayFail:
		// Below 1: fast-error rate; at/above: service slow-walk.
		return choice(0.3, 0.5, 0.8, 10, 20, 40)
	case exp.OpLinkDelay:
		return choice(20, 50, 100)
	}
	return 0
}

// pickDir draws a link direction for the ops that honor one (mostly
// symmetric, sometimes the nastier one-way loss).
func pickDir(rng *rand.Rand, op exp.FaultOp) env.LinkDir {
	switch op {
	case exp.OpPartition, exp.OpLinkLoss, exp.OpLinkDelay:
		if rng.Intn(4) == 0 {
			return env.LinkOutboundOnly
		}
	}
	return env.LinkBothWays
}

// sampleSchedule draws one random fault schedule for a shards×servers
// deployment. Quorum safety: severing windows never overlap within a
// group (and each hits at most a minority), so any oracle violation is
// the system's fault. Non-severing (gray) faults overlap freely.
func sampleSchedule(rng *rand.Rand, shards, servers int) sampledSchedule {
	type span struct{ from, to float64 }
	severSpans := map[int][]span{}
	overlaps := func(g int, from, to float64) bool {
		for _, s := range severSpans[g] {
			if from < s.to && s.from < to {
				return true
			}
		}
		return false
	}

	fl := exp.Faultload{Name: fmt.Sprintf("hunt-%08x", rng.Uint32())}

	// Compound 2PC-targeted draw (sharded deployments, ~1 in 4
	// schedules): two correlated events anchored inside one
	// prepare→commit-sized window, aimed across a coordinator group and a
	// participant group — the schedules most likely to strand a prepared
	// branch or race a presumed abort against a real commit. Still
	// quorum-safe: each group loses at most one member / a minority, and
	// both windows register in severSpans so later draws never overlap
	// them.
	if shards > 1 && rng.Intn(4) == 0 {
		cg := rng.Intn(shards)
		pg := (cg + 1 + rng.Intn(shards-1)) % shards
		at := sampleStartSec + rng.Float64()*(crashInjectEndSec-sampleStartSec)
		at = float64(int(at))
		if rng.Intn(2) == 0 {
			// Coordinator leader dies while the participant group's
			// leader is partitioned away: prepares land on a group
			// mid-election, the decision's home loses its writer.
			to := float64(int(at + 20 + rng.Float64()*60))
			severSpans[cg] = append(severSpans[cg], span{at, at + 180})
			severSpans[pg] = append(severSpans[pg], span{at - 4, to})
			fl.Events = append(fl.Events,
				exp.FaultEvent{AtSec: at - 4, Op: exp.OpPartition, Select: exp.Leader(pg)},
				exp.FaultEvent{AtSec: at, Op: exp.OpCrash, Select: exp.Leader(cg)},
				exp.FaultEvent{AtSec: to, Op: exp.OpHeal, Select: exp.Leader(pg)},
			)
		} else {
			// Double leader crash one second apart: both ends of the
			// transaction lose their proposer inside the same window.
			severSpans[cg] = append(severSpans[cg], span{at, at + 180})
			severSpans[pg] = append(severSpans[pg], span{at + 1, at + 181})
			fl.Events = append(fl.Events,
				exp.FaultEvent{AtSec: at, Op: exp.OpCrash, Select: exp.Leader(cg)},
				exp.FaultEvent{AtSec: at + 1, Op: exp.OpCrash, Select: exp.Leader(pg)},
			)
		}
	}

	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		g := rng.Intn(shards)
		op := pickOp(rng)

		if op == exp.OpCrash {
			at := sampleStartSec + rng.Float64()*(crashInjectEndSec-sampleStartSec)
			at = float64(int(at)) // whole seconds keep keys and pins tidy
			// The watchdog restarts the victim; budget its recovery like
			// a severing window so nothing else severs the group
			// meanwhile.
			if overlaps(g, at, at+180) {
				continue
			}
			severSpans[g] = append(severSpans[g], span{at, at + 180})
			fl.Events = append(fl.Events, exp.FaultEvent{
				AtSec: at, Op: exp.OpCrash, Select: exp.Member(g, rng.Intn(2)),
			})
			continue
		}

		sel := pickSelector(rng, g)
		from := sampleStartSec + rng.Float64()*(sampleInjectEndSec-sampleStartSec)
		width := 40 + rng.Float64()*110
		from = float64(int(from))
		to := float64(int(from + width))
		if to > sampleEndSec {
			to = sampleEndSec
		}
		if severing(op) {
			if overlaps(g, from, to) {
				continue // keep the draw count; a thinner schedule is fine
			}
			severSpans[g] = append(severSpans[g], span{from, to})
		}
		restore, _ := restoreOp(op)
		factor := pickFactor(rng, op)
		dir := pickDir(rng, op)

		// A severing window occasionally flaps instead of holding open —
		// same span, same selector, strictly harder.
		if op == exp.OpPartition && rng.Intn(4) == 0 {
			period := []float64{40, 60}[rng.Intn(2)]
			duty := []float64{0.3, 0.5}[rng.Intn(2)]
			flap := exp.Flap(op, sel, from, to, period, duty, 0)
			fl.Events = append(fl.Events, flap.Events...)
			continue
		}

		fl.Events = append(fl.Events, exp.FaultEvent{
			AtSec: from, Op: op, Select: sel, Dir: dir, Factor: factor,
		})
		fl.Events = append(fl.Events, exp.FaultEvent{
			AtSec: to, Op: restore, Select: sel,
		})
	}

	// Chronological order reads better in pins and logs; the run engine
	// schedules by time either way.
	sort.SliceStable(fl.Events, func(i, j int) bool {
		return fl.Events[i].AtSec < fl.Events[j].AtSec
	})
	if len(fl.Events) == 0 {
		// Every draw collided; fall back to the simplest interesting
		// schedule rather than burning a trial on a no-op.
		fl.Events = []exp.FaultEvent{
			{AtSec: 120, Op: exp.OpGrayFail, Select: exp.Member(0, 0)},
			{AtSec: 240, Op: exp.OpGrayRestore, Select: exp.Member(0, 0)},
		}
	}
	return sampledSchedule{fl: fl}
}
