package search

import (
	"reflect"
	"testing"

	"robuststore/internal/exp"
)

// TestShrinkGoldenMinimal is the shrinker's golden test: a hand-built
// failing schedule with three irrelevant events and two causal ones must
// shrink to exactly the causal pair, deterministically.
func TestShrinkGoldenMinimal(t *testing.T) {
	causeA := exp.FaultEvent{AtSec: 240, Op: exp.OpPartition, Select: exp.Leader(0)}
	causeB := exp.FaultEvent{AtSec: 300, Op: exp.OpHeal, Select: exp.Leader(0)}
	schedule := []exp.FaultEvent{
		{AtSec: 90, Op: exp.OpDiskSlow, Select: exp.Member(0, 1), Factor: 4},
		{AtSec: 150, Op: exp.OpDiskRestore, Select: exp.Member(0, 1)},
		causeA,
		{AtSec: 260, Op: exp.OpLinkLoss, Select: exp.Member(0, 1), Factor: 0.2},
		causeB,
	}
	// "Fails" iff both causal events survive (shifted copies count: the
	// time-tightening phase moves AtSec but never Op/Select).
	failing := func(evs []exp.FaultEvent) bool {
		var a, b bool
		for _, ev := range evs {
			if ev.Op == causeA.Op && ev.Select == causeA.Select {
				a = true
			}
			if ev.Op == causeB.Op && ev.Select == causeB.Select {
				b = true
			}
		}
		return a && b
	}

	min1, probes := Shrink(schedule, failing, 100, nil)
	if probes == 0 {
		t.Fatalf("shrinker made no probes")
	}
	if len(min1) != 2 {
		t.Fatalf("shrunk to %d events, want exactly the 2 causal ones: %+v", len(min1), min1)
	}
	if min1[0].Op != exp.OpPartition || min1[1].Op != exp.OpHeal {
		t.Fatalf("wrong events survived: %+v", min1)
	}
	// Time tightening slid the pair to the sample window floor,
	// preserving relative order.
	if min1[0].AtSec < sampleStartSec-1 || min1[0].AtSec > 240 {
		t.Fatalf("first event at t=%.0f, want within [%.0f, 240]", min1[0].AtSec, sampleStartSec)
	}
	if min1[1].AtSec <= min1[0].AtSec {
		t.Fatalf("shrink broke event order: %+v", min1)
	}

	// Deterministic across runs.
	min2, _ := Shrink(schedule, failing, 100, nil)
	if !reflect.DeepEqual(min1, min2) {
		t.Fatalf("shrink not deterministic:\n  first  %+v\n  second %+v", min1, min2)
	}
}

// TestShrinkSingleEvent: a one-event failing schedule survives untouched.
func TestShrinkSingleEvent(t *testing.T) {
	schedule := []exp.FaultEvent{{AtSec: 60, Op: exp.OpCrash, Select: exp.Member(0, 0)}}
	min, _ := Shrink(schedule, func(evs []exp.FaultEvent) bool { return len(evs) >= 1 }, 10, nil)
	if len(min) != 1 || min[0].Op != exp.OpCrash {
		t.Fatalf("single-event schedule mangled: %+v", min)
	}
}

// TestShrinkBudget: the shrinker never exceeds its probe budget.
func TestShrinkBudget(t *testing.T) {
	var schedule []exp.FaultEvent
	for i := 0; i < 16; i++ {
		schedule = append(schedule, exp.FaultEvent{AtSec: float64(60 + 10*i), Op: exp.OpGrayFail, Select: exp.Member(0, i%2)})
	}
	calls := 0
	_, probes := Shrink(schedule, func(evs []exp.FaultEvent) bool {
		calls++
		return true
	}, 5, nil)
	if probes > 5 || calls > 5 {
		t.Fatalf("budget 5 exceeded: probes=%d calls=%d", probes, calls)
	}
}
