package search

// The shrinker: greedy deterministic delta debugging over a failing
// schedule. First minimize the event set (drop halves, then quarters,
// down to single events — keeping any candidate that still fails), then
// tighten the time window (slide the whole schedule early, then compress
// the gaps between consecutive event times). Every probe is one full run,
// so the caller bounds the probe budget; determinism comes from fixed
// left-to-right candidate order and a deterministic failing predicate.

import (
	"fmt"
	"sort"

	"robuststore/internal/exp"
)

// Shrink minimizes events against the failing predicate, which must be
// deterministic and true for the input. Returns the minimized schedule
// and the number of predicate probes spent (each probe is typically a
// full simulation run; at most budget are made).
func Shrink(events []exp.FaultEvent, failing func([]exp.FaultEvent) bool,
	budget int, logf func(format string, args ...any)) ([]exp.FaultEvent, int) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	probes := 0
	try := func(cand []exp.FaultEvent) bool {
		if probes >= budget || len(cand) == 0 {
			return false
		}
		probes++
		return failing(cand)
	}
	cur := append([]exp.FaultEvent(nil), events...)

	// Phase 1: event minimization. Chunked removal, halving the chunk
	// size; restart the sweep on every successful removal so interactions
	// between dropped chunks are re-examined.
	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for i := 0; i+chunk <= len(cur) && len(cur) > chunk; i += chunk {
			cand := append(append([]exp.FaultEvent(nil), cur[:i]...), cur[i+chunk:]...)
			if try(cand) {
				logf("shrink: %d → %d events", len(cur), len(cand))
				cur = cand
				removed = true
				i -= chunk // the next chunk slid into this slot
			}
		}
		if !removed {
			chunk /= 2
		} else if chunk > len(cur)/2 {
			chunk = len(cur) / 2
		}
	}

	// Phase 2: time tightening. Slide the whole schedule so its first
	// event fires at sampleStartSec (preserving spacing), then compress
	// each gap between consecutive distinct times to 10 s.
	first := cur[0].AtSec
	for _, ev := range cur {
		if ev.AtSec < first {
			first = ev.AtSec
		}
	}
	if delta := first - sampleStartSec; delta > 0 {
		cand := shiftAfter(cur, -1, -delta)
		if try(cand) {
			logf("shrink: schedule slid %.0f s earlier", delta)
			cur = cand
		}
	}
	times := distinctTimes(cur)
	for j := 0; j+1 < len(times); j++ {
		times = distinctTimes(cur)
		if j+1 >= len(times) {
			break
		}
		if gap := times[j+1] - times[j]; gap > 10 {
			cand := shiftAfter(cur, times[j], -(gap - 10))
			if try(cand) {
				logf("shrink: gap at t=%.0f s compressed %.0f → 10 s", times[j], gap)
				cur = cand
			}
		}
	}
	return cur, probes
}

// shiftAfter moves every event with AtSec strictly greater than after by
// delta (after < 0 shifts everything).
func shiftAfter(events []exp.FaultEvent, after, delta float64) []exp.FaultEvent {
	out := append([]exp.FaultEvent(nil), events...)
	for i := range out {
		if out[i].AtSec > after {
			out[i].AtSec += delta
		}
	}
	return out
}

// distinctTimes returns the sorted distinct event times.
func distinctTimes(events []exp.FaultEvent) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, ev := range events {
		if !seen[ev.AtSec] {
			seen[ev.AtSec] = true
			out = append(out, ev.AtSec)
		}
	}
	sort.Float64s(out)
	return out
}

// shrinkRatio renders a before→after summary for the report.
func shrinkRatio(before, after int) string {
	return fmt.Sprintf("%d → %d events", before, after)
}
