// Package search drives the faultload DSL generatively: it samples
// random fault schedules from the grammar (weighted op mix, random
// selectors, times and factors), runs each against the simulated
// deployment, judges the result with failure oracles (fence violations,
// availability floor, write-wedge), delta-debugs every failing schedule
// to a minimal event set and time window, and pins the survivors as
// reproducible JSON counterexamples replayed by a regression test.
//
// The entry point is Hunt; cmd/experiment surfaces it as -run hunt.
package search

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"robuststore/internal/exp"
	"robuststore/internal/rbe"
)

// Config parameterizes one hunt.
type Config struct {
	Shards   int           // default 1
	Servers  int           // default 3
	StateMB  int           // default 300
	Browsers int           // default 300
	Measure  time.Duration // default 120 s (shortened; event times scale)
	Profile  rbe.Profile   // default Shopping

	// TxnRate drives cross-shard transactions (2PC) beside the RBE load
	// at this many per second of measured time, arming the atomicity
	// oracle. Defaults to 1/s on sharded deployments (a hunt on 2+
	// groups should always be probing the transaction window) and 0 on
	// single-group ones, where no transaction can cross anything.
	TxnRate float64

	Seed         uint64 // sampler base seed; trial t draws its own stream
	Budget       int    // schedules to try; default 16
	ShrinkBudget int    // max probe runs per shrink; default 24

	PinDir string      // survivors written here; empty disables pinning
	Log    io.Writer   // per-trial progress; nil for silent
	Stop   func() bool // optional wall-clock cutoff, checked between runs
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Servers == 0 {
		c.Servers = 3
	}
	if c.StateMB == 0 {
		c.StateMB = 300
	}
	if c.Browsers == 0 {
		c.Browsers = 300
	}
	if c.Measure == 0 {
		c.Measure = 120 * time.Second
	}
	if c.Profile == 0 {
		c.Profile = rbe.Shopping
	}
	if c.Budget == 0 {
		c.Budget = 16
	}
	if c.TxnRate == 0 && c.Shards > 1 {
		c.TxnRate = 1
	}
	if c.ShrinkBudget == 0 {
		c.ShrinkBudget = 24
	}
	return c
}

// runConfig binds a schedule to the hunt's deployment.
func (c Config) runConfig(fl exp.Faultload, seed uint64) exp.RunConfig {
	return exp.RunConfig{
		Profile:   c.Profile,
		Servers:   c.Servers,
		Shards:    c.Shards,
		StateMB:   c.StateMB,
		Faultload: &fl,
		Browsers:  c.Browsers,
		Measure:   c.Measure,
		Seed:      seed,
		TxnRate:   c.TxnRate,
	}
}

// Finding is one failing schedule: found, shrunk, and (when PinDir is
// set) pinned.
type Finding struct {
	Case        PinnedCase
	Path        string // pinned file; empty when pinning is disabled
	EventsFound int    // schedule size as sampled
	EventsMin   int    // after shrinking
	ShrinkRuns  int    // probe runs the shrink spent
}

// Report summarizes one hunt.
type Report struct {
	Tried    int // schedules sampled and run
	Runs     int // total runs, shrink probes and baselines included
	Findings []Finding
}

// Hunt samples Budget random schedules, judges each with the oracles,
// and shrinks + pins every failure. Runs bypass the exp memo cache (the
// schedules are one-shot); failure-free baselines go through it, so the
// handful of distinct run seeds share baselines.
func Hunt(cfg Config) Report {
	cfg = cfg.withDefaults()
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	var rep Report
	baselined := map[uint64]bool{}
	for t := 0; t < cfg.Budget; t++ {
		if cfg.Stop != nil && cfg.Stop() {
			logf("hunt: wall-clock budget exhausted after %d schedule(s)", t)
			break
		}
		rng := rand.New(rand.NewSource(int64(cfg.Seed)*1_000_003 + int64(t)))
		sc := sampleSchedule(rng, cfg.Shards, cfg.Servers)
		// Rotate over a few run seeds: schedule diversity does most of
		// the exploring, and reusing seeds keeps the baseline runs (one
		// per seed, memoized) from dominating the budget.
		runSeed := cfg.Seed + uint64(t%4)

		base := exp.Run(cfg.runConfig(exp.Faultload{Name: "none"}, runSeed))
		if !baselined[runSeed] {
			baselined[runSeed] = true
			rep.Runs++ // memoized: one real run per distinct seed
		}

		r := exp.RunUncached(cfg.runConfig(sc.fl, runSeed))
		rep.Runs++
		rep.Tried++
		v := Evaluate(r, base.AWIPS, lastFaultRunSec(sc.fl.Events, cfg.Measure))
		if !v.Failed() {
			logf("schedule %d/%d %s (%d events, seed %d): clean",
				t+1, cfg.Budget, sc.fl.Name, len(sc.fl.Events), runSeed)
			continue
		}
		logf("schedule %d/%d %s (%d events, seed %d): FAILED — %s",
			t+1, cfg.Budget, sc.fl.Name, len(sc.fl.Events), runSeed,
			strings.Join(v.Violations, "; "))

		failing := func(evs []exp.FaultEvent) bool {
			fl := exp.Faultload{Name: sc.fl.Name, Events: evs}
			rr := exp.RunUncached(cfg.runConfig(fl, runSeed))
			rep.Runs++
			return Evaluate(rr, base.AWIPS, lastFaultRunSec(evs, cfg.Measure)).Failed()
		}
		minEvents, probes := Shrink(sc.fl.Events, failing, cfg.ShrinkBudget, logf)
		logf("shrunk %s: %s in %d probe run(s)",
			sc.fl.Name, shrinkRatio(len(sc.fl.Events), len(minEvents)), probes)

		pc := PinnedCase{
			Name:       sc.fl.Name,
			Violations: v.Violations,
			Seed:       runSeed,
			Profile:    cfg.Profile.String(),
			Servers:    cfg.Servers,
			Shards:     cfg.Shards,
			StateMB:    cfg.StateMB,
			Browsers:   cfg.Browsers,
			MeasureSec: int(cfg.Measure.Seconds()),
			TxnRate:    cfg.TxnRate,
			Events:     pinEvents(minEvents),
		}
		f := Finding{
			Case:        pc,
			EventsFound: len(sc.fl.Events),
			EventsMin:   len(minEvents),
			ShrinkRuns:  probes,
		}
		if cfg.PinDir != "" {
			path, err := SavePin(cfg.PinDir, pc)
			if err != nil {
				logf("pin %s: %v", sc.fl.Name, err)
			} else {
				logf("pinned %s → %s", sc.fl.Name, path)
				f.Path = path
			}
		}
		rep.Findings = append(rep.Findings, f)
	}
	return rep
}

// PrintReport renders the hunt summary in the metrics style of the
// experiment tables.
func PrintReport(w io.Writer, rep Report) {
	fmt.Fprintf(w, "Fault search — %d schedule(s) tried, %d run(s) total, %d failure(s)\n",
		rep.Tried, rep.Runs, len(rep.Findings))
	if len(rep.Findings) == 0 {
		fmt.Fprintln(w, "  no oracle violations found")
		return
	}
	for _, f := range rep.Findings {
		fmt.Fprintf(w, "  %s (seed %d): shrunk %s in %d probe run(s)\n",
			f.Case.Name, f.Case.Seed, shrinkRatio(f.EventsFound, f.EventsMin), f.ShrinkRuns)
		for _, viol := range f.Case.Violations {
			fmt.Fprintf(w, "    %s\n", viol)
		}
		for _, ev := range f.Case.Events {
			line := fmt.Sprintf("    t=%.0f s  %s %s", ev.AtSec, ev.Op, ev.Scope)
			if ev.Scope == "member" || ev.Scope == "reader" {
				line += fmt.Sprintf(" %d.%d", ev.Group, ev.Slot)
			} else {
				line += fmt.Sprintf(" %d", ev.Group)
			}
			if ev.Factor != 0 {
				line += fmt.Sprintf(" ×%g", ev.Factor)
			}
			if ev.Dir != "" {
				line += " " + ev.Dir
			}
			fmt.Fprintln(w, line)
		}
		if f.Path != "" {
			fmt.Fprintf(w, "    pinned: %s\n", f.Path)
		}
	}
}
