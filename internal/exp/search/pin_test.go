package search

import (
	"path/filepath"
	"reflect"
	"testing"

	"robuststore/internal/env"
	"robuststore/internal/exp"
)

// TestPinRoundTrip: a schedule survives serialize → save → load →
// reconstruct byte for byte, and saving is idempotent.
func TestPinRoundTrip(t *testing.T) {
	events := []exp.FaultEvent{
		{AtSec: 60, Op: exp.OpGrayFail, Select: exp.Leader(0), Factor: 20},
		{AtSec: 90, Op: exp.OpLinkDelay, Select: exp.Member(1, 1), Dir: env.LinkOutboundOnly, Factor: 50},
		{AtSec: 150, Op: exp.OpGrayRestore, Select: exp.Leader(0)},
		{AtSec: 180, Op: exp.OpLinkDelayRestore, Select: exp.Member(1, 1)},
	}
	pc := PinnedCase{
		Name:       "round-trip",
		Violations: []string{"write-wedge: synthetic"},
		Seed:       7,
		Profile:    "shopping",
		Servers:    3,
		Shards:     2,
		StateMB:    300,
		Browsers:   200,
		MeasureSec: 120,
		Events:     pinEvents(events),
	}

	dir := t.TempDir()
	path1, err := SavePin(dir, pc)
	if err != nil {
		t.Fatal(err)
	}
	path2, err := SavePin(dir, pc)
	if err != nil {
		t.Fatal(err)
	}
	if path1 != path2 {
		t.Fatalf("saving the same case twice produced %s and %s", path1, path2)
	}

	cases, paths, err := LoadPins(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 1 || filepath.Clean(paths[0]) != filepath.Clean(path1) {
		t.Fatalf("loaded %d case(s) from %v, want 1 at %s", len(cases), paths, path1)
	}
	if !reflect.DeepEqual(cases[0], pc) {
		t.Fatalf("round trip mangled the case:\n  saved  %+v\n  loaded %+v", pc, cases[0])
	}

	rc, err := cases[0].RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Faultload == nil || !reflect.DeepEqual(rc.Faultload.Events, events) {
		t.Fatalf("reconstructed events differ:\n  want %+v\n  got  %+v", events, rc.Faultload)
	}
	if rc.Servers != 3 || rc.Shards != 2 || rc.Seed != 7 || rc.Browsers != 200 {
		t.Fatalf("reconstructed config differs: %+v", rc)
	}
}

// TestLoadPinsMissingDir: an absent corpus is empty, not an error.
func TestLoadPinsMissingDir(t *testing.T) {
	cases, paths, err := LoadPins(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(cases) != 0 || len(paths) != 0 {
		t.Fatalf("missing dir: cases=%v paths=%v err=%v", cases, paths, err)
	}
}

// TestOpScopeNameTables: every op and scope round-trips through its
// serialized name (guards new enum values against silent truncation).
func TestOpScopeNameTables(t *testing.T) {
	for op := exp.OpCrash; op <= exp.OpLinkDelayRestore; op++ {
		got, ok := opByName[op.String()]
		if !ok || got != op {
			t.Errorf("op %d (%s) does not round-trip", op, op)
		}
	}
	for scope, name := range scopeNames {
		if scopeByName[name] != scope {
			t.Errorf("scope %v (%s) does not round-trip", scope, name)
		}
	}
}
