package search

// The failure oracles. The sampler only emits quorum-safe schedules —
// severing faults hit at most a minority of one group at a time and every
// window is restored before the run ends — so a run that trips any oracle
// is a bug in the system under test, not in the schedule:
//
//   - fence-violations: a fenced read served below its fence
//     (RunResult.FenceViolations) — a safety violation, full stop.
//   - availability-floor: whole-run availability under the floor despite
//     quorum never being lost — detection or failover wedged hard.
//   - write-wedge: throughput never sustains a fraction of the
//     failure-free baseline after the last fault is restored — the
//     liveness timeout, phrased on the per-second series so a late wedge
//     is not washed out by a healthy start.
//   - txn-atomicity: a cross-shard transaction lost, duplicated or
//     half-applied (RunResult.Txn, armed when the hunt drives
//     transactions) — like a fence violation, a safety breach no fault
//     schedule can excuse.

import (
	"fmt"
	"time"

	"robuststore/internal/exp"
)

const (
	// availFloor is the minimum whole-run availability a quorum-safe
	// schedule must leave standing.
	availFloor = 0.30

	// wedgeFrac of the failure-free baseline AWIPS must be sustained
	// again after the last fault restores.
	wedgeFrac = 0.5

	// wedgeSlackSec (run-axis seconds) after the last restore before
	// recovery is demanded: detection, re-election and reabsorption all
	// take real time.
	wedgeSlackSec = 20.0

	// crashRecoverSec (run-axis seconds) allowed for a crashed replica's
	// autonomous restart and state replay. Recovery replays real log and
	// checkpoint bytes, so unlike event times it does not scale with a
	// shortened measurement interval.
	crashRecoverSec = 90.0
)

// Verdict is the oracles' joint judgement of one run.
type Verdict struct {
	Violations []string
}

// Failed reports whether any oracle tripped.
func (v Verdict) Failed() bool { return len(v.Violations) > 0 }

// runSecOf maps a paper-axis event second to the run's x-axis under a
// shortened measurement interval (the mirror of run.go's at(): ramp-up is
// 30 s and event spacing scales by measure/540 s).
func runSecOf(atSec float64, measure time.Duration) float64 {
	return 30 + measure.Seconds()/540*(atSec-30)
}

// lastFaultRunSec returns the run-axis second after which the schedule
// leaves the system fault-free, or -1 when it never does (a window-opening
// event without a matching restore stays open to run end, so there is no
// post-fault period to judge and the wedge oracle must stand down).
func lastFaultRunSec(events []exp.FaultEvent, measure time.Duration) float64 {
	last := 0.0
	for i, ev := range events {
		switch ev.Op {
		case exp.OpCrash:
			if s := runSecOf(ev.AtSec, measure) + crashRecoverSec; s > last {
				last = s
			}
		case exp.OpCrashNoRestart:
			// Only a later OpRecover on the same selector brings the
			// victim back; without one the outage is permanent.
			recovered := false
			for _, ev2 := range events[i+1:] {
				if ev2.Op == exp.OpRecover && ev2.Select == ev.Select && ev2.AtSec >= ev.AtSec {
					recovered = true
					if s := runSecOf(ev2.AtSec, measure) + crashRecoverSec; s > last {
						last = s
					}
					break
				}
			}
			if !recovered {
				return -1
			}
		case exp.OpRecover, exp.OpHeal, exp.OpDiskRestore, exp.OpLinkRestore,
			exp.OpGroupReconnect, exp.OpGrayRestore, exp.OpLinkDelayRestore:
			if s := runSecOf(ev.AtSec, measure); s > last {
				last = s
			}
		default:
			// A window-opening op: find its restore (same selector, later
			// or simultaneous). The shrinker drops events freely, so an
			// orphaned opener is expected — it just disables the wedge
			// oracle for the schedule.
			restore, ok := restoreOp(ev.Op)
			if !ok {
				continue
			}
			closed := false
			for _, ev2 := range events[i+1:] {
				if ev2.Op == restore && ev2.Select == ev.Select && ev2.AtSec >= ev.AtSec {
					closed = true
					break
				}
			}
			if !closed {
				return -1
			}
		}
	}
	return last
}

// restoreOp maps a window-opening op to its closing op.
func restoreOp(op exp.FaultOp) (exp.FaultOp, bool) {
	switch op {
	case exp.OpPartition:
		return exp.OpHeal, true
	case exp.OpDiskSlow:
		return exp.OpDiskRestore, true
	case exp.OpLinkLoss:
		return exp.OpLinkRestore, true
	case exp.OpGroupIsolate:
		return exp.OpGroupReconnect, true
	case exp.OpGrayFail:
		return exp.OpGrayRestore, true
	case exp.OpLinkDelay:
		return exp.OpLinkDelayRestore, true
	default:
		return 0, false
	}
}

// Evaluate applies the oracles to one finished run. baselineAWIPS is the
// failure-free AWIPS of the same deployment and seed; lastFaultSec is the
// run-axis second the schedule's last fault cleared (from
// lastFaultRunSec; < 0 disables the wedge oracle).
func Evaluate(r exp.RunResult, baselineAWIPS, lastFaultSec float64) Verdict {
	var v Verdict
	if r.FenceViolations != 0 {
		v.Violations = append(v.Violations,
			fmt.Sprintf("fence-violations: %d fenced reads served below their fence", r.FenceViolations))
	}
	if n := r.Txn.Violations(); n > 0 {
		v.Violations = append(v.Violations,
			fmt.Sprintf("txn-atomicity: %d cross-shard transaction(s) lost (%d), duplicated (%d) or half-applied (%d)",
				n, r.Txn.Lost, r.Txn.Duplicated, r.Txn.HalfApplied))
	}
	if r.Availability < availFloor {
		v.Violations = append(v.Violations,
			fmt.Sprintf("availability-floor: %.3f < %.2f under a quorum-safe schedule",
				r.Availability, availFloor))
	}
	if target := wedgeFrac * baselineAWIPS; target > 0 && lastFaultSec >= 0 {
		floor := int(lastFaultSec + wedgeSlackSec)
		if floor+2 < len(r.Series) {
			if at := exp.SeriesRecoversAt(r.Series, floor, target); at < 0 {
				v.Violations = append(v.Violations,
					fmt.Sprintf("write-wedge: throughput never sustains %.0f WIPS (%.0f%% of failure-free) after the last fault clears at t=%.0f s",
						target, 100*wedgeFrac, lastFaultSec))
			}
		}
	}
	return v
}
