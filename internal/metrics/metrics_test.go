package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func t0() time.Time { return time.Unix(0, 0).UTC() }

func TestRecorderBuckets(t *testing.T) {
	r := NewRecorder(t0(), time.Second)
	r.Record(t0().Add(500*time.Millisecond), 10*time.Millisecond, false)
	r.Record(t0().Add(700*time.Millisecond), 30*time.Millisecond, false)
	r.Record(t0().Add(1500*time.Millisecond), 20*time.Millisecond, false)
	r.Record(t0().Add(2500*time.Millisecond), 0, true) // error

	series := r.Series(0, 3)
	want := []float64{2, 1, 0}
	for i := range want {
		if series[i] != want[i] {
			t.Errorf("series[%d] = %v, want %v", i, series[i], want[i])
		}
	}
	if r.Total() != 4 || r.TotalErrors() != 1 {
		t.Errorf("total=%d errors=%d", r.Total(), r.TotalErrors())
	}
	if got := r.MeanLatency(0, 1); got != 0.02 {
		t.Errorf("mean latency bucket 0 = %v, want 0.02", got)
	}
	if got := r.AWIPS(0, 2); got != 1.5 {
		t.Errorf("AWIPS = %v, want 1.5", got)
	}
}

func TestRecorderIgnoresPreStart(t *testing.T) {
	r := NewRecorder(t0().Add(time.Minute), time.Second)
	r.Record(t0(), time.Millisecond, false) // before the origin
	if r.Total() != 0 {
		t.Errorf("pre-start sample counted")
	}
}

func TestAccuracy(t *testing.T) {
	r := NewRecorder(t0(), time.Second)
	if r.Accuracy() != 100 {
		t.Errorf("empty accuracy = %v", r.Accuracy())
	}
	for i := 0; i < 99999; i++ {
		r.Record(t0().Add(time.Duration(i)*time.Millisecond), time.Millisecond, false)
	}
	r.Record(t0(), time.Millisecond, true)
	// 1 error in 100000: the paper's 99.999 %.
	if got := r.Accuracy(); got < 99.9985 || got > 99.9995 {
		t.Errorf("accuracy = %v, want 99.999", got)
	}
}

func TestPerformabilityWindows(t *testing.T) {
	r := NewRecorder(t0(), time.Second)
	// 10 WIPS for 10 s, then 5 WIPS for 5 s (the "recovery"), then 10
	// again.
	emit := func(sec int, n int) {
		for i := 0; i < n; i++ {
			r.Record(t0().Add(time.Duration(sec)*time.Second+time.Duration(i)*time.Millisecond),
				time.Millisecond, false)
		}
	}
	for s := 0; s < 10; s++ {
		emit(s, 10)
	}
	for s := 10; s < 15; s++ {
		emit(s, 5)
	}
	for s := 15; s < 20; s++ {
		emit(s, 10)
	}
	p := r.ComputePerformability(
		[]Window{{From: 0, To: 10}, {From: 15, To: 20}},
		Window{From: 10, To: 15},
	)
	if p.FailureFreeAWIPS != 10 {
		t.Errorf("ff AWIPS = %v", p.FailureFreeAWIPS)
	}
	if p.RecoveryAWIPS != 5 {
		t.Errorf("recovery AWIPS = %v", p.RecoveryAWIPS)
	}
	if p.PV != -50 {
		t.Errorf("PV = %v, want -50", p.PV)
	}
	if p.FailureFreeCV != 0 {
		t.Errorf("ff CV = %v, want 0", p.FailureFreeCV)
	}
}

func TestAvailabilityAndAutonomy(t *testing.T) {
	if got := Availability(0, 10*time.Minute); got != 1 {
		t.Errorf("availability with no downtime = %v", got)
	}
	if got := Availability(time.Minute, 10*time.Minute); got != 0.9 {
		t.Errorf("availability = %v, want 0.9", got)
	}
	if got := Availability(20*time.Minute, 10*time.Minute); got != 0 {
		t.Errorf("availability clamps at 0, got %v", got)
	}
	if got := ComputeAutonomy(0, 2); got != 0 {
		t.Errorf("fully autonomous = %v", got)
	}
	if got := ComputeAutonomy(1, 2); got != 0.5 {
		t.Errorf("autonomy = %v, want 0.5", got)
	}
	if got := ComputeAutonomy(3, 0); got != 0 {
		t.Errorf("no faults autonomy = %v", got)
	}
}

// TestRecorderConservation: every recorded sample lands in exactly one
// bucket; totals always match.
func TestRecorderConservation(t *testing.T) {
	err := quick.Check(func(offsets []uint16, errs []bool) bool {
		r := NewRecorder(t0(), time.Second)
		n := len(offsets)
		for i, off := range offsets {
			isErr := i < len(errs) && errs[i]
			r.Record(t0().Add(time.Duration(off)*time.Millisecond*10),
				time.Millisecond, isErr)
		}
		if r.Total() != n {
			return false
		}
		var inBuckets float64
		for _, v := range r.Series(0, 700) {
			inBuckets += v
		}
		return int(inBuckets)+r.TotalErrors() == n
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowLen(t *testing.T) {
	if (Window{From: 3, To: 10}).Len() != 7 {
		t.Error("window length")
	}
}

func TestShardedRecorderRoutesByGroup(t *testing.T) {
	r := NewShardedRecorder(t0(), time.Second, 2, func(client int64) int {
		return int(client % 2)
	})
	r.RecordClient(1, t0().Add(500*time.Millisecond), time.Millisecond, false)
	r.RecordClient(2, t0().Add(500*time.Millisecond), time.Millisecond, false)
	r.RecordClient(3, t0().Add(500*time.Millisecond), time.Millisecond, true)

	if r.Aggregate().Total() != 3 || r.Aggregate().TotalErrors() != 1 {
		t.Errorf("aggregate total=%d errors=%d", r.Aggregate().Total(), r.Aggregate().TotalErrors())
	}
	if r.Group(0).Total() != 1 || r.Group(0).TotalErrors() != 0 {
		t.Errorf("group 0 total=%d", r.Group(0).Total())
	}
	if r.Group(1).Total() != 2 || r.Group(1).TotalErrors() != 1 {
		t.Errorf("group 1 total=%d errors=%d", r.Group(1).Total(), r.Group(1).TotalErrors())
	}
	if r.Groups() != 2 {
		t.Errorf("groups = %d", r.Groups())
	}
}

func TestShardedRecorderNilGroupOf(t *testing.T) {
	r := NewShardedRecorder(t0(), time.Second, 0, nil)
	r.RecordClient(99, t0(), time.Millisecond, false)
	if r.Groups() != 1 || r.Group(0).Total() != 1 {
		t.Errorf("nil groupOf must degenerate to one group: groups=%d total=%d",
			r.Groups(), r.Group(0).Total())
	}
}

// TestPlainRecorderSatisfiesClientInterface: the plain Recorder keeps
// working where a client-tagged recorder is expected.
func TestPlainRecorderRecordClient(t *testing.T) {
	r := NewRecorder(t0(), time.Second)
	r.RecordClient(7, t0().Add(time.Second), 2*time.Millisecond, false)
	if r.Total() != 1 {
		t.Errorf("total = %d", r.Total())
	}
}

func TestAggregateGroups(t *testing.T) {
	groups := []GroupReport{
		{Group: 0, AWIPS: 100, Downtime: 30 * time.Second, Crashes: 3, Recoveries: 3, MeanRecoverySec: 20},
		{Group: 1, AWIPS: 110, Downtime: 0, Crashes: 1, Recoveries: 1, MeanRecoverySec: 40},
	}
	agg := AggregateGroups(groups, 5*time.Minute)
	if agg.Downtime != 30*time.Second {
		t.Errorf("aggregate downtime = %v, want the worst group's", agg.Downtime)
	}
	if agg.Availability != 0.9 {
		t.Errorf("aggregate availability = %v, want 0.9", agg.Availability)
	}
	if agg.Crashes != 4 || agg.Recoveries != 4 {
		t.Errorf("crashes/recoveries = %d/%d", agg.Crashes, agg.Recoveries)
	}
	if agg.MeanRecoverySec != 25 {
		t.Errorf("mean recovery = %v, want 25 ((3·20+1·40)/4)", agg.MeanRecoverySec)
	}
	if agg.AWIPS != 210 {
		t.Errorf("aggregate AWIPS = %v, want the sum", agg.AWIPS)
	}
}

func TestAggregateGroupsFaultWindows(t *testing.T) {
	groups := []GroupReport{
		{Group: 0, Partitions: 1, PartitionSec: 30, Degradations: 1, DegradedSec: 50},
		{Group: 1, Partitions: 2, PartitionSec: 90},
	}
	agg := AggregateGroups(groups, 5*time.Minute)
	if agg.Partitions != 3 || agg.Degradations != 1 {
		t.Errorf("window counts = %d/%d, want 3/1", agg.Partitions, agg.Degradations)
	}
	// Windows of different groups overlap the same wall clock, so the
	// aggregate carries the worst group's exposure, like downtime.
	if agg.PartitionSec != 90 || agg.DegradedSec != 50 {
		t.Errorf("window seconds = %v/%v, want worst-group 90/50", agg.PartitionSec, agg.DegradedSec)
	}
}

// TestWeightedGroupAccuracyFenceCleanEquivalence: with both read-path
// counters at zero, the weighted accuracy is bit-for-bit the plain
// error-ratio accuracy — fence-clean runs must not move by even an ULP
// when the weighting is introduced.
func TestWeightedGroupAccuracyFenceCleanEquivalence(t *testing.T) {
	for total := 0; total <= 2000; total += 7 {
		for _, errs := range []int{0, 1, total / 3, total} {
			if errs > total {
				continue
			}
			plain := 100.0
			if total > 0 {
				plain = 100 * float64(total-errs) / float64(total)
			}
			if got := WeightedGroupAccuracy(total, errs, 0, 0); got != plain {
				t.Fatalf("WeightedGroupAccuracy(%d, %d, 0, 0) = %v, want plain %v",
					total, errs, got, plain)
			}
		}
	}
}

// TestWeightedGroupAccuracyWeights: fence waits cost a tenth of an error,
// stale serves half, and the weighted mass clamps at the request count.
func TestWeightedGroupAccuracyWeights(t *testing.T) {
	if got := WeightedGroupAccuracy(1000, 0, 100, 0); got != 99 {
		t.Errorf("100 fence waits over 1000 requests = %v, want 99", got)
	}
	if got := WeightedGroupAccuracy(1000, 0, 0, 100); got != 95 {
		t.Errorf("100 stale serves over 1000 requests = %v, want 95", got)
	}
	if got := WeightedGroupAccuracy(10, 5, 1000, 1000); got != 0 {
		t.Errorf("overweighted mass should clamp to 0%%, got %v", got)
	}
	if got := WeightedGroupAccuracy(0, 0, 50, 50); got != 100 {
		t.Errorf("no requests is 100%% accurate, got %v", got)
	}
}
