// Package metrics implements the measurement side of the paper's
// dependability benchmark: WIPS time series (web interactions per second),
// WIRT (web interaction response time) and the four dependability measures
// of §5.1 — availability, performability, accuracy and autonomy.
package metrics

import (
	"time"

	"robuststore/internal/stats"
)

// Recorder accumulates interaction completions into one-second buckets.
// It is not safe for concurrent use; in the simulator all completions are
// recorded from the single event loop, and the live runtime wraps it in a
// mutex.
type Recorder struct {
	bucket     time.Duration // width of a WIPS bucket
	start      time.Time     // experiment origin (bucket 0)
	wips       []int         // completed interactions per bucket
	errs       []int         // errored interactions per bucket
	latencySum []float64     // summed latency (seconds) per bucket
	total      int
	totalErrs  int
}

// NewRecorder returns a Recorder whose bucket 0 starts at start. The paper
// plots WIPS histograms with one-second resolution.
func NewRecorder(start time.Time, bucket time.Duration) *Recorder {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Recorder{bucket: bucket, start: start}
}

func (r *Recorder) grow(idx int) {
	for len(r.wips) <= idx {
		r.wips = append(r.wips, 0)
		r.errs = append(r.errs, 0)
		r.latencySum = append(r.latencySum, 0)
	}
}

// Record registers an interaction that completed at time at with the given
// latency. Errored interactions count toward accuracy but not WIPS.
func (r *Recorder) Record(at time.Time, latency time.Duration, isErr bool) {
	idx := int(at.Sub(r.start) / r.bucket)
	if idx < 0 {
		return
	}
	r.grow(idx)
	r.total++
	if isErr {
		r.errs[idx]++
		r.totalErrs++
		return
	}
	r.wips[idx]++
	r.latencySum[idx] += latency.Seconds()
}

// RecordClient registers a completion for the given client. The plain
// Recorder ignores the client; ShardedRecorder uses it to also bucket the
// sample under the client's owning Paxos group.
func (r *Recorder) RecordClient(_ int64, at time.Time, latency time.Duration, isErr bool) {
	r.Record(at, latency, isErr)
}

// Total returns the total number of recorded interactions (including
// errors).
func (r *Recorder) Total() int { return r.total }

// TotalErrors returns the number of errored interactions.
func (r *Recorder) TotalErrors() int { return r.totalErrs }

// Series returns the per-bucket WIPS values for buckets in [from, to)
// (bucket indices, i.e. seconds from the experiment origin for one-second
// buckets).
func (r *Recorder) Series(from, to int) []float64 {
	if from < 0 {
		from = 0
	}
	out := make([]float64, 0, to-from)
	for i := from; i < to; i++ {
		if i < len(r.wips) {
			out = append(out, float64(r.wips[i]))
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// MeanLatency returns the mean latency over buckets [from, to), in
// seconds. Buckets with no completions contribute nothing.
func (r *Recorder) MeanLatency(from, to int) float64 {
	var sum float64
	var n int
	for i := from; i < to && i < len(r.wips); i++ {
		if i < 0 {
			continue
		}
		sum += r.latencySum[i]
		n += r.wips[i]
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AWIPS returns the average WIPS over buckets [from, to).
func (r *Recorder) AWIPS(from, to int) float64 {
	return stats.Mean(r.Series(from, to))
}

// CV returns the coefficient of variation of the WIPS series over
// [from, to).
func (r *Recorder) CV(from, to int) float64 {
	return stats.CV(r.Series(from, to))
}

// Accuracy returns the fraction of requests completed without error, as a
// percentage (the paper reports e.g. 99.999). An experiment with no
// requests is 100 % accurate.
func (r *Recorder) Accuracy() float64 {
	if r.total == 0 {
		return 100
	}
	return 100 * float64(r.total-r.totalErrs) / float64(r.total)
}

// WeightedGroupAccuracy folds read-path staleness into a group's accuracy
// instead of reporting it beside it: a fence wait cost the client bounded
// extra latency (≈ a tenth of an error), a TooStale fallback cost a full
// re-dispatch to the voters (≈ half an error). The weighted error mass is
// clamped to the request count, and a fence-clean run (both counters
// zero) reports bit-for-bit the unweighted Accuracy.
func WeightedGroupAccuracy(total, errs int, fenceWaits, staleServes int64) float64 {
	if total == 0 {
		return 100
	}
	weighted := float64(errs) + 0.1*float64(fenceWaits) + 0.5*float64(staleServes)
	if weighted > float64(total) {
		weighted = float64(total)
	}
	return 100 * (float64(total) - weighted) / float64(total)
}

// Window is a half-open interval of bucket indices.
type Window struct {
	From, To int
}

// Len returns the number of buckets in the window.
func (w Window) Len() int { return w.To - w.From }

// Performability compares average performance during failure-free windows
// against the recovery window, per the paper's definition (§5.1):
// PV = (recovery AWIPS - failure-free AWIPS) / failure-free AWIPS.
type Performability struct {
	FailureFreeAWIPS float64
	FailureFreeCV    float64
	RecoveryAWIPS    float64
	RecoveryCV       float64
	PV               float64 // percent, negative means performance dropped
}

// ComputePerformability evaluates the failure-free and recovery windows.
// Multiple failure-free windows are concatenated.
func (r *Recorder) ComputePerformability(failureFree []Window, recovery Window) Performability {
	var ff []float64
	for _, w := range failureFree {
		ff = append(ff, r.Series(w.From, w.To)...)
	}
	rec := r.Series(recovery.From, recovery.To)
	p := Performability{
		FailureFreeAWIPS: stats.Mean(ff),
		FailureFreeCV:    stats.CV(ff),
		RecoveryAWIPS:    stats.Mean(rec),
		RecoveryCV:       stats.CV(rec),
	}
	if p.FailureFreeAWIPS > 0 {
		p.PV = 100 * (p.RecoveryAWIPS - p.FailureFreeAWIPS) / p.FailureFreeAWIPS
	}
	return p
}

// ShardedRecorder fans interaction samples out to an aggregate Recorder
// plus one Recorder per Paxos group, routing by the deployment's
// client→group mapping. With one group it degenerates to a plain Recorder
// whose group 0 mirrors the aggregate.
type ShardedRecorder struct {
	agg     *Recorder
	groups  []*Recorder
	groupOf func(client int64) int
}

// NewShardedRecorder builds a recorder for a deployment of the given
// group count. groupOf maps a client ID to its owning group; nil routes
// everything to group 0.
func NewShardedRecorder(start time.Time, bucket time.Duration, groups int,
	groupOf func(client int64) int) *ShardedRecorder {
	if groups < 1 {
		groups = 1
	}
	r := &ShardedRecorder{
		agg:     NewRecorder(start, bucket),
		groupOf: groupOf,
	}
	for g := 0; g < groups; g++ {
		r.groups = append(r.groups, NewRecorder(start, bucket))
	}
	return r
}

// RecordClient registers a completion under both the aggregate and the
// client's group.
func (r *ShardedRecorder) RecordClient(client int64, at time.Time, latency time.Duration, isErr bool) {
	r.agg.Record(at, latency, isErr)
	g := 0
	if r.groupOf != nil {
		g = r.groupOf(client) % len(r.groups)
	}
	r.groups[g].Record(at, latency, isErr)
}

// Aggregate returns the all-groups recorder.
func (r *ShardedRecorder) Aggregate() *Recorder { return r.agg }

// Group returns group g's recorder.
func (r *ShardedRecorder) Group(g int) *Recorder { return r.groups[g] }

// Groups returns the group count.
func (r *ShardedRecorder) Groups() int { return len(r.groups) }

// GroupReport is one Paxos group's slice of a sharded dependability
// report: the throughput and accuracy its client slice observed, its
// cumulative outage time, and the recovery windows of its crashed
// members. The aggregate counterpart is the run-level report; at one
// group the two coincide.
type GroupReport struct {
	Group           int
	AWIPS           float64
	Accuracy        float64 // percent
	Downtime        time.Duration
	Availability    float64
	Crashes         int
	Recoveries      int
	MeanRecoverySec float64
	Perf            Performability

	// The correlated-fault windows, beside the crash/recovery ones: how
	// long this group spent (partly) network-partitioned, how long any of
	// its members ran on a degraded disk, and how long any of its links
	// were flaky (probabilistic loss). Open windows extend to run end.
	Partitions   int
	PartitionSec float64
	Degradations int
	DegradedSec  float64
	LossWindows  int
	LossSec      float64

	// Gray-failure windows (a member acking probes while erroring or
	// slow-walking requests) and link-delay windows (latency inflation
	// without loss) on this group.
	GrayWindows  int
	GraySec      float64
	DelayWindows int
	DelaySec     float64

	// Read-path staleness accounting (learner-backed follower reads):
	// reads the group's voters + readers served to completion, reads per
	// second of measured time, fenced reads that had to wait for the
	// serving replica to catch up, and fence waits that expired into a
	// TooStale fallback to the voters.
	ReadsServed int64
	ReadsPerSec float64
	FenceWaits  int64
	StaleServes int64

	// Cross-shard transaction accounting (2PC over the Paxos groups):
	// decision records this group's log committed or aborted, and the
	// cumulative time its prepared branches held conflict keys blocked
	// while waiting for an outcome.
	TxnCommits    int64
	TxnAborts     int64
	TxnBlockedSec float64
}

// AggregateGroups folds per-group reports into one deployment-wide row:
// availability is governed by the worst group (a whole-group outage is a
// full outage for that client slice), crash and recovery counts sum, and
// the mean recovery time averages over all recovered members. Accuracy is
// not derivable from the rows (they carry percentages, not counts) — the
// caller fills it from the run-level recorder.
func AggregateGroups(groups []GroupReport, total time.Duration) GroupReport {
	out := GroupReport{Group: -1, Availability: 1}
	var durSum float64
	var awipsSum float64
	for _, g := range groups {
		if g.Downtime > out.Downtime {
			out.Downtime = g.Downtime
		}
		out.Crashes += g.Crashes
		out.Recoveries += g.Recoveries
		durSum += g.MeanRecoverySec * float64(g.Recoveries)
		awipsSum += g.AWIPS
		out.Partitions += g.Partitions
		out.Degradations += g.Degradations
		if g.PartitionSec > out.PartitionSec {
			out.PartitionSec = g.PartitionSec
		}
		if g.DegradedSec > out.DegradedSec {
			out.DegradedSec = g.DegradedSec
		}
		out.LossWindows += g.LossWindows
		if g.LossSec > out.LossSec {
			out.LossSec = g.LossSec
		}
		out.GrayWindows += g.GrayWindows
		if g.GraySec > out.GraySec {
			out.GraySec = g.GraySec
		}
		out.DelayWindows += g.DelayWindows
		if g.DelaySec > out.DelaySec {
			out.DelaySec = g.DelaySec
		}
		out.ReadsServed += g.ReadsServed
		out.ReadsPerSec += g.ReadsPerSec
		out.FenceWaits += g.FenceWaits
		out.StaleServes += g.StaleServes
		out.TxnCommits += g.TxnCommits
		out.TxnAborts += g.TxnAborts
		out.TxnBlockedSec += g.TxnBlockedSec
	}
	out.AWIPS = awipsSum
	out.Availability = Availability(out.Downtime, total)
	if out.Recoveries > 0 {
		out.MeanRecoverySec = durSum / float64(out.Recoveries)
	}
	return out
}

// FaultWindow is one non-crash fault-injection window on the run's
// x-axis: the interval one group spent network-partitioned or running on
// a degraded disk. An event hitting several groups emits one window per
// group, so per-group reports aggregate without cross-referencing.
type FaultWindow struct {
	Kind    string  // "partition" | "slowdisk" | "linkloss" | "grayfail" | "linkdelay"
	Group   int     // affected group
	Dir     string  // blocked direction for partitions ("both"/"outbound"/"inbound")
	Factor  float64 // degradation factor (disk/delay multiplier, loss/gray rate)
	FromSec float64 // window open, seconds from run start
	ToSec   float64 // window close; < 0 when never healed (open at run end)
}

// MigrationReport carries a live rebalance's measures alongside the
// paper's dependability metrics: when the migration window opened and
// closed on the run's x-axis, how much of the hash space moved, and which
// group joined. The window is the only client-visible impact interval —
// during it, writes of moving keys are delayed (never failed), so it is
// reported next to availability rather than folded into downtime.
type MigrationReport struct {
	Happened    bool
	NewGroup    int
	MovedSlices int
	TotalSlices int
	StartSec    float64 // window open (freeze), seconds from run start
	CutoverSec  float64 // window close (new epoch published)
	WindowSec   float64 // CutoverSec - StartSec
}

// Dependability aggregates the four measures of §5.1 for one experiment
// run.
type Dependability struct {
	Availability  float64 // fraction of the run the service was operational
	Accuracy      float64 // percent of requests answered without error
	Autonomy      float64 // human interventions per injected fault (0 = fully autonomous)
	Faults        int
	Interventions int
}

// ComputeAutonomy returns interventions/faults, or 0 when no faults were
// injected.
func ComputeAutonomy(interventions, faults int) float64 {
	if faults == 0 {
		return 0
	}
	return float64(interventions) / float64(faults)
}

// Availability computes the ratio between operational time and total run
// duration given the downtime observed.
func Availability(downtime, total time.Duration) float64 {
	if total <= 0 {
		return 1
	}
	a := 1 - downtime.Seconds()/total.Seconds()
	if a < 0 {
		return 0
	}
	return a
}
