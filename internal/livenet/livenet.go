// Package livenet is the real-time runtime for the protocol stack: each
// node runs a goroutine event loop, messages travel over in-process
// channels with configurable latency and loss, timers use the wall clock,
// and stable storage is crash-durable within the process. The examples
// and commands run the same env.Node implementations (internal/core,
// internal/paxos) on this runtime that the experiments run on the
// deterministic simulator.
//
// Fault injection mirrors the simulator's surface: a message-filter layer
// blocks directed links (SetLink) and installs handle-based, composable
// partitions (Partition/PartitionDir — symmetric or one-way), healed per
// handle or wholesale (Heal). Active partition sets persist, so a node
// added mid-partition joins the majority side, exactly as on the
// simulator.
package livenet

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/xrand"
)

// Config parameterizes a live cluster.
type Config struct {
	// Latency delays each delivered message (one way). Default 200 µs.
	Latency time.Duration

	// Jitter adds up to this much extra random delay. Default 0.
	Jitter time.Duration

	// DropRate silently drops this fraction of messages (fault
	// injection in tests). Default 0.
	DropRate float64

	// Seed feeds the per-node deterministic streams handed to protocol
	// code (message delivery order is still scheduler-dependent).
	Seed uint64
}

// Cluster owns a set of live nodes. The node and peer lists are
// published as atomic snapshots (copy-on-append) so node goroutines can
// read them lock-free while live scale-out (shard.Store.Rebalance)
// registers new members mid-run.
type Cluster struct {
	cfg   Config
	mu    sync.Mutex // serializes AddNode writers
	nodes atomic.Pointer[[]*liveNode]
	peers atomic.Pointer[[]env.NodeID]
	rng   *xrand.Rand
	wg    sync.WaitGroup

	// The message-filter layer: directed link blocks consulted on every
	// Send, mirroring the simulator's fault-injection surface so
	// partition faultloads run identically on both runtimes. blocked is
	// refcounted per handle-based partition; manual holds SetLink's
	// direct toggles.
	linkMu  sync.RWMutex
	blocked map[linkKey]int        // guarded by linkMu
	manual  map[linkKey]bool       // guarded by linkMu
	loss    map[linkKey]float64    // guarded by linkMu
	delay   map[linkKey]float64    // guarded by linkMu
	gray    map[env.NodeID]float64 // guarded by linkMu
	parts   []*BlockHandle         // guarded by linkMu
}

type linkKey struct{ from, to env.NodeID }

// nodeList returns the current node snapshot.
func (c *Cluster) nodeList() []*liveNode {
	if p := c.nodes.Load(); p != nil {
		return *p
	}
	return nil
}

// node returns node id, or nil when out of range.
func (c *Cluster) node(id env.NodeID) *liveNode {
	nodes := c.nodeList()
	if int(id) < 0 || int(id) >= len(nodes) {
		return nil
	}
	return nodes[id]
}

// New creates an empty cluster.
func New(cfg Config) *Cluster {
	if cfg.Latency == 0 {
		cfg.Latency = 200 * time.Microsecond
	}
	return &Cluster{
		cfg:     cfg,
		rng:     xrand.New(cfg.Seed*0x9e3779b97f4a7c15 + 3),
		blocked: make(map[linkKey]int),
		manual:  make(map[linkKey]bool),
		loss:    make(map[linkKey]float64),
		delay:   make(map[linkKey]float64),
		gray:    make(map[env.NodeID]float64),
	}
}

// SetLinkLoss sets a per-link message loss rate on the directed link
// from → to (0 clears it). It sits alongside the link-block layer: a lossy
// link composes with partitions and SetLink toggles covering the same
// pair, and healing a partition never clears a loss rate.
func (c *Cluster) SetLinkLoss(from, to env.NodeID, rate float64) {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	if rate <= 0 {
		delete(c.loss, linkKey{from, to})
	} else {
		c.loss[linkKey{from, to}] = rate
	}
}

// linkLoss returns the loss rate of the directed link from → to.
func (c *Cluster) linkLoss(from, to env.NodeID) float64 {
	c.linkMu.RLock()
	defer c.linkMu.RUnlock()
	return c.loss[linkKey{from, to}]
}

// SetLinkDelay inflates the delivery latency of the directed link
// from → to by factor (≤ 1 clears it) — the latency cousin of
// SetLinkLoss, composable with partitions covering the same pair.
func (c *Cluster) SetLinkDelay(from, to env.NodeID, factor float64) {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	if factor <= 1 {
		delete(c.delay, linkKey{from, to})
	} else {
		c.delay[linkKey{from, to}] = factor
	}
}

// linkDelay returns the latency-inflation factor of from → to (1 when
// healthy).
func (c *Cluster) linkDelay(from, to env.NodeID) float64 {
	c.linkMu.RLock()
	defer c.linkMu.RUnlock()
	if f, ok := c.delay[linkKey{from, to}]; ok {
		return f
	}
	return 1
}

// grayControlSize is the wire-size ceiling under which a message counts
// as control traffic for SetGray: liveness pings, Paxos prepares and
// probe messages all fit, while value-bearing accept/learn traffic does
// not.
const grayControlSize = 128

// SetGray puts node id into (or out of, rate ≤ 0) a gray-failure mode at
// the transport: inbound messages larger than grayControlSize are dropped
// with probability rate, while small control traffic — failure-detector
// pings, Paxos prepares, web-tier probes — passes untouched. The node
// keeps looking alive to every prober while its real work limps, the
// defining asymmetry of a gray failure.
func (c *Cluster) SetGray(id env.NodeID, rate float64) {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	if rate <= 0 {
		delete(c.gray, id)
	} else {
		c.gray[id] = rate
	}
}

// grayRate returns node id's inbound gray-drop rate (0 when healthy).
func (c *Cluster) grayRate(id env.NodeID) float64 {
	c.linkMu.RLock()
	defer c.linkMu.RUnlock()
	return c.gray[id]
}

// SetLink blocks or unblocks the directed network link from → to. It is a
// direct toggle independent of the handle-based partitions: unblocking a
// link here does not disturb a partition that also covers it.
func (c *Cluster) SetLink(from, to env.NodeID, blocked bool) {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	if blocked {
		c.manual[linkKey{from, to}] = true
	} else {
		delete(c.manual, linkKey{from, to})
	}
}

// linkBlocked reports whether the directed link from → to drops traffic.
func (c *Cluster) linkBlocked(from, to env.NodeID) bool {
	c.linkMu.RLock()
	defer c.linkMu.RUnlock()
	k := linkKey{from, to}
	return c.blocked[k] > 0 || c.manual[k]
}

// BlockHandle is one composable set of directed link blocks (one
// partition) on the live runtime. Healing it removes exactly the blocks
// it installed, so overlapping partitions compose.
type BlockHandle struct {
	c      *Cluster
	links  []linkKey
	side   map[env.NodeID]bool
	dir    env.LinkDir
	healed bool
}

var _ env.PartitionHandle = (*BlockHandle)(nil)

// Heal removes this handle's blocks. Idempotent; safe from any goroutine.
func (h *BlockHandle) Heal() {
	h.c.linkMu.Lock()
	defer h.c.linkMu.Unlock()
	h.healLocked()
}

func (h *BlockHandle) healLocked() {
	if h.healed {
		return
	}
	h.healed = true
	for _, k := range h.links {
		if h.c.blocked[k] <= 1 {
			delete(h.c.blocked, k)
		} else {
			h.c.blocked[k]--
		}
	}
	h.links = nil
	for i, p := range h.c.parts {
		if p == h {
			h.c.parts = append(h.c.parts[:i], h.c.parts[i+1:]...)
			break
		}
	}
}

// blockPairLocked installs the handle's directed blocks between isolated
// node a and outside node b, honoring the handle's direction. Caller
// holds linkMu.
func (h *BlockHandle) blockPairLocked(a, b env.NodeID) {
	if h.dir == env.LinkBothWays || h.dir == env.LinkOutboundOnly {
		k := linkKey{a, b}
		h.c.blocked[k]++
		h.links = append(h.links, k)
	}
	if h.dir == env.LinkBothWays || h.dir == env.LinkInboundOnly {
		k := linkKey{b, a}
		h.c.blocked[k]++
		h.links = append(h.links, k)
	}
}

// Partition isolates the given nodes from the rest of the cluster in both
// directions and returns the handle that heals exactly this partition.
// Like the simulator's, the partition set persists: a node added later
// joins on the majority side rather than straddling it.
func (c *Cluster) Partition(isolated ...env.NodeID) *BlockHandle {
	return c.PartitionDir(env.LinkBothWays, isolated...)
}

// PartitionDir is Partition with an explicit direction (asymmetric
// one-way loss relative to the isolated set).
func (c *Cluster) PartitionDir(dir env.LinkDir, isolated ...env.NodeID) *BlockHandle {
	h := &BlockHandle{c: c, dir: dir, side: make(map[env.NodeID]bool, len(isolated))}
	for _, id := range isolated {
		h.side[id] = true
	}
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	var peers []env.NodeID
	if p := c.peers.Load(); p != nil {
		peers = *p
	}
	for _, b := range peers {
		if h.side[b] {
			continue
		}
		for a := range h.side {
			h.blockPairLocked(a, b)
		}
	}
	c.parts = append(c.parts, h)
	return h
}

// Heal removes all link blocks: every active partition handle is healed
// and every SetLink toggle cleared.
func (c *Cluster) Heal() {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	for len(c.parts) > 0 {
		c.parts[len(c.parts)-1].healLocked()
	}
	c.blocked = make(map[linkKey]int)
	c.manual = make(map[linkKey]bool)
}

// AddNode registers a node built by factory; the factory runs once per
// incarnation (start and every restart). Nodes added before StartAll are
// booted by it; a node added later (live scale-out, e.g.
// shard.Store.Rebalance) starts down and is booted by Restart.
func (c *Cluster) AddNode(factory func() env.Node) env.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.nodeList()
	id := env.NodeID(len(old))
	n := &liveNode{
		c:       c,
		id:      id,
		factory: factory,
		rng:     c.rng.Split(),
		storage: newMemStorage(),
	}
	nodes := append(append([]*liveNode(nil), old...), n)
	var oldPeers []env.NodeID
	if p := c.peers.Load(); p != nil {
		oldPeers = *p
	}
	peers := append(append([]env.NodeID(nil), oldPeers...), id)
	c.nodes.Store(&nodes)
	c.peers.Store(&peers)
	// Active partitions extend to the newcomer (majority side) so a node
	// booted by a live rebalance cannot straddle an isolated set.
	c.linkMu.Lock()
	for _, h := range c.parts {
		if h.side[id] {
			continue
		}
		for a := range h.side {
			h.blockPairLocked(a, id)
		}
	}
	c.linkMu.Unlock()
	return id
}

// StartAll boots every node.
func (c *Cluster) StartAll() {
	for _, n := range c.nodeList() {
		n.start()
	}
}

// Crash kills a node: volatile state and pending work are discarded,
// stable storage survives.
func (c *Cluster) Crash(id env.NodeID) { c.node(id).crash() }

// Restart boots a fresh incarnation of a crashed node.
func (c *Cluster) Restart(id env.NodeID) { c.node(id).start() }

// Alive reports whether a node is running.
func (c *Cluster) Alive(id env.NodeID) bool {
	n := c.node(id)
	if n == nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// Post schedules fn on a node's event loop (no-op if the node is down).
// It is how application goroutines hand work to protocol code.
func (c *Cluster) Post(id env.NodeID, fn func()) { c.node(id).post(fn) }

// After schedules a cluster-level callback on the wall clock, independent
// of any node incarnation (used by shard.Store's checkpoint sweep).
func (c *Cluster) After(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// Now returns the cluster clock — the wall clock on the live runtime. It
// satisfies shard's nower capability, so deterministic code (the
// migration driver) takes its timestamps from the runtime instead of
// calling time.Now itself.
func (c *Cluster) Now() time.Time { return time.Now() }

// Close crashes every node and waits for their loops to exit.
func (c *Cluster) Close() {
	for _, n := range c.nodeList() {
		n.crash()
	}
	c.wg.Wait()
}

// liveNode is one member across incarnations.
type liveNode struct {
	c       *Cluster
	id      env.NodeID
	factory func() env.Node
	rng     *xrand.Rand
	storage *memStorage

	mu    sync.Mutex
	alive bool
	inc   int64
	inbox chan func()
	node  env.Node
}

const inboxSize = 8192

func (n *liveNode) start() {
	n.mu.Lock()
	if n.alive {
		n.mu.Unlock()
		return
	}
	n.inc++
	inc := n.inc
	n.alive = true
	n.inbox = make(chan func(), inboxSize)
	n.node = n.factory()
	inbox := n.inbox
	node := n.node
	n.mu.Unlock()

	e := &liveEnv{n: n, inc: inc}
	n.c.wg.Add(1)
	go func() {
		defer n.c.wg.Done()
		for fn := range inbox {
			fn()
		}
	}()
	n.post(func() { node.Start(e) })
}

func (n *liveNode) crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	n.alive = false
	n.inc++ // orphan timers and storage completions
	n.node = nil
	close(n.inbox)
	n.inbox = nil
}

// post runs fn on the node's loop if it is alive. Overflow drops the
// event (protocols tolerate loss); blocking here could deadlock loops
// sending to each other.
func (n *liveNode) post(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || n.inbox == nil {
		return
	}
	select {
	case n.inbox <- fn:
	default:
	}
}

// postInc posts only if the incarnation is still current. The send
// happens under the mutex so it cannot race the close in crash.
func (n *liveNode) postInc(inc int64, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || n.inc != inc || n.inbox == nil {
		return
	}
	select {
	case n.inbox <- fn:
	default:
	}
}

// liveEnv implements env.Env for one incarnation.
type liveEnv struct {
	n   *liveNode
	inc int64
}

var _ env.Env = (*liveEnv)(nil)

func (e *liveEnv) ID() env.NodeID { return e.n.id }

func (e *liveEnv) Peers() []env.NodeID {
	if p := e.n.c.peers.Load(); p != nil {
		return *p
	}
	return nil
}

func (e *liveEnv) Now() time.Time { return time.Now() }

func (e *liveEnv) Post(fn func()) { e.n.postInc(e.inc, fn) }

type liveTimer struct{ t *time.Timer }

func (t *liveTimer) Stop() bool { return t.t.Stop() }

func (e *liveEnv) After(d time.Duration, fn func()) env.Timer {
	t := time.AfterFunc(d, func() { e.n.postInc(e.inc, fn) })
	return &liveTimer{t: t}
}

func (e *liveEnv) Send(to env.NodeID, msg env.Message) {
	c := e.n.c
	target := c.node(to)
	if target == nil {
		return
	}
	if c.linkBlocked(e.n.id, to) {
		return
	}
	if c.cfg.DropRate > 0 && rand.Float64() < c.cfg.DropRate {
		return
	}
	if r := c.linkLoss(e.n.id, to); r > 0 && rand.Float64() < r {
		return
	}
	if r := c.grayRate(to); r > 0 {
		size := int64(grayControlSize + 1)
		if s, ok := msg.(interface{ WireSize() int64 }); ok {
			size = s.WireSize()
		}
		if size > grayControlSize && rand.Float64() < r {
			return
		}
	}
	from := e.n.id
	delay := c.cfg.Latency
	if c.cfg.Jitter > 0 {
		delay += time.Duration(rand.Int63n(int64(c.cfg.Jitter)))
	}
	if f := c.linkDelay(from, to); f > 1 {
		delay = time.Duration(float64(delay) * f)
	}
	time.AfterFunc(delay, func() {
		target.mu.Lock()
		node := target.node
		target.mu.Unlock()
		if node != nil {
			target.post(func() {
				target.mu.Lock()
				cur := target.node
				target.mu.Unlock()
				if cur != nil {
					cur.Receive(from, msg)
				}
			})
		}
	})
}

func (e *liveEnv) Storage() env.Storage { return &storageView{n: e.n, inc: e.inc} }

func (e *liveEnv) Rand() env.Rand { return e.n.rng }

func (e *liveEnv) Logf(format string, args ...any) {}

// memStorage is crash-durable in-process storage: contents survive
// crash/restart of the node within the process lifetime. Completions are
// posted back to the owning incarnation's loop.
type memStorage struct {
	mu         sync.Mutex
	records    []env.Record
	firstIndex int64
	snapshots  map[string]env.Snapshot
}

func newMemStorage() *memStorage {
	return &memStorage{snapshots: make(map[string]env.Snapshot)}
}

// storageView binds the storage to one incarnation so stale completions
// are dropped.
type storageView struct {
	n   *liveNode
	inc int64
}

var _ env.Storage = (*storageView)(nil)

func (s *storageView) done(fn func()) { s.n.postInc(s.inc, fn) }

func (s *storageView) Append(rec env.Record, done func(error)) {
	st := s.n.storage
	st.mu.Lock()
	st.records = append(st.records, rec)
	st.mu.Unlock()
	if done != nil {
		s.done(func() { done(nil) })
	}
}

func (s *storageView) AppendBatch(recs []env.Record, done func(error)) {
	st := s.n.storage
	st.mu.Lock()
	st.records = append(st.records, recs...)
	st.mu.Unlock()
	if done != nil {
		s.done(func() { done(nil) })
	}
}

func (s *storageView) ReadRecords(done func([]env.Record, error)) {
	st := s.n.storage
	st.mu.Lock()
	recs := make([]env.Record, len(st.records))
	copy(recs, st.records)
	st.mu.Unlock()
	s.done(func() { done(recs, nil) })
}

func (s *storageView) Truncate(firstKept int64, done func(error)) {
	st := s.n.storage
	st.mu.Lock()
	if firstKept > st.firstIndex {
		drop := firstKept - st.firstIndex
		if drop > int64(len(st.records)) {
			drop = int64(len(st.records))
		}
		st.records = append([]env.Record(nil), st.records[drop:]...)
		st.firstIndex += drop
	}
	st.mu.Unlock()
	if done != nil {
		s.done(func() { done(nil) })
	}
}

func (s *storageView) FirstIndex() int64 {
	st := s.n.storage
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.firstIndex
}

func (s *storageView) SaveSnapshot(name string, snap env.Snapshot, done func(error)) {
	st := s.n.storage
	st.mu.Lock()
	st.snapshots[name] = snap
	st.mu.Unlock()
	if done != nil {
		s.done(func() { done(nil) })
	}
}

func (s *storageView) DeleteSnapshot(name string, done func(error)) {
	st := s.n.storage
	st.mu.Lock()
	delete(st.snapshots, name)
	st.mu.Unlock()
	if done != nil {
		s.done(func() { done(nil) })
	}
}

func (s *storageView) LoadSnapshot(name string, done func(env.Snapshot, bool)) {
	st := s.n.storage
	st.mu.Lock()
	snap, ok := st.snapshots[name]
	st.mu.Unlock()
	s.done(func() { done(snap, ok) })
}
