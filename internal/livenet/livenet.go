// Package livenet is the real-time runtime for the protocol stack: each
// node runs a goroutine event loop, messages travel over in-process
// channels with configurable latency and loss, timers use the wall clock,
// and stable storage is crash-durable within the process. The examples
// and commands run the same env.Node implementations (internal/core,
// internal/paxos) on this runtime that the experiments run on the
// deterministic simulator.
package livenet

import (
	"math/rand"
	"sync"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/xrand"
)

// Config parameterizes a live cluster.
type Config struct {
	// Latency delays each delivered message (one way). Default 200 µs.
	Latency time.Duration

	// Jitter adds up to this much extra random delay. Default 0.
	Jitter time.Duration

	// DropRate silently drops this fraction of messages (fault
	// injection in tests). Default 0.
	DropRate float64

	// Seed feeds the per-node deterministic streams handed to protocol
	// code (message delivery order is still scheduler-dependent).
	Seed uint64
}

// Cluster owns a set of live nodes.
type Cluster struct {
	cfg   Config
	mu    sync.Mutex
	nodes []*liveNode
	peers []env.NodeID
	rng   *xrand.Rand
	wg    sync.WaitGroup
}

// New creates an empty cluster.
func New(cfg Config) *Cluster {
	if cfg.Latency == 0 {
		cfg.Latency = 200 * time.Microsecond
	}
	return &Cluster{cfg: cfg, rng: xrand.New(cfg.Seed*0x9e3779b97f4a7c15 + 3)}
}

// AddNode registers a node built by factory; the factory runs once per
// incarnation (start and every restart). All nodes must be added before
// StartAll.
func (c *Cluster) AddNode(factory func() env.Node) env.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := env.NodeID(len(c.nodes))
	n := &liveNode{
		c:       c,
		id:      id,
		factory: factory,
		rng:     c.rng.Split(),
		storage: newMemStorage(),
	}
	c.nodes = append(c.nodes, n)
	c.peers = append(c.peers, id)
	return id
}

// StartAll boots every node.
func (c *Cluster) StartAll() {
	c.mu.Lock()
	nodes := append([]*liveNode(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		n.start()
	}
}

// Crash kills a node: volatile state and pending work are discarded,
// stable storage survives.
func (c *Cluster) Crash(id env.NodeID) { c.nodes[id].crash() }

// Restart boots a fresh incarnation of a crashed node.
func (c *Cluster) Restart(id env.NodeID) { c.nodes[id].start() }

// Alive reports whether a node is running.
func (c *Cluster) Alive(id env.NodeID) bool {
	n := c.nodes[id]
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// Post schedules fn on a node's event loop (no-op if the node is down).
// It is how application goroutines hand work to protocol code.
func (c *Cluster) Post(id env.NodeID, fn func()) { c.nodes[id].post(fn) }

// After schedules a cluster-level callback on the wall clock, independent
// of any node incarnation (used by shard.Store's checkpoint sweep).
func (c *Cluster) After(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// Close crashes every node and waits for their loops to exit.
func (c *Cluster) Close() {
	c.mu.Lock()
	nodes := append([]*liveNode(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		n.crash()
	}
	c.wg.Wait()
}

// liveNode is one member across incarnations.
type liveNode struct {
	c       *Cluster
	id      env.NodeID
	factory func() env.Node
	rng     *xrand.Rand
	storage *memStorage

	mu    sync.Mutex
	alive bool
	inc   int64
	inbox chan func()
	node  env.Node
}

const inboxSize = 8192

func (n *liveNode) start() {
	n.mu.Lock()
	if n.alive {
		n.mu.Unlock()
		return
	}
	n.inc++
	inc := n.inc
	n.alive = true
	n.inbox = make(chan func(), inboxSize)
	n.node = n.factory()
	inbox := n.inbox
	node := n.node
	n.mu.Unlock()

	e := &liveEnv{n: n, inc: inc}
	n.c.wg.Add(1)
	go func() {
		defer n.c.wg.Done()
		for fn := range inbox {
			fn()
		}
	}()
	n.post(func() { node.Start(e) })
}

func (n *liveNode) crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	n.alive = false
	n.inc++ // orphan timers and storage completions
	n.node = nil
	close(n.inbox)
	n.inbox = nil
}

// post runs fn on the node's loop if it is alive. Overflow drops the
// event (protocols tolerate loss); blocking here could deadlock loops
// sending to each other.
func (n *liveNode) post(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || n.inbox == nil {
		return
	}
	select {
	case n.inbox <- fn:
	default:
	}
}

// postInc posts only if the incarnation is still current. The send
// happens under the mutex so it cannot race the close in crash.
func (n *liveNode) postInc(inc int64, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || n.inc != inc || n.inbox == nil {
		return
	}
	select {
	case n.inbox <- fn:
	default:
	}
}

// liveEnv implements env.Env for one incarnation.
type liveEnv struct {
	n   *liveNode
	inc int64
}

var _ env.Env = (*liveEnv)(nil)

func (e *liveEnv) ID() env.NodeID      { return e.n.id }
func (e *liveEnv) Peers() []env.NodeID { return e.n.c.peers }
func (e *liveEnv) Now() time.Time      { return time.Now() }

func (e *liveEnv) Post(fn func()) { e.n.postInc(e.inc, fn) }

type liveTimer struct{ t *time.Timer }

func (t *liveTimer) Stop() bool { return t.t.Stop() }

func (e *liveEnv) After(d time.Duration, fn func()) env.Timer {
	t := time.AfterFunc(d, func() { e.n.postInc(e.inc, fn) })
	return &liveTimer{t: t}
}

func (e *liveEnv) Send(to env.NodeID, msg env.Message) {
	c := e.n.c
	if int(to) < 0 || int(to) >= len(c.nodes) {
		return
	}
	if c.cfg.DropRate > 0 && rand.Float64() < c.cfg.DropRate {
		return
	}
	target := c.nodes[to]
	from := e.n.id
	delay := c.cfg.Latency
	if c.cfg.Jitter > 0 {
		delay += time.Duration(rand.Int63n(int64(c.cfg.Jitter)))
	}
	time.AfterFunc(delay, func() {
		target.mu.Lock()
		node := target.node
		target.mu.Unlock()
		if node != nil {
			target.post(func() {
				target.mu.Lock()
				cur := target.node
				target.mu.Unlock()
				if cur != nil {
					cur.Receive(from, msg)
				}
			})
		}
	})
}

func (e *liveEnv) Storage() env.Storage { return &storageView{n: e.n, inc: e.inc} }

func (e *liveEnv) Rand() env.Rand { return e.n.rng }

func (e *liveEnv) Logf(format string, args ...any) {}

// memStorage is crash-durable in-process storage: contents survive
// crash/restart of the node within the process lifetime. Completions are
// posted back to the owning incarnation's loop.
type memStorage struct {
	mu         sync.Mutex
	records    []env.Record
	firstIndex int64
	snapshots  map[string]env.Snapshot
}

func newMemStorage() *memStorage {
	return &memStorage{snapshots: make(map[string]env.Snapshot)}
}

// storageView binds the storage to one incarnation so stale completions
// are dropped.
type storageView struct {
	n   *liveNode
	inc int64
}

var _ env.Storage = (*storageView)(nil)

func (s *storageView) done(fn func()) { s.n.postInc(s.inc, fn) }

func (s *storageView) Append(rec env.Record, done func(error)) {
	st := s.n.storage
	st.mu.Lock()
	st.records = append(st.records, rec)
	st.mu.Unlock()
	if done != nil {
		s.done(func() { done(nil) })
	}
}

func (s *storageView) ReadRecords(done func([]env.Record, error)) {
	st := s.n.storage
	st.mu.Lock()
	recs := make([]env.Record, len(st.records))
	copy(recs, st.records)
	st.mu.Unlock()
	s.done(func() { done(recs, nil) })
}

func (s *storageView) Truncate(firstKept int64, done func(error)) {
	st := s.n.storage
	st.mu.Lock()
	if firstKept > st.firstIndex {
		drop := firstKept - st.firstIndex
		if drop > int64(len(st.records)) {
			drop = int64(len(st.records))
		}
		st.records = append([]env.Record(nil), st.records[drop:]...)
		st.firstIndex += drop
	}
	st.mu.Unlock()
	if done != nil {
		s.done(func() { done(nil) })
	}
}

func (s *storageView) FirstIndex() int64 {
	st := s.n.storage
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.firstIndex
}

func (s *storageView) SaveSnapshot(name string, snap env.Snapshot, done func(error)) {
	st := s.n.storage
	st.mu.Lock()
	st.snapshots[name] = snap
	st.mu.Unlock()
	if done != nil {
		s.done(func() { done(nil) })
	}
}

func (s *storageView) LoadSnapshot(name string, done func(env.Snapshot, bool)) {
	st := s.n.storage
	st.mu.Lock()
	snap, ok := st.snapshots[name]
	st.mu.Unlock()
	s.done(func() { done(snap, ok) })
}
