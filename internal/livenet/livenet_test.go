package livenet

import (
	"context"
	"sync"
	"testing"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/paxos"
)

// counter is a trivial deterministic state machine.
type counter struct {
	mu    sync.Mutex
	total int64
}

func (m *counter) Execute(action any) any {
	d, ok := action.(int64)
	if !ok {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total += d
	return m.total
}

func (m *counter) Snapshot() (any, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total, 64
}

func (m *counter) Restore(data any) {
	v, ok := data.(int64)
	if !ok {
		return
	}
	m.mu.Lock()
	m.total = v
	m.mu.Unlock()
}

func (m *counter) value() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// slots is a mutex-protected registry for objects the node factories
// rebuild on every incarnation (the test goroutine reads them while node
// loops replace them).
type slots struct {
	mu       sync.Mutex
	replicas []*core.Replica
	counters []*counter
}

func (sl *slots) set(i int, r *core.Replica, m *counter) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.replicas[i] = r
	sl.counters[i] = m
}

func (sl *slots) replica(i int) *core.Replica {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.replicas[i]
}

func (sl *slots) counterValue(i int) int64 {
	sl.mu.Lock()
	m := sl.counters[i]
	sl.mu.Unlock()
	if m == nil {
		return -1
	}
	return m.value()
}

func buildCluster(t *testing.T, n int) (*Cluster, *slots) {
	t.Helper()
	c := New(Config{Latency: 100 * time.Microsecond, Seed: 9})
	sl := &slots{
		replicas: make([]*core.Replica, n),
		counters: make([]*counter, n),
	}
	for i := 0; i < n; i++ {
		idx := i
		c.AddNode(func() env.Node {
			m := &counter{}
			r := core.NewReplica(core.Config{
				Machine: func() core.StateMachine {
					return m
				},
				CheckpointInterval: 500 * time.Millisecond,
				Paxos: paxos.Config{
					BatchDelay:        time.Millisecond,
					HeartbeatInterval: 20 * time.Millisecond,
					LeaderTimeout:     120 * time.Millisecond,
					SweepInterval:     10 * time.Millisecond,
				},
			})
			sl.set(idx, r, m)
			return r
		})
	}
	c.StartAll()
	t.Cleanup(c.Close)
	return c, sl
}

func TestLiveReplicatedCounter(t *testing.T) {
	_, sl := buildCluster(t, 3)
	waitReady(t, sl.replica(0))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var want int64
	for i := int64(1); i <= 20; i++ {
		res, err := sl.replica(int(i)%3).Execute(ctx, i)
		if err != nil {
			t.Fatalf("execute %d: %v", i, err)
		}
		want += i
		_ = res
	}
	// The submitting replica observed each result locally; the others
	// converge shortly after.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if sl.counterValue(0) == want && sl.counterValue(1) == want && sl.counterValue(2) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("counters did not converge to %d: %d %d %d",
		want, sl.counterValue(0), sl.counterValue(1), sl.counterValue(2))
}

func TestLiveCrashRecovery(t *testing.T) {
	c, sl := buildCluster(t, 3)
	waitReady(t, sl.replica(0))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var want int64
	add := func(from int, d int64) {
		t.Helper()
		if _, err := sl.replica(from).Execute(ctx, d); err != nil {
			t.Fatalf("execute: %v", err)
		}
		want += d
	}
	add(0, 5)
	add(1, 7)

	c.Crash(2)
	add(0, 11) // majority still live: progress continues
	add(1, 13)

	c.Restart(2)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if sl.counterValue(2) == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("restarted replica at %d, want %d", sl.counterValue(2), want)
}

func TestLiveQueueTotalOrder(t *testing.T) {
	c := New(Config{Latency: 100 * time.Microsecond, Seed: 10})
	const n = 3
	queues := make([]*core.Queue, n)
	replicas := make([]*core.Replica, n)
	for i := 0; i < n; i++ {
		idx := i
		c.AddNode(func() env.Node {
			q, r := core.NewQueue(core.Config{
				Paxos: paxos.Config{
					BatchDelay:        time.Millisecond,
					HeartbeatInterval: 20 * time.Millisecond,
					LeaderTimeout:     120 * time.Millisecond,
					SweepInterval:     10 * time.Millisecond,
				},
			})
			queues[idx] = q
			replicas[idx] = r
			return r
		})
	}
	c.StartAll()
	t.Cleanup(c.Close)
	waitReady(t, replicas[0])

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 9; i++ {
		queues[i%n].Enqueue(i)
	}
	// Every replica dequeues the same sequence.
	var first []int
	for r := 0; r < n; r++ {
		var got []int
		for i := 0; i < 9; i++ {
			item, err := queues[r].Dequeue(ctx)
			if err != nil {
				t.Fatalf("replica %d dequeue %d: %v", r, i, err)
			}
			got = append(got, item.(int))
		}
		if first == nil {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("replica %d order differs at %d: %v vs %v", r, i, got, first)
			}
		}
	}
	// All nine distinct items arrived.
	seen := make(map[int]bool)
	for _, v := range first {
		seen[v] = true
	}
	if len(seen) != 9 {
		t.Fatalf("expected 9 distinct items, got %v", first)
	}
}

// pingNode records everything it receives (for the link-filter tests).
type pingNode struct {
	mu  sync.Mutex
	e   env.Env
	got []env.Message
}

func (n *pingNode) Start(e env.Env) {
	n.mu.Lock()
	n.e = e
	n.mu.Unlock()
}

func (n *pingNode) Receive(from env.NodeID, msg env.Message) {
	n.mu.Lock()
	n.got = append(n.got, msg)
	n.mu.Unlock()
}

func (n *pingNode) env() env.Env {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.e
}

func (n *pingNode) count() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.got)
}

func pingCluster(t *testing.T, n int) (*Cluster, []*pingNode) {
	t.Helper()
	c := New(Config{Latency: 50 * time.Microsecond, Seed: 11})
	nodes := make([]*pingNode, n)
	for i := 0; i < n; i++ {
		p := &pingNode{}
		nodes[i] = p
		c.AddNode(func() env.Node { return p })
	}
	c.StartAll()
	t.Cleanup(c.Close)
	deadline := time.Now().Add(5 * time.Second)
	for _, p := range nodes {
		for p.env() == nil && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if p.env() == nil {
			t.Fatal("node never started")
		}
	}
	return c, nodes
}

// settle gives in-flight deliveries time to land.
func settle() { time.Sleep(20 * time.Millisecond) }

func TestLinkFilterBlocksDirectedTraffic(t *testing.T) {
	c, nodes := pingCluster(t, 2)
	c.SetLink(0, 1, true)
	nodes[0].env().Send(1, "dropped")
	nodes[1].env().Send(0, "delivered") // reverse direction stays open
	settle()
	if nodes[1].count() != 0 {
		t.Fatalf("blocked link delivered %d messages", nodes[1].count())
	}
	if nodes[0].count() != 1 {
		t.Fatalf("open reverse link delivered %d messages, want 1", nodes[0].count())
	}
	c.SetLink(0, 1, false)
	nodes[0].env().Send(1, "now delivered")
	settle()
	if nodes[1].count() != 1 {
		t.Fatalf("unblocked link delivered %d messages, want 1", nodes[1].count())
	}
}

// TestPartitionHandlesCompose: two overlapping partitions; healing one
// must leave the other's blocks in place (the regression the sim fixed).
func TestPartitionHandlesCompose(t *testing.T) {
	c, nodes := pingCluster(t, 3)
	h1 := c.Partition(1)
	h2 := c.Partition(2)
	h1.Heal()
	nodes[0].env().Send(1, "a") // healed: flows
	nodes[0].env().Send(2, "b") // still partitioned: dropped
	settle()
	if nodes[1].count() != 1 {
		t.Fatalf("healed node got %d messages, want 1", nodes[1].count())
	}
	if nodes[2].count() != 0 {
		t.Fatalf("partitioned node got %d messages, want 0", nodes[2].count())
	}
	h2.Heal()
	nodes[0].env().Send(2, "c")
	settle()
	if nodes[2].count() != 1 {
		t.Fatalf("node 2 got %d messages after heal, want 1", nodes[2].count())
	}
}

// TestPartitionOneWay: outbound-only loss lets the victim hear but not
// answer.
func TestPartitionOneWay(t *testing.T) {
	c, nodes := pingCluster(t, 2)
	h := c.PartitionDir(env.LinkOutboundOnly, 1)
	nodes[0].env().Send(1, "heard")
	settle()
	nodes[1].env().Send(0, "lost")
	settle()
	if nodes[1].count() != 1 {
		t.Fatalf("victim heard %d messages, want 1", nodes[1].count())
	}
	if nodes[0].count() != 0 {
		t.Fatalf("victim's reply arrived (%d messages), one-way loss broken", nodes[0].count())
	}
	h.Heal()
	nodes[1].env().Send(0, "answered")
	settle()
	if nodes[0].count() != 1 {
		t.Fatalf("after heal got %d messages, want 1", nodes[0].count())
	}
}

// TestPartitionExtendsToLateNodes: a node added during a partition joins
// the majority side instead of straddling it.
func TestPartitionExtendsToLateNodes(t *testing.T) {
	c, nodes := pingCluster(t, 2)
	h := c.Partition(1)
	late := &pingNode{}
	id := c.AddNode(func() env.Node { return late })
	c.Restart(id)
	deadline := time.Now().Add(5 * time.Second)
	for late.env() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	late.env().Send(1, "must not cross")
	nodes[1].env().Send(id, "must not cross either")
	late.env().Send(0, "majority side flows")
	settle()
	if nodes[1].count() != 0 || late.count() != 0 {
		t.Fatalf("late node straddles the partition: victim got %d, late got %d",
			nodes[1].count(), late.count())
	}
	if nodes[0].count() != 1 {
		t.Fatalf("majority-side delivery failed: got %d, want 1", nodes[0].count())
	}
	h.Heal()
	late.env().Send(1, "healed")
	settle()
	if nodes[1].count() != 1 {
		t.Fatalf("after heal victim got %d, want 1", nodes[1].count())
	}
}

// TestLivePartitionedReplicaCatchesUp: the replication stack under the
// filter — a partitioned minority member makes no progress, and converges
// after heal.
func TestLivePartitionedReplicaCatchesUp(t *testing.T) {
	c, sl := buildCluster(t, 3)
	waitReady(t, sl.replica(0))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var want int64
	add := func(from int, d int64) {
		t.Helper()
		if _, err := sl.replica(from).Execute(ctx, d); err != nil {
			t.Fatalf("execute: %v", err)
		}
		want += d
	}
	add(0, 5)
	h := c.Partition(2)
	add(0, 11) // majority keeps committing
	add(1, 13)
	h.Heal()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if sl.counterValue(2) == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("partitioned replica at %d after heal, want %d", sl.counterValue(2), want)
}

func waitReady(t *testing.T, r *core.Replica) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if r != nil && r.Ready() && r.HasLeader() {
			// A leader exists, so the first Execute does not race the
			// initial election.
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("replica never became ready")
}

// sizedMsg carries an explicit wire size, to exercise the gray filter's
// control/bulk distinction.
type sizedMsg struct {
	Body string
	Size int64
}

func (m sizedMsg) WireSize() int64 { return m.Size }

// TestGrayDropsBulkKeepsControl: a gray-failed node keeps receiving
// small control traffic (pings, prepares, probes) while value-bearing
// messages vanish — the probe-healthy / work-sick asymmetry. Clearing
// the rate restores bulk delivery.
func TestGrayDropsBulkKeepsControl(t *testing.T) {
	c, nodes := pingCluster(t, 2)
	c.SetGray(1, 1.0)
	nodes[0].env().Send(1, sizedMsg{Body: "bulk", Size: grayControlSize + 1})
	nodes[0].env().Send(1, sizedMsg{Body: "control", Size: 48})
	nodes[0].env().Send(1, "untyped bulk") // no WireSize ⇒ counts as bulk
	settle()
	if got := nodes[1].count(); got != 1 {
		t.Fatalf("gray node received %d messages, want only the control one", got)
	}
	// The victim's outbound path is untouched: it still acks.
	nodes[1].env().Send(0, "ack")
	settle()
	if nodes[0].count() != 1 {
		t.Fatalf("gray node's outbound ack lost")
	}
	c.SetGray(1, 0)
	nodes[0].env().Send(1, sizedMsg{Body: "bulk again", Size: grayControlSize + 1})
	settle()
	if got := nodes[1].count(); got != 2 {
		t.Fatalf("restored node received %d messages, want 2", got)
	}
}

// TestLiveLinkDelayStillDelivers: an inflated link slows messages down
// without losing them, and a cleared factor restores the native latency.
func TestLiveLinkDelayStillDelivers(t *testing.T) {
	c, nodes := pingCluster(t, 2)
	c.SetLinkDelay(0, 1, 400) // 50 µs base ⇒ ≥ 20 ms inflated
	start := time.Now()
	nodes[0].env().Send(1, "slow")
	settle()
	if nodes[1].count() != 0 && time.Since(start) < 10*time.Millisecond {
		t.Fatalf("delayed link delivered within %v", time.Since(start))
	}
	deadline := time.Now().Add(5 * time.Second)
	for nodes[1].count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if nodes[1].count() != 1 {
		t.Fatal("delayed link lost the message")
	}
	c.SetLinkDelay(0, 1, 1)
	nodes[0].env().Send(1, "quick")
	settle()
	if nodes[1].count() != 2 {
		t.Fatalf("restored link received %d messages, want 2", nodes[1].count())
	}
}
