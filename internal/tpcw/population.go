package tpcw

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"robuststore/internal/xrand"
)

// PopConfig parameterizes the standard TPC-W population (paper §5.1: 10,000
// items with 30, 50 and 70 emulated browsers to produce 300, 500 and
// 700 MB initial states).
type PopConfig struct {
	// Items is NUM_ITEMS. Default 10000.
	Items int

	// EBs is the emulated-browser population parameter:
	// NUM_CUSTOMERS = 2880 × EBs, addresses 2×, orders 0.9×. Default 30.
	EBs int

	// Reduction divides the real in-memory entity counts while the
	// nominal state-size accounting stays at full TPC-W scale (see
	// DESIGN.md). Default 1 (full fidelity); the experiment harness
	// uses 4.
	Reduction int

	// Seed drives the deterministic generators.
	Seed uint64
}

func (c PopConfig) withDefaults() PopConfig {
	if c.Items == 0 {
		c.Items = 10000
	}
	if c.EBs == 0 {
		c.EBs = 30
	}
	if c.Reduction == 0 {
		c.Reduction = 1
	}
	return c
}

// FullCounts returns the unreduced TPC-W cardinalities for this
// configuration.
func (c PopConfig) FullCounts() (items, customers, addresses, orders, authors int) {
	c = c.withDefaults()
	items = c.Items
	customers = 2880 * c.EBs
	addresses = 2 * customers
	orders = customers * 9 / 10
	authors = c.Items / 4
	return items, customers, addresses, orders, authors
}

// PopulationInfo is the static knowledge a remote browser emulator has
// about the store: initial cardinalities and searchable vocabulary. RBEs
// generate requests from this alone, never by inspecting server state.
type PopulationInfo struct {
	Items        int
	Customers    int
	Subjects     []string
	TitleTokens  []string
	AuthorTokens []string
}

// subjects is the TPC-W subject list.
var subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
	"HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
	"NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
	"ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
	"YOUTH", "TRAVEL",
}

func canonicalSubject(s string) string { return strings.ToUpper(strings.TrimSpace(s)) }

// titleWords is the vocabulary for book titles (and therefore title
// search terms).
var titleWords = []string{
	"silent", "golden", "hidden", "broken", "ancient", "electric", "frozen",
	"burning", "crimson", "emerald", "velvet", "iron", "paper", "glass",
	"wooden", "copper", "silver", "shadow", "river", "mountain", "ocean",
	"desert", "forest", "island", "harbor", "garden", "castle", "bridge",
	"lantern", "compass", "mirror", "letter", "journey", "winter", "summer",
	"autumn", "spring", "thunder", "whisper", "horizon", "memory", "promise",
	"secret", "legacy", "fortune", "destiny", "harvest", "voyage", "refuge",
	"beacon",
}

// authorSyllables builds author last names.
var authorSyllables = []string{
	"al", "ber", "car", "dan", "el", "far", "gor", "han", "il", "jor",
	"kal", "lor", "mar", "nor", "ol", "per", "quin", "ros", "sal", "tor",
}

var countryNames = []string{
	"United States", "United Kingdom", "Canada", "Germany", "France",
	"Japan", "Netherlands", "Switzerland", "Australia", "Brazil",
}

// Populate builds a store with the standard TPC-W population.
func Populate(cfg PopConfig) *Store {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed*0x9e3779b97f4a7c15 + 7)

	fullItems, fullCustomers, fullAddresses, fullOrders, fullAuthors := cfg.FullCounts()
	items := fullItems / cfg.Reduction
	customers := fullCustomers / cfg.Reduction
	addresses := fullAddresses / cfg.Reduction
	orders := fullOrders / cfg.Reduction
	authors := fullAuthors / cfg.Reduction
	if items < 100 {
		items = minInt(100, fullItems)
	}
	if authors < 10 {
		authors = minInt(10, fullAuthors)
	}
	if customers < 10 {
		customers = minInt(10, fullCustomers)
	}

	base := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)
	cat := &catalog{
		authors:      make(map[AuthorID]Author, authors),
		bySubject:    make(map[string][]ItemID),
		newBySubject: make(map[string][]ItemID),
		titleIndex:   make(map[string][]ItemID),
		authorIndex:  make(map[string][]ItemID),
		subjects:     subjects,
		itemCount:    int32(items),
	}
	s := &Store{
		cat:       cat,
		items:     make(map[ItemID]*Item, items),
		customers: make(map[CustomerID]*Customer, customers),
		byUName:   make(map[string]CustomerID, customers),
		addresses: make(map[AddressID]*Address, addresses),
		orders:    make(map[OrderID]*Order, orders),
		carts:     make(map[CartID]Cart),
		bsQty:     make(map[ItemID]int64),
		lastOrder: make(map[CustomerID]OrderID, customers),
	}

	// Countries (TPC-W: 92 rows).
	for i := 1; i <= 92; i++ {
		name := "Country " + strconv.Itoa(i)
		if i <= len(countryNames) {
			name = countryNames[i-1]
		}
		cat.countries = append(cat.countries, Country{
			ID: CountryID(i), Name: name, Currency: "USD",
			Exchange: 1 + rng.Float64(),
		})
	}

	// Authors.
	for i := 1; i <= authors; i++ {
		a := Author{
			ID:    AuthorID(i),
			FName: "A" + strconv.Itoa(i),
			LName: authorName(rng),
			DOB:   base.AddDate(-30-rng.Intn(50), 0, 0),
			Bio:   "bio",
		}
		cat.authors[a.ID] = a
	}

	// Items.
	type pubEntry struct {
		id  ItemID
		pub time.Time
	}
	pubBySubject := make(map[string][]pubEntry)
	for i := 1; i <= items; i++ {
		id := ItemID(i)
		w1 := titleWords[rng.Intn(len(titleWords))]
		w2 := titleWords[rng.Intn(len(titleWords))]
		subject := subjects[rng.Intn(len(subjects))]
		author := AuthorID(rng.Intn(authors) + 1)
		srp := 10 + rng.Float64()*90
		item := Item{
			ID:        id,
			Title:     w1 + " " + w2 + " " + strconv.Itoa(i),
			Author:    author,
			PubDate:   base.AddDate(0, 0, -rng.Intn(3650)),
			Publisher: "PUB" + strconv.Itoa(rng.Intn(100)),
			Subject:   subject,
			Desc:      "desc",
			Thumbnail: "img/thumb/" + strconv.Itoa(i),
			Image:     "img/full/" + strconv.Itoa(i),
			SRP:       srp,
			Cost:      srp * (0.5 + rng.Float64()*0.5),
			Avail:     base,
			Stock:     int32(10 + rng.Intn(21)),
			ISBN:      "ISBN" + strconv.Itoa(i),
			PageCount: int32(100 + rng.Intn(900)),
			Backing:   "PAPERBACK",
		}
		for r := 0; r < 5; r++ {
			item.Related[r] = ItemID((i+r*131)%items + 1)
		}
		s.items[id] = &item
		cat.bySubject[subject] = append(cat.bySubject[subject], id)
		cat.titleIndex[w1] = append(cat.titleIndex[w1], id)
		if w2 != w1 {
			cat.titleIndex[w2] = append(cat.titleIndex[w2], id)
		}
		lname := strings.ToLower(cat.authors[author].LName)
		cat.authorIndex[lname] = append(cat.authorIndex[lname], id)
		pubBySubject[subject] = append(pubBySubject[subject], pubEntry{id: id, pub: item.PubDate})
	}
	for subject, entries := range pubBySubject {
		// Newest-first prefix of 50 (the new-products page).
		sort.Slice(entries, func(i, j int) bool {
			if !entries[i].pub.Equal(entries[j].pub) {
				return entries[i].pub.After(entries[j].pub)
			}
			return entries[i].id < entries[j].id
		})
		n := len(entries)
		if n > searchLimit {
			n = searchLimit
		}
		ids := make([]ItemID, 0, n)
		for _, e := range entries[:n] {
			ids = append(ids, e.id)
		}
		cat.newBySubject[subject] = ids
	}

	// Customers and their addresses.
	for i := 1; i <= customers; i++ {
		addr := s.addAddress(
			strconv.Itoa(rng.Intn(999))+" Main St", "",
			"City"+strconv.Itoa(rng.Intn(500)), "ST",
			strconv.Itoa(10000+rng.Intn(89999)),
			CountryID(rng.Intn(92)+1),
		)
		// Second address per customer (TPC-W: 2x addresses).
		s.addAddress(
			strconv.Itoa(rng.Intn(999))+" Second St", "",
			"City"+strconv.Itoa(rng.Intn(500)), "ST",
			strconv.Itoa(10000+rng.Intn(89999)),
			CountryID(rng.Intn(92)+1),
		)
		id := CustomerID(i)
		c := Customer{
			ID:         id,
			UName:      customerUName(id),
			Passwd:     customerPasswd(id),
			FName:      "F" + strconv.Itoa(i),
			LName:      authorName(rng),
			Addr:       addr,
			Phone:      strconv.Itoa(1000000000 + rng.Intn(899999999)),
			Email:      customerUName(id) + "@example.com",
			Since:      base.AddDate(0, 0, -rng.Intn(730)),
			LastLogin:  base,
			Login:      base,
			Expiration: base.Add(2 * time.Hour),
			Discount:   float64(rng.Intn(51)),
			BirthDate:  base.AddDate(-18-rng.Intn(60), 0, 0),
			Data:       "data",
		}
		s.customers[id] = &c
		s.byUName[c.UName] = id
	}
	s.nextCustomer = CustomerID(customers)

	// Historical orders (90 % of customers), newest last so the
	// recent-order ring holds the latest bestSellerWindow of them.
	for i := 1; i <= orders; i++ {
		s.nextOrder++
		oid := s.nextOrder
		cust := CustomerID(rng.Intn(customers) + 1)
		nLines := 1 + rng.Intn(4)
		lines := make([]OrderLine, 0, nLines)
		var subTotal float64
		for l := 0; l < nLines; l++ {
			iid := ItemID(rng.Intn(items) + 1)
			qty := int32(1 + rng.Intn(3))
			subTotal += s.items[iid].Cost * float64(qty)
			lines = append(lines, OrderLine{Item: iid, Qty: qty})
		}
		tax := subTotal * taxRate
		date := base.AddDate(0, 0, -rng.Intn(365))
		order := Order{
			ID:       oid,
			Customer: cust,
			Date:     date,
			SubTotal: subTotal,
			Tax:      tax,
			Total:    subTotal + tax + shippingCost(nLines),
			ShipType: "MAIL",
			ShipDate: date.AddDate(0, 0, 1+rng.Intn(7)),
			Status:   "SHIPPED",
			BillAddr: s.customers[cust].Addr,
			ShipAddr: s.customers[cust].Addr,
			Lines:    lines,
			CC: CCTransaction{
				Type: "VISA", Num: "4111111111111111",
				Name: s.customers[cust].FName, Expire: base.AddDate(2, 0, 0),
				AuthID: "AUTH" + strconv.FormatInt(int64(oid), 10),
				Total:  subTotal + tax, ShipAt: date, Country: 1,
			},
		}
		s.orders[oid] = &order
		s.lastOrder[cust] = oid
		s.pushRecentOrder(&order)
	}
	s.ordersSinceBS = 0
	s.bsCache = nil
	s.bsBySubject = nil

	// Nominal state size uses the *full* TPC-W cardinalities so the
	// checkpoint/recovery model sees the paper's 300/500/700 MB states
	// regardless of the in-memory reduction factor.
	s.nominalBytes = int64(fullItems)*nominalItem +
		int64(fullAuthors)*nominalAuthor +
		int64(fullCustomers)*nominalCustomer +
		int64(fullAddresses)*nominalAddress +
		int64(fullOrders)*(nominalOrder+nominalCC+3*nominalLine)

	return s
}

// Info returns the RBE-visible population knowledge.
func (s *Store) Info() PopulationInfo {
	info := PopulationInfo{
		Items:     int(s.cat.itemCount),
		Customers: len(s.customers),
		Subjects:  s.cat.subjects,
	}
	for w := range s.cat.titleIndex {
		info.TitleTokens = append(info.TitleTokens, w)
	}
	for w := range s.cat.authorIndex {
		info.AuthorTokens = append(info.AuthorTokens, w)
	}
	// Deterministic order for reproducible workloads.
	sort.Strings(info.TitleTokens)
	sort.Strings(info.AuthorTokens)
	return info
}

func authorName(rng *xrand.Rand) string {
	n := 2 + rng.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(authorSyllables[rng.Intn(len(authorSyllables))])
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
