package tpcw

// This file defines the bookstore's first genuinely multi-shard
// workloads (ROADMAP item 1): cross-session gift orders — one customer's
// cart purchased for a customer homed on another shard — and admin
// inventory sweeps that reprice an item set spanning groups. Both exist
// in two forms:
//
//   - a merged single-group action (GiftOrderAction; a sweep whose items
//     all route to one group), submitted directly like any other action
//     when every participant collapses to one group — the fast path that
//     stays bit-identical to the pre-transaction submit path; and
//   - per-group branch actions (GiftDebitAction/GiftDeliverAction; an
//     InventorySweepAction per participant group), carried inside
//     core.TxnPrepare records and applied atomically across groups by
//     the 2PC driver (internal/webtier).
//
// As everywhere in this package, every branch is deterministic: the
// coordinator resolves all pricing (GiftQuote) and clock reads before the
// branches are submitted, so the debit and the delivery agree on totals
// without ever reading each other's group.

import "time"

// GiftOrderAction is the merged single-group gift purchase: consume the
// buyer's cart, charge the buyer, and create the order for the recipient
// — BuyConfirm's atomicity, but with distinct paying and receiving
// customers. Only valid when buyer and recipient are homed on the same
// group; the cross-group form is the GiftDebit/GiftDeliver branch pair.
type GiftOrderAction struct {
	Cart      CartID
	Buyer     CustomerID
	Recipient CustomerID
	ShipType  string
	ShipDate  time.Time
	Tag       string // audit tag, stamped on the order lines
	Now       time.Time
}

// GiftDebitAction is the buyer-group branch of a cross-shard gift order:
// consume the cart and charge the buyer the coordinator-quoted total.
type GiftDebitAction struct {
	Cart  CartID
	Buyer CustomerID
	Total float64
	Tag   string
	Now   time.Time
}

// GiftDeliverAction is the recipient-group branch: create the order (with
// the TPC-W stock rule on its lines) for the recipient. Lines and totals
// were priced by the coordinator against the buyer group's cart, so this
// branch never reads remote state.
type GiftDeliverAction struct {
	Recipient CustomerID
	Lines     []OrderLine
	SubTotal  float64
	Tax       float64
	Total     float64
	ShipType  string
	ShipDate  time.Time
	Tag       string
	Now       time.Time
}

// InventorySweepAction reprices a set of items to one cost — the admin
// inventory sweep. A cross-shard sweep submits one of these per
// participant group, each carrying the items that group owns; the unique
// Cost value doubles as the atomicity audit marker (a half-applied sweep
// leaves some groups repriced and others not).
type InventorySweepAction struct {
	Items []ItemID
	Cost  float64
	Tag   string
	Now   time.Time
}

// GiftOrderResult is GiftOrderAction's result.
type GiftOrderResult struct {
	Order OrderID
	Total float64
	Err   string
}

// GiftDebitResult is GiftDebitAction's result.
type GiftDebitResult struct {
	Err string
}

// GiftDeliverResult is GiftDeliverAction's result.
type GiftDeliverResult struct {
	Order OrderID
	Err   string
}

// InventorySweepResult is InventorySweepAction's result.
type InventorySweepResult struct {
	Updated int
}

// StageTxn implements core.TxnStager: validate a branch action against
// current state without mutating it (the prepare vote). Unknown actions
// vote yes — commit then surfaces any error in the action's own result.
func (s *Store) StageTxn(action any) string {
	switch a := action.(type) {
	case GiftDebitAction:
		cart, ok := s.carts[a.Cart]
		if !ok || len(cart.Lines) == 0 {
			return "empty or unknown cart"
		}
		if _, ok := s.customers[a.Buyer]; !ok {
			return "unknown buyer"
		}
		return ""
	case GiftDeliverAction:
		if _, ok := s.customers[a.Recipient]; !ok {
			return "unknown recipient"
		}
		if len(a.Lines) == 0 {
			return "no order lines"
		}
		return ""
	case InventorySweepAction:
		for _, id := range a.Items {
			if _, ok := s.items[id]; !ok {
				return "unknown item"
			}
		}
		return ""
	default:
		return ""
	}
}

// GiftQuote prices a cart for a gift purchase: the order lines (stamped
// with the audit tag), subtotal, tax and total, using the buyer's
// discount — exactly the pricing applyBuyConfirm would compute.
// Read-only; the coordinator calls it on the buyer's group before
// building the branches, so both branches carry identical totals.
func (s *Store) GiftQuote(cart CartID, buyer CustomerID, tag string) (lines []OrderLine, subTotal, tax, total float64, errs string) {
	c, ok := s.carts[cart]
	if !ok || len(c.Lines) == 0 {
		return nil, 0, 0, 0, "empty or unknown cart"
	}
	cust, ok := s.customers[buyer]
	if !ok {
		return nil, 0, 0, 0, "unknown buyer"
	}
	for _, cl := range c.Lines {
		item, ok := s.items[cl.Item]
		if !ok {
			continue
		}
		subTotal += item.Cost * float64(cl.Qty) * (1 - cust.Discount/100)
		lines = append(lines, OrderLine{
			Item:     cl.Item,
			Qty:      cl.Qty,
			Discount: cust.Discount,
			Comments: tag,
		})
	}
	if len(lines) == 0 {
		return nil, 0, 0, 0, "no valid items"
	}
	tax = subTotal * taxRate
	total = subTotal + tax + shippingCost(len(lines))
	return lines, subTotal, tax, total, ""
}

func (s *Store) applyGiftOrder(a GiftOrderAction) GiftOrderResult {
	lines, subTotal, tax, total, errs := s.GiftQuote(a.Cart, a.Buyer, a.Tag)
	if errs != "" {
		return GiftOrderResult{Err: errs}
	}
	if _, ok := s.customers[a.Recipient]; !ok {
		return GiftOrderResult{Err: "unknown recipient"}
	}
	if deb := s.applyGiftDebit(GiftDebitAction{Cart: a.Cart, Buyer: a.Buyer, Total: total, Tag: a.Tag, Now: a.Now}); deb.Err != "" {
		return GiftOrderResult{Err: deb.Err}
	}
	del := s.applyGiftDeliver(GiftDeliverAction{
		Recipient: a.Recipient, Lines: lines,
		SubTotal: subTotal, Tax: tax, Total: total,
		ShipType: a.ShipType, ShipDate: a.ShipDate, Tag: a.Tag, Now: a.Now,
	})
	if del.Err != "" {
		return GiftOrderResult{Err: del.Err}
	}
	return GiftOrderResult{Order: del.Order, Total: total}
}

func (s *Store) applyGiftDebit(a GiftDebitAction) GiftDebitResult {
	cart, ok := s.carts[a.Cart]
	if !ok {
		return GiftDebitResult{Err: "unknown cart"}
	}
	custp, ok := s.customers[a.Buyer]
	if !ok {
		return GiftDebitResult{Err: "unknown buyer"}
	}
	cust := *custp // copy-on-write

	// The purchased cart is consumed.
	delete(s.carts, a.Cart)
	s.nominalBytes -= nominalCart + int64(len(cart.Lines))*nominalCartLine
	s.killCart(a.Cart)

	cust.Balance += a.Total
	cust.YTDPmt += a.Total
	s.customers[a.Buyer] = &cust
	s.markCustomer(a.Buyer)
	return GiftDebitResult{}
}

func (s *Store) applyGiftDeliver(a GiftDeliverAction) GiftDeliverResult {
	custp, ok := s.customers[a.Recipient]
	if !ok {
		return GiftDeliverResult{Err: "unknown recipient"}
	}
	// TPC-W stock rule on the delivered lines (copy-on-write).
	for _, l := range a.Lines {
		item, ok := s.items[l.Item]
		if !ok {
			continue
		}
		cp := *item
		cp.Stock -= l.Qty
		if cp.Stock < 10 {
			cp.Stock += 21
		}
		s.items[l.Item] = &cp
		s.markItem(l.Item)
	}
	s.nextOrder++
	oid := s.nextOrder
	order := Order{
		ID:       oid,
		Customer: a.Recipient,
		Date:     a.Now,
		SubTotal: a.SubTotal,
		Tax:      a.Tax,
		Total:    a.Total,
		ShipType: a.ShipType,
		ShipDate: a.ShipDate,
		Status:   "GIFT",
		BillAddr: custp.Addr,
		ShipAddr: custp.Addr,
		Lines:    a.Lines,
	}
	s.orders[oid] = &order
	s.lastOrder[a.Recipient] = oid
	s.pushRecentOrder(&order)
	s.nominalBytes += nominalOrder + int64(len(a.Lines))*nominalLine
	s.markOrder(oid)
	s.markLastOrder(a.Recipient)
	return GiftDeliverResult{Order: oid}
}

func (s *Store) applyInventorySweep(a InventorySweepAction) InventorySweepResult {
	updated := 0
	for _, id := range a.Items {
		old, ok := s.items[id]
		if !ok {
			continue
		}
		cp := *old // copy-on-write
		cp.Cost = a.Cost
		cp.SweptTag = a.Tag
		s.items[id] = &cp
		s.markItem(id)
		updated++
	}
	return InventorySweepResult{Updated: updated}
}

// OrdersTagged counts orders whose lines carry the audit tag — the
// consistency audit's exactly-once check: a committed gift order leaves
// exactly one tagged order on the recipient's group, an aborted or lost
// one leaves zero, a duplicated one more. Read-only; audit use, not a
// hot path.
func (s *Store) OrdersTagged(tag string) int {
	n := 0
	for _, o := range s.orders {
		for _, l := range o.Lines {
			if l.Comments == tag {
				n++
				break
			}
		}
	}
	return n
}
