package tpcw

import (
	"fmt"
	"strconv"
	"time"
)

// This file defines the write actions of the bookstore — the deterministic
// transformations of the original SQL transactions (paper §4, task II).
// Every field that a centralized implementation would obtain from the
// clock or a random number generator is a parameter, filled in by the
// caller before the action is submitted for total ordering.

// CreateCartAction creates an empty shopping cart (TPC-W createEmptyCart).
type CreateCartAction struct {
	Now time.Time
}

// CartUpdateAction adds an item to a cart and/or updates line quantities
// (TPC-W addItem / refreshCart). Cart 0 creates a new cart first, making
// the shopping-cart interaction a single atomic action as in the original
// SQL transaction. If the cart would remain empty and RandomItem is set,
// that item is added — the "add random item if necessary" rule with the
// randomness resolved by the caller.
type CartUpdateAction struct {
	Cart       CartID
	AddItem    ItemID // 0 = none
	AddQty     int32
	SetLines   []CartLine // quantity updates; qty 0 removes the line
	RandomItem ItemID     // caller-chosen fallback item
	Now        time.Time
}

// CreateCustomerAction registers a new customer (TPC-W
// createNewCustomer). Discount is the caller-drawn random discount.
type CreateCustomerAction struct {
	FName     string
	LName     string
	Street1   string
	Street2   string
	City      string
	State     string
	Zip       string
	Country   CountryID
	Phone     string
	Email     string
	BirthDate time.Time
	Data      string
	Discount  float64
	Now       time.Time
}

// RefreshSessionAction updates a customer's login/expiration times (TPC-W
// refreshSession).
type RefreshSessionAction struct {
	Customer CustomerID
	Now      time.Time
}

// BuyConfirmAction turns a cart into an order (TPC-W doBuyConfirm): order
// plus order lines plus credit-card transaction, with the TPC-W stock
// rule (decrement; if the result drops below 10, restock by 21).
type BuyConfirmAction struct {
	Cart     CartID
	Customer CustomerID
	CCType   string
	CCNum    string
	CCName   string
	CCExpire time.Time
	ShipType string
	ShipDate time.Time // caller-computed: Now + random 1..7 days
	Comment  string
	Now      time.Time
}

// AdminUpdateAction is the admin confirm interaction (TPC-W adminUpdate):
// update an item's cost and images and recompute its related items from
// co-purchases in recent orders.
type AdminUpdateAction struct {
	Item      ItemID
	Cost      float64
	Image     string
	Thumbnail string
	Now       time.Time
}

// Results.

// CreateCartResult returns the new cart's identity.
type CreateCartResult struct {
	Cart CartID
}

// CreateCustomerResult returns the new customer row.
type CreateCustomerResult struct {
	Customer Customer
}

// BuyConfirmResult returns the new order's identity and totals.
type BuyConfirmResult struct {
	Order OrderID
	Total float64
	Err   string // non-empty when the cart or customer is unknown
}

// CartResult returns the cart after an update.
type CartResult struct {
	Cart Cart
	Err  string
}

// Apply executes one action deterministically and returns its result. It
// implements the Execute half of core.StateMachine for the bookstore.
func (s *Store) Apply(action any) any {
	switch a := action.(type) {
	case CreateCartAction:
		return s.applyCreateCart(a)
	case CartUpdateAction:
		return s.applyCartUpdate(a)
	case CreateCustomerAction:
		return s.applyCreateCustomer(a)
	case RefreshSessionAction:
		return s.applyRefreshSession(a)
	case BuyConfirmAction:
		return s.applyBuyConfirm(a)
	case AdminUpdateAction:
		return s.applyAdminUpdate(a)
	case GiftOrderAction:
		return s.applyGiftOrder(a)
	case GiftDebitAction:
		return s.applyGiftDebit(a)
	case GiftDeliverAction:
		return s.applyGiftDeliver(a)
	case InventorySweepAction:
		return s.applyInventorySweep(a)
	default:
		return fmt.Errorf("tpcw: unknown action %T", action)
	}
}

// ActionSize models the serialized size in bytes of an action, for
// network/disk accounting.
func ActionSize(action any) int64 {
	switch a := action.(type) {
	case CreateCartAction:
		return 48
	case CartUpdateAction:
		return 72 + int64(len(a.SetLines))*12
	case CreateCustomerAction:
		return 220
	case RefreshSessionAction:
		return 40
	case BuyConfirmAction:
		return 160
	case AdminUpdateAction:
		return 96
	case GiftOrderAction:
		return 120
	case GiftDebitAction:
		return 72
	case GiftDeliverAction:
		return 112 + int64(len(a.Lines))*24
	case InventorySweepAction:
		return 56 + int64(len(a.Items))*8
	default:
		return 64
	}
}

func (s *Store) applyCreateCart(a CreateCartAction) CreateCartResult {
	s.nextCart++
	id := s.nextCart
	s.carts[id] = Cart{ID: id, Time: a.Now}
	s.nominalBytes += nominalCart
	s.markCart(id)
	return CreateCartResult{Cart: id}
}

func (s *Store) applyCartUpdate(a CartUpdateAction) CartResult {
	cart, ok := s.carts[a.Cart]
	if !ok {
		// Cart 0 means "create"; a non-zero unknown cart (consumed by an
		// earlier purchase whose reply was lost, or expired) is
		// recreated when the interaction carries a fallback item, as
		// the TPC-W shopping-cart page does. Without a fallback the
		// caller gets an error.
		if a.Cart != 0 && a.AddItem == 0 && a.RandomItem == 0 {
			return CartResult{Err: "no such cart"}
		}
		s.nextCart++
		cart = Cart{ID: s.nextCart, Time: a.Now}
		s.nominalBytes += nominalCart
	}
	if a.AddItem != 0 {
		if _, ok := s.items[a.AddItem]; ok {
			qty := a.AddQty
			if qty <= 0 {
				qty = 1
			}
			cart = cartAdd(cart, a.AddItem, qty)
			s.nominalBytes += nominalCartLine
		}
	}
	for _, set := range a.SetLines {
		cart = cartSet(cart, set.Item, set.Qty)
	}
	if len(cart.Lines) == 0 && a.RandomItem != 0 {
		if _, ok := s.items[a.RandomItem]; ok {
			cart = cartAdd(cart, a.RandomItem, 1)
			s.nominalBytes += nominalCartLine
		}
	}
	cart.Time = a.Now
	s.carts[cart.ID] = cart
	s.markCart(cart.ID)
	return CartResult{Cart: cart}
}

func cartAdd(c Cart, item ItemID, qty int32) Cart {
	for i := range c.Lines {
		if c.Lines[i].Item == item {
			lines := append([]CartLine(nil), c.Lines...)
			lines[i].Qty += qty
			c.Lines = lines
			return c
		}
	}
	c.Lines = append(append([]CartLine(nil), c.Lines...), CartLine{Item: item, Qty: qty})
	return c
}

func cartSet(c Cart, item ItemID, qty int32) Cart {
	lines := make([]CartLine, 0, len(c.Lines))
	for _, l := range c.Lines {
		if l.Item == item {
			if qty > 0 {
				lines = append(lines, CartLine{Item: item, Qty: qty})
			}
			continue
		}
		lines = append(lines, l)
	}
	c.Lines = lines
	return c
}

func (s *Store) applyCreateCustomer(a CreateCustomerAction) CreateCustomerResult {
	addr := s.addAddress(a.Street1, a.Street2, a.City, a.State, a.Zip, a.Country)
	s.nextCustomer++
	id := s.nextCustomer
	c := Customer{
		ID:         id,
		UName:      customerUName(id),
		Passwd:     customerPasswd(id),
		FName:      a.FName,
		LName:      a.LName,
		Addr:       addr,
		Phone:      a.Phone,
		Email:      a.Email,
		Since:      a.Now,
		LastLogin:  a.Now,
		Login:      a.Now,
		Expiration: a.Now.Add(2 * time.Hour),
		Discount:   a.Discount,
		BirthDate:  a.BirthDate,
		Data:       a.Data,
	}
	s.customers[id] = &c
	s.byUName[c.UName] = id
	s.nominalBytes += nominalCustomer
	s.markCustomer(id)
	return CreateCustomerResult{Customer: c}
}

func (s *Store) addAddress(st1, st2, city, state, zip string, country CountryID) AddressID {
	s.nextAddress++
	id := s.nextAddress
	if int(country) < 1 || int(country) > len(s.cat.countries) {
		country = 1
	}
	s.addresses[id] = &Address{
		ID: id, Street1: st1, Street2: st2, City: city, State: state,
		Zip: zip, Country: country,
	}
	s.nominalBytes += nominalAddress
	s.markAddress(id)
	return id
}

func (s *Store) applyRefreshSession(a RefreshSessionAction) any {
	old, ok := s.customers[a.Customer]
	if !ok {
		return nil
	}
	c := *old // copy-on-write
	c.LastLogin = c.Login
	c.Login = a.Now
	c.Expiration = a.Now.Add(2 * time.Hour)
	s.customers[a.Customer] = &c
	s.markCustomer(a.Customer)
	return nil
}

// taxRate is the fixed TPC-W sales tax.
const taxRate = 0.0825

func (s *Store) applyBuyConfirm(a BuyConfirmAction) BuyConfirmResult {
	cart, ok := s.carts[a.Cart]
	if !ok || len(cart.Lines) == 0 {
		return BuyConfirmResult{Err: "empty or unknown cart"}
	}
	custp, ok := s.customers[a.Customer]
	if !ok {
		return BuyConfirmResult{Err: "unknown customer"}
	}
	cust := *custp // copy-on-write

	var subTotal float64
	lines := make([]OrderLine, 0, len(cart.Lines))
	for _, cl := range cart.Lines {
		item, ok := s.items[cl.Item]
		if !ok {
			continue
		}
		subTotal += item.Cost * float64(cl.Qty) * (1 - cust.Discount/100)
		lines = append(lines, OrderLine{
			Item:     cl.Item,
			Qty:      cl.Qty,
			Discount: cust.Discount,
			Comments: a.Comment,
		})
		// TPC-W stock rule (copy-on-write on the shared item).
		cp := *item
		cp.Stock -= cl.Qty
		if cp.Stock < 10 {
			cp.Stock += 21
		}
		s.items[cl.Item] = &cp
		s.markItem(cl.Item)
	}
	if len(lines) == 0 {
		return BuyConfirmResult{Err: "no valid items"}
	}
	tax := subTotal * taxRate
	total := subTotal + tax + shippingCost(len(lines))

	s.nextOrder++
	oid := s.nextOrder
	order := Order{
		ID:       oid,
		Customer: a.Customer,
		Date:     a.Now,
		SubTotal: subTotal,
		Tax:      tax,
		Total:    total,
		ShipType: a.ShipType,
		ShipDate: a.ShipDate,
		Status:   "PENDING",
		BillAddr: cust.Addr,
		ShipAddr: cust.Addr,
		Lines:    lines,
		CC: CCTransaction{
			Type:    a.CCType,
			Num:     a.CCNum,
			Name:    a.CCName,
			Expire:  a.CCExpire,
			AuthID:  "AUTH" + strconv.FormatInt(int64(oid), 10),
			Total:   total,
			ShipAt:  a.ShipDate,
			Country: s.addresses[cust.Addr].Country,
		},
	}
	s.orders[oid] = &order
	s.lastOrder[a.Customer] = oid
	s.pushRecentOrder(&order)
	s.nominalBytes += nominalOrder + nominalCC + int64(len(lines))*nominalLine
	s.markOrder(oid)
	s.markLastOrder(a.Customer)

	// The purchased cart is consumed.
	delete(s.carts, a.Cart)
	s.nominalBytes -= nominalCart + int64(len(cart.Lines))*nominalCartLine
	s.killCart(a.Cart)

	cust.Balance += total
	cust.YTDPmt += total
	s.customers[a.Customer] = &cust
	s.markCustomer(a.Customer)

	return BuyConfirmResult{Order: oid, Total: total}
}

// shippingCost mirrors TPC-W's flat-plus-per-item shipping charge.
func shippingCost(items int) float64 { return 3.0 + float64(items)*1.0 }

// pushRecentOrder admits an order to the best-sellers window, maintaining
// the rolling quantity aggregate incrementally.
func (s *Store) pushRecentOrder(o *Order) {
	if s.bsQty == nil {
		s.bsQty = make(map[ItemID]int64)
	}
	s.recentOrders = append(s.recentOrders, o.ID)
	for _, l := range o.Lines {
		s.bsQty[l.Item] += int64(l.Qty)
		s.bsIndexSync(l.Item)
	}
	if len(s.recentOrders) > bestSellerWindow {
		evicted := s.recentOrders[0]
		s.recentOrders = s.recentOrders[1:]
		if old, ok := s.orders[evicted]; ok {
			for _, l := range old.Lines {
				if q := s.bsQty[l.Item] - int64(l.Qty); q > 0 {
					s.bsQty[l.Item] = q
				} else {
					delete(s.bsQty, l.Item)
				}
				s.bsIndexSync(l.Item)
			}
		}
	}
	s.ordersSinceBS++
	if s.ordersSinceBS >= bestSellerRefresh {
		s.ordersSinceBS = 0
		s.bsCache = make(map[string][]BestSeller)
	}
}

func (s *Store) applyAdminUpdate(a AdminUpdateAction) any {
	old, ok := s.items[a.Item]
	if !ok {
		return nil
	}
	item := *old // copy-on-write
	item.Cost = a.Cost
	item.Image = a.Image
	item.Thumbnail = a.Thumbnail
	// Recompute related items from co-purchases in the recent-order
	// window (deterministic: ordered scan, stable tie-break by item id).
	item.Related = s.relatedFromOrders(a.Item)
	s.items[a.Item] = &item
	s.markItem(a.Item)
	return nil
}

// relatedFromOrders finds the five items most frequently bought together
// with the given item over the recent-order window.
func (s *Store) relatedFromOrders(id ItemID) [5]ItemID {
	counts := make(map[ItemID]int)
	for _, oid := range s.recentOrders {
		order, ok := s.orders[oid]
		if !ok {
			continue
		}
		has := false
		for _, l := range order.Lines {
			if l.Item == id {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		for _, l := range order.Lines {
			if l.Item != id {
				counts[l.Item]++
			}
		}
	}
	var related [5]ItemID
	for slot := 0; slot < 5; slot++ {
		best := ItemID(0)
		bestN := 0
		for iid, n := range counts {
			if n > bestN || (n == bestN && n > 0 && iid < best) {
				best, bestN = iid, n
			}
		}
		if best == 0 {
			// Fall back to catalog neighbours so the page always has
			// five entries, as in the reference implementation.
			next := (int32(id)+int32(slot))%s.cat.itemCount + 1
			related[slot] = ItemID(next)
			continue
		}
		related[slot] = best
		delete(counts, best)
	}
	return related
}

func customerUName(id CustomerID) string { return "C" + strconv.FormatInt(int64(id), 10) }
func customerPasswd(id CustomerID) string {
	return "pw" + strconv.FormatInt(int64(id), 10)
}
