package tpcw

import "strconv"

// PartitionKey extracts the shard-routing key of a bookstore action for
// hash-partitioned deployments (internal/shard): the identity of the row
// group the action touches first. Actions whose identity is assigned only
// at execution time (creating a cart or a customer) have no intrinsic key
// and return ok=false — the caller routes those by its own session key,
// which also keeps a session's later cart and customer actions on the
// shard that created them (per-shard ID counters make raw IDs ambiguous
// across shards).
func PartitionKey(action any) (key string, ok bool) {
	switch a := action.(type) {
	case CartUpdateAction:
		if a.Cart != 0 {
			return "cart/" + strconv.FormatInt(int64(a.Cart), 10), true
		}
		return "", false
	case BuyConfirmAction:
		if a.Cart != 0 {
			return "cart/" + strconv.FormatInt(int64(a.Cart), 10), true
		}
		return "customer/" + strconv.FormatInt(int64(a.Customer), 10), true
	case RefreshSessionAction:
		return "customer/" + strconv.FormatInt(int64(a.Customer), 10), true
	case AdminUpdateAction:
		return "item/" + strconv.FormatInt(int64(a.Item), 10), true
	case GiftOrderAction:
		// The merged single-group form lives where the buyer's cart does.
		return "cart/" + strconv.FormatInt(int64(a.Cart), 10), true
	case GiftDebitAction:
		return "cart/" + strconv.FormatInt(int64(a.Cart), 10), true
	case GiftDeliverAction:
		return "customer/" + strconv.FormatInt(int64(a.Recipient), 10), true
	case InventorySweepAction:
		// A sweep branch carries one group's item set; there is no single
		// row key — the 2PC driver dispatches it by participant group.
		return "", false
	case CreateCartAction, CreateCustomerAction:
		return "", false
	default:
		return "", false
	}
}

// TxnKeys lists a branch action's conflict keys: while the branch is
// prepared, the web tier holds conflicting writes on these keys until the
// outcome record releases them (core.TxnBlocks).
func TxnKeys(action any) []string {
	switch a := action.(type) {
	case GiftDebitAction:
		return []string{
			"cart/" + strconv.FormatInt(int64(a.Cart), 10),
			"customer/" + strconv.FormatInt(int64(a.Buyer), 10),
		}
	case GiftDeliverAction:
		return []string{"customer/" + strconv.FormatInt(int64(a.Recipient), 10)}
	case InventorySweepAction:
		keys := make([]string, 0, len(a.Items))
		for _, id := range a.Items {
			keys = append(keys, "item/"+strconv.FormatInt(int64(id), 10))
		}
		return keys
	default:
		if key, ok := PartitionKey(action); ok {
			return []string{key}
		}
		return nil
	}
}

// SessionKey is the partition key of a client session: the routing level
// the web tier and the live command use, guaranteeing that every action
// of one session — cart creation included — lands on one shard.
func SessionKey(client int64) string {
	return "session/" + strconv.FormatInt(client, 10)
}
