package tpcw

import "strconv"

// PartitionKey extracts the shard-routing key of a bookstore action for
// hash-partitioned deployments (internal/shard): the identity of the row
// group the action touches first. Actions whose identity is assigned only
// at execution time (creating a cart or a customer) have no intrinsic key
// and return ok=false — the caller routes those by its own session key,
// which also keeps a session's later cart and customer actions on the
// shard that created them (per-shard ID counters make raw IDs ambiguous
// across shards).
func PartitionKey(action any) (key string, ok bool) {
	switch a := action.(type) {
	case CartUpdateAction:
		if a.Cart != 0 {
			return "cart/" + strconv.FormatInt(int64(a.Cart), 10), true
		}
		return "", false
	case BuyConfirmAction:
		if a.Cart != 0 {
			return "cart/" + strconv.FormatInt(int64(a.Cart), 10), true
		}
		return "customer/" + strconv.FormatInt(int64(a.Customer), 10), true
	case RefreshSessionAction:
		return "customer/" + strconv.FormatInt(int64(a.Customer), 10), true
	case AdminUpdateAction:
		return "item/" + strconv.FormatInt(int64(a.Item), 10), true
	case CreateCartAction, CreateCustomerAction:
		return "", false
	default:
		return "", false
	}
}

// SessionKey is the partition key of a client session: the routing level
// the web tier and the live command use, guaranteeing that every action
// of one session — cart creation included — lands on one shard.
func SessionKey(client int64) string {
	return "session/" + strconv.FormatInt(client, 10)
}
