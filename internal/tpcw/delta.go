package tpcw

import "sort"

// This file implements the incremental-checkpoint capability
// (core.DeltaSnapshotter) for the bookstore: per-table dirty-key
// tracking maintained by every write action, a delta payload holding
// only the rows dirtied since the previous checkpoint, and the merge
// that replays such payloads onto their base during recovery.
//
// Row deletions: the only rows regular actions delete are consumed
// shopping carts (doBuyConfirm), so the delta carries cart tombstones.
// Wholesale deletions (DropOwned, during a shard rebalance) cannot be
// expressed as a keyed upsert — they clear deltaBase, which makes
// SnapshotDelta fail until the next full Snapshot anchors a fresh base,
// so dropped rows can never resurrect from a stale delta layer.
//
// The small rolling aggregates — the best-sellers window and its
// quantity index, the ID counters and the nominal state size — travel
// wholesale in every delta: they mutate with nearly every order, and
// carrying them verbatim keeps ApplyDelta trivially exact.

// DeltaSnap is the incremental-checkpoint payload: the rows dirtied
// since the previous checkpoint. Like full snapshots it shares
// pointed-to rows under the store's copy-on-write discipline.
type DeltaSnap struct {
	Items     map[ItemID]*Item
	Customers map[CustomerID]*Customer
	Addresses map[AddressID]*Address
	Orders    map[OrderID]*Order
	Carts     map[CartID]Cart
	DeadCarts []CartID // carts consumed by purchases (tombstones)
	LastOrder map[CustomerID]OrderID

	// Aggregates carried wholesale (small next to the row maps).
	RecentOrders []OrderID
	BsQty        map[ItemID]int64
	NextAddress  AddressID
	NextCustomer CustomerID
	NextOrder    OrderID
	NextCart     CartID
	NominalBytes int64 // full-state nominal size after applying

	Bytes int64 // nominal serialized size of this delta
}

// storeDirty is the per-table dirty-key tracking. Maps are lazily
// allocated so zero-value and restored stores need no constructor.
type storeDirty struct {
	items     map[ItemID]struct{}
	customers map[CustomerID]struct{}
	addresses map[AddressID]struct{}
	orders    map[OrderID]struct{}
	carts     map[CartID]struct{}
	deadCarts map[CartID]struct{}
	lastOrder map[CustomerID]struct{}
}

func (s *Store) markItem(id ItemID) {
	if s.dirty.items == nil {
		s.dirty.items = make(map[ItemID]struct{})
	}
	s.dirty.items[id] = struct{}{}
}

func (s *Store) markCustomer(id CustomerID) {
	if s.dirty.customers == nil {
		s.dirty.customers = make(map[CustomerID]struct{})
	}
	s.dirty.customers[id] = struct{}{}
}

func (s *Store) markAddress(id AddressID) {
	if s.dirty.addresses == nil {
		s.dirty.addresses = make(map[AddressID]struct{})
	}
	s.dirty.addresses[id] = struct{}{}
}

func (s *Store) markOrder(id OrderID) {
	if s.dirty.orders == nil {
		s.dirty.orders = make(map[OrderID]struct{})
	}
	s.dirty.orders[id] = struct{}{}
}

func (s *Store) markCart(id CartID) {
	if s.dirty.carts == nil {
		s.dirty.carts = make(map[CartID]struct{})
	}
	s.dirty.carts[id] = struct{}{}
}

func (s *Store) markLastOrder(id CustomerID) {
	if s.dirty.lastOrder == nil {
		s.dirty.lastOrder = make(map[CustomerID]struct{})
	}
	s.dirty.lastOrder[id] = struct{}{}
}

// killCart records a cart deletion: it leaves the current delta as a
// tombstone, not an upsert. Cart IDs are monotone, so a dead ID is never
// re-created by an action (an import may revive one; see ImportOwned).
func (s *Store) killCart(id CartID) {
	delete(s.dirty.carts, id)
	if s.dirty.deadCarts == nil {
		s.dirty.deadCarts = make(map[CartID]struct{})
	}
	s.dirty.deadCarts[id] = struct{}{}
}

// resetDirty clears the tracking and re-anchors the delta chain: the
// next delta is relative to the state as of this call.
func (s *Store) resetDirty() {
	s.dirty = storeDirty{}
	s.deltaBase = true
}

// SnapshotDelta implements core.DeltaSnapshotter: the rows dirtied since
// the previous checkpoint, plus their nominal size. Fails (ok=false)
// until a full Snapshot anchors the chain, and after a DropOwned.
func (s *Store) SnapshotDelta() (any, int64, bool) {
	if !s.deltaBase {
		return nil, 0, false
	}
	snap := DeltaSnap{
		Items:        make(map[ItemID]*Item, len(s.dirty.items)),
		Customers:    make(map[CustomerID]*Customer, len(s.dirty.customers)),
		Addresses:    make(map[AddressID]*Address, len(s.dirty.addresses)),
		Orders:       make(map[OrderID]*Order, len(s.dirty.orders)),
		Carts:        make(map[CartID]Cart, len(s.dirty.carts)),
		LastOrder:    make(map[CustomerID]OrderID, len(s.dirty.lastOrder)),
		RecentOrders: append([]OrderID(nil), s.recentOrders...),
		BsQty:        make(map[ItemID]int64, len(s.bsQty)),
		NextAddress:  s.nextAddress,
		NextCustomer: s.nextCustomer,
		NextOrder:    s.nextOrder,
		NextCart:     s.nextCart,
		NominalBytes: s.nominalBytes,
	}
	var bytes int64 = 128
	for id := range s.dirty.items {
		if it, ok := s.items[id]; ok {
			snap.Items[id] = it
			bytes += nominalItem
		}
	}
	for id := range s.dirty.customers {
		if c, ok := s.customers[id]; ok {
			snap.Customers[id] = c
			bytes += nominalCustomer
		}
	}
	for id := range s.dirty.addresses {
		if a, ok := s.addresses[id]; ok {
			snap.Addresses[id] = a
			bytes += nominalAddress
		}
	}
	for id := range s.dirty.orders {
		if o, ok := s.orders[id]; ok {
			snap.Orders[id] = o
			bytes += nominalOrderBytes(o)
		}
	}
	for id := range s.dirty.carts {
		if c, ok := s.carts[id]; ok {
			c.Lines = append([]CartLine(nil), c.Lines...)
			snap.Carts[id] = c
			bytes += nominalCartBytes(c)
		}
	}
	for id := range s.dirty.deadCarts {
		snap.DeadCarts = append(snap.DeadCarts, id)
		bytes += 8
	}
	sort.Slice(snap.DeadCarts, func(i, j int) bool { return snap.DeadCarts[i] < snap.DeadCarts[j] })
	for id := range s.dirty.lastOrder {
		if oid, ok := s.lastOrder[id]; ok {
			snap.LastOrder[id] = oid
			bytes += 8
		}
	}
	for k, v := range s.bsQty {
		snap.BsQty[k] = v
	}
	bytes += 4*int64(len(snap.RecentOrders)) + 12*int64(len(snap.BsQty))
	snap.Bytes = bytes
	s.resetDirty()
	return snap, bytes, true
}

// ApplyDelta implements core.DeltaSnapshotter: merge a SnapshotDelta
// payload onto the state it was captured against (the base, or the base
// plus the preceding chain layers).
func (s *Store) ApplyDelta(data any) {
	snap, ok := data.(DeltaSnap)
	if !ok {
		return
	}
	for id, it := range snap.Items {
		s.items[id] = it
	}
	for id, c := range snap.Customers {
		s.customers[id] = c
		s.byUName[c.UName] = id
	}
	for id, a := range snap.Addresses {
		s.addresses[id] = a
	}
	for id, o := range snap.Orders {
		s.orders[id] = o
	}
	for id, c := range snap.Carts {
		c.Lines = append([]CartLine(nil), c.Lines...)
		s.carts[id] = c
	}
	for _, id := range snap.DeadCarts {
		delete(s.carts, id)
	}
	for cid, oid := range snap.LastOrder {
		s.lastOrder[cid] = oid
	}
	s.recentOrders = append([]OrderID(nil), snap.RecentOrders...)
	s.bsQty = make(map[ItemID]int64, len(snap.BsQty))
	for k, v := range snap.BsQty {
		s.bsQty[k] = v
	}
	s.nextAddress = snap.NextAddress
	s.nextCustomer = snap.NextCustomer
	s.nextOrder = snap.NextOrder
	s.nextCart = snap.NextCart
	s.nominalBytes = snap.NominalBytes
	s.bsCache = nil
	s.bsBySubject = nil
	s.ordersSinceBS = 0
	s.resetDirty()
}
