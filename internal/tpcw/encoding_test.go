package tpcw

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"
)

// TestActionsAreGobEncodable verifies every action round-trips through
// encoding/gob: a real networked deployment (or file-backed WAL) must be
// able to serialize them, and the modeled ActionSize should not wildly
// understate the encoded size.
func TestActionsAreGobEncodable(t *testing.T) {
	now := time.Date(2009, 6, 1, 12, 0, 0, 0, time.UTC)
	actions := []any{
		CreateCartAction{Now: now},
		CartUpdateAction{
			Cart: 3, AddItem: 7, AddQty: 2,
			SetLines:   []CartLine{{Item: 7, Qty: 1}},
			RandomItem: 9, Now: now,
		},
		CreateCustomerAction{
			FName: "F", LName: "L", Street1: "1 Main", City: "C",
			State: "ST", Zip: "12345", Country: 3, Phone: "555",
			Email: "a@b", BirthDate: now, Data: "d", Discount: 10, Now: now,
		},
		RefreshSessionAction{Customer: 4, Now: now},
		BuyConfirmAction{
			Cart: 3, Customer: 4, CCType: "VISA", CCNum: "4111",
			CCName: "N", CCExpire: now, ShipType: "AIR",
			ShipDate: now, Comment: "c", Now: now,
		},
		AdminUpdateAction{Item: 7, Cost: 9.5, Image: "i", Thumbnail: "t", Now: now},
		GiftOrderAction{Cart: 3, Buyer: 4, Recipient: 5, ShipType: "AIR", ShipDate: now, Tag: "g1", Now: now},
		GiftDebitAction{Cart: 3, Buyer: 4, Total: 21.5, Tag: "g1", Now: now},
		GiftDeliverAction{
			Recipient: 5, Lines: []OrderLine{{Item: 7, Qty: 2, Comments: "g1"}},
			SubTotal: 18, Tax: 1.5, Total: 21.5, ShipType: "AIR", ShipDate: now, Tag: "g1", Now: now,
		},
		InventorySweepAction{Items: []ItemID{7, 9}, Cost: 4.25, Tag: "s1", Now: now},
	}
	for _, action := range actions {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&action); err != nil {
			// Interface encoding needs registration; encode concretely.
			buf.Reset()
			if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(action)); err != nil {
				t.Fatalf("%T: encode: %v", action, err)
			}
		}
		out := reflect.New(reflect.TypeOf(action))
		if err := gob.NewDecoder(&buf).DecodeValue(out); err != nil {
			t.Fatalf("%T: decode: %v", action, err)
		}
		if !reflect.DeepEqual(out.Elem().Interface(), action) {
			t.Fatalf("%T: round trip mismatch:\n got %+v\nwant %+v",
				action, out.Elem().Interface(), action)
		}
	}
}

// TestResultsAreGobEncodable does the same for result types (they travel
// back to clients in a networked deployment).
func TestResultsAreGobEncodable(t *testing.T) {
	results := []any{
		CreateCartResult{Cart: 1},
		CartResult{Cart: Cart{ID: 1, Lines: []CartLine{{Item: 2, Qty: 3}}}},
		CreateCustomerResult{Customer: Customer{ID: 5, UName: "C5"}},
		BuyConfirmResult{Order: 9, Total: 12.5},
		GiftOrderResult{Order: 9, Total: 21.5},
		GiftDebitResult{},
		GiftDeliverResult{Order: 9},
		InventorySweepResult{Updated: 2},
	}
	for _, r := range results {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(r)); err != nil {
			t.Fatalf("%T: encode: %v", r, err)
		}
		out := reflect.New(reflect.TypeOf(r))
		if err := gob.NewDecoder(&buf).DecodeValue(out); err != nil {
			t.Fatalf("%T: decode: %v", r, err)
		}
	}
}
