package tpcw

import (
	"fmt"
	"testing"
	"time"
)

// storesEqual compares the replicated state of two stores row by row
// (the aggregates the checkpoints carry included).
func storesEqual(t *testing.T, context string, a, b *Store) {
	t.Helper()
	if a.nominalBytes != b.nominalBytes {
		t.Errorf("%s: nominal bytes %d vs %d", context, a.nominalBytes, b.nominalBytes)
	}
	ai, ac, ao, act := a.Counts()
	bi, bc, bo, bct := b.Counts()
	if ai != bi || ac != bc || ao != bo || act != bct {
		t.Fatalf("%s: entity counts (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			context, ai, ac, ao, act, bi, bc, bo, bct)
	}
	for id, it := range a.items {
		if got := b.items[id]; got == nil || *got != *it {
			t.Fatalf("%s: item %d differs", context, id)
		}
	}
	for id, c := range a.customers {
		if got := b.customers[id]; got == nil || *got != *c {
			t.Fatalf("%s: customer %d differs", context, id)
		}
		if b.byUName[c.UName] != id {
			t.Fatalf("%s: uname index broken for customer %d", context, id)
		}
	}
	for id, ad := range a.addresses {
		if got := b.addresses[id]; got == nil || *got != *ad {
			t.Fatalf("%s: address %d differs", context, id)
		}
	}
	for id, o := range a.orders {
		got := b.orders[id]
		if got == nil || got.Total != o.Total || len(got.Lines) != len(o.Lines) || got.Customer != o.Customer {
			t.Fatalf("%s: order %d differs", context, id)
		}
	}
	for id, c := range a.carts {
		got, ok := b.carts[id]
		if !ok || len(got.Lines) != len(c.Lines) {
			t.Fatalf("%s: cart %d differs", context, id)
		}
	}
	for cid, oid := range a.lastOrder {
		if b.lastOrder[cid] != oid {
			t.Fatalf("%s: lastOrder[%d] differs", context, cid)
		}
	}
	if len(a.recentOrders) != len(b.recentOrders) {
		t.Fatalf("%s: recent-order windows differ: %d vs %d",
			context, len(a.recentOrders), len(b.recentOrders))
	}
	for i, oid := range a.recentOrders {
		if b.recentOrders[i] != oid {
			t.Fatalf("%s: recent order %d differs", context, i)
		}
	}
	for iid, q := range a.bsQty {
		if b.bsQty[iid] != q {
			t.Fatalf("%s: bsQty[%d] differs", context, iid)
		}
	}
	if a.nextAddress != b.nextAddress || a.nextCustomer != b.nextCustomer ||
		a.nextOrder != b.nextOrder || a.nextCart != b.nextCart {
		t.Fatalf("%s: ID counters differ", context)
	}
	if bad := b.VerifyConsistency(); len(bad) > 0 {
		t.Fatalf("%s: rebuilt store inconsistent: %v", context, bad)
	}
}

// mutate applies one deterministic round of every write action.
func mutate(t *testing.T, s *Store, round int) {
	t.Helper()
	now := time.Unix(1243857600+int64(round)*60, 0).UTC()
	cr := s.Apply(CartUpdateAction{AddItem: ItemID(round%50 + 1), AddQty: 2, Now: now}).(CartResult)
	if cr.Err != "" {
		t.Fatalf("round %d: cart: %s", round, cr.Err)
	}
	s.Apply(RefreshSessionAction{Customer: CustomerID(round%20 + 1), Now: now})
	s.Apply(AdminUpdateAction{Item: ItemID(round%50 + 1), Cost: 9.99, Image: "i", Thumbnail: "t", Now: now})
	if round%2 == 0 {
		br := s.Apply(BuyConfirmAction{
			Cart: cr.Cart.ID, Customer: CustomerID(round%20 + 1), Now: now,
		}).(BuyConfirmResult)
		if br.Err != "" {
			t.Fatalf("round %d: buy: %s", round, br.Err)
		}
	}
	if round%5 == 0 {
		s.Apply(CreateCustomerAction{
			FName: fmt.Sprintf("F%d", round), LName: "L", Street1: "1 St", City: "C",
			State: "ST", Zip: "12345", Country: 1, Phone: "555", Email: "e@x",
			BirthDate: now.AddDate(-30, 0, 0), Data: "d", Discount: 5, Now: now,
		})
	}
}

// TestSnapshotDeltaRebuildsState: base + delta layers must reconstruct
// exactly the state the writes produced, across several rounds with
// consumed (deleted) carts in between.
func TestSnapshotDeltaRebuildsState(t *testing.T) {
	live := Populate(PopConfig{Items: 200, EBs: 1, Reduction: 4, Seed: 9})

	// Anchor: the full base snapshot, restored into the rebuild store.
	base, _ := live.Snapshot()
	rebuilt := &Store{}
	rebuilt.Restore(base)

	var totalDelta, fullSize int64
	for round := 1; round <= 3; round++ {
		for i := 0; i < 25; i++ {
			mutate(t, live, round*100+i)
		}
		data, size, ok := live.SnapshotDelta()
		if !ok {
			t.Fatalf("round %d: SnapshotDelta failed after a full Snapshot anchor", round)
		}
		totalDelta += size
		rebuilt.ApplyDelta(data)
		storesEqual(t, fmt.Sprintf("round %d", round), live, rebuilt)
	}
	_, fullSize = live.Snapshot()
	if totalDelta*5 > fullSize {
		t.Errorf("three delta layers total %d bytes vs full state %d — deltas are not O(recent writes)",
			totalDelta, fullSize)
	}
}

// TestDeltaCartTombstones: a cart consumed by a purchase must not
// resurrect when the delta is replayed onto the base that still held it.
func TestDeltaCartTombstones(t *testing.T) {
	live := Populate(PopConfig{Items: 200, EBs: 1, Reduction: 4, Seed: 11})
	now := time.Unix(1243857600, 0).UTC()
	cr := live.Apply(CartUpdateAction{AddItem: 3, AddQty: 1, Now: now}).(CartResult)

	// The base snapshot contains the cart.
	base, _ := live.Snapshot()
	rebuilt := &Store{}
	rebuilt.Restore(base)
	if _, ok := rebuilt.GetCart(cr.Cart.ID); !ok {
		t.Fatal("base snapshot lost the live cart")
	}

	// The purchase consumes it; the delta must carry the tombstone.
	br := live.Apply(BuyConfirmAction{Cart: cr.Cart.ID, Customer: 1, Now: now}).(BuyConfirmResult)
	if br.Err != "" {
		t.Fatalf("buy: %s", br.Err)
	}
	data, _, ok := live.SnapshotDelta()
	if !ok {
		t.Fatal("SnapshotDelta failed")
	}
	if len(data.(DeltaSnap).DeadCarts) == 0 {
		t.Fatal("delta carries no cart tombstones")
	}
	rebuilt.ApplyDelta(data)
	if _, ok := rebuilt.GetCart(cr.Cart.ID); ok {
		t.Errorf("consumed cart %d resurrected from the delta replay", cr.Cart.ID)
	}
	storesEqual(t, "post-purchase", live, rebuilt)
}

// TestDropOwnedPoisonsDelta: a wholesale drop cannot be expressed as a
// delta — SnapshotDelta must fail until the next full Snapshot re-anchors
// the chain, so dropped rows never resurrect from a stale layer.
func TestDropOwnedPoisonsDelta(t *testing.T) {
	s := migrationStore(t)
	if _, _, ok := s.SnapshotDelta(); ok {
		t.Fatal("SnapshotDelta succeeded with no full-snapshot anchor")
	}
	s.Snapshot()
	if _, _, ok := s.SnapshotDelta(); !ok {
		t.Fatal("SnapshotDelta failed right after a full Snapshot")
	}
	mutate(t, s, 1)
	s.DropOwned(ownedByParity)
	if _, _, ok := s.SnapshotDelta(); ok {
		t.Fatal("SnapshotDelta succeeded after DropOwned — dropped rows could resurrect")
	}
	s.Snapshot()    // fresh base re-anchors
	mutate(t, s, 3) // odd round: writes avoid the dropped (odd-ID) customers
	if _, _, ok := s.SnapshotDelta(); !ok {
		t.Fatal("SnapshotDelta failed after the fresh base")
	}
}

// TestImportRevivesDeadCartID: an imported cart whose ID matches a
// locally consumed cart must survive the next delta (the tombstone is
// withdrawn).
func TestImportRevivesDeadCartID(t *testing.T) {
	live := Populate(PopConfig{Items: 200, EBs: 1, Reduction: 4, Seed: 12})
	now := time.Unix(1243857600, 0).UTC()
	cr := live.Apply(CartUpdateAction{AddItem: 3, AddQty: 1, Now: now}).(CartResult)
	base, _ := live.Snapshot()
	rebuilt := &Store{}
	rebuilt.Restore(base)

	br := live.Apply(BuyConfirmAction{Cart: cr.Cart.ID, Customer: 1, Now: now}).(BuyConfirmResult)
	if br.Err != "" {
		t.Fatalf("buy: %s", br.Err)
	}
	// A migration import carries the same cart ID back in.
	live.ImportOwned(PartitionSnap{
		Carts:        map[CartID]Cart{cr.Cart.ID: {ID: cr.Cart.ID, Time: now, Lines: []CartLine{{Item: 4, Qty: 1}}}},
		NominalBytes: nominalCart + nominalCartLine,
	})
	data, _, ok := live.SnapshotDelta()
	if !ok {
		t.Fatal("SnapshotDelta failed")
	}
	rebuilt.ApplyDelta(data)
	if _, ok := rebuilt.GetCart(cr.Cart.ID); !ok {
		t.Error("imported cart lost: stale tombstone shadowed the import")
	}
}
