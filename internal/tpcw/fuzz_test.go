package tpcw

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"
)

// FuzzRoundTrip drives randomized bookstore actions through the gob
// encoding a networked deployment (or file-backed WAL) would use and
// asserts a lossless round trip. The corpus is seeded from the concrete
// cases of encoding_test.go, flattened into fuzzable primitives.
func FuzzRoundTrip(f *testing.F) {
	// Seeds mirror TestActionsAreGobEncodable's actions: (kind, ids,
	// qty, strings, discount/cost, timestamp).
	f.Add(uint8(0), int64(0), int64(0), int32(0), "", "", "", 0.0, int64(1243857600))
	f.Add(uint8(1), int64(3), int64(7), int32(2), "", "", "", 0.0, int64(1243857600))
	f.Add(uint8(2), int64(0), int64(3), int32(0), "F", "1 Main", "a@b", 10.0, int64(1243857600))
	f.Add(uint8(3), int64(4), int64(0), int32(0), "", "", "", 0.0, int64(1243857600))
	f.Add(uint8(4), int64(3), int64(4), int32(0), "VISA", "4111", "c", 0.0, int64(1243857600))
	f.Add(uint8(5), int64(7), int64(0), int32(0), "i", "t", "", 9.5, int64(1243857600))

	f.Fuzz(func(t *testing.T, kind uint8, idA, idB int64, qty int32,
		s1, s2, s3 string, x float64, unixSec int64) {
		if x != x {
			x = 0 // NaN never compares equal; not a round-trip property
		}
		now := time.Unix(unixSec%1e10, unixSec%1e9).UTC()
		var action any
		switch kind % 6 {
		case 0:
			action = CreateCartAction{Now: now}
		case 1:
			var lines []CartLine
			for i := int32(0); i < qty%4; i++ {
				lines = append(lines, CartLine{Item: ItemID(idB + int64(i)), Qty: i + 1})
			}
			action = CartUpdateAction{
				Cart: CartID(idA), AddItem: ItemID(idB), AddQty: qty,
				SetLines: lines, RandomItem: ItemID(idB + 1), Now: now,
			}
		case 2:
			action = CreateCustomerAction{
				FName: s1, LName: s2, Street1: s2, City: s3, State: s1,
				Zip: s3, Country: CountryID(idA), Phone: s1, Email: s3,
				BirthDate: now, Data: s2, Discount: x, Now: now,
			}
		case 3:
			action = RefreshSessionAction{Customer: CustomerID(idA), Now: now}
		case 4:
			action = BuyConfirmAction{
				Cart: CartID(idA), Customer: CustomerID(idB), CCType: s1,
				CCNum: s2, CCName: s3, CCExpire: now, ShipType: s1,
				ShipDate: now, Comment: s3, Now: now,
			}
		case 5:
			action = AdminUpdateAction{
				Item: ItemID(idA), Cost: x, Image: s1, Thumbnail: s2, Now: now,
			}
		}

		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(action)); err != nil {
			t.Fatalf("%T: encode: %v", action, err)
		}
		out := reflect.New(reflect.TypeOf(action))
		if err := gob.NewDecoder(&buf).DecodeValue(out); err != nil {
			t.Fatalf("%T: decode: %v", action, err)
		}
		if !reflect.DeepEqual(out.Elem().Interface(), action) {
			t.Fatalf("%T: round trip mismatch:\n got %+v\nwant %+v",
				action, out.Elem().Interface(), action)
		}
	})
}
