// Package tpcw implements the TPC-W on-line bookstore (paper §3) as a
// deterministic in-memory object model: the nine entity classes of the
// TPC-W conceptual schema, a facade offering every database operation the
// fourteen web interactions need, a standard population generator, and the
// catalog indexes (search, new products, best sellers) the read
// interactions use.
//
// The package follows RobustStore's retrofit rules (paper §4): the store
// is a black-box deterministic state machine. All writes are expressed as
// action structs in which every source of non-determinism — timestamps,
// random discounts, random item picks — has already been resolved by the
// caller and travels inside the action, so every replica computes the
// identical state.
//
// State sizing: alongside the real in-memory representation, the store
// tracks a calibrated nominal byte size per entity so checkpoints have the
// paper's state-size behaviour (300/500/700 MB for 30/50/70 emulated
// browsers) without allocating that much memory; population counts can be
// further reduced by a documented factor while keeping nominal accounting
// at full scale (see DESIGN.md, substitutions).
package tpcw

import (
	"time"
)

// Entity identifiers. Dense positive integers assigned by the store.
type (
	CountryID  int32
	AddressID  int32
	AuthorID   int32
	CustomerID int32
	ItemID     int32
	OrderID    int32
	CartID     int32
)

// Country is a TPC-W COUNTRY row.
type Country struct {
	ID       CountryID
	Name     string
	Currency string
	Exchange float64
}

// Address is a TPC-W ADDRESS row.
type Address struct {
	ID      AddressID
	Street1 string
	Street2 string
	City    string
	State   string
	Zip     string
	Country CountryID
}

// Author is a TPC-W AUTHOR row.
type Author struct {
	ID    AuthorID
	FName string
	MName string
	LName string
	DOB   time.Time
	Bio   string
}

// Customer is a TPC-W CUSTOMER row.
type Customer struct {
	ID         CustomerID
	UName      string
	Passwd     string
	FName      string
	LName      string
	Addr       AddressID
	Phone      string
	Email      string
	Since      time.Time
	LastLogin  time.Time
	Login      time.Time
	Expiration time.Time
	Discount   float64
	Balance    float64
	YTDPmt     float64
	BirthDate  time.Time
	Data       string
}

// Item is a TPC-W ITEM row (a book).
type Item struct {
	ID        ItemID
	Title     string
	Author    AuthorID
	PubDate   time.Time
	Publisher string
	Subject   string
	Desc      string
	Thumbnail string
	Image     string
	SRP       float64 // suggested retail price
	Cost      float64
	Avail     time.Time
	Stock     int32
	ISBN      string
	PageCount int32
	Backing   string
	Related   [5]ItemID

	// SweptTag is the audit tag of the last inventory sweep that
	// repriced this item. Ordinary repricing (admin update) preserves it
	// under the copy-on-write discipline, so the cross-shard atomicity
	// audit can recognize a sweep's application even after the regular
	// workload touched the item's cost again.
	SweptTag string
}

// OrderLine is a TPC-W ORDER_LINE row.
type OrderLine struct {
	Item     ItemID
	Qty      int32
	Discount float64
	Comments string
}

// CCTransaction is a TPC-W CC_XACTS row, embedded in its order.
type CCTransaction struct {
	Type    string
	Num     string
	Name    string
	Expire  time.Time
	AuthID  string
	Total   float64
	ShipAt  time.Time
	Country CountryID
}

// Order is a TPC-W ORDERS row with its lines and credit-card transaction.
type Order struct {
	ID       OrderID
	Customer CustomerID
	Date     time.Time
	SubTotal float64
	Tax      float64
	Total    float64
	ShipType string
	ShipDate time.Time
	Status   string
	BillAddr AddressID
	ShipAddr AddressID
	Lines    []OrderLine
	CC       CCTransaction
}

// CartLine is one item in a shopping cart.
type CartLine struct {
	Item ItemID
	Qty  int32
}

// Cart is a TPC-W SHOPPING_CART row with its lines.
type Cart struct {
	ID    CartID
	Time  time.Time
	Lines []CartLine
}

// Nominal per-entity sizes in bytes, calibrated so the standard population
// for 30/50/70 emulated browsers models the paper's 300/500/700 MB states
// (§5.1) and the ordering profile grows the state at the paper's observed
// rate (≈ +250 MB over one measurement interval at 30 EBs).
const (
	nominalCustomer = 1000
	nominalAddress  = 350
	nominalAuthor   = 900
	nominalItem     = 2200
	nominalOrder    = 900
	nominalLine     = 200
	nominalCC       = 300
	nominalCart     = 300
	nominalCartLine = 48
)

// catalog is the immutable part of the store: entities and indexes that no
// web interaction mutates. It is shared (by reference) between snapshots,
// which keeps checkpoint copies cheap while the mutable maps are deep
// copied.
type catalog struct {
	countries []Country
	authors   map[AuthorID]Author

	bySubject    map[string][]ItemID // all items per subject
	newBySubject map[string][]ItemID // 50 newest per subject (new products page)
	titleIndex   map[string][]ItemID // lowercase title token -> items
	authorIndex  map[string][]ItemID // lowercase author last-name token -> items
	subjects     []string
	itemCount    int32
}

// Store is the bookstore state machine: the critical state RobustStore
// replicates through Treplica (paper §4, task I). All mutation goes
// through Apply with action structs; reads are plain methods.
type Store struct {
	cat *catalog

	// The big entity maps hold pointers with a copy-on-write
	// discipline: a pointed-to struct is never mutated in place after
	// insertion (mutations replace the pointer with a fresh copy).
	// Snapshots can therefore share the pointed-to values and copy only
	// the maps, which keeps checkpoint capture cheap.
	items     map[ItemID]*Item
	customers map[CustomerID]*Customer
	byUName   map[string]CustomerID
	addresses map[AddressID]*Address
	orders    map[OrderID]*Order
	carts     map[CartID]Cart

	// lastOrder indexes each customer's most recent order (the TPC-W
	// getMostRecentOrder query is a SQL max; this is its index).
	lastOrder map[CustomerID]OrderID

	// recentOrders is the ring of the last bestSellerWindow order IDs
	// that the TPC-W best-sellers query is defined over.
	recentOrders []OrderID

	nextAddress  AddressID
	nextCustomer CustomerID
	nextOrder    OrderID
	nextCart     CartID

	// bsQty is the rolling quantity-sold aggregate over the
	// recentOrders window, maintained incrementally as orders enter and
	// leave it, so the best-sellers query never rescans the window.
	bsQty map[ItemID]int64

	// bsBySubject partitions bsQty by item subject, so re-ranking one
	// subject's best sellers touches only that subject's window entries
	// instead of rescanning all of bsQty and probing every item. It is
	// derived, non-replicated state: built lazily on the first
	// best-sellers query, mirrored incrementally by pushRecentOrder, and
	// dropped (nil) wherever bsQty is restored wholesale.
	bsBySubject map[string]map[ItemID]int64

	// ordersSinceBS invalidates the best-sellers cache (TPC-W allows
	// 30 s of staleness; we refresh every bestSellerRefresh orders).
	ordersSinceBS int
	bsCache       map[string][]BestSeller

	nominalBytes int64

	// dirty tracks the rows mutated since the last checkpoint for
	// incremental checkpoints (core.DeltaSnapshotter; see delta.go).
	// deltaBase is false until a full Snapshot anchors the chain, and
	// after a DropOwned (deltas cannot express wholesale deletion).
	dirty     storeDirty
	deltaBase bool
}

// bestSellerWindow is the TPC-W definition: best sellers are computed over
// the 3333 most recent orders.
const bestSellerWindow = 3333

// bestSellerRefresh is how many new orders invalidate the cached ranking.
const bestSellerRefresh = 100

// BestSeller is one row of the best-sellers page.
type BestSeller struct {
	Item ItemID
	Qty  int64
}

// NominalBytes returns the modeled serialized state size in bytes — the
// quantity the paper reports as "state size" and that drives checkpoint
// and recovery I/O.
func (s *Store) NominalBytes() int64 { return s.nominalBytes }

// Counts returns entity counts, for tests and reporting.
func (s *Store) Counts() (items, customers, orders, carts int) {
	return len(s.items), len(s.customers), len(s.orders), len(s.carts)
}

// Subjects returns the TPC-W subject list.
func (s *Store) Subjects() []string { return s.cat.subjects }
