package tpcw

// This file implements checkpointing for the bookstore state machine:
// Snapshot deep-copies the mutable state (the immutable catalog — static
// items' indexes, authors, countries — is shared by reference), and
// Restore replaces the state wholesale. The snapshot size is the nominal
// state size, which is what the paper's recovery analysis depends on.

// storeSnap is the checkpoint payload. The pointer maps share their
// pointed-to values with the live store under the copy-on-write
// discipline documented on Store.
type storeSnap struct {
	Items        map[ItemID]*Item
	Customers    map[CustomerID]*Customer
	ByUName      map[string]CustomerID
	Addresses    map[AddressID]*Address
	Orders       map[OrderID]*Order
	Carts        map[CartID]Cart
	BsQty        map[ItemID]int64
	LastOrder    map[CustomerID]OrderID
	RecentOrders []OrderID
	NextAddress  AddressID
	NextCustomer CustomerID
	NextOrder    OrderID
	NextCart     CartID
	NominalBytes int64
	Catalog      *catalog // shared immutable reference
}

// Snapshot returns a deep copy of the mutable bookstore state and its
// nominal size, implementing core.StateMachine.
func (s *Store) Snapshot() (any, int64) {
	snap := storeSnap{
		Items:        make(map[ItemID]*Item, len(s.items)),
		Customers:    make(map[CustomerID]*Customer, len(s.customers)),
		ByUName:      make(map[string]CustomerID, len(s.byUName)),
		Addresses:    make(map[AddressID]*Address, len(s.addresses)),
		Orders:       make(map[OrderID]*Order, len(s.orders)),
		Carts:        make(map[CartID]Cart, len(s.carts)),
		BsQty:        make(map[ItemID]int64, len(s.bsQty)),
		LastOrder:    make(map[CustomerID]OrderID, len(s.lastOrder)),
		RecentOrders: append([]OrderID(nil), s.recentOrders...),
		NextAddress:  s.nextAddress,
		NextCustomer: s.nextCustomer,
		NextOrder:    s.nextOrder,
		NextCart:     s.nextCart,
		NominalBytes: s.nominalBytes,
		Catalog:      s.cat,
	}
	for k, v := range s.items {
		snap.Items[k] = v
	}
	for k, v := range s.customers {
		snap.Customers[k] = v
	}
	for k, v := range s.byUName {
		snap.ByUName[k] = v
	}
	for k, v := range s.addresses {
		snap.Addresses[k] = v
	}
	for k, v := range s.orders {
		snap.Orders[k] = v // orders are immutable after insertion
	}
	for k, v := range s.carts {
		v.Lines = append([]CartLine(nil), v.Lines...)
		snap.Carts[k] = v
	}
	for k, v := range s.bsQty {
		snap.BsQty[k] = v
	}
	for k, v := range s.lastOrder {
		snap.LastOrder[k] = v
	}
	// A full snapshot anchors the incremental-checkpoint chain: the next
	// SnapshotDelta is relative to this state (see delta.go).
	s.resetDirty()
	return snap, s.nominalBytes
}

// Restore replaces the store state from a Snapshot payload, implementing
// core.StateMachine.
func (s *Store) Restore(data any) {
	snap, ok := data.(storeSnap)
	if !ok {
		return
	}
	s.items = make(map[ItemID]*Item, len(snap.Items))
	for k, v := range snap.Items {
		s.items[k] = v
	}
	s.customers = make(map[CustomerID]*Customer, len(snap.Customers))
	for k, v := range snap.Customers {
		s.customers[k] = v
	}
	s.byUName = make(map[string]CustomerID, len(snap.ByUName))
	for k, v := range snap.ByUName {
		s.byUName[k] = v
	}
	s.addresses = make(map[AddressID]*Address, len(snap.Addresses))
	for k, v := range snap.Addresses {
		s.addresses[k] = v
	}
	s.orders = make(map[OrderID]*Order, len(snap.Orders))
	for k, v := range snap.Orders {
		s.orders[k] = v
	}
	s.carts = make(map[CartID]Cart, len(snap.Carts))
	for k, v := range snap.Carts {
		v.Lines = append([]CartLine(nil), v.Lines...)
		s.carts[k] = v
	}
	s.bsQty = make(map[ItemID]int64, len(snap.BsQty))
	for k, v := range snap.BsQty {
		s.bsQty[k] = v
	}
	s.lastOrder = make(map[CustomerID]OrderID, len(snap.LastOrder))
	for k, v := range snap.LastOrder {
		s.lastOrder[k] = v
	}
	s.recentOrders = append([]OrderID(nil), snap.RecentOrders...)
	s.nextAddress = snap.NextAddress
	s.nextCustomer = snap.NextCustomer
	s.nextOrder = snap.NextOrder
	s.nextCart = snap.NextCart
	s.nominalBytes = snap.NominalBytes
	if snap.Catalog != nil {
		s.cat = snap.Catalog
	}
	s.bsCache = nil
	s.bsBySubject = nil
	s.ordersSinceBS = 0
	// The restored state is snapshot-exact: re-anchor delta tracking.
	s.resetDirty()
}

// Execute implements core.StateMachine by dispatching to Apply.
func (s *Store) Execute(action any) any { return s.Apply(action) }

// Clone returns an independent deep copy of the store (sharing the
// immutable catalog). The experiment harness populates one prototype per
// state size and clones it for each replica.
func (s *Store) Clone() *Store {
	snap, _ := s.Snapshot()
	out := &Store{}
	out.Restore(snap)
	return out
}
