package tpcw

import "strconv"

// This file implements the keyed-snapshot half of live shard migration
// (core.PartitionedMachine): exporting only the rows a group is losing,
// merging such an export in on the destination, and dropping moved rows
// on the source after cutover. Row keys follow PartitionKey's vocabulary
// ("item/N", "customer/N", "cart/N"), so the same hash-slice predicate
// that routes actions selects the rows that travel with them.
//
// Row-to-key mapping:
//   - carts move under "cart/N";
//   - customers move under "customer/N", carrying their addresses, orders
//     and last-order index (VerifyConsistency requires orders and their
//     customers to stay together);
//   - items move under "item/N". Catalog item rows exist in every group's
//     initial population (the catalog is soft-replicated), so DropOwned
//     keeps them: dropping would break local reads for sessions that
//     never moved. The import still overwrites the destination's copies,
//     carrying admin updates and stock decrements across.
//
// The best-sellers window (recentOrders/bsQty) is a per-group aggregate
// over the group's own order history and does not migrate; eviction
// tolerates dropped orders.
//
// ImportOwned is an idempotent keyed upsert (map set + max-monotonic ID
// counters), as core.PartitionedMachine requires: the migration driver
// may re-deliver a payload whose completion a crash hid.

// PartitionSnap is the keyed-snapshot payload: the subset of storeSnap
// owned by a key predicate. Like checkpoint payloads it shares pointed-to
// rows under the store's copy-on-write discipline.
type PartitionSnap struct {
	Items     map[ItemID]*Item
	Customers map[CustomerID]*Customer
	ByUName   map[string]CustomerID
	Addresses map[AddressID]*Address
	Orders    map[OrderID]*Order
	Carts     map[CartID]Cart
	LastOrder map[CustomerID]OrderID

	// Counter floors: the destination raises its ID counters to these so
	// rows it allocates later cannot collide with imported ones.
	NextAddress  AddressID
	NextCustomer CustomerID
	NextOrder    OrderID
	NextCart     CartID

	NominalBytes int64 // nominal size of the rows carried
}

func itemKey(id ItemID) string         { return "item/" + strconv.FormatInt(int64(id), 10) }
func customerKey(id CustomerID) string { return "customer/" + strconv.FormatInt(int64(id), 10) }
func cartKey(id CartID) string         { return "cart/" + strconv.FormatInt(int64(id), 10) }

// nominalOrderBytes is the accounting size of one order row, mirroring
// applyBuyConfirm's accrual.
func nominalOrderBytes(o *Order) int64 {
	return nominalOrder + nominalCC + int64(len(o.Lines))*nominalLine
}

func nominalCartBytes(c Cart) int64 {
	return nominalCart + int64(len(c.Lines))*nominalCartLine
}

// ExportOwned implements core.PartitionedMachine: a deep-enough copy of
// the rows whose key satisfies owned, plus their nominal size.
func (s *Store) ExportOwned(owned func(key string) bool) (any, int64) {
	snap := PartitionSnap{
		Items:        make(map[ItemID]*Item),
		Customers:    make(map[CustomerID]*Customer),
		ByUName:      make(map[string]CustomerID),
		Addresses:    make(map[AddressID]*Address),
		Orders:       make(map[OrderID]*Order),
		Carts:        make(map[CartID]Cart),
		LastOrder:    make(map[CustomerID]OrderID),
		NextAddress:  s.nextAddress,
		NextCustomer: s.nextCustomer,
		NextOrder:    s.nextOrder,
		NextCart:     s.nextCart,
	}
	for id, it := range s.items {
		if owned(itemKey(id)) {
			snap.Items[id] = it
			snap.NominalBytes += nominalItem
		}
	}
	for id, c := range s.customers {
		if !owned(customerKey(id)) {
			continue
		}
		snap.Customers[id] = c
		snap.ByUName[c.UName] = id
		snap.NominalBytes += nominalCustomer
		if a, ok := s.addresses[c.Addr]; ok {
			snap.Addresses[c.Addr] = a
			snap.NominalBytes += nominalAddress
		}
		if oid, ok := s.lastOrder[id]; ok {
			snap.LastOrder[id] = oid
		}
	}
	for id, o := range s.orders {
		if owned(customerKey(o.Customer)) {
			snap.Orders[id] = o
			snap.NominalBytes += nominalOrderBytes(o)
			if a, ok := s.addresses[o.ShipAddr]; ok && snap.Addresses[o.ShipAddr] == nil {
				snap.Addresses[o.ShipAddr] = a
				snap.NominalBytes += nominalAddress
			}
		}
	}
	for id, c := range s.carts {
		if owned(cartKey(id)) {
			c.Lines = append([]CartLine(nil), c.Lines...)
			snap.Carts[id] = c
			snap.NominalBytes += nominalCartBytes(c)
		}
	}
	return snap, snap.NominalBytes
}

// ImportOwned implements core.PartitionedMachine: merge an ExportOwned
// payload in. Idempotent — re-importing the same payload leaves the state
// unchanged.
func (s *Store) ImportOwned(data any) {
	snap, ok := data.(PartitionSnap)
	if !ok {
		return
	}
	for id, it := range snap.Items {
		if _, had := s.items[id]; !had {
			s.nominalBytes += nominalItem
		}
		s.items[id] = it
		s.markItem(id)
	}
	for id, c := range snap.Customers {
		if _, had := s.customers[id]; !had {
			s.nominalBytes += nominalCustomer
		}
		s.customers[id] = c
		s.byUName[c.UName] = id
		s.markCustomer(id)
	}
	for id, a := range snap.Addresses {
		if _, had := s.addresses[id]; !had {
			s.nominalBytes += nominalAddress
		}
		s.addresses[id] = a
		s.markAddress(id)
	}
	for id, o := range snap.Orders {
		if _, had := s.orders[id]; !had {
			s.nominalBytes += nominalOrderBytes(o)
		}
		s.orders[id] = o
		s.markOrder(id)
	}
	for id, c := range snap.Carts {
		if had, ok := s.carts[id]; ok {
			s.nominalBytes -= nominalCartBytes(had)
		}
		c.Lines = append([]CartLine(nil), c.Lines...)
		s.carts[id] = c
		s.nominalBytes += nominalCartBytes(c)
		// An imported cart revives its ID: it must not stay shadowed by
		// a tombstone recorded for a locally consumed cart.
		delete(s.dirty.deadCarts, id)
		s.markCart(id)
	}
	for cid, oid := range snap.LastOrder {
		s.lastOrder[cid] = oid
		s.markLastOrder(cid)
	}
	if snap.NextAddress > s.nextAddress {
		s.nextAddress = snap.NextAddress
	}
	if snap.NextCustomer > s.nextCustomer {
		s.nextCustomer = snap.NextCustomer
	}
	if snap.NextOrder > s.nextOrder {
		s.nextOrder = snap.NextOrder
	}
	if snap.NextCart > s.nextCart {
		s.nextCart = snap.NextCart
	}
	s.bsCache = nil
	s.bsBySubject = nil
}

// DropOwned implements core.PartitionedMachine: remove the moved rows on
// the source after cutover. Catalog item rows are kept (soft-replicated;
// see the file comment). Idempotent.
func (s *Store) DropOwned(owned func(key string) bool) {
	for id, c := range s.customers {
		if !owned(customerKey(id)) {
			continue
		}
		delete(s.customers, id)
		delete(s.byUName, c.UName)
		s.nominalBytes -= nominalCustomer
		if _, ok := s.addresses[c.Addr]; ok {
			delete(s.addresses, c.Addr)
			s.nominalBytes -= nominalAddress
		}
		delete(s.lastOrder, id)
	}
	for id, o := range s.orders {
		if owned(customerKey(o.Customer)) {
			delete(s.orders, id)
			s.nominalBytes -= nominalOrderBytes(o)
			if _, ok := s.addresses[o.ShipAddr]; ok {
				delete(s.addresses, o.ShipAddr)
				s.nominalBytes -= nominalAddress
			}
		}
	}
	for id, c := range s.carts {
		if owned(cartKey(id)) {
			delete(s.carts, id)
			s.nominalBytes -= nominalCartBytes(c)
		}
	}
	s.bsCache = nil
	s.bsBySubject = nil
	// A wholesale drop cannot travel in a row-upsert delta: poison the
	// chain so the next checkpoint folds into a fresh base (delta.go) —
	// dropped rows must not resurrect from a stale delta layer.
	s.deltaBase = false
}
