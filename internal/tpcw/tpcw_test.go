package tpcw

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"robuststore/internal/xrand"
)

func testStore() *Store {
	return Populate(PopConfig{Items: 800, EBs: 1, Reduction: 8, Seed: 42})
}

func TestPopulationCounts(t *testing.T) {
	s := testStore()
	items, customers, orders, carts := s.Counts()
	if items != 800/8 {
		t.Errorf("items = %d, want %d", items, 800/8)
	}
	if customers != 2880/8 {
		t.Errorf("customers = %d, want %d", customers, 2880/8)
	}
	if orders != 2880*9/10/8 {
		t.Errorf("orders = %d, want %d", orders, 2880*9/10/8)
	}
	if carts != 0 {
		t.Errorf("carts = %d, want 0", carts)
	}
	if bad := s.VerifyConsistency(); len(bad) > 0 {
		t.Errorf("fresh population inconsistent: %v", bad)
	}
}

func TestNominalStateSizesMatchPaper(t *testing.T) {
	// Paper §5.1: 10,000 items with 30/50/70 EBs produce initial states
	// of roughly 300/500/700 MB.
	cases := []struct {
		ebs    int
		wantMB float64
	}{
		{30, 300},
		{50, 500},
		{70, 700},
	}
	for _, tc := range cases {
		cfg := PopConfig{Items: 10000, EBs: tc.ebs, Reduction: 64, Seed: 1}
		s := Populate(cfg)
		gotMB := float64(s.NominalBytes()) / 1e6
		if gotMB < tc.wantMB*0.85 || gotMB > tc.wantMB*1.15 {
			t.Errorf("EBs=%d: nominal state = %.0f MB, want ≈%.0f MB",
				tc.ebs, gotMB, tc.wantMB)
		}
	}
}

func TestDeterministicPopulation(t *testing.T) {
	a := testStore()
	b := testStore()
	sa, _ := a.Snapshot()
	sb, _ := b.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("same-seed populations differ")
	}
}

func now() time.Time { return time.Date(2009, 6, 1, 12, 0, 0, 0, time.UTC) }

func TestCartLifecycle(t *testing.T) {
	s := testStore()
	res := s.Apply(CreateCartAction{Now: now()}).(CreateCartResult)
	if res.Cart == 0 {
		t.Fatal("no cart id")
	}
	cr := s.Apply(CartUpdateAction{Cart: res.Cart, AddItem: 3, AddQty: 2, Now: now()}).(CartResult)
	if cr.Err != "" || len(cr.Cart.Lines) != 1 || cr.Cart.Lines[0].Qty != 2 {
		t.Fatalf("add item: %+v", cr)
	}
	// Adding the same item accumulates quantity.
	cr = s.Apply(CartUpdateAction{Cart: res.Cart, AddItem: 3, AddQty: 1, Now: now()}).(CartResult)
	if cr.Cart.Lines[0].Qty != 3 {
		t.Fatalf("qty = %d, want 3", cr.Cart.Lines[0].Qty)
	}
	// Setting quantity to zero removes the line; the random fallback
	// item then repopulates the cart.
	cr = s.Apply(CartUpdateAction{
		Cart: res.Cart, SetLines: []CartLine{{Item: 3, Qty: 0}},
		RandomItem: 7, Now: now(),
	}).(CartResult)
	if len(cr.Cart.Lines) != 1 || cr.Cart.Lines[0].Item != 7 {
		t.Fatalf("fallback item: %+v", cr.Cart)
	}
}

func TestBuyConfirmCreatesOrderAndAppliesStockRule(t *testing.T) {
	s := testStore()
	cart := s.Apply(CreateCartAction{Now: now()}).(CreateCartResult).Cart
	itemBefore, _ := s.GetBook(5)
	s.Apply(CartUpdateAction{Cart: cart, AddItem: 5, AddQty: 2, Now: now()})

	cust, _ := s.GetCustomerByID(1)
	res := s.Apply(BuyConfirmAction{
		Cart: cart, Customer: 1, CCType: "VISA", CCNum: "4111",
		CCName: "X", CCExpire: now().AddDate(1, 0, 0), ShipType: "AIR",
		ShipDate: now().AddDate(0, 0, 3), Now: now(),
	}).(BuyConfirmResult)
	if res.Err != "" || res.Order == 0 {
		t.Fatalf("buy confirm failed: %+v", res)
	}

	order, ok := s.GetOrder(res.Order)
	if !ok {
		t.Fatal("order not stored")
	}
	wantSub := itemBefore.Cost * 2 * (1 - cust.Discount/100)
	if diff := order.SubTotal - wantSub; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("subtotal = %f, want %f", order.SubTotal, wantSub)
	}
	wantTotal := wantSub + wantSub*taxRate + shippingCost(1)
	if diff := order.Total - wantTotal; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("total = %f, want %f", order.Total, wantTotal)
	}

	itemAfter, _ := s.GetBook(5)
	wantStock := itemBefore.Stock - 2
	if wantStock < 10 {
		wantStock += 21
	}
	if itemAfter.Stock != wantStock {
		t.Errorf("stock = %d, want %d", itemAfter.Stock, wantStock)
	}

	// The cart is consumed.
	if _, ok := s.GetCart(cart); ok {
		t.Error("cart survived purchase")
	}
	// The order is visible as the customer's most recent.
	mr, ok := s.GetMostRecentOrder(customerUName(1))
	if !ok || mr.ID != res.Order {
		t.Errorf("most recent order = %v, want %v", mr.ID, res.Order)
	}
	if bad := s.VerifyConsistency(); len(bad) > 0 {
		t.Errorf("inconsistent after purchase: %v", bad)
	}
}

func TestBuyConfirmErrors(t *testing.T) {
	s := testStore()
	res := s.Apply(BuyConfirmAction{Cart: 999, Customer: 1, Now: now()}).(BuyConfirmResult)
	if res.Err == "" {
		t.Error("expected error for unknown cart")
	}
	cart := s.Apply(CreateCartAction{Now: now()}).(CreateCartResult).Cart
	res = s.Apply(BuyConfirmAction{Cart: cart, Customer: 1, Now: now()}).(BuyConfirmResult)
	if res.Err == "" {
		t.Error("expected error for empty cart")
	}
	s.Apply(CartUpdateAction{Cart: cart, AddItem: 2, Now: now()})
	res = s.Apply(BuyConfirmAction{Cart: cart, Customer: 99999, Now: now()}).(BuyConfirmResult)
	if res.Err == "" {
		t.Error("expected error for unknown customer")
	}
}

func TestCreateCustomerAndSession(t *testing.T) {
	s := testStore()
	_, before, _, _ := s.Counts()
	res := s.Apply(CreateCustomerAction{
		FName: "New", LName: "Customer", Street1: "1 St", City: "C",
		State: "ST", Zip: "12345", Country: 3, Phone: "555",
		Email: "n@c", BirthDate: now().AddDate(-30, 0, 0),
		Discount: 15, Now: now(),
	}).(CreateCustomerResult)
	if res.Customer.ID == 0 || res.Customer.Discount != 15 {
		t.Fatalf("bad customer: %+v", res.Customer)
	}
	_, after, _, _ := s.Counts()
	if after != before+1 {
		t.Errorf("customer count %d, want %d", after, before+1)
	}
	got, ok := s.GetCustomer(res.Customer.UName)
	if !ok || got.ID != res.Customer.ID {
		t.Fatal("lookup by uname failed")
	}

	later := now().Add(time.Hour)
	s.Apply(RefreshSessionAction{Customer: res.Customer.ID, Now: later})
	got, _ = s.GetCustomerByID(res.Customer.ID)
	if !got.Login.Equal(later) {
		t.Errorf("login = %v, want %v", got.Login, later)
	}
	if !got.LastLogin.Equal(now()) {
		t.Errorf("last login = %v, want %v", got.LastLogin, now())
	}
}

func TestSearchIndexes(t *testing.T) {
	s := testStore()
	info := s.Info()
	if len(info.TitleTokens) == 0 || len(info.AuthorTokens) == 0 {
		t.Fatal("empty vocabulary")
	}
	ids := s.DoSearch(SearchByTitle, info.TitleTokens[0])
	if len(ids) == 0 {
		t.Fatal("title search found nothing")
	}
	for _, id := range ids {
		if _, ok := s.GetBook(id); !ok {
			t.Fatalf("search returned dangling item %d", id)
		}
	}
	ids = s.DoSearch(SearchByAuthor, info.AuthorTokens[0])
	if len(ids) == 0 {
		t.Fatal("author search found nothing")
	}
	book, _ := s.GetBook(ids[0])
	author, _ := s.GetAuthor(book.Author)
	if got := author.LName; got == "" {
		t.Fatal("no author")
	}
	ids = s.DoSearch(SearchBySubject, info.Subjects[0])
	for _, id := range ids {
		book, _ := s.GetBook(id)
		if book.Subject != info.Subjects[0] {
			t.Fatalf("subject search leaked %q", book.Subject)
		}
	}
}

func TestNewProductsSortedByDate(t *testing.T) {
	s := testStore()
	for _, subject := range s.Subjects() {
		ids := s.GetNewProducts(subject)
		if len(ids) > searchLimit {
			t.Fatalf("more than %d new products", searchLimit)
		}
		for i := 1; i < len(ids); i++ {
			a, _ := s.GetBook(ids[i-1])
			b, _ := s.GetBook(ids[i])
			if a.PubDate.Before(b.PubDate) {
				t.Fatalf("new products for %s not newest-first", subject)
			}
		}
	}
}

func TestBestSellersRankedAndCacheRefreshes(t *testing.T) {
	s := testStore()
	var subject string
	var first []BestSeller
	for _, sub := range s.Subjects() {
		if bs := s.GetBestSellers(sub); len(bs) > 1 {
			subject, first = sub, bs
			break
		}
	}
	if subject == "" {
		t.Skip("population too small for multi-entry best sellers")
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Qty < first[i].Qty {
			t.Fatal("best sellers not ranked by quantity")
		}
	}
	// Buy one item massively; after the cache refresh threshold it must
	// lead the ranking.
	target := first[len(first)-1].Item
	for o := 0; o < bestSellerRefresh+1; o++ {
		cart := s.Apply(CreateCartAction{Now: now()}).(CreateCartResult).Cart
		s.Apply(CartUpdateAction{Cart: cart, AddItem: target, AddQty: 90, Now: now()})
		res := s.Apply(BuyConfirmAction{
			Cart: cart, Customer: 1, ShipDate: now(), Now: now(),
		}).(BuyConfirmResult)
		if res.Err != "" {
			t.Fatalf("buy failed: %s", res.Err)
		}
	}
	got := s.GetBestSellers(subject)
	if len(got) == 0 || got[0].Item != target {
		t.Fatalf("item %d not leading best sellers after %d purchases", target, bestSellerRefresh+1)
	}
}

// referenceBestSellers is the pre-index ranking: scan the whole rolling
// aggregate and probe every item for its subject. The materialized
// per-subject index must stay observably identical to it.
func referenceBestSellers(s *Store, subject string) []BestSeller {
	subject = canonicalSubject(subject)
	ranked := make([]BestSeller, 0, 64)
	for iid, q := range s.bsQty {
		if item, ok := s.items[iid]; ok && item.Subject == subject {
			ranked = append(ranked, BestSeller{Item: iid, Qty: q})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Qty != ranked[j].Qty {
			return ranked[i].Qty > ranked[j].Qty
		}
		return ranked[i].Item < ranked[j].Item
	})
	if len(ranked) > searchLimit {
		ranked = ranked[:searchLimit]
	}
	return ranked
}

func TestBestSellersIndexMatchesScan(t *testing.T) {
	s := testStore()
	subjects := s.Subjects()
	// Query every subject up front so the index is built early and the
	// purchase stream below exercises its incremental maintenance — not
	// just the lazy rebuild — including window evictions once the order
	// count crosses bestSellerWindow.
	for _, sub := range subjects {
		s.GetBestSellers(sub)
	}
	check := func(st *Store, context string) {
		t.Helper()
		st.bsCache = nil // force a fresh ranking off the index
		for _, sub := range subjects {
			got := st.GetBestSellers(sub)
			want := referenceBestSellers(st, sub)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: best sellers for %q diverge from the window scan\n got %v\nwant %v",
					context, sub, got, want)
			}
		}
	}
	total := bestSellerWindow + 400
	for i := 0; i < total; i++ {
		cart := s.Apply(CreateCartAction{Now: now()}).(CreateCartResult).Cart
		s.Apply(CartUpdateAction{
			Cart: cart, AddItem: ItemID(1 + (i*7)%99), AddQty: int32(1 + i%5), Now: now(),
		})
		res := s.Apply(BuyConfirmAction{
			Cart: cart, Customer: CustomerID(1 + i%50), ShipDate: now(), Now: now(),
		}).(BuyConfirmResult)
		if res.Err != "" {
			t.Fatalf("buy %d failed: %s", i, res.Err)
		}
		if i%500 == 499 {
			check(s, fmt.Sprintf("after %d orders", i+1))
		}
	}
	if len(s.recentOrders) != bestSellerWindow {
		t.Fatalf("window holds %d orders, want %d (evictions never ran)",
			len(s.recentOrders), bestSellerWindow)
	}
	check(s, "final")

	// A restore drops the derived index; its lazy rebuild must agree too.
	snap, _ := s.Snapshot()
	fresh := testStore()
	fresh.Restore(snap)
	check(fresh, "after restore")
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := testStore()
	cart := s.Apply(CreateCartAction{Now: now()}).(CreateCartResult).Cart
	s.Apply(CartUpdateAction{Cart: cart, AddItem: 2, AddQty: 1, Now: now()})
	s.Apply(BuyConfirmAction{Cart: cart, Customer: 2, ShipDate: now(), Now: now()})

	snap, size := s.Snapshot()
	if size != s.NominalBytes() {
		t.Errorf("snapshot size %d != nominal %d", size, s.NominalBytes())
	}
	// Mutate the original after snapshotting; the snapshot must be
	// isolated.
	c2 := s.Apply(CreateCartAction{Now: now()}).(CreateCartResult).Cart
	s.Apply(CartUpdateAction{Cart: c2, AddItem: 9, AddQty: 5, Now: now()})
	s.Apply(BuyConfirmAction{Cart: c2, Customer: 3, ShipDate: now(), Now: now()})

	fresh := testStore()
	fresh.Restore(snap)
	snap2, _ := fresh.Snapshot()
	if !reflect.DeepEqual(snap, snap2) {
		t.Fatal("restore did not reproduce the snapshotted state")
	}
	if bad := fresh.VerifyConsistency(); len(bad) > 0 {
		t.Errorf("restored store inconsistent: %v", bad)
	}
}

// randomActions generates a deterministic action sequence exercising every
// action type.
func randomActions(seed uint64, n int) []any {
	rng := xrand.New(seed)
	actions := make([]any, 0, n)
	var carts []CartID
	nextCart := CartID(0)
	t0 := now()
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		switch rng.Intn(6) {
		case 0:
			nextCart++
			carts = append(carts, nextCart)
			actions = append(actions, CreateCartAction{Now: at})
		case 1, 2:
			if len(carts) == 0 {
				actions = append(actions, CreateCartAction{Now: at})
				nextCart++
				carts = append(carts, nextCart)
				continue
			}
			actions = append(actions, CartUpdateAction{
				Cart:    xrand.Pick(rng, carts),
				AddItem: ItemID(rng.Intn(60) + 1),
				AddQty:  int32(rng.Intn(3) + 1),
				Now:     at,
			})
		case 3:
			if len(carts) == 0 {
				continue
			}
			actions = append(actions, BuyConfirmAction{
				Cart:     xrand.Pick(rng, carts),
				Customer: CustomerID(rng.Intn(300) + 1),
				CCType:   "VISA",
				ShipDate: at.AddDate(0, 0, rng.Intn(7)+1),
				Now:      at,
			})
		case 4:
			actions = append(actions, CreateCustomerAction{
				FName: "F", LName: "L", Street1: "S", City: "C",
				State: "ST", Zip: "Z",
				Country:  CountryID(rng.Intn(92) + 1),
				Discount: float64(rng.Intn(51)), Now: at,
			})
		case 5:
			actions = append(actions, AdminUpdateAction{
				Item: ItemID(rng.Intn(60) + 1),
				Cost: 5 + rng.Float64()*50,
				Now:  at,
			})
		}
	}
	return actions
}

// TestReplicaDeterminism is the core RobustStore property (paper §4): two
// replicas applying the same totally ordered action sequence end in
// byte-identical states.
func TestReplicaDeterminism(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		a, b := testStore(), testStore()
		for _, action := range randomActions(seed, 120) {
			ra := a.Apply(action)
			rb := b.Apply(action)
			if !reflect.DeepEqual(ra, rb) {
				return false
			}
		}
		sa, _ := a.Snapshot()
		sb, _ := b.Snapshot()
		return reflect.DeepEqual(sa, sb)
	}, &quick.Config{MaxCount: 12})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConsistencyUnderRandomActions checks the store invariants hold under
// arbitrary action interleavings.
func TestConsistencyUnderRandomActions(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := testStore()
		for _, action := range randomActions(seed, 200) {
			s.Apply(action)
		}
		bad := s.VerifyConsistency()
		if len(bad) > 0 {
			t.Logf("violations: %v", bad)
		}
		return len(bad) == 0
	}, &quick.Config{MaxCount: 8})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNominalBytesGrowWithOrders(t *testing.T) {
	s := testStore()
	before := s.NominalBytes()
	for i := 0; i < 50; i++ {
		cart := s.Apply(CreateCartAction{Now: now()}).(CreateCartResult).Cart
		s.Apply(CartUpdateAction{Cart: cart, AddItem: ItemID(i%50 + 1), AddQty: 1, Now: now()})
		res := s.Apply(BuyConfirmAction{Cart: cart, Customer: 1, ShipDate: now(), Now: now()}).(BuyConfirmResult)
		if res.Err != "" {
			t.Fatal(res.Err)
		}
	}
	grown := s.NominalBytes() - before
	want := int64(50) * (nominalOrder + nominalCC + nominalLine)
	if grown != want {
		t.Errorf("nominal growth = %d, want %d", grown, want)
	}
}

func TestActionSizePositive(t *testing.T) {
	for _, a := range randomActions(99, 60) {
		if ActionSize(a) <= 0 {
			t.Fatalf("non-positive size for %T", a)
		}
	}
	if ActionSize(struct{}{}) <= 0 {
		t.Fatal("default size must be positive")
	}
}

func TestUnknownActionReturnsError(t *testing.T) {
	s := testStore()
	res := s.Apply("bogus")
	if _, ok := res.(error); !ok {
		t.Fatalf("want error result, got %T", res)
	}
}

func TestGetters(t *testing.T) {
	s := testStore()
	if _, ok := s.GetBook(1); !ok {
		t.Error("GetBook(1) missing")
	}
	if _, ok := s.GetBook(1 << 30); ok {
		t.Error("GetBook on bogus id succeeded")
	}
	uname := customerUName(1)
	if pw, ok := s.GetPassword(uname); !ok || pw == "" {
		t.Error("GetPassword failed")
	}
	if un, ok := s.GetUserName(1); !ok || un != uname {
		t.Errorf("GetUserName = %q, want %q", un, uname)
	}
	if d, ok := s.GetCDiscount(1); !ok || d < 0 || d > 50 {
		t.Errorf("discount %f out of range", d)
	}
	rel, ok := s.GetRelated(1)
	if !ok {
		t.Fatal("GetRelated failed")
	}
	for _, r := range rel {
		if _, ok := s.GetBook(r); !ok {
			t.Errorf("related item %d dangling", r)
		}
	}
	if _, ok := s.GetStock(1); !ok {
		t.Error("GetStock failed")
	}
}

func BenchmarkApplyBuyConfirm(b *testing.B) {
	s := testStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cart := s.Apply(CreateCartAction{Now: now()}).(CreateCartResult).Cart
		s.Apply(CartUpdateAction{Cart: cart, AddItem: ItemID(i%50 + 1), AddQty: 1, Now: now()})
		s.Apply(BuyConfirmAction{Cart: cart, Customer: CustomerID(i%300 + 1), ShipDate: now(), Now: now()})
	}
}

func BenchmarkSnapshot(b *testing.B) {
	s := Populate(PopConfig{Items: 10000, EBs: 30, Reduction: 8, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, _ := s.Snapshot()
		_ = snap
	}
}

func ExampleStore_GetBestSellers() {
	s := Populate(PopConfig{Items: 200, EBs: 1, Reduction: 4, Seed: 7})
	bs := s.GetBestSellers(s.Subjects()[0])
	fmt.Println(len(bs) <= 50)
	// Output: true
}
