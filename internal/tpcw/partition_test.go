package tpcw

import "testing"

func TestPartitionKey(t *testing.T) {
	cases := []struct {
		name   string
		action any
		key    string
		ok     bool
	}{
		{"cart update", CartUpdateAction{Cart: 7}, "cart/7", true},
		{"cart create", CartUpdateAction{Cart: 0, RandomItem: 3}, "", false},
		{"buy with cart", BuyConfirmAction{Cart: 9, Customer: 2}, "cart/9", true},
		{"buy without cart", BuyConfirmAction{Customer: 2}, "customer/2", true},
		{"refresh session", RefreshSessionAction{Customer: 11}, "customer/11", true},
		{"admin update", AdminUpdateAction{Item: 123}, "item/123", true},
		{"create cart", CreateCartAction{}, "", false},
		{"create customer", CreateCustomerAction{}, "", false},
		{"unknown", 42, "", false},
	}
	for _, c := range cases {
		key, ok := PartitionKey(c.action)
		if key != c.key || ok != c.ok {
			t.Errorf("%s: PartitionKey = (%q, %v), want (%q, %v)", c.name, key, ok, c.key, c.ok)
		}
	}
	if SessionKey(42) != "session/42" {
		t.Errorf("SessionKey(42) = %q", SessionKey(42))
	}
}
