package tpcw

import (
	"strconv"
	"testing"
	"time"
)

// migrationStore builds a small populated store with some post-population
// divergence (carts and orders) so exports carry non-trivial state.
func migrationStore(t *testing.T) *Store {
	t.Helper()
	s := Populate(PopConfig{Items: 200, EBs: 1, Reduction: 4, Seed: 9})
	now := time.Unix(1243857600, 0).UTC()
	for i := 0; i < 20; i++ {
		cr := s.Apply(CartUpdateAction{AddItem: ItemID(i%50 + 1), AddQty: 2, Now: now}).(CartResult)
		if cr.Err != "" {
			t.Fatalf("cart setup: %s", cr.Err)
		}
		if i%3 == 0 {
			br := s.Apply(BuyConfirmAction{
				Cart: cr.Cart.ID, Customer: CustomerID(i%30 + 1), Now: now,
			}).(BuyConfirmResult)
			if br.Err != "" {
				t.Fatalf("order setup: %s", br.Err)
			}
		}
	}
	if bad := s.VerifyConsistency(); len(bad) > 0 {
		t.Fatalf("setup store inconsistent: %v", bad)
	}
	return s
}

// ownedByParity is a deterministic half-the-keyspace predicate.
func ownedByParity(key string) bool {
	slash := -1
	for i := range key {
		if key[i] == '/' {
			slash = i
		}
	}
	if slash < 0 {
		return false
	}
	n, err := strconv.Atoi(key[slash+1:])
	return err == nil && n%2 == 1
}

// TestPartitionExportImportDrop: the moved rows reappear intact on the
// destination (customers with their addresses, orders and last-order
// index; carts; items), the destination passes the consistency audit,
// the source passes it after the drop, and ID counters cannot collide.
func TestPartitionExportImportDrop(t *testing.T) {
	src := migrationStore(t)
	dst := Populate(PopConfig{Items: 200, EBs: 1, Reduction: 4, Seed: 10})

	data, size := src.ExportOwned(ownedByParity)
	snap := data.(PartitionSnap)
	if size <= 0 || size != snap.NominalBytes {
		t.Fatalf("export size %d / %d inconsistent", size, snap.NominalBytes)
	}
	if len(snap.Customers) == 0 || len(snap.Items) == 0 || len(snap.Carts) == 0 {
		t.Fatalf("export carried nothing: %d customers, %d items, %d carts",
			len(snap.Customers), len(snap.Items), len(snap.Carts))
	}
	for id := range snap.Customers {
		if !ownedByParity("customer/" + strconv.Itoa(int(id))) {
			t.Fatalf("customer %d exported but not owned", id)
		}
	}
	for id, o := range snap.Orders {
		if !ownedByParity("customer/" + strconv.Itoa(int(o.Customer))) {
			t.Fatalf("order %d exported but its customer %d not owned", id, o.Customer)
		}
		if _, ok := snap.Customers[o.Customer]; !ok {
			t.Fatalf("order %d exported without its customer", id)
		}
	}

	before := dst.NominalBytes()
	dst.ImportOwned(data)
	if dst.NominalBytes() <= before {
		t.Fatal("import did not grow the destination's nominal size")
	}
	for id, c := range snap.Customers {
		got, ok := dst.GetCustomerByID(id)
		if !ok || got.UName != c.UName {
			t.Fatalf("customer %d missing or wrong on destination", id)
		}
	}
	for id := range snap.Orders {
		if _, ok := dst.GetOrder(id); !ok {
			t.Fatalf("order %d missing on destination", id)
		}
	}
	for id := range snap.Carts {
		if _, ok := dst.GetCart(id); !ok {
			t.Fatalf("cart %d missing on destination", id)
		}
	}
	if bad := dst.VerifyConsistency(); len(bad) > 0 {
		t.Fatalf("destination inconsistent after import: %v", bad)
	}

	// Idempotency: re-importing the same payload changes nothing.
	nb := dst.NominalBytes()
	_, cust, orders, carts := dst.Counts()
	dst.ImportOwned(data)
	if dst.NominalBytes() != nb {
		t.Fatalf("re-import changed nominal size: %d → %d", nb, dst.NominalBytes())
	}
	if _, c2, o2, ca2 := dst.Counts(); c2 != cust || o2 != orders || ca2 != carts {
		t.Fatal("re-import changed row counts")
	}
	if bad := dst.VerifyConsistency(); len(bad) > 0 {
		t.Fatalf("destination inconsistent after re-import: %v", bad)
	}

	// New IDs allocated on the destination do not collide with imported
	// rows (counters were raised to the import's floors).
	cr := dst.Apply(CartUpdateAction{AddItem: 3, AddQty: 1, Now: time.Unix(1243857601, 0).UTC()}).(CartResult)
	if _, exported := snap.Carts[cr.Cart.ID]; exported {
		t.Fatalf("fresh cart %d collides with an imported one", cr.Cart.ID)
	}

	// Source-side cleanup: moved customers/orders/carts gone, catalog
	// items kept (soft-replicated), audit still passes.
	srcBefore := src.NominalBytes()
	src.DropOwned(ownedByParity)
	if src.NominalBytes() >= srcBefore {
		t.Fatal("drop did not shrink the source's nominal size")
	}
	for id := range snap.Customers {
		if _, ok := src.GetCustomerByID(id); ok {
			t.Fatalf("customer %d still on source after drop", id)
		}
	}
	for id := range snap.Orders {
		if _, ok := src.GetOrder(id); ok {
			t.Fatalf("order %d still on source after drop", id)
		}
	}
	for id := range snap.Items {
		if _, ok := src.GetBook(id); !ok {
			t.Fatalf("catalog item %d dropped from source (must be kept)", id)
		}
	}
	if bad := src.VerifyConsistency(); len(bad) > 0 {
		t.Fatalf("source inconsistent after drop: %v", bad)
	}
	// Drop is idempotent too.
	nb = src.NominalBytes()
	src.DropOwned(ownedByParity)
	if src.NominalBytes() != nb {
		t.Fatal("re-drop changed nominal size")
	}
}
