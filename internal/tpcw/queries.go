package tpcw

import (
	"sort"
	"strings"

	"robuststore/internal/detsort"
)

// This file implements the read-only facade operations behind the TPC-W
// browsing interactions. Reads are served locally by each replica without
// total ordering (paper §5.2), so these are plain methods.

// GetBook returns an item by id.
func (s *Store) GetBook(id ItemID) (Item, bool) {
	item, ok := s.items[id]
	if !ok {
		return Item{}, false
	}
	return *item, true
}

// GetAuthor returns an author by id.
func (s *Store) GetAuthor(id AuthorID) (Author, bool) {
	a, ok := s.cat.authors[id]
	return a, ok
}

// GetCustomer returns a customer by user name (TPC-W getCustomer).
func (s *Store) GetCustomer(uname string) (Customer, bool) {
	id, ok := s.byUName[uname]
	if !ok {
		return Customer{}, false
	}
	return *s.customers[id], true
}

// GetCustomerByID returns a customer by id.
func (s *Store) GetCustomerByID(id CustomerID) (Customer, bool) {
	c, ok := s.customers[id]
	if !ok {
		return Customer{}, false
	}
	return *c, true
}

// GetUserName returns the user name for a customer id (TPC-W GetUserName).
func (s *Store) GetUserName(id CustomerID) (string, bool) {
	c, ok := s.customers[id]
	if !ok {
		return "", false
	}
	return c.UName, true
}

// GetPassword returns the password for a user name (TPC-W GetPassword).
func (s *Store) GetPassword(uname string) (string, bool) {
	c, ok := s.GetCustomer(uname)
	return c.Passwd, ok
}

// GetCDiscount returns the customer's discount (TPC-W getCDiscount).
func (s *Store) GetCDiscount(id CustomerID) (float64, bool) {
	c, ok := s.customers[id]
	if !ok {
		return 0, false
	}
	return c.Discount, true
}

// GetCart returns a shopping cart.
func (s *Store) GetCart(id CartID) (Cart, bool) {
	c, ok := s.carts[id]
	return c, ok
}

// GetOrder returns an order.
func (s *Store) GetOrder(id OrderID) (Order, bool) {
	o, ok := s.orders[id]
	if !ok {
		return Order{}, false
	}
	return *o, true
}

// GetMostRecentOrder returns the latest order of the named customer
// (TPC-W getMostRecentOrder, the order-inquiry/display interactions).
func (s *Store) GetMostRecentOrder(uname string) (Order, bool) {
	c, ok := s.GetCustomer(uname)
	if !ok {
		return Order{}, false
	}
	oid, ok := s.lastOrder[c.ID]
	if !ok {
		return Order{}, false
	}
	o, ok := s.orders[oid]
	if !ok {
		return Order{}, false
	}
	return *o, true
}

// GetRelated returns the related items of a book (TPC-W getRelated).
func (s *Store) GetRelated(id ItemID) ([5]ItemID, bool) {
	item, ok := s.items[id]
	if !ok {
		return [5]ItemID{}, false
	}
	return item.Related, true
}

// GetStock returns an item's stock level (admin request page).
func (s *Store) GetStock(id ItemID) (int32, bool) {
	item, ok := s.items[id]
	if !ok {
		return 0, false
	}
	return item.Stock, true
}

// SearchKind selects the TPC-W search type.
type SearchKind int

// The three TPC-W search types.
const (
	SearchByAuthor SearchKind = iota + 1
	SearchByTitle
	SearchBySubject
)

// searchLimit is the TPC-W result page size.
const searchLimit = 50

// DoSearch implements the search-results interaction for the three TPC-W
// search types. Matching is by lowercase token for author and title and
// by exact subject, over the immutable catalog indexes.
func (s *Store) DoSearch(kind SearchKind, term string) []ItemID {
	term = strings.ToLower(strings.TrimSpace(term))
	var ids []ItemID
	switch kind {
	case SearchByAuthor:
		ids = s.cat.authorIndex[term]
	case SearchByTitle:
		ids = s.cat.titleIndex[term]
	case SearchBySubject:
		ids = s.cat.bySubject[canonicalSubject(term)]
	}
	if len(ids) > searchLimit {
		ids = ids[:searchLimit]
	}
	return ids
}

// GetNewProducts returns the 50 newest items of a subject (TPC-W
// getNewProducts). The catalog is immutable, so the ranking is
// precomputed.
func (s *Store) GetNewProducts(subject string) []ItemID {
	return s.cat.newBySubject[canonicalSubject(subject)]
}

// GetBestSellers returns the TPC-W best-sellers page for a subject: the
// 50 items of that subject with the highest quantity sold across the 3333
// most recent orders. Rankings are cached and refreshed as orders arrive;
// a cache miss re-ranks only the subject's slice of the window via the
// bsBySubject index rather than rescanning all of bsQty and probing every
// item for its subject.
func (s *Store) GetBestSellers(subject string) []BestSeller {
	subject = canonicalSubject(subject)
	if s.bsCache == nil {
		s.bsCache = make(map[string][]BestSeller)
	}
	if cached, ok := s.bsCache[subject]; ok {
		return cached
	}
	if s.bsBySubject == nil {
		s.rebuildBSIndex()
	}
	byItem := s.bsBySubject[subject]
	ranked := make([]BestSeller, 0, len(byItem))
	for iid, q := range byItem {
		ranked = append(ranked, BestSeller{Item: iid, Qty: q})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Qty != ranked[j].Qty {
			return ranked[i].Qty > ranked[j].Qty
		}
		return ranked[i].Item < ranked[j].Item
	})
	if len(ranked) > searchLimit {
		ranked = ranked[:searchLimit]
	}
	s.bsCache[subject] = ranked
	return ranked
}

// rebuildBSIndex derives bsBySubject from bsQty from scratch (after a
// restore dropped it, or on the first query).
func (s *Store) rebuildBSIndex() {
	s.bsBySubject = make(map[string]map[ItemID]int64)
	for iid, q := range s.bsQty {
		item, ok := s.items[iid]
		if !ok {
			continue
		}
		m := s.bsBySubject[item.Subject]
		if m == nil {
			m = make(map[ItemID]int64)
			s.bsBySubject[item.Subject] = m
		}
		m[iid] = q
	}
}

// bsIndexSync mirrors one item's current bsQty entry into bsBySubject
// (insert, update, or removal). No-op while the index has not been built;
// item subjects are immutable, so the subject bucket never moves.
func (s *Store) bsIndexSync(iid ItemID) {
	if s.bsBySubject == nil {
		return
	}
	item, ok := s.items[iid]
	if !ok {
		return
	}
	m := s.bsBySubject[item.Subject]
	if q, live := s.bsQty[iid]; live {
		if m == nil {
			m = make(map[ItemID]int64)
			s.bsBySubject[item.Subject] = m
		}
		m[iid] = q
	} else if m != nil {
		delete(m, iid)
	}
}

// VerifyConsistency checks internal invariants; it returns a non-empty
// list of violations if the state is corrupt. Used by tests and the
// consistency checks after fault experiments.
func (s *Store) VerifyConsistency() []string {
	// Sorted sweeps: the violation list is truncated to 8 entries and
	// compared across replicas by tests, so its order must not depend on
	// map iteration (detorder invariant).
	var bad []string
	for _, id := range detsort.Keys(s.customers) {
		c := s.customers[id]
		if c.ID != id {
			bad = append(bad, "customer id mismatch")
		}
		if got, ok := s.byUName[c.UName]; !ok || got != id {
			bad = append(bad, "customer uname index broken")
		}
		if _, ok := s.addresses[c.Addr]; !ok {
			bad = append(bad, "customer with dangling address")
		}
	}
	for _, id := range detsort.Keys(s.orders) {
		o := s.orders[id]
		if o.ID != id {
			bad = append(bad, "order id mismatch")
		}
		if _, ok := s.customers[o.Customer]; !ok {
			bad = append(bad, "order with dangling customer")
		}
		if len(o.Lines) == 0 {
			bad = append(bad, "order without lines")
		}
		want := o.SubTotal + o.Tax + shippingCost(len(o.Lines))
		if diff := o.Total - want; diff > 1e-6 || diff < -1e-6 {
			bad = append(bad, "order total mismatch")
		}
	}
	for _, id := range detsort.Keys(s.items) {
		if s.items[id].Stock < 0 {
			bad = append(bad, "negative stock")
		}
	}
	if len(bad) > 8 {
		bad = bad[:8]
	}
	return bad
}
