// Package detsort provides the sanctioned way to iterate Go maps inside
// the deterministic replica packages: collect the keys, sort them, walk
// them in order. The Go runtime randomizes map iteration order on
// purpose, and any map range whose body reaches an order-sensitive sink
// (a message send, a proposal, a WAL append, an exported slice) leaks
// that randomness into replica-visible behaviour — the bug class the
// detorder analyzer (internal/analysis/detorder) rejects. Replacing
//
//	for k, v := range m { emit(k, v) }
//
// with
//
//	for _, k := range detsort.Keys(m) { emit(k, m[k]) }
//
// makes the iteration replayable on every replica and every run.
package detsort

import (
	"cmp"
	"slices"
)

// Keys returns m's keys in ascending order.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// KeysFunc returns m's keys ordered by less, for key types without a
// natural order.
func KeysFunc[K comparable, V any](m map[K]V, less func(a, b K) int) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.SortFunc(ks, less)
	return ks
}
