package core

import (
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/paxos"
	"robuststore/internal/sim"
)

// TestDisableRemoteSnapshotBlocksForever: with the fallback off and the
// needed log suffix compacted everywhere, a restarted replica must NOT
// silently adopt a wrong state; it stays un-recovered.
func TestDisableRemoteSnapshotBlocksForever(t *testing.T) {
	c := newCoreCluster(t, 3, 31, func(id int, cfg *Config) {
		cfg.CheckpointInterval = 3 * time.Second
		cfg.RetainInstances = 1
		cfg.DisableRemoteSnapshot = true
	})
	for i := 0; i < 40; i++ {
		c.submit(2*time.Second+time.Duration(i)*10*time.Millisecond, i%3,
			incAction{Key: "a", Delta: 1})
	}
	c.s.After(4*time.Second, func() { c.s.Crash(2) })
	for i := 0; i < 60; i++ {
		c.submit(5*time.Second+time.Duration(i)*20*time.Millisecond, i%2,
			incAction{Key: "b", Delta: 1})
	}
	c.s.After(25*time.Second, func() { c.s.Restart(2) })
	c.s.RunFor(60 * time.Second)

	// The survivors are fine; node 2 must be stuck behind the gap, not
	// silently divergent.
	if c.machines[0].ops != 100 {
		t.Fatalf("survivor applied %d ops", c.machines[0].ops)
	}
	if c.replicas[2].Recovered() && c.machines[2].ops != 100 {
		t.Fatalf("node 2 claims recovery with %d ops (divergent state)", c.machines[2].ops)
	}
}

// TestCheckpointSkippedWhileRecovering: a checkpoint triggered while the
// application state is still loading must be a harmless no-op.
func TestCheckpointSkippedWhileRecovering(t *testing.T) {
	c := newCoreCluster(t, 3, 32, nil)
	for i := 0; i < 30; i++ {
		c.submit(2*time.Second+time.Duration(i)*10*time.Millisecond, i%3,
			incAction{Key: "a", Delta: 1})
	}
	c.s.After(4*time.Second, func() { c.replicas[0].Checkpoint(nil) })
	c.s.After(8*time.Second, func() { c.s.Crash(0) })
	c.s.After(9*time.Second, func() { c.s.Restart(0) })
	// Immediately after restart the app snapshot is still streaming;
	// Checkpoint must not corrupt anything.
	done := false
	c.s.After(9100*time.Millisecond, func() {
		c.replicas[0].Checkpoint(func() { done = true })
	})
	c.s.RunFor(40 * time.Second)
	if !done {
		t.Fatal("checkpoint during recovery never completed its callback")
	}
	c.requireConverged(t, 30)
}

// TestSubmitResultAfterRecoveryUsesFreshEpoch: a recovered replica's new
// submissions must execute exactly once (the incarnation-epoch regression:
// without epochs, a restarted proposer's value ids collide with its
// previous life's and get deduplicated away).
func TestSubmitResultAfterRecoveryUsesFreshEpoch(t *testing.T) {
	c := newCoreCluster(t, 3, 33, nil)
	for i := 0; i < 20; i++ {
		c.submit(2*time.Second+time.Duration(i)*10*time.Millisecond, 2,
			incAction{Key: "pre", Delta: 1})
	}
	c.s.After(4*time.Second, func() { c.s.Crash(2) })
	c.s.After(6*time.Second, func() { c.s.Restart(2) })
	c.s.RunFor(20 * time.Second)

	// New submissions at the recovered node must apply and return.
	got := 0
	for i := 0; i < 10; i++ {
		c.s.After(time.Duration(i)*50*time.Millisecond, func() {
			c.replicas[2].Submit(incAction{Key: "post", Delta: 1},
				func(any, error) { got++ })
		})
	}
	c.s.RunFor(15 * time.Second)
	if got != 10 {
		t.Fatalf("only %d/10 post-recovery submissions completed", got)
	}
	c.requireConverged(t, 30)
}

// TestReplayDoesNotResolveNewSubmissions: pending sequence numbers
// restart at zero with every incarnation, so a command replayed from the
// previous life of this node (same origin, same low seq) must not resolve
// a submission made by the current one — without the command epoch, a
// post-crash replay hands the caller the result of a different, older
// action (observed as a CartResult arriving for a BuyConfirm in the live
// bookstore).
func TestReplayDoesNotResolveNewSubmissions(t *testing.T) {
	// A single-member group replays its own WAL on restart — the exact
	// shape of the degenerate Servers=1 deployments the sharded
	// faultloads sweep, and the widest replay window.
	c := newCoreCluster(t, 1, 17, nil)
	// Seed the log with node 0's own commands: seqs 1..20 on key "a".
	for i := 0; i < 20; i++ {
		c.submit(2*time.Second+time.Duration(i)*10*time.Millisecond, 0,
			incAction{Key: "a", Delta: 1})
	}
	c.s.After(4*time.Second, func() { c.s.Crash(0) })
	c.s.After(6*time.Second, func() { c.s.Restart(0) })

	// Submit from the fresh incarnation as soon as it accepts work — its
	// seq 1 races the replay of old seq 1 (result would be "a"'s counter,
	// 1, instead of "b"'s, 5).
	var result any
	fired := 0
	var trySubmit func()
	trySubmit = func() {
		if r := c.replicas[0]; c.s.Alive(0) && r.Ready() {
			r.Submit(incAction{Key: "b", Delta: 5}, func(res any, err error) {
				if err == nil {
					result = res
					fired++
				}
			})
			return
		}
		c.s.After(5*time.Millisecond, trySubmit)
	}
	c.s.After(6*time.Second+time.Millisecond, trySubmit)

	c.s.RunFor(30 * time.Second)
	if fired != 1 {
		t.Fatalf("post-restart submission completed %d times, want 1", fired)
	}
	if got, ok := result.(int64); !ok || got != 5 {
		t.Fatalf("post-restart submission got result %v, want 5 (its own action's result)", result)
	}
	c.requireConverged(t, 21)
}

// TestQueueMembersOption: a cluster with a non-member bystander node must
// compute quorums over the members only.
func TestQueueMembersOption(t *testing.T) {
	members := []env.NodeID{0, 1, 2}
	c := &coreCluster{
		replicas:  make([]*Replica, 3),
		machines:  make([]*kvMachine, 3),
		recovered: make([]int, 3),
	}
	c.s = sim.New(sim.Config{Seed: 13})
	for i := 0; i < 3; i++ {
		id := i
		c.s.AddNode(func() env.Node {
			r := NewReplica(Config{
				Machine: func() StateMachine {
					m := newKVMachine()
					c.machines[id] = m
					return m
				},
				Paxos: paxos.Config{Members: members, BatchDelay: 2 * time.Millisecond},
			})
			c.replicas[id] = r
			return r
		})
	}
	// A bystander that never participates (like the web tier's proxy).
	c.s.AddNode(func() env.Node { return bystander{} })
	c.s.StartAll()

	c.submit(2*time.Second, 0, incAction{Key: "x", Delta: 1})
	// One member down: 2 of 3 members is still a majority even though
	// only 2 of 4 runtime nodes are consensus participants.
	c.s.After(3*time.Second, func() { c.s.Crash(1) })
	c.submit(4*time.Second, 0, incAction{Key: "x", Delta: 1})
	c.s.RunFor(10 * time.Second)
	if c.machines[0].ops != 2 {
		t.Fatalf("applied %d ops; members-scoped quorum broken", c.machines[0].ops)
	}
}

type bystander struct{}

func (bystander) Start(env.Env)                   {}
func (bystander) Receive(env.NodeID, env.Message) {}
