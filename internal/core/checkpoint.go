package core

import (
	"sync"
	"time"
)

// checkpointSweepInterval is how often CheckpointFanout re-checks its
// targets for crashed or replaced incarnations.
const checkpointSweepInterval = time.Second

// CheckpointFanout forces a checkpoint on every target replica and calls
// done once all have completed, crash-aware: a replica that dies
// mid-checkpoint loses its storage completion with the rest of its
// volatile state, so a periodic sweep (scheduled through after) counts
// targets for which gone reports true — dead, or replaced by a newer
// incarnation — as finished rather than letting done hang forever.
//
// Completion is mutex-protected so it is safe when storage callbacks and
// the sweep arrive from different goroutines (the live runtime); under a
// single-threaded simulator the lock is uncontended. A nil after disables
// the sweep (completion then relies on every target surviving).
func CheckpointFanout(targets []*Replica, gone func(k int) bool,
	after func(time.Duration, func()), done func()) {

	if len(targets) == 0 {
		if done != nil {
			done()
		}
		return
	}
	var mu sync.Mutex
	completed := make([]bool, len(targets))
	remaining := len(targets)
	finish := func(k int) {
		mu.Lock()
		if completed[k] {
			mu.Unlock()
			return
		}
		completed[k] = true
		remaining--
		last := remaining == 0
		mu.Unlock()
		if last && done != nil {
			done()
		}
	}
	for k, t := range targets {
		k := k
		t.Checkpoint(func() { finish(k) })
	}
	if after == nil {
		return
	}
	var sweep func()
	sweep = func() {
		mu.Lock()
		rem := remaining
		mu.Unlock()
		if rem == 0 {
			return
		}
		for k := range targets {
			if gone(k) {
				finish(k)
			}
		}
		mu.Lock()
		rem = remaining
		mu.Unlock()
		if rem > 0 {
			after(checkpointSweepInterval, sweep)
		}
	}
	after(checkpointSweepInterval, sweep)
}
