package core

import (
	"fmt"
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/paxos"
	"robuststore/internal/sim"
)

// kvDeltaMachine extends kvMachine with the incremental-checkpoint
// capability: dirty-key tracking, delta capture and delta merge.
type kvDeltaMachine struct {
	kvMachine
	dirty    map[string]struct{}
	anchored bool
	dropped  bool  // DropOwned seen since the last anchor
	boost    int64 // extra nominal Snapshot size (models a large state)
}

func newKVDeltaMachine() *kvDeltaMachine {
	return &kvDeltaMachine{
		kvMachine: kvMachine{counts: make(map[string]int64)},
		dirty:     make(map[string]struct{}),
	}
}

func (m *kvDeltaMachine) Execute(action any) any {
	if a, ok := action.(incAction); ok {
		m.dirty[a.Key] = struct{}{}
	}
	return m.kvMachine.Execute(action)
}

func (m *kvDeltaMachine) Snapshot() (any, int64) {
	m.dirty = make(map[string]struct{})
	m.anchored = true
	m.dropped = false
	data, size := m.kvMachine.Snapshot()
	return data, size + m.boost
}

func (m *kvDeltaMachine) Restore(data any) {
	m.kvMachine.Restore(data)
	m.dirty = make(map[string]struct{})
	m.anchored = true
	m.dropped = false
}

type kvDeltaPayload struct {
	Counts map[string]int64
	Ops    int64
}

func (m *kvDeltaMachine) SnapshotDelta() (any, int64, bool) {
	if !m.anchored || m.dropped {
		return nil, 0, false
	}
	p := kvDeltaPayload{Counts: make(map[string]int64, len(m.dirty)), Ops: m.ops}
	for k := range m.dirty {
		p.Counts[k] = m.counts[k]
	}
	m.dirty = make(map[string]struct{})
	return p, int64(64 + 32*len(p.Counts)), true
}

func (m *kvDeltaMachine) ApplyDelta(data any) {
	p, ok := data.(kvDeltaPayload)
	if !ok {
		return
	}
	for k, v := range p.Counts {
		m.counts[k] = v
	}
	m.ops = p.Ops
	m.dirty = make(map[string]struct{})
	m.anchored = true
	m.dropped = false
}

// The partition capability, for the drop-truncates-chain tests: keys
// are owned literally.
func (m *kvDeltaMachine) ExportOwned(owned func(string) bool) (any, int64) {
	cp := make(map[string]int64)
	for k, v := range m.counts {
		if owned(k) {
			cp[k] = v
		}
	}
	return cp, int64(32 * len(cp))
}

func (m *kvDeltaMachine) ImportOwned(data any) {
	cp, ok := data.(map[string]int64)
	if !ok {
		return
	}
	for k, v := range cp {
		m.counts[k] = v
		m.dirty[k] = struct{}{}
	}
}

func (m *kvDeltaMachine) DropOwned(owned func(string) bool) {
	for k := range m.counts {
		if owned(k) {
			delete(m.counts, k)
			delete(m.dirty, k)
		}
	}
	m.dropped = true
}

// deltaCluster wires delta-capable replicas into the simulator, mirroring
// coreCluster.
type deltaCluster struct {
	s        *sim.Sim
	replicas []*Replica
	machines []*kvDeltaMachine
}

func newDeltaCluster(t *testing.T, n int, seed uint64, tweak func(id int, c *Config)) *deltaCluster {
	t.Helper()
	c := &deltaCluster{
		replicas: make([]*Replica, n),
		machines: make([]*kvDeltaMachine, n),
	}
	c.s = sim.New(sim.Config{Seed: seed})
	for i := 0; i < n; i++ {
		id := i
		c.s.AddNode(func() env.Node {
			cfg := Config{
				CheckpointInterval: 10 * time.Second,
				Machine: func() StateMachine {
					m := newKVDeltaMachine()
					c.machines[id] = m
					return m
				},
			}
			if tweak != nil {
				tweak(id, &cfg)
			}
			r := NewReplica(cfg)
			c.replicas[id] = r
			return r
		})
	}
	c.s.StartAll()
	return c
}

func (c *deltaCluster) submit(d time.Duration, id int, a incAction) {
	c.s.After(d, func() {
		if c.s.Alive(env.NodeID(id)) {
			c.replicas[id].Submit(a, nil)
		}
	})
}

func (c *deltaCluster) requireConverged(t *testing.T, wantOps int64) {
	t.Helper()
	for id, m := range c.machines {
		if !c.s.Alive(env.NodeID(id)) {
			continue
		}
		if m.ops != wantOps {
			t.Errorf("node %d applied %d ops, want %d", id, m.ops, wantOps)
		}
	}
	var ref *kvDeltaMachine
	for id, m := range c.machines {
		if !c.s.Alive(env.NodeID(id)) {
			continue
		}
		if ref == nil {
			ref = m
			continue
		}
		if len(m.counts) != len(ref.counts) {
			t.Fatalf("node %d state size %d != %d", id, len(m.counts), len(ref.counts))
		}
		for k, v := range ref.counts {
			if m.counts[k] != v {
				t.Fatalf("node %d: counts[%q]=%d, want %d", id, k, m.counts[k], v)
			}
		}
	}
}

// TestCheckpointPhaseWraps: the stagger phase is me mod 8 eighths of the
// interval — node IDs past 8 must wrap instead of delaying their first
// checkpoint by whole multiples of the interval (and re-synchronizing
// groups into lockstep pauses).
func TestCheckpointPhaseWraps(t *testing.T) {
	const iv = 80 * time.Second
	for _, tc := range []struct {
		me   env.NodeID
		want time.Duration
	}{
		{0, 0}, {1, 10 * time.Second}, {7, 70 * time.Second},
		{8, 0}, {9, 10 * time.Second}, {23, 70 * time.Second},
	} {
		if got := checkpointPhase(tc.me, iv); got != tc.want {
			t.Errorf("checkpointPhase(%d) = %v, want %v", tc.me, got, tc.want)
		}
	}
	for me := env.NodeID(0); me < 64; me++ {
		if p := checkpointPhase(me, iv); p >= iv {
			t.Errorf("node %d: phase %v exceeds the interval", me, p)
		}
	}
}

// deltaRun drives one fixed workload with a crash/restart of node 0 and
// returns the cluster; used by the equivalence test below with different
// machine/config combinations.
func deltaRun(t *testing.T, seed uint64, delta bool, tweak func(id int, c *Config)) (*sim.Sim, []paxos.InstanceID, []int64, map[string]int64) {
	t.Helper()
	var submit func(d time.Duration, id int, a incAction)
	var s *sim.Sim
	var replicas []*Replica
	machineState := func() (map[string]int64, int64) { return nil, 0 }
	if delta {
		c := newDeltaCluster(t, 3, seed, tweak)
		s, replicas, submit = c.s, c.replicas, c.submit
		machineState = func() (map[string]int64, int64) { return c.machines[1].counts, c.machines[1].ops }
	} else {
		c := newCoreCluster(t, 3, seed, func(id int, cfg *Config) {
			cfg.CheckpointInterval = 10 * time.Second
			cfg.Paxos = paxos.Config{}
			if tweak != nil {
				tweak(id, cfg)
			}
		})
		s, replicas, submit = c.s, c.replicas, c.submit
		machineState = func() (map[string]int64, int64) { return c.machines[1].counts, c.machines[1].ops }
	}
	const total = 150
	for i := 0; i < total; i++ {
		submit(2*time.Second+time.Duration(i)*100*time.Millisecond, i%3,
			incAction{Key: fmt.Sprintf("k%d", i%11), Delta: int64(1 + i%3)})
	}
	s.After(12*time.Second, func() { s.Crash(0) })
	s.After(16*time.Second, func() { s.Restart(0) })
	s.RunFor(40 * time.Second)
	lasts := make([]paxos.InstanceID, 3)
	applied := make([]int64, 3)
	for i, r := range replicas {
		lasts[i] = r.LastApplied()
		applied[i] = r.AppliedCount()
	}
	counts, ops := machineState()
	cp := make(map[string]int64, len(counts))
	for k, v := range counts {
		cp[k] = v
	}
	_ = ops
	return s, lasts, applied, cp
}

// TestFullCheckpointEquivalence: a machine without DeltaSnapshotter, and
// a delta-capable machine with Config.FullCheckpoints, must both take the
// legacy monolithic path and behave identically — same instances applied
// at the same virtual times, same final state. The delta path must reach
// the same final state while writing far fewer checkpoint bytes.
func TestFullCheckpointEquivalence(t *testing.T) {
	const seed = 77
	_, lastA, appliedA, countsA := deltaRun(t, seed, false, nil)
	_, lastB, appliedB, countsB := deltaRun(t, seed, true, func(id int, c *Config) { c.FullCheckpoints = true })
	for i := range lastA {
		if lastA[i] != lastB[i] || appliedA[i] != appliedB[i] {
			t.Errorf("node %d diverged: plain machine (last=%d applied=%d) vs FullCheckpoints delta machine (last=%d applied=%d)",
				i, lastA[i], appliedA[i], lastB[i], appliedB[i])
		}
	}
	if len(countsA) != len(countsB) {
		t.Fatalf("final states differ in size: %d vs %d", len(countsA), len(countsB))
	}
	for k, v := range countsA {
		if countsB[k] != v {
			t.Errorf("counts[%q]: %d vs %d", k, v, countsB[k])
		}
	}
	// The incremental path: same final state, different (cheaper) I/O.
	_, _, _, countsC := deltaRun(t, seed, true, nil)
	for k, v := range countsA {
		if countsC[k] != v {
			t.Errorf("incremental counts[%q]: %d, want %d", k, countsC[k], v)
		}
	}
}

// TestDeltaChainRecovery: a crashed replica recovers from base + delta
// layers and re-applies only the log suffix; steady-state checkpoints are
// deltas, not bases.
func TestDeltaChainRecovery(t *testing.T) {
	c := newDeltaCluster(t, 3, 31, func(id int, cfg *Config) {
		// The toy machine's deltas rival its base in size, which would
		// (correctly) trigger size-fraction compaction every round;
		// disable it so this test observes a growing chain.
		cfg.MaxChainFraction = 100
	})
	const phase1 = 200
	for i := 0; i < phase1; i++ {
		// Spread over ~30 s so traffic spans three checkpoint rounds.
		c.submit(2*time.Second+time.Duration(i)*150*time.Millisecond, i%3,
			incAction{Key: fmt.Sprintf("k%d", i%7), Delta: 1})
	}
	// Three checkpoint rounds (10 s interval) before the crash at 35 s.
	c.s.After(35*time.Second, func() {
		bases, deltas, _ := c.replicas[2].CheckpointStats()
		if bases != 1 || deltas < 2 {
			t.Errorf("steady state wrote %d bases / %d deltas, want 1 base and ≥2 deltas", bases, deltas)
		}
		c.s.Crash(2)
	})
	c.s.After(40*time.Second, func() { c.s.Restart(2) })
	const phase2 = 80
	for i := 0; i < phase2; i++ {
		c.submit(41*time.Second+time.Duration(i)*50*time.Millisecond, i%2,
			incAction{Key: fmt.Sprintf("k%d", i%7), Delta: 1})
	}
	c.s.RunFor(60 * time.Second)
	c.requireConverged(t, phase1+phase2)
	if !c.replicas[2].Recovered() {
		t.Fatal("node 2 never finished recovery")
	}
	// The chain restore must have carried the pre-crash prefix: the new
	// incarnation re-applies only the post-checkpoint suffix.
	if got := c.replicas[2].AppliedCount(); got >= phase1+phase2 {
		t.Errorf("node 2 re-applied the full history (%d ops); chain unused", got)
	}
}

// TestDeltaCompactionFoldsChain: the chain folds into a fresh base when
// it exceeds MaxDeltaChain, and the superseded layers are deleted.
func TestDeltaCompactionFoldsChain(t *testing.T) {
	c := newDeltaCluster(t, 3, 32, func(id int, cfg *Config) {
		cfg.CheckpointInterval = 5 * time.Second
		cfg.MaxDeltaChain = 2
	})
	const total = 300
	for i := 0; i < total; i++ {
		c.submit(2*time.Second+time.Duration(i)*150*time.Millisecond, i%3,
			incAction{Key: fmt.Sprintf("k%d", i%5), Delta: 1})
	}
	c.s.RunFor(60 * time.Second)
	c.requireConverged(t, total)
	// ~10 checkpoint rounds with MaxDeltaChain=2: base, d0, d1, base, …
	bases, deltas, _ := c.replicas[0].CheckpointStats()
	if bases < 3 {
		t.Errorf("only %d bases written; compaction never triggered (deltas %d)", bases, deltas)
	}
	if deltas < bases {
		t.Errorf("%d deltas vs %d bases; chain never grew between compactions", deltas, bases)
	}
	// The first base and its chain layers must have been garbage
	// collected once a later compaction committed.
	gone := map[string]bool{}
	for _, name := range []string{baseLayerName(1), deltaLayerName(1, 0)} {
		name := name
		c.s.Storage(0).LoadSnapshot(name, func(_ env.Snapshot, ok bool) { gone[name] = !ok })
	}
	c.s.RunFor(2 * time.Second)
	for name, ok := range gone {
		if !ok {
			t.Errorf("superseded layer %q still on disk after compaction", name)
		}
	}
	if len(gone) != 2 {
		t.Fatalf("GC probes did not complete: %v", gone)
	}
	// A crash after several compactions still recovers cleanly.
	c.s.Crash(1)
	c.s.After(2*time.Second, func() { c.s.Restart(1) })
	c.s.RunFor(15 * time.Second)
	c.requireConverged(t, total)
}

// TestPartitionDropTruncatesChain: rows removed by an ordered
// PartitionDrop must not resurrect from a stale delta layer — neither
// when the next checkpoint runs before the crash (it must fold into a
// fresh base) nor when the crash comes first (the retained WAL suffix
// replays the drop).
func TestPartitionDropTruncatesChain(t *testing.T) {
	for _, ckptAfterDrop := range []bool{true, false} {
		c := newDeltaCluster(t, 3, 33, func(id int, cfg *Config) {
			cfg.CheckpointInterval = time.Hour // manual checkpoints only
		})
		const total = 60
		for i := 0; i < total; i++ {
			c.submit(2*time.Second+time.Duration(i)*50*time.Millisecond, i%3,
				incAction{Key: fmt.Sprintf("k%d", i%6), Delta: 1})
		}
		// Base, then a delta layer that contains the soon-dropped rows.
		c.s.After(6*time.Second, func() { c.replicas[0].Checkpoint(nil) })
		c.s.After(8*time.Second, func() { c.replicas[0].Checkpoint(nil) })
		// The ordered drop removes k0 and k1 everywhere.
		c.s.After(10*time.Second, func() {
			c.replicas[0].Submit(PartitionDrop{Epoch: 1, Owned: func(key string) bool {
				return key == "k0" || key == "k1"
			}}, nil)
		})
		if ckptAfterDrop {
			c.s.After(12*time.Second, func() { c.replicas[0].Checkpoint(nil) })
		}
		var basesBeforeCrash int64
		c.s.After(15*time.Second, func() { basesBeforeCrash, _, _ = c.replicas[0].CheckpointStats() })
		c.s.After(16*time.Second, func() { c.s.Crash(0) })
		c.s.After(18*time.Second, func() { c.s.Restart(0) })
		c.s.RunFor(40 * time.Second)

		if ckptAfterDrop && basesBeforeCrash < 2 {
			// The post-drop checkpoint must have folded into a fresh
			// base (chain truncation), not appended a delta.
			t.Errorf("ckptAfterDrop: %d bases before the crash, want 2 (initial + post-drop fold)",
				basesBeforeCrash)
		}
		for id, m := range c.machines {
			for _, k := range []string{"k0", "k1"} {
				if _, ok := m.counts[k]; ok {
					t.Errorf("ckptAfterDrop=%v: node %d resurrected dropped row %q = %d",
						ckptAfterDrop, id, k, m.counts[k])
				}
			}
		}
		if !c.replicas[0].Recovered() {
			t.Errorf("ckptAfterDrop=%v: node 0 never finished recovery", ckptAfterDrop)
		}
	}
}

// TestRemoteLayeredSnapshotStreamsMissingLayers: a replica whose needed
// log suffix was compacted everywhere falls back to a layered remote
// snapshot; a second fallback from the same peer base must ship only the
// delta layers the requester does not hold yet.
func TestRemoteLayeredSnapshotStreamsMissingLayers(t *testing.T) {
	c := newDeltaCluster(t, 3, 34, func(id int, cfg *Config) {
		cfg.CheckpointInterval = 3 * time.Second
		cfg.RetainInstances = 1 // compact aggressively
	})
	const phase1 = 60
	for i := 0; i < phase1; i++ {
		c.submit(2*time.Second+time.Duration(i)*20*time.Millisecond, i%3,
			incAction{Key: fmt.Sprintf("k%d", i%5), Delta: 1})
	}
	c.s.After(4*time.Second, func() { c.s.Crash(2) })
	const phase2 = 80
	for i := 0; i < phase2; i++ {
		c.submit(5*time.Second+time.Duration(i)*100*time.Millisecond, i%2,
			incAction{Key: fmt.Sprintf("k%d", i%5), Delta: 1})
	}
	// The survivors checkpoint and compact past node 2's horizon; its
	// first remote restore carries a base.
	c.s.After(20*time.Second, func() { c.s.Restart(2) })
	c.s.RunFor(35 * time.Second)
	c.requireConverged(t, phase1+phase2)
	if c.replicas[2].remoteBaseID == 0 {
		t.Fatal("node 2 recovered without a remote layered snapshot")
	}
	firstBase, firstLayers := c.replicas[2].remoteBaseID, c.replicas[2].remoteLayers

	// Knock it out again past the survivors' horizon: the second
	// fallback should extend the same remote base with only new layers.
	c.s.Crash(2)
	const phase3 = 80
	for i := 0; i < phase3; i++ {
		c.submit(time.Duration(i)*100*time.Millisecond, i%2,
			incAction{Key: fmt.Sprintf("k%d", i%5), Delta: 1})
	}
	c.s.After(15*time.Second, func() { c.s.Restart(2) })
	// Post-restore traffic: the restored replica's next periodic
	// checkpoint has something to write, so it folds into a fresh base
	// (its local chain was orphaned by the remote restore).
	const phase4 = 40
	for i := 0; i < phase4; i++ {
		c.submit(18*time.Second+time.Duration(i)*100*time.Millisecond, i%3,
			incAction{Key: fmt.Sprintf("k%d", i%5), Delta: 1})
	}
	c.s.RunFor(30 * time.Second)
	c.requireConverged(t, phase1+phase2+phase3+phase4)
	if c.replicas[2].remoteBaseID == firstBase && c.replicas[2].remoteLayers <= firstLayers {
		t.Errorf("second fallback did not extend the chain: base %d layers %d → base %d layers %d",
			firstBase, firstLayers, c.replicas[2].remoteBaseID, c.replicas[2].remoteLayers)
	}
	// The remote restore orphaned node 2's local chain in memory; the
	// next local base write must garbage-collect those durable layers,
	// not leak them forever (node 2 checkpoints every 3 s here, so its
	// first post-restore fold has long since committed).
	leaked, probed := false, false
	c.s.Storage(2).LoadSnapshot(baseLayerName(1), func(_ env.Snapshot, ok bool) {
		leaked, probed = ok, true
	})
	c.s.RunFor(2 * time.Second)
	if !probed {
		t.Fatal("leak probe did not complete")
	}
	if leaked {
		t.Error("pre-crash base layer still on disk: remote restore leaked the superseded chain")
	}
}

// tornChainRun drives a fixed manual-checkpoint schedule on node 0 with a
// ~50 MB base (so base writes occupy the disk for over a second) and
// reports when the target checkpoint became durable. With crashAt > 0 the
// node is killed at that virtual offset and restarted 2 s later; the run
// then asserts recovery lands on a consistent (base, chain) prefix. The
// caller first records doneAt from an uncrashed run (the sim is
// deterministic per seed), then replays with the crash planted inside the
// exact write window under test.
//
// compact=false targets the delta→manifest commit: the final checkpoint
// appends a delta layer (crash window: after the layer is durable, before
// the manifest is). compact=true targets mid-compaction: MaxDeltaChain=1
// makes the final checkpoint fold into a big fresh base (crash window:
// while the base image is being written, manifest untouched).
func tornChainRun(t *testing.T, compact bool, crashAt time.Duration) (doneAt time.Duration, c *deltaCluster) {
	t.Helper()
	c = &deltaCluster{
		replicas: make([]*Replica, 3),
		machines: make([]*kvDeltaMachine, 3),
	}
	c.s = sim.New(sim.Config{Seed: 55})
	for i := 0; i < 3; i++ {
		id := i
		c.s.AddNode(func() env.Node {
			cfg := Config{
				CheckpointInterval: time.Hour, // manual checkpoints only
				Machine: func() StateMachine {
					m := newKVDeltaMachine()
					m.boost = 50 << 20
					c.machines[id] = m
					return m
				},
			}
			if compact {
				cfg.MaxDeltaChain = 1
				cfg.MaxChainFraction = 100
			}
			r := NewReplica(cfg)
			c.replicas[id] = r
			return r
		})
	}
	c.s.StartAll()
	start := c.s.Now()
	for i := 0; i < 40; i++ {
		c.submit(time.Second+time.Duration(i)*50*time.Millisecond, i%3,
			incAction{Key: fmt.Sprintf("k%d", i%6), Delta: 1})
	}
	c.s.After(4*time.Second, func() { c.replicas[0].Checkpoint(nil) }) // base 1 (big)
	for i := 0; i < 40; i++ {
		c.submit(7*time.Second+time.Duration(i)*50*time.Millisecond, i%3,
			incAction{Key: fmt.Sprintf("k%d", i%6), Delta: 1})
	}
	finalAt := 10 * time.Second
	if compact {
		// An intermediate delta fills the chain to MaxDeltaChain, so the
		// final checkpoint is a compaction.
		c.s.After(10*time.Second, func() { c.replicas[0].Checkpoint(nil) })
		for i := 0; i < 40; i++ {
			c.submit(12*time.Second+time.Duration(i)*50*time.Millisecond, i%3,
				incAction{Key: fmt.Sprintf("k%d", i%6), Delta: 1})
		}
		finalAt = 15 * time.Second
	}
	c.s.After(finalAt, func() {
		c.replicas[0].Checkpoint(func() { doneAt = c.s.Now().Sub(start) })
	})
	if crashAt > 0 {
		c.s.After(crashAt, func() { c.s.Crash(0) })
		c.s.After(crashAt+2*time.Second, func() { c.s.Restart(0) })
	}
	c.s.RunFor(finalAt + 15*time.Second)
	return doneAt, c
}

// TestCrashBetweenDeltaAndManifest: a crash after the delta layer is
// durable but before the manifest commits must leave the previous chain
// in force — the orphan layer is never half-adopted — and recovery plus
// WAL replay reconverges.
func TestCrashBetweenDeltaAndManifest(t *testing.T) {
	doneAt, _ := tornChainRun(t, false, 0)
	if doneAt == 0 {
		t.Fatal("recording run: final checkpoint never completed")
	}
	// The manifest write costs at least one disk sync (4 ms); 2 ms before
	// completion the delta layer is durable and the manifest is not.
	_, c := tornChainRun(t, false, doneAt-2*time.Millisecond)
	total := int64(80)
	c.requireConverged(t, total)
	if !c.replicas[0].Recovered() {
		t.Fatal("node 0 never finished recovery")
	}
	// The restored manifest must be the pre-checkpoint one: base only, no
	// delta layer adopted (the orphan stayed orphaned).
	if n := len(c.replicas[0].chain); n != 0 {
		t.Errorf("recovered chain has %d layers, want 0 (manifest never committed)", n)
	}
	// Pin the window: the delta layer itself must have been durable at
	// the crash — otherwise this run exercised an earlier, easier crash
	// point, not the layer/manifest gap.
	orphan := false
	probed := false
	c.s.Storage(0).LoadSnapshot(deltaLayerName(1, 0), func(_ env.Snapshot, ok bool) {
		orphan, probed = ok, true
	})
	c.s.RunFor(2 * time.Second)
	if !probed {
		t.Fatal("orphan probe did not complete")
	}
	if !orphan {
		t.Error("delta layer not durable at crash time; the test missed the layer→manifest window")
	}
}

// TestCrashMidCompaction: a crash while the compacted base image is being
// written must leave the old (base, chain) pair in force; the half-written
// base is never referenced.
func TestCrashMidCompaction(t *testing.T) {
	doneAt, _ := tornChainRun(t, true, 0)
	if doneAt == 0 {
		t.Fatal("recording run: compaction never completed")
	}
	// The 50 MB base write occupies the disk for ~1.1 s before the
	// manifest write even starts: 600 ms before completion is safely
	// inside the base image write.
	_, c := tornChainRun(t, true, doneAt-600*time.Millisecond)
	total := int64(120)
	c.requireConverged(t, total)
	if !c.replicas[0].Recovered() {
		t.Fatal("node 0 never finished recovery")
	}
	r := c.replicas[0]
	if r.baseName != baseLayerName(1) || len(r.chain) != 1 {
		t.Errorf("recovered onto base %q with %d layers, want the pre-compaction chain (%q + 1 delta)",
			r.baseName, len(r.chain), baseLayerName(1))
	}
}

// TestDeltaWholeGroupCrashRecovers: every member of the group crashes and
// restarts together — recovery must come entirely from local delta chains
// plus each member's own WAL, with no live peer to lean on.
func TestDeltaWholeGroupCrashRecovers(t *testing.T) {
	c := newDeltaCluster(t, 3, 21, nil)
	const phase1 = 120
	for i := 0; i < phase1; i++ {
		c.submit(2*time.Second+time.Duration(i)*100*time.Millisecond, i%3,
			incAction{Key: fmt.Sprintf("k%d", i%9), Delta: 1})
	}
	// Several checkpoint rounds (10 s interval), then the whole group dies.
	c.s.After(25*time.Second, func() {
		for id := 0; id < 3; id++ {
			c.s.Crash(env.NodeID(id))
		}
	})
	c.s.After(35*time.Second, func() {
		for id := 0; id < 3; id++ {
			c.s.Restart(env.NodeID(id))
		}
	})
	const phase2 = 60
	for i := 0; i < phase2; i++ {
		c.submit(40*time.Second+time.Duration(i)*100*time.Millisecond, i%3,
			incAction{Key: fmt.Sprintf("k%d", i%9), Delta: 1})
	}
	c.s.RunFor(70 * time.Second)
	c.requireConverged(t, phase1+phase2)
	for id := 0; id < 3; id++ {
		if !c.replicas[id].Recovered() {
			t.Errorf("node %d never finished recovery", id)
		}
	}
}
