// Package core implements Treplica (paper §2): middleware for building
// highly available applications over an asynchronous persistent queue
// backed by Paxos and Fast Paxos (internal/paxos).
//
// Two programming abstractions are offered, mirroring the paper:
//
//   - Replica: the state machine interface. The application is a black box
//     whose deterministic transitions ("actions") are totally ordered and
//     executed on every replica; getState()/checkpointing and recovery are
//     transparent.
//   - Queue: the asynchronous persistent queue, a totally ordered
//     collection of objects with asynchronous Enqueue and blocking
//     Dequeue.
//
// Recovery follows §2 and §5.4: a restarted replica loads its most recent
// local checkpoint and, in parallel, learns the missing log suffix from
// the active replicas; once re-synchronized it proceeds as if it had never
// crashed. When the suffix is no longer retained anywhere, the replica
// falls back to a full remote state transfer (an extension the paper's
// retention policy avoids).
package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/paxos"
)

// StateMachine is the application contract: a deterministic black box.
// Execute must be a pure function of the current state and the action —
// all non-determinism (timestamps, random numbers) must be captured inside
// the action by the caller before submission, exactly as RobustStore does
// for TPC-W (paper §4, task II).
type StateMachine interface {
	// Execute applies one action and returns its result.
	Execute(action any) any

	// Snapshot returns an immutable deep copy of the state plus its
	// nominal serialized size in bytes (the paper's 300/500/700 MB
	// state sizes drive recovery time through this value).
	Snapshot() (data any, size int64)

	// Restore replaces the state from a Snapshot payload.
	Restore(data any)
}

// Config parameterizes a Replica.
type Config struct {
	// Machine builds a fresh, empty state machine for each incarnation.
	Machine func() StateMachine

	// FastPaxos enables fast rounds while ⌈3N/4⌉ replicas are alive.
	FastPaxos bool

	// CheckpointInterval is the period between checkpoints. Default
	// 60 s.
	CheckpointInterval time.Duration

	// RetainInstances is how many decided instances are kept past the
	// last checkpoint to serve recovering peers. Default 200000.
	RetainInstances int64

	// SequentialRecovery disables the checkpoint-load ∥ suffix-learning
	// overlap of §5.4 (ablation): consensus boots only after the
	// application checkpoint has been restored.
	SequentialRecovery bool

	// DisableRemoteSnapshot forbids a replica whose needed log suffix
	// was compacted everywhere from fetching a full checkpoint from a
	// peer (the paper's Treplica recovers from the local checkpoint
	// plus the learned suffix only; the remote fallback is an
	// extension, enabled by default).
	DisableRemoteSnapshot bool

	// FullCheckpoints forces the monolithic full-state checkpoint path
	// even when the machine implements DeltaSnapshotter — the baseline
	// the incremental pipeline is compared against (exp.CheckpointCurve).
	// Machines without the capability always use the monolithic path.
	FullCheckpoints bool

	// MaxDeltaChain caps how many delta layers stack on one base before
	// the next checkpoint compacts the chain back into a fresh base
	// (bounding recovery to base + MaxDeltaChain layer reads).
	// Default 8.
	MaxDeltaChain int

	// MaxChainFraction compacts earlier when the chain's accumulated
	// delta bytes exceed this fraction of the base size (bounding the
	// redundant bytes recovery reads). Default 0.5.
	MaxChainFraction float64

	// ActionSize models an action's serialized size in bytes; nil means
	// 160 bytes.
	ActionSize func(action any) int64

	// Paxos carries engine tuning (batching, timeouts). Deliver,
	// CmdSize, FastEnabled and OnCatchUpGap are owned by the replica
	// and ignored here.
	Paxos paxos.Config

	// OnCheckpoint, if non-nil, is invoked when a checkpoint starts,
	// with its size; the web tier uses it to charge the serialization
	// pause to the replica CPU.
	OnCheckpoint func(size int64)

	// OnRecovered, if non-nil, fires once per incarnation when a
	// replica that started from a checkpoint has re-synchronized with
	// the cluster (recovery-time measurements, Figure 6).
	OnRecovered func()

	// OnReady, if non-nil, fires when the application state is restored
	// and the replica can serve local reads.
	OnReady func()

	// OnTxnStaged, if non-nil, fires whenever a TxnPrepare record stages
	// a branch on this replica — live submit, duplicate, or log replay
	// alike. The deployment tier arms its resolution loop here: readiness
	// rescans alone miss a prepare whose log record replays only after
	// the replica reported ready. Invoked on the replica's executor.
	OnTxnStaged func(id string, home int)
}

func (c Config) withDefaults() Config {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 60 * time.Second
	}
	if c.RetainInstances == 0 {
		c.RetainInstances = 200000
	}
	if c.ActionSize == nil {
		c.ActionSize = func(any) int64 { return 160 }
	}
	if c.MaxDeltaChain == 0 {
		c.MaxDeltaChain = 8
	}
	if c.MaxChainFraction == 0 {
		c.MaxChainFraction = 0.5
	}
	return c
}

// command is the envelope every action travels in: the origin replica and
// a local sequence number correlate results back to the submitter.
type command struct {
	Origin env.NodeID
	// Epoch identifies the origin's incarnation (its start time): pending
	// sequence numbers restart at zero with every incarnation, so a
	// command replayed from a previous one must not resolve a submission
	// of the current one — without this, a post-crash replay can hand a
	// caller the result of a different, older action.
	Epoch  int64
	Seq    int64
	Action any
}

// Snapshot payloads.
//
// metaSnap doubles as the layered-checkpoint manifest (delta.go): Base
// names the durable base snapshot, BaseID identifies it for remote
// missing-layer streaming, and Chain lists the delta layers stacked on
// it in application order. An empty Base means the legacy monolithic
// "app" snapshot. The manifest write is the atomic commit point of every
// checkpoint — layers are durable strictly before the manifest that
// references them, so a crash anywhere in between leaves the previous,
// consistent (base, chain) prefix in force.
type metaSnap struct {
	LastApplied paxos.InstanceID
	Base        string
	BaseID      int64
	Chain       []LayerRef
}

type appSnap struct {
	LastApplied paxos.InstanceID
	Delivered   paxos.DeliveredState
	Data        any
	Size        int64

	// Imported is the partition-import dedup set at the checkpoint (see
	// executeAction): restored with the state so a replica recovering
	// from this checkpoint skips exactly the transfers the state already
	// contains.
	Imported map[importKey]bool

	// Cross-shard transaction state at the checkpoint (txn.go), restored
	// with the state for the same reason: a recovering replica must hold
	// exactly the prepared branches, terminal transactions and recorded
	// decisions its state reflects, or replayed records would re-stage or
	// re-apply.
	TxnPrepared  map[string]StagedTxn
	TxnDone      map[string]bool
	TxnDecisions map[string]bool
}

// Core-level transfer messages (remote checkpoint fallback).
//
// HaveBaseID/HaveLayers describe the layered snapshot the requester
// already restored from a previous reply (zero = none): a peer whose
// current base matches streams only the missing delta layers instead of
// re-sending the full base image.
type snapReqMsg struct {
	HaveBaseID int64
	HaveLayers int
}

func (snapReqMsg) WireSize() int64 { return 48 }

// snapReplyMsg carries a layered checkpoint: an optional base image plus
// the delta layers stacked on it, in chain order. Legacy monolithic
// checkpoints travel as a base with no deltas. FirstDelta is the chain
// index of Deltas[0] on the serving replica (non-zero only when the
// requester already held a prefix of the chain).
type snapReplyMsg struct {
	OK         bool
	BaseID     int64
	HasBase    bool
	Base       appSnap
	FirstDelta int
	Deltas     []appSnap
}

func (m snapReplyMsg) WireSize() int64 {
	sz := int64(64)
	if m.HasBase {
		sz += m.Base.Size
	}
	for _, d := range m.Deltas {
		sz += d.Size
	}
	return sz
}

// ErrNotReady is returned for submissions while the replica is still
// recovering its application state.
var ErrNotReady = errors.New("core: replica state not yet recovered")

// ErrLearner is returned for submissions on a learner replica: learners
// apply the ordered log but never propose to it.
var ErrLearner = errors.New("core: learner replicas cannot submit actions")

// ErrTooStale is the fenced-read fallback: the replica did not reach the
// requested applied index within the bounded wait (see ReadAt).
var ErrTooStale = errors.New("core: replica too stale for fenced read")

// Replica is one member of a replicated state machine. It implements
// env.Node; construct one per incarnation via its Config.Machine factory
// wiring (see NewReplica) and hand it to a runtime.
type Replica struct {
	cfg Config
	e   env.Env
	me  env.NodeID

	sm StateMachine
	en *paxos.Engine

	appReady    bool
	recovering  bool
	recovered   bool
	lastApplied paxos.InstanceID
	buffer      []bufferedValue

	epoch   int64 // this incarnation's command epoch (start time)
	nextSeq int64
	pending map[int64]func(result any, inst paxos.InstanceID, err error)

	// fences holds registered fenced reads waiting for lastApplied to
	// reach their minimum index (ReadAt/InspectAt). Loop-confined; fired
	// in FIFO registration order as the applied frontier advances.
	fences []*fenceWaiter

	// imported guards partition imports at-most-once per transfer; it is
	// driven by the ordered log only, so every replica holds the same
	// set at the same log position (see partition.go).
	imported map[importKey]bool

	// Cross-shard transaction state (txn.go), driven by the ordered log
	// exactly like imported: branches staged by TxnPrepare and awaiting
	// their outcome, transactions resolved on this group (idempotence
	// guard for retried outcome records), and the coordinator decision
	// records ordered in this group as the home group.
	txnPrepared  map[string]StagedTxn
	txnDone      map[string]bool
	txnDecisions map[string]bool

	lastCheckpoint paxos.InstanceID
	hasCheckpoint  bool
	checkpointing  bool

	// Incremental-checkpoint state (delta.go): the in-memory mirror of
	// the durable manifest. baseName == "" means no base yet (legacy
	// monolithic checkpoints, or delta mode before its first base).
	baseName   string
	baseID     int64
	baseSeq    int64 // monotone base counter, restored from the manifest
	baseSize   int64
	chain      []LayerRef
	chainBytes int64
	forceBase  bool // an ordered PartitionDrop poisoned the chain

	// staleLayers are durable layers a remote restore superseded in
	// memory while the on-disk manifest still references them; the next
	// base write garbage-collects them once its manifest commits.
	staleLayers []string

	// Remote layered-restore bookkeeping: the identity of the last
	// remotely fetched base, so a repeated fallback asks the serving
	// peer for only the layers it has not applied yet.
	remoteBaseID int64
	remoteLayers int

	// serving guards one in-flight snapshot serve per requester, so a
	// retrying peer cannot queue redundant checkpoint reads on our disk.
	serving map[env.NodeID]bool

	snapAsked    bool
	recheckArmed bool
	applied      int64 // actions applied this incarnation (stats)
	joinedAt     time.Time
	recoveredAt  time.Time

	// Published introspection state: these mirror the loop-confined
	// fields above so application goroutines in the live runtime can
	// poll them without racing the event loop.
	pubReady       atomic.Bool
	pubRecovered   atomic.Bool
	pubHasLeader   atomic.Bool
	pubIsLeader    atomic.Bool
	pubBacklog     atomic.Int64
	pubAdmission   atomic.Int32
	pubAdmissionAt atomic.Int64 // UnixNano of the last publish tick
	pubLastApplied atomic.Int64
	pubApplied     atomic.Int64
	pubEnv         atomic.Value // env.Env, set once at Start

	// publishFrozen stops publishLoop from refreshing the hints while the
	// loop itself keeps rescheduling — a test hook modeling a starved
	// publisher (GC stall, scheduler starvation) whose consumers must not
	// act on the frozen snapshot.
	publishFrozen atomic.Bool

	// Checkpoint accounting (published): full base images and delta
	// layers written this incarnation, and their total bytes.
	pubCkptBases  atomic.Int64
	pubCkptDeltas atomic.Int64
	pubCkptBytes  atomic.Int64
}

type bufferedValue struct {
	inst paxos.InstanceID
	v    paxos.Value
}

var _ env.Node = (*Replica)(nil)

// NewReplica builds a replica for one incarnation.
func NewReplica(cfg Config) *Replica {
	cfg = cfg.withDefaults()
	if cfg.Machine == nil {
		panic("core: Config.Machine is required")
	}
	return &Replica{
		cfg:     cfg,
		pending: make(map[int64]func(any, paxos.InstanceID, error)),
		serving: make(map[env.NodeID]bool),
	}
}

// Start implements env.Node: it boots consensus and runs recovery. The
// tiny meta snapshot is read first so the engine can begin learning the
// log suffix from its peers while the (large) application checkpoint
// streams from the local disk in parallel — the overlap §5.4 credits for
// the leveling of recovery times.
func (r *Replica) Start(e env.Env) {
	r.e = e
	r.pubEnv.Store(e)
	r.me = e.ID()
	r.joinedAt = e.Now()
	r.epoch = r.joinedAt.UnixNano()
	r.sm = r.cfg.Machine()

	e.Storage().LoadSnapshot("meta", func(snap env.Snapshot, ok bool) {
		floor := paxos.InstanceID(0)
		var manifest metaSnap
		if ok {
			meta, good := snap.Data.(metaSnap)
			if good {
				manifest = meta
				floor = meta.LastApplied + 1
				r.recovering = true
			}
		}
		bootEngine := func() {
			pcfg := r.cfg.Paxos
			pcfg.FastEnabled = r.cfg.FastPaxos
			pcfg.CmdSize = func(cmd any) int64 {
				c, ok := cmd.(command)
				if !ok {
					return 64
				}
				// A keyed-snapshot import is charged by its payload, like
				// the checkpoint transfer it is.
				if pi, ok := c.Action.(PartitionImport); ok {
					return 64 + pi.Size
				}
				// A prepare record carries a whole branch action plus the
				// transaction header; charge both.
				if tp, ok := c.Action.(TxnPrepare); ok {
					return 96 + r.cfg.ActionSize(tp.Action)
				}
				return 48 + r.cfg.ActionSize(c.Action)
			}
			pcfg.Deliver = r.onDeliver
			pcfg.OnCatchUpGap = r.onCatchUpGap
			r.en = paxos.New(pcfg)
			r.en.Boot(e, floor, nil)
		}
		loadApp := func() {
			if manifest.Base != "" {
				// Layered checkpoint: restore the base image, then
				// apply each delta layer of the manifest chain in order
				// (delta.go). Each layer read charges its own disk time.
				r.loadChain(manifest, bootEngine)
				return
			}
			e.Storage().LoadSnapshot("app", func(snap env.Snapshot, ok bool) {
				if r.cfg.SequentialRecovery {
					bootEngine()
				}
				if !ok {
					// Fresh replica: empty state is the initial state.
					r.finishRestore(appSnap{LastApplied: -1})
					return
				}
				app, good := snap.Data.(appSnap)
				if !good {
					r.e.Logf("core: malformed app snapshot; starting empty")
					r.finishRestore(appSnap{LastApplied: -1})
					return
				}
				r.sm.Restore(app.Data)
				r.finishRestore(app)
			})
		}
		if r.cfg.SequentialRecovery {
			// Ablation: no checkpoint/suffix overlap — consensus joins
			// only after the state is restored.
			loadApp()
		} else {
			bootEngine()
			loadApp()
		}
		r.scheduleCheckpoint()
		r.publishLoop()
	})
}

// finishRestore completes application-state recovery and drains buffered
// deliveries.
func (r *Replica) finishRestore(app appSnap) {
	r.lastApplied = app.LastApplied
	r.lastCheckpoint = app.LastApplied
	r.hasCheckpoint = r.recovering
	if len(app.Imported) > 0 {
		r.imported = make(map[importKey]bool, len(app.Imported))
		for k := range app.Imported {
			r.imported[k] = true
		}
	}
	r.restoreTxnState(app)
	if app.Delivered != nil {
		r.en.SetDelivered(app.Delivered)
	}
	if app.LastApplied >= 0 {
		r.en.SkipTo(app.LastApplied + 1)
	}
	r.appReady = true
	r.pubReady.Store(true)
	if !r.recovering {
		r.pubRecovered.Store(true)
	}
	buf := r.buffer
	r.buffer = nil
	for _, bv := range buf {
		r.apply(bv.inst, bv.v)
	}
	r.fireFences()
	if r.cfg.OnReady != nil {
		r.cfg.OnReady()
	}
	r.maybeRecovered()
}

// Receive implements env.Node.
func (r *Replica) Receive(from env.NodeID, msg env.Message) {
	if r.en != nil && r.en.Handle(from, msg) {
		return
	}
	switch m := msg.(type) {
	case snapReqMsg:
		r.onSnapReq(from, m)
	case snapReplyMsg:
		r.onSnapReply(m)
	}
}

// --- Submission --------------------------------------------------------

// Submit proposes an action for totally ordered execution; done (optional)
// is invoked on this node's executor with the local execution result once
// the action has been applied here. All replica-visible non-determinism
// must already be resolved inside the action (paper §4).
func (r *Replica) Submit(action any, done func(result any, err error)) {
	if done == nil {
		r.SubmitIndexed(action, nil)
		return
	}
	r.SubmitIndexed(action, func(result any, _ paxos.InstanceID, err error) {
		done(result, err)
	})
}

// SubmitIndexed is Submit for callers that need the commit index: done
// additionally receives the log instance the action was applied at, which
// a client can carry as the fence of its subsequent reads (ReadAt) to get
// read-your-writes across replicas.
func (r *Replica) SubmitIndexed(action any, done func(result any, inst paxos.InstanceID, err error)) {
	if r.cfg.Paxos.Learner {
		if done != nil {
			done(nil, -1, ErrLearner)
		}
		return
	}
	if r.en == nil || !r.appReady {
		if done != nil {
			done(nil, -1, ErrNotReady)
		}
		return
	}
	r.nextSeq++
	if done != nil {
		r.pending[r.nextSeq] = done
	}
	r.en.Submit(command{Origin: r.me, Epoch: r.epoch, Seq: r.nextSeq, Action: action})
}

// Execute proposes an action and blocks until it has been applied locally,
// mirroring the synchronous execute() of Treplica's state machine API. It
// must be called from outside the node's executor (live runtime only).
func (r *Replica) Execute(ctx context.Context, action any) (any, error) {
	e, ok := r.pubEnv.Load().(env.Env)
	if !ok {
		return nil, ErrNotReady
	}
	type outcome struct {
		result any
		err    error
	}
	ch := make(chan outcome, 1)
	e.Post(func() {
		r.Submit(action, func(result any, err error) {
			ch <- outcome{result, err}
		})
	})
	select {
	case out := <-ch:
		return out.result, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SubmitFrom proposes an action from any goroutine by posting the
// submission onto this replica's executor; done (optional) runs on that
// executor once the action has been applied locally. It is the
// fire-and-forget sibling of Execute, used by the migration driver, whose
// event-driven retry loop must not block a node executor. Returns false
// if the replica has not started yet.
func (r *Replica) SubmitFrom(action any, done func(result any, err error)) bool {
	e, ok := r.pubEnv.Load().(env.Env)
	if !ok {
		return false
	}
	e.Post(func() { r.Submit(action, done) })
	return true
}

// Inspect posts fn onto this replica's executor with its state machine —
// the loop-safe way for application goroutines to read machine state
// (Machine itself is loop-confined). Returns false if the replica has
// not started yet.
func (r *Replica) Inspect(fn func(sm StateMachine)) bool {
	e, ok := r.pubEnv.Load().(env.Env)
	if !ok {
		return false
	}
	e.Post(func() { fn(r.sm) })
	return true
}

// fenceWaiter is one registered fenced read: run fn once lastApplied
// reaches minIndex, or stale after the bounded wait expires. Loop-confined
// (all fields are touched only on the replica's executor).
type fenceWaiter struct {
	minIndex paxos.InstanceID
	fn       func(sm StateMachine, applied paxos.InstanceID)
	stale    func()
	done     bool
}

// ReadAt is the fenced read of the follower-read protocol: run fn with the
// state machine as soon as this replica's applied index reaches minIndex —
// immediately when it already has — and report the applied index fn ran
// at. If the replica does not catch up within wait, stale runs instead
// (the TooStale fallback; the caller retries on a fresher replica). fn and
// stale run on the replica's executor, exactly one of them, always
// asynchronously with respect to the caller when a wait is needed.
// Returns false if the replica has not started yet.
func (r *Replica) ReadAt(minIndex paxos.InstanceID, wait time.Duration,
	fn func(sm StateMachine, applied paxos.InstanceID), stale func()) bool {
	e, ok := r.pubEnv.Load().(env.Env)
	if !ok {
		return false
	}
	e.Post(func() { r.readAt(minIndex, wait, fn, stale) })
	return true
}

// InspectAt is the point-in-time audit read: run fn with the state pinned
// at-or-after log index — the first state this replica materializes whose
// applied index is ≥ index (exact-index states are not materializable:
// no-op instances and batched deliveries make the applied index jump).
// Semantics and fallback are those of ReadAt.
func (r *Replica) InspectAt(index paxos.InstanceID, wait time.Duration,
	fn func(sm StateMachine, applied paxos.InstanceID), stale func()) bool {
	return r.ReadAt(index, wait, fn, stale)
}

func (r *Replica) readAt(minIndex paxos.InstanceID, wait time.Duration,
	fn func(StateMachine, paxos.InstanceID), stale func()) {
	if r.appReady && r.lastApplied >= minIndex {
		fn(r.sm, r.lastApplied)
		return
	}
	w := &fenceWaiter{minIndex: minIndex, fn: fn, stale: stale}
	r.fences = append(r.fences, w)
	r.e.After(wait, func() {
		if w.done {
			return
		}
		w.done = true
		if w.stale != nil {
			w.stale()
		}
	})
}

// fireFences runs every waiting fenced read whose minimum index the
// replica has now applied, in registration order, and compacts the rest.
func (r *Replica) fireFences() {
	if len(r.fences) == 0 {
		return
	}
	kept := r.fences[:0]
	for _, w := range r.fences {
		if w.done {
			continue // expired to stale; drop
		}
		if r.appReady && r.lastApplied >= w.minIndex {
			w.done = true
			w.fn(r.sm, r.lastApplied)
			continue
		}
		kept = append(kept, w)
	}
	tail := r.fences[len(kept):]
	for i := range tail {
		tail[i] = nil
	}
	r.fences = kept
}

// PublishInterval is the refresh period of the published introspection
// hints (LeaderHint, BacklogHint, AdmissionHint). Consumers that act on a
// hint should treat one older than a small multiple of this as unknown —
// see AdmissionHintAge.
const PublishInterval = 100 * time.Millisecond

// publishLoop refreshes the published leadership and backlog snapshots so
// application goroutines can await service readiness and aggregate
// per-group metrics (internal/shard) without touching loop state.
func (r *Replica) publishLoop() {
	if r.en != nil && !r.publishFrozen.Load() {
		r.pubHasLeader.Store(r.en.CurrentBallot().Seq >= 0)
		r.pubIsLeader.Store(r.en.IsLeader())
		r.pubBacklog.Store(r.en.Backlog())
		r.pubAdmission.Store(int32(r.en.AdmissionState()))
		r.pubAdmissionAt.Store(r.e.Now().UnixNano())
	}
	r.e.After(PublishInterval, r.publishLoop)
}

// FreezePublish stops (true) or resumes (false) hint refreshing without
// stopping the publish timer — a test hook for exercising stale-hint
// handling in consumers. Safe from any goroutine.
func (r *Replica) FreezePublish(frozen bool) { r.publishFrozen.Store(frozen) }

// ForceAdmissionHint overwrites the published write-admission grade in
// place — a test hook for driving consumer staleness handling without
// engineering a real overload. Combine with FreezePublish or the next
// publish tick overwrites it again. Safe from any goroutine.
func (r *Replica) ForceAdmissionHint(s paxos.AdmissionState) {
	r.pubAdmission.Store(int32(s))
}

// --- Delivery ----------------------------------------------------------

func (r *Replica) onDeliver(inst paxos.InstanceID, v paxos.Value) {
	if !r.appReady {
		r.buffer = append(r.buffer, bufferedValue{inst: inst, v: v})
		return
	}
	r.apply(inst, v)
}

func (r *Replica) apply(inst paxos.InstanceID, v paxos.Value) {
	if inst <= r.lastApplied {
		return
	}

	for _, cmd := range v.Cmds {
		c, ok := cmd.(command)
		if !ok {
			r.e.Logf("core: dropping malformed command %T", cmd)
			continue
		}
		result := r.executeAction(c.Action)
		r.applied++
		if c.Origin == r.me && c.Epoch == r.epoch {
			if done, ok := r.pending[c.Seq]; ok {
				delete(r.pending, c.Seq)
				done(result, inst, nil)
			}
		}
	}
	r.lastApplied = inst
	r.pubLastApplied.Store(int64(inst))
	r.pubApplied.Store(r.applied)
	r.fireFences()
	r.maybeRecovered()
}

// members returns the consensus group this replica belongs to.
func (r *Replica) members() []env.NodeID {
	if r.cfg.Paxos.Members != nil {
		return r.cfg.Paxos.Members
	}
	return r.e.Peers()
}

// maybeRecovered fires OnRecovered once the replica has both restored its
// checkpoint and drained the backlog the cluster accumulated while it was
// down. The decided watermark (MaxKnown) is only trustworthy once the
// failure detector has heard from a quorum, so recovery detection waits
// for that plus a short grace period; a slow ticker re-checks while
// recovering in case no new traffic arrives.
func (r *Replica) maybeRecovered() {
	if !r.recovering || r.recovered || !r.appReady {
		return
	}
	grace := r.e.Now().Sub(r.joinedAt) >= time.Second
	quorumSeen := r.en.AliveCount() >= paxos.ClassicQuorum(len(r.members()))
	if grace && quorumSeen && r.en.FirstUnchosen() > r.en.MaxKnown() {
		r.recovered = true
		r.pubRecovered.Store(true)
		r.recoveredAt = r.e.Now()
		if r.cfg.OnRecovered != nil {
			r.cfg.OnRecovered()
		}
		return
	}
	if !r.recheckArmed {
		r.recheckArmed = true
		r.e.After(250*time.Millisecond, func() {
			r.recheckArmed = false
			r.maybeRecovered()
		})
	}
}

// --- Checkpointing -----------------------------------------------------

func (r *Replica) scheduleCheckpoint() {
	r.e.After(r.cfg.CheckpointInterval+checkpointPhase(r.me, r.cfg.CheckpointInterval), r.checkpointLoop)
}

// checkpointPhase spreads replicas' checkpoints across the interval so
// they do not pause in lockstep: me mod 8 eighths of the interval. The
// modulus matters — without it, node IDs past 8 (every sharded
// deployment) would delay their first checkpoint by whole multiples of
// the interval and land groups of nodes back on the same phase.
func checkpointPhase(me env.NodeID, interval time.Duration) time.Duration {
	return time.Duration(int64(me)%8) * interval / 8
}

func (r *Replica) checkpointLoop() {
	r.Checkpoint(nil)
	r.e.After(r.cfg.CheckpointInterval, r.checkpointLoop)
}

// Checkpoint takes a durable checkpoint now: snapshot the state machine,
// write it to stable storage, then compact the consensus log up to it
// (minus the retention window that serves recovering peers). done, if
// non-nil, runs when the checkpoint is durable.
//
// Machines implementing DeltaSnapshotter get the incremental pipeline
// (delta.go) unless Config.FullCheckpoints forces the monolithic path:
// steady-state checkpoints then write only the rows dirtied since the
// previous one, as a delta layer chained onto the last full base.
func (r *Replica) Checkpoint(done func()) {
	// An initial checkpoint (nothing applied yet, nothing checkpointed)
	// is meaningful: it makes the pre-populated state durable, which is
	// how the experiments install the TPC-W population before the
	// measurement interval.
	initial := r.lastApplied == -1 && r.lastCheckpoint == -1 && !r.hasCheckpoint
	if !r.appReady || r.checkpointing || (r.lastApplied <= r.lastCheckpoint && !initial) {
		if done != nil {
			done()
		}
		return
	}
	r.checkpointing = true
	if ds, ok := r.sm.(DeltaSnapshotter); ok && !r.cfg.FullCheckpoints {
		r.checkpointLayered(ds, done)
		return
	}
	data, size := r.sm.Snapshot()
	snap := appSnap{
		LastApplied:  r.lastApplied,
		Delivered:    r.en.DeliveredSeqs(),
		Data:         data,
		Size:         size,
		Imported:     r.copyImported(),
		TxnPrepared:  r.copyTxnPrepared(),
		TxnDone:      r.copyTxnDone(),
		TxnDecisions: r.copyTxnDecisions(),
	}
	if r.cfg.OnCheckpoint != nil {
		r.cfg.OnCheckpoint(size)
	}
	at := r.lastApplied
	r.pubCkptBases.Add(1)
	r.pubCkptBytes.Add(size)
	r.e.Storage().SaveSnapshot("app", env.Snapshot{Data: snap, Size: size}, func(error) {
		r.e.Storage().SaveSnapshot("meta", env.Snapshot{Data: metaSnap{LastApplied: at}, Size: 256}, func(error) {
			r.lastCheckpoint = at
			r.hasCheckpoint = true
			r.checkpointing = false
			compactThrough := at - paxos.InstanceID(r.cfg.RetainInstances)
			if compactThrough >= 0 {
				r.en.Compact(compactThrough)
			}
			if done != nil {
				done()
			}
		})
	})
}

// --- Remote snapshot fallback -------------------------------------------

func (r *Replica) onCatchUpGap(firstAvail paxos.InstanceID) {
	if r.cfg.DisableRemoteSnapshot || r.snapAsked {
		return
	}
	r.snapAsked = true
	// Ask every member; first useful reply wins. The request advertises
	// the layered snapshot we already hold so a matching peer streams
	// only the layers we are missing.
	for _, p := range r.members() {
		if p != r.me {
			r.e.Send(p, snapReqMsg{HaveBaseID: r.remoteBaseID, HaveLayers: r.remoteLayers})
		}
	}
}

func (r *Replica) onSnapReq(from env.NodeID, m snapReqMsg) {
	// Serve our most recent durable checkpoint from disk — the manifest
	// decides the layout, so a replica still restoring its own state (or
	// one that has not built an in-memory chain yet) serves exactly what
	// its storage holds. Reading charges our disk, the reply charges the
	// network, both as in a real state transfer. One serve per requester
	// at a time: a retrying peer must not queue redundant multi-second
	// checkpoint reads on our disk.
	if r.serving[from] {
		return
	}
	r.serving[from] = true
	send := func(reply snapReplyMsg) {
		delete(r.serving, from)
		r.e.Send(from, reply)
	}
	r.e.Storage().LoadSnapshot("meta", func(snap env.Snapshot, ok bool) {
		manifest, good := snap.Data.(metaSnap)
		if ok && good && manifest.Base != "" {
			// Layered checkpoint: base + chain, streaming only the
			// layers the requester is missing (delta.go).
			r.serveLayered(from, manifest, m, send)
			return
		}
		r.e.Storage().LoadSnapshot("app", func(snap env.Snapshot, ok bool) {
			app, good := snap.Data.(appSnap)
			if !ok || !good {
				send(snapReplyMsg{})
				return
			}
			send(snapReplyMsg{OK: true, HasBase: true, Base: app})
		})
	})
}

func (r *Replica) onSnapReply(m snapReplyMsg) {
	r.snapAsked = false
	if !m.OK || !r.appReady {
		return
	}
	// The restore target is the newest layer carried; a stale or empty
	// reply (our state already covers it) is ignored.
	var last *appSnap
	if m.HasBase {
		last = &m.Base
	}
	if n := len(m.Deltas); n > 0 {
		last = &m.Deltas[n-1]
	}
	if last == nil || last.LastApplied <= r.lastApplied {
		return
	}
	ds, capable := r.sm.(DeltaSnapshotter)
	if len(m.Deltas) > 0 && !capable {
		return // layered reply for a machine that cannot apply deltas
	}
	if m.HasBase {
		r.sm.Restore(m.Base.Data)
		r.remoteBaseID = m.BaseID
		r.remoteLayers = 0
	} else if m.BaseID == 0 || m.BaseID != r.remoteBaseID || m.FirstDelta > r.remoteLayers {
		return // delta-only reply that does not extend our remote base
	}
	// Apply the layers we do not hold yet (a retransmitted prefix is
	// skipped, not re-applied).
	start := r.remoteLayers - m.FirstDelta
	if start < 0 {
		start = 0
	}
	for k := start; k < len(m.Deltas); k++ {
		ds.ApplyDelta(m.Deltas[k].Data)
	}
	r.remoteLayers = m.FirstDelta + len(m.Deltas)
	r.imported = nil
	if len(last.Imported) > 0 {
		r.imported = make(map[importKey]bool, len(last.Imported))
		for k := range last.Imported {
			r.imported[k] = true
		}
	}
	r.restoreTxnState(*last)
	r.lastApplied = last.LastApplied
	r.lastCheckpoint = last.LastApplied
	// The local durable chain no longer describes the in-memory state,
	// so the next checkpoint must fold into a fresh base. The superseded
	// layers stay on disk until that base's manifest commits (the durable
	// manifest still references them); the fold then deletes them.
	if r.baseName != "" {
		r.staleLayers = append(r.staleLayers, r.baseName)
		for _, ref := range r.chain {
			r.staleLayers = append(r.staleLayers, ref.Name)
		}
	}
	r.baseName = ""
	r.baseID = 0
	r.chain = nil
	r.chainBytes = 0
	r.en.SetDelivered(last.Delivered)
	r.en.SkipTo(last.LastApplied + 1)
	r.pubLastApplied.Store(int64(r.lastApplied))
	r.fireFences()
	r.maybeRecovered()
}

// --- Introspection -----------------------------------------------------
//
// Ready, Recovered, HasLeader, LastApplied and AppliedCount are backed by
// published atomics and safe to poll from any goroutine (the live
// runtime's application threads do exactly that). The remaining accessors
// touch loop-confined state and must be called from the node's executor —
// in practice, from simulator context or via env.Post.

// Ready reports whether local state is restored (reads can be served).
func (r *Replica) Ready() bool { return r.pubReady.Load() }

// Recovered reports whether a post-crash incarnation has fully
// re-synchronized (true from the start for a fresh replica).
func (r *Replica) Recovered() bool { return r.pubRecovered.Load() }

// HasLeader reports whether this replica has observed an established
// consensus leader — i.e. whether submissions can make progress now.
func (r *Replica) HasLeader() bool { return r.pubHasLeader.Load() }

// LastApplied returns the highest applied instance.
func (r *Replica) LastApplied() paxos.InstanceID {
	return paxos.InstanceID(r.pubLastApplied.Load())
}

// AppliedCount returns actions applied in this incarnation.
func (r *Replica) AppliedCount() int64 { return r.pubApplied.Load() }

// CheckpointStats reports this incarnation's checkpoint activity: full
// base images written, delta layers written, and their total bytes.
// Safe from any goroutine.
func (r *Replica) CheckpointStats() (bases, deltas, bytes int64) {
	return r.pubCkptBases.Load(), r.pubCkptDeltas.Load(), r.pubCkptBytes.Load()
}

// LeaderHint reports whether this replica led its consensus group at the
// last publish tick (≤100 ms stale; safe from any goroutine). Use
// IsLeader for the loop-confined exact answer.
func (r *Replica) LeaderHint() bool { return r.pubIsLeader.Load() }

// BacklogHint returns the decided-but-unapplied instance count at the
// last publish tick (≤100 ms stale; safe from any goroutine). Use
// Backlog for the loop-confined exact answer.
func (r *Replica) BacklogHint() int64 { return r.pubBacklog.Load() }

// AdmissionHint returns the proposer's write-admission grade at the last
// publish tick (≤100 ms stale; safe from any goroutine). The web tier
// uses it to pace or hold incoming writes while the local command queue
// is deep, so overload shows up as queueing latency instead of consensus
// retry timeouts. Use AdmissionState for the loop-confined exact answer.
func (r *Replica) AdmissionHint() paxos.AdmissionState {
	return paxos.AdmissionState(r.pubAdmission.Load())
}

// AdmissionHintAge returns how stale the published admission hint is at
// now: the time since the last publish tick refreshed it. A hint that was
// never published (replica still booting) reports a very large age.
// Consumers gating traffic on AdmissionHint should treat an age beyond
// ~2×PublishInterval as unknown rather than actionable — a frozen
// publisher must fail open, not keep shedding on its last opinion.
func (r *Replica) AdmissionHintAge(now time.Time) time.Duration {
	at := r.pubAdmissionAt.Load()
	if at == 0 {
		return time.Duration(1<<62 - 1)
	}
	return now.Sub(time.Unix(0, at))
}

// AdmissionState returns the proposer's current write-admission grade.
// Loop-confined.
func (r *Replica) AdmissionState() paxos.AdmissionState {
	if r.en == nil {
		return paxos.AdmissionClear
	}
	return r.en.AdmissionState()
}

// Machine exposes the local state machine for read-only queries. Reads
// are served locally without total ordering, as in RobustStore where 95 %
// (browsing) to 50 % (ordering) of interactions are local reads (§5.2).
// Loop-confined.
func (r *Replica) Machine() StateMachine { return r.sm }

// Backlog returns the decided-but-unapplied instance count.
// Loop-confined.
func (r *Replica) Backlog() int64 {
	if r.en == nil {
		return 0
	}
	return r.en.Backlog()
}

// IsLeader reports whether this replica currently coordinates consensus.
// Loop-confined.
func (r *Replica) IsLeader() bool { return r.en != nil && r.en.IsLeader() }

// Engine exposes the consensus engine for tests and metrics.
// Loop-confined.
func (r *Replica) Engine() *paxos.Engine { return r.en }
