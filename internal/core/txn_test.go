package core

import (
	"testing"
	"time"
)

// stagerMachine wraps kvMachine with the TxnStager capability: branches
// touching rejectKey draw a no-vote.
type stagerMachine struct {
	*kvMachine
	rejectKey string
}

func (m *stagerMachine) StageTxn(action any) string {
	a, ok := action.(incAction)
	if !ok {
		return "unknown action"
	}
	if a.Key == m.rejectKey {
		return "key rejected"
	}
	return ""
}

// submitTxn submits a txn meta-action at d and returns a pointer that
// holds the execution result once applied.
func (c *coreCluster) submitTxn(d time.Duration, id int, action any) *any {
	var got any
	c.s.After(d, func() {
		if c.s.Alive(0) {
			c.replicas[id].Submit(action, func(result any, err error) {
				if err == nil {
					got = result
				}
			})
		}
	})
	return &got
}

func TestTxnPrepareCommitIdempotent(t *testing.T) {
	c := newCoreCluster(t, 3, 41, nil)
	prep := TxnPrepare{ID: "t1", Home: 0, Action: incAction{Key: "x", Delta: 5}, Keys: []string{"x"}}

	vote := c.submitTxn(2*time.Second, 0, prep)
	c.s.RunFor(4 * time.Second)
	if v, ok := (*vote).(TxnVoteResult); !ok || !v.Prepared {
		t.Fatalf("prepare vote = %#v, want Prepared", *vote)
	}
	// Prepared but not applied: the branch is staged, its key blocked, on
	// every replica.
	for id, m := range c.machines {
		if m.counts["x"] != 0 {
			t.Fatalf("node %d applied staged branch early: x=%d", id, m.counts["x"])
		}
		if !c.replicas[id].TxnBlocks("x") {
			t.Fatalf("node %d does not block prepared key", id)
		}
		if c.replicas[id].TxnBlocks("y") {
			t.Fatalf("node %d blocks unrelated key", id)
		}
		if pt := c.replicas[id].PreparedTxns(); len(pt) != 1 || pt[0].ID != "t1" || pt[0].Home != 0 {
			t.Fatalf("node %d PreparedTxns = %#v", id, pt)
		}
	}

	// A duplicate prepare re-votes yes without re-staging.
	revote := c.submitTxn(time.Millisecond, 1, prep)
	c.s.RunFor(4 * time.Second)
	if v, ok := (*revote).(TxnVoteResult); !ok || !v.Prepared {
		t.Fatalf("duplicate prepare vote = %#v, want Prepared", *revote)
	}

	// Commit executes the staged branch exactly once.
	first := c.submitTxn(time.Millisecond, 0, TxnCommit{ID: "t1"})
	retry := c.submitTxn(time.Second, 1, TxnCommit{ID: "t1"})
	c.s.RunFor(5 * time.Second)
	if r, ok := (*first).(TxnAppliedResult); !ok || !r.First || !r.Applied || !r.Committed || r.Result != int64(5) {
		t.Fatalf("first commit = %#v, want First+Applied result 5", *first)
	}
	if r, ok := (*retry).(TxnAppliedResult); !ok || r.First || r.Applied {
		t.Fatalf("retried commit = %#v, want ordered no-op", *retry)
	}
	for id, m := range c.machines {
		if m.counts["x"] != 5 || m.ops != 1 {
			t.Fatalf("node %d x=%d ops=%d, want 5/1", id, m.counts["x"], m.ops)
		}
		if c.replicas[id].TxnBlocks("x") {
			t.Fatalf("node %d still blocks resolved key", id)
		}
	}

	// A stale duplicate prepare after the outcome must not re-stage.
	late := c.submitTxn(time.Millisecond, 2, prep)
	c.s.RunFor(4 * time.Second)
	if v, ok := (*late).(TxnVoteResult); !ok || v.Prepared || v.Reason == "" {
		t.Fatalf("late prepare = %#v, want rejected with reason", *late)
	}
	c.requireConverged(t, 1)
}

func TestTxnAbortDiscardsStagedBranch(t *testing.T) {
	c := newCoreCluster(t, 3, 42, nil)
	c.submitTxn(2*time.Second, 0, TxnPrepare{ID: "t2", Home: 1, Action: incAction{Key: "a", Delta: 9}, Keys: []string{"a"}})
	abort := c.submitTxn(4*time.Second, 0, TxnAbort{ID: "t2"})
	c.s.RunFor(8 * time.Second)
	if r, ok := (*abort).(TxnAppliedResult); !ok || !r.First || r.Applied || r.Committed {
		t.Fatalf("abort = %#v, want First, not Applied", *abort)
	}
	for id, m := range c.machines {
		if m.counts["a"] != 0 || m.ops != 0 {
			t.Fatalf("node %d applied aborted branch: a=%d", id, m.counts["a"])
		}
		if c.replicas[id].TxnBlocks("a") {
			t.Fatalf("node %d still blocks aborted key", id)
		}
	}
}

func TestTxnNoVoteStagesNothing(t *testing.T) {
	c := newCoreCluster(t, 3, 43, func(id int, cfg *Config) {
		inner := cfg.Machine
		cfg.Machine = func() StateMachine {
			return &stagerMachine{kvMachine: inner().(*kvMachine), rejectKey: "bad"}
		}
	})
	vote := c.submitTxn(2*time.Second, 0, TxnPrepare{ID: "t3", Home: 0, Action: incAction{Key: "bad", Delta: 1}, Keys: []string{"bad"}})
	abort := c.submitTxn(4*time.Second, 0, TxnAbort{ID: "t3"})
	c.s.RunFor(8 * time.Second)
	if v, ok := (*vote).(TxnVoteResult); !ok || v.Prepared || v.Reason != "key rejected" {
		t.Fatalf("vote = %#v, want no-vote 'key rejected'", *vote)
	}
	for id := range c.replicas {
		if c.replicas[id].TxnBlocks("bad") {
			t.Fatalf("node %d blocks key of a no-vote branch", id)
		}
	}
	// The abort that resolves a no-vote transaction is still First (the
	// record that made it terminal) but applies nothing.
	if r, ok := (*abort).(TxnAppliedResult); !ok || !r.First || r.Applied {
		t.Fatalf("abort = %#v, want First, nothing applied", *abort)
	}
}

func TestTxnDecisionFirstWriterWins(t *testing.T) {
	c := newCoreCluster(t, 3, 44, nil)
	commit := c.submitTxn(2*time.Second, 0, TxnDecision{ID: "t4", Commit: true})
	racer := c.submitTxn(4*time.Second, 1, TxnDecision{ID: "t4", Commit: false})
	c.s.RunFor(8 * time.Second)
	if d, ok := (*commit).(TxnDecisionResult); !ok || !d.First || !d.Commit {
		t.Fatalf("first decision = %#v, want First+Commit", *commit)
	}
	// The racing presumed-abort reads back the recorded commit.
	if d, ok := (*racer).(TxnDecisionResult); !ok || d.First || !d.Commit {
		t.Fatalf("racing decision = %#v, want recorded Commit, not First", *racer)
	}
	for id := range c.replicas {
		commit, known := c.replicas[id].TxnDecided("t4")
		if !known || !commit {
			t.Fatalf("node %d TxnDecided = %v,%v, want commit recorded", id, commit, known)
		}
	}
}

// TestTxnStateSurvivesCheckpointRecovery crashes a replica holding a
// prepared branch after it checkpointed, resolves the transaction while
// it is down, and requires the restarted incarnation to apply the commit
// exactly once from checkpoint + replayed log suffix.
func TestTxnStateSurvivesCheckpointRecovery(t *testing.T) {
	c := newCoreCluster(t, 3, 45, nil)
	c.submitTxn(2*time.Second, 0, TxnPrepare{ID: "t5", Home: 0, Action: incAction{Key: "x", Delta: 7}, Keys: []string{"x"}})
	c.s.After(4*time.Second, func() { c.replicas[2].Checkpoint(nil) })
	c.s.After(6*time.Second, func() { c.s.Crash(2) })
	c.submitTxn(8*time.Second, 0, TxnCommit{ID: "t5"})
	c.s.After(12*time.Second, func() { c.s.Restart(2) })
	c.s.RunFor(40 * time.Second)
	c.requireConverged(t, 1)
	for id, m := range c.machines {
		if m.counts["x"] != 7 {
			t.Fatalf("node %d x=%d, want 7 (exactly-once commit across recovery)", id, m.counts["x"])
		}
		if c.replicas[id].TxnBlocks("x") {
			t.Fatalf("node %d still blocks resolved key after recovery", id)
		}
	}
}
