package core

import (
	"fmt"
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/paxos"
	"robuststore/internal/sim"
)

// kvMachine is a deterministic test state machine: a map of counters.
type kvMachine struct {
	counts map[string]int64
	ops    int64
}

type incAction struct {
	Key   string
	Delta int64
}

func newKVMachine() *kvMachine { return &kvMachine{counts: make(map[string]int64)} }

func (m *kvMachine) Execute(action any) any {
	a, ok := action.(incAction)
	if !ok {
		return nil
	}
	m.counts[a.Key] += a.Delta
	m.ops++
	return m.counts[a.Key]
}

func (m *kvMachine) Snapshot() (any, int64) {
	cp := make(map[string]int64, len(m.counts))
	for k, v := range m.counts {
		cp[k] = v
	}
	return snapPayload{Counts: cp, Ops: m.ops}, int64(64 + 32*len(cp))
}

type snapPayload struct {
	Counts map[string]int64
	Ops    int64
}

func (m *kvMachine) Restore(data any) {
	p, ok := data.(snapPayload)
	if !ok {
		return
	}
	m.counts = make(map[string]int64, len(p.Counts))
	for k, v := range p.Counts {
		m.counts[k] = v
	}
	m.ops = p.Ops
}

// coreCluster wires Replicas into the simulator.
type coreCluster struct {
	s         *sim.Sim
	replicas  []*Replica
	machines  []*kvMachine
	recovered []int // OnRecovered count per node
	cfg       func(id int) Config
}

func newCoreCluster(t *testing.T, n int, seed uint64, tweak func(id int, c *Config)) *coreCluster {
	t.Helper()
	c := &coreCluster{
		replicas:  make([]*Replica, n),
		machines:  make([]*kvMachine, n),
		recovered: make([]int, n),
	}
	c.s = sim.New(sim.Config{Seed: seed})
	for i := 0; i < n; i++ {
		id := i
		c.s.AddNode(func() env.Node {
			cfg := Config{
				FastPaxos:          false,
				CheckpointInterval: 30 * time.Second,
				Paxos:              paxos.Config{BatchDelay: 2 * time.Millisecond},
				Machine: func() StateMachine {
					m := newKVMachine()
					c.machines[id] = m
					return m
				},
				OnRecovered: func() { c.recovered[id]++ },
			}
			if tweak != nil {
				tweak(id, &cfg)
			}
			r := NewReplica(cfg)
			c.replicas[id] = r
			return r
		})
	}
	c.s.StartAll()
	return c
}

func (c *coreCluster) submit(d time.Duration, id int, a incAction) {
	c.s.After(d, func() {
		if c.s.Alive(env.NodeID(id)) {
			c.replicas[id].Submit(a, nil)
		}
	})
}

func (c *coreCluster) requireConverged(t *testing.T, wantOps int64) {
	t.Helper()
	for id, m := range c.machines {
		if !c.s.Alive(env.NodeID(id)) {
			continue
		}
		if m.ops != wantOps {
			t.Errorf("node %d applied %d ops, want %d", id, m.ops, wantOps)
		}
	}
	var ref *kvMachine
	for id, m := range c.machines {
		if !c.s.Alive(env.NodeID(id)) {
			continue
		}
		if ref == nil {
			ref = m
			continue
		}
		if len(m.counts) != len(ref.counts) {
			t.Fatalf("node %d state size %d != %d", id, len(m.counts), len(ref.counts))
		}
		for k, v := range ref.counts {
			if m.counts[k] != v {
				t.Fatalf("node %d: counts[%q]=%d, want %d", id, k, m.counts[k], v)
			}
		}
	}
}

func TestReplicatedStateMachineConverges(t *testing.T) {
	c := newCoreCluster(t, 3, 10, nil)
	const total = 90
	for i := 0; i < total; i++ {
		c.submit(2*time.Second+time.Duration(i)*10*time.Millisecond, i%3,
			incAction{Key: fmt.Sprintf("k%d", i%7), Delta: 1})
	}
	c.s.RunFor(10 * time.Second)
	c.requireConverged(t, total)
}

func TestSubmitReturnsResult(t *testing.T) {
	c := newCoreCluster(t, 3, 11, nil)
	var got any
	c.s.After(2*time.Second, func() {
		c.replicas[0].Submit(incAction{Key: "x", Delta: 5}, func(result any, err error) {
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			got = result
		})
	})
	c.s.RunFor(5 * time.Second)
	if got != int64(5) {
		t.Fatalf("result = %v, want 5", got)
	}
}

func TestCheckpointRecoveryUsesLocalState(t *testing.T) {
	c := newCoreCluster(t, 5, 12, nil)
	const phase1 = 100
	for i := 0; i < phase1; i++ {
		c.submit(2*time.Second+time.Duration(i)*5*time.Millisecond, i%5,
			incAction{Key: "a", Delta: 1})
	}
	// Force a checkpoint on node 4, then crash it.
	c.s.After(5*time.Second, func() { c.replicas[4].Checkpoint(nil) })
	c.s.After(8*time.Second, func() { c.s.Crash(4) })
	const phase2 = 60
	for i := 0; i < phase2; i++ {
		c.submit(9*time.Second+time.Duration(i)*5*time.Millisecond, i%4,
			incAction{Key: "b", Delta: 1})
	}
	c.s.After(15*time.Second, func() { c.s.Restart(4) })
	c.s.RunFor(40 * time.Second)

	c.requireConverged(t, phase1+phase2)
	if c.recovered[4] != 1 {
		t.Fatalf("node 4 OnRecovered fired %d times, want 1", c.recovered[4])
	}
	// The restarted incarnation must have applied only the suffix, not
	// the whole history: the checkpoint covered phase 1.
	if got := c.replicas[4].AppliedCount(); got >= phase1+phase2 {
		t.Errorf("node 4 re-applied full history (%d ops); checkpoint unused", got)
	}
}

func TestRemoteSnapshotFallback(t *testing.T) {
	c := newCoreCluster(t, 3, 13, func(id int, cfg *Config) {
		cfg.CheckpointInterval = 3 * time.Second
		cfg.RetainInstances = 1 // compact aggressively
	})
	const phase1 = 50
	for i := 0; i < phase1; i++ {
		c.submit(2*time.Second+time.Duration(i)*10*time.Millisecond, i%3,
			incAction{Key: "a", Delta: 1})
	}
	c.s.After(4*time.Second, func() { c.s.Crash(2) })
	const phase2 = 80
	for i := 0; i < phase2; i++ {
		c.submit(5*time.Second+time.Duration(i)*20*time.Millisecond, i%2,
			incAction{Key: "b", Delta: 1})
	}
	// Let the survivors checkpoint and compact well past node 2's
	// horizon, then bring it back: the log suffix is gone, so it must
	// fetch a remote checkpoint.
	c.s.After(25*time.Second, func() { c.s.Restart(2) })
	c.s.RunFor(60 * time.Second)
	c.requireConverged(t, phase1+phase2)
}

func TestSubmitBeforeReadyFails(t *testing.T) {
	c := newCoreCluster(t, 3, 14, nil)
	var err error
	fired := false
	// At t=0 the replicas have not finished recovery I/O yet.
	c.s.At(c.s.Now(), func() {
		c.replicas[0].Submit(incAction{Key: "x", Delta: 1}, func(_ any, e error) {
			fired = true
			err = e
		})
	})
	c.s.RunFor(100 * time.Millisecond)
	if !fired {
		t.Fatal("callback did not fire")
	}
	if err == nil {
		t.Fatal("expected ErrNotReady, got nil")
	}
}
