package core

import "robuststore/internal/detsort"

// This file is the core half of cross-shard transactions (two-phase
// commit over Paxos groups, ROADMAP item 1): the ordered meta-action
// records the 2PC protocol submits through the normal consensus path,
// and the per-replica transaction state they evolve. The shape is the
// shard-migration machinery's (partition.go): each record is totally
// ordered like any action, applied idempotently per transaction ID, and
// the resulting state travels with the application checkpoint so replay
// and recovery reproduce it exactly.
//
// Protocol roles (the driver lives in internal/webtier and
// internal/shard; core only executes the records):
//
//   - A participant group orders a TxnPrepare carrying its branch of the
//     transaction. Applying it validates the branch against local state
//     (TxnStager.StageTxn) and, on a yes-vote, stages the action without
//     executing it; the staged keys block conflicting writes until the
//     outcome arrives (TxnBlocks).
//   - The coordinator Paxos-commits a TxnDecision in its own home group
//     before releasing the outcome. The decision record is
//     first-writer-wins: a presumed-abort inquiry racing the
//     coordinator's commit resolves to whichever record was ordered
//     first, and both readers see the same recorded outcome — this is
//     what makes coordinator crash between prepare and commit recover
//     deterministically.
//   - Participants then order a TxnCommit or TxnAbort. Commit executes
//     the staged action at the outcome record's log position; abort
//     discards it. Either way the transaction becomes terminal on that
//     participant, so retried outcome records (and late duplicate
//     prepares) degrade to ordered no-ops.
//
// Every record is replayable: the maps below are driven by the ordered
// log only, so each replica of a group holds the same transaction state
// at the same log position, and a replica recovering from a checkpoint
// plus log suffix reconstructs exactly the prepared set it crashed with.

// TxnStager is the optional StateMachine capability a participant uses
// to vote on a prepare. A machine that implements it validates the
// branch action against current state without executing it; machines
// without the capability vote yes unconditionally (commit then applies
// the action like any ordered action, errors surfacing in its result).
type TxnStager interface {
	StateMachine

	// StageTxn reports whether action could apply cleanly to the current
	// state: an empty string is a yes-vote, a non-empty string is the
	// no-vote reason. It must not mutate the state — the replica, not
	// the machine, tracks staged transactions.
	StageTxn(action any) string
}

// TxnPrepare stages one participant branch of a cross-shard transaction
// in the participant group's ordered log. Idempotent per ID: duplicates
// of an already-staged (or already-resolved) prepare re-vote from the
// recorded state without re-staging.
type TxnPrepare struct {
	// ID names the transaction cluster-wide (the coordinator mints it).
	ID string

	// Home is the coordinator's group — where TxnDecision records for
	// this transaction are ordered, and where a participant stuck with a
	// prepared branch sends its status inquiry.
	Home int

	// Action is this group's branch, executed only on commit.
	Action any

	// Keys are the branch's conflict keys: while the branch is prepared,
	// the tier boundary holds conflicting writes (TxnBlocks) so the
	// outcome's log position, not a racing write, decides what the
	// branch observes.
	Keys []string
}

// TxnCommit resolves a prepared branch by executing its staged action at
// this record's log position. Idempotent per ID.
type TxnCommit struct {
	ID string
}

// TxnAbort resolves a prepared branch by discarding it. Idempotent per
// ID.
type TxnAbort struct {
	ID string
}

// TxnDecision records the coordinator's outcome in its home group's log,
// first writer wins: the first decision record ordered for an ID is the
// transaction's outcome forever, and every later record (a retry, or a
// participant-driven presumed-abort racing the real commit) reads it
// back instead of overwriting.
type TxnDecision struct {
	ID     string
	Commit bool
}

// StagedTxn is one prepared branch held by a participant replica,
// awaiting the transaction outcome. It travels with the application
// checkpoint (appSnap) so recovery reconstructs the prepared set.
type StagedTxn struct {
	Home   int
	Action any
	Keys   []string
}

// TxnVoteResult is TxnPrepare's execution result.
type TxnVoteResult struct {
	// Prepared is the vote: true means the branch is staged and its keys
	// are blocked until the outcome.
	Prepared bool

	// Reason is the no-vote explanation (validation failure, or a
	// prepare arriving after the transaction already resolved).
	Reason string
}

// TxnAppliedResult is TxnCommit's and TxnAbort's execution result.
type TxnAppliedResult struct {
	// First is true on the record that transitioned the transaction to
	// terminal on this group; retried outcome records report false, so
	// outcome counters stay exact under retries.
	First bool

	// Committed echoes the outcome this record applied.
	Committed bool

	// Applied is true when a staged action was actually executed
	// (commit of a prepared branch); Result then holds its result.
	Applied bool
	Result  any
}

// TxnDecisionResult is TxnDecision's execution result: the recorded
// outcome (which may predate this record — first writer wins) and
// whether this record was the one that decided.
type TxnDecisionResult struct {
	Commit bool
	First  bool
}

// PreparedTxnInfo describes one prepared branch for the recovery scan:
// a restarted participant re-arms a resolution loop per entry.
type PreparedTxnInfo struct {
	ID   string
	Home int
}

// execTxnPrepare applies a TxnPrepare record.
func (r *Replica) execTxnPrepare(a TxnPrepare) TxnVoteResult {
	if r.txnDone[a.ID] {
		// The transaction already resolved here; the outcome stands and a
		// stale duplicate prepare must not re-stage anything.
		return TxnVoteResult{Prepared: false, Reason: "transaction already resolved"}
	}
	if _, ok := r.txnPrepared[a.ID]; ok {
		return TxnVoteResult{Prepared: true} // duplicate of a staged prepare: re-vote yes
	}
	if ts, ok := r.sm.(TxnStager); ok {
		if reason := ts.StageTxn(a.Action); reason != "" {
			// A no-vote stages nothing and blocks nothing. The
			// coordinator's all-yes rule makes the outcome an abort; the
			// later TxnAbort is what marks the transaction terminal here.
			return TxnVoteResult{Prepared: false, Reason: reason}
		}
	}
	if r.txnPrepared == nil {
		r.txnPrepared = make(map[string]StagedTxn)
	}
	r.txnPrepared[a.ID] = StagedTxn{Home: a.Home, Action: a.Action, Keys: a.Keys}
	if r.cfg.OnTxnStaged != nil {
		// Apply-time arming: a recovering replica can replay this record
		// after its readiness rescan already ran, so the hook — not the
		// rescan — is what guarantees a resolution loop exists for every
		// staged branch.
		r.cfg.OnTxnStaged(a.ID, a.Home)
	}
	return TxnVoteResult{Prepared: true}
}

// execTxnOutcome applies a TxnCommit (commit=true) or TxnAbort record.
func (r *Replica) execTxnOutcome(id string, commit bool) TxnAppliedResult {
	if r.txnDone[id] {
		return TxnAppliedResult{Committed: commit} // retried outcome: ordered no-op
	}
	res := TxnAppliedResult{First: true, Committed: commit}
	if st, ok := r.txnPrepared[id]; ok {
		delete(r.txnPrepared, id)
		if commit {
			res.Applied = true
			res.Result = r.sm.Execute(st.Action)
		}
	}
	if r.txnDone == nil {
		r.txnDone = make(map[string]bool)
	}
	r.txnDone[id] = true
	return res
}

// execTxnDecision applies a TxnDecision record, first writer wins.
func (r *Replica) execTxnDecision(a TxnDecision) TxnDecisionResult {
	if c, ok := r.txnDecisions[a.ID]; ok {
		return TxnDecisionResult{Commit: c}
	}
	if r.txnDecisions == nil {
		r.txnDecisions = make(map[string]bool)
	}
	r.txnDecisions[a.ID] = a.Commit
	return TxnDecisionResult{Commit: a.Commit, First: true}
}

// --- Introspection (loop-confined) --------------------------------------

// PreparedTxns returns the branches staged on this replica and awaiting
// their outcome, sorted by transaction ID. A restarted participant
// server scans this once ready and re-arms a resolution loop per entry —
// the prepared set is checkpoint-carried and log-replayed, so it
// survives any crash. Loop-confined.
func (r *Replica) PreparedTxns() []PreparedTxnInfo {
	if len(r.txnPrepared) == 0 {
		return nil
	}
	ids := detsort.Keys(r.txnPrepared)
	out := make([]PreparedTxnInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, PreparedTxnInfo{ID: id, Home: r.txnPrepared[id].Home})
	}
	return out
}

// TxnDecided reports the recorded outcome of a transaction whose home
// group is this replica's: known=false means no decision record has been
// ordered yet. Loop-confined.
func (r *Replica) TxnDecided(id string) (commit, known bool) {
	commit, known = r.txnDecisions[id]
	return commit, known
}

// TxnBlocks reports whether key conflicts with a prepared branch: the
// tier boundary holds conflicting writes until the outcome record
// releases the key, so the outcome's log position decides what the
// branch observes. Loop-confined.
func (r *Replica) TxnBlocks(key string) bool {
	for _, st := range r.txnPrepared {
		for _, k := range st.Keys {
			if k == key {
				return true
			}
		}
	}
	return false
}

// --- Checkpoint plumbing -------------------------------------------------

// copyTxnPrepared snapshots the prepared set for a checkpoint.
func (r *Replica) copyTxnPrepared() map[string]StagedTxn {
	if len(r.txnPrepared) == 0 {
		return nil
	}
	cp := make(map[string]StagedTxn, len(r.txnPrepared))
	for id, st := range r.txnPrepared {
		cp[id] = st
	}
	return cp
}

// copyTxnDone snapshots the terminal set for a checkpoint.
func (r *Replica) copyTxnDone() map[string]bool {
	if len(r.txnDone) == 0 {
		return nil
	}
	cp := make(map[string]bool, len(r.txnDone))
	for id := range r.txnDone {
		cp[id] = true
	}
	return cp
}

// copyTxnDecisions snapshots the decision records for a checkpoint.
func (r *Replica) copyTxnDecisions() map[string]bool {
	if len(r.txnDecisions) == 0 {
		return nil
	}
	cp := make(map[string]bool, len(r.txnDecisions))
	for id, c := range r.txnDecisions {
		cp[id] = c
	}
	return cp
}

// restoreTxnState installs a checkpoint's transaction state (the mirror
// of the copy helpers above, used by finishRestore and the remote
// snapshot fallback).
func (r *Replica) restoreTxnState(app appSnap) {
	r.txnPrepared, r.txnDone, r.txnDecisions = nil, nil, nil
	if len(app.TxnPrepared) > 0 {
		r.txnPrepared = make(map[string]StagedTxn, len(app.TxnPrepared))
		for id, st := range app.TxnPrepared {
			r.txnPrepared[id] = st
		}
	}
	if len(app.TxnDone) > 0 {
		r.txnDone = make(map[string]bool, len(app.TxnDone))
		for id := range app.TxnDone {
			r.txnDone[id] = true
		}
	}
	if len(app.TxnDecisions) > 0 {
		r.txnDecisions = make(map[string]bool, len(app.TxnDecisions))
		for id, c := range app.TxnDecisions {
			r.txnDecisions[id] = c
		}
	}
}
