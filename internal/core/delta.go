package core

// This file is the incremental-checkpoint pipeline: instead of writing
// the whole application state every interval, a machine that can track
// its dirtied rows emits them as a small delta layer chained onto the
// last full base image, LSM-style. The durable layout is
//
//	ckpt.base.<seq>          full state image (appSnap)
//	ckpt.delta.<seq>.<k>     k-th delta layer on that base (appSnap
//	                         whose Data is the machine's delta payload)
//	meta                     the manifest (metaSnap): names the base and
//	                         the chain, in application order
//
// The manifest write is the atomic commit point: every layer is durable
// strictly before the manifest that references it, layer names are
// versioned by base sequence so a new base can never overwrite one a
// live manifest still references, and superseded layers are deleted only
// after the manifest that dropped them is durable. A crash at any point
// therefore leaves a consistent (base, chain) prefix — never a torn
// chain — at the cost of at most one orphaned layer, which is either
// overwritten by the next same-name write or left unreferenced.
//
// Steady-state checkpoint writes are O(rows dirtied since the last
// checkpoint) instead of O(state), freeing disk bandwidth for the WAL
// group-commit pipeline; recovery loads base + chain, and the remote
// snapshot fallback streams only the layers a catching-up peer is
// missing. Compaction folds the chain back into a fresh base when it
// grows past Config.MaxDeltaChain layers or Config.MaxChainFraction of
// the base size — folding is a full Snapshot of the live machine, whose
// state is by definition base+chain+suffix already applied.

import (
	"fmt"

	"robuststore/internal/env"
	"robuststore/internal/paxos"
)

// DeltaSnapshotter is the optional StateMachine capability behind
// incremental checkpoints. A machine that implements it has its
// checkpoints taken as delta layers (rows dirtied since the previous
// checkpoint) whenever possible; machines without it keep the monolithic
// full-snapshot path, bit for bit.
type DeltaSnapshotter interface {
	StateMachine

	// SnapshotDelta returns an immutable payload holding the rows
	// dirtied since the previous Snapshot or successful SnapshotDelta
	// call, plus its nominal serialized size. ok=false means the
	// machine cannot express the difference as a keyed upsert — no full
	// Snapshot has anchored the tracking yet, or rows were deleted
	// wholesale (PartitionDrop) — and the caller must take a full
	// Snapshot instead; the dirty tracking is then left untouched.
	//
	// A successful call resets the dirty tracking: the next delta is
	// relative to this one.
	SnapshotDelta() (data any, size int64, ok bool)

	// ApplyDelta merges a SnapshotDelta payload into the state. Layers
	// are applied in chain order onto the base they were created
	// against; after the last one the state must equal the state the
	// final SnapshotDelta observed.
	ApplyDelta(data any)
}

// LayerRef names one delta layer in the manifest chain.
type LayerRef struct {
	Name        string
	LastApplied paxos.InstanceID
	Size        int64
}

func baseLayerName(seq int64) string { return fmt.Sprintf("ckpt.base.%d", seq) }

func deltaLayerName(seq int64, k int) string {
	return fmt.Sprintf("ckpt.delta.%d.%d", seq, k)
}

// baseIDFor identifies a base across the cluster (remote missing-layer
// streaming): the writer's node ID in the high bits, its monotone base
// sequence in the low ones. Zero is reserved for "no base".
func baseIDFor(me env.NodeID, seq int64) int64 {
	return (int64(me)+1)<<32 | (seq & 0xffffffff)
}

// baseSeqOf recovers the monotone sequence from a manifest's BaseID, so
// a restarted incarnation keeps numbering past its predecessor's layers
// (reusing the live base's name would tear the chain).
func baseSeqOf(id int64) int64 { return id & 0xffffffff }

// manifestSize models the manifest's on-disk size: a fixed header plus
// one entry per chain layer.
func manifestSize(layers int) int64 { return 256 + int64(layers)*48 }

// checkpointLayered is Checkpoint's incremental path: append a delta
// layer while the chain is healthy, otherwise fold into a fresh base.
func (r *Replica) checkpointLayered(ds DeltaSnapshotter, done func()) {
	if r.baseName != "" && !r.forceBase &&
		len(r.chain) < r.cfg.MaxDeltaChain &&
		float64(r.chainBytes) < r.cfg.MaxChainFraction*float64(r.baseSize) {
		if data, size, ok := ds.SnapshotDelta(); ok {
			r.writeDelta(data, size, done)
			return
		}
		// The machine cannot bound a delta against the durable chain —
		// rows were dropped wholesale by a partition rebalance. Fall
		// through to a fresh base, which truncates the chain so dropped
		// rows can never resurrect from a stale layer on recovery.
	}
	r.writeBase(done)
}

// writeDelta appends one delta layer: layer first, manifest second.
func (r *Replica) writeDelta(data any, size int64, done func()) {
	at := r.lastApplied
	snap := appSnap{
		LastApplied:  at,
		Delivered:    r.en.DeliveredSeqs(),
		Data:         data,
		Size:         size,
		Imported:     r.copyImported(),
		TxnPrepared:  r.copyTxnPrepared(),
		TxnDone:      r.copyTxnDone(),
		TxnDecisions: r.copyTxnDecisions(),
	}
	if r.cfg.OnCheckpoint != nil {
		r.cfg.OnCheckpoint(size)
	}
	name := deltaLayerName(r.baseSeq, len(r.chain))
	chain := append(append([]LayerRef(nil), r.chain...), LayerRef{Name: name, LastApplied: at, Size: size})
	manifest := metaSnap{LastApplied: at, Base: r.baseName, BaseID: r.baseID, Chain: chain}
	r.pubCkptDeltas.Add(1)
	r.pubCkptBytes.Add(size)
	r.e.Storage().SaveSnapshot(name, env.Snapshot{Data: snap, Size: size}, func(error) {
		r.e.Storage().SaveSnapshot("meta", env.Snapshot{Data: manifest, Size: manifestSize(len(chain))}, func(error) {
			r.chain = chain
			r.chainBytes += size
			r.finishCheckpoint(at, nil, done)
		})
	})
}

// writeBase folds the full state into a fresh base (the first checkpoint,
// and every compaction): base first, manifest second, then the layers the
// manifest stopped referencing are garbage-collected.
func (r *Replica) writeBase(done func()) {
	at := r.lastApplied
	data, size := r.sm.Snapshot()
	snap := appSnap{
		LastApplied:  at,
		Delivered:    r.en.DeliveredSeqs(),
		Data:         data,
		Size:         size,
		Imported:     r.copyImported(),
		TxnPrepared:  r.copyTxnPrepared(),
		TxnDone:      r.copyTxnDone(),
		TxnDecisions: r.copyTxnDecisions(),
	}
	if r.cfg.OnCheckpoint != nil {
		r.cfg.OnCheckpoint(size)
	}
	seq := r.baseSeq + 1
	name := baseLayerName(seq)
	// Superseded once the new manifest commits: the current base and
	// chain, plus any layers a remote restore already orphaned in memory.
	gc := append([]string(nil), r.staleLayers...)
	if r.baseName != "" {
		gc = append(gc, r.baseName)
	}
	for _, ref := range r.chain {
		gc = append(gc, ref.Name)
	}
	manifest := metaSnap{LastApplied: at, Base: name, BaseID: baseIDFor(r.me, seq)}
	r.pubCkptBases.Add(1)
	r.pubCkptBytes.Add(size)
	r.e.Storage().SaveSnapshot(name, env.Snapshot{Data: snap, Size: size}, func(error) {
		r.e.Storage().SaveSnapshot("meta", env.Snapshot{Data: manifest, Size: manifestSize(0)}, func(error) {
			r.baseSeq, r.baseName, r.baseID, r.baseSize = seq, name, manifest.BaseID, size
			r.chain, r.chainBytes = nil, 0
			r.forceBase = false
			r.staleLayers = nil
			r.finishCheckpoint(at, gc, done)
		})
	})
}

// finishCheckpoint commits the in-memory bookkeeping once the manifest is
// durable, garbage-collects superseded layers and compacts the log.
func (r *Replica) finishCheckpoint(at paxos.InstanceID, gc []string, done func()) {
	r.lastCheckpoint = at
	r.hasCheckpoint = true
	r.checkpointing = false
	// Deleting only after the manifest dropped its references means a
	// crash in between leaks orphans, never tears the chain.
	for _, name := range gc {
		r.e.Storage().DeleteSnapshot(name, nil)
	}
	compactThrough := at - paxos.InstanceID(r.cfg.RetainInstances)
	if compactThrough >= 0 {
		r.en.Compact(compactThrough)
	}
	if done != nil {
		done()
	}
}

// loadChain is the recovery path for a layered manifest: restore the base
// image, then apply each chain layer in order. Every read charges its own
// modeled disk time, so recovery cost is base + chain, and the engine
// keeps learning the log suffix in parallel exactly as with a monolithic
// checkpoint.
func (r *Replica) loadChain(manifest metaSnap, bootEngine func()) {
	startEmpty := func(why string) {
		if r.cfg.SequentialRecovery {
			bootEngine()
		}
		r.e.Logf("core: %s; starting empty", why)
		// Discard any partially restored state: replaying the whole log
		// onto a torn prefix would corrupt the machine.
		r.sm = r.cfg.Machine()
		r.finishRestore(appSnap{LastApplied: -1})
	}
	r.e.Storage().LoadSnapshot(manifest.Base, func(snap env.Snapshot, ok bool) {
		base, good := snap.Data.(appSnap)
		if !ok || !good {
			startEmpty(fmt.Sprintf("missing or malformed base %q", manifest.Base))
			return
		}
		r.sm.Restore(base.Data)
		r.baseName = manifest.Base
		r.baseID = manifest.BaseID
		r.baseSeq = baseSeqOf(manifest.BaseID)
		r.baseSize = base.Size
		last := base
		var step func(k int)
		step = func(k int) {
			if k >= len(manifest.Chain) {
				r.chain = append([]LayerRef(nil), manifest.Chain...)
				r.chainBytes = 0
				for _, ref := range r.chain {
					r.chainBytes += ref.Size
				}
				if r.cfg.SequentialRecovery {
					bootEngine()
				}
				r.finishRestore(appSnap{
					LastApplied:  manifest.LastApplied,
					Delivered:    last.Delivered,
					Imported:     last.Imported,
					TxnPrepared:  last.TxnPrepared,
					TxnDone:      last.TxnDone,
					TxnDecisions: last.TxnDecisions,
				})
				return
			}
			ref := manifest.Chain[k]
			r.e.Storage().LoadSnapshot(ref.Name, func(snap env.Snapshot, ok bool) {
				layer, good := snap.Data.(appSnap)
				ds, capable := r.sm.(DeltaSnapshotter)
				if !ok || !good || !capable {
					// Layers are durable before the manifest that
					// references them, so this is out-of-band damage
					// (or a machine that lost its delta capability).
					r.baseName, r.baseID, r.baseSize = "", 0, 0
					startEmpty(fmt.Sprintf("delta layer %q unreadable", ref.Name))
					return
				}
				ds.ApplyDelta(layer.Data)
				last = layer
				step(k + 1)
			})
		}
		step(0)
	})
}

// serveLayered answers a remote-snapshot request from a durable layered
// checkpoint: the base plus the chain — or, when the requester already
// restored this manifest's base, only the delta layers it is missing.
// Reading the layers charges our disk and the reply charges the network
// by the bytes actually shipped, like any state transfer.
func (r *Replica) serveLayered(from env.NodeID, manifest metaSnap, m snapReqMsg, send func(snapReplyMsg)) {
	reply := snapReplyMsg{OK: true, BaseID: manifest.BaseID}
	first := 0
	if m.HaveBaseID == manifest.BaseID && m.HaveLayers <= len(manifest.Chain) {
		first = m.HaveLayers
	}
	reply.FirstDelta = first
	var loadDelta func(k int)
	loadDelta = func(k int) {
		if k >= len(manifest.Chain) {
			send(reply)
			return
		}
		r.e.Storage().LoadSnapshot(manifest.Chain[k].Name, func(snap env.Snapshot, ok bool) {
			layer, good := snap.Data.(appSnap)
			if !ok || !good {
				// A compaction replaced the chain between the manifest
				// read and this layer read; the requester retries
				// against the new layout.
				send(snapReplyMsg{})
				return
			}
			reply.Deltas = append(reply.Deltas, layer)
			loadDelta(k + 1)
		})
	}
	if first > 0 {
		loadDelta(first)
		return
	}
	r.e.Storage().LoadSnapshot(manifest.Base, func(snap env.Snapshot, ok bool) {
		base, good := snap.Data.(appSnap)
		if !ok || !good {
			send(snapReplyMsg{})
			return
		}
		reply.HasBase = true
		reply.Base = base
		loadDelta(0)
	})
}
