package core

import (
	"context"
	"sync"
	"time"

	"robuststore/internal/env"
)

// Queue is Treplica's asynchronous persistent queue (paper §2): a totally
// ordered collection of objects with an asynchronous Enqueue and a
// blocking Dequeue. Every replica bound to the queue observes the same
// total order of objects, regardless of which replica enqueued them; a
// replica that crashes and rebinds resumes exactly where its durable state
// left off, without missing enqueues made in the meantime.
//
// The queue is built on the same replicated log as the state machine
// abstraction. Its "state" is deliberately per-replica: the replicated
// part is the totally ordered item history, while the dequeue cursor
// (which items this process has consumed) is local and checkpointed with
// the rest of the replica state. Recovery therefore resumes from the last
// checkpoint: enqueues are never missed, and items dequeued after that
// checkpoint are re-delivered (at-least-once consumption — consumers that
// need exactly-once keep their derived state in a state machine instead).
type Queue struct {
	r *Replica

	mu      sync.Mutex
	pending []any // guarded by mu
	signal  chan struct{}
}

// queueMachine is the state machine backing a Queue: its replicated
// transition appends the enqueued object; the not-yet-dequeued suffix is
// part of the checkpointed state so undelivered items survive a crash.
type queueMachine struct {
	q *Queue
}

func (m *queueMachine) Execute(action any) any {
	m.q.push(action)
	return action
}

func (m *queueMachine) Snapshot() (any, int64) {
	m.q.mu.Lock()
	defer m.q.mu.Unlock()
	items := make([]any, len(m.q.pending))
	copy(items, m.q.pending)
	return items, int64(64 + 160*len(items))
}

func (m *queueMachine) Restore(data any) {
	items, ok := data.([]any)
	if !ok {
		return
	}
	m.q.mu.Lock()
	m.q.pending = append([]any(nil), items...)
	m.q.mu.Unlock()
	m.q.wake()
}

// NewQueue builds an asynchronous persistent queue and the replica that
// backs it. Hand the returned Replica to a runtime (it implements
// env.Node) and use the Queue from application goroutines.
func NewQueue(cfg Config) (*Queue, *Replica) {
	q := &Queue{signal: make(chan struct{}, 1)}
	cfg.Machine = func() StateMachine { return &queueMachine{q: q} }
	r := NewReplica(cfg)
	q.r = r
	return q, r
}

func (q *Queue) push(item any) {
	q.mu.Lock()
	q.pending = append(q.pending, item)
	q.mu.Unlock()
	q.wake()
}

func (q *Queue) wake() {
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// Enqueue appends an object to the queue. It is asynchronous, as in
// Treplica: it returns as soon as the object is submitted for total
// ordering; delivery is observed via Dequeue on every replica. Enqueues
// before the replica has started are dropped.
func (q *Queue) Enqueue(item any) {
	e, ok := q.r.pubEnv.Load().(env.Env)
	if !ok {
		return
	}
	e.Post(func() {
		q.r.Submit(item, nil)
	})
}

// EnqueueSync appends an object and blocks until it has been ordered and
// locally delivered.
func (q *Queue) EnqueueSync(ctx context.Context, item any) error {
	_, err := q.r.Execute(ctx, item)
	return err
}

// Dequeue blocks until the next object in the total order is available
// locally and returns it. Context cancellation aborts the wait.
func (q *Queue) Dequeue(ctx context.Context) (any, error) {
	for {
		q.mu.Lock()
		if len(q.pending) > 0 {
			item := q.pending[0]
			q.pending = append([]any(nil), q.pending[1:]...)
			q.mu.Unlock()
			return item, nil
		}
		q.mu.Unlock()
		select {
		case <-q.signal:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond): //walltime:live — consumer-goroutine poll, never runs on the sim executor
			// Re-check: a concurrent consumer may have raced the
			// signal.
		}
	}
}

// TryDequeue returns the next object without blocking; ok is false when
// the local queue view is empty.
func (q *Queue) TryDequeue() (item any, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return nil, false
	}
	item = q.pending[0]
	q.pending = append([]any(nil), q.pending[1:]...)
	return item, true
}

// Len returns the number of locally deliverable objects.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Replica returns the replica backing this queue.
func (q *Queue) Replica() *Replica { return q.r }
