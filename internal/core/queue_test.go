package core

import (
	"context"
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/paxos"
	"robuststore/internal/sim"
)

// queueCluster wires persistent queues into the simulator. Dequeue is
// blocking (live-runtime API), so these tests consume via TryDequeue from
// inside the event loop.
type queueCluster struct {
	s        *sim.Sim
	queues   []*Queue
	replicas []*Replica
}

func newQueueCluster(t *testing.T, n int, seed uint64) *queueCluster {
	t.Helper()
	c := &queueCluster{
		queues:   make([]*Queue, n),
		replicas: make([]*Replica, n),
	}
	c.s = sim.New(sim.Config{Seed: seed})
	for i := 0; i < n; i++ {
		idx := i
		c.s.AddNode(func() env.Node {
			q, r := NewQueue(Config{
				CheckpointInterval: 10 * time.Second,
				Paxos:              paxos.Config{BatchDelay: 2 * time.Millisecond},
			})
			c.queues[idx] = q
			c.replicas[idx] = r
			return r
		})
	}
	c.s.StartAll()
	return c
}

func TestQueueTotalOrderAcrossProducers(t *testing.T) {
	c := newQueueCluster(t, 3, 21)
	const total = 30
	for i := 0; i < total; i++ {
		i := i
		c.s.After(2*time.Second+time.Duration(i)*10*time.Millisecond, func() {
			c.replicas[i%3].Submit(i, nil)
		})
	}
	c.s.RunFor(10 * time.Second)

	var sequences [3][]int
	for r := 0; r < 3; r++ {
		for {
			item, ok := c.queues[r].TryDequeue()
			if !ok {
				break
			}
			sequences[r] = append(sequences[r], item.(int))
		}
		if len(sequences[r]) != total {
			t.Fatalf("replica %d delivered %d items, want %d", r, len(sequences[r]), total)
		}
	}
	for r := 1; r < 3; r++ {
		for i := range sequences[0] {
			if sequences[r][i] != sequences[0][i] {
				t.Fatalf("order differs at %d: %v vs %v", i, sequences[r], sequences[0])
			}
		}
	}
}

func TestQueueLenAndTryDequeue(t *testing.T) {
	c := newQueueCluster(t, 3, 22)
	c.s.After(2*time.Second, func() { c.replicas[0].Submit("a", nil) })
	c.s.After(2100*time.Millisecond, func() { c.replicas[0].Submit("b", nil) })
	c.s.RunFor(6 * time.Second)
	if got := c.queues[0].Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	item, ok := c.queues[0].TryDequeue()
	if !ok || item != "a" {
		t.Fatalf("TryDequeue = %v/%v", item, ok)
	}
	if got := c.queues[0].Len(); got != 1 {
		t.Fatalf("Len after dequeue = %d", got)
	}
	if _, ok := c.queues[1].TryDequeue(); !ok {
		t.Fatal("other replica missing items")
	}
}

func TestQueueUndequeuedItemsSurviveCrash(t *testing.T) {
	c := newQueueCluster(t, 3, 23)
	const total = 10
	for i := 0; i < total; i++ {
		i := i
		c.s.After(2*time.Second+time.Duration(i)*50*time.Millisecond, func() {
			c.replicas[i%2].Submit(i, nil) // only nodes 0 and 1 produce
		})
	}
	// Let replica 2 receive everything, checkpoint (covers the pending
	// items), then crash and recover: nothing may be lost.
	c.s.RunFor(8 * time.Second)
	c.s.At(c.s.Now(), func() { c.replicas[2].Checkpoint(nil) })
	c.s.RunFor(5 * time.Second)
	c.s.Crash(2)
	c.s.RunFor(2 * time.Second)
	c.s.Restart(2)
	c.s.RunFor(20 * time.Second)

	var got []int
	for {
		item, ok := c.queues[2].TryDequeue()
		if !ok {
			break
		}
		got = append(got, item.(int))
	}
	if len(got) != total {
		t.Fatalf("recovered queue has %d items, want %d: %v", len(got), total, got)
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate item %d after recovery (checkpoint covered them)", v)
		}
		seen[v] = true
	}
}

func TestQueueDequeueContext(t *testing.T) {
	// Dequeue on an empty queue must honor context cancellation. The
	// queue is not wired to any runtime here; only the blocking wait is
	// under test.
	q := &Queue{signal: make(chan struct{}, 1)}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := q.Dequeue(ctx); err == nil {
		t.Fatal("Dequeue on empty queue must fail on context expiry")
	}
}

func TestQueueMachineRestoreRejectsGarbage(t *testing.T) {
	q := &Queue{signal: make(chan struct{}, 1)}
	m := &queueMachine{q: q}
	m.Restore(42) // wrong type: must not panic or corrupt
	if q.Len() != 0 {
		t.Fatal("garbage restore changed state")
	}
	m.q.push("x")
	data, size := m.Snapshot()
	if size <= 0 {
		t.Fatal("non-positive snapshot size")
	}
	q2 := &Queue{signal: make(chan struct{}, 1)}
	m2 := &queueMachine{q: q2}
	m2.Restore(data)
	if q2.Len() != 1 {
		t.Fatalf("restored queue has %d items", q2.Len())
	}
}
